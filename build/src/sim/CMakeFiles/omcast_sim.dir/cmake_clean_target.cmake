file(REMOVE_RECURSE
  "libomcast_sim.a"
)
