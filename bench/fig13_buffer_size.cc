// Fig. 13: average starving time ratio vs playback buffer size (5-30 s) for
// recovery group sizes 1-3 at the focus network size. A single recovery
// node needs a very deep buffer (~27 s) to reach the quality two nodes
// deliver with only 5 s.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 13 -- avg starving time ratio vs buffer size", env);

  util::Table table({"buffer(s)", "group=1", "group=2", "group=3"});
  for (const double buffer : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
    std::vector<double> row;
    for (int group = 1; group <= 3; ++group) {
      stream::StreamParams sp;
      sp.recovery_group_size = group;
      sp.buffer_s = buffer;
      double sum = 0.0;
      for (int rep = 0; rep < env.reps; ++rep) {
        exp::ScenarioConfig config = env.BaseConfig();
        config.population = env.focus_size;
        config.seed = env.seed + static_cast<std::uint64_t>(rep);
        sum += RunStreamScenario(env.topology, exp::Algorithm::kMinDepth,
                                 config, sp)
                   .avg_starving_ratio;
      }
      row.push_back(100.0 * sum / env.reps);
    }
    table.AddRow(util::FormatDouble(buffer, 0), row);
  }
  table.Print(std::cout, "avg starving time ratio (%), " +
                             std::to_string(env.focus_size) +
                             " members, min-depth tree + CER");
  return 0;
}
