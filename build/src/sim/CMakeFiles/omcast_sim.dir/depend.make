# Empty dependencies file for omcast_sim.
# This may be replaced when dependencies are built.
