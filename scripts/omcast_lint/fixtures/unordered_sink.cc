// Fixture [unordered-sink]: a range-for over an unordered container whose
// body feeds a trace/metrics/digest sink exports hash-bucket order.
#include <map>
#include <unordered_map>

namespace fixture {

struct Tracer {
  void Emit(int kind, int subject, int detail);
};
struct Digest {
  void MixU64(unsigned long long v);
};

void ExportCounts(Tracer* tracer) {
  std::unordered_map<int, int> counts;  // omcast-lint: allow(unordered-iter)
  counts[3] = 1;
  for (const auto& kv : counts) {  // expect(unordered-iter)  // expect(unordered-sink)
    tracer->Emit(0, kv.first, kv.second);
  }
}

void MixCounts(Digest& digest) {
  std::unordered_map<int, int> counts;  // omcast-lint: allow(unordered-iter)
  counts[1] = 2;  // spacer: the allow above must not reach the range-for
  for (const auto& kv : counts)  // expect(unordered-iter)  // expect(unordered-sink)
    digest.MixU64(static_cast<unsigned long long>(kv.second));
}

// Negative: iteration that feeds no sink is only an unordered-iter hazard.
int Total(Tracer* tracer) {
  std::unordered_map<int, int> counts;  // omcast-lint: allow(unordered-iter)
  int total = 0;
  for (const auto& kv : counts) {  // expect(unordered-iter)
    total += kv.second;
  }
  tracer->Emit(0, total, 0);
  return total;
}

// Negative: copy into a sorted container first, then export.
void ExportSorted(Tracer* tracer) {
  std::unordered_map<int, int> counts;  // omcast-lint: allow(unordered-iter)
  std::map<int, int> sorted(counts.begin(), counts.end());
  for (const auto& kv : sorted) {
    tracer->Emit(0, kv.first, kv.second);
  }
}

}  // namespace fixture
