
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_streaming.cc" "tests/CMakeFiles/test_streaming.dir/test_streaming.cc.o" "gcc" "tests/CMakeFiles/test_streaming.dir/test_streaming.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/omcast_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/omcast_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/omcast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/omcast_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/omcast_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/omcast_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/omcast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rand/CMakeFiles/omcast_rand.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/omcast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/omcast_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
