// Fixture [wallclock]: host-clock reads (and the gateway <chrono> include)
// in simulation code must be flagged; virtual time is sim::Simulator::now().
#include <chrono>  // expect(wallclock)

namespace fixture {

using Clock = std::chrono::steady_clock;  // expect(wallclock)

double HostNow() {
  const auto t0 = Clock::now();                       // expect(wallclock)
  auto t1 = std::chrono::system_clock::now();         // expect(wallclock)
  (void)t1;
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

struct Simulator {
  double now_s = 0.0;
  double now() const { return now_s; }
};

// Negative: virtual time is clean.
double VirtualNow(const Simulator& sim) { return sim.now(); }

// Negative: the profiler seam carries the annotation.
double ProfilerSample() {
  const auto t = Clock::now();  // omcast-lint: allow(wallclock)
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace fixture
