file(REMOVE_RECURSE
  "CMakeFiles/omcast_rand.dir/distributions.cc.o"
  "CMakeFiles/omcast_rand.dir/distributions.cc.o.d"
  "libomcast_rand.a"
  "libomcast_rand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omcast_rand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
