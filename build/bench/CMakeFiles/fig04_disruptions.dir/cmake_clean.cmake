file(REMOVE_RECURSE
  "CMakeFiles/fig04_disruptions.dir/fig04_disruptions.cc.o"
  "CMakeFiles/fig04_disruptions.dir/fig04_disruptions.cc.o.d"
  "fig04_disruptions"
  "fig04_disruptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_disruptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
