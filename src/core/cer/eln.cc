#include "core/cer/eln.h"

#include "util/check.h"

namespace omcast::core {

ElnTracker::ElnTracker(int gap_threshold) : gap_threshold_(gap_threshold) {
  util::Check(gap_threshold > 0, "ELN gap threshold must be positive");
}

void ElnTracker::Account(std::int64_t seq, bool via_eln) {
  util::Check(seq >= 0, "sequence numbers are non-negative");
  if (seq > max_seen_) max_seen_ = seq;
  if (seq <= frontier_ || pending_.contains(seq)) {
    // Already accounted. A data arrival for an ELN-covered hole is the
    // upstream repair reaching us.
    if (!via_eln) eln_covered_.erase(seq);
    return;
  }
  if (via_eln) {
    eln_covered_.insert(seq);
    to_forward_.push_back(seq);
  }
  pending_.insert(seq);
  while (!pending_.empty() && *pending_.begin() == frontier_ + 1) {
    ++frontier_;
    pending_.erase(pending_.begin());
  }
}

void ElnTracker::OnData(std::int64_t seq) { Account(seq, false); }

void ElnTracker::OnEln(std::int64_t seq) { Account(seq, true); }

ElnTracker::Status ElnTracker::status() const {
  if (max_seen_ - frontier_ > gap_threshold_) return Status::kParentFailure;
  if (!eln_covered_.empty()) return Status::kUpstreamLoss;
  return Status::kHealthy;
}

std::vector<std::int64_t> ElnTracker::TakeForwardNotifications() {
  std::vector<std::int64_t> out;
  out.swap(to_forward_);
  return out;
}

}  // namespace omcast::core
