#include "obs/profile.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include <algorithm>
#include <cstdio>

namespace omcast::obs {

namespace {

// Microsecond buckets for callback wall time: sub-microsecond dispatches up
// to pathological multi-millisecond callbacks.
std::vector<double> WallBounds() {
  return {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000};
}

// Power-of-two-ish queue depths; overlay sims run from a handful of pending
// events to tens of thousands during churn bursts.
std::vector<double> DepthBounds() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536};
}

void AppendRow(std::string& out, const std::string& tag,
               const SimProfiler::TagStats& st) {
  char buf[160];
  const double mean_us =
      st.count > 0 ? st.total_us / static_cast<double>(st.count) : 0.0;
  std::snprintf(buf, sizeof(buf), "  %-24s %12llu %12.3f %10.3f %10.3f\n",
                tag.c_str(), static_cast<unsigned long long>(st.count),
                st.total_us / 1000.0, mean_us, st.max_us);
  out += buf;
}

void AppendHeader(std::string& out) {
  out += "  tag                             events     total_ms    mean_us"
         "     max_us\n";
}

// Process peak resident set in bytes; 0 where the platform offers no
// getrusage. Linux reports ru_maxrss in kilobytes, macOS in bytes.
std::uint64_t CurrentPeakRssBytes() {
#if defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss);
#elif defined(__unix__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#else
  return 0;
#endif
}

}  // namespace

SimProfiler::SimProfiler() : wall_us_(WallBounds()), depth_(DepthBounds()) {
  // Snapshot the process high-water mark so rss_delta_bytes() reports this
  // run's growth, not whatever earlier cells in the grid already touched.
  baseline_rss_bytes_ = CurrentPeakRssBytes();
}

void SimProfiler::BeginEvent(const char* tag, std::size_t queue_depth) {
  current_ = &per_tag_[tag != nullptr ? tag : "untagged"];
  depth_.Observe(static_cast<double>(queue_depth));
  started_ = Clock::now();  // omcast-lint: allow(wallclock)
}

void SimProfiler::EndEvent() {
  if (current_ == nullptr) return;
  const auto elapsed = Clock::now() - started_;  // omcast-lint: allow(wallclock)
  const double us =
      std::chrono::duration<double, std::micro>(elapsed).count();
  ++events_;
  ++current_->count;
  current_->total_us += us;
  current_->max_us = std::max(current_->max_us, us);
  wall_us_.Observe(us);
  current_ = nullptr;
}

void SimProfiler::BeginLoop() {
  if (in_loop_) return;  // nested RunUntil from a callback: outer loop times
  in_loop_ = true;
  loop_start_events_ = events_;
  loop_started_ = Clock::now();  // omcast-lint: allow(wallclock)
}

void SimProfiler::EndLoop() {
  if (!in_loop_) return;
  in_loop_ = false;
  const auto elapsed =
      Clock::now() - loop_started_;  // omcast-lint: allow(wallclock)
  loop_us_ += std::chrono::duration<double, std::micro>(elapsed).count();
  loop_events_ += events_ - loop_start_events_;
}

void SimProfiler::SampleMemory(std::size_t pool_live,
                               std::size_t pool_capacity) {
  pool_live_max_ = std::max(pool_live_max_, pool_live);
  pool_capacity_max_ = std::max(pool_capacity_max_, pool_capacity);
  peak_rss_bytes_ = std::max(peak_rss_bytes_, CurrentPeakRssBytes());
}

std::string SimProfiler::FormatTable() const {
  std::string out = "sim profile: per-event-type dispatch\n";
  AppendHeader(out);
  for (const auto& [tag, st] : per_tag_) AppendRow(out, tag, st);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "  wall_us p50=%.3f p99=%.3f  queue_depth mean=%.1f p99=%.0f "
                "max=%.0f\n",
                wall_us_.Quantile(0.5), wall_us_.Quantile(0.99), depth_.mean(),
                depth_.Quantile(0.99), depth_.max());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  loop wall_ms=%.3f events=%llu rate=%.0f/s\n", loop_us_ / 1000.0,
                static_cast<unsigned long long>(loop_events_),
                events_per_sec());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  memory process_peak_rss_mb=%.1f run_rss_delta_mb=%.1f "
                "pool_live_max=%llu pool_capacity_max=%llu\n",
                static_cast<double>(peak_rss_bytes_) / (1024.0 * 1024.0),
                static_cast<double>(rss_delta_bytes()) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(pool_live_max_),
                static_cast<unsigned long long>(pool_capacity_max_));
  out += buf;
  return out;
}

void ProfileAggregator::Merge(const SimProfiler& profiler) {
  util::MutexLock lock(mu_);
  for (const auto& [tag, st] : profiler.per_tag()) {
    SimProfiler::TagStats& agg = per_tag_[tag];
    agg.count += st.count;
    agg.total_us += st.total_us;
    agg.max_us = std::max(agg.max_us, st.max_us);
  }
  const Histogram& depth = profiler.queue_depth_hist();
  depth_.samples += static_cast<std::uint64_t>(depth.count());
  depth_.sum += depth.sum();
  depth_.max = std::max(depth_.max, depth.max());
  events_ += profiler.events();
  loop_us_ += profiler.loop_us();
  loop_events_ += profiler.loop_events();
  peak_rss_bytes_ = std::max(peak_rss_bytes_, profiler.peak_rss_bytes());
  rss_delta_max_bytes_ =
      std::max(rss_delta_max_bytes_, profiler.rss_delta_bytes());
  pool_live_max_ = std::max(pool_live_max_, profiler.pool_live_max());
  pool_capacity_max_ = std::max(pool_capacity_max_, profiler.pool_capacity_max());
  ++merged_;
}

std::uint64_t ProfileAggregator::events() const {
  util::MutexLock lock(mu_);
  return events_;
}

double ProfileAggregator::loop_us() const {
  util::MutexLock lock(mu_);
  return loop_us_;
}

std::uint64_t ProfileAggregator::loop_events() const {
  util::MutexLock lock(mu_);
  return loop_events_;
}

double ProfileAggregator::events_per_sec() const {
  util::MutexLock lock(mu_);
  return loop_us_ > 0.0
             ? static_cast<double>(loop_events_) / (loop_us_ * 1e-6)
             : 0.0;
}

std::uint64_t ProfileAggregator::peak_rss_bytes() const {
  util::MutexLock lock(mu_);
  return peak_rss_bytes_;
}

std::uint64_t ProfileAggregator::rss_delta_max_bytes() const {
  util::MutexLock lock(mu_);
  return rss_delta_max_bytes_;
}

std::string ProfileAggregator::FormatTable() const {
  util::MutexLock lock(mu_);
  std::string out = "sim profile: per-event-type dispatch (";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%d run%s merged)\n", merged_,
                merged_ == 1 ? "" : "s");
  out += buf;
  AppendHeader(out);
  for (const auto& [tag, st] : per_tag_) AppendRow(out, tag, st);
  const double depth_mean =
      depth_.samples > 0 ? depth_.sum / static_cast<double>(depth_.samples)
                         : 0.0;
  std::snprintf(buf, sizeof(buf), "  queue_depth mean=%.1f max=%.0f\n",
                depth_mean, depth_.max);
  out += buf;
  const double rate =
      loop_us_ > 0.0 ? static_cast<double>(loop_events_) / (loop_us_ * 1e-6)
                     : 0.0;
  std::snprintf(buf, sizeof(buf),
                "  loop wall_ms=%.3f events=%llu rate=%.0f/s\n",
                loop_us_ / 1000.0,
                static_cast<unsigned long long>(loop_events_), rate);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  memory process_peak_rss_mb=%.1f max_run_rss_delta_mb=%.1f "
                "pool_live_max=%llu pool_capacity_max=%llu\n",
                static_cast<double>(peak_rss_bytes_) / (1024.0 * 1024.0),
                static_cast<double>(rss_delta_max_bytes_) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(pool_live_max_),
                static_cast<unsigned long long>(pool_capacity_max_));
  out += buf;
  return out;
}

ProfileAggregator& GlobalProfileAggregator() {
  static ProfileAggregator aggregator;
  return aggregator;
}

}  // namespace omcast::obs
