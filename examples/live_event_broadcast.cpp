// Live event broadcast: a flash crowd hits a running stream.
//
// The session starts in steady state (2,000 viewers), then a breaking-news
// moment quadruples the arrival rate for ten minutes. The example compares
// how ROST+CER and a plain min-depth tree with single-source recovery hold
// up, reporting viewer-perceived starving time and tree quality before,
// during, and after the crowd.
//
//   ./examples/live_event_broadcast [--viewers=2000] [--seed=7]
#include <iostream>

#include "core/cer/group.h"
#include "exp/scenario.h"
#include "net/topology.h"
#include "rand/rng.h"
#include "sim/simulator.h"
#include "stream/streaming.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace omcast;

struct PhaseStats {
  double starving_pct = 0.0;
  double avg_delay_ms = 0.0;
  int population = 0;
};

struct RunResult {
  PhaseStats steady, crowd, after;
};

RunResult RunScheme(const net::Topology& topology, exp::Algorithm algorithm,
                    core::GroupSelection selection, core::RecoveryMode mode,
                    int viewers, std::uint64_t seed) {
  sim::Simulator sim;
  overlay::Session session(sim, topology,
                           exp::MakeProtocol(algorithm, core::RostParams{}),
                           overlay::SessionParams{}, seed);
  stream::StreamParams sp;
  sp.recovery_group_size = 3;
  sp.selection = selection;
  sp.mode = mode;
  stream::StreamingLayer streaming(session, sp, seed ^ 0xFEED);
  streaming.SetMeasurementWindow(0.0, 1e9);

  const double base_rate = viewers / rnd::kMeanLifetimeSeconds;
  session.Prepopulate(viewers);
  session.StartArrivals(base_rate);

  RunResult result;
  auto snapshot = [&](PhaseStats& phase, double begin) {
    util::RunningStat delay;
    for (overlay::NodeId id : session.alive_members())
      if (session.tree().IsRooted(id)) delay.Add(session.OverlayDelayMs(id));
    phase.avg_delay_ms = delay.mean();
    phase.population = session.alive_count();
    // Starving ratio accumulated since `begin` is approximated by the
    // overall window mean (the layer reports a running average).
    (void)begin;
    phase.starving_pct = 100.0 * streaming.ratio_stat().mean();
  };

  sim.RunUntil(1800.0);  // steady state
  snapshot(result.steady, 0.0);
  // Flash crowd: 4x arrivals for 10 minutes.
  session.StopArrivals();
  session.StartArrivals(4.0 * base_rate);
  sim.RunUntil(2400.0);
  session.StopArrivals();
  session.StartArrivals(base_rate);
  snapshot(result.crowd, 1800.0);
  sim.RunUntil(4200.0);  // recovery / drain back toward steady state
  snapshot(result.after, 2400.0);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags;
  flags.Define("viewers", "2000", "steady-state audience size")
      .Define("seed", "7", "random seed");
  if (!flags.Parse(argc, argv)) return 1;
  const int viewers = flags.GetInt("viewers");
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed"));

  rnd::Rng topo_rng(42);
  const net::Topology topology =
      net::Topology::Generate(net::PaperTopologyParams(), topo_rng);

  std::cout << "live event broadcast: " << viewers
            << " steady viewers, 4x flash crowd at t=30min for 10min\n\n";

  const RunResult baseline =
      RunScheme(topology, exp::Algorithm::kMinDepth,
                core::GroupSelection::kRandom, core::RecoveryMode::kSingleSource,
                viewers, seed);
  const RunResult rost_cer =
      RunScheme(topology, exp::Algorithm::kRost, core::GroupSelection::kMlc,
                core::RecoveryMode::kCooperative, viewers, seed);

  util::Table table({"phase", "scheme", "starving(%)", "delay(ms)", "viewers"});
  auto add = [&table](const char* phase, const char* scheme,
                      const PhaseStats& s) {
    table.AddRow({phase, scheme, util::FormatDouble(s.starving_pct, 3),
                  util::FormatDouble(s.avg_delay_ms, 1),
                  std::to_string(s.population)});
  };
  add("steady", "min-depth+single", baseline.steady);
  add("steady", "ROST+CER", rost_cer.steady);
  add("flash crowd", "min-depth+single", baseline.crowd);
  add("flash crowd", "ROST+CER", rost_cer.crowd);
  add("after", "min-depth+single", baseline.after);
  add("after", "ROST+CER", rost_cer.after);
  table.Print(std::cout);

  std::cout << "\nROST keeps newcomers at the leaves (no churn near the "
               "root) and CER stripes\nrepairs across low-correlation peers, "
               "so the flash crowd barely dents playback.\n";
  return 0;
}
