#include "runner/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace omcast::runner {

bool Json::AsBool() const {
  util::Check(type_ == Type::kBool, "Json::AsBool on non-bool");
  return bool_;
}

double Json::AsDouble() const {
  util::Check(type_ == Type::kNumber, "Json::AsDouble on non-number");
  switch (num_kind_) {
    case NumKind::kDouble: return dbl_;
    case NumKind::kInt: return static_cast<double>(int_);
    case NumKind::kUint: return static_cast<double>(uint_);
  }
  return 0.0;
}

std::int64_t Json::AsInt() const {
  util::Check(type_ == Type::kNumber, "Json::AsInt on non-number");
  switch (num_kind_) {
    case NumKind::kDouble: return static_cast<std::int64_t>(dbl_);
    case NumKind::kInt: return int_;
    case NumKind::kUint: return static_cast<std::int64_t>(uint_);
  }
  return 0;
}

std::uint64_t Json::AsUint() const {
  util::Check(type_ == Type::kNumber, "Json::AsUint on non-number");
  switch (num_kind_) {
    case NumKind::kDouble: return static_cast<std::uint64_t>(dbl_);
    case NumKind::kInt: return static_cast<std::uint64_t>(int_);
    case NumKind::kUint: return uint_;
  }
  return 0;
}

const std::string& Json::AsString() const {
  util::Check(type_ == Type::kString, "Json::AsString on non-string");
  return str_;
}

const Json::Array& Json::AsArray() const {
  util::Check(type_ == Type::kArray, "Json::AsArray on non-array");
  return arr_;
}

const Json::Object& Json::AsObject() const {
  util::Check(type_ == Type::kObject, "Json::AsObject on non-object");
  return obj_;
}

Json& Json::Set(std::string key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  util::Check(type_ == Type::kObject, "Json::Set on non-object");
  for (Member& m : obj_) {
    if (m.first == key) {
      m.second = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : obj_)
    if (m.first == key) return &m.second;
  return nullptr;
}

Json& Json::Append(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  util::Check(type_ == Type::kArray, "Json::Append on non-array");
  arr_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  return 0;
}

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

// Shortest round-trip double representation: deterministic across runs and
// parses back to the exact same bits, which keeps resumed sweeps and the
// serial-vs-parallel digest comparison honest.
void AppendDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void AppendNewlineIndent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void Json::DumpTo(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber:
      switch (num_kind_) {
        case NumKind::kDouble: AppendDouble(out, dbl_); return;
        case NumKind::kInt: out += std::to_string(int_); return;
        case NumKind::kUint: out += std::to_string(uint_); return;
      }
      return;
    case Type::kString: AppendEscaped(out, str_); return;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out.push_back(',');
        AppendNewlineIndent(out, indent, depth + 1);
        arr_[i].DumpTo(out, indent, depth + 1);
      }
      AppendNewlineIndent(out, indent, depth);
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out.push_back(',');
        AppendNewlineIndent(out, indent, depth + 1);
        AppendEscaped(out, obj_[i].first);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        obj_[i].second.DumpTo(out, indent, depth + 1);
      }
      AppendNewlineIndent(out, indent, depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  Json Parse() {
    Json v = ParseValue();
    if (failed_) return Json();
    SkipWs();
    if (pos_ != text_.size()) {
      Fail("trailing characters after value");
      return Json();
    }
    return v;
  }

  bool failed() const { return failed_; }

 private:
  void Fail(const std::string& msg) {
    if (!failed_ && error_ != nullptr)
      *error_ = msg + " at offset " + std::to_string(pos_);
    failed_ = true;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Json ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return Json();
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return Json(ParseString());
    if (ConsumeWord("true")) return Json(true);
    if (ConsumeWord("false")) return Json(false);
    if (ConsumeWord("null")) return Json();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    Fail("unexpected character");
    return Json();
  }

  std::string ParseString() {
    std::string out;
    if (!Consume('"')) {
      Fail("expected '\"'");
      return out;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
            return out;
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9')
              cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else {
              Fail("bad hex digit in \\u escape");
              return out;
            }
          }
          // UTF-8 encode (BMP only; our writer never emits surrogates).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: Fail("bad escape character"); return out;
      }
    }
    Fail("unterminated string");
    return out;
  }

  Json ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
      ++pos_;
    bool is_integer = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_integer = false;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_integer = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") {
      Fail("malformed number");
      return Json();
    }
    if (is_integer) {
      // "-0" must stay a double: to_chars prints -0.0 without a fraction,
      // and an int64 round-trip would drop the sign bit.
      if (tok == "-0") return Json(-0.0);
      if (tok[0] == '-') {
        std::int64_t v = 0;
        const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v);
        if (res.ec == std::errc() && res.ptr == tok.data() + tok.size())
          return Json(v);
      } else {
        std::uint64_t v = 0;
        const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v);
        if (res.ec == std::errc() && res.ptr == tok.data() + tok.size())
          return Json(v);
      }
      // Out-of-range integer literal: fall through to double.
    }
    double d = 0.0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (res.ec != std::errc() || res.ptr != tok.data() + tok.size()) {
      Fail("malformed number");
      return Json();
    }
    return Json(d);
  }

  Json ParseArray() {
    Json out = Json::MakeArray();
    Consume('[');
    SkipWs();
    if (Consume(']')) return out;
    while (true) {
      out.Append(ParseValue());
      if (failed_) return Json();
      SkipWs();
      if (Consume(']')) return out;
      if (!Consume(',')) {
        Fail("expected ',' or ']' in array");
        return Json();
      }
    }
  }

  Json ParseObject() {
    Json out = Json::MakeObject();
    Consume('{');
    SkipWs();
    if (Consume('}')) return out;
    while (true) {
      SkipWs();
      std::string key = ParseString();
      if (failed_) return Json();
      SkipWs();
      if (!Consume(':')) {
        Fail("expected ':' in object");
        return Json();
      }
      out.Set(std::move(key), ParseValue());
      if (failed_) return Json();
      SkipWs();
      if (Consume('}')) return out;
      if (!Consume(',')) {
        Fail("expected ',' or '}' in object");
        return Json();
      }
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace

Json Json::Parse(std::string_view text, std::string* error) {
  Parser p(text, error);
  Json v = p.Parse();
  if (p.failed()) return Json();
  return v;
}

}  // namespace omcast::runner
