// Fixture [raw-mutex]: raw standard-library locking primitives are
// invisible to clang -Wthread-safety; only util::Mutex (src/util/mutex.h)
// carries capability annotations.
#include <condition_variable>
#include <mutex>

namespace fixture {

class BadQueue {
 public:
  void Push(int v) {
    std::lock_guard<std::mutex> lock(mu_);  // expect(raw-mutex)
    pending_ = v;
    cv_.notify_one();
  }

 private:
  std::mutex mu_;               // expect(raw-mutex)
  std::condition_variable cv_;  // expect(raw-mutex)
  int pending_ = 0;
};

// Negative: the annotated wrapper types are clean (stand-ins here; the real
// ones live in src/util/mutex.h).
namespace util {
class Mutex {};
class MutexLock {};
}  // namespace util

class GoodQueue {
 private:
  util::Mutex mu_;
  int pending_ = 0;
};

}  // namespace fixture
