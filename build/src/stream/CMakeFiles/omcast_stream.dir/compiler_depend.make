# Empty compiler generated dependencies file for omcast_stream.
# This may be replaced when dependencies are built.
