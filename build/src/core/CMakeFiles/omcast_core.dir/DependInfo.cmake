
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cer/eln.cc" "src/core/CMakeFiles/omcast_core.dir/cer/eln.cc.o" "gcc" "src/core/CMakeFiles/omcast_core.dir/cer/eln.cc.o.d"
  "/root/repo/src/core/cer/group.cc" "src/core/CMakeFiles/omcast_core.dir/cer/group.cc.o" "gcc" "src/core/CMakeFiles/omcast_core.dir/cer/group.cc.o.d"
  "/root/repo/src/core/cer/mlc.cc" "src/core/CMakeFiles/omcast_core.dir/cer/mlc.cc.o" "gcc" "src/core/CMakeFiles/omcast_core.dir/cer/mlc.cc.o.d"
  "/root/repo/src/core/cer/partial_tree.cc" "src/core/CMakeFiles/omcast_core.dir/cer/partial_tree.cc.o" "gcc" "src/core/CMakeFiles/omcast_core.dir/cer/partial_tree.cc.o.d"
  "/root/repo/src/core/cer/recovery.cc" "src/core/CMakeFiles/omcast_core.dir/cer/recovery.cc.o" "gcc" "src/core/CMakeFiles/omcast_core.dir/cer/recovery.cc.o.d"
  "/root/repo/src/core/rost/referee.cc" "src/core/CMakeFiles/omcast_core.dir/rost/referee.cc.o" "gcc" "src/core/CMakeFiles/omcast_core.dir/rost/referee.cc.o.d"
  "/root/repo/src/core/rost/rost.cc" "src/core/CMakeFiles/omcast_core.dir/rost/rost.cc.o" "gcc" "src/core/CMakeFiles/omcast_core.dir/rost/rost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/overlay/CMakeFiles/omcast_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/omcast_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/omcast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/omcast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rand/CMakeFiles/omcast_rand.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/omcast_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
