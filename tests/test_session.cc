#include "overlay/session.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "net/topology.h"
#include "proto/min_depth.h"
#include "sim/simulator.h"

namespace omcast::overlay {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() {
    rnd::Rng topo_rng(1);
    topology_ = std::make_unique<net::Topology>(
        net::Topology::Generate(net::TinyTopologyParams(), topo_rng));
  }

  std::unique_ptr<Session> MakeSession(std::uint64_t seed = 7) {
    return std::make_unique<Session>(sim_, *topology_,
                                     std::make_unique<proto::MinDepthProtocol>(),
                                     SessionParams{}, seed);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topology_;
};

TEST_F(SessionTest, PrepopulateReachesTargetPopulation) {
  auto session = MakeSession();
  session->Prepopulate(50);
  sim_.RunUntil(5.0);  // let any join retries settle
  EXPECT_EQ(session->alive_count(), 50);
  int rooted = 0;
  for (NodeId id : session->alive_members())
    if (session->tree().IsRooted(id)) ++rooted;
  EXPECT_EQ(rooted, 50);
  session->tree().CheckInvariants();
}

TEST_F(SessionTest, PrepopulatedAgesAreStationary) {
  auto session = MakeSession();
  session->Prepopulate(60);
  int negative_join = 0;
  for (NodeId id : session->alive_members())
    if (session->tree().Get(id).join_time < 0.0) ++negative_join;
  EXPECT_EQ(negative_join, 60);  // all carry pre-history
}

TEST_F(SessionTest, ArrivalsGrowThePopulation) {
  auto session = MakeSession();
  session->StartArrivals(1.0);  // 1 member/s, lifetimes are long-tailed
  sim_.RunUntil(50.0);
  EXPECT_GT(session->alive_count(), 5);
  EXPECT_GT(session->total_members_created(), 20);
  session->tree().CheckInvariants();
}

TEST_F(SessionTest, DepartureDisruptsDescendantsOnce) {
  auto session = MakeSession();
  // Hand-build: root <- a <- b <- c.
  const NodeId a = session->InjectMember(5.0, 1e9);
  const NodeId b = session->InjectMember(5.0, 1e9);
  const NodeId c = session->InjectMember(0.5, 1e9);
  sim_.RunUntil(1.0);
  Tree& tree = session->tree();
  // Rearrange deterministically.
  if (tree.Parent(b) != a) {
    tree.Detach(b);
    tree.Attach(a, b);
  }
  if (tree.Parent(c) != b) {
    tree.Detach(c);
    tree.Attach(b, c);
  }
  session->DepartNow(a);
  EXPECT_FALSE(tree.Alive(a));
  EXPECT_EQ(tree.Get(b).disruptions, 1);
  EXPECT_EQ(tree.Get(c).disruptions, 1);
  // Orphans rejoined immediately (structural model).
  EXPECT_TRUE(tree.IsRooted(b));
  EXPECT_TRUE(tree.IsRooted(c));
  // Failure rejoin is not protocol overhead.
  EXPECT_EQ(tree.Get(b).reconnections, 0);
  tree.CheckInvariants();
}

TEST_F(SessionTest, DepartureFiresHooksInOrder) {
  auto session = MakeSession();
  const NodeId a = session->InjectMember(5.0, 1e9);
  const NodeId b = session->InjectMember(0.5, 1e9);
  sim_.RunUntil(1.0);
  Tree& tree = session->tree();
  if (tree.Parent(b) != a) {
    tree.Detach(b);
    tree.Attach(a, b);
  }
  std::vector<std::string> events;
  session->hooks().AddOnDeparture([&](NodeId id) {
    EXPECT_EQ(id, a);
    // Tree must still be intact at this point.
    EXPECT_EQ(session->tree().Parent(b), a);
    events.push_back("departure");
  });
  session->hooks().AddOnDisruption([&](NodeId affected, NodeId failed) {
    EXPECT_EQ(affected, b);
    EXPECT_EQ(failed, a);
    events.push_back("disruption");
  });
  session->hooks().AddOnMemberDeparted(
      [&](const Member& m) { events.push_back("departed:" + std::to_string(m.id)); });
  session->DepartNow(a);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], "departure");
  EXPECT_EQ(events[1], "disruption");
  EXPECT_EQ(events[2], "departed:" + std::to_string(a));
}

TEST_F(SessionTest, LifetimeExpiryDepartsAutomatically) {
  auto session = MakeSession();
  const NodeId a = session->InjectMember(1.0, 10.0);
  sim_.RunUntil(9.0);
  EXPECT_TRUE(session->tree().Alive(a));
  sim_.RunUntil(11.0);
  EXPECT_FALSE(session->tree().Alive(a));
  EXPECT_EQ(session->alive_count(), 0);
}

TEST_F(SessionTest, HostsAreReleasedOnDeparture) {
  auto session = MakeSession();
  // Churn many short-lived members through a small host pool.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) session->InjectMember(1.0, 5.0);
    sim_.RunUntil(sim_.now() + 20.0);
    EXPECT_EQ(session->alive_count(), 0);
  }
  EXPECT_EQ(session->total_members_created(), 250);
}

TEST_F(SessionTest, SampleCandidatesExcludesFragmentAndIncludesRoot) {
  auto session = MakeSession();
  const NodeId a = session->InjectMember(5.0, 1e9);
  const NodeId b = session->InjectMember(0.5, 1e9);
  sim_.RunUntil(1.0);
  Tree& tree = session->tree();
  if (tree.Parent(b) != a) {
    tree.Detach(b);
    tree.Attach(a, b);
  }
  tree.Detach(a);  // fragment {a, b}
  const auto cands = session->SampleCandidates(100, a);
  EXPECT_FALSE(cands.empty());
  for (NodeId c : cands) {
    EXPECT_NE(c, a);
    EXPECT_NE(c, b);
  }
  EXPECT_EQ(cands.front(), kRootId);  // bootstrap knows the source
  tree.Attach(kRootId, a);            // restore for invariant check
  tree.CheckInvariants();
}

TEST_F(SessionTest, SampleCandidatesSkipsUnrootedMembers) {
  auto session = MakeSession();
  const NodeId a = session->InjectMember(5.0, 1e9);
  sim_.RunUntil(1.0);
  session->tree().Detach(a);
  const auto cands = session->SampleCandidates(100, kNoNode);
  for (NodeId c : cands) EXPECT_NE(c, a);
  session->tree().Attach(kRootId, a);
}

TEST_F(SessionTest, OverlayDelayIsSumOfHops) {
  auto session = MakeSession();
  const NodeId a = session->InjectMember(5.0, 1e9);
  const NodeId b = session->InjectMember(0.5, 1e9);
  sim_.RunUntil(1.0);
  Tree& tree = session->tree();
  if (tree.Parent(b) != a) {
    tree.Detach(b);
    tree.Attach(a, b);
  }
  ASSERT_EQ(tree.Parent(a), kRootId);
  const double expected =
      session->DelayMs(kRootId, a) + session->DelayMs(a, b);
  EXPECT_NEAR(session->OverlayDelayMs(b), expected, 1e-9);
  EXPECT_GE(session->Stretch(b), 1.0 - 1e-9);
}

TEST_F(SessionTest, ForceRejoinChargesReconnection) {
  auto session = MakeSession();
  const NodeId a = session->InjectMember(1.0, 1e9);
  sim_.RunUntil(1.0);
  session->tree().Detach(a);
  session->ForceRejoin(a);
  EXPECT_EQ(session->tree().Get(a).reconnections, 1);
  sim_.RunUntil(2.0);
  EXPECT_TRUE(session->tree().IsRooted(a));
}

TEST_F(SessionTest, DeterministicGivenSeed) {
  auto run = [this](std::uint64_t seed) {
    sim::Simulator sim;
    Session session(sim, *topology_, std::make_unique<proto::MinDepthProtocol>(),
                    SessionParams{}, seed);
    session.Prepopulate(40);
    session.StartArrivals(40.0 / rnd::kMeanLifetimeSeconds);
    sim.RunUntil(500.0);
    // Unsigned: the polynomial accumulator wraps by design (signed overflow
    // would be UB, and UBSan rightly trips on it).
    std::uint64_t checksum = static_cast<std::uint64_t>(session.alive_count());
    for (NodeId id : session.alive_members())
      checksum = checksum * 31 +
                 static_cast<std::uint64_t>(session.tree().Layer(id));
    return checksum;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST_F(SessionTest, RootNeverDeparts) {
  auto session = MakeSession();
  EXPECT_DEATH(session->DepartNow(kRootId), "source");
}

}  // namespace
}  // namespace omcast::overlay
