// Metrics collectors for the paper's evaluation (Section 6). Each collector
// hooks into a Session and accumulates one family of measurements:
//
//   * MemberOutcomes  -- per-lifetime disruption / reconnection counts of
//                        members that complete their lifetime inside the
//                        measurement window (Figs. 4, 5, 10, 11);
//   * TreeSnapshots   -- periodic whole-tree service delay / stretch / depth
//                        averages (Figs. 7, 8, 11);
//   * MemberTrace     -- time series of one tagged member's cumulative
//                        disruptions and service delay (Figs. 6, 9).
#pragma once

#include <limits>
#include <vector>

#include "overlay/session.h"
#include "util/stats.h"

namespace omcast::metrics {

class MemberOutcomes {
 public:
  explicit MemberOutcomes(overlay::Session& session);

  // Members qualify when they joined at/after time 0 (i.e. are not
  // pre-populated) and depart inside [begin, end].
  void SetWindow(double begin_s, double end_s);

  // Also records every still-alive member that joined at/after time 0
  // (with the disruptions/reconnections accrued so far). Call once at the
  // window end: the paper's averages are over *all* multicast members, so
  // long-lived members -- exactly those the reliability-oriented trees
  // protect -- must not be censored out.
  void HarvestAliveMembers();

  const util::RunningStat& disruptions() const { return disruptions_; }
  const util::RunningStat& reconnections() const { return reconnections_; }
  const std::vector<double>& disruption_samples() const {
    return disruption_samples_;
  }
  int qualifying_members() const {
    return static_cast<int>(disruptions_.count());
  }

 private:
  overlay::Session& session_;
  double begin_ = 0.0;
  double end_ = std::numeric_limits<double>::infinity();
  util::RunningStat disruptions_;
  util::RunningStat reconnections_;
  std::vector<double> disruption_samples_;
};

class TreeSnapshots {
 public:
  // Snapshots every `interval_s` within [begin, end] once Start() is called.
  TreeSnapshots(overlay::Session& session, double interval_s);

  void Start(double begin_s, double end_s);

  // Statistics over member-snapshots (every rooted member at every snap).
  const util::RunningStat& delay_ms() const { return delay_ms_; }
  const util::RunningStat& stretch() const { return stretch_; }
  // Statistics over snapshots.
  const util::RunningStat& depth() const { return depth_; }
  const util::RunningStat& population() const { return population_; }
  int snapshots_taken() const { return snaps_; }

 private:
  void Snap(double end_s);

  overlay::Session& session_;
  double interval_s_ = 0.0;
  util::RunningStat delay_ms_;
  util::RunningStat stretch_;
  util::RunningStat depth_;
  util::RunningStat population_;
  int snaps_ = 0;
};

class MemberTrace {
 public:
  // Samples the tracked member's service delay every `sample_interval_s`.
  MemberTrace(overlay::Session& session, double sample_interval_s);

  // Starts tracking `id` now; disruptions and delay samples accumulate
  // until the member departs.
  void Track(overlay::NodeId id);

  struct Point {
    double t = 0.0;  // simulation time, seconds
    double v = 0.0;
  };
  // Cumulative disruption count over time (one point per disruption).
  const std::vector<Point>& disruption_series() const { return disruptions_; }
  // Service delay (ms) samples over time.
  const std::vector<Point>& delay_series() const { return delays_; }

 private:
  void SampleDelay();

  overlay::Session& session_;
  double sample_interval_s_ = 0.0;
  overlay::NodeId tracked_ = overlay::kNoNode;
  int count_ = 0;
  std::vector<Point> disruptions_;
  std::vector<Point> delays_;
};

}  // namespace omcast::metrics
