// Multiple-tree (MDC) extension -- the paper's future-work direction.
//
// The paper argues for the single-tree + CER design but notes that
// multiple-tree approaches with multiple description coding (Padmanabhan et
// al.'s CoopNet, FatNemo) attack the same failure-resilience problem with
// redundancy instead of recovery: each member joins K independent trees,
// the stream is coded into K descriptions of rate 1/K, and playback only
// stalls when *every* description is interrupted at once.
//
// MultiTreeStream runs K parallel overlay sessions over the same physical
// topology with a mirrored workload: one arrival process draws each
// member's bandwidth and lifetime once and injects it into all K trees with
// bandwidth/K (the member's uplink is split across descriptions). Outages
// are tracked as real time intervals per (member, tree):
//
//   * a member is DEGRADED while at least one description is interrupted
//     (reduced quality under MDC);
//   * it STALLS while all K are interrupted simultaneously.
//
// With K = 1 the same accounting measures the single-tree baseline, and
// `cer_recovery = true` shortens each outage interval to the portion CER's
// striped repair cannot cover (via core::SimulateOutage), so
// redundancy-vs-recovery is compared under one metric. See
// bench/ext_multi_tree.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/cer/group.h"
#include "core/cer/recovery.h"
#include "net/topology.h"
#include "overlay/session.h"
#include "rand/distributions.h"
#include "rand/rng.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace omcast::stream {

struct MultiTreeParams {
  int trees = 2;              // K descriptions
  double detect_s = 5.0;      // failure detection per tree
  double rejoin_s = 10.0;     // parent re-finding per tree
  double buffer_s = 5.0;      // playback buffer (for CER deadline math)
  double packet_rate = 10.0;  // full-stream packet rate
  // Repair the outage with CER (group of `recovery_group` peers, striped).
  // Typically used with trees == 1 to model the paper's scheme.
  bool cer_recovery = false;
  int recovery_group = 3;
  double residual_lo_pkts = 0.0;
  double residual_hi_pkts = 9.0;
  // Per-tree overlay protocol factory (called once per description tree);
  // null selects MinDepthProtocol. Routed through the protocol-agnostic
  // overlay::Protocol seam so bench/ext_multi_tree can pit any algorithm's
  // trees against each other (e.g. exp::MakeProtocol-built ROST or clique).
  std::function<std::unique_ptr<overlay::Protocol>()> make_protocol;
};

class MultiTreeStream {
 public:
  MultiTreeStream(sim::Simulator& simulator, const net::Topology& topology,
                  MultiTreeParams params, std::uint64_t seed);

  // Starts the mirrored arrival process at `rate_per_s` members/second.
  void StartArrivals(double rate_per_s);
  void StopArrivals();

  // Computes the per-member stall/degraded ratios for every member whose
  // playback overlapped [begin, end]. Call once, after the run.
  void Finalize(double begin_s, double end_s);

  // Fraction of viewing time with ALL descriptions interrupted.
  const util::RunningStat& stall_ratio() const { return stall_; }
  // Fraction of viewing time with at least one description interrupted.
  const util::RunningStat& degraded_ratio() const { return degraded_; }

  int members_created() const { return static_cast<int>(members_.size()); }
  long outages_recorded() const { return outages_; }
  // Average live population across the K trees at Finalize time.
  double average_population() const;

  // A closed outage window (public: shared with the merge helper).
  struct Interval {
    double begin = 0.0;
    double end = 0.0;
  };

 private:
  struct MemberRecord {
    double join = 0.0;
    double depart = 0.0;
    // Outage intervals per tree.
    std::vector<std::vector<Interval>> outages;
  };

  void Arrive();
  void RecordOutage(int tree, overlay::NodeId session_node, double begin,
                    double end);
  double ResidualFraction(int tree, overlay::NodeId id);

  sim::Simulator& sim_;
  MultiTreeParams params_;
  rnd::Rng rng_;
  rnd::BoundedPareto bandwidth_dist_;
  rnd::LognormalDist lifetime_dist_;
  std::vector<std::unique_ptr<overlay::Session>> sessions_;
  // sessions_[k]'s NodeId -> index into members_ (dense; node ids are
  // assigned in lockstep across the mirrored sessions).
  std::vector<std::vector<int>> node_to_member_;
  std::vector<MemberRecord> members_;
  std::vector<std::vector<double>> residual_fraction_;  // per tree
  util::RunningStat stall_;
  util::RunningStat degraded_;
  bool arrivals_on_ = false;
  double arrival_rate_ = 0.0;
  long outages_ = 0;
};

}  // namespace omcast::stream
