#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace omcast::util {
namespace {

// Atomic because worker threads of the experiment runner log concurrently;
// relaxed ordering is fine for a filter threshold.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void Log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) <
      static_cast<int>(g_level.load(std::memory_order_relaxed)))
    return;
  // A single fprintf call: POSIX stdio locks the stream, so concurrent
  // messages interleave by line, never mid-line.
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
}

void LogDebug(const std::string& msg) { Log(LogLevel::kDebug, msg); }
void LogInfo(const std::string& msg) { Log(LogLevel::kInfo, msg); }
void LogWarn(const std::string& msg) { Log(LogLevel::kWarn, msg); }
void LogError(const std::string& msg) { Log(LogLevel::kError, msg); }

}  // namespace omcast::util
