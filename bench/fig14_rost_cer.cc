// Fig. 14: the combined system. ROST+CER (BTP tree, MLC groups, cooperative
// striped recovery) against the general scheme (minimum-depth tree, random
// recovery nodes, single-source repair), for recovery group sizes 1-3, with
// 95% confidence intervals across repetitions. The paper reports an 8-9x
// reduction, with ROST+CER at group size 1 already beating the baseline at
// group size 2.
#include <iostream>

#include "bench_common.h"

namespace {

struct Scheme {
  const char* label;
  omcast::exp::Algorithm algorithm;
  omcast::core::GroupSelection selection;
  omcast::core::RecoveryMode mode;
};

constexpr Scheme kSchemes[] = {
    {"min-depth + single-source", omcast::exp::Algorithm::kMinDepth,
     omcast::core::GroupSelection::kRandom,
     omcast::core::RecoveryMode::kSingleSource},
    {"ROST + CER", omcast::exp::Algorithm::kRost,
     omcast::core::GroupSelection::kMlc,
     omcast::core::RecoveryMode::kCooperative},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 14 -- ROST+CER vs MinDepth+SingleSource", env);

  runner::GridSpec spec;
  spec.figure = "fig14_rost_cer";
  spec.title = "ROST+CER vs MinDepth+SingleSource";
  spec.row_header = "scheme";
  for (const Scheme& scheme : kSchemes) spec.rows.push_back(scheme.label);
  spec.cols = {"group=1", "group=2", "group=3"};
  spec.reps = env.reps;
  spec.headline_metric = "starving_ratio";
  spec.run = [&env](const runner::CellContext& cell) {
    const Scheme& scheme = kSchemes[cell.row];
    stream::StreamParams sp;
    sp.recovery_group_size = static_cast<int>(cell.col) + 1;
    sp.selection = scheme.selection;
    sp.mode = scheme.mode;
    exp::ScenarioConfig config = env.BaseConfig();
    config.population = env.focus_size;
    config.seed = cell.seed;
    return bench::StreamCellResult(
        exp::RunStreamScenario(env.Topo(), scheme.algorithm, config, sp));
  };
  const runner::ResultsSink sink = bench::RunGridBench(env, spec);

  bench::PrintMetricTable(spec, sink, "starving_ratio", 3,
                          "avg starving time ratio (%) with 95% CI (" +
                              std::to_string(env.focus_size) + " members)",
                          /*scale=*/100.0, /*with_ci=*/true);
  return 0;
}
