// Chaos harness: runs a streaming session with every control path routed
// through a lossy FaultPlane while injecting correlated failures, then
// checks the hardening held up.
//
// The fault model attacks exactly the assumptions the oracle experiments
// make for free:
//
//   * heartbeat detection replaces the fixed detect/rejoin oracle, so
//     orphans discover parent deaths through (lossy) silence;
//   * ROST's lock handshake runs over messages with leases and timeouts,
//     so lost releases or dead holders cannot wedge the tree;
//   * gossip slices and ELN notifications can be lost or delayed;
//   * injectable failure patterns: one correlated stub-domain kill (every
//     member hosted in the domain dies at once), a flash crowd of
//     simultaneous random departures, and a recovery-group member killed
//     mid-repair while it is serving CER stripes;
//   * degraded-regime scenario family: a flash-crowd JOIN storm, an
//     ISP-level episodic-loss outage over one stub domain's links, and a
//     reconnect storm (members depart and re-enter through the session's
//     bounded-retry re-entry path), scored by the frame-playback QoE
//     metrics (degraded-time fraction, recovery-to-cadence latency, decode
//     stalls).
//
// Everything is seeded: the same config produces bit-identical runs (the
// chaos regression tests replay schedules and compare rolling-hash traces).
#pragma once

#include <map>
#include <string>

#include "exp/scenario.h"
#include "metrics/chaos_counters.h"
#include "overlay/gossip.h"
#include "overlay/heartbeat.h"
#include "sim/fault_plane.h"
#include "stream/packet_sim.h"

namespace omcast::exp {

struct ChaosConfig {
  int population = 200;       // steady-state size
  double warmup_s = 600.0;    // equilibration before the stream starts
  double stream_s = 120.0;    // packet-level stream length
  // Settling time after the stream: in-flight leases expire or release,
  // orphans finish rejoining. Should exceed rost.lock_lease_s and the
  // heartbeat suspicion timeout.
  double drain_s = 120.0;
  // Churn never stops, so a member whose parent died seconds before the
  // drain ends is legitimately (still) unrooted. Members found unrooted at
  // drain end get this long -- detection plus rejoin retries -- to recover;
  // only the ones still adrift afterwards count as failures.
  double settle_s = 30.0;
  std::uint64_t seed = 1;
  Algorithm algorithm = Algorithm::kRost;
  // Event-queue implementation for the run's simulator. Both kinds dispatch
  // identically (the determinism tests pin cross-queue digest equality);
  // exposed so chaos replay digests can be pinned under each.
  sim::QueueKind queue_kind = sim::QueueKind::kCalendar;

  sim::FaultPlaneParams fault;  // loss/dup/jitter for every control message

  bool use_heartbeats = true;  // heartbeat detection instead of the oracle
  overlay::HeartbeatParams heartbeat;
  bool use_gossip = false;  // real gossip membership over the fault plane
  overlay::GossipParams gossip;

  // --- failure injection (times relative to stream start; <0 disables) ----
  // Correlated kill: every member hosted in stub domain `domain_kill_index`
  // departs simultaneously at domain_kill_at_s.
  double domain_kill_at_s = -1.0;
  int domain_kill_index = 0;
  // Flash departure: `flash_departures` random members die at flash_at_s.
  double flash_at_s = -1.0;
  int flash_departures = 0;
  // Mid-repair kill: at mid_repair_kill_at_s a parent with children is
  // killed to start a CER repair; once its stripes are serving, the first
  // active recovery-group server is killed too, forcing a stripe failover.
  double mid_repair_kill_at_s = -1.0;
  // Flash-crowd join storm: `join_storm_count` members inject
  // simultaneously at join_storm_at_s (bandwidths/lifetimes drawn from the
  // session's distributions via the chaos RNG), stressing the join path
  // while the stream is live.
  double join_storm_at_s = -1.0;
  int join_storm_count = 0;
  // ISP-level correlated loss: at episodic_at_s every member hosted in stub
  // domain `episodic_domain_index` (and the root, if co-located) joins a
  // fault-plane link group whose episodic on/off loss process starts
  // immediately (sim::EpisodicLossParams).
  double episodic_at_s = -1.0;
  int episodic_domain_index = 0;
  sim::EpisodicLossParams episodic;
  // When >= 0 the episode ends (StopEpisodicLoss) at this offset; the drain
  // then measures recovery from the incident. Negative: the on/off process
  // outlasts the run, so members in the lossy domain stay semi-partitioned
  // through the drain and the settle window.
  double episodic_end_s = -1.0;
  // Rejoin-under-load storm: at reconnect_storm_at_s a
  // `reconnect_storm_fraction` sample of the alive membership departs
  // abruptly and re-enters through the session's bounded-retry re-entry
  // path after per-member exponential downtimes (mean
  // reconnect_downtime_mean_s).
  double reconnect_storm_at_s = -1.0;
  double reconnect_storm_fraction = 0.0;
  double reconnect_downtime_mean_s = 5.0;

  core::RostParams rost;            // algorithm == kRost
  proto::CliqueParams clique;       // algorithm == kClique
  overlay::SessionParams session;   // external_failure_detection is set
                                    // from use_heartbeats by the runner
  stream::PacketSimParams packet;

  // --- observability (obs/) -- all non-owning, null = off, each must
  // outlive the run. See ScenarioConfig for semantics; the chaos runner
  // additionally merges its end-of-run chaos counter snapshot into
  // `registry`.
  obs::Tracer* tracer = nullptr;
  obs::Registry* registry = nullptr;
  obs::SimProfiler* profiler = nullptr;

  // Recovery-curve sampling: when > 0, the run records deterministic
  // sim-time-windowed series (obs::TimeSeries, this window width) into the
  // result registry under "chaos.*" -- unrooted members, pending
  // re-entries, wedged leases, repair backlog, degraded-receiver fraction,
  // and the late-frame rate -- sampled from stream start through the end of
  // the settle window.
  double timeseries_window_s = 0.0;
  // Stitch the live trace stream into per-disruption recovery lifecycles
  // (obs::IncidentLog): phase latencies land in the registry and
  // ChaosResult::incidents. Uses `tracer` when set; otherwise a minimal
  // run-local tracer feeds the analysis (its ring contents are discarded).
  bool incident_analysis = false;
};

struct ChaosResult {
  metrics::ChaosCounters counters;
  // The same snapshot as a flattened registry (obs::Registry::Flatten()):
  // the export path the runner writes into its per-cell JSON.
  std::map<std::string, double> registry;
  // Per-disruption lifecycle stats (obs::IncidentLog::FlatStats): counts
  // and per-phase latency percentiles. Empty unless
  // ChaosConfig::incident_analysis.
  std::map<std::string, double> incidents;

  // Starving-time ratio over finalized members (as RunStreamScenario, but
  // from the packet-level ground truth).
  double avg_starving_ratio = 0.0;
  double ci95 = 0.0;
  int members = 0;

  // What the injections actually hit.
  int domain_members_killed = 0;
  int flash_members_killed = 0;
  bool mid_repair_kill_fired = false;
  int join_storm_injected = 0;
  long episodes_started = 0;
  int reconnect_storm_killed = 0;

  // --- degraded-regime QoE (zero unless packet.frame_playback) -------------
  // Mean fraction of finalized members' viewing time spent degraded or
  // stalled; the scenario family's headline metric.
  double degraded_time_fraction = 0.0;
  // Mean completed-episode latency from leaving nominal cadence to
  // regaining it.
  double mean_recovery_to_cadence_s = 0.0;
  long decode_stalls = 0;
  long regime_transitions = 0;
  long dependency_resyncs = 0;
  int permanently_stalled = 0;

  // --- re-entry state machine ----------------------------------------------
  long reentries_scheduled = 0;
  long reentries_attached = 0;
  long reentries_abandoned = 0;
  // Must be zero after the settle window: every re-entry resolved.
  long reentries_pending = 0;

  // --- post-drain health ---------------------------------------------------
  // No lease is held past its expiry (a wedged lock would deadlock
  // switching forever). Must always be true.
  bool zero_wedged_locks = false;
  // Members unrooted at drain end that were still alive, unrooted after the
  // settle window, AND refused by the final placement audit while the
  // rooted tree had spare capacity: orphans the protocol failed to
  // reattach. Stranded-orphan health gates run on this field.
  int unrooted_members = 0;
  // Members the audit could not place because the rooted tree had zero
  // spare slots: with a heavy-tailed capacity mix the overlay can be
  // genuinely full after correlated departures, and no protocol can attach
  // a member to a tree with no open slot. Workload infeasibility, not a
  // protocol failure -- reported, never gated.
  int capacity_starved = 0;
  long final_population = 0;
};

ChaosResult RunChaosScenario(const net::Topology& topology,
                             const ChaosConfig& config);

}  // namespace omcast::exp
