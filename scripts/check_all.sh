#!/usr/bin/env bash
# Full correctness gate: builds and tests every supported configuration,
# then runs the repo's static checks. This is what CI runs; run it locally
# before sending a PR that touches src/.
#
# Usage:
#   scripts/check_all.sh [--quick] [--jobs N]
#
#   --quick   skip the ThreadSanitizer configuration (the codebase is
#             single-threaded today; TSan mostly guards future parallelism)
#   --jobs N  parallel build/test jobs (default: nproc)
#
# Configurations (see CMakePresets.json):
#   release     RelWithDebInfo, -Werror, no sanitizers
#   clang       clang++ with -Wthread-safety -Werror (when clang++ installed)
#   asan-ubsan  AddressSanitizer + UndefinedBehaviorSanitizer, DCHECK tier on
#   tsan        ThreadSanitizer, DCHECK tier on
#
# Static checks:
#   scripts/omcast-lint                  repo-specific determinism/concurrency/
#                                        protocol lint (+ fixture selftests,
#                                        SARIF selftest, committed baseline)
#   clang-tidy / clang-format            only when installed (check-only)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --jobs) ;; # value handled below
    [0-9]*) JOBS="$arg" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"

failures=()

run_config() {
  local preset="$1"
  echo "==== [$preset] configure + build + ctest ===="
  if cmake --preset "$preset" >/dev/null \
      && cmake --build --preset "$preset" -j "$JOBS" \
      && ctest --preset "$preset" -j "$JOBS"; then
    echo "==== [$preset] OK ===="
  else
    echo "==== [$preset] FAILED ===="
    failures+=("$preset")
  fi
}

run_config release
if command -v clang++ >/dev/null 2>&1; then
  run_config clang
else
  echo "==== [clang] clang++ not installed, skipping -Wthread-safety gate ===="
fi
run_config asan-ubsan
if [[ "$QUICK" -eq 0 ]]; then
  run_config tsan
fi

echo "==== [lint] omcast-lint (selftests + src/ vs baseline) ===="
if python3 scripts/omcast-lint --selftest scripts/omcast_lint/fixtures \
    && python3 scripts/lint_determinism.py --selftest tests/lint_fixtures \
    && python3 scripts/omcast-lint --sarif-selftest \
    && python3 scripts/omcast-lint src/ \
        --baseline scripts/omcast_lint_baseline.json; then
  echo "==== [lint] OK ===="
else
  echo "==== [lint] FAILED ===="
  failures+=(lint)
fi

if command -v clang-tidy >/dev/null 2>&1; then
  echo "==== [clang-tidy] src/ (compile db: build-release) ===="
  if find src -name '*.cc' -print0 \
      | xargs -0 -P "$JOBS" -n 8 clang-tidy -p build-release --quiet; then
    echo "==== [clang-tidy] OK ===="
  else
    echo "==== [clang-tidy] FAILED ===="
    failures+=(clang-tidy)
  fi
else
  echo "==== [clang-tidy] not installed, skipping ===="
fi

if command -v clang-format >/dev/null 2>&1; then
  echo "==== [clang-format] check only ===="
  if find src tests bench examples \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) -print0 \
      | xargs -0 clang-format --dry-run --Werror; then
    echo "==== [clang-format] OK ===="
  else
    echo "==== [clang-format] FAILED ===="
    failures+=(clang-format)
  fi
else
  echo "==== [clang-format] not installed, skipping ===="
fi

if [[ "${#failures[@]}" -gt 0 ]]; then
  echo "check_all: FAILED configurations: ${failures[*]}" >&2
  exit 1
fi
echo "check_all: all configurations passed"
