// Seeded random-number substrate. Every stochastic component takes an Rng&
// (or a seed to build one) so that experiments are reproducible and
// multi-seed confidence intervals (paper Fig. 14) are possible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "util/check.h"

namespace omcast::rnd {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    util::Check(lo <= hi, "Uniform: lo <= hi");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    util::Check(lo <= hi, "UniformInt: lo <= hi");
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  std::size_t UniformIndex(std::size_t n) {
    util::Check(n > 0, "UniformIndex: n > 0");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Exponential with the given mean (inter-arrival times of Poisson
  // arrivals use mean = 1/lambda).
  double ExponentialMean(double mean) {
    util::Check(mean > 0.0, "ExponentialMean: mean > 0");
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  double Lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  // Derives an independent child generator (used to give each experiment
  // repetition its own stream).
  Rng Fork() { return Rng(engine_()); }

  template <typename T>
  void Shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  // Samples up to `k` distinct elements of `v` uniformly (partial
  // Fisher-Yates); order of the returned sample is random.
  template <typename T>
  std::vector<T> SampleWithoutReplacement(std::vector<T> v, std::size_t k) {
    if (k >= v.size()) {
      Shuffle(v);
      return v;
    }
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j =
          i + std::uniform_int_distribution<std::size_t>(0, v.size() - 1 - i)(
                  engine_);
      std::swap(v[i], v[j]);
    }
    v.resize(k);
    return v;
  }

  // SampleWithoutReplacement without copying the population: O(k) time and
  // space instead of O(|v|). Draws the IDENTICAL variate sequence as the
  // by-value overload -- the partial Fisher-Yates swaps are replayed through
  // a small override table instead of a mutable copy -- so switching a call
  // site between the two overloads cannot change any downstream random
  // draw. The linear override scan is O(k^2) worst case, which beats the
  // O(|v|) copy whenever k << |v| (candidate sampling at 10^6 members: the
  // by-value overload copies 8MB per join).
  template <typename T>
  std::vector<T> SampleWithoutReplacementFrom(const std::vector<T>& v,
                                              std::size_t k) {
    if (k >= v.size()) return SampleWithoutReplacement(v, k);
    // Flat open-addressing override table (index -> displaced value). A
    // linear override list makes each draw O(i) and the whole call O(k^2),
    // which at 10^5 members turned join-candidate sampling into the single
    // hottest function of the entire simulation; hashed overrides keep the
    // replayed swaps O(1) expected per draw. The table is thread_local,
    // epoch-stamped scratch: stale cells retire by epoch bump, so a call
    // allocates and clears nothing at steady state.
    struct Cell {
      std::size_t pos = 0;
      std::uint64_t epoch = 0;
      T value{};
    };
    thread_local std::vector<Cell> cells;
    thread_local std::uint64_t epoch = 0;
    std::size_t cap = cells.size();
    if (cap < 4 * k) {
      cap = 16;
      while (cap < 4 * k) cap <<= 1;
      cells.assign(cap, Cell{});
      epoch = 0;
    }
    const std::size_t mask = cap - 1;
    ++epoch;
    // Finds the cell holding `idx`, or the stale cell where it would go.
    const auto slot_of = [&](std::size_t idx) {
      std::uint64_t h = static_cast<std::uint64_t>(idx);
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      std::size_t pos = static_cast<std::size_t>(h) & mask;
      while (cells[pos].epoch == epoch && cells[pos].pos != idx)
        pos = (pos + 1) & mask;
      return pos;
    };
    const auto at = [&](std::size_t idx) -> const T& {
      const std::size_t pos = slot_of(idx);
      return cells[pos].epoch == epoch && cells[pos].pos == idx
                 ? cells[pos].value
                 : v[idx];
    };
    std::vector<T> out;
    out.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j =
          i + std::uniform_int_distribution<std::size_t>(0, v.size() - 1 - i)(
                  engine_);
      out.push_back(at(j));
      // Replay the swap: position j now holds what position i held. Position
      // i itself is never read again (every later draw lands at index > i).
      const T displaced = at(i);
      cells[slot_of(j)] = Cell{j, epoch, displaced};
    }
    return out;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace omcast::rnd
