// Fixture: unseeded randomness outside src/rand must be flagged.
#include <cstdlib>
#include <random>

int UnseededDraw() {
  std::random_device rd;  // expect(rand)
  return static_cast<int>(rd());
}

int LibcRand() {
  srand(42);         // expect(rand)
  return rand() % 6; // expect(rand)
}

// The escape hatch silences an audited site.
// omcast-lint: allow(rand)
int AllowedEntropySource() { return static_cast<int>(std::random_device{}()); }

int AllowedSameLine() {
  return rand();  // omcast-lint: allow(rand)
}

// Mentions inside comments or strings never count: rand(), random_device.
const char* kDoc = "call rand() for chaos";
