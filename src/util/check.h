// Lightweight runtime checks with source location, used across the library
// for invariant enforcement (tree shape, protocol state machines, ...).
//
// These are *always on*: the simulator is the product, and a silently corrupt
// multicast tree would invalidate every experiment built on top of it.
#pragma once

#include <source_location>
#include <string_view>

namespace omcast::util {

// Aborts with a diagnostic if `cond` is false. `what` should state the
// violated invariant, e.g. "child layer == parent layer + 1".
void Check(bool cond, std::string_view what,
           std::source_location loc = std::source_location::current());

// Aborts unconditionally; for unreachable branches.
[[noreturn]] void Fail(std::string_view what,
                       std::source_location loc = std::source_location::current());

}  // namespace omcast::util
