// expect(rost-event-emit) -- taxonomy gap findings anchor to line 1.
//
// Fixture [rost-event-emit, cross-reference arm]: this file defines a ROST
// transition, so every kSwitch*/kLock* kind in the real taxonomy
// (src/obs/trace.h, resolved by walking up from this file) must have an
// emit site here. Only kLockDeny is emitted; the other family kinds are
// reported as file-level findings on line 1.
namespace fixture {

enum class EventKind : int {
  kLockDeny,
};

struct Tracer {
  void Emit(EventKind kind, int subject, int detail);
};

class RostProtocol {
 public:
  void OnLockDeny(int initiator, int serial);

 private:
  Tracer* tracer_ = nullptr;
};

// The transition itself is compliant -- only the taxonomy check fires.
void RostProtocol::OnLockDeny(int initiator, int serial) {
  tracer_->Emit(EventKind::kLockDeny, initiator, serial);
}

}  // namespace fixture
