#include "overlay/gossip.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"

namespace omcast::overlay {

GossipService::GossipService(Session& session, GossipParams params,
                             std::uint64_t seed)
    : session_(session), params_(params), rng_(seed) {
  util::Check(params_.view_size > 0, "gossip view must hold entries");
  util::Check(params_.period_s > 0.0, "gossip period must be positive");
  session_.hooks().AddOnAttached(
      [this](NodeId id, NodeId parent) {
        Activate(id);
        // Bootstrap: the joiner already contacted a batch of members while
        // re-finding a parent (the paper's "queries the existing members
        // ... until it obtains a certain number of known members"); those
        // contacts seed its view, as do the parent and the parent's view.
        const double now = session_.simulator().now();
        std::vector<Entry> bootstrap = {{parent, now}};
        for (NodeId m : rng_.SampleWithoutReplacementFrom(
                 session_.alive_members(),
                 static_cast<std::size_t>(params_.exchange_size)))
          bootstrap.push_back({m, now});
        Merge(id, bootstrap);
        if (parent != kRootId) Merge(id, SampleSlice(parent));
        Merge(parent, {{id, now}});
      });
  session_.hooks().AddOnMemberDeparted(
      [this](const Member& m) { Deactivate(m.id); });
}

GossipService::View& GossipService::ViewFor(NodeId member) {
  return views_[member];  // value-initialized on first access
}

void GossipService::Activate(NodeId member) {
  View& view = ViewFor(member);
  if (view.active) return;
  view.active = true;
  // Desynchronize the first tick.
  view.timer = session_.simulator().ScheduleAfter(
      rng_.Uniform(0.0, params_.period_s), [this, member] { Tick(member); },
      "gossip.tick");
}

void GossipService::Deactivate(NodeId member) {
  View& view = ViewFor(member);
  view.active = false;
  if (view.timer != sim::kInvalidEventId) {
    session_.simulator().Cancel(view.timer);
    view.timer = sim::kInvalidEventId;
  }
  view.entries.clear();
}

void GossipService::Prune(View& view, double now) {
  std::erase_if(view.entries, [&](const Entry& e) {
    return now - e.heard_at > params_.entry_ttl_s;
  });
}

std::vector<GossipService::Entry> GossipService::SampleSlice(NodeId member) {
  View& view = ViewFor(member);
  // Never ship expired records (a responding member filters its own view
  // as it answers, even if its periodic prune has not run yet).
  Prune(view, session_.simulator().now());
  std::vector<Entry> slice = rng_.SampleWithoutReplacement(
      view.entries, static_cast<std::size_t>(params_.exchange_size) - 1);
  // A member always advertises itself with a fresh timestamp.
  slice.push_back({member, session_.simulator().now()});
  return slice;
}

void GossipService::Merge(NodeId member, const std::vector<Entry>& incoming) {
  View& view = ViewFor(member);
  const double now = session_.simulator().now();
  for (const Entry& in : incoming) {
    // Refuse entries that are already past the TTL: without this filter
    // stale records circulate between views as an epidemic, re-entering
    // each view faster than its periodic prune can remove them.
    if (now - in.heard_at > params_.entry_ttl_s) {
      ++stale_rejections_;
      continue;
    }
    if (in.id == member || in.id == kRootId) {
      if (in.id == member) continue;
      // The source is implicitly known (bootstrap); keep it out of views so
      // every view slot carries information.
      continue;
    }
    auto it = std::find_if(view.entries.begin(), view.entries.end(),
                           [&](const Entry& e) { return e.id == in.id; });
    if (it != view.entries.end()) {
      it->heard_at = std::max(it->heard_at, in.heard_at);
    } else {
      view.entries.push_back(in);
    }
  }
  if (static_cast<int>(view.entries.size()) > params_.view_size) {
    // Keep the freshest view_size entries.
    std::nth_element(view.entries.begin(),
                     view.entries.begin() + params_.view_size,
                     view.entries.end(), [](const Entry& a, const Entry& b) {
                       return a.heard_at > b.heard_at;
                     });
    view.entries.resize(static_cast<std::size_t>(params_.view_size));
  }
}

void GossipService::Tick(NodeId member) {
  View& view = ViewFor(member);
  view.timer = sim::kInvalidEventId;
  if (!view.active || !session_.tree().Alive(member)) return;
  const double now = session_.simulator().now();
  ++view.ticks;
  Prune(view, now);
  if (obs::Tracer* tracer = session_.tracer(); tracer != nullptr) {
    tracer->Emit(now, obs::EventKind::kGossipRound, member, kNoNode,
                 static_cast<std::int64_t>(view.entries.size()));
  }

  // A member whose view drained (isolation, mass departures) re-contacts
  // the bootstrap service for fresh peers.
  if (view.entries.empty()) {
    std::vector<Entry> seed;
    for (NodeId m : rng_.SampleWithoutReplacementFrom(
             session_.alive_members(),
             static_cast<std::size_t>(params_.exchange_size)))
      seed.push_back({m, now});
    Merge(member, seed);
  }

  // Contact a random live partner; dead contacts are detected and dropped.
  for (int attempt = 0; attempt < 3 && !view.entries.empty(); ++attempt) {
    const std::size_t pick = rng_.UniformIndex(view.entries.size());
    const NodeId partner = view.entries[pick].id;
    if (!session_.tree().Alive(partner)) {
      view.entries[pick] = view.entries.back();
      view.entries.pop_back();
      ++dead_contacts_;
      continue;
    }
    // Push-pull: exchange random slices.
    const auto mine = SampleSlice(member);
    if (fault_plane_ == nullptr) {
      const auto theirs = SampleSlice(partner);
      Merge(partner, mine);
      Merge(member, theirs);
    } else {
      // The request carries our slice; the partner merges it on arrival and
      // replies with its own. Either leg can be lost, duplicated (Merge is
      // idempotent) or delayed past the TTL (Merge rejects, counted).
      const double hop = session_.DelayMs(member, partner) / 1000.0;
      fault_plane_->Deliver(
          member, partner, hop, [this, member, partner, hop, mine] {
            if (!session_.tree().Alive(partner)) return;
            Merge(partner, mine);
            const auto theirs = SampleSlice(partner);
            fault_plane_->Deliver(partner, member, hop,
                                  [this, member, theirs] {
                                    if (!session_.tree().Alive(member))
                                      return;
                                    Merge(member, theirs);
                                  });
          });
    }
    view.entries[pick].heard_at = now;  // the contact itself is fresh news
    ++exchanges_;
    break;
  }
  view.timer = session_.simulator().ScheduleAfter(
      params_.period_s, [this, member] { Tick(member); }, "gossip.tick");
}

std::vector<NodeId> GossipService::KnownMembers(Session& session,
                                                NodeId requester, int k) {
  // A member mid-(re)join uses its accumulated view; a brand-new member has
  // none yet and falls back to querying the bootstrap service (modelled as
  // a uniform sample, exactly the paper's "queries the existing members for
  // information about other participants").
  const auto it = requester != kNoNode ? views_.find(requester) : views_.end();
  if (it != views_.end() && !it->second.entries.empty()) {
    const View& view = it->second;
    std::vector<NodeId> ids;
    ids.reserve(view.entries.size());
    for (const Entry& e : view.entries) ids.push_back(e.id);
    return rng_.SampleWithoutReplacement(std::move(ids),
                                         static_cast<std::size_t>(k));
  }
  std::vector<NodeId> sample = session.rng().SampleWithoutReplacementFrom(
      session.alive_members(), static_cast<std::size_t>(k) + 1);
  std::erase(sample, requester);
  if (sample.size() > static_cast<std::size_t>(k)) sample.pop_back();
  return sample;
}

std::size_t GossipService::ViewSize(NodeId member) const {
  const auto it = views_.find(member);
  return it == views_.end() ? 0 : it->second.entries.size();
}

double GossipService::LiveFraction(NodeId member) const {
  const auto it = views_.find(member);
  if (it == views_.end()) return 0.0;
  const View& view = it->second;
  if (view.entries.empty()) return 0.0;
  int alive = 0;
  for (const Entry& e : view.entries)
    if (session_.tree().Alive(e.id)) ++alive;
  return static_cast<double>(alive) / static_cast<double>(view.entries.size());
}

long GossipService::TickCount(NodeId member) const {
  const auto it = views_.find(member);
  return it == views_.end() ? 0 : it->second.ticks;
}

std::vector<double> GossipService::EntryAges(NodeId member, double now) const {
  std::vector<double> ages;
  const auto it = views_.find(member);
  if (it == views_.end()) return ages;
  for (const Entry& e : it->second.entries) ages.push_back(now - e.heard_at);
  return ages;
}

}  // namespace omcast::overlay
