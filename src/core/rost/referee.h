// Reference-node (referee) mechanism of paper Section 3.4.
//
// ROST's switching decisions trust two claims a member makes about itself:
// its outbound bandwidth and its age. A cheater can inflate either to climb
// toward the root (and then, maliciously, depart and disrupt most of the
// tree). The referee mechanism makes both claims third-party attested:
//
//   * when a member first joins, its *parent* (never the member itself, to
//     prevent collusion) records the observed join time on r_age > 1 random
//     members (age referees) and has a measurer set gauge the member's real
//     outgoing bandwidth, storing the result on r_bw > 1 bandwidth referees;
//   * anyone can later verify the member's BTP by consulting the referees;
//   * dead referees are replaced, the replacement synchronizing from a
//     surviving referee. Only if *all* referees of a kind die before repair
//     is the attested value lost: age restarts from the re-enrollment
//     instant and bandwidth is re-measured (an honest value again).
//
// r_age and r_bw are > 1 purely for this fault tolerance.
#pragma once

#include <vector>

#include "overlay/session.h"

namespace omcast::core {

struct RefereeParams {
  int age_referees = 2;  // r_age
  int bw_referees = 2;   // r_bw
};

class RefereeService {
 public:
  explicit RefereeService(RefereeParams params);

  // Parent-side enrollment when `node` first attaches: picks referees and
  // records the ground-truth join time and measured bandwidth.
  void Enroll(overlay::Session& session, overlay::NodeId node);

  bool IsEnrolled(overlay::NodeId node) const;

  // Referee-attested age of `node` at `now`. Repairs dead referees as a
  // side effect (the paper's replace-and-synchronize maintenance, performed
  // lazily at verification time).
  double VerifiedAge(overlay::Session& session, overlay::NodeId node,
                     sim::Time now);

  // Referee-attested outbound bandwidth of `node`.
  double VerifiedBandwidth(overlay::Session& session, overlay::NodeId node);

  // Maintenance statistics (for tests and the ablation bench).
  long referee_replacements() const { return replacements_; }
  long attestation_resets() const { return resets_; }

 private:
  struct Record {
    bool enrolled = false;
    std::vector<overlay::NodeId> age_referees;
    std::vector<overlay::NodeId> bw_referees;
    // Values as held by the (surviving) referees.
    double attested_join_time = 0.0;
    double attested_bandwidth = 0.0;
  };

  Record& RecordFor(overlay::NodeId node);
  // Replaces dead referees in `referees`; returns false if all were dead
  // (attested state lost).
  bool Repair(overlay::Session& session, std::vector<overlay::NodeId>& referees,
              int target_count);
  std::vector<overlay::NodeId> PickReferees(overlay::Session& session,
                                            overlay::NodeId exclude, int count);

  RefereeParams params_;
  std::vector<Record> records_;
  long replacements_ = 0;
  long resets_ = 0;
};

}  // namespace omcast::core
