// Fig. 4: average number of streaming disruptions per node vs steady-state
// network size, for the five tree-construction algorithms.
//
// Paper shape: minimum-depth and longest-first worst; relaxed BO better;
// relaxed TO better still; ROST best (36-57% below relaxed BO).
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 4 -- avg streaming disruptions per node", env);

  std::vector<std::string> header = {"size"};
  for (const exp::Algorithm a : exp::AllAlgorithms())
    header.push_back(exp::AlgorithmLabel(a));
  util::Table table(std::move(header));

  for (const int size : env.sizes) {
    std::vector<double> row;
    for (const exp::Algorithm a : exp::AllAlgorithms()) {
      exp::ScenarioConfig config = env.BaseConfig();
      config.population = size;
      const auto reps = bench::RunTreeReps(env, a, config);
      row.push_back(bench::MeanOf(
          reps, [](const auto& r) { return r.avg_disruptions; }));
    }
    table.AddRow(std::to_string(size), row);
  }
  table.Print(std::cout, "avg disruptions per node (rows: steady-state size)");
  return 0;
}
