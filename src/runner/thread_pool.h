// Work-stealing thread pool for the experiment runner.
//
// Tasks are submitted round-robin onto per-worker deques; each worker pops
// its own deque LIFO (cache-warm) and steals FIFO from the other workers
// when its deque runs dry, so a few long cells (paper-scale relaxed-BO runs)
// cannot strand idle cores behind a single queue position. Determinism of
// *results* is never the pool's job: grid cells derive their seeds from the
// cell coordinates and write to pre-assigned output slots, so any
// interleaving the pool produces yields bit-identical output.
//
// Exceptions thrown by tasks are captured per task; Wait() rethrows the one
// from the lowest submission index (a deterministic choice even though the
// execution order is not) after every task has finished or been captured.
// The destructor drains all remaining tasks and joins the workers, so a
// pool can always be destroyed safely mid-flight.
//
// Lock discipline (checked by clang -Wthread-safety via the annotations):
// one mutex guards every queue and counter; NextTask REQUIRES it; the
// public surface EXCLUDES it. Only `workers_` is unguarded -- it is written
// exclusively by the constructor before any concurrency exists and is
// immutable afterwards.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace omcast::runner {

class ThreadPool {
 public:
  // `num_threads` <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks may be submitted from the owning thread only.
  void Submit(std::function<void()> task) OMCAST_EXCLUDES(mu_);

  // Blocks until every submitted task has completed, then rethrows the
  // captured exception with the lowest submission index, if any (remaining
  // captured exceptions are discarded; each Wait() reports at most one).
  void Wait() OMCAST_EXCLUDES(mu_);

  // Immutable after construction (set before any worker can observe it).
  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Number of tasks executed by a worker other than the one whose deque
  // they were submitted to. Observability for tests; not deterministic.
  long steals() const OMCAST_EXCLUDES(mu_);

 private:
  struct Task {
    std::size_t index = 0;
    std::function<void()> fn;
  };

  void WorkerLoop(std::size_t self) OMCAST_EXCLUDES(mu_);
  // Pops the next task for worker `self` (own deque back, else steal from
  // the front of the deepest other deque).
  bool NextTask(std::size_t self, Task& out) OMCAST_REQUIRES(mu_);

  mutable util::Mutex mu_;
  util::CondVar work_cv_;   // workers: "a task may be available"
  util::CondVar done_cv_;   // Wait(): "in_flight_ may be zero"
  std::vector<std::deque<Task>> queues_ OMCAST_GUARDED_BY(mu_);
  std::size_t next_index_ OMCAST_GUARDED_BY(mu_) = 0;  // submission counter
  std::size_t next_queue_ OMCAST_GUARDED_BY(mu_) = 0;  // round-robin target
  std::size_t in_flight_ OMCAST_GUARDED_BY(mu_) = 0;   // not yet finished
  bool stop_ OMCAST_GUARDED_BY(mu_) = false;
  long steals_ OMCAST_GUARDED_BY(mu_) = 0;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors_
      OMCAST_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  // construction-only writes
};

}  // namespace omcast::runner
