#include "stream/streaming.h"

#include <gtest/gtest.h>

#include <memory>

#include "net/topology.h"
#include "proto/min_depth.h"
#include "sim/simulator.h"

namespace omcast::stream {
namespace {

using overlay::kRootId;
using overlay::NodeId;
using overlay::Session;
using overlay::SessionParams;

class StreamingTest : public ::testing::Test {
 protected:
  StreamingTest() {
    rnd::Rng topo_rng(1);
    topology_ = std::make_unique<net::Topology>(
        net::Topology::Generate(net::TinyTopologyParams(), topo_rng));
  }

  void MakeSession(StreamParams params, std::uint64_t seed = 9,
                   double root_bandwidth = 100.0) {
    SessionParams sp;
    sp.root_bandwidth = root_bandwidth;
    session_ = std::make_unique<Session>(
        sim_, *topology_, std::make_unique<proto::MinDepthProtocol>(), sp,
        seed);
    streaming_ = std::make_unique<StreamingLayer>(*session_, params, seed);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topology_;
  std::unique_ptr<Session> session_;
  std::unique_ptr<StreamingLayer> streaming_;
};

TEST_F(StreamingTest, FailureTriggersOneOutagePerOrphan) {
  MakeSession(StreamParams{});
  // root <- hub <- {c1, c2}; hub's failure orphans both children.
  const NodeId hub = session_->InjectMember(5.0, 1e9);
  const NodeId c1 = session_->InjectMember(0.5, 1e9);
  const NodeId c2 = session_->InjectMember(0.5, 1e9);
  // Helpers for recovery.
  for (int i = 0; i < 20; ++i) session_->InjectMember(1.0, 1e9);
  sim_.RunUntil(1.0);
  overlay::Tree& tree = session_->tree();
  for (NodeId id : {c1, c2}) {
    if (tree.Parent(id) != hub) {
      tree.Detach(id);
      tree.Attach(hub, id);
    }
  }
  session_->DepartNow(hub);
  EXPECT_EQ(streaming_->outages_simulated(), 2);
}

TEST_F(StreamingTest, StarvingRatioRecordedOnDeparture) {
  StreamParams p;
  p.recovery_group_size = 1;
  MakeSession(p);
  streaming_->SetMeasurementWindow(0.0, 1e9);
  for (int i = 0; i < 20; ++i) session_->InjectMember(1.0, 1e9);
  const NodeId hub = session_->InjectMember(5.0, 40.0);  // dies at t=40
  sim_.RunUntil(1.0);
  const NodeId victim = session_->InjectMember(0.5, 120.0);
  sim_.RunUntil(2.0);
  overlay::Tree& tree = session_->tree();
  if (tree.Parent(victim) != hub) {
    tree.Detach(victim);
    tree.Attach(hub, victim);
  }
  sim_.RunUntil(200.0);  // hub dies at 40, victim at ~122
  ASSERT_FALSE(tree.Alive(victim));
  EXPECT_GE(streaming_->ratio_stat().count(), 1u);
  // The victim starved for part of its 115 s of viewing.
  EXPECT_GT(streaming_->ratio_stat().max(), 0.0);
  EXPECT_LE(streaming_->ratio_stat().max(), 1.0);
}

TEST_F(StreamingTest, DescendantsInheritOrphanStall) {
  StreamParams p;
  p.recovery_group_size = 1;
  MakeSession(p);
  streaming_->SetMeasurementWindow(0.0, 1e9);
  for (int i = 0; i < 10; ++i) session_->InjectMember(1.0, 1e9);
  const NodeId hub = session_->InjectMember(5.0, 1e9);
  const NodeId mid = session_->InjectMember(2.0, 60.0);
  const NodeId leaf = session_->InjectMember(0.5, 60.0);
  sim_.RunUntil(1.0);
  overlay::Tree& tree = session_->tree();
  tree.Detach(mid);
  tree.Attach(hub, mid);
  tree.Detach(leaf);
  tree.Attach(mid, leaf);
  session_->DepartNow(hub);
  // Exactly one outage (mid is the only orphan), charged to mid and leaf.
  EXPECT_EQ(streaming_->outages_simulated(), 1);
  sim_.RunUntil(100.0);  // both depart, ratios recorded
  // Qualifying departures: hub (stall 0), mid and leaf.
  ASSERT_EQ(streaming_->ratio_stat().count(), 3u);
  const auto& samples = streaming_->ratio_samples();
  EXPECT_DOUBLE_EQ(samples[0], 0.0);  // the hub itself never starved
  // mid and leaf suffered the same outage against the same view time.
  EXPECT_GT(samples[1], 0.0);
  EXPECT_NEAR(samples[1], samples[2], 0.05);
}

TEST_F(StreamingTest, BiggerGroupsReduceStarving) {
  // Run the same churn twice; per outage, group size 3 must starve far less
  // than size 1 (Fig. 12's order-of-magnitude claim).
  auto run = [&](int group_size) {
    sim::Simulator sim;
    // A modest source (capacity 6) forces real tree depth on this tiny
    // overlay so failures actually orphan subtrees.
    SessionParams sp;
    sp.root_bandwidth = 6.0;
    Session session(sim, *topology_, std::make_unique<proto::MinDepthProtocol>(),
                    sp, 33);
    StreamParams p;
    p.recovery_group_size = group_size;
    StreamingLayer streaming(session, p, 33);
    streaming.SetMeasurementWindow(0.0, 1e9);
    session.Prepopulate(80);
    session.StartArrivals(80.0 / rnd::kMeanLifetimeSeconds);
    sim.RunUntil(4000.0);
    EXPECT_GT(streaming.outages_simulated(), 0);
    return streaming.outage_starving_stat().mean();
  };
  const double r1 = run(1);
  const double r3 = run(3);
  EXPECT_GT(r1, 0.0);
  EXPECT_LT(r3, r1 / 2.0);
}

TEST_F(StreamingTest, CooperativeBeatsSingleSource) {
  // Drive identical failures under both modes (same seed, same residual
  // bandwidth draws): striping over 3 nodes must starve less than the
  // single-source chain.
  auto run = [&](core::RecoveryMode mode) {
    sim::Simulator sim;
    Session session(sim, *topology_, std::make_unique<proto::MinDepthProtocol>(),
                    SessionParams{}, 44);
    StreamParams p;
    p.recovery_group_size = 3;
    p.mode = mode;
    StreamingLayer streaming(session, p, 44);
    streaming.SetMeasurementWindow(0.0, 1e9);
    for (int i = 0; i < 30; ++i) session.InjectMember(1.0, 1e9);
    sim.RunUntil(1.0);
    for (int round = 0; round < 5; ++round) {
      const overlay::NodeId hub = session.InjectMember(5.0, 1e9);
      const overlay::NodeId c1 = session.InjectMember(0.5, 1e9);
      const overlay::NodeId c2 = session.InjectMember(0.5, 1e9);
      sim.RunUntil(sim.now() + 1.0);
      overlay::Tree& tree = session.tree();
      for (overlay::NodeId c : {c1, c2}) {
        if (tree.Parent(c) != hub) {
          tree.Detach(c);
          tree.Attach(hub, c);
        }
      }
      session.DepartNow(hub);
    }
    EXPECT_EQ(streaming.outages_simulated(), 10);
    return streaming.outage_starving_stat().mean();
  };
  const double coop = run(core::RecoveryMode::kCooperative);
  const double single = run(core::RecoveryMode::kSingleSource);
  EXPECT_GT(single, 0.0);
  EXPECT_LT(coop, single);
}

TEST_F(StreamingTest, WindowFiltersPrepopulatedMembers) {
  MakeSession(StreamParams{});
  streaming_->SetMeasurementWindow(0.0, 1e9);
  session_->Prepopulate(50);
  sim_.RunUntil(3000.0);
  // Some prepopulated members departed, but none qualify (negative join).
  for (double r : streaming_->ratio_samples()) EXPECT_GE(r, 0.0);
  // Inject a fresh short-lived member: it qualifies after departing.
  const auto before = streaming_->ratio_stat().count();
  session_->InjectMember(1.0, 30.0);
  sim_.RunUntil(3100.0);
  EXPECT_EQ(streaming_->ratio_stat().count(), before + 1);
}

TEST_F(StreamingTest, AggregateRateReflectsUsableSources) {
  StreamParams p;
  p.recovery_group_size = 4;
  MakeSession(p, /*seed=*/9, /*root_bandwidth=*/6.0);
  streaming_->SetMeasurementWindow(0.0, 1e9);
  session_->Prepopulate(80);
  session_->StartArrivals(80.0 / rnd::kMeanLifetimeSeconds);
  sim_.RunUntil(3000.0);
  ASSERT_GT(streaming_->outages_simulated(), 0);
  // Mean assembled rate lies between a single node's mean residual (0.45)
  // and the cap (1.0).
  EXPECT_GT(streaming_->aggregate_rate_stat().mean(), 0.3);
  EXPECT_LE(streaming_->aggregate_rate_stat().mean(), 1.0);
}

}  // namespace
}  // namespace omcast::stream
