"""Lint engine: runs every registered rule over a SourceFile, applies the
allow() escape hatch, and performs stale-suppression detection.

Importing this module pulls in the rule modules, which register themselves
with the registry.
"""

from __future__ import annotations

import sys
from pathlib import Path

from . import rules_concurrency  # noqa: F401  (registration side effect)
from . import rules_determinism  # noqa: F401
from . import rules_protocol     # noqa: F401
from .registry import RULES, STALE_ALLOW, Finding
from .source import CXX_SUFFIXES, SourceFile


def lint_source(sf: SourceFile, stale_check: bool = True) -> list[Finding]:
    findings: list[Finding] = []
    # (line_idx, rule) pairs an allow() annotation actually silenced --
    # the evidence the stale-suppression audit runs against.
    suppressed: set[tuple[int, str]] = set()
    for name, r in RULES.items():
        for idx, message in r.check(sf):
            if name in sf.allowed_rules(idx):
                suppressed.add((idx, name))
                continue
            findings.append(Finding(sf.path, idx + 1, name, message))
    if stale_check:
        for idx, names in sf.allow_annotations():
            for name in names:
                if name == STALE_ALLOW:
                    continue  # the audit itself cannot be suppressed
                if name not in RULES:
                    findings.append(Finding(
                        sf.path, idx + 1, STALE_ALLOW,
                        f"allow() names unknown rule '{name}' (known: "
                        f"{', '.join(sorted(RULES))}); a misspelled "
                        f"suppression silently suppresses nothing"))
                elif not ({(idx, name), (idx + 1, name)} & suppressed):
                    findings.append(Finding(
                        sf.path, idx + 1, STALE_ALLOW,
                        f"allow({name}) no longer suppresses anything on "
                        f"this or the next line: the hazard it documented "
                        f"is gone -- delete the annotation (or move it to "
                        f"the line that still needs it)"))
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def lint_file(path: Path, stale_check: bool = True) -> list[Finding]:
    sf = SourceFile.load(path)
    if sf is None:
        return []
    return lint_source(sf, stale_check=stale_check)


def collect_files(paths: list[str]) -> list[Path]:
    files = []
    for p in paths:
        path = Path(p)
        if not path.exists():
            # A typo'd path must not report "clean": fail loudly so CI can't
            # silently lint nothing.
            raise FileNotFoundError(p)
        if path.is_dir():
            files.extend(sorted(f for f in path.rglob("*")
                                if f.suffix in CXX_SUFFIXES))
        elif path.suffix in CXX_SUFFIXES:
            files.append(path)
        else:
            print(f"warning: skipping non-C++ path {path}", file=sys.stderr)
    return files


def lint_paths(paths: list[str],
               stale_check: bool = True) -> tuple[list[Finding], int]:
    """Lints files/directories; returns (findings, files linted)."""
    files = collect_files(paths)
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path, stale_check=stale_check))
    return findings, len(files)
