file(REMOVE_RECURSE
  "CMakeFiles/omcast_overlay.dir/gossip.cc.o"
  "CMakeFiles/omcast_overlay.dir/gossip.cc.o.d"
  "CMakeFiles/omcast_overlay.dir/session.cc.o"
  "CMakeFiles/omcast_overlay.dir/session.cc.o.d"
  "CMakeFiles/omcast_overlay.dir/tree.cc.o"
  "CMakeFiles/omcast_overlay.dir/tree.cc.o.d"
  "libomcast_overlay.a"
  "libomcast_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omcast_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
