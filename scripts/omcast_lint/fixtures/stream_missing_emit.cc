// Fixture [rost-event-emit, PacketLevelStream table]: frame-dependency
// playback transitions pair with the kPlaybackRegime / kDecodeStall /
// kDependencyResync taxonomy kinds. A JudgeWindow body that reports decode
// stalls but never the dependency-resync edge must be flagged at the
// definition line.
//
// TaxonomyRegistry() references every playback-family kind so the
// whole-file taxonomy cross-reference (resolved against the real
// src/obs/trace.h by walking up from this file) stays satisfied.
namespace fixture {

enum class EventKind : int {
  kDependencyResync,
  kPlaybackRegime,
  kDecodeStall,
};

struct Tracer {
  void Emit(EventKind kind, int subject, int peer, int detail);
};

class PacketLevelStream {
 public:
  void SetRegime(int member, int regime);
  void JudgeWindow(int member);

 private:
  Tracer* tracer_ = nullptr;
};

// Negative: a compliant transition emits its paired kind.
void PacketLevelStream::SetRegime(int member, int regime) {
  tracer_->Emit(EventKind::kPlaybackRegime, member, -1, regime);
}

void PacketLevelStream::JudgeWindow(int member) {  // expect(rost-event-emit)
  tracer_->Emit(EventKind::kDecodeStall, member, -1, 2);
  // BUG (deliberate): the first-on-time-reference branch never emits
  // kDependencyResync, so recovery from a desynced start is untraceable.
}

// Keeps the file-level taxonomy cross-reference satisfied (every family
// kind has an emit site somewhere in this file).
inline void TaxonomyRegistry(Tracer* tracer) {
  tracer->Emit(EventKind::kDependencyResync, 0, 0, 0);
  tracer->Emit(EventKind::kPlaybackRegime, 0, 0, 0);
  tracer->Emit(EventKind::kDecodeStall, 0, 0, 0);
}

}  // namespace fixture
