#include "proto/clique/clique.h"

#include <algorithm>

#include "obs/registry.h"
#include "obs/trace.h"
#include "proto/selection.h"
#include "util/check.h"

namespace omcast::proto {

using overlay::kNoNode;
using overlay::kRootId;
using overlay::NodeId;
using overlay::Session;
using overlay::Tree;

void ValidateCliqueParams(const CliqueParams& params) {
  util::Check(params.max_cluster_size >= 2,
              "a cluster must hold its delegate plus at least one leaf");
  util::Check(params.min_cluster_size >= 1,
              "the minimum cluster size must be positive");
  util::Check(params.min_cluster_size <= params.max_cluster_size,
              "cluster size bounds must be ordered (min <= max)");
  util::Check(params.election_period_s > 0.0,
              "the election period must be positive (zero would busy-loop "
              "maintenance rounds at one instant)");
  util::Check(params.promotion_timeout_s > 0.0,
              "the promotion timeout must be positive (an instant timeout "
              "would dissolve every cluster before its successor can root)");
  util::Check(params.stability_margin >= 0.0,
              "the stability margin must be non-negative");
}

CliqueProtocol::CliqueProtocol(CliqueParams params) : params_(params) {
  ValidateCliqueParams(params_);
}

int CliqueProtocol::active_clusters() const {
  int n = 0;
  for (const Cluster& c : clusters_)
    if (c.active) ++n;
  return n;
}

int CliqueProtocol::ClusterOf(NodeId id) const {
  const auto slot = static_cast<std::size_t>(id);
  return slot < cluster_of_.size() ? cluster_of_[slot] : -1;
}

NodeId CliqueProtocol::DelegateOf(int cluster) const {
  return clusters_[static_cast<std::size_t>(cluster)].delegate;
}

void CliqueProtocol::EnsureSize(Session& session) {
  if (cluster_of_.size() < session.tree().size())
    cluster_of_.resize(session.tree().size(), -1);
}

void CliqueProtocol::EnsureElectionTimer(Session& session) {
  if (election_timer_started_) return;
  election_timer_started_ = true;
  ScheduleElection(session);
}

void CliqueProtocol::ScheduleElection(Session& session) {
  session.simulator().ScheduleAfter(
      params_.election_period_s,
      [this, &session] {
        RunElection(session);
        ScheduleElection(session);
      },
      "clique.election");
}

bool CliqueProtocol::IsBackboneCandidate(NodeId id) const {
  if (id == kRootId) return true;
  const int cid = ClusterOf(id);
  return cid >= 0 && clusters_[static_cast<std::size_t>(cid)].delegate == id;
}

void CliqueProtocol::SendAdvisory(Session& session, NodeId from, NodeId to) {
  if (fault_plane_ == nullptr || from == to) return;
  const double hop = session.DelayMs(from, to) / 1000.0;
  fault_plane_->Deliver(from, to, hop, [] {});
}

bool CliqueProtocol::TryAttach(Session& session, NodeId id) {
  EnsureSize(session);
  EnsureElectionTimer(session);
  const int cid = ClusterOf(id);
  if (cid >= 0) {
    if (clusters_[static_cast<std::size_t>(cid)].delegate == id)
      return AttachToBackbone(session, id);
    return AttachWithinCluster(session, id);
  }
  return TryFreshAttach(session, id);
}

bool CliqueProtocol::AttachToBackbone(Session& session, NodeId id) {
  const int cid = ClusterOf(id);
  const std::vector<NodeId> pool =
      session.CollectJoinPool(session.params().candidate_sample_size, id);
  std::vector<NodeId> backbone;
  backbone.reserve(pool.size());
  for (NodeId m : pool)
    if (m != id && IsBackboneCandidate(m)) backbone.push_back(m);
  ++backbone_messages_;  // the position claim hits the backbone tier
  const NodeId parent = PickMinDepthParent(session, backbone, id);
  if (parent == kNoNode) {
    // The backbone refused the claim (no interior spare capacity). The
    // session retries with backoff, but the cluster's patience is bounded:
    // if the seat is still off the backbone when the claim timeout fires,
    // the cluster dissolves and its members re-disperse through the fresh
    // path instead of hanging off an unroutable delegate forever.
    ArmSuccessionTimeout(session, cid);
    return false;
  }
  session.tree().Attach(parent, id);
  ++backbone_messages_;  // the accepting backbone node's acknowledgement
  ++backbone_reattaches_;
  SendAdvisory(session, id, parent);
  // The seat is rooted again: retire any pending promotion/claim timeout.
  ++clusters_[static_cast<std::size_t>(cid)].succession_epoch;
  clusters_[static_cast<std::size_t>(cid)].claim_timer_armed = false;
  if (obs::Tracer* tr = session.tracer())
    tr->Emit(session.simulator().now(),
             obs::EventKind::kCliqueBackboneReattach, id, parent, cid);
  return true;
}

bool CliqueProtocol::AttachWithinCluster(Session& session, NodeId id) {
  const int cid = ClusterOf(id);
  Cluster& c = clusters_[static_cast<std::size_t>(cid)];
  const Tree& tree = session.tree();
  // Seat vacancies are filled synchronously by OnDeparture, so a missing or
  // dead seat here means succession already failed -- disband and let the
  // member re-enter through the fresh path.
  if (c.delegate == kNoNode || !tree.Alive(c.delegate)) {
    DissolveCluster(session, cid);
    return TryFreshAttach(session, id);
  }
  std::vector<NodeId> local;
  local.reserve(c.members.size());
  for (NodeId m : c.members) {
    if (m == id) continue;
    if (!tree.Alive(m) || !tree.InTree(m)) continue;
    if (!tree.IsRooted(m)) continue;
    if (tree.IsInSubtreeOf(m, id)) continue;
    local.push_back(m);
  }
  ++local_messages_;  // the intra-clique parent query
  const NodeId parent = PickMinDepthParent(session, local, id);
  if (parent == kNoNode) {
    // A rooted clique with no spare slot is genuinely full: migrate out
    // through the fresh path. An unrooted one (its seat is mid-claim on the
    // backbone) just retries via the session's backoff.
    if (tree.IsRooted(c.delegate)) {
      LeaveCluster(id);
      return TryFreshAttach(session, id);
    }
    return false;
  }
  session.tree().Attach(parent, id);
  ++local_messages_;  // the accepting member's acknowledgement
  ++local_recoveries_;
  if (obs::Tracer* tr = session.tracer())
    tr->Emit(session.simulator().now(), obs::EventKind::kCliqueLocalRecovery,
             id, parent, cid);
  return true;
}

bool CliqueProtocol::TryFreshAttach(Session& session, NodeId id) {
  const std::vector<NodeId> pool =
      session.CollectJoinPool(session.params().candidate_sample_size, id);
  // Prefer boarding an existing clique with room (the root is skipped: its
  // children are delegates only, never leaves).
  std::vector<NodeId> open;
  open.reserve(pool.size());
  for (NodeId m : pool) {
    const int mc = ClusterOf(m);
    if (mc < 0) continue;
    const Cluster& c = clusters_[static_cast<std::size_t>(mc)];
    if (!c.active) continue;
    if (static_cast<int>(c.members.size()) >= params_.max_cluster_size)
      continue;
    open.push_back(m);
  }
  ++local_messages_;  // the boarding query
  NodeId parent = PickMinDepthParent(session, open, id);
  if (parent == kNoNode && !FormCluster(session, id)) {
    // Every open clique is capacity-full and the backbone refused a new
    // delegate seat. Overflow admission: board under ANY non-root member
    // with a spare slot -- a size-capped clique or even a clusterless
    // member parked there by an earlier dissolution. The size cap is an
    // admission preference and clusterless capacity is still capacity;
    // honoring either scruple here would strand the member outright.
    std::vector<NodeId> any;
    any.reserve(pool.size());
    for (NodeId m : pool)
      if (m != kRootId) any.push_back(m);
    ++local_messages_;  // the widened (overflow) boarding query
    parent = PickMinDepthParent(session, any, id);
    if (parent != kNoNode) ++overflow_attaches_;
  }
  if (parent == kNoNode) {
    if (ClusterOf(id) >= 0) return true;  // FormCluster already placed it
    return PreemptAttach(session, pool, id);
  }
  const int mc = ClusterOf(parent);
  session.tree().Attach(parent, id);
  ++local_messages_;
  // Under a clusterless (overflow) parent the joiner stays clusterless too;
  // it re-enters the clique structure through this same path when it is
  // next orphaned.
  if (mc >= 0) {
    cluster_of_[static_cast<std::size_t>(id)] = mc;
    clusters_[static_cast<std::size_t>(mc)].members.push_back(id);
  }
  return true;
}

bool CliqueProtocol::PreemptAttach(Session& session,
                                   const std::vector<NodeId>& pool,
                                   NodeId id) {
  Tree& tree = session.tree();
  // The joiner must be able to host the displaced leaf, and the leaf must
  // be strictly weaker: each splice then grows rooted fan-out, so repeated
  // preemptions terminate with the backlog drained rather than ping-ponging
  // free-riders.
  if (tree.SpareCapacity(id) < 1) return false;
  const double joiner_bw = tree.Get(id).reported_bandwidth;
  NodeId weakest = kNoNode;
  for (NodeId c : pool) {
    if (c == kRootId || IsBackboneCandidate(c)) continue;  // seats stay put
    if (tree.ChildCount(c) != 0) continue;  // only leaves: nobody else moves
    const double bw = tree.Get(c).reported_bandwidth;
    if (bw >= joiner_bw) continue;
    if (weakest == kNoNode || bw < tree.Get(weakest).reported_bandwidth ||
        (bw == tree.Get(weakest).reported_bandwidth && c < weakest))
      weakest = c;
  }
  if (weakest == kNoNode) return false;
  // Splice: the joiner takes the leaf's slot, the leaf becomes its child --
  // an intra-cluster move announced cluster-locally, never to the backbone.
  const NodeId slot_parent = tree.Parent(weakest);
  tree.Detach(weakest);
  tree.Attach(slot_parent, id);
  tree.Attach(id, weakest);
  ++tree.Get(weakest).reconnections;
  ++overflow_attaches_;
  local_messages_ += 2;  // eviction notice + the displaced leaf's reattach
  const int mc = ClusterOf(slot_parent);
  if (mc >= 0) {
    cluster_of_[static_cast<std::size_t>(id)] = mc;
    clusters_[static_cast<std::size_t>(mc)].members.push_back(id);
  }
  return true;
}

bool CliqueProtocol::FormCluster(Session& session, NodeId id) {
  // The founder becomes a delegate: allocate the cluster first so the
  // backbone filter recognizes its claim, then roll back if the backbone
  // refuses (no cluster exists without a rooted delegate).
  const int cid = AllocateCluster();
  Cluster& c = clusters_[static_cast<std::size_t>(cid)];
  c.delegate = id;
  c.members.assign(1, id);
  c.active = true;
  cluster_of_[static_cast<std::size_t>(id)] = cid;
  if (!AttachToBackbone(session, id)) {
    cluster_of_[static_cast<std::size_t>(id)] = -1;
    c.delegate = kNoNode;
    c.members.clear();
    c.active = false;
    ++c.succession_epoch;  // retires the claim timeout the refusal armed
    c.claim_timer_armed = false;
    free_clusters_.push_back(cid);
    return false;
  }
  ++clusters_formed_;
  if (obs::Tracer* tr = session.tracer())
    tr->Emit(session.simulator().now(), obs::EventKind::kCliqueFormed, id,
             session.tree().Parent(id), cid);
  return true;
}

void CliqueProtocol::OnDeparture(Session& session, NodeId id) {
  EnsureSize(session);
  const int cid = ClusterOf(id);
  if (cid < 0) return;
  Cluster& c = clusters_[static_cast<std::size_t>(cid)];
  const bool was_delegate = c.delegate == id;
  LeaveCluster(id);
  if (!was_delegate) return;  // a leaf death is strictly cluster-internal
  c.delegate = kNoNode;
  if (c.members.empty()) {
    DissolveCluster(session, cid);
    return;
  }
  ElectSuccessor(session, cid);
}

void CliqueProtocol::ElectSuccessor(Session& session, int cluster) {
  Cluster& c = clusters_[static_cast<std::size_t>(cluster)];
  const Tree& tree = session.tree();
  // The dead delegate's direct children are now orphaned fragment roots and
  // every surviving member hangs inside one of their fragments. The seat
  // goes to the strongest fragment root -- highest outdegree, ties to the
  // oldest member, then the smallest id -- because a fragment root is the
  // one member whose rejoin can carry the clique back to the backbone.
  NodeId best = kNoNode;
  for (NodeId m : c.members) {
    if (!tree.Alive(m) || tree.Parent(m) != kNoNode) continue;
    if (best == kNoNode) {
      best = m;
      continue;
    }
    const int cb = tree.Capacity(best);
    const int cm = tree.Capacity(m);
    const double jb = tree.Get(best).join_time;
    const double jm = tree.Get(m).join_time;
    if (cm > cb || (cm == cb && (jm < jb || (jm == jb && m < best)))) best = m;
  }
  if (best == kNoNode) {
    // No orphaned fragment root to promote: the clique has no path back to
    // the backbone -- disband it.
    DissolveCluster(session, cluster);
    return;
  }
  c.delegate = best;
  ++promotions_;
  local_messages_ += static_cast<long>(c.members.size());  // claim broadcast
  for (NodeId m : c.members) SendAdvisory(session, best, m);
  ArmSuccessionTimeout(session, cluster);
  if (obs::Tracer* tr = session.tracer())
    tr->Emit(session.simulator().now(),
             obs::EventKind::kCliqueDelegatePromoted, best, kNoNode, cluster);
}

void CliqueProtocol::ArmSuccessionTimeout(Session& session, int cluster) {
  Cluster& arm = clusters_[static_cast<std::size_t>(cluster)];
  // One pending timeout at a time: re-arming on every refused claim would
  // push the deadline out past each retry and the patience would never run
  // out.
  if (arm.claim_timer_armed) return;
  arm.claim_timer_armed = true;
  const int epoch = ++arm.succession_epoch;
  session.simulator().ScheduleAfter(
      params_.promotion_timeout_s,
      [this, &session, cluster, epoch] {
        Cluster& c = clusters_[static_cast<std::size_t>(cluster)];
        if (!c.active || c.succession_epoch != epoch) return;
        c.claim_timer_armed = false;
        const Tree& tree = session.tree();
        if (c.delegate != kNoNode && tree.Alive(c.delegate) &&
            tree.IsRooted(c.delegate))
          return;  // the claim landed
        DissolveCluster(session, cluster);
      },
      "clique.promotion_timeout");
}

void CliqueProtocol::RunElection(Session& session) {
  const Tree& tree = session.tree();
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    const int cid = static_cast<int>(i);
    Cluster& c = clusters_[i];
    if (!c.active) continue;
    ++elections_;
    local_messages_ += static_cast<long>(c.members.size());  // keepalive poll
    // An undersized clique dissolves administratively -- but only when some
    // other active clique has room, so a tiny population cannot livelock
    // forming and disbanding its only cluster.
    if (static_cast<int>(c.members.size()) < params_.min_cluster_size) {
      bool other_has_room = false;
      for (std::size_t j = 0; j < clusters_.size(); ++j) {
        if (j == i || !clusters_[j].active) continue;
        if (static_cast<int>(clusters_[j].members.size()) <
            params_.max_cluster_size) {
          other_has_room = true;
          break;
        }
      }
      if (other_has_room) {
        DissolveCluster(session, cid);
        continue;
      }
    }
    // Stability challenge: a direct in-cluster child whose outdegree beats
    // the incumbent's by the margin (and that has a slot to adopt it into)
    // takes the seat.
    const NodeId seat = c.delegate;
    if (seat != kNoNode && tree.Alive(seat) && tree.InTree(seat) &&
        tree.IsRooted(seat) && tree.Parent(seat) != kNoNode) {
      NodeId challenger = kNoNode;
      for (NodeId m : tree.ChildrenOf(seat)) {
        if (ClusterOf(m) != cid || m == seat) continue;
        if (!tree.Alive(m)) continue;
        if (tree.SpareCapacity(m) < 1) continue;
        if (static_cast<double>(tree.Capacity(m)) <
            static_cast<double>(tree.Capacity(seat)) + params_.stability_margin)
          continue;
        if (challenger == kNoNode) {
          challenger = m;
          continue;
        }
        const int cc = tree.Capacity(challenger);
        const int cm = tree.Capacity(m);
        const double jc = tree.Get(challenger).join_time;
        const double jm = tree.Get(m).join_time;
        if (cm > cc || (cm == cc && (jm < jc || (jm == jc && m < challenger))))
          challenger = m;
      }
      if (challenger != kNoNode) PromoteDelegate(session, cid, challenger);
    }
    if (obs::Tracer* tr = session.tracer())
      tr->Emit(session.simulator().now(), obs::EventKind::kCliqueElection,
               c.delegate, kNoNode, cid);
  }
}

void CliqueProtocol::PromoteDelegate(Session& session, int cluster,
                                     NodeId challenger) {
  Cluster& c = clusters_[static_cast<std::size_t>(cluster)];
  Tree& tree = session.tree();
  const NodeId incumbent = c.delegate;
  const NodeId grand = tree.Parent(incumbent);
  util::Check(tree.Parent(challenger) == incumbent,
              "promotion swaps a delegate with one of its direct children");
  // Announcement-based atomic swap (the structural half of ROST's
  // PerformSwitch, without the lock-lease handshake): the challenger takes
  // the incumbent's backbone position, the incumbent steps down to be its
  // child, and both keep their remaining children.
  tree.Detach(challenger);
  tree.Detach(incumbent);
  tree.Attach(grand, challenger);
  tree.Attach(challenger, incumbent);
  // Both participants re-announce their position: protocol overhead, same
  // accounting as ROST's switch reconnections.
  ++tree.Get(challenger).reconnections;
  ++tree.Get(incumbent).reconnections;
  c.delegate = challenger;
  ++promotions_;
  backbone_messages_ += 2;  // hand-over notices to the backbone parent
  SendAdvisory(session, challenger, grand);
  local_messages_ += static_cast<long>(c.members.size());  // cluster notice
  for (NodeId m : c.members) SendAdvisory(session, challenger, m);
  if (obs::Tracer* tr = session.tracer())
    tr->Emit(session.simulator().now(),
             obs::EventKind::kCliqueDelegatePromoted, challenger, incumbent,
             cluster);
}

void CliqueProtocol::DissolveCluster(Session& session, int cluster) {
  Cluster& c = clusters_[static_cast<std::size_t>(cluster)];
  if (!c.active) return;
  if (obs::Tracer* tr = session.tracer())
    tr->Emit(session.simulator().now(), obs::EventKind::kCliqueDissolved,
             c.delegate != kNoNode
                 ? c.delegate
                 : (c.members.empty() ? kNoNode : c.members.front()),
             kNoNode, cluster);
  for (NodeId m : c.members) cluster_of_[static_cast<std::size_t>(m)] = -1;
  ++clusters_dissolved_;
  c.delegate = kNoNode;
  c.members.clear();
  c.active = false;
  ++c.succession_epoch;  // retires any in-flight promotion timeout
  c.claim_timer_armed = false;
  free_clusters_.push_back(cluster);
}

void CliqueProtocol::LeaveCluster(NodeId id) {
  const int cid = ClusterOf(id);
  if (cid < 0) return;
  Cluster& c = clusters_[static_cast<std::size_t>(cid)];
  const auto it = std::find(c.members.begin(), c.members.end(), id);
  if (it != c.members.end()) c.members.erase(it);
  cluster_of_[static_cast<std::size_t>(id)] = -1;
}

int CliqueProtocol::AllocateCluster() {
  if (!free_clusters_.empty()) {
    const int cid = free_clusters_.back();
    free_clusters_.pop_back();
    return cid;
  }
  clusters_.emplace_back();
  return static_cast<int>(clusters_.size()) - 1;
}

void CliqueProtocol::ExportCounters(obs::Registry& reg) const {
  reg.Count("clique.clusters_formed", static_cast<double>(clusters_formed_));
  reg.Count("clique.clusters_dissolved",
            static_cast<double>(clusters_dissolved_));
  reg.Count("clique.elections", static_cast<double>(elections_));
  reg.Count("clique.promotions", static_cast<double>(promotions_));
  reg.Count("clique.local_recoveries",
            static_cast<double>(local_recoveries_));
  reg.Count("clique.backbone_reattaches",
            static_cast<double>(backbone_reattaches_));
  reg.Count("clique.backbone_messages",
            static_cast<double>(backbone_messages_));
  reg.Count("clique.local_messages", static_cast<double>(local_messages_));
  reg.Count("clique.overflow_attaches",
            static_cast<double>(overflow_attaches_));
  reg.SetGauge("clique.active_clusters",
               static_cast<double>(active_clusters()));
}

}  // namespace omcast::proto
