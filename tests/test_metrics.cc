#include "metrics/collectors.h"

#include <gtest/gtest.h>

#include <memory>

#include "net/topology.h"
#include "proto/min_depth.h"
#include "sim/simulator.h"
#include "util/log.h"

namespace omcast::metrics {
namespace {

using overlay::kRootId;
using overlay::NodeId;
using overlay::Session;
using overlay::SessionParams;

class MetricsTest : public ::testing::Test {
 protected:
  MetricsTest() {
    rnd::Rng topo_rng(1);
    topology_ = std::make_unique<net::Topology>(
        net::Topology::Generate(net::TinyTopologyParams(), topo_rng));
    session_ = std::make_unique<Session>(
        sim_, *topology_, std::make_unique<proto::MinDepthProtocol>(),
        SessionParams{}, 13);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topology_;
  std::unique_ptr<Session> session_;
};

TEST_F(MetricsTest, MemberOutcomesCountsOnlyWindowedDepartures) {
  MemberOutcomes outcomes(*session_);
  outcomes.SetWindow(100.0, 200.0);
  session_->InjectMember(1.0, 50.0);   // departs at 50: before the window
  session_->InjectMember(1.0, 150.0);  // departs at 150: inside
  session_->InjectMember(1.0, 500.0);  // departs at 500: after
  sim_.RunUntil(600.0);
  EXPECT_EQ(outcomes.qualifying_members(), 1);
}

TEST_F(MetricsTest, MemberOutcomesSkipsPrepopulated) {
  MemberOutcomes outcomes(*session_);
  outcomes.SetWindow(0.0, 1e6);
  session_->Prepopulate(40);
  sim_.RunUntil(3000.0);
  // Departures happened, but all were pre-populated (join_time < 0).
  int departed = 40 - session_->alive_count();
  ASSERT_GT(departed, 3);
  EXPECT_EQ(outcomes.qualifying_members(), 0);
  // Harvesting alive members also skips them.
  outcomes.HarvestAliveMembers();
  EXPECT_EQ(outcomes.qualifying_members(), 0);
}

TEST_F(MetricsTest, HarvestAddsAliveJoiners) {
  MemberOutcomes outcomes(*session_);
  outcomes.SetWindow(0.0, 1e6);
  for (int i = 0; i < 5; ++i) session_->InjectMember(1.0, 1e9);
  sim_.RunUntil(10.0);
  EXPECT_EQ(outcomes.qualifying_members(), 0);  // nobody departed
  outcomes.HarvestAliveMembers();
  EXPECT_EQ(outcomes.qualifying_members(), 5);
}

TEST_F(MetricsTest, TreeSnapshotsAverageOverWindow) {
  TreeSnapshots snaps(*session_, 50.0);
  for (int i = 0; i < 10; ++i) session_->InjectMember(2.0, 1e9);
  snaps.Start(100.0, 300.0);
  sim_.RunUntil(400.0);
  EXPECT_EQ(snaps.snapshots_taken(), 5);  // 100,150,200,250,300
  EXPECT_GT(snaps.delay_ms().mean(), 0.0);
  EXPECT_GE(snaps.stretch().mean(), 1.0);
  EXPECT_NEAR(snaps.population().mean(), 10.0, 0.5);
  EXPECT_GE(snaps.depth().mean(), 1.0);
}

TEST_F(MetricsTest, TreeSnapshotsSkipUnrootedMembers) {
  TreeSnapshots snaps(*session_, 10.0);
  const NodeId a = session_->InjectMember(2.0, 1e9);
  const NodeId b = session_->InjectMember(2.0, 1e9);
  sim_.RunUntil(1.0);
  overlay::Tree& tree = session_->tree();
  if (tree.Parent(b) != a) {
    tree.Detach(b);
    tree.Attach(a, b);
  }
  tree.Detach(a);  // both unrooted now
  snaps.Start(2.0, 12.0);
  sim_.RunUntil(15.0);
  EXPECT_NEAR(snaps.population().mean(), 0.0, 1e-9);
  tree.Attach(kRootId, a);
}

TEST_F(MetricsTest, MemberTraceRecordsDisruptionsAndDelays) {
  MemberTrace trace(*session_, 5.0);
  const NodeId hub = session_->InjectMember(5.0, 1e9);
  const NodeId tagged = session_->InjectMember(0.5, 1e9);
  sim_.RunUntil(1.0);
  overlay::Tree& tree = session_->tree();
  if (tree.Parent(tagged) != hub) {
    tree.Detach(tagged);
    tree.Attach(hub, tagged);
  }
  trace.Track(tagged);
  sim_.RunUntil(20.0);
  session_->DepartNow(hub);
  sim_.RunUntil(40.0);
  ASSERT_EQ(trace.disruption_series().size(), 1u);
  EXPECT_NEAR(trace.disruption_series()[0].t, 20.0, 1e-9);
  EXPECT_EQ(trace.disruption_series()[0].v, 1.0);
  EXPECT_GE(trace.delay_series().size(), 6u);
  for (const auto& p : trace.delay_series()) EXPECT_GT(p.v, 0.0);
}

TEST_F(MetricsTest, MemberTraceStopsAtDeparture) {
  MemberTrace trace(*session_, 5.0);
  const NodeId tagged = session_->InjectMember(1.0, 30.0);
  sim_.RunUntil(1.0);
  trace.Track(tagged);
  sim_.RunUntil(100.0);
  // Samples only until the member departed at t=31.
  for (const auto& p : trace.delay_series()) EXPECT_LE(p.t, 31.0 + 1e-9);
}

TEST(LogTest, LevelsFilter) {
  using util::LogLevel;
  util::SetLogLevel(LogLevel::kError);
  EXPECT_EQ(util::GetLogLevel(), LogLevel::kError);
  // Emitting below the level is a no-op (smoke: must not crash).
  util::LogDebug("dropped");
  util::LogInfo("dropped");
  util::LogWarn("dropped");
  util::LogError("printed to stderr");
  util::SetLogLevel(LogLevel::kWarn);  // restore default
}

}  // namespace
}  // namespace omcast::metrics
