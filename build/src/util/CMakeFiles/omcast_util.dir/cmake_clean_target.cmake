file(REMOVE_RECURSE
  "libomcast_util.a"
)
