#!/bin/bash
# Regenerates every figure at the fast default scale into results/small/.
set -u
cd "$(dirname "$0")/.."
mkdir -p results/small
for b in build/bench/fig* build/bench/ablation*; do
  name=$(basename "$b")
  echo "=== $name ==="
  "$b" > "results/small/$name.txt" 2>&1
done
echo ALL-SMALL-BENCHES-DONE
