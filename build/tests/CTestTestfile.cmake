# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_distributions[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_tree[1]_include.cmake")
include("/root/repo/build/tests/test_session[1]_include.cmake")
include("/root/repo/build/tests/test_protocols[1]_include.cmake")
include("/root/repo/build/tests/test_rost[1]_include.cmake")
include("/root/repo/build/tests/test_referee[1]_include.cmake")
include("/root/repo/build/tests/test_cer[1]_include.cmake")
include("/root/repo/build/tests/test_eln[1]_include.cmake")
include("/root/repo/build/tests/test_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_streaming[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_session_dynamics[1]_include.cmake")
include("/root/repo/build/tests/test_gossip[1]_include.cmake")
include("/root/repo/build/tests/test_packet_sim[1]_include.cmake")
include("/root/repo/build/tests/test_selection[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_tree_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_packet_eln[1]_include.cmake")
include("/root/repo/build/tests/test_multi_tree[1]_include.cmake")
