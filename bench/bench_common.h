// Shared scaffolding for the figure-reproduction benches, built on the
// src/runner experiment-orchestration engine.
//
// Every bench declares its figure as a runner::GridSpec -- rows (x-axis
// points) x columns (curves) x repetitions -- and hands it to
// RunGridBench(), which executes the independent cells on a work-stealing
// thread pool, shares one immutable topology across all of them, derives
// each cell's seed from the cell identity (never `seed + rep`), aggregates
// mean/stddev/95%-CI, and emits both the aligned text tables below and a
// versioned JSON results file (see src/runner/results.h for the schema).
//
// Common flags:
//   --scale=small|paper   both use the paper's 15,600-host GT-ITM topology;
//                         small (default) sweeps steady-state sizes
//                         {2000, 3500, 5000} so the whole suite runs in
//                         minutes, paper sweeps the exact Section 5 sizes
//                         {2000, 5000, 8000, 11000, 14000}.
//   --seed=N              base RNG seed (per-cell seeds are hashed from it).
//   --reps=N              independent repetitions per data point.
//   --threads=N           worker threads (0 = all hardware threads).
//   --sizes=a,b,c         override the steady-state size sweep.
//   --out=DIR             write DIR/<figure>.json (empty: no JSON output).
//   --resume=true         reuse matching cells from DIR/<figure>.json.
//   --progress=true|false per-cell progress + ETA lines on stderr.
//   --warmup=S --measure=S  override the phase lengths (seconds).
//   --log-level=LEVEL     debug|info|warn|error (default warn).
//   --profile=true        per-cell obs::SimProfiler, merged process-wide;
//                         print with MaybePrintProfile(env) after the grids.
//   --timeseries=S        recovery-curve sampling window in sim seconds
//                         (0 disables); curves land in each cell's
//                         schema-v3 "timeseries" block.
//   --trace-stream=DIR    per-cell streaming trace JSONL under DIR
//                         (obs::JsonlStreamSink; empty disables).
#pragma once

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exp/scenario.h"
#include "net/topology.h"
#include "obs/profile.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "runner/results.h"
#include "runner/runner.h"
#include "runner/topology_cache.h"
#include "util/flags.h"
#include "util/log.h"
#include "util/table.h"

namespace omcast::bench {

struct BenchEnv {
  bool paper_scale = false;
  std::uint64_t seed = 1;
  int reps = 1;
  int threads = 0;
  bool progress = true;
  bool resume = false;
  bool profile = false;  // per-cell SimProfiler -> GlobalProfileAggregator()
  double timeseries_window_s = 5.0;  // 0 disables recovery-curve sampling
  std::string trace_dir;  // --trace-stream: per-cell JSONL directory
  std::string out_dir;
  double warmup_s = 0.0;
  double measure_s = 0.0;
  // The five steady-state sizes of Figs. 4, 7, 8, 10, 12 (scaled at small).
  std::vector<int> sizes;
  // The single-size experiments (Figs. 5, 11, 13: the paper's "8000").
  int focus_size = 0;
  // Shared immutable topology, owned by the process-wide cache; cells on
  // every runner thread read it concurrently without locking.
  const net::Topology* topology = nullptr;

  const net::Topology& Topo() const { return *topology; }
  const char* ScaleLabel() const { return paper_scale ? "paper" : "small"; }

  exp::ScenarioConfig BaseConfig() const {
    exp::ScenarioConfig c;
    c.warmup_s = warmup_s;
    c.measure_s = measure_s;
    c.seed = seed;  // overwritten per cell with the derived cell seed
    // At small scale the source capacity and the gossip-view size shrink
    // with the population, keeping their ratios to the network size near
    // the paper's values -- otherwise a 100-slot root swallows half of a
    // 500-member overlay and every algorithm looks identical. The root
    // keeps >= 40 slots because tree growth is a branching process with
    // ~0.9 per-lineage extinction probability (55.5% free-riders): the
    // source must seed enough independent lineages to survive.
    return c;
  }
};

// Registers the common flags on `flags`.
inline void DefineCommonFlags(util::FlagSet& flags) {
  flags.Define("scale", "small", "small | paper (Section 5 sizes)")
      .Define("seed", "1", "base RNG seed")
      .Define("reps", "3", "independent repetitions averaged per point")
      .Define("threads", "0", "worker threads (0 = hardware concurrency)")
      .Define("sizes", "", "override size sweep, e.g. 500,1000 (empty: scale default)")
      .Define("out", "", "directory for <figure>.json results (empty: none)")
      .Define("resume", "false", "reuse matching cells from --out JSON")
      .Define("progress", "true", "per-cell progress/ETA lines on stderr")
      .Define("warmup", "-1", "warm-up seconds (-1: scale default)")
      .Define("measure", "-1", "measurement seconds (-1: scale default)")
      .Define("log-level", "warn", "debug | info | warn | error")
      .Define("profile", "false",
              "profile simulator dispatch (per-tag counts/wall-time)")
      .Define("timeseries", "5",
              "recovery-curve sampling window seconds (0 = off)")
      .Define("trace-stream", "",
              "directory for per-cell streaming trace JSONL (empty: off)");
}

// Maps a --log-level value onto util::SetLogLevel; unknown names keep the
// current level and warn.
inline void ApplyLogLevelFlag(const std::string& name) {
  if (name == "debug") util::SetLogLevel(util::LogLevel::kDebug);
  else if (name == "info") util::SetLogLevel(util::LogLevel::kInfo);
  else if (name == "warn") util::SetLogLevel(util::LogLevel::kWarn);
  else if (name == "error") util::SetLogLevel(util::LogLevel::kError);
  else
    std::cerr << "unknown --log-level '" << name
              << "' (want debug|info|warn|error); keeping current level\n";
}

// Builds the environment from parsed flags; the topology comes from the
// process-wide cache so repeated grids in one process share one instance.
inline BenchEnv MakeEnv(const util::FlagSet& flags) {
  BenchEnv env;
  env.paper_scale = flags.GetString("scale") == "paper";
  env.seed = static_cast<std::uint64_t>(flags.GetInt("seed"));
  env.reps = flags.GetInt("reps");
  env.threads = flags.GetInt("threads");
  env.progress = flags.GetBool("progress");
  env.resume = flags.GetBool("resume");
  env.profile = flags.GetBool("profile");
  env.timeseries_window_s = flags.GetDouble("timeseries");
  env.trace_dir = flags.GetString("trace-stream");
  env.out_dir = flags.GetString("out");
  ApplyLogLevelFlag(flags.GetString("log-level"));
  env.warmup_s = env.paper_scale ? 7200.0 : 5400.0;
  env.measure_s = 3600.0;
  env.sizes = env.paper_scale ? std::vector<int>{2000, 5000, 8000, 11000, 14000}
                              : std::vector<int>{2000, 3500, 5000};
  if (!flags.GetString("sizes").empty()) env.sizes = flags.GetIntList("sizes");
  env.focus_size = env.paper_scale ? 8000 : 2000;
  env.topology =
      &runner::SharedTopology(net::PaperTopologyParams(), env.seed ^ 0x70706fULL);
  if (flags.GetDouble("warmup") >= 0.0) env.warmup_s = flags.GetDouble("warmup");
  if (flags.GetDouble("measure") >= 0.0)
    env.measure_s = flags.GetDouble("measure");
  return env;
}

inline void PrintHeader(const std::string& figure, const BenchEnv& env) {
  std::cout << "=== " << figure << " ===\n"
            << "scale: " << env.ScaleLabel()
            << "  topology: " << env.Topo().num_stub_nodes()
            << " hosts  warmup: " << env.warmup_s
            << "s  measure: " << env.measure_s << "s  seed: " << env.seed
            << "  reps: " << env.reps << "\n\n";
}

// Git SHA for the run manifest; the sweep scripts export OMCAST_GIT_SHA.
inline std::string GitSha() {
  const char* sha = std::getenv("OMCAST_GIT_SHA");
  return sha != nullptr && sha[0] != '\0' ? sha : "unknown";
}

// Executes the grid on the runner and wraps the outcomes in a ResultsSink.
// When --out is set, writes DIR/<figure>.json (and, with --resume, reuses
// matching cells from a previous file at that path first).
inline runner::ResultsSink RunGridBench(const BenchEnv& env,
                                        const runner::GridSpec& spec) {
  runner::RunnerOptions options;
  options.threads = env.threads;
  options.base_seed = env.seed;
  options.progress = env.progress;

  const std::filesystem::path out_path =
      env.out_dir.empty()
          ? std::filesystem::path{}
          : std::filesystem::path(env.out_dir) / (spec.figure + ".json");
  runner::Json resume_doc;
  if (env.resume && !env.out_dir.empty()) {
    std::ifstream in(out_path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      std::string error;
      resume_doc = runner::Json::Parse(buf.str(), &error);
      if (resume_doc.is_object()) {
        options.resume = &resume_doc;
      } else {
        std::cerr << "[" << spec.figure << "] ignoring unreadable resume file "
                  << out_path << ": " << error << "\n";
      }
    }
  }

  runner::GridRunSummary summary = runner::RunGrid(spec, options);
  runner::RunInfo info;
  info.scale = env.ScaleLabel();
  info.git_sha = GitSha();
  info.base_seed = env.seed;
  info.warmup_s = env.warmup_s;
  info.measure_s = env.measure_s;
  runner::ResultsSink sink(spec, info, std::move(summary));

  if (!env.out_dir.empty()) {
    std::filesystem::create_directories(env.out_dir);
    if (!sink.WriteJson(out_path.string()))
      std::cerr << "[" << spec.figure << "] FAILED to write " << out_path
                << "\n";
    else
      std::cerr << "[" << spec.figure << "] wrote " << out_path << " ("
                << sink.summary().executed << " cells run, "
                << sink.summary().resumed << " resumed, "
                << sink.summary().threads << " threads, "
                << util::FormatDouble(sink.summary().wall_ms / 1000.0, 1)
                << "s)\n";
  }
  return sink;
}

// ---------------------------------------------------------------------------
// Observability adapters: schema-v3 timeseries export and streaming traces.
// ---------------------------------------------------------------------------

// Copies every obs::TimeSeries registered in `reg` into the cell's
// schema-v3 "timeseries" block (dense points, window width, flavor).
inline void ExportTimeSeries(const obs::Registry& reg,
                             runner::CellResult* out) {
  for (const auto& [name, ts] : reg.series()) {
    runner::CellResult::SeriesSnapshot snap;
    snap.kind = static_cast<int>(ts.kind());
    snap.window_s = ts.window_s();
    const std::vector<obs::TimeSeries::Point> points = ts.Points();
    snap.points.reserve(points.size());
    for (const obs::TimeSeries::Point& p : points)
      snap.points.emplace_back(p.t, p.value);
    out->timeseries[name] = std::move(snap);
  }
}

// Optional per-cell streaming trace export (--trace-stream=DIR): a
// bounded-ring tracer with a JsonlStreamSink writing the cell's FULL event
// history to DIR/<figure>.<row>.<col>.rep<N>.trace.jsonl -- the sink sees
// every emission before ring eviction, so nothing is lost on long runs.
// Pass tracer() (null when streaming is off) into the scenario config.
class CellTraceStream {
 public:
  CellTraceStream(const std::string& dir, const runner::CellContext& cell) {
    if (dir.empty()) return;
    std::filesystem::create_directories(dir);
    const std::string name = Sanitize(cell.figure) + "." +
                             Sanitize(cell.row_label) + "." +
                             Sanitize(cell.col_label) + ".rep" +
                             std::to_string(cell.rep) + ".trace.jsonl";
    out_.open(std::filesystem::path(dir) / name);
    if (!out_) {
      std::cerr << "[trace-stream] FAILED to open " << dir << "/" << name
                << "; cell runs untraced\n";
      return;
    }
    tracer_.emplace();
    sink_.emplace(out_);
    tracer_->AddSink(&*sink_);
  }
  ~CellTraceStream() {
    if (tracer_) tracer_->RemoveSink(&*sink_);
  }
  CellTraceStream(const CellTraceStream&) = delete;
  CellTraceStream& operator=(const CellTraceStream&) = delete;

  obs::Tracer* tracer() { return tracer_ ? &*tracer_ : nullptr; }

 private:
  // Row/col labels may hold characters awkward in filenames ('%', '/', ...).
  static std::string Sanitize(const std::string& s) {
    std::string t = s;
    for (char& c : t)
      if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-' &&
          c != '_' && c != '.')
        c = '_';
    return t;
  }

  std::ofstream out_;
  std::optional<obs::Tracer> tracer_;
  std::optional<obs::JsonlStreamSink> sink_;
};

// ---------------------------------------------------------------------------
// Cell-result adapters for the three scenario runners.
// ---------------------------------------------------------------------------

inline runner::CellResult TreeCellResult(const exp::TreeScenarioResult& r,
                                         bool want_samples = false) {
  runner::CellResult out;
  out.metrics["disruptions"] = r.avg_disruptions;
  out.metrics["reconnections"] = r.avg_reconnections;
  out.metrics["delay_ms"] = r.avg_delay_ms;
  out.metrics["stretch"] = r.avg_stretch;
  out.metrics["depth"] = r.avg_depth;
  out.metrics["population"] = r.avg_population;
  out.metrics["qualifying_members"] = r.qualifying_members;
  if (r.rost_switches >= 0) {
    out.metrics["rost_switches"] = static_cast<double>(r.rost_switches);
    out.metrics["rost_lock_conflicts"] =
        static_cast<double>(r.rost_lock_conflicts);
  }
  if (want_samples) out.samples["disruptions"] = r.disruption_samples;
  return out;
}

inline runner::CellResult StreamCellResult(const exp::StreamScenarioResult& r) {
  runner::CellResult out;
  out.metrics["starving_ratio"] = r.avg_starving_ratio;
  out.metrics["members"] = r.members;
  out.metrics["outages"] = static_cast<double>(r.outages);
  out.metrics["recovery_rate"] = r.avg_recovery_rate;
  return out;
}

// The size-sweep tree grid shared by Figs. 4, 7, 8 and 10: rows are the
// steady-state sizes, columns the five algorithms, and every cell records
// the full tree-metric set (so one JSON file serves all four figures'
// metrics). `env` must outlive the spec.
inline runner::GridSpec TreeSizeSweepSpec(const BenchEnv& env,
                                          std::string figure,
                                          std::string title,
                                          std::string headline_metric) {
  runner::GridSpec spec;
  spec.figure = std::move(figure);
  spec.title = std::move(title);
  spec.row_header = "size";
  for (const int size : env.sizes) spec.rows.push_back(std::to_string(size));
  for (const exp::Algorithm a : exp::AllAlgorithms())
    spec.cols.push_back(exp::AlgorithmLabel(a));
  spec.reps = env.reps;
  spec.headline_metric = std::move(headline_metric);
  spec.run = [&env](const runner::CellContext& cell) {
    exp::ScenarioConfig config = env.BaseConfig();
    config.population = env.sizes[cell.row];
    config.seed = cell.seed;
    // Per-cell observability: the registry snapshot, recovery curves, and
    // incident breakdown ride along in the results JSON (schema v3); the
    // profiler -- wall clock, so never part of results or digests -- merges
    // process-wide.
    obs::Registry reg;
    config.registry = &reg;
    config.timeseries_window_s = env.timeseries_window_s;
    config.incident_analysis = true;
    CellTraceStream trace(env.trace_dir, cell);
    config.tracer = trace.tracer();
    obs::SimProfiler prof;
    if (env.profile) config.profiler = &prof;
    const exp::Algorithm a = exp::AllAlgorithms()[cell.col];
    const exp::TreeScenarioResult r = exp::RunTreeScenario(env.Topo(), a, config);
    runner::CellResult out = TreeCellResult(r);
    out.registry = reg.Flatten();
    out.incidents = r.incidents;
    ExportTimeSeries(reg, &out);
    if (env.profile) obs::GlobalProfileAggregator().Merge(prof);
    return out;
  };
  return spec;
}

// Prints the merged dispatch profile once, after the grids, when --profile
// was given.
inline void MaybePrintProfile(const BenchEnv& env) {
  if (!env.profile) return;
  const obs::ProfileAggregator& agg = obs::GlobalProfileAggregator();
  if (agg.events() == 0) {
    std::cout << "\n(profile: no simulator events recorded)\n";
    return;
  }
  std::cout << "\n" << agg.FormatTable();
}

// ---------------------------------------------------------------------------
// Table renderers over the aggregated results.
// ---------------------------------------------------------------------------

// rows x cols of one metric's mean (scaled, e.g. 100.0 turns a ratio into
// a percentage). `with_ci` appends the 95% half-width as "m +-c".
inline void PrintMetricTable(const runner::GridSpec& spec,
                             const runner::ResultsSink& sink,
                             const std::string& metric, int precision,
                             const std::string& title, double scale = 1.0,
                             bool with_ci = false) {
  std::vector<std::string> header = {spec.row_header};
  header.insert(header.end(), spec.cols.begin(), spec.cols.end());
  util::Table table(std::move(header));
  for (std::size_t row = 0; row < spec.rows.size(); ++row) {
    std::vector<std::string> cells = {spec.rows[row]};
    for (std::size_t col = 0; col < spec.cols.size(); ++col) {
      const util::RunningStat stat = sink.Stat(row, col, metric);
      std::string cell = util::FormatDouble(scale * stat.mean(), precision);
      if (with_ci)
        cell += " +-" +
                util::FormatDouble(scale * stat.ci95_half_width(), precision);
      cells.push_back(std::move(cell));
    }
    table.AddRow(std::move(cells));
  }
  table.Print(std::cout, title);
}

struct MetricColumn {
  std::string header;
  std::string metric;
  int precision = 3;
  double scale = 1.0;
};

// Mean of one incidents-block key across the reps of (row, col); cells
// missing the key contribute nothing, and 0 is returned when none have it.
inline double IncidentStat(const runner::GridSpec& spec,
                           const runner::ResultsSink& sink, std::size_t row,
                           std::size_t col, const std::string& key) {
  util::RunningStat stat;
  for (int rep = 0; rep < spec.reps; ++rep) {
    const auto& inc = sink.Cell(row, col, rep).result.incidents;
    if (const auto it = inc.find(key); it != inc.end()) stat.Add(it->second);
  }
  return stat.count() > 0 ? stat.mean() : 0.0;
}

// rows x cols incident-lifecycle breakdown: "opened/reattached/recovered"
// counts (mean over reps) from each cell's incidents block.
inline void PrintIncidentBreakdownTable(const runner::GridSpec& spec,
                                        const runner::ResultsSink& sink,
                                        const std::string& title) {
  std::vector<std::string> header = {spec.row_header};
  header.insert(header.end(), spec.cols.begin(), spec.cols.end());
  util::Table table(std::move(header));
  for (std::size_t row = 0; row < spec.rows.size(); ++row) {
    std::vector<std::string> cells = {spec.rows[row]};
    for (std::size_t col = 0; col < spec.cols.size(); ++col)
      cells.push_back(
          util::FormatDouble(IncidentStat(spec, sink, row, col,
                                          "incident.count"), 1) +
          "/" +
          util::FormatDouble(IncidentStat(spec, sink, row, col,
                                          "incident.reattached"), 1) +
          "/" +
          util::FormatDouble(IncidentStat(spec, sink, row, col,
                                          "incident.recovered"), 1));
    table.AddRow(std::move(cells));
  }
  table.Print(std::cout, title);
}

// rows x cols of one incident phase's latency: "p50/p99" in seconds (mean
// over the reps that observed the phase; "-" when none did).
inline void PrintIncidentPhaseTable(const runner::GridSpec& spec,
                                    const runner::ResultsSink& sink,
                                    const std::string& phase,
                                    const std::string& title) {
  const std::string base = "incident.phase." + phase;
  std::vector<std::string> header = {spec.row_header};
  header.insert(header.end(), spec.cols.begin(), spec.cols.end());
  util::Table table(std::move(header));
  for (std::size_t row = 0; row < spec.rows.size(); ++row) {
    std::vector<std::string> cells = {spec.rows[row]};
    for (std::size_t col = 0; col < spec.cols.size(); ++col) {
      if (IncidentStat(spec, sink, row, col, base + ".count") <= 0.0) {
        cells.emplace_back("-");
        continue;
      }
      cells.push_back(
          util::FormatDouble(
              IncidentStat(spec, sink, row, col, base + ".p50_s"), 2) +
          "/" +
          util::FormatDouble(
              IncidentStat(spec, sink, row, col, base + ".p99_s"), 2));
    }
    table.AddRow(std::move(cells));
  }
  table.Print(std::cout, title);
}

// rows x cols summary of one recovery curve from the cells' timeseries
// blocks: "peak / drain", where peak is the curve's maximum value and drain
// is how long after that peak it first returned to zero ("-" when it never
// did within the sampled range). Means over reps; reps that never drain are
// excluded from the drain mean.
inline void PrintRecoveryCurveTable(const runner::GridSpec& spec,
                                    const runner::ResultsSink& sink,
                                    const std::string& series,
                                    const std::string& title,
                                    int precision = 1) {
  std::vector<std::string> header = {spec.row_header};
  header.insert(header.end(), spec.cols.begin(), spec.cols.end());
  util::Table table(std::move(header));
  for (std::size_t row = 0; row < spec.rows.size(); ++row) {
    std::vector<std::string> cells = {spec.rows[row]};
    for (std::size_t col = 0; col < spec.cols.size(); ++col) {
      util::RunningStat peak_stat;
      util::RunningStat drain_stat;
      for (int rep = 0; rep < spec.reps; ++rep) {
        const auto& ts = sink.Cell(row, col, rep).result.timeseries;
        const auto it = ts.find(series);
        if (it == ts.end() || it->second.points.empty()) continue;
        double peak = 0.0;
        double peak_t = 0.0;
        for (const auto& [t, v] : it->second.points)
          if (v > peak) {
            peak = v;
            peak_t = t;
          }
        peak_stat.Add(peak);
        if (peak <= 0.0) {
          drain_stat.Add(0.0);  // never rose: drained from the start
          continue;
        }
        for (const auto& [t, v] : it->second.points)
          if (t > peak_t && v == 0.0) {
            drain_stat.Add(t - peak_t);
            break;
          }
      }
      if (peak_stat.count() == 0) {
        cells.emplace_back("-");
        continue;
      }
      std::string cell = util::FormatDouble(peak_stat.mean(), precision);
      cell += drain_stat.count() > 0
                  ? " / " + util::FormatDouble(drain_stat.mean(), 0) + "s"
                  : " / -";
      cells.push_back(std::move(cell));
    }
    table.AddRow(std::move(cells));
  }
  table.Print(std::cout, title);
}

// For single-curve grids (Fig. 11, the ablations): rows x chosen metrics
// of column `col`.
inline void PrintMetricColumnsTable(const runner::GridSpec& spec,
                                    const runner::ResultsSink& sink,
                                    std::size_t col,
                                    const std::vector<MetricColumn>& columns,
                                    const std::string& title) {
  std::vector<std::string> header = {spec.row_header};
  for (const MetricColumn& c : columns) header.push_back(c.header);
  util::Table table(std::move(header));
  for (std::size_t row = 0; row < spec.rows.size(); ++row) {
    std::vector<std::string> cells = {spec.rows[row]};
    for (const MetricColumn& c : columns)
      cells.push_back(util::FormatDouble(
          c.scale * sink.Stat(row, col, c.metric).mean(), c.precision));
    table.AddRow(std::move(cells));
  }
  table.Print(std::cout, title);
}

}  // namespace omcast::bench
