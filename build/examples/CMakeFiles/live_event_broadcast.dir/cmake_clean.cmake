file(REMOVE_RECURSE
  "CMakeFiles/live_event_broadcast.dir/live_event_broadcast.cpp.o"
  "CMakeFiles/live_event_broadcast.dir/live_event_broadcast.cpp.o.d"
  "live_event_broadcast"
  "live_event_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_event_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
