// Clustered overlay multicast (CliqueStream-style, arXiv:0903.4365) -- the
// competitor design the ROST/CER bake-off scores against the paper's
// switching tree.
//
// The overlay is two-tiered:
//
//   * a BACKBONE tree whose interior is the source plus one DELEGATE per
//     cluster -- stable, high-outdegree members elected within each
//     cluster;
//   * CLUSTERS (cliques) of up to max_cluster_size members hanging under
//     their delegate: every non-delegate member attaches only under
//     same-cluster parents, so each cluster is a contiguous subtree rooted
//     at its delegate.
//
// Failure recovery is CLUSTER-LOCALIZED, which is the design's whole bet:
//
//   * a LEAF (non-delegate) death orphans only same-cluster subtrees, and
//     the orphans reattach under other cluster members -- zero backbone
//     control traffic (the recovery-locality invariant,
//     tests/test_clique.cc pins it);
//   * a DELEGATE death promotes a successor from within the clique (the
//     highest-outdegree orphaned fragment root); only the successor touches
//     the backbone when it claims the dead delegate's position. If the
//     successor cannot root itself within promotion_timeout_s the cluster
//     dissolves and its members re-disperse through the fresh-join path.
//
// A periodic election round keeps delegates stable-and-strong: a direct
// child whose outdegree beats the incumbent's by stability_margin swaps
// positions with it (an atomic parent-child swap in the style of ROST's
// PerformSwitch, but announcement-based -- no lock-lease handshake, which
// is exactly the CliqueStream argument: localized recovery needs no
// distributed locking). Undersized clusters dissolve administratively at
// election time when another cluster has room, so the clique mix
// consolidates lazily instead of fragmenting forever.
//
// The protocol plugs into every existing seam through the protocol-agnostic
// overlay::Protocol hooks: SetFaultPlane routes its announcement traffic
// over the lossy chaos plane, ExportCounters publishes the "clique.*"
// message-cost tallies, and WedgedLeases is trivially zero (no locks).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "overlay/session.h"
#include "sim/fault_plane.h"

namespace omcast::obs {
class Registry;
}  // namespace omcast::obs

namespace omcast::proto {

struct CliqueParams {
  // Cluster population bounds: a cluster admits new members while below
  // max_cluster_size; one below min_cluster_size dissolves at election time
  // (when another active cluster has room to eventually absorb its
  // members).
  int max_cluster_size = 12;
  int min_cluster_size = 2;
  // Period of the per-cluster election/maintenance round.
  double election_period_s = 60.0;
  // How long a promoted successor may stay unrooted before its cluster
  // gives up on succession and dissolves.
  double promotion_timeout_s = 30.0;
  // A challenger replaces a live delegate only when its outdegree exceeds
  // the incumbent's by at least this margin (hysteresis against seat
  // thrashing between near-equal members).
  double stability_margin = 1.0;
};

// Aborts unless the parameter combination is self-consistent (cluster size
// bounds ordered, positive periods/timeouts). Called by the constructor;
// exposed for tests.
void ValidateCliqueParams(const CliqueParams& params);

class CliqueProtocol final : public overlay::Protocol {
 public:
  explicit CliqueProtocol(CliqueParams params = {});

  std::string name() const override { return "clique"; }
  bool TryAttach(overlay::Session& session, overlay::NodeId id) override;
  void OnDeparture(overlay::Session& session, overlay::NodeId id) override;

  // Routes delegate announcements (backbone claims, promotion notices,
  // election keepalives) over real lossy messages; the announcements are
  // advisory -- no handshake -- so loss costs visibility, never liveness.
  void SetFaultPlane(sim::FaultPlane* fault_plane) override {
    fault_plane_ = fault_plane;
  }

  // "clique.*" message-cost counters (the bake-off's control-overhead
  // column next to ROST's lock traffic).
  void ExportCounters(obs::Registry& reg) const override;

  const CliqueParams& params() const { return params_; }

  // --- statistics for tests and the bake-off ------------------------------
  long clusters_formed() const { return clusters_formed_; }
  long clusters_dissolved() const { return clusters_dissolved_; }
  long elections_run() const { return elections_; }
  long delegates_promoted() const { return promotions_; }
  long local_recoveries() const { return local_recoveries_; }
  long backbone_reattaches() const { return backbone_reattaches_; }
  // Control messages that touched the backbone tier vs ones confined to a
  // cluster -- the recovery-locality invariant is "a leaf failure moves
  // backbone_messages() by zero".
  long backbone_messages() const { return backbone_messages_; }
  long local_messages() const { return local_messages_; }
  // Last-resort placements that ignored the cluster-size/backbone structure
  // (degraded mode under capacity scarcity; should be rare in steady state).
  long overflow_attaches() const { return overflow_attaches_; }
  int active_clusters() const;

  // Cluster id of `id`, -1 when clusterless (for tests).
  int ClusterOf(overlay::NodeId id) const;
  // Delegate seat of cluster `cluster`; kNoNode while succession runs.
  overlay::NodeId DelegateOf(int cluster) const;

 private:
  struct Cluster {
    overlay::NodeId delegate = overlay::kNoNode;
    std::vector<overlay::NodeId> members;  // includes the delegate
    bool active = false;
    // Bumps on every succession/dissolution so a stale promotion-timeout
    // event cannot act on a reused cluster slot.
    int succession_epoch = 0;
    // One pending promotion/claim timeout at a time: armed when the seat is
    // off the backbone (succession or a refused claim), cleared when the
    // claim lands or the cluster dissolves.
    bool claim_timer_armed = false;
  };

  void EnsureSize(overlay::Session& session);
  void EnsureElectionTimer(overlay::Session& session);
  void ScheduleElection(overlay::Session& session);

  bool IsBackboneCandidate(overlay::NodeId id) const;
  // Fire-and-forget advisory over the fault plane (no-op without one).
  void SendAdvisory(overlay::Session& session, overlay::NodeId from,
                    overlay::NodeId to);

  // --- attach paths (one per joiner situation) ----------------------------
  // `id` is the delegate of an active cluster: claim a backbone position
  // under the root or another delegate.
  bool AttachToBackbone(overlay::Session& session, overlay::NodeId id);
  // `id` belongs to a cluster with a live seat: reattach under a rooted
  // same-cluster parent (the localized recovery path).
  bool AttachWithinCluster(overlay::Session& session, overlay::NodeId id);
  // `id` is clusterless: join an existing cluster with room; else found a
  // new one; else overflow into any cluster with spare capacity (the size
  // cap is admission *preference*, not a correctness bound -- with a scarce
  // backbone the alternative is stranding the member entirely).
  bool TryFreshAttach(overlay::Session& session, overlay::NodeId id);
  // Founds a new cluster with `id` as delegate (backbone-attaches it
  // first; no cluster is created when the backbone refuses).
  bool FormCluster(overlay::Session& session, overlay::NodeId id);
  // Capacity-saturated tree: splice `id` into a weaker childless leaf's
  // slot and adopt the leaf (the ROST preempt-join move, cluster-locally).
  // Every splice strictly grows rooted fan-out, so the post-flash-crowd
  // orphan backlog drains instead of deadlocking on a full tree.
  bool PreemptAttach(overlay::Session& session,
                     const std::vector<overlay::NodeId>& pool,
                     overlay::NodeId id);

  // --- seat maintenance ---------------------------------------------------
  // Fills a dead delegate's seat from the clique's orphaned fragment roots
  // and arms the promotion timeout.
  void ElectSuccessor(overlay::Session& session, int cluster);
  // Periodic election/maintenance round over every active cluster.
  void RunElection(overlay::Session& session);
  // Stability promotion: `challenger` (a direct child of the incumbent)
  // swaps tree positions with it and takes the seat.
  void PromoteDelegate(overlay::Session& session, int cluster,
                       overlay::NodeId challenger);
  // Disbands the cluster: members go clusterless (structure untouched --
  // detached ones re-enter through the fresh path as they retry).
  void DissolveCluster(overlay::Session& session, int cluster);
  void ArmSuccessionTimeout(overlay::Session& session, int cluster);

  void LeaveCluster(overlay::NodeId id);
  int AllocateCluster();

  CliqueParams params_;
  sim::FaultPlane* fault_plane_ = nullptr;
  std::vector<Cluster> clusters_;
  std::vector<int> free_clusters_;
  std::vector<int> cluster_of_;  // NodeId -> cluster id, -1 none
  bool election_timer_started_ = false;

  long clusters_formed_ = 0;
  long clusters_dissolved_ = 0;
  long elections_ = 0;
  long promotions_ = 0;
  long local_recoveries_ = 0;
  long backbone_reattaches_ = 0;
  long backbone_messages_ = 0;
  long local_messages_ = 0;
  long overflow_attaches_ = 0;
};

}  // namespace omcast::proto
