// Leveled logging to stderr. The simulator is quiet by default (kWarn);
// examples raise the level to narrate protocol activity.
#pragma once

#include <string>

namespace omcast::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits `msg` if `level` >= the global minimum. Thread-safe: the level is
// atomic and each message is one fprintf call, so the experiment runner's
// worker threads may log concurrently (lines never interleave mid-line).
void Log(LogLevel level, const std::string& msg);

void LogDebug(const std::string& msg);
void LogInfo(const std::string& msg);
void LogWarn(const std::string& msg);
void LogError(const std::string& msg);

}  // namespace omcast::util
