// Deterministic sim-time-windowed time series: the recovery-curve substrate
// behind the chaos/bake-off cells' per-disruption dynamics.
//
// A TimeSeries buckets sim time into fixed-width windows (window index =
// floor(t / window_s), an absolute grid, so two runs of the same scenario
// put the same sample in the same window regardless of when sampling
// started). Two flavors:
//
//   * kCounterRate -- AddDelta(t, d) accumulates d into t's window; the
//     flattened value of a window is the sum of deltas recorded in it
//     (divide by window_s for a rate). Untouched windows inside the
//     recorded range flatten to 0.
//   * kGauge -- Sample(t, v) records an instantaneous value; the last
//     sample in a window wins. Untouched windows inside the recorded range
//     carry the previous window's value forward (a gauge stays at its last
//     observed level until re-sampled).
//
// Determinism contract: storage is a dense vector indexed from the first
// touched window -- no hashing, no wall-clock, no allocation-order
// dependence -- so equal-seed runs produce byte-identical Points() under
// any thread count, event-queue kind, or delay model (the replay digest
// tests pin this through the runner's per-cell `timeseries` block).
//
// Thread-compatibility: cell-confined and unsynchronized, exactly like
// obs::Registry (one instance per runner grid cell, merged across cells
// only through MergeFrom after ThreadPool::Wait).
#pragma once

#include <vector>

namespace omcast::obs {

class TimeSeries {
 public:
  enum class Kind : int {
    kCounterRate = 0,  // per-window sum of deltas
    kGauge = 1,        // last sample in the window wins
  };

  TimeSeries(Kind kind, double window_s);

  Kind kind() const { return kind_; }
  double window_s() const { return window_s_; }
  bool empty() const { return values_.empty(); }

  // Counter-rate flavor: accumulates `delta` into the window containing `t`.
  // Recording a zero delta still marks the window as covered, so a sampler
  // that ticks every window produces a gap-free curve.
  void AddDelta(double t, double delta);

  // Gauge flavor: records `value` for the window containing `t`; the last
  // sample in a window wins.
  void Sample(double t, double value);

  struct Point {
    double t = 0.0;      // window start time (index * window_s)
    double value = 0.0;
  };

  // Dense flatten over [first touched window, last touched window]: one
  // point per window, gaps filled per the flavor rule above (0 for
  // counter-rate, carry-forward for gauge). Deterministic byte-for-byte
  // across equal-seed runs.
  std::vector<Point> Points() const;

  // Folds another series in (same kind and window width required):
  // counter-rate windows add, gauge windows take `other`'s value where
  // `other` recorded one. Used by Registry::MergeFrom for cross-cell
  // aggregation after the runner's ThreadPool::Wait.
  void MergeFrom(const TimeSeries& other);

 private:
  long WindowIndex(double t) const;
  // Grows the dense range to include window `idx`; returns its slot.
  std::size_t Touch(long idx);

  Kind kind_ = Kind::kGauge;
  double window_s_ = 0.0;
  long first_window_ = 0;        // index of values_[0] once non-empty
  std::vector<double> values_;
  std::vector<char> covered_;    // window received an explicit record
};

}  // namespace omcast::obs
