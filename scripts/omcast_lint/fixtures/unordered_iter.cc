// Fixture [unordered-iter]: declaring or range-for-iterating an unordered
// container must be flagged unless the declaration documents its contract.
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct View {
  std::unordered_map<int, int> peers;  // expect(unordered-iter)
};

int SumDegrees(const View& view) {
  int total = 0;
  for (const auto& kv : view.peers) {  // expect(unordered-iter)
    total += kv.second;
  }
  return total;
}

// Negative: documented point-lookup-only contract via the escape hatch.
struct Cache {
  // omcast-lint: allow(unordered-iter)
  std::unordered_set<long> seen;  // point lookups only, never iterated
};

// Negative: ordered containers are clean.
int SumSorted(const std::map<int, int>& m) {
  int total = 0;
  for (const auto& kv : m) total += kv.second;
  return total;
}

}  // namespace fixture
