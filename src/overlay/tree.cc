#include "overlay/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "util/check.h"

namespace omcast::overlay {
namespace {

int CapacityFor(double bandwidth) {
  // Out-degree constraint: number of full-rate children the access link can
  // feed (stream rate is 1 in bandwidth units).
  return static_cast<int>(std::floor(bandwidth));
}

}  // namespace

Tree::Tree(net::HostId root_host, double root_bandwidth) {
  Member root;
  root.id = kRootId;
  root.host = root_host;
  root.bandwidth = root_bandwidth;
  root.reported_bandwidth = root_bandwidth;
  root.lifetime = std::numeric_limits<double>::infinity();
  // The source is pre-assigned an effectively infinite age so that it is the
  // oldest member under any time-ordering rule and its BTP dominates every
  // member's (Section 3.3: "the multicast source is preassigned an infinite
  // BTP, and always remains at the top of the tree"). A finite sentinel
  // keeps BTP arithmetic free of inf/NaN.
  root.join_time = -4.0e9;
  members_.push_back(root);
  parent_.push_back(kNoNode);
  first_child_.push_back(kNoNode);
  last_child_.push_back(kNoNode);
  prev_sibling_.push_back(kNoNode);
  next_sibling_.push_back(kNoNode);
  child_count_.push_back(0);
  layer_.push_back(0);
  capacity_.push_back(CapacityFor(root_bandwidth));
  alive_.push_back(1);
  in_tree_.push_back(1);
}

NodeId Tree::CreateMember(net::HostId host, double bandwidth,
                          sim::Time join_time, sim::Time lifetime) {
  util::Check(bandwidth >= 0.0, "bandwidth must be non-negative");
  util::Check(lifetime > 0.0, "lifetime must be positive");
  Member m;
  m.id = static_cast<NodeId>(members_.size());
  m.host = host;
  m.bandwidth = bandwidth;
  m.reported_bandwidth = bandwidth;
  m.join_time = join_time;
  m.lifetime = lifetime;
  members_.push_back(m);
  parent_.push_back(kNoNode);
  first_child_.push_back(kNoNode);
  last_child_.push_back(kNoNode);
  prev_sibling_.push_back(kNoNode);
  next_sibling_.push_back(kNoNode);
  child_count_.push_back(0);
  layer_.push_back(0);
  capacity_.push_back(CapacityFor(bandwidth));
  alive_.push_back(1);
  in_tree_.push_back(0);
  return members_.back().id;
}

std::vector<NodeId> Tree::Children(NodeId id) const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(ChildCount(id)));
  for (NodeId c = FirstChild(id); c != kNoNode;
       c = next_sibling_[static_cast<std::size_t>(c)])
    out.push_back(c);
  return out;
}

void Tree::AppendChild(NodeId parent, NodeId child) {
  const auto p = static_cast<std::size_t>(parent);
  const auto c = static_cast<std::size_t>(child);
  const NodeId tail = last_child_[p];
  prev_sibling_[c] = tail;
  next_sibling_[c] = kNoNode;
  if (tail == kNoNode) {
    first_child_[p] = child;
  } else {
    next_sibling_[static_cast<std::size_t>(tail)] = child;
  }
  last_child_[p] = child;
  ++child_count_[p];
}

void Tree::UnlinkChild(NodeId parent, NodeId child) {
  const auto p = static_cast<std::size_t>(parent);
  const auto c = static_cast<std::size_t>(child);
  const NodeId prev = prev_sibling_[c];
  const NodeId next = next_sibling_[c];
  if (prev == kNoNode) {
    first_child_[p] = next;
  } else {
    next_sibling_[static_cast<std::size_t>(prev)] = next;
  }
  if (next == kNoNode) {
    last_child_[p] = prev;
  } else {
    prev_sibling_[static_cast<std::size_t>(next)] = prev;
  }
  prev_sibling_[c] = kNoNode;
  next_sibling_[c] = kNoNode;
  --child_count_[p];
}

void Tree::Attach(NodeId parent, NodeId child) {
  util::Check(Alive(parent) && Alive(child),
              "attach requires both members alive");
  util::Check(Parent(child) == kNoNode, "child already attached");
  util::Check(SpareCapacity(parent) > 0, "attach would exceed out-degree");
  util::Check(!IsInSubtreeOf(parent, child), "attach would create a cycle");
  util::Check(IsRooted(parent), "parent must be connected to the root");
  AppendChild(parent, child);
  parent_[static_cast<std::size_t>(child)] = parent;
  in_tree_[static_cast<std::size_t>(child)] = 1;
  RecomputeLayers(child);
}

void Tree::Detach(NodeId child) {
  const NodeId parent = Parent(child);
  util::Check(parent != kNoNode, "detach requires an attached member");
  UnlinkChild(parent, child);
  parent_[static_cast<std::size_t>(child)] = kNoNode;
  in_tree_[static_cast<std::size_t>(child)] = 0;
}

std::vector<NodeId> Tree::RemoveFromTree(NodeId id) {
  if (Parent(id) != kNoNode) Detach(id);
  std::vector<NodeId> orphans = Children(id);
  for (NodeId c : orphans) {
    const auto ci = static_cast<std::size_t>(c);
    parent_[ci] = kNoNode;
    prev_sibling_[ci] = kNoNode;
    next_sibling_[ci] = kNoNode;
    in_tree_[ci] = 0;
  }
  const auto i = static_cast<std::size_t>(id);
  first_child_[i] = kNoNode;
  last_child_[i] = kNoNode;
  child_count_[i] = 0;
  in_tree_[i] = 0;
  return orphans;
}

bool Tree::IsRooted(NodeId id) const {
  NodeId cur = id;
  while (true) {
    if (cur == kRootId) return true;
    const NodeId p = Parent(cur);
    if (p == kNoNode) return false;
    cur = p;
  }
}

bool Tree::IsInSubtreeOf(NodeId id, NodeId maybe_ancestor) const {
  NodeId cur = id;
  while (cur != kNoNode) {
    if (cur == maybe_ancestor) return true;
    cur = Parent(cur);
  }
  return false;
}

void Tree::ForEachDescendant(NodeId id,
                             const std::function<void(NodeId)>& fn) const {
  // Stack DFS seeded with the children in attach order; pushing each child
  // list in order and popping from the back preserves the visit order of
  // the previous vector<NodeId> representation exactly.
  std::vector<NodeId> stack = Children(id);
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    fn(cur);
    for (NodeId c = FirstChild(cur); c != kNoNode; c = NextSibling(c))
      stack.push_back(c);
  }
}

std::size_t Tree::CountDescendants(NodeId id) const {
  std::size_t n = 0;
  ForEachDescendant(id, [&n](NodeId) { ++n; });
  return n;
}

std::vector<NodeId> Tree::PathToRoot(NodeId id) const {
  std::vector<NodeId> path;
  NodeId cur = id;
  while (cur != kNoNode) {
    path.push_back(cur);
    cur = Parent(cur);
  }
  util::Check(path.back() == kRootId, "path must end at the root");
  return path;
}

int Tree::SharedPathEdges(NodeId a, NodeId b) const {
  // The root paths share edges from the root down to the lowest common
  // ancestor: w(a,b) == layer(LCA). Walk both parent chains to the root and
  // count the common prefix (from the root side).
  std::vector<NodeId> pa = PathToRoot(a);
  std::vector<NodeId> pb = PathToRoot(b);
  int shared = 0;
  auto ia = pa.rbegin();
  auto ib = pb.rbegin();
  // Skip the root itself (a shared *node*, not edge), then count matching
  // steps; each matching node beyond the root adds one shared edge.
  while (ia != pa.rend() && ib != pb.rend() && *ia == *ib) {
    ++ia;
    ++ib;
    ++shared;
  }
  return shared - 1;  // nodes-in-common minus one == edges in common
}

int Tree::Depth() const {
  int depth = 0;
  for (std::size_t i = 0; i < members_.size(); ++i)
    if (alive_[i] != 0 && in_tree_[i] != 0 &&
        IsRooted(static_cast<NodeId>(i)))
      depth = std::max(depth, static_cast<int>(layer_[i]));
  return depth;
}

void Tree::RecomputeLayers(NodeId fragment_root) {
  const NodeId p = Parent(fragment_root);
  util::Check(p != kNoNode, "fragment root must be attached");
  layer_[static_cast<std::size_t>(fragment_root)] =
      layer_[static_cast<std::size_t>(p)] + 1;
  std::vector<NodeId> stack = {fragment_root};
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    const std::int32_t next_layer = layer_[static_cast<std::size_t>(cur)] + 1;
    for (NodeId c = FirstChild(cur); c != kNoNode; c = NextSibling(c)) {
      layer_[static_cast<std::size_t>(c)] = next_layer;
      stack.push_back(c);
    }
  }
}

void Tree::CheckInvariants() const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    if (alive_[i] == 0) {
      util::Check(ChildCount(id) == 0 && Parent(id) == kNoNode,
                  "dead member must be fully detached");
      continue;
    }
    util::Check(ChildCount(id) <= Capacity(id),
                "out-degree constraint violated (node " + std::to_string(id) +
                    ": " + std::to_string(ChildCount(id)) +
                    " children, capacity " + std::to_string(Capacity(id)) +
                    ")");
    int counted = 0;
    NodeId prev = kNoNode;
    for (NodeId c = FirstChild(id); c != kNoNode; c = NextSibling(c)) {
      util::Check(Parent(c) == id, "child->parent link out of sync");
      util::Check(Alive(c), "dead member still attached");
      util::Check(prev_sibling_[static_cast<std::size_t>(c)] == prev,
                  "sibling links out of sync");
      if (InTree(id) && IsRooted(id))
        util::Check(Layer(c) == Layer(id) + 1, "layer must be parent's + 1");
      prev = c;
      ++counted;
    }
    util::Check(last_child_[i] == prev, "tail link out of sync");
    util::Check(counted == ChildCount(id), "child count out of sync");
    if (Parent(id) != kNoNode) {
      bool found = false;
      for (NodeId c = FirstChild(Parent(id)); c != kNoNode; c = NextSibling(c))
        if (c == id) {
          found = true;
          break;
        }
      util::Check(found, "parent->child link out of sync");
    }
    if (id == kRootId)
      util::Check(Parent(id) == kNoNode, "root has no parent");
  }
}

}  // namespace omcast::overlay
