"""Protocol-invariant rule: every state-transition function of an
instrumented protocol class must emit its paired obs::EventKind trace event.

The EventKind taxonomy (src/obs/trace.h) is the observability contract the
replay/causality tests are built on: tests/test_trace_causality proves
properties like "every lease release pairs with a grant" *from the trace
alone*, so a transition that silently skips its emission makes those proofs
vacuous rather than failing them. This rule pins, statically:

  1. each known transition function of an instrumented class contains an
     EventKind::<paired kind> token for every kind it owns, and
  2. (cross-reference) every taxonomy kind in the families a class owns has
     at least one emit site in the file defining that class's transitions,
     so a kind added to the enum cannot silently go un-emitted.

The tables below are the protocol contract -- one entry per instrumented
class: core::RostProtocol (switch/lock families), overlay::Session
(reconnect/re-entry state machine) and stream::PacketLevelStream (frame
playback: regime transitions, decode stalls, dependency resync). Extending a
protocol with a new transition means adding its pairing here (the fixtures
pin the rule's behaviour on both the missing- and present-emission sides).
"""

from __future__ import annotations

import re
from pathlib import Path

from .registry import rule
from .source import SourceFile, find_method_definitions

# One pairing table per instrumented class:
#   transitions: function -> the EventKind tokens its body must contain;
#   family_prefixes: taxonomy prefixes the class owns -- every enum kind with
#     one of these prefixes must have an emit site somewhere in the file that
#     defines the class's transitions.
#
# RostProtocol: CompleteHandshake owns both outcomes of a finished handshake
# (commit and neighbourhood-changed abort); GrantLease owns the grant and
# schedules the expiry event, so both kinds must appear in its body.
# Session: BeginReentry materializes the returning member; ReentryAttempt
# owns both terminal outcomes of the bounded-retry rejoin (attached,
# abandoned); HandleDeparture must mark every orphan it creates (parent
# death, detail 0) and ForceRejoin its eviction path (detail 1) -- the
# incident analyzer opens a disruption lifecycle on kOrphaned, so a skipped
# emission silently drops incidents from the flight recorder.
# PacketLevelStream: SetRegime owns the hysteresis transition
# event; JudgeWindow owns per-window decode-stall reporting and the
# dependency-resync edge.
PROTOCOL_TABLES: tuple[dict, ...] = (
    {
        "class_name": "RostProtocol",
        "transitions": {
            "CheckSwitch": ("kSwitchAttempt",),
            "CompleteHandshake": ("kSwitchCommit", "kSwitchAbort"),
            "OnLockRequest": ("kLockRequest",),
            "OnLockDeny": ("kLockDeny",),
            "OnLockTimeout": ("kLockTimeout",),
            "GrantLease": ("kLockGrant", "kLockExpire"),
            "ReleaseLease": ("kLockRelease",),
        },
        "family_prefixes": ("kSwitch", "kLock"),
    },
    {
        "class_name": "Session",
        "transitions": {
            "BeginReentry": ("kReconnectStart",),
            "ReentryAttempt": ("kReconnectAttached", "kReconnectAbandoned"),
            "HandleDeparture": ("kOrphaned",),
            "ForceRejoin": ("kOrphaned",),
        },
        "family_prefixes": ("kReconnect", "kOrphaned"),
    },
    {
        "class_name": "PacketLevelStream",
        "transitions": {
            "SetRegime": ("kPlaybackRegime",),
            "JudgeWindow": ("kDecodeStall", "kDependencyResync"),
        },
        "family_prefixes": ("kPlayback", "kDecodeStall", "kDependencyResync"),
    },
    # CliqueProtocol (clustered overlay): every cluster lifecycle edge --
    # formation, election round, both promotion paths (succession and the
    # stability challenge), localized recovery, backbone reattach,
    # dissolution -- must land in the trace, since the bake-off's
    # recovery-locality claims are audited from the kClique* stream.
    {
        "class_name": "CliqueProtocol",
        "transitions": {
            "FormCluster": ("kCliqueFormed",),
            "RunElection": ("kCliqueElection",),
            "ElectSuccessor": ("kCliqueDelegatePromoted",),
            "PromoteDelegate": ("kCliqueDelegatePromoted",),
            "AttachWithinCluster": ("kCliqueLocalRecovery",),
            "AttachToBackbone": ("kCliqueBackboneReattach",),
            "DissolveCluster": ("kCliqueDissolved",),
        },
        "family_prefixes": ("kClique",),
    },
)

ENUM_KIND_RE = re.compile(r"^\s*(k[A-Z]\w*)\s*[=,]")


def _taxonomy_kinds(sf: SourceFile) -> list[str] | None:
    """EventKind enumerators from src/obs/trace.h, located by walking up
    from the linted file to the directory that contains src/obs/trace.h.
    Returns None when the taxonomy is unavailable (fixtures, exported
    snippets) -- the cross-reference is skipped, never guessed."""
    for parent in sf.path.resolve().parents:
        trace_h = parent / "src" / "obs" / "trace.h"
        if trace_h.is_file():
            try:
                text = trace_h.read_text(encoding="utf-8", errors="replace")
            except OSError:
                return None
            kinds: list[str] = []
            in_enum = False
            for line in text.splitlines():
                if "enum class EventKind" in line:
                    in_enum = True
                    continue
                if in_enum:
                    if line.strip().startswith("};"):
                        break
                    m = ENUM_KIND_RE.match(line)
                    if m:
                        kinds.append(m.group(1))
            return kinds or None
    return None


@rule("rost-event-emit",
      "protocol state-transition function missing its paired EventKind trace "
      "emission (cross-referenced against the obs::EventKind taxonomy)")
def find_rost_event_emit(sf: SourceFile):
    hits = []
    emitted_kinds: set[str] = set()
    kind_re = re.compile(r"EventKind::(k\w+)")
    for line in sf.code_lines:
        for m in kind_re.finditer(line):
            emitted_kinds.add(m.group(1))
    taxonomy = _taxonomy_kinds(sf)
    for table in PROTOCOL_TABLES:
        transitions: dict[str, tuple[str, ...]] = table["transitions"]
        defs = [d for d in find_method_definitions(sf, table["class_name"])
                if d.name in transitions]
        if not defs:
            continue
        for d in defs:
            body = " ".join(sf.code_lines[d.body_start:d.end + 1])
            for kind in transitions[d.name]:
                if not re.search(r"EventKind::" + kind + r"\b", body):
                    hits.append((d.start,
                                 f"{table['class_name']} transition "
                                 f"'{d.name}' must emit EventKind::{kind}: "
                                 f"the trace-causality tests prove protocol "
                                 f"invariants from the trace alone, so a "
                                 f"skipped emission silently un-checks them "
                                 f"(pairing table: "
                                 f"scripts/omcast_lint/rules_protocol.py)"))
        # Cross-reference: a family kind in the taxonomy with no emit site
        # anywhere in the transition-defining file.
        if taxonomy:
            for kind in taxonomy:
                if kind.startswith(tuple(table["family_prefixes"])) and \
                        kind not in emitted_kinds:
                    hits.append((0, f"EventKind::{kind} belongs to the "
                                    f"{table['class_name']} family but has "
                                    f"no emit site in this file: new "
                                    f"taxonomy kinds must be emitted by "
                                    f"their transition (or the family "
                                    f"prefix table updated)"))
    return hits
