#include "runner/topology_cache.h"

#include <list>
#include <utility>

#include "rand/rng.h"
#include "util/hash.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace omcast::runner {

namespace {

// Structural fingerprint of the generation inputs. Two parameter sets that
// hash equal are compared field-by-field before reuse, so a collision can
// only cost an extra comparison, never a wrong topology.
std::uint64_t ParamsKey(const net::TopologyParams& p, std::uint64_t seed) {
  util::RollingHash h;
  h.MixU64(seed);
  h.MixI64(p.transit_domains);
  h.MixI64(p.transit_nodes_per_domain);
  h.MixI64(p.stub_domains_per_transit_node);
  h.MixI64(p.nodes_per_stub_domain);
  h.MixDouble(p.tt_delay_lo);
  h.MixDouble(p.tt_delay_hi);
  h.MixDouble(p.ts_delay_lo);
  h.MixDouble(p.ts_delay_hi);
  h.MixDouble(p.ss_delay_lo);
  h.MixDouble(p.ss_delay_hi);
  h.MixDouble(p.intra_transit_edge_prob);
  h.MixDouble(p.inter_transit_edge_prob);
  h.MixDouble(p.intra_stub_edge_prob);
  h.MixI64(static_cast<std::int64_t>(p.delay_model));
  h.MixI64(p.intra_landmarks);
  h.MixI64(p.keep_flat_edges ? 1 : 0);
  return h.digest();
}

bool SameParams(const net::TopologyParams& a, const net::TopologyParams& b) {
  return a.transit_domains == b.transit_domains &&
         a.transit_nodes_per_domain == b.transit_nodes_per_domain &&
         a.stub_domains_per_transit_node == b.stub_domains_per_transit_node &&
         a.nodes_per_stub_domain == b.nodes_per_stub_domain &&
         a.tt_delay_lo == b.tt_delay_lo && a.tt_delay_hi == b.tt_delay_hi &&
         a.ts_delay_lo == b.ts_delay_lo && a.ts_delay_hi == b.ts_delay_hi &&
         a.ss_delay_lo == b.ss_delay_lo && a.ss_delay_hi == b.ss_delay_hi &&
         a.intra_transit_edge_prob == b.intra_transit_edge_prob &&
         a.inter_transit_edge_prob == b.inter_transit_edge_prob &&
         a.intra_stub_edge_prob == b.intra_stub_edge_prob &&
         a.delay_model == b.delay_model &&
         a.intra_landmarks == b.intra_landmarks &&
         a.keep_flat_edges == b.keep_flat_edges;
}

struct Entry {
  std::uint64_t key = 0;
  std::uint64_t seed = 0;
  net::TopologyParams params;
  net::Topology topology;
};

// The process-wide cache: one mutex guarding the entry list (std::list so
// the returned Topology references stay valid as entries are added; the
// entries themselves are immutable once built, so callers read them without
// the lock -- only the *list* is guarded).
struct Cache {
  util::Mutex mu;
  std::list<Entry> entries OMCAST_GUARDED_BY(mu);
};

Cache& GetCache() {
  static Cache cache;
  return cache;
}

}  // namespace

const net::Topology& SharedTopology(const net::TopologyParams& params,
                                    std::uint64_t seed) {
  const std::uint64_t key = ParamsKey(params, seed);
  Cache& cache = GetCache();
  util::MutexLock lock(cache.mu);
  for (const Entry& e : cache.entries)
    if (e.key == key && e.seed == seed && SameParams(e.params, params))
      return e.topology;
  rnd::Rng rng(seed);
  cache.entries.push_back(
      Entry{key, seed, params, net::Topology::Generate(params, rng)});
  return cache.entries.back().topology;
}

int SharedTopologyCount() {
  Cache& cache = GetCache();
  util::MutexLock lock(cache.mu);
  return static_cast<int>(cache.entries.size());
}

}  // namespace omcast::runner
