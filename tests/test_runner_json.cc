// Tests for the minimal JSON reader/writer behind the results files. The
// property that matters most to the runner is lossless round-tripping:
// resumable sweeps re-read their own output, and the resume digest only
// holds if 64-bit seeds and shortest-round-trip doubles survive
// Dump() -> Parse() exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "runner/json.h"

namespace omcast {
namespace {

using runner::Json;

Json ParseOk(const std::string& text) {
  std::string error;
  Json doc = Json::Parse(text, &error);
  EXPECT_TRUE(error.empty()) << "parse of " << text << " failed: " << error;
  return doc;
}

void ExpectParseFails(const std::string& text) {
  std::string error;
  (void)Json::Parse(text, &error);
  EXPECT_FALSE(error.empty()) << "parse of " << text << " should have failed";
}

TEST(Json, ScalarsRoundTrip) {
  EXPECT_EQ(ParseOk("null").type(), Json::Type::kNull);
  EXPECT_TRUE(ParseOk("true").AsBool());
  EXPECT_FALSE(ParseOk("false").AsBool());
  EXPECT_EQ(ParseOk("\"hi\"").AsString(), "hi");
  EXPECT_EQ(ParseOk("42").AsUint(), 42u);
  EXPECT_EQ(ParseOk("-42").AsInt(), -42);
  EXPECT_DOUBLE_EQ(ParseOk("2.5e3").AsDouble(), 2500.0);
}

TEST(Json, Uint64SeedsSurviveExactly) {
  // Cell seeds routinely exceed int64 range; double would truncate them.
  const std::uint64_t seed = 18446744073709551615ull;  // 2^64 - 1
  Json doc = Json::MakeObject();
  doc.Set("seed", Json(seed));
  const Json back = ParseOk(doc.Dump());
  EXPECT_EQ(back.Find("seed")->AsUint(), seed);

  const std::int64_t negative = std::numeric_limits<std::int64_t>::min();
  doc.Set("neg", Json(negative));
  EXPECT_EQ(ParseOk(doc.Dump()).Find("neg")->AsInt(), negative);
}

TEST(Json, DoublesRoundTripBitExactly) {
  const double values[] = {0.1,
                           1.0 / 3.0,
                           6.02e23,
                           5e-324,  // min denormal
                           -1.7976931348623157e308,
                           3.0000000000000004};
  for (const double v : values) {
    Json arr = Json::MakeArray();
    arr.Append(Json(v));
    const double back = ParseOk(arr.Dump()).AsArray()[0].AsDouble();
    EXPECT_EQ(back, v) << "value " << v << " did not round-trip";
  }
}

TEST(Json, NegativeZeroKeepsItsSign) {
  Json arr = Json::MakeArray();
  arr.Append(Json(-0.0));
  const double back = ParseOk(arr.Dump()).AsArray()[0].AsDouble();
  EXPECT_TRUE(std::signbit(back)) << "-0.0 became +0.0 across a round-trip";
}

TEST(Json, IntegerValuedDoublesReadBackAsNumbers) {
  // to_chars prints 5.0 as "5"; a reader must still be able to AsDouble it.
  Json arr = Json::MakeArray();
  arr.Append(Json(5.0));
  const Json back = ParseOk(arr.Dump());
  EXPECT_DOUBLE_EQ(back.AsArray()[0].AsDouble(), 5.0);
}

TEST(Json, StringEscapes) {
  Json doc = Json::MakeObject();
  doc.Set("s", Json(std::string("a\"b\\c\n\t\x01 end")));
  const std::string text = doc.Dump();
  EXPECT_NE(text.find("\\\""), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
  EXPECT_EQ(ParseOk(text).Find("s")->AsString(), "a\"b\\c\n\t\x01 end");
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(ParseOk("\"\\u0041\"").AsString(), "A");
  EXPECT_EQ(ParseOk("\"\\u00e9\"").AsString(), "\xc3\xa9");      // e-acute
  EXPECT_EQ(ParseOk("\"\\u20ac\"").AsString(), "\xe2\x82\xac");  // euro sign
}

TEST(Json, ObjectsKeepInsertionOrderAndOverwriteInPlace) {
  Json doc = Json::MakeObject();
  doc.Set("zulu", Json(1.0));
  doc.Set("alpha", Json(2.0));
  doc.Set("mike", Json(3.0));
  doc.Set("zulu", Json(9.0));  // overwrite must not move the key
  EXPECT_EQ(doc.Dump(), "{\"zulu\":9,\"alpha\":2,\"mike\":3}");
  EXPECT_EQ(doc.size(), 3u);
  EXPECT_DOUBLE_EQ(doc.Find("zulu")->AsDouble(), 9.0);
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(Json, NestedStructuresRoundTrip) {
  Json inner = Json::MakeObject();
  inner.Set("label", Json(std::string("ROST")));
  inner.Set("values", Json::MakeArray());
  Json arr = Json::MakeArray();
  arr.Append(inner);
  arr.Append(Json(1.5));
  Json doc = Json::MakeObject();
  doc.Set("empty_obj", Json::MakeObject());
  doc.Set("cells", arr);
  const std::string compact = doc.Dump();
  const std::string pretty = doc.Dump(/*indent=*/1);
  EXPECT_EQ(ParseOk(compact).Dump(), compact);
  EXPECT_EQ(ParseOk(pretty).Dump(), compact) << "indent changed the value";
}

TEST(Json, ParseErrorsAreReportedNotFatal) {
  ExpectParseFails("");
  ExpectParseFails("{");
  ExpectParseFails("[1,]");
  ExpectParseFails("{\"a\":1,}");
  ExpectParseFails("\"unterminated");
  ExpectParseFails("\"bad\\q escape\"");
  ExpectParseFails("tru");
  ExpectParseFails("-");
  ExpectParseFails("1 2");   // trailing garbage
  ExpectParseFails("{\"a\" 1}");
}

TEST(Json, WhitespaceIsTolerated) {
  const Json doc = ParseOk(" \n\t{ \"a\" : [ 1 , 2 ] , \"b\" : { } } \r\n");
  EXPECT_EQ(doc.Find("a")->AsArray().size(), 2u);
  EXPECT_EQ(doc.Find("b")->size(), 0u);
}

}  // namespace
}  // namespace omcast
