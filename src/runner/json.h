// Minimal, dependency-free JSON value for the experiment runner's structured
// results (results/*.json, run manifests, bench_summary.json).
//
// Design constraints, in order:
//   * deterministic output -- object members keep insertion order, doubles
//     are dumped with the shortest round-trip representation (to_chars), so
//     two identical in-memory documents always serialize to identical bytes
//     (the serial-vs-parallel digest test depends on this);
//   * lossless integers -- 64-bit seeds do not fit in a double, so numbers
//     remember whether they were parsed/built as uint64, int64 or double;
//   * resumable sweeps -- Parse() reads back a previously written results
//     file so the runner can skip cells that are already present.
//
// Not a general-purpose JSON library: no comments, no trailing commas, no
// \u surrogate pairs beyond the BMP, numbers must be finite (NaN/Inf are
// serialized as null, matching RFC 8259's lack of them).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace omcast::runner {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Member = std::pair<std::string, Json>;
  using Array = std::vector<Json>;
  using Object = std::vector<Member>;

  Json() = default;                      // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_kind_(NumKind::kDouble), dbl_(v) {}
  Json(std::int64_t v) : type_(Type::kNumber), num_kind_(NumKind::kInt), int_(v) {}
  Json(std::uint64_t v)
      : type_(Type::kNumber), num_kind_(NumKind::kUint), uint_(v) {}
  Json(int v) : Json(static_cast<std::int64_t>(v)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Json MakeArray() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json MakeObject() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed reads; abort (util::Fail) on a type mismatch -- results files are
  // produced by this code, so a mismatch is a schema bug, not bad input.
  bool AsBool() const;
  double AsDouble() const;  // any number kind, converted
  std::int64_t AsInt() const;
  std::uint64_t AsUint() const;
  const std::string& AsString() const;
  const Array& AsArray() const;
  const Object& AsObject() const;

  // Object access. `Set` appends or overwrites; `Find` returns nullptr when
  // the key is absent (the resume path probes optional fields with it).
  Json& Set(std::string key, Json value);
  const Json* Find(std::string_view key) const;

  // Array append. Calling on a null value promotes it to an empty array
  // first, so `doc.Set("cells", Json::MakeArray())` boilerplate is optional.
  Json& Append(Json value);

  std::size_t size() const;  // array/object element count, 0 otherwise

  // Serializes the value. indent < 0: compact single line; indent >= 0:
  // pretty-printed with that many spaces per level.
  std::string Dump(int indent = -1) const;

  // Parses `text`; on failure returns null and, if `error` is non-null,
  // stores a message with the byte offset of the problem.
  static Json Parse(std::string_view text, std::string* error = nullptr);

 private:
  enum class NumKind { kDouble, kInt, kUint };

  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  NumKind num_kind_ = NumKind::kDouble;
  bool bool_ = false;
  double dbl_ = 0.0;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace omcast::runner
