// Seeded random-number substrate. Every stochastic component takes an Rng&
// (or a seed to build one) so that experiments are reproducible and
// multi-seed confidence intervals (paper Fig. 14) are possible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "util/check.h"

namespace omcast::rnd {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    util::Check(lo <= hi, "Uniform: lo <= hi");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    util::Check(lo <= hi, "UniformInt: lo <= hi");
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  std::size_t UniformIndex(std::size_t n) {
    util::Check(n > 0, "UniformIndex: n > 0");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Exponential with the given mean (inter-arrival times of Poisson
  // arrivals use mean = 1/lambda).
  double ExponentialMean(double mean) {
    util::Check(mean > 0.0, "ExponentialMean: mean > 0");
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  double Lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  // Derives an independent child generator (used to give each experiment
  // repetition its own stream).
  Rng Fork() { return Rng(engine_()); }

  template <typename T>
  void Shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  // Samples up to `k` distinct elements of `v` uniformly (partial
  // Fisher-Yates); order of the returned sample is random.
  template <typename T>
  std::vector<T> SampleWithoutReplacement(std::vector<T> v, std::size_t k) {
    if (k >= v.size()) {
      Shuffle(v);
      return v;
    }
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j =
          i + std::uniform_int_distribution<std::size_t>(0, v.size() - 1 - i)(
                  engine_);
      std::swap(v[i], v[j]);
    }
    v.resize(k);
    return v;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace omcast::rnd
