file(REMOVE_RECURSE
  "CMakeFiles/fig06_member_disruptions.dir/fig06_member_disruptions.cc.o"
  "CMakeFiles/fig06_member_disruptions.dir/fig06_member_disruptions.cc.o.d"
  "fig06_member_disruptions"
  "fig06_member_disruptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_member_disruptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
