#include "core/rost/rost.h"

#include <gtest/gtest.h>

#include <memory>

#include "net/topology.h"
#include "sim/simulator.h"

namespace omcast::core {
namespace {

using overlay::kNoNode;
using overlay::kRootId;
using overlay::NodeId;
using overlay::Session;
using overlay::SessionParams;
using overlay::Tree;

class RostTest : public ::testing::Test {
 protected:
  RostTest() {
    rnd::Rng topo_rng(1);
    topology_ = std::make_unique<net::Topology>(
        net::Topology::Generate(net::TinyTopologyParams(), topo_rng));
  }

  // Builds a session whose RostProtocol pointer is retained for inspection.
  std::unique_ptr<Session> Make(RostParams params = {},
                                std::uint64_t seed = 3) {
    auto protocol = std::make_unique<RostProtocol>(params);
    rost_ = protocol.get();
    return std::make_unique<Session>(sim_, *topology_, std::move(protocol),
                                     SessionParams{}, seed);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topology_;
  RostProtocol* rost_ = nullptr;
};

TEST_F(RostTest, JoinsLikeMinDepth) {
  auto s = Make();
  const NodeId a = s->InjectMember(3.0, 1e9);
  sim_.RunUntil(1.0);
  EXPECT_EQ(s->tree().Parent(a), kRootId);
}

TEST_F(RostTest, ChildWithHigherBtpAndBandwidthSwitchesUp) {
  RostParams p;
  p.switching_interval_s = 100.0;
  auto s = Make(p);
  Tree& tree = s->tree();
  tree.SetCapacity(kRootId, 1);
  const NodeId parent = s->InjectMember(1.0, 1e9);  // bw 1
  sim_.RunUntil(1.0);
  const NodeId child = s->InjectMember(4.0, 1e9);  // bw 4, joins below
  sim_.RunUntil(2.0);
  ASSERT_EQ(tree.Parent(child), parent);
  // BTP(child) = 4 * age grows 4x faster; by one interval it dominates.
  sim_.RunUntil(150.0);
  EXPECT_EQ(tree.Parent(child), kRootId);
  EXPECT_EQ(tree.Parent(parent), child);
  EXPECT_EQ(tree.Layer(child), 1);
  EXPECT_EQ(tree.Layer(parent), 2);
  EXPECT_EQ(rost_->switches_performed(), 1);
  tree.CheckInvariants();
}

TEST_F(RostTest, LowerBandwidthChildNeverSwitchesEvenWithHigherBtp) {
  RostParams p;
  p.switching_interval_s = 50.0;
  auto s = Make(p);
  Tree& tree = s->tree();
  tree.SetCapacity(kRootId, 1);
  const NodeId parent = s->InjectMember(2.0, 1e9);
  sim_.RunUntil(1.0);
  const NodeId child = s->InjectMember(1.0, 1e9);
  sim_.RunUntil(2.0);
  ASSERT_EQ(tree.Parent(child), parent);
  // Give the child an artificially huge age so its BTP exceeds the
  // parent's; bandwidth comparison must still veto the switch (the parent
  // would out-earn it eventually -- Section 3.3).
  tree.Get(child).join_time = -1e6;
  sim_.RunUntil(500.0);
  EXPECT_EQ(tree.Parent(child), parent);
  EXPECT_EQ(rost_->switches_performed(), 0);
}

TEST_F(RostTest, Figure2SwitchSemantics) {
  // Reproduce Fig. 2 exactly: a (BTP 10, degree 2) parent of b (BTP 12,
  // degree 3) and c; b parent of d, e, f with BTPs 3, 4, 5.
  RostParams p;
  p.switching_interval_s = 1e8;  // manual triggering only
  auto s = Make(p);
  Tree& tree = s->tree();
  // Bandwidths chosen so capacity(a)=2, capacity(b)=3 and BTP order at
  // t=1200 matches the figure: BTP = bw * age.
  const NodeId a = s->InjectMember(2.0, 1e9);
  const NodeId b = s->InjectMember(3.0, 1e9);
  const NodeId c = s->InjectMember(0.5, 1e9);
  const NodeId d = s->InjectMember(0.5, 1e9);
  const NodeId e = s->InjectMember(0.5, 1e9);
  const NodeId f = s->InjectMember(0.9, 1e9);
  sim_.RunUntil(1.0);
  // Hand-shape the tree: root <- a <- {b, c}; b <- {d, e, f}.
  for (NodeId id : {a, b, c, d, e, f})
    if (tree.Parent(id) != kNoNode) tree.Detach(id);
  tree.Attach(kRootId, a);
  tree.Attach(a, b);
  tree.Attach(a, c);
  tree.Attach(b, d);
  tree.Attach(b, e);
  tree.Attach(b, f);
  // Ages: choose join times so that b's BTP (12) > a's (10), and f has the
  // largest BTP among {d, e, f}.
  const double now = 100.0;
  tree.Get(a).join_time = now - 10.0 / 2.0;  // BTP 10
  tree.Get(b).join_time = now - 12.0 / 3.0;  // BTP 12
  tree.Get(d).join_time = now - 3.0 / 0.5;   // BTP 3
  tree.Get(e).join_time = now - 4.0 / 0.5;   // BTP 4
  tree.Get(f).join_time = now - 5.0 / 0.9;   // BTP 5
  sim_.RunUntil(now);
  rost_->CheckSwitchNow(*s, b);
  // After the switch (paper Fig. 2(b)): b under root' position of a; a is
  // b's child; c remains under... c moves to b (a's former child), a keeps
  // d and e, and f (largest BTP overflow) stays with b.
  EXPECT_EQ(tree.Parent(b), kRootId);
  EXPECT_EQ(tree.Parent(a), b);
  EXPECT_EQ(tree.Parent(c), b);
  EXPECT_EQ(tree.Parent(f), b);
  EXPECT_EQ(tree.Parent(d), a);
  EXPECT_EQ(tree.Parent(e), a);
  EXPECT_EQ(tree.Children(b).size(), 3u);
  EXPECT_EQ(tree.Children(a).size(), 2u);
  // Parent changes: b, a, sibling c, moved children d and e -- 2d+1 = 5.
  EXPECT_EQ(tree.Get(b).reconnections + tree.Get(a).reconnections +
                tree.Get(c).reconnections + tree.Get(d).reconnections +
                tree.Get(e).reconnections + tree.Get(f).reconnections,
            5);
  EXPECT_EQ(tree.Get(f).reconnections, 0);  // f kept its parent
  tree.CheckInvariants();
}

TEST_F(RostTest, NeverSwitchesAboveRoot) {
  RostParams p;
  p.switching_interval_s = 10.0;
  auto s = Make(p);
  const NodeId a = s->InjectMember(50.0, 1e9);
  sim_.RunUntil(1.0);
  ASSERT_EQ(s->tree().Parent(a), kRootId);
  sim_.RunUntil(1000.0);
  EXPECT_EQ(s->tree().Parent(a), kRootId);
  EXPECT_EQ(rost_->switches_performed(), 0);
}

TEST_F(RostTest, LockConflictDefersSwitch) {
  RostParams p;
  p.switching_interval_s = 100.0;
  p.lock_retry_delay_s = 15.0;
  p.lock_hold_s = 1e6;  // locks effectively never expire
  auto s = Make(p);
  Tree& tree = s->tree();
  tree.SetCapacity(kRootId, 1);
  const NodeId parent = s->InjectMember(1.0, 1e9);
  sim_.RunUntil(1.0);
  const NodeId child = s->InjectMember(4.0, 1e9);
  sim_.RunUntil(2.0);
  ASSERT_EQ(tree.Parent(child), parent);
  // Pre-lock the parent by running a switch elsewhere is fiddly; instead
  // mark the parent as recovering, which blocks the lock the same way.
  rost_->OnOrphaned(*s, parent);
  sim_.RunUntil(400.0);
  EXPECT_EQ(tree.Parent(child), parent);  // blocked
  EXPECT_GT(rost_->lock_conflicts(), 0);
}

TEST_F(RostTest, RecoveringFlagClearsOnReattach) {
  RostParams p;
  p.switching_interval_s = 30.0;
  auto s = Make(p);
  Tree& tree = s->tree();
  tree.SetCapacity(kRootId, 1);
  const NodeId parent = s->InjectMember(1.0, 1e9);
  sim_.RunUntil(1.0);
  const NodeId child = s->InjectMember(4.0, 1e9);
  sim_.RunUntil(2.0);
  // Orphan the parent, then let it rejoin: the flag must clear and the
  // switch eventually proceed.
  tree.Detach(parent);
  s->ForceRejoin(parent);
  sim_.RunUntil(300.0);
  EXPECT_EQ(tree.Parent(child), kRootId);
  EXPECT_GE(rost_->switches_performed(), 1);
}

TEST_F(RostTest, InfeasibleSwitchAborts) {
  // A bandwidth cheater (claims 100, actual capacity 2) passes the BTP and
  // bandwidth comparisons but cannot physically host parent + 2 siblings
  // after the swap; the switch handshake aborts.
  RostParams p;
  p.switching_interval_s = 1e8;
  auto s = Make(p);
  Tree& tree = s->tree();
  const NodeId parent = s->InjectMember(3.0, 1e9);
  const NodeId child = s->InjectMember(2.0, 1e9);
  const NodeId sib1 = s->InjectMember(0.5, 1e9);
  const NodeId sib2 = s->InjectMember(0.5, 1e9);
  const NodeId k1 = s->InjectMember(0.5, 1e9);
  const NodeId k2 = s->InjectMember(0.5, 1e9);
  sim_.RunUntil(1.0);
  for (NodeId id : {parent, child, sib1, sib2, k1, k2})
    if (tree.Parent(id) != kNoNode) tree.Detach(id);
  tree.Attach(kRootId, parent);
  tree.Attach(parent, child);
  tree.Attach(parent, sib1);
  tree.Attach(parent, sib2);
  tree.Attach(child, k1);
  tree.Attach(child, k2);
  tree.Get(child).reported_bandwidth = 100.0;
  tree.Get(child).reported_age_bonus = 1e6;
  // Required capacity: 1 (parent) + 2 (siblings) + overflow(2 kids vs
  // cap(parent)=3 -> 0) = 3 > cap(child) = 2.
  rost_->CheckSwitchNow(*s, child);
  EXPECT_EQ(tree.Parent(child), parent);  // aborted, nothing moved
  EXPECT_EQ(rost_->infeasible_switches(), 1);
  EXPECT_EQ(rost_->switches_performed(), 0);
  tree.CheckInvariants();
}

TEST_F(RostTest, PeriodicSwitchingSortsStaticMembersByBandwidth) {
  // With no churn, ROST should converge toward bandwidth ordering along
  // every parent-child chain (BTP grows proportionally to bandwidth).
  RostParams p;
  p.switching_interval_s = 20.0;
  auto s = Make(p);
  Tree& tree = s->tree();
  tree.SetCapacity(kRootId, 1);
  std::vector<NodeId> ids;
  for (double bw : {1.0, 2.0, 3.0, 4.0}) ids.push_back(s->InjectMember(bw, 1e9));
  sim_.RunUntil(2000.0);
  // Along every rooted chain, children must not out-earn parents while
  // having at least the parent's bandwidth for long (steady state: sorted).
  for (NodeId id : ids) {
    const NodeId parent = tree.Parent(id);
    if (parent == kRootId) continue;
    EXPECT_LE(tree.Get(id).bandwidth, tree.Get(parent).bandwidth + 1e-9);
  }
  tree.CheckInvariants();
}

TEST_F(RostTest, DepartureCancelsTimer) {
  RostParams p;
  p.switching_interval_s = 10.0;
  auto s = Make(p);
  const NodeId a = s->InjectMember(2.0, 50.0);
  sim_.RunUntil(1.0);
  const std::uint64_t before = sim_.pending_count();
  EXPECT_GT(before, 0u);
  s->DepartNow(a);
  sim_.RunUntil(200.0);  // no stale timer should fire on a dead member
  EXPECT_EQ(rost_->switches_performed(), 0);
}

}  // namespace
}  // namespace omcast::core
