#include "exp/chaos.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <vector>

#include "obs/incident.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "sim/simulator.h"
#include "util/check.h"

namespace omcast::exp {

using overlay::kNoNode;
using overlay::NodeId;

namespace {

double ArrivalRate(int population) {
  return static_cast<double>(population) / rnd::kMeanLifetimeSeconds;
}

// Kills every alive member hosted in `domain`. The victim list is collected
// before the first kill: DepartNow mutates the alive list.
int KillDomain(overlay::Session& session, const net::Topology& topology,
               int domain) {
  std::vector<NodeId> victims;
  for (NodeId id : session.alive_members())
    if (topology.DomainOf(session.tree().Get(id).host) == domain)
      victims.push_back(id);
  for (NodeId id : victims)
    if (session.tree().Alive(id)) session.DepartNow(id);
  return static_cast<int>(victims.size());
}

int KillFlash(overlay::Session& session, rnd::Rng& rng, int count) {
  const std::vector<NodeId> victims = rng.SampleWithoutReplacementFrom(
      session.alive_members(), static_cast<std::size_t>(count));
  for (NodeId id : victims)
    if (session.tree().Alive(id)) session.DepartNow(id);
  return static_cast<int>(victims.size());
}

// Starts a repair by killing the alive member with the most children (ties
// to the lowest id), i.e. the death that orphans the widest fragment. The
// root is off limits: it is the source, not a failure candidate.
void KillBusiestParent(overlay::Session& session) {
  NodeId victim = kNoNode;
  std::size_t most = 0;
  for (NodeId id : session.alive_members()) {
    if (id == overlay::kRootId) continue;
    const auto n = static_cast<std::size_t>(session.tree().ChildCount(id));
    if (n == 0) continue;
    if (n > most || (n == most && id < victim)) {
      victim = id;
      most = n;
    }
  }
  if (victim != kNoNode) session.DepartNow(victim);
}

}  // namespace

ChaosResult RunChaosScenario(const net::Topology& topology,
                             const ChaosConfig& config) {
  sim::Simulator simulator(config.queue_kind);
  std::unique_ptr<overlay::Protocol> protocol =
      MakeProtocol(config.algorithm, config.rost, config.clique);
  auto* rost = config.algorithm == Algorithm::kRost
                   ? static_cast<core::RostProtocol*>(protocol.get())
                   : nullptr;

  overlay::SessionParams sp = config.session;
  sp.external_failure_detection = config.use_heartbeats;
  // The packet simulator requires the rejoin delay to cover its detection
  // time; the harness keeps mismatched configs runnable.
  sp.rejoin_delay_s = std::max(sp.rejoin_delay_s, config.packet.detect_s);

  overlay::Session session(simulator, topology, std::move(protocol), sp,
                           config.seed);
  // Incident analysis consumes the live event stream through a TraceSink;
  // when the caller did not attach a tracer, a minimal run-local one feeds
  // the sink (its single-slot ring is discarded -- only the stream matters).
  obs::Tracer* tracer = config.tracer;
  std::optional<obs::Tracer> local_tracer;
  if (config.incident_analysis && tracer == nullptr) {
    local_tracer.emplace(/*capacity=*/1);
    tracer = &*local_tracer;
  }
  session.SetTracer(tracer);
  obs::IncidentLog incident_log;
  if (config.incident_analysis) tracer->AddSink(&incident_log);
  simulator.SetProfiler(config.profiler);
  sim::FaultPlane fault_plane(simulator, config.fault,
                              config.seed ^ 0x9e3779b97f4a7c15ULL);
  session.protocol().SetFaultPlane(&fault_plane);

  std::optional<overlay::HeartbeatService> heartbeat;
  if (config.use_heartbeats)
    heartbeat.emplace(session, config.heartbeat, config.seed ^ 0xbea7ULL,
                      &fault_plane);

  std::optional<overlay::GossipService> gossip;
  if (config.use_gossip) {
    gossip.emplace(session, config.gossip, config.seed ^ 0x60551bULL);
    gossip->SetFaultPlane(&fault_plane);
    session.SetMembershipOracle(&*gossip);
  }

  stream::PacketLevelStream stream(session, config.packet,
                                   config.seed ^ 0x5151ULL);
  stream.SetFaultPlane(&fault_plane);

  rnd::Rng chaos_rng(config.seed ^ 0xc4a05ULL);
  ChaosResult r;
  // Built up-front so the recovery-curve sampler can write series into it
  // while the run executes; the end-of-run chaos counter snapshot is merged
  // in afterwards.
  obs::Registry reg;

  session.Prepopulate(config.population);
  session.StartArrivals(ArrivalRate(config.population));
  simulator.RunUntil(config.warmup_s);

  const double t0 = simulator.now();
  stream.Start(config.stream_s);

  // Recovery-curve sampler: one tick per window from stream start through
  // the settle window's end; each tick stamps the window that just ended
  // (its start time), so the curves line up on the absolute window grid
  // regardless of t0.
  std::function<void()> sample_tick;
  long frames_late_seen = 0;
  if (config.timeseries_window_s > 0.0) {
    const double w = config.timeseries_window_s;
    const double ts_end = t0 + config.stream_s + config.drain_s +
                          config.settle_s;
    obs::TimeSeries& unrooted = reg.Series(
        "recovery.unrooted_members", obs::TimeSeries::Kind::kGauge, w);
    obs::TimeSeries& pending = reg.Series(
        "recovery.reentries_pending", obs::TimeSeries::Kind::kGauge, w);
    obs::TimeSeries& wedged = reg.Series(
        "recovery.wedged_leases", obs::TimeSeries::Kind::kGauge, w);
    obs::TimeSeries& backlog = reg.Series(
        "recovery.repair_backlog", obs::TimeSeries::Kind::kGauge, w);
    obs::TimeSeries& degraded = reg.Series(
        "recovery.degraded_fraction", obs::TimeSeries::Kind::kGauge, w);
    obs::TimeSeries& late = reg.Series(
        "recovery.frames_late", obs::TimeSeries::Kind::kCounterRate, w);
    sample_tick = [&, w, ts_end] {
      const double now = simulator.now();
      const double wt = now - w;  // start of the window that just ended
      long unrooted_n = 0;
      for (NodeId id : session.alive_members())
        if (!session.tree().IsRooted(id)) ++unrooted_n;
      unrooted.Sample(wt, static_cast<double>(unrooted_n));
      pending.Sample(wt, static_cast<double>(session.reentries_pending()));
      wedged.Sample(
          wt, static_cast<double>(session.protocol().WedgedLeases(now)));
      backlog.Sample(
          wt, static_cast<double>(stream.ActiveRepairServers().size()));
      const auto alive = static_cast<double>(session.alive_count());
      degraded.Sample(
          wt, alive > 0.0
                  ? static_cast<double>(stream.degraded_receivers()) / alive
                  : 0.0);
      late.AddDelta(
          wt, static_cast<double>(stream.frames_late() - frames_late_seen));
      frames_late_seen = stream.frames_late();
      if (now + w <= ts_end + 1e-9)
        simulator.ScheduleAfter(w, sample_tick, "chaos.timeseries");
    };
    simulator.ScheduleAt(t0 + w, sample_tick, "chaos.timeseries");
  }

  if (config.domain_kill_at_s >= 0.0) {
    simulator.ScheduleAt(t0 + config.domain_kill_at_s, [&] {
      r.domain_members_killed =
          KillDomain(session, topology, config.domain_kill_index);
    });
  }
  if (config.flash_at_s >= 0.0 && config.flash_departures > 0) {
    simulator.ScheduleAt(t0 + config.flash_at_s, [&] {
      r.flash_members_killed =
          KillFlash(session, chaos_rng, config.flash_departures);
    });
  }
  if (config.join_storm_at_s >= 0.0 && config.join_storm_count > 0) {
    simulator.ScheduleAt(t0 + config.join_storm_at_s, [&] {
      // A flash crowd arrives at one instant; injection stops (and the
      // shortfall is visible in join_storm_injected) if the stub hosts run
      // out.
      for (int i = 0; i < config.join_storm_count; ++i) {
        if (session.alive_count() + 1 >= topology.num_stub_nodes()) break;
        const double bandwidth = sp.bandwidth_dist.Sample(chaos_rng);
        const double lifetime = sp.lifetime_dist.Sample(chaos_rng);
        session.InjectMember(bandwidth, lifetime);
        ++r.join_storm_injected;
      }
    });
  }
  if (config.episodic_at_s >= 0.0) {
    simulator.ScheduleAt(t0 + config.episodic_at_s, [&] {
      // Everything hosted in the outage domain -- including the root if it
      // is co-located -- joins one link group; messages touching the group
      // see the episode's loss floor while it is ON.
      if (topology.DomainOf(session.tree().Get(overlay::kRootId).host) ==
          config.episodic_domain_index)
        fault_plane.SetNodeGroup(overlay::kRootId, 0);
      for (NodeId id : session.alive_members())
        if (topology.DomainOf(session.tree().Get(id).host) ==
            config.episodic_domain_index)
          fault_plane.SetNodeGroup(id, 0);
      fault_plane.StartEpisodicLoss(0, config.episodic);
    });
    if (config.episodic_end_s >= 0.0)
      simulator.ScheduleAt(t0 + config.episodic_end_s,
                           [&] { fault_plane.StopEpisodicLoss(0); });
  }
  if (config.reconnect_storm_at_s >= 0.0 &&
      config.reconnect_storm_fraction > 0.0) {
    simulator.ScheduleAt(t0 + config.reconnect_storm_at_s, [&] {
      const auto want = static_cast<std::size_t>(
          config.reconnect_storm_fraction *
          static_cast<double>(session.alive_count()));
      const std::vector<NodeId> victims =
          chaos_rng.SampleWithoutReplacementFrom(session.alive_members(),
                                                 want);
      for (NodeId id : victims) {
        if (!session.tree().Alive(id)) continue;
        const double downtime =
            chaos_rng.ExponentialMean(config.reconnect_downtime_mean_s);
        const double lifetime = sp.lifetime_dist.Sample(chaos_rng);
        session.DepartNow(id);
        session.ScheduleReentry(id, downtime, lifetime);
        ++r.reconnect_storm_killed;
      }
    });
  }
  if (config.mid_repair_kill_at_s >= 0.0) {
    simulator.ScheduleAt(t0 + config.mid_repair_kill_at_s, [&] {
      KillBusiestParent(session);
      // Once the repair stripes are serving, kill the first active server.
      simulator.ScheduleAfter(config.packet.detect_s + 1.0, [&] {
        for (NodeId server : stream.ActiveRepairServers()) {
          if (server == overlay::kRootId) continue;
          if (!session.tree().Alive(server)) continue;
          session.DepartNow(server);
          r.mid_repair_kill_fired = true;
          break;
        }
      });
    });
  }

  simulator.RunUntil(t0 + config.stream_s);
  session.StopArrivals();
  simulator.RunUntil(t0 + config.stream_s + config.drain_s);
  stream.FinalizeAliveMembers();

  // Churn continues through the drain, so members whose parent died in the
  // last few seconds are legitimately still detached. Sample them, give
  // them one settle window (failure detection + rejoin retries), and count
  // only the ones that still failed to reattach.
  std::vector<NodeId> adrift;
  for (NodeId id : session.alive_members())
    if (!session.tree().IsRooted(id)) adrift.push_back(id);
  simulator.RunUntil(simulator.now() + config.settle_s);
  // Final placement audit. A member still adrift here may simply be
  // mid-backoff behind a slot that freed moments ago, so it gets one
  // immediate attach attempt. Only a member the protocol refuses NOW is
  // classified: stranded (unrooted_members) when the rooted tree still had
  // spare slots it failed to use, capacity-starved when the tree was full
  // -- after a correlated kill the heavy-tailed capacity mix can leave
  // genuinely unplaceable members, which measures the workload, not the
  // protocol.
  long spare = 0;
  for (NodeId m : session.alive_members())
    if (session.tree().IsRooted(m)) spare += session.tree().SpareCapacity(m);
  for (NodeId id : adrift) {
    if (!session.tree().Alive(id) || session.tree().IsRooted(id)) continue;
    if (session.protocol().TryAttach(session, id)) {
      spare += session.tree().Capacity(id) - 1;
      continue;
    }
    if (spare > 0)
      ++r.unrooted_members;
    else
      ++r.capacity_starved;
  }

  const sim::Time now = simulator.now();
  reg.MergeFrom(metrics::CollectChaosRegistry(
      &fault_plane, heartbeat ? &*heartbeat : nullptr, rost,
      gossip ? &*gossip : nullptr, &stream, now));
  // Re-entry counters live here rather than in the collector: the session
  // object is not part of the CollectChaosRegistry signature.
  reg.Count("reconnect.scheduled",
            static_cast<double>(session.reentries_scheduled()));
  reg.Count("reconnect.attached",
            static_cast<double>(session.reentries_attached()));
  reg.Count("reconnect.abandoned",
            static_cast<double>(session.reentries_abandoned()));
  reg.Count("reconnect.pending",
            static_cast<double>(session.reentries_pending()));
  // Protocol-agnostic counter export: "rost.*" lock traffic or "clique.*"
  // election/recovery tallies, depending on the algorithm under test.
  session.protocol().ExportCounters(reg);
  if (config.incident_analysis) {
    incident_log.Finalize(now);
    incident_log.ExportTo(reg);
    r.incidents = incident_log.FlatStats();
    tracer->RemoveSink(&incident_log);
  }
  // Ring-eviction visibility only makes sense for a caller-attached tracer;
  // the run-local incident feed intentionally retains nothing.
  if (config.tracer != nullptr)
    reg.Count("obs.trace.evicted",
              static_cast<double>(config.tracer->dropped()));
  r.counters = metrics::CountersFromRegistry(reg);
  r.registry = reg.Flatten();
  if (config.registry != nullptr) config.registry->MergeFrom(reg);
  r.avg_starving_ratio = stream.ratio_stat().mean();
  r.ci95 = stream.ratio_stat().ci95_half_width();
  r.members = static_cast<int>(stream.ratio_stat().count());
  r.zero_wedged_locks = session.protocol().WedgedLeases(now) == 0;
  r.final_population = session.alive_count();
  r.episodes_started = fault_plane.episodes_started();
  r.degraded_time_fraction = stream.degraded_fraction_stat().count() > 0
                                 ? stream.degraded_fraction_stat().mean()
                                 : 0.0;
  r.mean_recovery_to_cadence_s = stream.recovery_latency_stat().count() > 0
                                     ? stream.recovery_latency_stat().mean()
                                     : 0.0;
  r.decode_stalls = stream.decode_stalls();
  r.regime_transitions = stream.regime_transitions();
  r.dependency_resyncs = stream.dependency_resyncs();
  r.permanently_stalled = stream.permanently_stalled();
  r.reentries_scheduled = session.reentries_scheduled();
  r.reentries_attached = session.reentries_attached();
  r.reentries_abandoned = session.reentries_abandoned();
  r.reentries_pending = session.reentries_pending();
  return r;
}

}  // namespace omcast::exp
