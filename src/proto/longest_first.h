// The longest-first algorithm (paper Section 2.1, Sripanidkulchai et al.):
// a (re)joining member picks the longest-lived discovered member with spare
// capacity. Exploits the long-tailed lifetime distribution but produces a
// tall tree. No optimization overhead.
#pragma once

#include "overlay/session.h"

namespace omcast::proto {

class LongestFirstProtocol final : public overlay::Protocol {
 public:
  std::string name() const override { return "longest-first"; }
  bool TryAttach(overlay::Session& session, overlay::NodeId id) override;
};

}  // namespace omcast::proto
