#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace omcast::util {

FlagSet& FlagSet::Define(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  Check(!flags_.contains(name), "duplicate flag definition");
  flags_[name] = Flag{default_value, default_value, help};
  return *this;
}

bool FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      PrintUsage(argv[0]);
      return false;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s needs a value\n", name.c_str());
        PrintUsage(argv[0]);
        return false;
      }
      value = argv[++i];
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
      PrintUsage(argv[0]);
      return false;
    }
    it->second.value = value;
  }
  return true;
}

std::string FlagSet::GetString(const std::string& name) const {
  const auto it = flags_.find(name);
  Check(it != flags_.end(), "access to unregistered flag");
  return it->second.value;
}

int FlagSet::GetInt(const std::string& name) const {
  return static_cast<int>(std::strtol(GetString(name).c_str(), nullptr, 10));
}

double FlagSet::GetDouble(const std::string& name) const {
  return std::strtod(GetString(name).c_str(), nullptr);
}

bool FlagSet::GetBool(const std::string& name) const {
  const std::string v = GetString(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<int> FlagSet::GetIntList(const std::string& name) const {
  std::vector<int> out;
  const std::string v = GetString(name);
  std::size_t pos = 0;
  while (pos < v.size()) {
    std::size_t comma = v.find(',', pos);
    if (comma == std::string::npos) comma = v.size();
    const std::string tok = v.substr(pos, comma - pos);
    if (!tok.empty())
      out.push_back(static_cast<int>(std::strtol(tok.c_str(), nullptr, 10)));
    pos = comma + 1;
  }
  return out;
}

void FlagSet::PrintUsage(const std::string& program) const {
  std::fprintf(stderr, "usage: %s [--flag=value ...]\n", program.c_str());
  for (const auto& [name, flag] : flags_) {
    std::fprintf(stderr, "  --%-24s %s (default: %s)\n", name.c_str(),
                 flag.help.c_str(), flag.default_value.c_str());
  }
}

}  // namespace omcast::util
