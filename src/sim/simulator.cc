#include "sim/simulator.h"

#include <utility>

#include "obs/profile.h"
#include "util/check.h"

namespace omcast::sim {

EventId Simulator::ScheduleAt(Time t, Callback cb, const char* tag) {
  util::Check(t >= now_, "cannot schedule an event in the past");
  util::Check(static_cast<bool>(cb), "event callback must be callable");
  OMCAST_DCHECK(t == t, "event time must not be NaN");
  const std::uint64_t id = next_id_++;
  if (kind_ == QueueKind::kCalendar) {
    calendar_.Insert(t, next_seq_++, id, tag, std::move(cb));
  } else {
    queue_.push(Event{t, next_seq_++, id, tag, std::move(cb)});
    pending_.insert(id);
  }
  return EventId{id};
}

EventId Simulator::ScheduleAfter(Time delay, Callback cb, const char* tag) {
  util::Check(delay >= 0.0, "event delay must be non-negative");
  return ScheduleAt(now_ + delay, std::move(cb), tag);
}

bool Simulator::Cancel(EventId id) {
  // Cancelling a handle the simulator never issued is a bookkeeping bug in
  // the caller (a stale copy from another simulator, or uninitialized state);
  // kInvalidEventId is the documented "nothing scheduled" value and is fine.
  OMCAST_DCHECK(id.value < next_id_, "Cancel: event id was never issued");
  if (kind_ == QueueKind::kCalendar) {
    if (id.value == 0) return false;
    return calendar_.Erase(id.value);
  }
  return pending_.erase(id.value) > 0;
}

bool Simulator::IsPending(EventId id) const {
  OMCAST_DCHECK(id.value < next_id_, "IsPending: event id was never issued");
  if (kind_ == QueueKind::kCalendar) {
    return id.value != 0 && calendar_.Contains(id.value);
  }
  return pending_.contains(id.value);
}

void Simulator::Dispatch(Time time, std::uint64_t seq, std::uint64_t id,
                         const char* tag, Callback cb) {
  // The queue must hand events over in non-decreasing time, FIFO at equal
  // times: the bit-reproducibility of every run rests on this ordering.
  OMCAST_DCHECK(time >= now_, "event queue must be time-monotonic");
  OMCAST_DCHECK(
      time > now_ ||
          last_seq_at_now_ == std::numeric_limits<std::uint64_t>::max() ||
          seq > last_seq_at_now_,
      "events at equal times must fire in scheduling order");
  last_seq_at_now_ = seq;
  now_ = time;
  ++executed_;
  if (trace_) trace_(time, id);
  if (profiler_ != nullptr) {
    // Memory is sampled, not polled: getrusage once per event would dominate
    // the very hot path this profiler exists to measure.
    if ((executed_ & 0xFFF) == 0) {
      const CalendarQueue::PoolStats ps = pool_stats();
      profiler_->SampleMemory(ps.live, ps.slab_capacity);
    }
    profiler_->BeginEvent(tag, pending_count());
    cb();
    profiler_->EndEvent();
  } else {
    cb();
  }
}

bool Simulator::RunOne() {
  if (kind_ == QueueKind::kCalendar) {
    if (calendar_.empty()) return false;
    Time time = 0.0;
    std::uint64_t seq = 0;
    std::uint64_t id = 0;
    const char* tag = nullptr;
    Callback cb;
    calendar_.PopMin(&time, &seq, &id, &tag, &cb);
    Dispatch(time, seq, id, tag, std::move(cb));
    return true;
  }
  while (!queue_.empty()) {
    // priority_queue::top() is const; the callback is moved out via
    // const_cast, which is safe because the element is popped immediately.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (pending_.erase(ev.id) == 0) continue;  // cancelled
    Dispatch(ev.time, ev.seq, ev.id, ev.tag, std::move(ev.cb));
    return true;
  }
  return false;
}

void Simulator::Run() {
  stopped_ = false;
  if (profiler_ != nullptr) profiler_->BeginLoop();
  while (!stopped_ && RunOne()) {
  }
  if (profiler_ != nullptr) {
    const CalendarQueue::PoolStats ps = pool_stats();
    profiler_->SampleMemory(ps.live, ps.slab_capacity);
    profiler_->EndLoop();
  }
}

void Simulator::RunUntil(Time t) {
  util::Check(t >= now_, "cannot run backwards in time");
  stopped_ = false;
  if (profiler_ != nullptr) profiler_->BeginLoop();
  if (kind_ == QueueKind::kCalendar) {
    while (!stopped_) {
      if (calendar_.empty() || calendar_.PeekTime() > t) break;
      RunOne();
    }
  } else {
    while (!stopped_) {
      // Drop cancelled heads so the next-time peek is accurate.
      while (!queue_.empty() && !pending_.contains(queue_.top().id))
        queue_.pop();
      if (queue_.empty() || queue_.top().time > t) break;
      RunOne();
    }
  }
  if (profiler_ != nullptr) {
    const CalendarQueue::PoolStats ps = pool_stats();
    profiler_->SampleMemory(ps.live, ps.slab_capacity);
    profiler_->EndLoop();
  }
  if (!stopped_) now_ = t;
}

}  // namespace omcast::sim
