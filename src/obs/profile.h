// Simulator profiling: per-event-type dispatch counts, callback wall-time
// histograms and event-queue depth sampling.
//
// This is the ONE place in the simulation stack where host wall-clock is
// legal (annotated for the determinism lint): profiling measures the
// simulator, never feeds it. A SimProfiler's numbers are host-dependent and
// are therefore excluded from every digest and every results field that the
// determinism tests compare; they surface only through the benches'
// --profile flag so perf work has a measured baseline.
//
// Usage: sim::Simulator::SetProfiler() installs a profiler; scheduling
// sites label their events with string-literal tags
// (ScheduleAt/ScheduleAfter's trailing parameter) and RunOne brackets each
// callback with BeginEvent/EndEvent. The ProfileAggregator merges the
// profilers of many runner cells (thread-safe) for one whole-grid table.
#pragma once

#include <chrono>  // omcast-lint: allow(wallclock)
#include <cstdint>
#include <map>
#include <string>

#include "obs/registry.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace omcast::obs {

// Thread-compatibility: a SimProfiler is owned by one simulation run on one
// thread (cell-confined, like obs::Registry); only ProfileAggregator::Merge
// crosses threads, after the owning run has finished mutating it.
class SimProfiler {
 public:
  struct TagStats {
    std::uint64_t count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
  };

  SimProfiler();

  // Called by the simulator around every dispatched callback. `tag` must be
  // a string literal (or otherwise outlive the call); nullptr buckets under
  // "untagged". `queue_depth` is the pending-event count at dispatch.
  void BeginEvent(const char* tag, std::size_t queue_depth);
  void EndEvent();

  std::uint64_t events() const { return events_; }
  const std::map<std::string, TagStats>& per_tag() const { return per_tag_; }
  const Histogram& wall_us_hist() const { return wall_us_; }
  const Histogram& queue_depth_hist() const { return depth_; }

  // Human-readable per-tag dispatch/wall-time table plus queue-depth
  // summary (the --profile output).
  std::string FormatTable() const;

 private:
  using Clock = std::chrono::steady_clock;  // omcast-lint: allow(wallclock)

  std::map<std::string, TagStats> per_tag_;
  Histogram wall_us_;
  Histogram depth_;
  std::uint64_t events_ = 0;
  TagStats* current_ = nullptr;
  Clock::time_point started_{};
};

// Thread-safe accumulation of many cells' profilers into one table (the
// runner executes cells on a thread pool; each cell owns a private
// SimProfiler and merges it here when done).
class ProfileAggregator {
 public:
  // The caller must have stopped mutating `profiler` (cells merge their
  // private profiler exactly once, after the simulation run completes);
  // Merge reads it unsynchronized.
  void Merge(const SimProfiler& profiler) OMCAST_EXCLUDES(mu_);

  std::uint64_t events() const OMCAST_EXCLUDES(mu_);
  std::string FormatTable() const OMCAST_EXCLUDES(mu_);

 private:
  struct DepthStats {
    std::uint64_t samples = 0;
    double sum = 0.0;
    double max = 0.0;
  };

  mutable util::Mutex mu_;
  std::map<std::string, SimProfiler::TagStats> per_tag_ OMCAST_GUARDED_BY(mu_);
  DepthStats depth_ OMCAST_GUARDED_BY(mu_);
  std::uint64_t events_ OMCAST_GUARDED_BY(mu_) = 0;
  int merged_ OMCAST_GUARDED_BY(mu_) = 0;
};

// Process-wide aggregator behind the benches' --profile flag: every cell
// merges into it and the bench prints one table after the grid completes.
ProfileAggregator& GlobalProfileAggregator();

}  // namespace omcast::obs
