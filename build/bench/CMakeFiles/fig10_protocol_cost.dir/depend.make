# Empty dependencies file for fig10_protocol_cost.
# This may be replaced when dependencies are built.
