// Parameter-validation death tests: every config struct with a Validate
// hook (or constructor CHECKs) must reject nonsensical values loudly at
// construction instead of producing a silently wrong simulation.
#include <gtest/gtest.h>

#include <memory>

#include "core/rost/rost.h"
#include "net/topology.h"
#include "overlay/heartbeat.h"
#include "overlay/session.h"
#include "proto/clique/clique.h"
#include "proto/min_depth.h"
#include "sim/simulator.h"
#include "stream/packet_sim.h"

namespace omcast {
namespace {

TEST(SessionParamsDeathTest, RejectsNonsense) {
  overlay::SessionParams p;
  p.stream_rate = 0.0;
  EXPECT_DEATH(overlay::ValidateSessionParams(p), "CHECK failed");

  overlay::SessionParams starved;
  starved.root_bandwidth = starved.stream_rate / 2.0;
  EXPECT_DEATH(overlay::ValidateSessionParams(starved), "CHECK failed");

  overlay::SessionParams blind;
  blind.candidate_sample_size = 0;
  EXPECT_DEATH(overlay::ValidateSessionParams(blind), "CHECK failed");

  overlay::SessionParams busy;
  busy.join_retry_delay_s = 0.0;  // would busy-loop failed joins
  EXPECT_DEATH(overlay::ValidateSessionParams(busy), "CHECK failed");

  overlay::SessionParams timewarp;
  timewarp.rejoin_delay_s = -1.0;
  EXPECT_DEATH(overlay::ValidateSessionParams(timewarp), "CHECK failed");
}

TEST(PacketSimParamsDeathTest, RejectsNonsense) {
  stream::PacketSimParams p;
  p.packet_rate = 0.0;
  EXPECT_DEATH(stream::ValidatePacketSimParams(p), "CHECK failed");

  stream::PacketSimParams unbuffered;
  unbuffered.buffer_s = 0.0;
  EXPECT_DEATH(stream::ValidatePacketSimParams(unbuffered), "CHECK failed");

  stream::PacketSimParams psychic;
  psychic.detect_s = -1.0;  // detection before the failure
  EXPECT_DEATH(stream::ValidatePacketSimParams(psychic), "CHECK failed");

  stream::PacketSimParams groupless;
  groupless.recovery_group_size = 0;
  EXPECT_DEATH(stream::ValidatePacketSimParams(groupless), "CHECK failed");

  stream::PacketSimParams inverted;
  inverted.residual_lo_pkts = 5.0;
  inverted.residual_hi_pkts = 1.0;
  EXPECT_DEATH(stream::ValidatePacketSimParams(inverted), "CHECK failed");
}

TEST(PacketSimParamsDeathTest, RejectsDetectionLongerThanRejoin) {
  // The session's outage (rejoin_delay_s) must cover the stream's detection
  // phase, or repair would start after the orphan already reattached.
  rnd::Rng topo_rng(1);
  const net::Topology topology =
      net::Topology::Generate(net::TinyTopologyParams(), topo_rng);
  sim::Simulator sim;
  overlay::SessionParams sp;
  sp.rejoin_delay_s = 1.0;
  overlay::Session session(sim, topology,
                           std::make_unique<proto::MinDepthProtocol>(), sp, 1);
  stream::PacketSimParams pp;  // detect_s = 5 > rejoin_delay_s = 1
  EXPECT_DEATH(stream::PacketLevelStream(session, pp, 1), "CHECK failed");
}

TEST(RostParamsDeathTest, RejectsNonsense) {
  core::RostParams p;
  p.switching_interval_s = 0.0;
  EXPECT_DEATH(core::RostProtocol{p}, "CHECK failed");

  core::RostParams no_retry;
  no_retry.lock_retry_delay_s = 0.0;
  EXPECT_DEATH(core::RostProtocol{no_retry}, "CHECK failed");

  // A lease no longer than the request timeout would expire before a
  // just-in-time grant could cover the swap.
  core::RostParams short_lease;
  short_lease.lock_lease_s = short_lease.lock_request_timeout_s;
  EXPECT_DEATH(core::RostProtocol{short_lease}, "CHECK failed");

  core::RostParams no_backoff;
  no_backoff.lock_retry_max_backoff = 0;
  EXPECT_DEATH(core::RostProtocol{no_backoff}, "CHECK failed");
}

TEST(CliqueParamsDeathTest, RejectsNonsense) {
  proto::CliqueParams solo;
  solo.max_cluster_size = 1;  // a delegate with no room for any leaf
  EXPECT_DEATH(proto::CliqueProtocol{solo}, "CHECK failed");

  proto::CliqueParams inverted;
  inverted.min_cluster_size = inverted.max_cluster_size + 1;
  EXPECT_DEATH(proto::CliqueProtocol{inverted}, "CHECK failed");

  proto::CliqueParams empty;
  empty.min_cluster_size = 0;
  EXPECT_DEATH(proto::CliqueProtocol{empty}, "CHECK failed");

  proto::CliqueParams busy;
  busy.election_period_s = 0.0;  // would busy-loop maintenance rounds
  EXPECT_DEATH(proto::CliqueProtocol{busy}, "CHECK failed");

  proto::CliqueParams impatient;
  impatient.promotion_timeout_s = 0.0;  // dissolves before any claim lands
  EXPECT_DEATH(proto::CliqueProtocol{impatient}, "CHECK failed");

  proto::CliqueParams jittery;
  jittery.stability_margin = -1.0;
  EXPECT_DEATH(proto::CliqueProtocol{jittery}, "CHECK failed");
}

TEST(HeartbeatParamsDeathTest, RejectsNonsense) {
  rnd::Rng topo_rng(1);
  const net::Topology topology =
      net::Topology::Generate(net::TinyTopologyParams(), topo_rng);
  auto make = [&](overlay::HeartbeatParams hp) {
    sim::Simulator sim;
    overlay::SessionParams sp;
    sp.external_failure_detection = true;
    overlay::Session session(
        sim, topology, std::make_unique<proto::MinDepthProtocol>(), sp, 1);
    overlay::HeartbeatService hb(session, hp, 1);
  };
  overlay::HeartbeatParams silent;
  silent.period_s = 0.0;
  EXPECT_DEATH(make(silent), "CHECK failed");
  overlay::HeartbeatParams jumpy;
  jumpy.miss_threshold = 0;
  EXPECT_DEATH(make(jumpy), "CHECK failed");
}

}  // namespace
}  // namespace omcast
