#include "metrics/chaos_counters.h"

#include <sstream>

namespace omcast::metrics {

obs::Registry CollectChaosRegistry(const sim::FaultPlane* fault_plane,
                                   const overlay::HeartbeatService* heartbeat,
                                   const core::RostProtocol* rost,
                                   const overlay::GossipService* gossip,
                                   const stream::PacketLevelStream* stream,
                                   sim::Time now) {
  obs::Registry reg;
  const auto count = [&reg](const char* name, long v) {
    reg.Count(name, static_cast<double>(v));
  };
  if (fault_plane != nullptr) {
    count("chaos.messages_sent", fault_plane->messages_sent());
    count("chaos.messages_dropped", fault_plane->messages_dropped());
    count("chaos.messages_duplicated", fault_plane->messages_duplicated());
    count("chaos.messages_delivered", fault_plane->messages_delivered());
  }
  if (heartbeat != nullptr) {
    count("chaos.heartbeats_sent", heartbeat->heartbeats_sent());
    count("chaos.detections", heartbeat->detections());
    count("chaos.false_suspicions", heartbeat->false_suspicions());
    reg.SetGauge("chaos.mean_detection_latency_s",
                 heartbeat->detection_latency().count() > 0
                     ? heartbeat->detection_latency().mean()
                     : 0.0);
  }
  if (rost != nullptr) {
    count("chaos.leases_granted", rost->leases_granted());
    count("chaos.leases_released", rost->leases_released());
    count("chaos.leases_expired", rost->leases_expired());
    count("chaos.leases_outstanding", rost->leases_outstanding());
    count("chaos.wedged_leases", rost->WedgedLeases(now));
    count("chaos.lock_timeouts", rost->lock_timeouts());
    count("chaos.lock_retries", rost->lock_retries());
    count("chaos.handshake_aborts", rost->handshake_aborts());
    count("chaos.preempt_joins", rost->preempt_joins());
  }
  if (gossip != nullptr)
    count("chaos.stale_view_rejections", gossip->stale_rejections());
  if (stream != nullptr) {
    count("chaos.repairs_scheduled", stream->repairs_scheduled());
    count("chaos.eln_sent", stream->eln_notifications_sent());
    count("chaos.stripe_failovers", stream->stripe_failovers());
    count("chaos.short_group_fallbacks", stream->short_group_fallbacks());
    // Frame-playback QoE (all zero unless PacketSimParams.frame_playback):
    // the degraded-regime scenario family's headline metrics.
    count("qoe.decode_stalls", stream->decode_stalls());
    count("qoe.regime_transitions", stream->regime_transitions());
    count("qoe.dependency_resyncs", stream->dependency_resyncs());
    count("qoe.permanently_stalled", stream->permanently_stalled());
    reg.SetGauge("qoe.degraded_time_fraction",
                 stream->degraded_fraction_stat().count() > 0
                     ? stream->degraded_fraction_stat().mean()
                     : 0.0);
    reg.SetGauge("qoe.mean_recovery_to_cadence_s",
                 stream->recovery_latency_stat().count() > 0
                     ? stream->recovery_latency_stat().mean()
                     : 0.0);
  }
  return reg;
}

ChaosCounters CountersFromRegistry(const obs::Registry& registry) {
  const auto get = [&registry](const char* name) {
    return static_cast<long>(registry.CounterValue(name));
  };
  ChaosCounters c;
  c.messages_sent = get("chaos.messages_sent");
  c.messages_dropped = get("chaos.messages_dropped");
  c.messages_duplicated = get("chaos.messages_duplicated");
  c.messages_delivered = get("chaos.messages_delivered");
  c.heartbeats_sent = get("chaos.heartbeats_sent");
  c.detections = get("chaos.detections");
  c.false_suspicions = get("chaos.false_suspicions");
  const auto it = registry.gauges().find("chaos.mean_detection_latency_s");
  c.mean_detection_latency_s = it != registry.gauges().end() ? it->second : 0.0;
  c.leases_granted = get("chaos.leases_granted");
  c.leases_released = get("chaos.leases_released");
  c.leases_expired = get("chaos.leases_expired");
  c.leases_outstanding = get("chaos.leases_outstanding");
  c.wedged_leases = get("chaos.wedged_leases");
  c.lock_timeouts = get("chaos.lock_timeouts");
  c.lock_retries = get("chaos.lock_retries");
  c.handshake_aborts = get("chaos.handshake_aborts");
  c.preempt_joins = get("chaos.preempt_joins");
  c.stale_view_rejections = get("chaos.stale_view_rejections");
  c.repairs_scheduled = get("chaos.repairs_scheduled");
  c.eln_sent = get("chaos.eln_sent");
  c.stripe_failovers = get("chaos.stripe_failovers");
  c.short_group_fallbacks = get("chaos.short_group_fallbacks");
  return c;
}

ChaosCounters CollectChaosCounters(const sim::FaultPlane* fault_plane,
                                   const overlay::HeartbeatService* heartbeat,
                                   const core::RostProtocol* rost,
                                   const overlay::GossipService* gossip,
                                   const stream::PacketLevelStream* stream,
                                   sim::Time now) {
  return CountersFromRegistry(CollectChaosRegistry(fault_plane, heartbeat,
                                                   rost, gossip, stream, now));
}

std::string FormatChaosCounters(const ChaosCounters& c) {
  std::ostringstream os;
  os << "control plane: sent " << c.messages_sent << ", dropped "
     << c.messages_dropped << ", duplicated " << c.messages_duplicated
     << ", delivered " << c.messages_delivered << "\n"
     << "heartbeats:    sent " << c.heartbeats_sent << ", detections "
     << c.detections << ", false suspicions " << c.false_suspicions
     << ", mean latency " << c.mean_detection_latency_s << " s\n"
     << "lock leases:   granted " << c.leases_granted << ", released "
     << c.leases_released << ", expired " << c.leases_expired
     << ", outstanding " << c.leases_outstanding << ", wedged "
     << c.wedged_leases << "\n"
     << "lock control:  timeouts " << c.lock_timeouts << ", retries "
     << c.lock_retries << ", aborts " << c.handshake_aborts << "\n"
     << "join:          preempt joins " << c.preempt_joins << "\n"
     << "gossip:        stale rejections " << c.stale_view_rejections << "\n"
     << "repair:        scheduled " << c.repairs_scheduled << ", ELN sent "
     << c.eln_sent << ", stripe failovers " << c.stripe_failovers
     << ", short groups " << c.short_group_fallbacks << "\n";
  return os.str();
}

}  // namespace omcast::metrics
