// Fig. 9: service delay over time of the same "typical member" as Fig. 6.
// Under ROST (and relaxed TO) the member's delay should shrink as it climbs;
// under the others it fluctuates without converging.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  flags.Define("trace-minutes", "300", "how long to follow the member");
  flags.Define("member-bw", "2.0", "tagged member bandwidth");
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 9 -- service delay of a typical member (ms)", env);

  const double trace_s = flags.GetDouble("trace-minutes") * 60.0;
  const double member_bw = flags.GetDouble("member-bw");
  std::vector<std::string> header = {"minute"};
  for (const exp::Algorithm a : exp::AllAlgorithms())
    header.push_back(exp::AlgorithmLabel(a));
  util::Table table(std::move(header));

  // One tagged member per run (as in the paper); averaged across reps to
  // take the edge off the single-member anecdote.
  std::vector<std::vector<exp::TraceResult>> traces;
  for (const exp::Algorithm a : exp::AllAlgorithms()) {
    std::vector<exp::TraceResult> reps;
    for (int rep = 0; rep < env.reps; ++rep) {
      exp::ScenarioConfig config = env.BaseConfig();
      config.population = env.focus_size;
      config.seed = env.seed + static_cast<std::uint64_t>(rep);
      config.snapshot_interval_s = 300.0;  // delay sample cadence
      reps.push_back(RunMemberTraceScenario(env.topology, a, config, member_bw,
                                            trace_s + 600.0, trace_s));
    }
    traces.push_back(std::move(reps));
  }
  for (double minute = 0.0; minute <= trace_s / 60.0 + 1e-9; minute += 30.0) {
    std::vector<double> row;
    for (const auto& reps : traces) {
      double sum = 0.0;
      int counted = 0;
      for (const auto& trace : reps) {
        // Latest delay sample at or before this minute.
        double delay = 0.0;
        for (const auto& p : trace.delay_ms)
          if (p.t_min <= minute + 1e-9) delay = p.v;
        if (delay > 0.0) {
          sum += delay;
          ++counted;
        }
      }
      row.push_back(counted > 0 ? sum / counted : 0.0);
    }
    table.AddRow(util::FormatDouble(minute, 0), row, 1);
  }
  table.Print(std::cout, "tagged member's service delay (ms) over time");
  return 0;
}
