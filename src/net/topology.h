// GT-ITM transit-stub topology generator (Zegura, Calvert, Bhattacharjee,
// INFOCOM'96), as used by the paper's Section 5:
//
//   * a core of transit domains, each a connected random graph of transit
//     nodes, with the domains themselves forming a connected random graph;
//   * every transit node attaches several stub domains; each stub domain is
//     a small connected random graph of stub nodes (end hosts) and reaches
//     the core through one gateway stub node;
//   * link delays: transit-transit U[15,25] ms, transit-stub U[5,9] ms,
//     stub-stub U[2,4] ms.
//
// The paper's instance has 15,600 nodes: we use 12 transit domains x 20
// transit nodes (240), each transit node carrying 4 stub domains of 16 hosts
// (15,360 stub hosts). Overlay members are stub hosts.
//
// Routing is hierarchical (intra-stub-domain shortest path; stub -> gateway
// -> transit core shortest path -> gateway -> stub), which is exact for this
// topology family whenever stub domains are pure leaves, and is the routing
// policy real transit-stub networks implement. This keeps the delay oracle
// at O(1) per query after O(domains * n^3 + T^3) precomputation instead of a
// 15,600^2 APSP table.
#pragma once

#include <cstdint>
#include <vector>

#include "rand/rng.h"

namespace omcast::net {

// Global index of a stub host, in [0, num_stub_nodes()).
using HostId = int;

// Which delay oracle Generate() precomputes.
//
//   kHierarchical -- exact hierarchical routing. Per-domain APSP matrices
//     (num_stub_domains * ns^2 doubles) plus the transit-core APSP. The
//     default, and the reference every approximation is gated against.
//   kLandmark -- O(hosts)-memory approximation for 10^5..10^6-host
//     topologies. The hierarchical tables that scale with host count are
//     the per-domain APSP matrices (domains * ns^2 doubles -- hundreds of
//     MB at 10^6 hosts); the transit-core APSP is constant in host count
//     (T^2, under half a MB even at paper scale) and stays exact. Landmark
//     mode replaces each domain's APSP with `intra_landmarks` exact
//     distance columns (one Dijkstra per landmark; the gateway is always
//     landmark 0), so per-host storage drops from ns to intra_landmarks
//     doubles. Cross-domain delay is then EXACT -- host->gateway legs come
//     from column 0 and the core+gateway-edge legs were never approximated.
//     Same-domain delay uses ALT-style triangle-inequality bounds over the
//     domain's landmark set L: max_l |d(l,a)-d(l,b)| <= d(a,b) <=
//     min_l (d(l,a)+d(l,b)), returning the midpoint (exact whenever a or b
//     is itself a landmark, or a == b). tests/test_topology.cc gates the
//     end-to-end error against the exact oracle.
//
// Landmark selection is greedy farthest-point seeded at the gateway (ties
// to the lowest index) and consumes NO rng draws, so the two models
// generate bit-identical graphs from the same seed.
enum class DelayModel { kHierarchical, kLandmark };

struct TopologyParams {
  int transit_domains = 12;
  int transit_nodes_per_domain = 20;
  int stub_domains_per_transit_node = 4;
  int nodes_per_stub_domain = 16;

  DelayModel delay_model = DelayModel::kHierarchical;
  // Per-stub-domain landmark count under kLandmark (clamped to the domain
  // size; landmark 0 is always the gateway).
  int intra_landmarks = 4;
  // The flat validation edge list costs ~24 bytes/edge (~200 MB at 10^6
  // hosts); million-member sweeps switch it off.
  bool keep_flat_edges = true;

  // Delay ranges in milliseconds (paper Section 5).
  double tt_delay_lo = 15.0;
  double tt_delay_hi = 25.0;
  double ts_delay_lo = 5.0;
  double ts_delay_hi = 9.0;
  double ss_delay_lo = 2.0;
  double ss_delay_hi = 4.0;

  // Probability of an extra chord between a pair of nodes beyond the
  // connectivity-guaranteeing ring, within transit domains / between transit
  // domains / within stub domains.
  double intra_transit_edge_prob = 0.5;
  double inter_transit_edge_prob = 0.5;
  double intra_stub_edge_prob = 0.3;
};

// The paper's 15,600-node instance.
TopologyParams PaperTopologyParams();

// A small instance for unit tests and quick examples (~100 hosts).
TopologyParams TinyTopologyParams();

// A mid-size instance (~2300 hosts) for the fast default scale of the
// figure benches, where steady-state populations stay below ~2000.
TopologyParams SmallTopologyParams();

// A transit-stub instance scaled to hold at least `stub_hosts` end hosts
// (10 transit domains x 10 transit nodes, 50-host stub domains), with the
// landmark delay model and no flat edge list: the memory-lean configuration
// the scale sweep uses for 10^5..10^6-member overlays.
TopologyParams ScaleTopologyParams(int stub_hosts);

// An undirected weighted edge of the flat graph view (for validation).
struct FlatEdge {
  int a = 0;
  int b = 0;
  double delay_ms = 0.0;
};

// Thread-safety: a Topology is immutable after Generate() returns -- every
// member function is const and there are no mutable caches -- so a single
// instance may be shared read-only across the experiment runner's worker
// threads (see runner::SharedTopology). Keep it that way: any lazily
// computed state added here must either be built eagerly in Generate() or
// carry its own synchronization.
class Topology {
 public:
  // Generates a topology; all randomness comes from `rng`.
  static Topology Generate(const TopologyParams& params, rnd::Rng& rng);

  int num_stub_nodes() const { return num_stub_nodes_; }
  int num_transit_nodes() const { return num_transit_nodes_; }
  int num_stub_domains() const { return num_stub_domains_; }
  const TopologyParams& params() const { return params_; }

  DelayModel delay_model() const { return params_.delay_model; }

  // One-way propagation delay in milliseconds between stub hosts `a` and
  // `b` under hierarchical routing (or its landmark approximation, per
  // params().delay_model). Delay(a, a) == 0; symmetric.
  double Delay(HostId a, HostId b) const;

  // Stub domain a host belongs to, in [0, num_stub_domains()).
  int DomainOf(HostId h) const;

  // Transit node (global transit index) a stub domain attaches to.
  int TransitOfDomain(int domain) const;

  // Flat view of every node and link, for validating the hierarchical delay
  // oracle against plain Dijkstra in tests. Empty when the topology was
  // generated with keep_flat_edges == false. Node numbering of the flat
  // graph: stub host h -> h; transit node t -> num_stub_nodes() + t.
  std::vector<FlatEdge> FlatEdges() const;
  int FlatNodeCount() const { return num_stub_nodes_ + num_transit_nodes_; }

  // Bytes held by the precomputed delay tables (the dominant footprint);
  // the scale bench reports it per delay model.
  std::size_t DelayTableBytes() const;

 private:
  Topology() = default;

  // Index of host `h` within its stub domain.
  int IndexInDomain(HostId h) const;

  TopologyParams params_;
  int num_stub_nodes_ = 0;
  int num_transit_nodes_ = 0;
  int num_stub_domains_ = 0;

  // Per stub domain: the gateway's index within the domain and the delay of
  // the gateway<->transit edge (both models).
  std::vector<int> gateway_index_;
  std::vector<double> gateway_edge_delay_;

  // Transit core APSP (T^2, row-major); exact in both delay models.
  std::vector<double> transit_dist_;

  // kHierarchical: per-domain dense APSP matrix (n*n, row-major) of
  // intra-domain delays.
  std::vector<std::vector<double>> intra_dist_;

  // kLandmark: per host, exact distances to its domain's `intra_stride_`
  // landmarks (row-major host x stride; column 0 is the gateway).
  int intra_stride_ = 0;
  std::vector<double> host_landmark_dist_;

  // Flat edge list kept for validation/export (empty if gated off).
  std::vector<FlatEdge> flat_edges_;
};

// Samples `pairs` distinct random host pairs from `rng` and compares
// approx.Delay against exact.Delay (the two topologies must describe the
// same graph, i.e. be generated from the same params-modulo-delay_model and
// seed). Used by the accuracy-gate test and the delay-oracle microbench.
struct DelayAccuracy {
  int pairs = 0;
  double mean_rel_err = 0.0;
  double max_rel_err = 0.0;   // over pairs with exact delay > 0
  double max_abs_err_ms = 0.0;
  // Pairs violating BOTH the relative and the absolute budget.
  int gate_violations = 0;
};
DelayAccuracy CompareDelayOracles(const Topology& approx,
                                  const Topology& exact, int pairs,
                                  double rel_budget, double abs_budget_ms,
                                  rnd::Rng& rng);

// Dijkstra over an explicit edge list; returns distances from `source`.
// Exposed for tests and for small custom graphs.
std::vector<double> Dijkstra(int node_count, const std::vector<FlatEdge>& edges,
                             int source);

}  // namespace omcast::net
