// End-to-end ELN behaviour inside the per-packet simulator: descendants of
// a failed member's orphan classify the outage as *upstream loss* (their
// parent keeps talking via ELN) while the protocol's rejoin stays confined
// to the orphan itself -- the paper's duplicate-recovery/unnecessary-rejoin
// avoidance argument, observed on the wire.
#include <gtest/gtest.h>

#include <memory>

#include "net/topology.h"
#include "proto/min_depth.h"
#include "sim/simulator.h"
#include "stream/packet_sim.h"

namespace omcast::stream {
namespace {

using overlay::NodeId;
using overlay::Session;
using overlay::SessionParams;

class PacketElnTest : public ::testing::Test {
 protected:
  PacketElnTest() {
    rnd::Rng topo_rng(1);
    topology_ = std::make_unique<net::Topology>(
        net::Topology::Generate(net::TinyTopologyParams(), topo_rng));
    SessionParams sp;
    sp.rejoin_delay_s = 15.0;
    session_ = std::make_unique<Session>(
        sim_, *topology_, std::make_unique<proto::MinDepthProtocol>(), sp, 5);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topology_;
  std::unique_ptr<Session> session_;
};

TEST_F(PacketElnTest, DescendantsClassifyUpstreamLossDuringRecovery) {
  PacketSimParams p;
  p.recovery_group_size = 3;
  PacketLevelStream packets(*session_, p, 7);
  // Helpers with residual bandwidth for the repair.
  for (int i = 0; i < 25; ++i) session_->InjectMember(1.0, 1e9);
  // root <- failing <- orphan <- leaf.
  const NodeId failing = session_->InjectMember(5.0, 1e9);
  const NodeId orphan = session_->InjectMember(2.0, 1e9);
  const NodeId leaf = session_->InjectMember(0.5, 1e9);
  sim_.RunUntil(1.0);
  overlay::Tree& tree = session_->tree();
  if (tree.Parent(orphan) != failing) {
    tree.Detach(orphan);
    tree.Attach(failing, orphan);
  }
  if (tree.Parent(leaf) != orphan) {
    tree.Detach(leaf);
    tree.Attach(orphan, leaf);
  }
  packets.Start(120.0);
  sim_.RunUntil(30.0);
  EXPECT_EQ(packets.ElnStatusOf(leaf), core::ElnTracker::Status::kHealthy);
  session_->DepartNow(failing);
  // Mid-outage, after the orphan's recovery stripes start delivering
  // out-of-order repairs: the orphan forwards data and ELN downstream, so
  // the leaf sees the loss as upstream, not as its own parent's death.
  sim_.RunUntil(38.0);
  EXPECT_NE(packets.ElnStatusOf(leaf), core::ElnTracker::Status::kHealthy);
  EXPECT_GT(packets.eln_notifications_sent(), 0);
  // The leaf's parent (the orphan) is still its parent: no rejoin happened
  // below the orphan.
  EXPECT_EQ(tree.Parent(leaf), orphan);
  // After the rejoin completes and repairs drain, the stream heals.
  sim_.RunUntil(130.0);
  EXPECT_TRUE(tree.IsRooted(leaf));
}

TEST_F(PacketElnTest, HealthyStreamSendsNoEln) {
  PacketLevelStream packets(*session_, PacketSimParams{}, 9);
  for (int i = 0; i < 10; ++i) session_->InjectMember(2.0, 1e9);
  sim_.RunUntil(1.0);
  packets.Start(30.0);
  sim_.RunUntil(60.0);
  EXPECT_EQ(packets.eln_notifications_sent(), 0);
  for (NodeId id : session_->alive_members())
    EXPECT_EQ(packets.ElnStatusOf(id), core::ElnTracker::Status::kHealthy);
}

}  // namespace
}  // namespace omcast::stream
