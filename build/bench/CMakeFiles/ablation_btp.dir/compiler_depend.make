# Empty compiler generated dependencies file for ablation_btp.
# This may be replaced when dependencies are built.
