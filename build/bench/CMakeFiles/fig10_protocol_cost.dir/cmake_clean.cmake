file(REMOVE_RECURSE
  "CMakeFiles/fig10_protocol_cost.dir/fig10_protocol_cost.cc.o"
  "CMakeFiles/fig10_protocol_cost.dir/fig10_protocol_cost.cc.o.d"
  "fig10_protocol_cost"
  "fig10_protocol_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_protocol_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
