# Empty dependencies file for omcast_net.
# This may be replaced when dependencies are built.
