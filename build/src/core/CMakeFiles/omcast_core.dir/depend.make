# Empty dependencies file for omcast_core.
# This may be replaced when dependencies are built.
