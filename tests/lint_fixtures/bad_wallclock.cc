// Fixture: host-clock reads in simulation code must be flagged.
#include <chrono>  // expect(wallclock)
#include <ctime>

double HostNow() {
  auto t = std::chrono::system_clock::now();  // expect(wallclock)
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double HostSteady() {
  auto t = std::chrono::steady_clock::now();  // expect(wallclock)
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long Epoch() {
  return time(nullptr);  // expect(wallclock)
}

double BenchClock() {
  // Annotated: benchmark harness timing, not simulation time.
  // omcast-lint: allow(wallclock)
  auto t = std::chrono::high_resolution_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

// A member access named time(...) is not a clock read:
struct Sim {
  double time() const { return 0.0; }
};
double VirtualTime(const Sim& s) { return s.time(); }
