// Fig. 10: protocol overhead -- average number of reconnections the
// optimization mechanism imposes on a member during its lifetime, vs
// network size. Minimum-depth and longest-first impose none by
// construction; ROST should stay far below one; the centralized relaxed
// BO/TO pay the most.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 10 -- protocol overhead (reconnections per node)",
                     env);

  std::vector<std::string> header = {"size"};
  for (const exp::Algorithm a : exp::AllAlgorithms())
    header.push_back(exp::AlgorithmLabel(a));
  util::Table table(std::move(header));

  for (const int size : env.sizes) {
    std::vector<double> row;
    for (const exp::Algorithm a : exp::AllAlgorithms()) {
      exp::ScenarioConfig config = env.BaseConfig();
      config.population = size;
      const auto reps = bench::RunTreeReps(env, a, config);
      row.push_back(bench::MeanOf(
          reps, [](const auto& r) { return r.avg_reconnections; }));
    }
    table.AddRow(std::to_string(size), row);
  }
  table.Print(std::cout,
              "avg optimization-induced reconnections per member lifetime");
  return 0;
}
