# Empty dependencies file for test_packet_eln.
# This may be replaced when dependencies are built.
