# Empty dependencies file for test_cer.
# This may be replaced when dependencies are built.
