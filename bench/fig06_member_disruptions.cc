// Fig. 6: accumulated streaming disruptions over time of one "typical
// member" (moderate bandwidth, long lifetime) that joins once the network
// is in steady state. Under ROST the curve's slope should flatten as the
// member ages and climbs; under the others it should not.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  flags.Define("trace-minutes", "300", "how long to follow the member");
  flags.Define("member-bw", "2.0", "tagged member bandwidth");
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 6 -- cumulative disruptions of a typical member",
                     env);

  const double trace_s = flags.GetDouble("trace-minutes") * 60.0;
  const double member_bw = flags.GetDouble("member-bw");

  // One tagged member per cell (as in the paper); reps take the edge off
  // the single-member anecdote. The trace is recorded as a (t_min, count)
  // series in the cell result.
  runner::GridSpec spec;
  spec.figure = "fig06_member_disruptions";
  spec.title = "cumulative disruptions of a typical member";
  spec.row_header = "size";
  spec.rows = {std::to_string(env.focus_size)};
  for (const exp::Algorithm a : exp::AllAlgorithms())
    spec.cols.push_back(exp::AlgorithmLabel(a));
  spec.reps = env.reps;
  spec.headline_metric = "final_disruptions";
  spec.run = [&env, trace_s, member_bw](const runner::CellContext& cell) {
    exp::ScenarioConfig config = env.BaseConfig();
    config.population = env.focus_size;
    config.seed = cell.seed;
    const exp::Algorithm a = exp::AllAlgorithms()[cell.col];
    const exp::TraceResult trace = exp::RunMemberTraceScenario(
        env.Topo(), a, config, member_bw, trace_s + 600.0, trace_s);
    runner::CellResult out;
    auto& series = out.series["cum_disruptions"];
    for (const exp::TracePoint& p : trace.cumulative_disruptions)
      series.emplace_back(p.t_min, p.v);
    out.metrics["final_disruptions"] =
        series.empty() ? 0.0 : series.back().second;
    return out;
  };
  const runner::ResultsSink sink = bench::RunGridBench(env, spec);

  std::vector<std::string> header = {"minute"};
  header.insert(header.end(), spec.cols.begin(), spec.cols.end());
  util::Table table(std::move(header));

  // Sample each cumulative-count series on a 30-minute grid, averaged
  // across reps.
  for (double minute = 0.0; minute <= trace_s / 60.0 + 1e-9; minute += 30.0) {
    std::vector<double> row;
    for (std::size_t col = 0; col < spec.cols.size(); ++col) {
      double sum = 0.0;
      for (int rep = 0; rep < spec.reps; ++rep) {
        const auto& result = sink.Cell(0, col, rep).result;
        const auto it = result.series.find("cum_disruptions");
        double count = 0.0;
        if (it != result.series.end())
          for (const auto& [t_min, v] : it->second)
            if (t_min <= minute) count = v;
        sum += count;
      }
      row.push_back(sum / static_cast<double>(spec.reps));
    }
    table.AddRow(util::FormatDouble(minute, 0), row, 1);
  }
  table.Print(std::cout,
              "cumulative disruptions since the tagged member joined");
  std::cout << "\n(ROST's slope should flatten as the member ages and climbs "
               "the tree.)\n";
  return 0;
}
