// The minimum-depth algorithm (paper Section 2.1): a (re)joining member
// discovers up to ~100 members and picks the spare-capacity parent highest
// in the tree, ties broken by network delay. Fully distributed; imposes no
// optimization overhead (no evictions, no switches).
#pragma once

#include "overlay/session.h"

namespace omcast::proto {

class MinDepthProtocol final : public overlay::Protocol {
 public:
  std::string name() const override { return "min-depth"; }
  bool TryAttach(overlay::Session& session, overlay::NodeId id) override;
};

}  // namespace omcast::proto
