#include "core/rost/rost.h"

#include <algorithm>

#include "proto/selection.h"
#include "util/check.h"

namespace omcast::core {

using overlay::kNoNode;
using overlay::kRootId;
using overlay::Member;
using overlay::NodeId;
using overlay::Session;

RostProtocol::RostProtocol(RostParams params)
    : params_(params), referees_(params.referee) {
  util::Check(params_.switching_interval_s > 0.0,
              "switching interval must be positive");
}

RostProtocol::NodeState& RostProtocol::StateFor(NodeId id) {
  if (state_.size() <= static_cast<std::size_t>(id))
    state_.resize(static_cast<std::size_t>(id) + 1);
  return state_[static_cast<std::size_t>(id)];
}

bool RostProtocol::TryAttach(Session& session, NodeId id) {
  // Joining is the minimum-depth rule: newcomers start low and earn their
  // way up via BTP (Section 3.3: moving nodes up gradually keeps short-lived
  // clients from climbing on arrival).
  const std::vector<NodeId> candidates =
      session.CollectJoinPool(session.params().candidate_sample_size, id);
  const NodeId parent = proto::PickMinDepthParent(session, candidates, id);
  if (parent == kNoNode) return false;
  session.tree().Attach(parent, id);
  return true;
}

void RostProtocol::OnAttached(Session& session, NodeId id) {
  NodeState& st = StateFor(id);
  st.recovering = false;
  if (params_.use_referees && !referees_.IsEnrolled(id))
    referees_.Enroll(session, id);
  ScheduleCheck(session, id, params_.switching_interval_s);
}

void RostProtocol::OnDeparture(Session& session, NodeId id) {
  NodeState& st = StateFor(id);
  if (st.timer == sim::kInvalidEventId) return;
  session.simulator().Cancel(st.timer);
  st.timer = sim::kInvalidEventId;
}

void RostProtocol::OnOrphaned(Session&, NodeId id) {
  // Mid failure-recovery: the member neither initiates switches nor lets
  // others lock it into one (Section 3.3 lock rule).
  StateFor(id).recovering = true;
}

void RostProtocol::ScheduleCheck(Session& session, NodeId id, double delay_s) {
  NodeState& st = StateFor(id);
  if (st.timer != sim::kInvalidEventId) session.simulator().Cancel(st.timer);
  st.timer = session.simulator().ScheduleAfter(
      delay_s, [this, &session, id] { CheckSwitch(session, id); });
}

double RostProtocol::EffectiveBtp(Session& session, NodeId id) {
  const sim::Time now = session.simulator().now();
  if (params_.use_referees && referees_.IsEnrolled(id))
    return referees_.VerifiedBandwidth(session, id) *
           referees_.VerifiedAge(session, id, now);
  return session.tree().Get(id).ClaimedBtp(now);
}

double RostProtocol::EffectiveBandwidth(Session& session, NodeId id) {
  if (params_.use_referees && referees_.IsEnrolled(id))
    return referees_.VerifiedBandwidth(session, id);
  return session.tree().Get(id).reported_bandwidth;
}

double RostProtocol::EffectiveAge(Session& session, NodeId id) {
  const sim::Time now = session.simulator().now();
  if (params_.use_referees && referees_.IsEnrolled(id))
    return referees_.VerifiedAge(session, id, now);
  const overlay::Member& m = session.tree().Get(id);
  return m.Age(now) + m.reported_age_bonus;
}

bool RostProtocol::TryLock(Session& session, const std::vector<NodeId>& set) {
  const sim::Time now = session.simulator().now();
  for (NodeId id : set) {
    const NodeState& st = StateFor(id);
    if (st.locked_until > now || st.recovering) return false;
  }
  for (NodeId id : set) StateFor(id).locked_until = now + params_.lock_hold_s;
  AuditLockSet(session, set);
  return true;
}

void RostProtocol::AuditLockSet(Session& session,
                                const std::vector<NodeId>& set) {
  if constexpr (!util::kDcheckEnabled) {
    (void)session;
    (void)set;
    return;
  }
  const sim::Time now = session.simulator().now();
  for (NodeId id : set) {
    const NodeState& st = StateFor(id);
    OMCAST_DCHECK(st.locked_until > now,
                  "acquired lock set member must hold its lock");
    OMCAST_DCHECK(!st.recovering,
                  "lock must never be granted over a recovering member");
  }
}

void RostProtocol::CheckSwitchNow(Session& session, NodeId id) {
  CheckSwitch(session, id);
}

void RostProtocol::CheckSwitch(Session& session, NodeId id) {
  overlay::Tree& tree = session.tree();
  Member& m = tree.Get(id);
  if (!m.alive) return;
  StateFor(id).timer = sim::kInvalidEventId;

  // While detached (rejoining) or inside an orphaned fragment, just keep
  // the periodic check alive.
  if (m.parent == kNoNode || !tree.IsRooted(id)) {
    ScheduleCheck(session, id, params_.switching_interval_s);
    return;
  }
  const NodeId parent = m.parent;
  if (parent == kRootId) {
    // The source has infinite BTP; nothing to compare against.
    ScheduleCheck(session, id, params_.switching_interval_s);
    return;
  }

  if (!SwitchConditionHolds(session, id, parent)) {
    ScheduleCheck(session, id, params_.switching_interval_s);
    return;
  }

  // Lock set: self, parent, grandparent, own children, siblings.
  std::vector<NodeId> lock_set = {id, parent, tree.Get(parent).parent};
  for (NodeId c : m.children) lock_set.push_back(c);
  for (NodeId s : tree.Get(parent).children)
    if (s != id) lock_set.push_back(s);
  if (!TryLock(session, lock_set)) {
    ++lock_conflicts_;
    ScheduleCheck(session, id, params_.lock_retry_delay_s);
    return;
  }

  if (!SwitchFeasible(session, id, parent)) {
    ++infeasible_;
    ScheduleCheck(session, id, params_.switching_interval_s);
    return;
  }

  PerformSwitch(session, id, parent);
  ScheduleCheck(session, id, params_.switching_interval_s);
}

bool RostProtocol::SwitchConditionHolds(Session& session, NodeId id,
                                        NodeId parent) {
  switch (params_.criterion) {
    case SwitchCriterion::kBtp:
      // The paper's rule: BTP strictly larger AND bandwidth no smaller
      // (the bandwidth guard avoids switches the parent would undo by
      // out-earning the child later, Section 3.3).
      return EffectiveBtp(session, id) > EffectiveBtp(session, parent) &&
             EffectiveBandwidth(session, id) >=
                 EffectiveBandwidth(session, parent);
    case SwitchCriterion::kBandwidthOnly:
      return EffectiveBandwidth(session, id) >
             EffectiveBandwidth(session, parent);
    case SwitchCriterion::kAgeOnly:
      return EffectiveAge(session, id) > EffectiveAge(session, parent);
  }
  return false;
}

bool RostProtocol::SwitchFeasible(Session& session, NodeId id,
                                  NodeId parent) const {
  // Structural feasibility against *actual* capacities: the switch
  // handshake itself reveals an out-degree shortage (e.g. a bandwidth
  // cheater) and the swap aborts.
  const overlay::Tree& tree = session.tree();
  const Member& m = tree.Get(id);
  const Member& p = tree.Get(parent);
  const int siblings = static_cast<int>(p.children.size()) - 1;
  const int former = static_cast<int>(m.children.size());
  const int overflow = std::max(0, former - p.capacity);
  return m.capacity >= 1 + siblings + overflow;
}

void RostProtocol::OnPrepopulated(Session& session, NodeId id) {
  // Replay the member's historical switching: one opportunity per elapsed
  // switching interval of its age, each climbing at most one level.
  overlay::Tree& tree = session.tree();
  const double age = tree.Get(id).Age(session.simulator().now());
  long opportunities =
      static_cast<long>(age / params_.switching_interval_s);
  opportunities = std::min(opportunities, 256L);
  while (opportunities-- > 0) {
    const Member& m = tree.Get(id);
    if (m.parent == kNoNode || m.parent == kRootId) break;
    const NodeId parent = m.parent;
    if (!SwitchConditionHolds(session, id, parent)) break;
    if (!SwitchFeasible(session, id, parent)) break;
    PerformSwitch(session, id, parent);
  }
}

void RostProtocol::PerformSwitch(Session& session, NodeId child,
                                 NodeId parent) {
  overlay::Tree& tree = session.tree();
  const NodeId grand = tree.Get(parent).parent;
  util::Check(grand != kNoNode, "switch requires a grandparent");

  std::vector<NodeId> siblings;
  for (NodeId s : tree.Get(parent).children)
    if (s != child) siblings.push_back(s);
  std::vector<NodeId> former = tree.Get(child).children;
  // Members whose edges the swap rearranges; AuditSwitch checks none are
  // lost or duplicated once the neighbourhood is reassembled.
  const std::size_t neighbourhood_size = 2 + siblings.size() + former.size();

  // Disassemble the neighbourhood.
  for (NodeId s : siblings) tree.Detach(s);
  for (NodeId k : former) tree.Detach(k);
  tree.Detach(child);
  tree.Detach(parent);

  // Promote the child into the parent's position.
  tree.Attach(grand, child);
  tree.Attach(child, parent);
  for (NodeId s : siblings) {
    tree.Attach(child, s);
    ++tree.Get(s).reconnections;
  }

  // The demoted parent adopts the child's former children up to capacity;
  // the largest-BTP overflow stays with the promoted node (Fig. 2's f).
  const sim::Time now = session.simulator().now();
  std::sort(former.begin(), former.end(), [&](NodeId a, NodeId b) {
    return tree.Get(a).Btp(now) > tree.Get(b).Btp(now);
  });
  const int overflow =
      std::max(0, static_cast<int>(former.size()) - tree.Get(parent).capacity);
  for (std::size_t i = 0; i < former.size(); ++i) {
    if (static_cast<int>(i) < overflow) {
      // Stays with its old parent (the promoted node): no reconnection.
      tree.Attach(child, former[i]);
    } else {
      tree.Attach(parent, former[i]);
      ++tree.Get(former[i]).reconnections;
    }
  }
  ++tree.Get(child).reconnections;
  ++tree.Get(parent).reconnections;
  ++switches_;
  AuditSwitch(session, child, parent, grand, neighbourhood_size);
}

void RostProtocol::AuditSwitch(Session& session, NodeId child, NodeId parent,
                               NodeId grand,
                               std::size_t neighbourhood_size) const {
  if constexpr (!util::kDcheckEnabled) {
    (void)session;
    (void)child;
    (void)parent;
    (void)grand;
    (void)neighbourhood_size;
    return;
  }
  const overlay::Tree& tree = session.tree();
  const Member& promoted = tree.Get(child);
  const Member& demoted = tree.Get(parent);

  // Positions after the swap (Fig. 2): child under the grandparent, parent
  // under the child, layers shifted accordingly.
  OMCAST_DCHECK(promoted.parent == grand,
                "switch: promoted child must sit under the grandparent");
  OMCAST_DCHECK(demoted.parent == child,
                "switch: demoted parent must sit under the promoted child");
  OMCAST_DCHECK(promoted.layer + 1 == demoted.layer,
                "switch: demoted parent must be one layer below");

  // Conservation: the reassembled neighbourhood (promoted node, its new
  // children, the demoted parent's adopted children) is exactly the set of
  // members the swap disassembled -- nobody dropped, nobody double-attached.
  OMCAST_DCHECK(1 + promoted.children.size() + demoted.children.size() ==
                    neighbourhood_size,
                "switch: neighbourhood member count must be conserved");
  OMCAST_DCHECK(static_cast<int>(demoted.children.size()) <= demoted.capacity,
                "switch: demoted parent must respect its capacity");

  // Every rearranged member is rooted again: the swap must never strand a
  // fragment (orphans would silently stop receiving the stream).
  OMCAST_DCHECK(tree.IsRooted(child),
                "switch: promoted child must be rooted");
  for (NodeId c : promoted.children)
    OMCAST_DCHECK(tree.IsRooted(c), "switch: promoted node's children rooted");
  for (NodeId c : demoted.children)
    OMCAST_DCHECK(tree.IsRooted(c), "switch: demoted node's children rooted");

  // Full structural audit (O(n)): capacity, layer, parent/child symmetry and
  // acyclicity over the whole tree.
  tree.CheckInvariants();
}

}  // namespace omcast::core
