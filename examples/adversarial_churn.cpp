// Adversarial members vs the referee mechanism (paper Section 3.4).
//
// A squad of malicious free-riders claims enormous bandwidth and age to
// climb toward the source, then departs simultaneously to take the stream
// down with them. The example runs the attack twice -- with ROST's BTP
// switching trusting member claims, and with referee-attested values --
// and reports how high the cheaters got and how much damage their
// coordinated exit caused.
//
//   ./examples/adversarial_churn [--members=800] [--cheaters=12] [--seed=3]
#include <iostream>

#include "core/rost/rost.h"
#include "net/topology.h"
#include "rand/rng.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace omcast;

struct AttackOutcome {
  double avg_cheater_layer = 0.0;
  int best_layer = 99;
  long victims = 0;  // disruptions caused by the coordinated exit
  long switches = 0;
  long infeasible = 0;
};

AttackOutcome RunAttack(const net::Topology& topology, bool use_referees,
                        int members, int cheaters, std::uint64_t seed) {
  sim::Simulator sim;
  core::RostParams params;
  params.switching_interval_s = 120.0;  // aggressive adjustment cadence
  params.use_referees = use_referees;
  auto protocol = std::make_unique<core::RostProtocol>(params);
  core::RostProtocol* rost = protocol.get();
  overlay::Session session(sim, topology, std::move(protocol),
                           overlay::SessionParams{}, seed);
  session.Prepopulate(members);
  session.StartArrivals(members / rnd::kMeanLifetimeSeconds);
  sim.RunUntil(600.0);

  // The attackers join as ordinary members with modest real bandwidth, then
  // lie about both BTP inputs. Out-degree is self-policed, so a malicious
  // node also *accepts* far more children than its uplink can actually
  // serve (they would starve; here the structural damage is what matters).
  std::vector<overlay::NodeId> squad;
  for (int i = 0; i < cheaters; ++i) {
    const overlay::NodeId id = session.InjectMember(2.0, 1e9);
    overlay::Member& m = session.tree().Get(id);
    m.reported_bandwidth = 100.0;
    m.reported_age_bonus = 1e7;
    session.tree().SetCapacity(id, 100);
    squad.push_back(id);
  }
  // Give them two hours of switching opportunities.
  sim.RunUntil(7800.0);

  AttackOutcome out;
  double layer_sum = 0.0;
  for (const overlay::NodeId id : squad) {
    const int layer = session.tree().Layer(id);
    layer_sum += layer;
    out.best_layer = std::min(out.best_layer, layer);
  }
  out.avg_cheater_layer = layer_sum / static_cast<double>(squad.size());
  out.switches = rost->switches_performed();
  out.infeasible = rost->infeasible_switches();

  // Coordinated exit: count the members disrupted by it.
  long disruptions = 0;
  session.hooks().AddOnDisruption(
      [&disruptions](overlay::NodeId, overlay::NodeId) { ++disruptions; });
  for (const overlay::NodeId id : squad) session.DepartNow(id);
  out.victims = disruptions;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags;
  flags.Define("members", "800", "overlay size")
      .Define("cheaters", "12", "size of the malicious squad")
      .Define("seed", "3", "random seed");
  if (!flags.Parse(argc, argv)) return 1;
  const int members = flags.GetInt("members");
  const int cheaters = flags.GetInt("cheaters");
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed"));

  rnd::Rng topo_rng(42);
  const net::Topology topology =
      net::Topology::Generate(net::SmallTopologyParams(), topo_rng);

  std::cout << "adversarial churn: " << cheaters << " cheaters (real bw 2.0, "
            << "claimed bw 100 + inflated age) infiltrate " << members
            << " members,\nclimb for ~2 hours, then all depart at once.\n\n";

  const AttackOutcome trusting =
      RunAttack(topology, /*use_referees=*/false, members, cheaters, seed);
  const AttackOutcome attested =
      RunAttack(topology, /*use_referees=*/true, members, cheaters, seed);

  util::Table table({"scheme", "avg cheater layer", "best layer",
                     "victims of exit", "switches"});
  table.AddRow({"claims trusted", util::FormatDouble(trusting.avg_cheater_layer, 1),
                std::to_string(trusting.best_layer),
                std::to_string(trusting.victims),
                std::to_string(trusting.switches)});
  table.AddRow({"referee-attested",
                util::FormatDouble(attested.avg_cheater_layer, 1),
                std::to_string(attested.best_layer),
                std::to_string(attested.victims),
                std::to_string(attested.switches)});
  table.Print(std::cout);

  std::cout << "\nWith referees (Section 3.4), switching uses third-party-"
               "attested bandwidth and\nage, so inflated claims no longer "
               "move attackers up the tree; the residual\ndamage comes from "
               "their over-accepting slots attracting joiners, which the\n"
               "paper's referee design would curb the same way (joiners "
               "consult the\nbandwidth referees before attaching).\n";
  return 0;
}
