#!/usr/bin/env python3
"""Repo-specific determinism lint for the omcast discrete-event simulator.

Every figure in this repository is produced by a deterministic seeded
simulation; any source of run-to-run variation (wall clock, unseeded RNG,
hash-order iteration, pointer-valued ties) silently invalidates results.
This linter scans C++ sources for the hazard patterns we care about:

  rand            rand()/srand()/std::random_device/drand48/arc4random used
                  outside src/rand (all randomness must flow through the
                  seeded rnd::Rng substrate)
  wallclock       std::chrono::{system,steady,high_resolution}_clock,
                  time(), gettimeofday(), clock_gettime() in simulation
                  code (simulation time is sim::Simulator::now(), never the
                  host clock)
  unordered-iter  declaring or range-for-iterating std::unordered_map /
                  std::unordered_set: bucket order is nondeterministic
                  across libstdc++ versions and (with pointer keys) runs,
                  so it must never feed protocol decisions. Declarations
                  must carry an allow annotation documenting the contract.
  pointer-sort    ordering by raw pointer value (std::less<T*>, ordered
                  map/set keyed by a pointer, uintptr_t casts): addresses
                  change run to run under ASLR
  uninit-member   scalar data member without an initializer in a struct or
                  class body: reads of indeterminate values are UB and a
                  classic source of "works on my machine" nondeterminism
  trace-wallclock wall-clock value fed into a trace emission (`->Emit(...)`
                  with a chrono/time token in its arguments): trace payloads
                  must be replay-deterministic -- sim time and stable ids
                  only -- or equal-seed runs stop exporting byte-identical
                  JSONL (host timing belongs in obs::SimProfiler)

False positives are silenced in place with an annotation on the same line
or the line above:

    // omcast-lint: allow(unordered-iter)
    std::unordered_map<NodeId, View> views_;   // point lookups only

Multiple rules: `omcast-lint: allow(rand, wallclock)`.

Usage:
    lint_determinism.py PATH [PATH ...]       lint files / directories
    lint_determinism.py --selftest DIR        run against fixture files with
                                              `// expect(<rule>)` markers
    lint_determinism.py --list-rules          print the rule table

Exit status: 0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass
from pathlib import Path

CXX_SUFFIXES = {".cc", ".cpp", ".cxx", ".h", ".hpp", ".hh"}

ALLOW_RE = re.compile(r"omcast-lint:\s*allow\(([a-z\-,\s]+)\)")
EXPECT_RE = re.compile(r"//\s*expect\(([a-z\-]+)\)")


@dataclass
class Violation:
    path: Path
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Source preparation: strip comments and string/char literals so rule
# regexes never match inside them, while preserving line numbers.
# --------------------------------------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^(\s]*)\(', text[i:])
                if m:
                    state = "raw"
                    raw_delim = ")" + m.group(1) + '"'
                    out.append(" " * len(m.group(0)))
                    i += len(m.group(0))
                    continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


# --------------------------------------------------------------------------
# Rules. Each returns a list of (line_index, message) for a file whose
# comments/strings have been blanked. `code_lines` preserves line numbers.
# --------------------------------------------------------------------------

RAND_RE = re.compile(
    r"std::random_device|\brandom_device\b|\bsrand\s*\(|"
    r"(?<![:\w])s?rand\s*\(|\bdrand48\s*\(|\barc4random\b"
)

WALLCLOCK_RE = re.compile(
    r"std::chrono::(system_clock|steady_clock|high_resolution_clock)|"
    r"\bgettimeofday\s*\(|\bclock_gettime\s*\(|"
    r"(?<![\w.>])(?:std::)?time\s*\(\s*(nullptr|NULL|0)\s*\)|"
    r"\blocaltime\b|\bgmtime\b"
)

UNORDERED_DECL_RE = re.compile(r"std::unordered_(map|set)\s*<")

POINTER_SORT_RES = [
    re.compile(r"std::less\s*<[^<>]*\*\s*>"),
    re.compile(r"std::(map|set|multimap|multiset)\s*<[^<>,]*\*\s*[,>]"),
    re.compile(r"reinterpret_cast\s*<\s*(std::)?u?intptr_t\s*>"),
]

UNINIT_TYPE = (
    r"(?:const\s+)?"
    r"(?:bool|char|short|int|long|float|double|unsigned|std::size_t|"
    r"std::u?int(?:8|16|32|64|ptr)?_t|size_t|u?int(?:8|16|32|64)_t|"
    r"Time|sim::Time|NodeId|overlay::NodeId|net::HostId|HostId|EventId|"
    r"sim::EventId)"
)
UNINIT_MEMBER_RE = re.compile(
    r"^\s*" + UNINIT_TYPE + r"(?:\s+(?:const\s+)?)"
    r"(?:\s*[\w]+\s*,\s*)*[\w]+\s*;\s*$"
)
STRUCT_OPEN_RE = re.compile(r"\b(struct|class)\s+\w+[^;{]*\{")

TRACE_EMIT_RE = re.compile(r"(?:->|\.)\s*Emit\s*\(")
TRACE_WALLCLOCK_TOKEN_RE = re.compile(
    r"std::chrono|steady_clock|system_clock|high_resolution_clock|"
    r"\bWallMs\s*\(|\bwall_ms\b|\bgettimeofday\b|\bclock_gettime\b|"
    r"(?<![\w.>])(?:std::)?time\s*\(\s*(?:nullptr|NULL|0)\s*\)"
)


def find_rand(code_lines, path: Path):
    if "src/rand" in path.as_posix():
        return []  # the seeded substrate itself
    hits = []
    for i, line in enumerate(code_lines):
        if RAND_RE.search(line):
            hits.append((i, "unseeded randomness; route through rnd::Rng "
                            "(src/rand/rng.h) so runs stay reproducible"))
    return hits


def find_wallclock(code_lines, path: Path):
    del path
    hits = []
    for i, line in enumerate(code_lines):
        if WALLCLOCK_RE.search(line):
            hits.append((i, "wall-clock time in simulation code; use "
                            "sim::Simulator::now() (virtual time) instead"))
    return hits


def find_unordered_iter(code_lines, path: Path):
    del path
    hits = []
    # Track identifiers declared as unordered containers in this file so we
    # can also flag range-for iteration over them.
    unordered_vars: set[str] = set()
    decl_name_re = re.compile(
        r"std::unordered_(?:map|set)\s*<.*>\s*(\w+)\s*[;{=]")
    for i, line in enumerate(code_lines):
        if UNORDERED_DECL_RE.search(line):
            hits.append((i, "unordered container: bucket order is "
                            "nondeterministic; document why iteration order "
                            "never feeds protocol decisions (or use a vector/"
                            "std::map) and annotate with omcast-lint: "
                            "allow(unordered-iter)"))
            m = decl_name_re.search(line)
            if m:
                unordered_vars.add(m.group(1))
    for i, line in enumerate(code_lines):
        m = re.search(r"for\s*\(.*:\s*([\w.\->]+)\s*\)", line)
        if m:
            iterated = m.group(1).split(".")[-1].split(">")[-1]
            if iterated in unordered_vars:
                hits.append((i, f"range-for over unordered container "
                                f"'{iterated}': iteration order is "
                                f"nondeterministic"))
    return hits


def find_pointer_sort(code_lines, path: Path):
    del path
    hits = []
    for i, line in enumerate(code_lines):
        for rx in POINTER_SORT_RES:
            if rx.search(line):
                hits.append((i, "ordering by raw pointer value: addresses "
                                "vary run to run under ASLR; key by a stable "
                                "id instead"))
                break
    return hits


def find_uninit_member(code_lines, path: Path):
    del path
    hits = []
    # Lightweight brace tracking: flag declarations only directly inside a
    # struct/class body (depth == body depth), not locals in member
    # functions. Good enough for this codebase's Google-style layout.
    depth = 0
    struct_depths: list[int] = []
    for i, line in enumerate(code_lines):
        opens_struct = bool(STRUCT_OPEN_RE.search(line))
        in_struct_body = bool(struct_depths) and depth == struct_depths[-1] + 1
        if (in_struct_body and not opens_struct
                and UNINIT_MEMBER_RE.match(line)
                and "typedef" not in line and "using" not in line):
            hits.append((i, "scalar member without initializer: reads of "
                            "indeterminate values are UB and nondeterministic;"
                            " add `= 0` / `{}`"))
        for c in line:
            if c == "{":
                if opens_struct:
                    struct_depths.append(depth)
                    opens_struct = False  # first brace belongs to the struct
                depth += 1
            elif c == "}":
                depth -= 1
                if struct_depths and depth == struct_depths[-1]:
                    struct_depths.pop()
    return hits


def find_trace_wallclock(code_lines, path: Path):
    del path
    hits = []
    for i, line in enumerate(code_lines):
        if not TRACE_EMIT_RE.search(line):
            continue
        # An Emit call's argument list often wraps; scan the call line plus
        # the next two continuation lines for a wall-clock token.
        window = " ".join(code_lines[i:i + 3])
        if TRACE_WALLCLOCK_TOKEN_RE.search(window):
            hits.append((i, "wall-clock value in a trace emission: trace "
                            "payloads must be replay-deterministic (sim time "
                            "and stable ids only); host timing belongs in "
                            "obs::SimProfiler"))
    return hits


RULES = {
    "rand": find_rand,
    "wallclock": find_wallclock,
    "unordered-iter": find_unordered_iter,
    "pointer-sort": find_pointer_sort,
    "uninit-member": find_uninit_member,
    "trace-wallclock": find_trace_wallclock,
}


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def allowed_rules(raw_lines: list[str], idx: int) -> set[str]:
    """Rules allowed at line `idx` (annotation on the line or the one above)."""
    allowed: set[str] = set()
    for j in (idx, idx - 1):
        if 0 <= j < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[j])
            if m:
                allowed.update(r.strip() for r in m.group(1).split(","))
    return allowed


def lint_file(path: Path) -> list[Violation]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        print(f"warning: cannot read {path}: {e}", file=sys.stderr)
        return []
    raw_lines = text.splitlines()
    code_lines = strip_comments_and_strings(text).splitlines()
    violations = []
    for rule, finder in RULES.items():
        for idx, message in finder(code_lines, path):
            if rule in allowed_rules(raw_lines, idx):
                continue
            violations.append(Violation(path, idx + 1, rule, message))
    return violations


def collect_files(paths: list[str]) -> list[Path]:
    files = []
    for p in paths:
        path = Path(p)
        if not path.exists():
            # A typo'd path must not report "clean": fail loudly so CI can't
            # silently lint nothing.
            raise FileNotFoundError(p)
        if path.is_dir():
            files.extend(sorted(f for f in path.rglob("*")
                                if f.suffix in CXX_SUFFIXES))
        elif path.suffix in CXX_SUFFIXES:
            files.append(path)
        else:
            print(f"warning: skipping non-C++ path {path}", file=sys.stderr)
    return files


def run_selftest(fixture_dir: str) -> int:
    """Fixtures mark every line that must be flagged with `// expect(<rule>)`.

    The selftest fails on any missed expectation or unexpected violation, so
    it pins both the detectors and the allow() escape hatch.
    """
    fixtures = collect_files([fixture_dir])
    if not fixtures:
        print(f"selftest: no fixtures under {fixture_dir}", file=sys.stderr)
        return 2
    failures = 0
    for path in fixtures:
        raw_lines = path.read_text(encoding="utf-8").splitlines()
        expected = set()
        for i, line in enumerate(raw_lines):
            for m in EXPECT_RE.finditer(line):
                expected.add((i + 1, m.group(1)))
        actual = {(v.line, v.rule) for v in lint_file(path)}
        for line, rule in sorted(expected - actual):
            print(f"selftest: {path}:{line}: expected [{rule}] "
                  f"but the linter did not flag it")
            failures += 1
        for line, rule in sorted(actual - expected):
            print(f"selftest: {path}:{line}: unexpected [{rule}] violation")
            failures += 1
    if failures:
        print(f"selftest: FAILED ({failures} mismatches)")
        return 1
    print(f"selftest: OK ({len(fixtures)} fixtures)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="DES-reproducibility lint for omcast C++ sources")
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--selftest", metavar="DIR",
                        help="verify the linter against fixture files")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0
    try:
        if args.selftest:
            return run_selftest(args.selftest)
        if not args.paths:
            parser.print_usage(sys.stderr)
            return 2
        files = collect_files(args.paths)
    except FileNotFoundError as err:
        print(f"error: no such file or directory: {err}", file=sys.stderr)
        return 2
    all_violations: list[Violation] = []
    for path in files:
        all_violations.extend(lint_file(path))
    for v in all_violations:
        print(v)
    if all_violations:
        print(f"lint_determinism: {len(all_violations)} violation(s) in "
              f"{len(files)} files", file=sys.stderr)
        return 1
    print(f"lint_determinism: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
