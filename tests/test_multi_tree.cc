#include "stream/multi_tree.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "sim/simulator.h"

namespace omcast::stream {
namespace {

const net::Topology& SmallTopology() {
  static const net::Topology topology = [] {
    rnd::Rng rng(1);
    return net::Topology::Generate(net::SmallTopologyParams(), rng);
  }();
  return topology;
}

double RunScheme(int trees, bool cer, std::uint64_t seed, double* degraded,
                 long* outages = nullptr) {
  sim::Simulator sim;
  MultiTreeParams p;
  p.trees = trees;
  p.cer_recovery = cer;
  MultiTreeStream streams(sim, SmallTopology(), p, seed);
  const double rate = 400.0 / rnd::kMeanLifetimeSeconds;
  streams.StartArrivals(4.0 * rate);
  sim.RunUntil(800.0);
  streams.StopArrivals();
  streams.StartArrivals(rate);
  sim.RunUntil(3200.0);
  streams.Finalize(1000.0, 3200.0);
  if (degraded != nullptr) *degraded = streams.degraded_ratio().mean();
  if (outages != nullptr) *outages = streams.outages_recorded();
  return streams.stall_ratio().mean();
}

TEST(MultiTree, SingleTreeStallEqualsDegraded) {
  double degraded = 0.0;
  const double stall = RunScheme(1, false, 7, &degraded);
  EXPECT_GT(stall, 0.0);
  EXPECT_DOUBLE_EQ(stall, degraded);  // K=1: any outage is a stall
}

TEST(MultiTree, RedundancyCutsStallsButDegradesQuality) {
  double deg1 = 0.0, deg2 = 0.0;
  const double stall1 = RunScheme(1, false, 7, &deg1);
  const double stall2 = RunScheme(2, false, 7, &deg2);
  EXPECT_LT(stall2, stall1 / 2.0);  // simultaneous loss of both is rare
  EXPECT_GT(deg2, deg1);            // but single-description loss is common
}

TEST(MultiTree, CerRecoveryCutsSingleTreeStalls) {
  const double raw = RunScheme(1, false, 9, nullptr);
  const double repaired = RunScheme(1, true, 9, nullptr);
  EXPECT_GT(raw, 0.0);
  EXPECT_LT(repaired, raw / 2.0);
}

TEST(MultiTree, MirroredWorkloadKeepsPopulationsInLockstep) {
  sim::Simulator sim;
  MultiTreeParams p;
  p.trees = 3;
  MultiTreeStream streams(sim, SmallTopology(), p, 11);
  streams.StartArrivals(0.5);
  sim.RunUntil(1500.0);
  // Same arrivals, same lifetimes, same departure instants: the population
  // is identical across trees at all times, so the average is integral.
  const double avg = streams.average_population();
  EXPECT_GT(avg, 10.0);
  EXPECT_DOUBLE_EQ(avg, std::floor(avg + 0.5));
  EXPECT_GT(streams.members_created(), 500);
}

TEST(MultiTree, OutagesAreRecordedPerTree) {
  long outages = 0;
  RunScheme(2, false, 13, nullptr, &outages);
  EXPECT_GT(outages, 0);
}

}  // namespace
}  // namespace omcast::stream
