#include "stream/multi_tree.h"

#include <algorithm>

#include "proto/min_depth.h"
#include "util/check.h"

namespace omcast::stream {

using overlay::kNoNode;
using overlay::Member;
using overlay::NodeId;
using overlay::Session;

MultiTreeStream::MultiTreeStream(sim::Simulator& simulator,
                                 const net::Topology& topology,
                                 MultiTreeParams params, std::uint64_t seed)
    : sim_(simulator),
      params_(params),
      rng_(seed),
      bandwidth_dist_(rnd::PaperBandwidthDist()),
      lifetime_dist_(rnd::PaperLifetimeDist()) {
  util::Check(params_.trees >= 1, "need at least one tree");
  node_to_member_.resize(static_cast<std::size_t>(params_.trees));
  residual_fraction_.resize(static_cast<std::size_t>(params_.trees));
  for (int k = 0; k < params_.trees; ++k) {
    overlay::SessionParams sp;
    // Each member relays each 1/K-rate description with a 1/K uplink share,
    // so its per-tree out-degree stays floor(bandwidth); members are
    // injected with their full bandwidth value into every session.
    std::unique_ptr<overlay::Protocol> protocol =
        params_.make_protocol ? params_.make_protocol()
                              : std::make_unique<proto::MinDepthProtocol>();
    sessions_.push_back(std::make_unique<Session>(
        sim_, topology, std::move(protocol), sp,
        seed + 1000ull * static_cast<std::uint64_t>(k + 1)));
    Session* session = sessions_.back().get();
    const int tree = k;
    session->hooks().AddOnDeparture([this, session, tree](NodeId failed) {
      const double now = sim_.now();
      for (const NodeId orphan : session->tree().ChildrenOf(failed)) {
        double begin = now;
        double end = now + params_.detect_s + params_.rejoin_s;
        if (params_.cer_recovery) {
          // Shorten the outage to the stall CER cannot repair; the residual
          // stall bites around the playback deadline of the hole.
          std::vector<NodeId> group = core::SelectRecoveryGroup(
              *session, orphan, params_.recovery_group,
              core::GroupSelection::kMlc);
          core::OutageSpec spec;
          spec.detect_s = params_.detect_s;
          spec.rejoin_s = params_.rejoin_s;
          spec.buffer_s = params_.buffer_s;
          spec.packet_rate = params_.packet_rate;
          spec.mode = core::RecoveryMode::kCooperative;
          NodeId prev = orphan;
          for (NodeId g : group) {
            core::RecoverySource src;
            src.usable = session->tree().Alive(g) &&
                         session->tree().InTree(g) &&
                         !session->tree().IsInSubtreeOf(g, failed) &&
                         session->tree().IsRooted(g);
            src.rate_fraction = src.usable ? ResidualFraction(tree, g) : 0.0;
            src.hop_latency_s = session->DelayMs(prev, g) / 1000.0;
            spec.chain.push_back(src);
            prev = g;
          }
          const core::OutageResult outage = core::SimulateOutage(spec);
          begin = now + params_.buffer_s;
          end = begin + outage.starving_s;
        }
        if (end <= begin) continue;
        RecordOutage(tree, orphan, begin, end);
        session->tree().ForEachDescendant(orphan, [&](NodeId d) {
          RecordOutage(tree, d, begin, end);
        });
      }
    });
  }
}

double MultiTreeStream::ResidualFraction(int tree, NodeId id) {
  auto& per_tree = residual_fraction_[static_cast<std::size_t>(tree)];
  if (per_tree.size() <= static_cast<std::size_t>(id))
    per_tree.resize(static_cast<std::size_t>(id) + 1, -1.0);
  double& f = per_tree[static_cast<std::size_t>(id)];
  if (f < 0.0)
    f = rng_.Uniform(params_.residual_lo_pkts, params_.residual_hi_pkts) /
        params_.packet_rate;
  return f;
}

void MultiTreeStream::RecordOutage(int tree, NodeId session_node, double begin,
                                   double end) {
  const auto& map = node_to_member_[static_cast<std::size_t>(tree)];
  if (map.size() <= static_cast<std::size_t>(session_node)) return;
  const int member = map[static_cast<std::size_t>(session_node)];
  if (member < 0) return;
  members_[static_cast<std::size_t>(member)]
      .outages[static_cast<std::size_t>(tree)]
      .push_back({begin, end});
  ++outages_;
}

void MultiTreeStream::StartArrivals(double rate_per_s) {
  util::Check(rate_per_s > 0.0, "arrival rate must be positive");
  arrival_rate_ = rate_per_s;
  arrivals_on_ = true;
  sim_.ScheduleAfter(rng_.ExponentialMean(1.0 / arrival_rate_),
                     [this] { Arrive(); });
}

void MultiTreeStream::StopArrivals() { arrivals_on_ = false; }

void MultiTreeStream::Arrive() {
  if (!arrivals_on_) return;
  sim_.ScheduleAfter(rng_.ExponentialMean(1.0 / arrival_rate_),
                     [this] { Arrive(); });
  // One draw, mirrored into every description tree.
  const double bandwidth = bandwidth_dist_.Sample(rng_);
  const double lifetime = lifetime_dist_.Sample(rng_);
  MemberRecord rec;
  rec.join = sim_.now();
  rec.depart = sim_.now() + lifetime;
  rec.outages.resize(static_cast<std::size_t>(params_.trees));
  const int member = static_cast<int>(members_.size());
  for (int k = 0; k < params_.trees; ++k) {
    const NodeId id = sessions_[static_cast<std::size_t>(k)]->InjectMember(
        bandwidth, lifetime);
    auto& map = node_to_member_[static_cast<std::size_t>(k)];
    if (map.size() <= static_cast<std::size_t>(id))
      map.resize(static_cast<std::size_t>(id) + 1, -1);
    map[static_cast<std::size_t>(id)] = member;
  }
  members_.push_back(std::move(rec));
}

namespace {

// Merges possibly-overlapping intervals clipped to [lo, hi].
std::vector<MultiTreeStream::Interval> MergeClip(
    std::vector<MultiTreeStream::Interval> v, double lo, double hi);

}  // namespace

void MultiTreeStream::Finalize(double begin_s, double end_s) {
  util::Check(begin_s < end_s, "empty measurement window");
  for (const MemberRecord& rec : members_) {
    const double lo = std::max(rec.join + params_.buffer_s, begin_s);
    const double hi = std::min(rec.depart, end_s);
    const double view = hi - lo;
    if (view <= 0.0) continue;

    // Per tree: merged, clipped outage intervals. Then a sweep counting how
    // many descriptions are simultaneously out.
    struct Edge {
      double t = 0.0;
      int delta = 0;
    };
    std::vector<Edge> edges;
    for (int k = 0; k < params_.trees; ++k) {
      for (const Interval& iv :
           MergeClip(rec.outages[static_cast<std::size_t>(k)], lo, hi)) {
        edges.push_back({iv.begin, +1});
        edges.push_back({iv.end, -1});
      }
    }
    std::sort(edges.begin(), edges.end(),
              [](const Edge& a, const Edge& b) { return a.t < b.t; });
    double degraded = 0.0;
    double stalled = 0.0;
    int coverage = 0;
    double prev = lo;
    for (const Edge& e : edges) {
      if (coverage >= 1) degraded += e.t - prev;
      if (coverage >= params_.trees) stalled += e.t - prev;
      prev = e.t;
      coverage += e.delta;
    }
    stall_.Add(std::min(1.0, stalled / view));
    degraded_.Add(std::min(1.0, degraded / view));
  }
}

namespace {

std::vector<MultiTreeStream::Interval> MergeClip(
    std::vector<MultiTreeStream::Interval> v, double lo, double hi) {
  std::vector<MultiTreeStream::Interval> out;
  std::sort(v.begin(), v.end(),
            [](const MultiTreeStream::Interval& a,
               const MultiTreeStream::Interval& b) { return a.begin < b.begin; });
  for (MultiTreeStream::Interval iv : v) {
    iv.begin = std::max(iv.begin, lo);
    iv.end = std::min(iv.end, hi);
    if (iv.end <= iv.begin) continue;
    if (!out.empty() && iv.begin <= out.back().end)
      out.back().end = std::max(out.back().end, iv.end);
    else
      out.push_back(iv);
  }
  return out;
}

}  // namespace

double MultiTreeStream::average_population() const {
  double sum = 0.0;
  for (const auto& s : sessions_) sum += s->alive_count();
  return sessions_.empty() ? 0.0 : sum / static_cast<double>(sessions_.size());
}

}  // namespace omcast::stream
