#include "proto/selection.h"

namespace omcast::proto {

using overlay::kNoNode;
using overlay::kRootId;
using overlay::NodeId;
using overlay::Session;
using overlay::Tree;

NodeId PickMinDepthParent(Session& session,
                          const std::vector<NodeId>& candidates,
                          NodeId joining) {
  NodeId best = kNoNode;
  int best_layer = 0;
  double best_delay = 0.0;
  const Tree& tree = session.tree();
  for (NodeId c : candidates) {
    if (tree.SpareCapacity(c) <= 0) continue;
    const int layer = tree.Layer(c);
    const double delay = session.DelayMs(c, joining);
    if (best == kNoNode || layer < best_layer ||
        (layer == best_layer && delay < best_delay)) {
      best = c;
      best_layer = layer;
      best_delay = delay;
    }
  }
  return best;
}

NodeId PickOldestParent(Session& session, const std::vector<NodeId>& candidates,
                        NodeId joining) {
  NodeId best = kNoNode;
  double best_join = 0.0;
  double best_delay = 0.0;
  const Tree& tree = session.tree();
  for (NodeId c : candidates) {
    if (tree.SpareCapacity(c) <= 0) continue;
    const overlay::Member& m = tree.Get(c);
    const double delay = session.DelayMs(c, joining);
    // Oldest member == smallest join time.
    if (best == kNoNode || m.join_time < best_join ||
        (m.join_time == best_join && delay < best_delay)) {
      best = c;
      best_join = m.join_time;
      best_delay = delay;
    }
  }
  return best;
}

std::vector<std::vector<NodeId>> LayersByBfs(const Tree& tree) {
  std::vector<std::vector<NodeId>> layers;
  layers.push_back({kRootId});
  std::size_t level = 0;
  while (level < layers.size()) {
    std::vector<NodeId> next;
    for (NodeId id : layers[level])
      for (NodeId c : tree.ChildrenOf(id)) next.push_back(c);
    if (!next.empty()) layers.push_back(std::move(next));
    ++level;
  }
  return layers;
}

}  // namespace omcast::proto
