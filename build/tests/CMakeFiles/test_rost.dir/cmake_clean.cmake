file(REMOVE_RECURSE
  "CMakeFiles/test_rost.dir/test_rost.cc.o"
  "CMakeFiles/test_rost.dir/test_rost.cc.o.d"
  "test_rost"
  "test_rost.pdb"
  "test_rost[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
