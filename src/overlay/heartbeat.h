// Heartbeat-based failure detection.
//
// The structural experiments use an oracle: an orphan learns of its
// parent's death exactly rejoin_delay_s after it happens. This service
// replaces the oracle with the mechanism a deployment would run: every
// member sends a heartbeat to each of its current children every period;
// a child that goes miss_threshold + 1 periods without hearing from its
// current parent declares the parent dead and re-enters the join path.
//
// Heartbeats travel through a sim::FaultPlane when one is installed, so
// message loss produces the two real failure modes the oracle hides:
//
//   * detection latency is a random variable (lost heartbeats stretch it
//     beyond the no-loss bound of (miss_threshold + 1) * period_s);
//   * false suspicion: enough consecutive losses convince a child its
//     *live* parent died; it detaches and rejoins (counted, and charged as
//     a reconnection, i.e. protocol overhead -- the stream did not stop).
//
// Use with SessionParams::external_failure_detection = true, which makes
// the session defer orphan rejoins to this detector (Session::RejoinOrphan).
#pragma once

#include <vector>

#include "overlay/session.h"
#include "rand/rng.h"
#include "sim/fault_plane.h"
#include "util/stats.h"

namespace omcast::overlay {

struct HeartbeatParams {
  double period_s = 1.0;  // heartbeat send period, per parent
  // A child suspects its parent after this many *consecutive* heartbeats
  // fail to arrive (deadline: (miss_threshold + 1) * period_s of silence).
  int miss_threshold = 3;
};

class HeartbeatService {
 public:
  // Installs hooks on `session`; construct before driving the session.
  // `fault_plane` may be nullptr (reliable delivery); it must outlive the
  // run when provided.
  HeartbeatService(Session& session, HeartbeatParams params,
                   std::uint64_t seed, sim::FaultPlane* fault_plane = nullptr);
  HeartbeatService(const HeartbeatService&) = delete;
  HeartbeatService& operator=(const HeartbeatService&) = delete;

  // Silence length that triggers suspicion.
  double SuspicionTimeout() const {
    return params_.period_s * (params_.miss_threshold + 1);
  }

  // --- introspection (tests / chaos metrics) -------------------------------
  long heartbeats_sent() const { return sent_; }
  long detections() const { return detections_; }
  long false_suspicions() const { return false_suspicions_; }
  // Seconds from a parent's actual death to the child declaring it.
  const util::RunningStat& detection_latency() const { return latency_; }

 private:
  // Grows the per-node arrays to cover `id`.
  void EnsureState(NodeId id);
  void StartSender(NodeId id);
  void SendBeats(NodeId id);
  void OnHeartbeat(NodeId child, NodeId from);
  void ArmMonitor(NodeId child);
  void Suspect(NodeId child);
  void StopAll(NodeId id);

  Session& session_;
  HeartbeatParams params_;
  rnd::Rng rng_;
  sim::FaultPlane* fault_plane_;  // nullptr: reliable delivery
  // Per-node bookkeeping, struct-of-arrays indexed by NodeId (the suspicion
  // monitor is re-armed on every delivered heartbeat -- the hottest timer in
  // the simulation -- so the three fields live in separate flat vectors
  // rather than one padded record).
  std::vector<sim::EventId> sender_;   // periodic send timer
  std::vector<sim::EventId> monitor_;  // child-side suspicion deadline
  // When the member's parent actually departed (for the latency metric);
  // negative while the parent is alive.
  std::vector<sim::Time> parent_died_at_;
  long sent_ = 0;
  long detections_ = 0;
  long false_suspicions_ = 0;
  util::RunningStat latency_;
};

}  // namespace omcast::overlay
