# Empty compiler generated dependencies file for omcast_proto.
# This may be replaced when dependencies are built.
