#include "proto/relaxed_ordered.h"

#include <algorithm>

#include "util/check.h"

namespace omcast::proto {

using overlay::kNoNode;
using overlay::Member;
using overlay::NodeId;
using overlay::Session;

namespace {

// Sentinel distinct from kNoNode: PlaceOne() could not place the member.
constexpr NodeId kNotPlaced = -2;

}  // namespace

bool RelaxedOrderedProtocol::TryAttach(Session& session, NodeId id) {
  // The central administrator performs the join and any eviction chain it
  // triggers as one atomic operation: each evicted member is re-placed
  // immediately (it may evict a strictly lower-ranked member in turn, so
  // the chain provably terminates, and the global spare-capacity guard in
  // PlaceOne ensures the final member of the chain always finds a slot).
  // Deferring evictee rejoins instead would let detached fragments pile up
  // and hold their subtree capacity hostage under churn.
  NodeId pending = id;
  bool first = true;
  while (pending != kNoNode) {
    const NodeId evicted = PlaceOne(session, pending);
    if (evicted == kNotPlaced) {
      util::Check(first, "evictee must always be re-placeable");
      return false;
    }
    if (!first) ++session.tree().Get(pending).reconnections;
    pending = evicted;
    first = false;
  }
  return true;
}

NodeId RelaxedOrderedProtocol::PlaceOne(Session& session, NodeId id) {
  overlay::Tree& tree = session.tree();
  const Member& joining = tree.Get(id);

  // One pass over the rooted tree collecting, per layer, the weakest few
  // outranked incumbents, a reservoir of spare-capacity slots, and the
  // global spare total. Layers are identified via the maintained `layer`
  // field, so a simple DFS suffices.
  long spare_total = 0;
  int max_layer = 0;
  for (auto& s : layer_summaries_) s = LayerSummary{};
  scan_stack_.clear();
  scan_stack_.push_back(overlay::kRootId);
  while (!scan_stack_.empty()) {
    const NodeId v = scan_stack_.back();
    scan_stack_.pop_back();
    const Member& m = tree.Get(v);
    for (NodeId c : tree.ChildrenOf(v)) scan_stack_.push_back(c);
    const int layer = tree.Layer(v);
    if (static_cast<std::size_t>(layer) >= layer_summaries_.size())
      layer_summaries_.resize(static_cast<std::size_t>(layer) + 1);
    LayerSummary& summary = layer_summaries_[static_cast<std::size_t>(layer)];
    max_layer = std::max(max_layer, layer);
    if (tree.SpareCapacity(v) > 0) {
      spare_total += tree.SpareCapacity(v);
      // Reservoir sample of spare slots (the delay tie-break is applied to
      // this sample rather than every slot in the layer).
      ++summary.spare_seen;
      if (summary.spare_count < kCandidatesPerLayer) {
        summary.spare[summary.spare_count++] = v;
      } else {
        const auto j = static_cast<long>(
            session.rng().UniformIndex(static_cast<std::size_t>(summary.spare_seen)));
        if (j < kCandidatesPerLayer) summary.spare[j] = v;
      }
    }
    if (!m.IsRoot() && Outranks(joining, m)) {
      // Bounded insertion sort keeping the weakest candidates first.
      const int n = summary.weakest_count;
      const bool full = n == kCandidatesPerLayer;
      if (!(full && !RanksHigher(tree.Get(summary.weakest[n - 1]), m))) {
        int j = full ? n - 1 : n;
        while (j > 0 && RanksHigher(tree.Get(summary.weakest[j - 1]), m)) {
          summary.weakest[j] = summary.weakest[j - 1];
          --j;
        }
        summary.weakest[j] = v;
        if (!full) summary.weakest_count = n + 1;
      }
    }
  }

  // Global placement headroom: an eviction chain consumes exactly one spare
  // slot at its end, so evictions are only safe when one exists.
  if (spare_total < 1) return kNotPlaced;

  // Net rooted-spare change if `joining` replaces `v`: the evictee leaves
  // with its own spare and the spare of every kept child's subtree, while
  // the replacement brings its leftover spare. Evictions that would drop
  // the rooted headroom below 1 are deferred -- otherwise the end of the
  // eviction chain could find no slot anywhere.
  const auto eviction_keeps_headroom = [&](NodeId v) {
    const int adoptable =
        std::min<int>(tree.SpareCapacity(id), tree.ChildCount(v));
    long lost = tree.SpareCapacity(v);
    std::vector<NodeId> children = tree.Children(v);
    std::sort(children.begin(), children.end(), [&](NodeId a, NodeId b) {
      return RanksHigher(tree.Get(a), tree.Get(b));
    });
    for (std::size_t i = static_cast<std::size_t>(adoptable);
         i < children.size(); ++i) {
      lost += tree.SpareCapacity(children[i]);
      tree.ForEachDescendant(children[i], [&](NodeId d) {
        lost += tree.SpareCapacity(d);
      });
    }
    const long gained = tree.SpareCapacity(id) - adoptable;
    return spare_total - lost + gained >= 1;
  };

  // Consider target layers top-down; reaching layer R is possible either by
  // replacing an outranked incumbent at R or by attaching under a
  // spare-capacity member at R-1. At equal resulting depth a spare slot is
  // preferred -- the ordering still emerges (an outranked incumbent at R
  // would also have been outranked at every shallower layer scanned
  // before), and gratuitous evictions cost the overlay real disruptions.
  for (int r = 1; r <= max_layer + 1; ++r) {
    const LayerSummary& above = layer_summaries_[static_cast<std::size_t>(r - 1)];
    NodeId best = kNoNode;
    double best_delay = 0.0;
    for (int i = 0; i < above.spare_count; ++i) {
      const NodeId u = above.spare[i];
      if (tree.SpareCapacity(u) <= 0) continue;
      const double d = session.DelayMs(u, id);
      if (best == kNoNode || d < best_delay) {
        best = u;
        best_delay = d;
      }
    }
    if (best != kNoNode) {
      tree.Attach(best, id);
      return kNoNode;
    }
    if (r <= max_layer) {
      // Candidates weakest-first; take the weakest whose eviction keeps
      // placement headroom.
      const LayerSummary& summary = layer_summaries_[static_cast<std::size_t>(r)];
      for (int i = 0; i < summary.weakest_count; ++i) {
        if (!eviction_keeps_headroom(summary.weakest[i])) continue;
        Replace(session, summary.weakest[i], id);
        return summary.weakest[i];
      }
    }
  }
  return kNotPlaced;
}

void RelaxedOrderedProtocol::Replace(Session& session, NodeId incumbent,
                                     NodeId joining) {
  overlay::Tree& tree = session.tree();
  const NodeId parent = tree.Parent(incumbent);
  util::Check(parent != kNoNode, "cannot replace a fragment root");

  // The replacement adopts the incumbent's strongest children up to its own
  // *spare* capacity (a rejoining fragment root brings children of its
  // own); the administrator re-parents the overflow children elsewhere
  // ("possibly together with some of its children [they] are forced to
  // rejoin the tree"). Child moves are arranged make-before-break by the
  // central administrator, so they cost a reconnection but no disruption;
  // the evicted member itself loses its slot and is off the stream until
  // its own rejoin completes -- one streaming disruption.
  std::vector<NodeId> children = tree.Children(incumbent);
  std::sort(children.begin(), children.end(), [&](NodeId a, NodeId b) {
    return RanksHigher(tree.Get(a), tree.Get(b));
  });
  const int adoptable = std::min<int>(tree.SpareCapacity(joining),
                                      static_cast<int>(children.size()));
  for (NodeId c : children) tree.Detach(c);
  tree.Detach(incumbent);
  session.ChargeDisruption(incumbent);  // subtree already split off
  tree.Attach(parent, joining);
  for (std::size_t i = 0; i < children.size(); ++i) {
    const NodeId c = children[i];
    if (static_cast<int>(i) < adoptable) {
      tree.Attach(joining, c);
      ++tree.Get(c).reconnections;
    } else {
      // Overflow: re-enter the placement machinery with its subtree.
      session.ForceRejoin(c);
    }
  }
}

bool RelaxedBandwidthOrderedProtocol::Outranks(const Member& joining,
                                               const Member& incumbent) const {
  return joining.bandwidth > incumbent.bandwidth;
}

bool RelaxedBandwidthOrderedProtocol::RanksHigher(const Member& a,
                                                  const Member& b) const {
  return a.bandwidth > b.bandwidth;
}

bool RelaxedTimeOrderedProtocol::Outranks(const Member& joining,
                                          const Member& incumbent) const {
  // Older == smaller join time (ages compared at a common instant).
  return joining.join_time < incumbent.join_time;
}

bool RelaxedTimeOrderedProtocol::RanksHigher(const Member& a,
                                             const Member& b) const {
  return a.join_time < b.join_time;
}

}  // namespace omcast::proto
