// Fixture: ordering by raw pointer value must be flagged (ASLR breaks
// run-to-run reproducibility of any pointer-keyed order).
#include <cstdint>
#include <functional>
#include <map>
#include <set>

struct Node {
  int id = 0;
};

std::set<Node*> g_by_address;                        // expect(pointer-sort)
std::map<Node*, int> g_rank;                         // expect(pointer-sort)
std::set<Node*, std::less<Node*>> g_explicit_less;   // expect(pointer-sort)

std::uintptr_t AsInt(Node* n) {
  return reinterpret_cast<std::uintptr_t>(n);  // expect(pointer-sort)
}

// Annotated: interning table whose order never escapes.
// omcast-lint: allow(pointer-sort)
std::map<Node*, int> g_intern;

// Keying by a stable id is the fix:
std::map<int, Node*> g_by_id;
