// Reconnect/re-entry state machine and frame-dependency playback tests:
// the bounded-retry re-entry path (successor creation, exponential backoff
// bounds, abandonment), rejoin races under a lossy control plane leaving no
// wedged leases or unresolved re-entries, mid-GOP entry desync/resync, and
// escape from the degraded playback regime after an upstream outage heals.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/rost/rost.h"
#include "exp/chaos.h"
#include "net/topology.h"
#include "obs/trace.h"
#include "overlay/session.h"
#include "proto/min_depth.h"
#include "sim/simulator.h"
#include "stream/packet_sim.h"

namespace omcast {
namespace {

using overlay::kNoNode;
using overlay::kRootId;
using overlay::NodeId;
using overlay::Session;
using overlay::SessionParams;

long CountKind(const obs::Tracer& tracer, obs::EventKind kind) {
  long n = 0;
  for (const obs::TraceEvent& e : tracer.Events())
    if (e.kind == kind) ++n;
  return n;
}

class ReentryTest : public ::testing::Test {
 protected:
  ReentryTest() {
    rnd::Rng topo_rng(1);
    topology_ = std::make_unique<net::Topology>(
        net::Topology::Generate(net::TinyTopologyParams(), topo_rng));
  }

  std::unique_ptr<Session> Make(SessionParams sp = {},
                                std::uint64_t seed = 3) {
    auto s = std::make_unique<Session>(
        sim_, *topology_, std::make_unique<proto::MinDepthProtocol>(), sp,
        seed);
    s->SetTracer(&tracer_);
    return s;
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topology_;
  obs::Tracer tracer_;
};

TEST_F(ReentryTest, SuccessorInheritsBandwidthAndAttaches) {
  auto s = Make();
  const NodeId v = s->InjectMember(2.5, 1e9);
  sim_.RunUntil(1.0);
  ASSERT_TRUE(s->tree().IsRooted(v));
  s->DepartNow(v);
  s->ScheduleReentry(v, /*downtime_s=*/5.0, /*lifetime_s=*/1e9);
  EXPECT_EQ(s->reentries_scheduled(), 1);
  EXPECT_EQ(s->reentries_pending(), 1);
  sim_.RunUntil(10.0);

  // The successor is a new member carrying the predecessor's bandwidth
  // (same household, new session).
  NodeId successor = kNoNode;
  for (NodeId id : s->alive_members())
    if (s->ReentryPredecessor(id) == v) successor = id;
  ASSERT_NE(successor, kNoNode);
  EXPECT_NE(successor, v);
  EXPECT_DOUBLE_EQ(s->tree().Get(successor).bandwidth, 2.5);
  EXPECT_TRUE(s->tree().IsRooted(successor));
  EXPECT_EQ(s->reentries_attached(), 1);
  EXPECT_EQ(s->reentries_pending(), 0);
  EXPECT_EQ(CountKind(tracer_, obs::EventKind::kReconnectStart), 1);
  EXPECT_EQ(CountKind(tracer_, obs::EventKind::kReconnectAttached), 1);
  // Ordinary members are not re-entries.
  EXPECT_EQ(s->ReentryPredecessor(v), kNoNode);
}

TEST_F(ReentryTest, BoundedRetryBacksOffExponentiallyThenAbandons) {
  SessionParams sp;
  sp.join_retry_delay_s = 1.0;
  sp.reentry_max_attempts = 4;
  sp.reentry_backoff_cap = 4;
  auto s = Make(sp);
  // A zero-bandwidth member joins the capacity-1 root, departs, and another
  // zero-bandwidth member takes the only slot: the returning successor (also
  // bandwidth 0, inherited) can neither find a slot nor displace anyone, so
  // every bounded attempt fails.
  s->tree().SetCapacity(kRootId, 1);
  const NodeId v = s->InjectMember(0.0, 1e9);
  sim_.RunUntil(1.0);
  ASSERT_EQ(s->tree().Parent(v), kRootId);
  s->DepartNow(v);
  const NodeId blocker = s->InjectMember(0.0, 1e9);
  sim_.RunUntil(2.0);
  ASSERT_EQ(s->tree().Parent(blocker), kRootId);

  s->ScheduleReentry(v, /*downtime_s=*/3.0, /*lifetime_s=*/1e9);
  // Attempts run at t=5, 6, 8, 12: backoff 2^(k-1) capped at 4 times the
  // 1 s base delay. Just before the fourth (final) attempt the re-entry is
  // still pending...
  sim_.RunUntil(11.5);
  EXPECT_EQ(s->reentries_abandoned(), 0);
  EXPECT_EQ(s->reentries_pending(), 1);
  // ...and just after it the member gave up for good.
  sim_.RunUntil(12.5);
  EXPECT_EQ(s->reentries_abandoned(), 1);
  EXPECT_EQ(s->reentries_attached(), 0);
  EXPECT_EQ(s->reentries_pending(), 0);
  // No zombie successor lingers after abandonment.
  for (NodeId id : s->alive_members()) EXPECT_EQ(s->ReentryPredecessor(id), kNoNode);
  const std::vector<obs::TraceEvent> events = tracer_.Events();
  const auto it = std::find_if(events.begin(), events.end(), [](const auto& e) {
    return e.kind == obs::EventKind::kReconnectAbandoned;
  });
  ASSERT_NE(it, events.end());
  EXPECT_EQ(it->detail, 4);  // attempts used
  EXPECT_EQ(CountKind(tracer_, obs::EventKind::kReconnectAttached), 0);
}

TEST_F(ReentryTest, ReentryWithNoFreeHostsAbandonsImmediately) {
  auto s = Make();
  const NodeId v = s->InjectMember(1.0, 1e9);
  sim_.RunUntil(1.0);
  s->DepartNow(v);
  // Exhaust the stub hosts before the downtime elapses: the re-entry cannot
  // even create its successor record and abandons up front.
  while (s->alive_count() + 1 < topology_->num_stub_nodes())
    s->InjectMember(1.0, 1e9);
  s->ScheduleReentry(v, 2.0, 1e9);
  sim_.RunUntil(10.0);
  EXPECT_EQ(s->reentries_abandoned(), 1);
  EXPECT_EQ(s->reentries_pending(), 0);
  EXPECT_EQ(CountKind(tracer_, obs::EventKind::kReconnectAbandoned), 1);
}

// ---------------------------------------------------------------------------
// Frame-dependency playback.
// ---------------------------------------------------------------------------

class PlaybackTest : public ::testing::Test {
 protected:
  PlaybackTest() {
    rnd::Rng topo_rng(1);
    topology_ = std::make_unique<net::Topology>(
        net::Topology::Generate(net::TinyTopologyParams(), topo_rng));
  }

  // The packet stream requires the rejoin delay to cover its detection
  // time, so the fixture defaults to the paper's 15 s.
  void MakeSession(SessionParams sp = {}) {
    if (sp.rejoin_delay_s <= 0.0) sp.rejoin_delay_s = 15.0;
    session_ = std::make_unique<Session>(
        sim_, *topology_, std::make_unique<proto::MinDepthProtocol>(), sp, 5);
    session_->SetTracer(&tracer_);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topology_;
  std::unique_ptr<Session> session_;
  obs::Tracer tracer_;
};

TEST_F(PlaybackTest, MidGopEntryDesyncsThenResyncsOnNextReference) {
  MakeSession();
  stream::PacketSimParams p;
  p.packet_rate = 5.0;
  p.frame_playback = true;
  p.gop_size = 10;
  p.warmup_absorb_s = 0.0;  // judge startup stalls instead of absorbing them
  stream::PacketLevelStream stream(*session_, p, 11);
  session_->InjectMember(3.0, 1e9);
  sim_.RunUntil(1.0);
  stream.Start(60.0);
  // Join mid-GOP: GOP 1 spans seqs 10..19 (t = 2..4 s at 5 pkt/s); a member
  // arriving at t=3.1 has first_seq 16 and never plays GOP 1's reference,
  // so its on-time dependent frames are decode stalls until the reference
  // of GOP 2 (seq 20) resynchronizes it.
  NodeId late = kNoNode;
  sim_.ScheduleAt(3.1, [&] { late = session_->InjectMember(1.0, 1e9); });
  sim_.RunUntil(5.0);
  ASSERT_NE(late, kNoNode);
  ASSERT_TRUE(session_->tree().IsRooted(late));
  sim_.RunUntil(120.0);
  stream.FinalizeAliveMembers();
  EXPECT_GE(stream.decode_stalls(), 1);
  EXPECT_GE(stream.dependency_resyncs(), 1);
  EXPECT_GE(CountKind(tracer_, obs::EventKind::kDependencyResync), 1);
  EXPECT_GE(CountKind(tracer_, obs::EventKind::kDecodeStall), 1);
}

TEST_F(PlaybackTest, WarmupWindowAbsorbsStartupStalls) {
  MakeSession();
  stream::PacketSimParams p;
  p.packet_rate = 5.0;
  p.frame_playback = true;
  p.gop_size = 10;
  p.warmup_absorb_s = 30.0;  // covers every startup stall in this run
  stream::PacketLevelStream stream(*session_, p, 11);
  session_->InjectMember(3.0, 1e9);
  sim_.RunUntil(1.0);
  stream.Start(60.0);
  NodeId late = kNoNode;
  sim_.ScheduleAt(3.1, [&] { late = session_->InjectMember(1.0, 1e9); });
  sim_.RunUntil(5.0);
  ASSERT_NE(late, kNoNode);
  ASSERT_TRUE(session_->tree().IsRooted(late));
  sim_.RunUntil(120.0);
  stream.FinalizeAliveMembers();
  // The same mid-GOP entry as above, but the grace window swallows the
  // stalls: none are judged, so none can push the member out of nominal.
  EXPECT_EQ(stream.decode_stalls(), 0);
  EXPECT_EQ(stream.regime_transitions(), 0);
}

TEST_F(PlaybackTest, ParentDeathDegradesThenRecoversCadence) {
  SessionParams sp;
  sp.rejoin_delay_s = 15.0;
  MakeSession(sp);
  stream::PacketSimParams p;
  p.packet_rate = 5.0;
  p.buffer_s = 0.5;  // a 15 s hole cannot hide inside the playout buffer
  p.detect_s = 5.0;
  p.frame_playback = true;
  stream::PacketLevelStream stream(*session_, p, 11);
  const NodeId hub = session_->InjectMember(5.0, 1e9);
  const NodeId victim = session_->InjectMember(0.5, 1e9);
  sim_.RunUntil(1.0);
  overlay::Tree& tree = session_->tree();
  if (tree.Parent(victim) != hub) {
    tree.Detach(victim);
    tree.Attach(hub, victim);
  }
  stream.Start(120.0);
  sim_.RunUntil(20.0);
  ASSERT_EQ(stream.PlaybackRegimeOf(victim), 0);
  session_->DepartNow(hub);
  // Mid-outage (hole longer than the buffer, judged before any repair
  // stripes could refill upcoming deadlines) the victim has left nominal
  // cadence...
  sim_.RunUntil(26.0);
  EXPECT_GE(stream.PlaybackRegimeOf(victim), 1);
  // ...and within one rejoin plus a few judgment windows it escapes back.
  sim_.RunUntil(60.0);
  EXPECT_EQ(stream.PlaybackRegimeOf(victim), 0);
  EXPECT_GE(stream.recovery_latency_stat().count(), 1);
  EXPECT_LT(stream.recovery_latency_stat().mean(), 40.0);
  sim_.RunUntil(200.0);
  stream.FinalizeAliveMembers();
  EXPECT_EQ(stream.permanently_stalled(), 0);
  EXPECT_GT(stream.degraded_fraction_stat().mean(), 0.0);
  EXPECT_GE(CountKind(tracer_, obs::EventKind::kPlaybackRegime), 2);
}

TEST_F(PlaybackTest, FramePlaybackDoesNotPerturbDeliveryFates) {
  // Playback judgment draws no randomness and sends no messages: the same
  // seeded run with and without it must produce identical delivery and
  // starving accounting.
  const auto run = [&](bool frame_playback, long* deliveries, double* ratio) {
    sim::Simulator sim;
    rnd::Rng topo_rng(1);
    const net::Topology topo =
        net::Topology::Generate(net::TinyTopologyParams(), topo_rng);
    SessionParams sp;
    sp.rejoin_delay_s = 15.0;
    Session session(sim, topo, std::make_unique<proto::MinDepthProtocol>(),
                    sp, 7);
    stream::PacketSimParams p;
    p.packet_rate = 5.0;
    p.frame_playback = frame_playback;
    stream::PacketLevelStream stream(session, p, 13);
    session.Prepopulate(40);
    session.StartArrivals(40.0 / 1809.0);
    stream.Start(90.0);
    sim.RunUntil(200.0);
    session.StopArrivals();
    stream.FinalizeAliveMembers();
    *deliveries = stream.deliveries();
    *ratio = stream.ratio_stat().mean();
  };
  long d_off = 0, d_on = 0;
  double r_off = 0.0, r_on = 0.0;
  run(false, &d_off, &r_off);
  run(true, &d_on, &r_on);
  EXPECT_EQ(d_off, d_on);
  EXPECT_DOUBLE_EQ(r_off, r_on);
}

// ---------------------------------------------------------------------------
// Rejoin races under load: the acceptance storm.
// ---------------------------------------------------------------------------

// A reconnect storm (20% of the membership departing and re-entering under
// 5% control-plane loss) must finish with zero wedged leases, every
// re-entry resolved, and no permanently stalled playback session.
TEST(ReconnectStorm, ResolvesEveryReentryWithoutWedgingLeases) {
  rnd::Rng topo_rng(1);
  const net::Topology topology =
      net::Topology::Generate(net::TinyTopologyParams(), topo_rng);
  exp::ChaosConfig c;
  c.population = 60;
  c.warmup_s = 300.0;
  c.stream_s = 60.0;
  c.drain_s = 60.0;
  c.seed = 7;
  c.fault.loss_rate = 0.05;
  c.fault.dup_prob = 0.01;
  c.fault.jitter_s = 0.02;
  c.session.root_bandwidth = 5.0;
  c.rost.switching_interval_s = 60.0;
  c.packet.frame_playback = true;
  c.reconnect_storm_at_s = 10.0;
  c.reconnect_storm_fraction = 0.2;
  c.reconnect_downtime_mean_s = 5.0;
  const exp::ChaosResult r = exp::RunChaosScenario(topology, c);
  EXPECT_TRUE(r.zero_wedged_locks);
  EXPECT_EQ(r.counters.wedged_leases, 0);
  // >= 10% of the nominal population actually went through the storm.
  EXPECT_GE(r.reconnect_storm_killed, 6);
  EXPECT_EQ(r.reentries_scheduled, r.reconnect_storm_killed);
  EXPECT_EQ(r.reentries_attached + r.reentries_abandoned,
            r.reentries_scheduled);
  EXPECT_EQ(r.reentries_pending, 0) << "a re-entry neither attached nor "
                                       "abandoned: the retry chain wedged";
  EXPECT_EQ(r.permanently_stalled, 0);
  // The storm surfaces in the exported registry too.
  ASSERT_TRUE(r.registry.contains("reconnect.scheduled"));
  EXPECT_EQ(r.registry.at("reconnect.scheduled"),
            static_cast<double>(r.reentries_scheduled));
  EXPECT_EQ(r.registry.at("reconnect.pending"), 0.0);
}

}  // namespace
}  // namespace omcast
