#!/bin/bash
# Regenerates every paper figure at the full Section 5 scale through the
# parallel experiment runner into results/paper/ (.txt tables + .json
# per-cell results). Expect hours on one core; the sweep figures (4, 7, 8,
# 10) dominate because the centralized relaxed-BO/TO baselines do a global
# scan per join. The runner spreads grid cells across THREADS workers and
# the sweep is resumable: rerun with RESUME=1 after an interruption and
# already-computed cells are reused from the .json files (seed-checked, so
# stale caches re-run instead of poisoning the figures).
#
# Environment knobs:
#   THREADS=N   worker threads per bench (default: all cores)
#   RESUME=1    reuse per-cell results from a previous partial sweep
set -u
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
OUT=results/paper
THREADS=${THREADS:-0}
RESUME=${RESUME:-0}
mkdir -p "$OUT"

OMCAST_GIT_SHA=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
export OMCAST_GIT_SHA

common=(--scale=paper --threads="$THREADS" --out="$OUT")
if [ "$RESUME" = "1" ]; then common+=(--resume=true); fi

status=0
run() {
  local name=$1 reps=$2
  echo "=== START $name (reps=$reps) $(date +%H:%M:%S) ==="
  if ! ./"$BUILD"/bench/"$name" "${common[@]}" --reps="$reps" \
      > "$OUT/$name.txt"; then
    echo "FAILED: $name" >&2
    status=1
  fi
  echo "=== DONE  $name $(date +%H:%M:%S) ==="
}

# Multi-rep everywhere: the runner parallelizes across (size x algorithm x
# rep) cells, so the sweep figures now afford reps=3 (mean +/- CI in the
# JSON aggregates) where the serial harness capped them at reps=1.
run fig04_disruptions 3
run fig07_service_delay 3
run fig08_stretch 3
run fig10_protocol_cost 3
run fig05_disruption_cdf 3
run fig11_switch_interval 3
run fig12_group_size 3
run fig13_buffer_size 3
run fig14_rost_cer 5
run fig06_member_disruptions 1   # single tagged-member trace by design
run fig09_member_delay 1         # single tagged-member trace by design
run ablation_btp 3
run ablation_mlc 3
run ablation_gossip 3
run ext_multi_tree 3

python3 scripts/make_bench_summary.py "$OUT" -o "$OUT/bench_summary.json" \
  || status=1

if [ "$status" -eq 0 ]; then echo ALL-PAPER-BENCHES-DONE; fi
exit "$status"
