# Empty compiler generated dependencies file for fig08_stretch.
# This may be replaced when dependencies are built.
