// Fig. 4: average number of streaming disruptions per node vs steady-state
// network size, for the five tree-construction algorithms.
//
// Paper shape: minimum-depth and longest-first worst; relaxed BO better;
// relaxed TO better still; ROST best (36-57% below relaxed BO).
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 4 -- avg streaming disruptions per node", env);

  const runner::GridSpec spec = bench::TreeSizeSweepSpec(
      env, "fig04_disruptions", "avg streaming disruptions per node",
      "disruptions");
  const runner::ResultsSink sink = bench::RunGridBench(env, spec);
  bench::PrintMetricTable(spec, sink, "disruptions", 3,
                          "avg disruptions per node (rows: steady-state size)");
  bench::MaybePrintProfile(env);
  return 0;
}
