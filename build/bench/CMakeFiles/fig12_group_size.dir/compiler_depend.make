# Empty compiler generated dependencies file for fig12_group_size.
# This may be replaced when dependencies are built.
