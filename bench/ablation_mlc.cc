// Ablation (beyond the paper): isolates the two CER ingredients on the same
// min-depth tree -- the recovery-group *selection* (MLC Algorithm 1 vs
// uniform random) and the repair *aggregation* (cooperative striping vs
// single source). The paper only reports the two corner combinations.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  flags.Define("group", "3", "recovery group size");
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Ablation -- CER ingredients (selection x aggregation)",
                     env);

  const int group = flags.GetInt("group");
  runner::GridSpec spec;
  spec.figure = "ablation_mlc";
  spec.title = "CER ingredient ablation (selection x aggregation)";
  spec.row_header = "selection";
  spec.rows = {"MLC", "random"};
  spec.cols = {"cooperative", "single"};
  spec.reps = env.reps;
  spec.headline_metric = "starving_ratio";
  spec.run = [&env, group](const runner::CellContext& cell) {
    stream::StreamParams sp;
    sp.recovery_group_size = group;
    sp.selection = cell.row == 0 ? core::GroupSelection::kMlc
                                 : core::GroupSelection::kRandom;
    sp.mode = cell.col == 0 ? core::RecoveryMode::kCooperative
                            : core::RecoveryMode::kSingleSource;
    exp::ScenarioConfig config = env.BaseConfig();
    config.population = env.focus_size;
    config.seed = cell.seed;
    return bench::StreamCellResult(exp::RunStreamScenario(
        env.Topo(), exp::Algorithm::kMinDepth, config, sp));
  };
  const runner::ResultsSink sink = bench::RunGridBench(env, spec);

  util::Table table(
      {"selection", "aggregation", "starving(%)", "avg repair rate"});
  for (std::size_t row = 0; row < spec.rows.size(); ++row) {
    for (std::size_t col = 0; col < spec.cols.size(); ++col) {
      table.AddRow(
          {spec.rows[row], spec.cols[col],
           util::FormatDouble(
               100.0 * sink.Stat(row, col, "starving_ratio").mean(), 3),
           util::FormatDouble(sink.Stat(row, col, "recovery_rate").mean(),
                              3)});
    }
  }
  table.Print(std::cout, "CER ablation, group size " + std::to_string(group) +
                             ", " + std::to_string(env.focus_size) +
                             " members, min-depth tree");
  return 0;
}
