// Fig. 14: the combined system. ROST+CER (BTP tree, MLC groups, cooperative
// striped recovery) against the general scheme (minimum-depth tree, random
// recovery nodes, single-source repair), for recovery group sizes 1-3, with
// 95% confidence intervals across repetitions. The paper reports an 8-9x
// reduction, with ROST+CER at group size 1 already beating the baseline at
// group size 2.
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 14 -- ROST+CER vs MinDepth+SingleSource", env);

  struct Scheme {
    const char* label;
    exp::Algorithm algorithm;
    core::GroupSelection selection;
    core::RecoveryMode mode;
  };
  const Scheme schemes[] = {
      {"min-depth + single-source", exp::Algorithm::kMinDepth,
       core::GroupSelection::kRandom, core::RecoveryMode::kSingleSource},
      {"ROST + CER", exp::Algorithm::kRost, core::GroupSelection::kMlc,
       core::RecoveryMode::kCooperative},
  };

  util::Table table({"scheme", "group=1", "group=2", "group=3"});
  for (const Scheme& scheme : schemes) {
    std::vector<std::string> cells = {scheme.label};
    for (int group = 1; group <= 3; ++group) {
      util::RunningStat stat;
      for (int rep = 0; rep < env.reps; ++rep) {
        stream::StreamParams sp;
        sp.recovery_group_size = group;
        sp.selection = scheme.selection;
        sp.mode = scheme.mode;
        exp::ScenarioConfig config = env.BaseConfig();
        config.population = env.focus_size;
        config.seed = env.seed + static_cast<std::uint64_t>(rep);
        stat.Add(100.0 *
                 RunStreamScenario(env.topology, scheme.algorithm, config, sp)
                     .avg_starving_ratio);
      }
      cells.push_back(util::FormatDouble(stat.mean(), 3) + " +-" +
                      util::FormatDouble(stat.ci95_half_width(), 3));
    }
    table.AddRow(std::move(cells));
  }
  table.Print(std::cout, "avg starving time ratio (%) with 95% CI (" +
                             std::to_string(env.focus_size) + " members)");
  return 0;
}
