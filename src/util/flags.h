// Minimal command-line flag parser for the bench/example binaries.
// Accepts `--name=value` and `--name value`; `--help` prints registered
// flags. No global state: each binary builds one `FlagSet`.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace omcast::util {

class FlagSet {
 public:
  // Registers a flag with a default value and help text. Returns *this for
  // chaining.
  FlagSet& Define(const std::string& name, const std::string& default_value,
                  const std::string& help);

  // Parses argv. Returns false (after printing usage) on unknown flags,
  // missing values, or --help.
  bool Parse(int argc, char** argv);

  // Typed accessors; abort on unregistered names (programming error).
  std::string GetString(const std::string& name) const;
  int GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  // Parses a comma-separated list of integers, e.g. "2000,5000,8000".
  std::vector<int> GetIntList(const std::string& name) const;

  void PrintUsage(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
};

}  // namespace omcast::util
