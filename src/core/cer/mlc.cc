#include "core/cer/mlc.h"

#include <algorithm>

#include "util/check.h"

namespace omcast::core {

std::vector<overlay::NodeId> FindMlcGroup(const PartialTree& view, int k,
                                          overlay::NodeId exclude,
                                          rnd::Rng& rng) {
  std::vector<overlay::NodeId> group;
  if (view.empty() || k <= 0) return group;
  const auto levels = view.Levels();

  // Step 1: first level Li with |Li| < K <= |Li+1|. If the view never gets
  // that wide, fall back to the level feeding the widest next level.
  std::size_t li = levels.size();  // sentinel: not found
  for (std::size_t i = 0; i + 1 < levels.size(); ++i) {
    if (static_cast<int>(levels[i].size()) < k &&
        static_cast<int>(levels[i + 1].size()) >= k) {
      li = i;
      break;
    }
  }
  if (li == levels.size()) {
    std::size_t widest_next = 0;
    for (std::size_t i = 0; i + 1 < levels.size(); ++i) {
      if (levels[i + 1].size() > levels[widest_next + 1].size()) widest_next = i;
    }
    if (levels.size() < 2) return group;  // only the root is known
    li = widest_next;
  }

  // Step 2: collect K subtree roots G0, one random child per parent in Li,
  // round-robin so no parent contributes a second child before every parent
  // contributed one.
  std::vector<std::vector<int>> remaining_children;
  for (int v : levels[li])
    remaining_children.push_back(view.nodes()[static_cast<std::size_t>(v)].children);
  std::vector<int> g0;
  bool progress = true;
  while (static_cast<int>(g0.size()) < k && progress) {
    progress = false;
    for (auto& children : remaining_children) {
      if (children.empty()) continue;
      const std::size_t pick = rng.UniformIndex(children.size());
      g0.push_back(children[pick]);
      children[pick] = children.back();
      children.pop_back();
      progress = true;
      if (static_cast<int>(g0.size()) == k) break;
    }
  }

  // Step 3: one random descendant per chosen subtree.
  for (int root : g0) {
    std::vector<int> candidates = view.Descendants(root);
    candidates.push_back(root);  // a leaf subtree stands in for itself
    // Filter the requester out.
    std::erase_if(candidates, [&](int idx) {
      return view.nodes()[static_cast<std::size_t>(idx)].id == exclude;
    });
    if (candidates.empty()) continue;
    const int pick = candidates[rng.UniformIndex(candidates.size())];
    group.push_back(view.nodes()[static_cast<std::size_t>(pick)].id);
  }
  return group;
}

long TotalLossCorrelation(const overlay::Tree& tree,
                          const std::vector<overlay::NodeId>& group) {
  long total = 0;
  for (std::size_t i = 0; i < group.size(); ++i)
    for (std::size_t j = i + 1; j < group.size(); ++j)
      total += tree.SharedPathEdges(group[i], group[j]);
  return total;
}

}  // namespace omcast::core
