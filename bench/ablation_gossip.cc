// Ablation (beyond the paper): the harness normally models membership
// discovery as uniform sampling from the live population ("each node will
// know about a medium-sized subset of other nodes", Section 4.1). This
// bench validates that abstraction by re-running the ROST and min-depth
// scenarios over the *real* gossip protocol (bounded views, push-pull
// exchanges, stale entries) and comparing the headline metrics.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "metrics/collectors.h"
#include "overlay/gossip.h"
#include "sim/simulator.h"

namespace {

using namespace omcast;

struct Outcome {
  double disruptions = 0.0;
  double delay_ms = 0.0;
  double reconnects = 0.0;
};

Outcome RunOne(const net::Topology& topology, exp::Algorithm algorithm,
               bool use_gossip, const exp::ScenarioConfig& config) {
  sim::Simulator sim;
  overlay::Session session(sim, topology,
                           exp::MakeProtocol(algorithm, config.rost),
                           config.session, config.seed);
  std::unique_ptr<overlay::GossipService> gossip;
  if (use_gossip) {
    gossip = std::make_unique<overlay::GossipService>(
        session, overlay::GossipParams{}, config.seed ^ 0x90551B);
    session.SetMembershipOracle(gossip.get());
  }
  metrics::MemberOutcomes outcomes(session);
  metrics::TreeSnapshots snapshots(session, config.snapshot_interval_s);
  const double t_end = config.warmup_s + config.measure_s;
  outcomes.SetWindow(config.warmup_s, t_end);
  snapshots.Start(config.warmup_s, t_end);
  session.Prepopulate(config.population);
  session.StartArrivals(config.population / rnd::kMeanLifetimeSeconds);
  sim.RunUntil(t_end);
  outcomes.HarvestAliveMembers();
  return {outcomes.disruptions().mean(), snapshots.delay_ms().mean(),
          outcomes.reconnections().mean()};
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Ablation -- uniform sampling vs real gossip views", env);

  util::Table table({"algorithm", "discovery", "disruptions/node", "delay(ms)",
                     "reconnects/node"});
  for (const exp::Algorithm a :
       {exp::Algorithm::kMinDepth, exp::Algorithm::kRost}) {
    for (const bool use_gossip : {false, true}) {
      Outcome sum;
      for (int rep = 0; rep < env.reps; ++rep) {
        exp::ScenarioConfig config = env.BaseConfig();
        config.population = env.focus_size;
        config.seed = env.seed + static_cast<std::uint64_t>(rep);
        const Outcome o = RunOne(env.topology, a, use_gossip, config);
        sum.disruptions += o.disruptions;
        sum.delay_ms += o.delay_ms;
        sum.reconnects += o.reconnects;
      }
      table.AddRow(
          {exp::AlgorithmLabel(a), use_gossip ? "gossip views" : "uniform",
           util::FormatDouble(sum.disruptions / env.reps, 3),
           util::FormatDouble(sum.delay_ms / env.reps, 1),
           util::FormatDouble(sum.reconnects / env.reps, 3)});
    }
  }
  table.Print(std::cout,
              "membership-discovery ablation (" +
                  std::to_string(env.focus_size) + " members)");
  std::cout << "\nIf the rows match within noise, the uniform-sampling "
               "abstraction used by the\nfigure benches is sound.\n";
  return 0;
}
