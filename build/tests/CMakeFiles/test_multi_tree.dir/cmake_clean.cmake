file(REMOVE_RECURSE
  "CMakeFiles/test_multi_tree.dir/test_multi_tree.cc.o"
  "CMakeFiles/test_multi_tree.dir/test_multi_tree.cc.o.d"
  "test_multi_tree"
  "test_multi_tree.pdb"
  "test_multi_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
