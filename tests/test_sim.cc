#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace omcast::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pending_count(), 0u);
  EXPECT_EQ(s.executed_count(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(3.0, [&] { order.push_back(3); });
  s.ScheduleAt(1.0, [&] { order.push_back(1); });
  s.ScheduleAt(2.0, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 3.0);
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.ScheduleAt(5.0, [&, i] { order.push_back(i); });
  s.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  double fired_at = -1.0;
  s.ScheduleAt(10.0, [&] {
    s.ScheduleAfter(5.0, [&] { fired_at = s.now(); });
  });
  s.Run();
  EXPECT_EQ(fired_at, 15.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const EventId id = s.ScheduleAt(1.0, [&] { fired = true; });
  EXPECT_TRUE(s.IsPending(id));
  EXPECT_TRUE(s.Cancel(id));
  EXPECT_FALSE(s.IsPending(id));
  EXPECT_FALSE(s.Cancel(id));  // second cancel is a no-op
  s.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.executed_count(), 0u);
}

TEST(Simulator, CancelOfFiredEventReturnsFalse) {
  Simulator s;
  const EventId id = s.ScheduleAt(1.0, [] {});
  s.Run();
  EXPECT_FALSE(s.Cancel(id));
}

TEST(Simulator, CancelInvalidIdIsSafe) {
  Simulator s;
  EXPECT_FALSE(s.Cancel(kInvalidEventId));
}

TEST(Simulator, RunUntilAdvancesClockPastLastEvent) {
  Simulator s;
  int count = 0;
  s.ScheduleAt(1.0, [&] { ++count; });
  s.ScheduleAt(9.0, [&] { ++count; });
  s.RunUntil(5.0);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), 5.0);  // clock lands exactly on the boundary
  s.RunUntil(20.0);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), 20.0);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator s;
  bool fired = false;
  s.ScheduleAt(5.0, [&] { fired = true; });
  s.RunUntil(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, StopHaltsTheLoop) {
  Simulator s;
  int count = 0;
  s.ScheduleAt(1.0, [&] {
    ++count;
    s.Stop();
  });
  s.ScheduleAt(2.0, [&] { ++count; });
  s.Run();
  EXPECT_EQ(count, 1);
  s.Run();  // resumes with remaining events
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.ScheduleAfter(1.0, recurse);
  };
  s.ScheduleAt(0.0, recurse);
  s.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), 99.0);
}

TEST(Simulator, CancelledHeadDoesNotBlockRunUntil) {
  Simulator s;
  const EventId id = s.ScheduleAt(1.0, [] {});
  bool fired = false;
  s.ScheduleAt(2.0, [&] { fired = true; });
  s.Cancel(id);
  s.RunUntil(3.0);
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.pending_count(), 0u);
}

TEST(Simulator, ExecutedCountTracksCallbacks) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.ScheduleAt(static_cast<double>(i), [] {});
  s.Run();
  EXPECT_EQ(s.executed_count(), 7u);
}

TEST(Simulator, ZeroDelayEventRunsAtCurrentTime) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(1.0, [&] {
    order.push_back(1);
    s.ScheduleAfter(0.0, [&] { order.push_back(2); });
  });
  s.ScheduleAt(1.0, [&] { order.push_back(3); });
  s.Run();
  // The zero-delay event lands after the already-queued same-time event.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(SimulatorDeath, SchedulingInThePastAborts) {
  Simulator s;
  s.ScheduleAt(5.0, [] {});
  s.Run();
  EXPECT_DEATH(s.ScheduleAt(1.0, [] {}), "past");
}

}  // namespace
}  // namespace omcast::sim
