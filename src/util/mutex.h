// Capability-annotated mutex wrapper: the ONE place raw std::mutex /
// std::condition_variable are legal (the omcast-lint raw-mutex rule bans
// them everywhere else under src/).
//
// std::mutex and std::unique_lock carry no capability attributes, so clang's
// -Wthread-safety treats code using them as unanalyzable: accesses to
// guarded fields under a std::lock_guard look unguarded and the analysis
// either warns spuriously or (worse) silently checks nothing. Wrapping the
// standard primitives in annotated types makes the whole concurrency layer
// -- runner::ThreadPool, the shared topology cache, obs::ProfileAggregator
// -- statically checkable.
//
// Usage:
//   util::Mutex mu_;
//   int value_ OMCAST_GUARDED_BY(mu_);
//   { util::MutexLock lock(mu_); ++value_; }           // scoped
//   mu_.Lock(); ...; mu_.Unlock();                     // manual (balanced)
//   while (!ready_) cv_.Wait(mu_);                     // condition wait
//
// CondVar deliberately has no predicate overload: a predicate lambda is
// analyzed as a separate function and its reads of guarded fields would
// warn, so callers write the while-loop inline where the analysis can see
// the held lock.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace omcast::util {

class OMCAST_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() OMCAST_ACQUIRE() { mu_.lock(); }
  void Unlock() OMCAST_RELEASE() { mu_.unlock(); }
  bool TryLock() OMCAST_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock; the only way this codebase takes a scoped lock.
class OMCAST_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) OMCAST_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() OMCAST_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to util::Mutex. Wait() atomically releases the
// (held) mutex, blocks, and reacquires it before returning; the REQUIRES
// annotation teaches the analysis that the capability is held across the
// call from the caller's point of view.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) OMCAST_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so the wrapper's bookkeeping stays
    // consistent (the caller still considers `mu` held, which it is).
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace omcast::util
