// The CER loss-repair protocol and its per-outage packet model
// (paper Sections 4.2 and 6).
//
// When a member's parent fails, the member needs detect_s to notice and
// rejoin_s to re-find a parent (5 s + 10 s in the paper); packets generated
// during that hole only reach it through recovery nodes. The member sends a
// full-rate repair request to the first (nearest) recovery node; a node with
// residual bandwidth e1 < 1 serves the sequence stripe (n mod 100) < 100*e1
// and forwards the request to the next node, which serves the next stripe,
// until the stripes cover the full rate or the chain is exhausted. Dead or
// same-failure-affected nodes NACK and forward. Under single-source
// recovery (the baseline of Fig. 14) only the first usable node serves, so
// the repair rate is its residual bandwidth alone.
//
// SimulateOutage() evaluates one such outage at packet granularity: hole
// packets are served in sequence order at the aggregate stripe rate, each
// packet available to the recovery overlay no earlier than its generation
// time, and each counting as starving if it misses its playback deadline
// (generation time + buffer). This is exact for the protocol above while
// costing O(hole packets) instead of simulating every streamed packet.
#pragma once

#include <vector>

namespace omcast::core {

// How the repair chain uses the recovery nodes' residual bandwidths.
enum class RecoveryMode {
  kCooperative,   // CER: stripes aggregate until they cover the full rate
  kSingleSource,  // baseline: first usable node's residual bandwidth only
};

// One entry of the (network-distance-ordered) recovery chain.
struct RecoverySource {
  // False when the node is dead or disrupted by the same upstream failure:
  // it NACKs and forwards the request.
  bool usable = false;
  // Residual bandwidth as a fraction of the full stream rate (paper:
  // uniform 0-9 pkt/s against a 10 pkt/s stream => 0.0-0.9).
  double rate_fraction = 0.0;
  // One-way latency from the previous chain hop, seconds (milliseconds in
  // practice; kept for fidelity of the service start time).
  double hop_latency_s = 0.0;
};

struct OutageSpec {
  double detect_s = 5.0;
  double rejoin_s = 10.0;
  double buffer_s = 5.0;       // playback buffer == deadline slack
  double packet_rate = 10.0;   // packets per second
  RecoveryMode mode = RecoveryMode::kCooperative;
  std::vector<RecoverySource> chain;
};

struct OutageResult {
  double starving_s = 0.0;      // total playback stall caused by this outage
  double aggregate_rate = 0.0;  // repair rate actually assembled (<= 1)
  int packets_total = 0;
  int packets_recovered = 0;
  int packets_lost = 0;
  double service_start_s = 0.0;  // when the first stripe began serving
};

OutageResult SimulateOutage(const OutageSpec& spec);

}  // namespace omcast::core
