#include "obs/trace.h"

#include <algorithm>
#include <charconv>
#include <ostream>

#include "util/check.h"
#include "util/hash.h"

namespace omcast::obs {

namespace {

// Shortest round-trip formatting, matching runner::Json's convention so the
// same double always serializes to the same bytes.
void AppendDouble(std::string& out, double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  util::Check(ec == std::errc(), "double formatting cannot fail");
  out.append(buf, ptr);
}

void AppendInt(std::string& out, std::int64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  util::Check(ec == std::errc(), "integer formatting cannot fail");
  out.append(buf, ptr);
}

void AppendUint(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  util::Check(ec == std::errc(), "integer formatting cannot fail");
  out.append(buf, ptr);
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kJoin: return "join";
    case EventKind::kRejoin: return "rejoin";
    case EventKind::kLeave: return "leave";
    case EventKind::kSwitchAttempt: return "switch_attempt";
    case EventKind::kSwitchCommit: return "switch_commit";
    case EventKind::kSwitchAbort: return "switch_abort";
    case EventKind::kLockRequest: return "lock_request";
    case EventKind::kLockGrant: return "lock_grant";
    case EventKind::kLockDeny: return "lock_deny";
    case EventKind::kLockRelease: return "lock_release";
    case EventKind::kLockExpire: return "lock_expire";
    case EventKind::kLockTimeout: return "lock_timeout";
    case EventKind::kHeartbeatMiss: return "heartbeat_miss";
    case EventKind::kSuspicion: return "suspicion";
    case EventKind::kFalseSuspicion: return "false_suspicion";
    case EventKind::kGossipRound: return "gossip_round";
    case EventKind::kEln: return "eln";
    case EventKind::kCerGroupFormed: return "cer_group_formed";
    case EventKind::kRepairStart: return "repair_start";
    case EventKind::kRepairFinish: return "repair_finish";
    case EventKind::kRepairFailover: return "repair_failover";
    case EventKind::kReconnectStart: return "reconnect_start";
    case EventKind::kReconnectAttached: return "reconnect_attached";
    case EventKind::kReconnectAbandoned: return "reconnect_abandoned";
    case EventKind::kDependencyResync: return "dependency_resync";
    case EventKind::kPlaybackRegime: return "playback_regime";
    case EventKind::kDecodeStall: return "decode_stall";
    case EventKind::kCliqueFormed: return "clique_formed";
    case EventKind::kCliqueElection: return "clique_election";
    case EventKind::kCliqueDelegatePromoted: return "clique_delegate_promoted";
    case EventKind::kCliqueLocalRecovery: return "clique_local_recovery";
    case EventKind::kCliqueBackboneReattach: return "clique_backbone_reattach";
    case EventKind::kCliqueDissolved: return "clique_dissolved";
    case EventKind::kOrphaned: return "orphaned";
  }
  return "?";
}

void AppendEventJsonl(std::string& out, const TraceEvent& ev) {
  out += "{\"t\":";
  AppendDouble(out, ev.t);
  out += ",\"id\":";
  AppendUint(out, ev.id);
  out += ",\"kind\":\"";
  out += EventKindName(ev.kind);
  out += "\",\"subject\":";
  AppendInt(out, ev.subject);
  out += ",\"peer\":";
  AppendInt(out, ev.peer);
  out += ",\"detail\":";
  AppendInt(out, ev.detail);
  out += "}\n";
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  util::Check(capacity_ >= 1, "tracer ring needs at least one slot");
}

void Tracer::Emit(double t, EventKind kind, std::int64_t subject,
                  std::int64_t peer, std::int64_t detail) {
  TraceEvent ev;
  ev.t = t;
  ev.id = next_id_++;
  ev.kind = kind;
  ev.subject = subject;
  ev.peer = peer;
  ev.detail = detail;
  // Sinks first: they see every emission, including the ones the bounded
  // ring is about to evict.
  for (TraceSink* sink : sinks_) sink->OnEvent(ev);
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
    return;
  }
  ring_[head_] = ev;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

void Tracer::AddSink(TraceSink* sink) {
  util::Check(sink != nullptr, "AddSink requires a sink");
  sinks_.push_back(sink);
}

void Tracer::RemoveSink(TraceSink* sink) {
  const auto it = std::find(sinks_.begin(), sinks_.end(), sink);
  if (it != sinks_.end()) sinks_.erase(it);
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

std::string Tracer::ToJsonl() const {
  std::string out;
  out.reserve(ring_.size() * 64);
  for (const TraceEvent& ev : Events()) AppendEventJsonl(out, ev);
  return out;
}

std::string Tracer::ToChromeTrace() const {
  // Instant events ("ph":"i", thread scope), one track (tid) per subject so
  // Perfetto lays protocol activity out per node. ts is microseconds.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : Events()) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    out += EventKindName(ev.kind);
    out += "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":";
    AppendInt(out, ev.subject);
    out += ",\"ts\":";
    AppendDouble(out, ev.t * 1e6);
    out += ",\"args\":{\"id\":";
    AppendUint(out, ev.id);
    out += ",\"peer\":";
    AppendInt(out, ev.peer);
    out += ",\"detail\":";
    AppendInt(out, ev.detail);
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

std::uint64_t Tracer::Digest() const {
  util::RollingHash h;
  for (const TraceEvent& ev : Events()) {
    h.MixDouble(ev.t);
    h.MixU64(ev.id);
    h.MixI64(static_cast<std::int64_t>(ev.kind));
    h.MixI64(ev.subject);
    h.MixI64(ev.peer);
    h.MixI64(ev.detail);
  }
  return h.digest();
}

void Tracer::Clear() {
  // Only the retained window is discarded; emitted()/dropped() are lifetime
  // tallies and ids keep running, so events stay globally unique even when
  // an exporter drains the ring in chunks.
  ring_.clear();
  head_ = 0;
}

JsonlStreamSink::JsonlStreamSink(std::ostream& out) : out_(&out) {}

void JsonlStreamSink::OnEvent(const TraceEvent& ev) {
  line_.clear();
  AppendEventJsonl(line_, ev);
  out_->write(line_.data(), static_cast<std::streamsize>(line_.size()));
  ++events_written_;
}

}  // namespace omcast::obs
