// The orchestration engine: executes every cell of a GridSpec on a
// work-stealing thread pool, sharing one immutable topology across cells,
// and returns the outcomes in grid order (row-major, then rep) regardless
// of the scheduling interleaving.
//
// Resumability: pass the parsed JSON document of a previous run of the same
// figure and every cell whose identity (row, col, rep) and derived seed
// match an entry in it is satisfied from the file instead of re-executed.
// A cell whose seed does not match (different base seed or relabeled grid)
// is re-run, never silently reused.
#pragma once

#include <cstdint>
#include <vector>

#include "runner/grid.h"
#include "runner/json.h"

namespace omcast::runner {

struct RunnerOptions {
  int threads = 0;             // <= 0: hardware concurrency
  std::uint64_t base_seed = 1;
  bool progress = false;       // per-cell progress + ETA lines on stderr
  const Json* resume = nullptr;  // previous results document, or nullptr
};

struct GridRunSummary {
  std::vector<CellOutcome> cells;  // grid order: (row, col, rep) row-major
  int executed = 0;                // cells actually run this invocation
  int resumed = 0;                 // cells satisfied from `resume`
  int threads = 0;                 // pool width used
  double wall_ms = 0.0;            // whole-grid wall clock
};

GridRunSummary RunGrid(const GridSpec& spec, const RunnerOptions& options);

// Digest of every cell's identity, seed and results (metrics, samples,
// series) in grid order. Wall-clock and resume provenance are excluded, so
// serial, parallel and resumed runs of the same grid must produce the same
// digest -- the property the determinism test asserts.
std::uint64_t DigestOutcomes(const std::vector<CellOutcome>& cells);

}  // namespace omcast::runner
