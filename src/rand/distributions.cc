#include "rand/distributions.h"

#include <cmath>

#include "util/check.h"

namespace omcast::rnd {

BoundedPareto::BoundedPareto(double shape, double lo, double hi)
    : shape_(shape), lo_(lo), hi_(hi), tail_at_hi_(std::pow(lo / hi, shape)) {
  util::Check(shape > 0.0, "BoundedPareto: shape > 0");
  util::Check(lo > 0.0 && lo < hi, "BoundedPareto: 0 < lo < hi");
}

double BoundedPareto::Sample(Rng& rng) const {
  // Inverse CDF: with U ~ Uniform[0,1),
  //   x = lo / (1 - U * (1 - (lo/hi)^shape))^(1/shape)
  const double u = rng.Uniform(0.0, 1.0);
  const double x = lo_ / std::pow(1.0 - u * (1.0 - tail_at_hi_), 1.0 / shape_);
  // Guard against floating point spill just past hi.
  return x > hi_ ? hi_ : x;
}

double BoundedPareto::Cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (1.0 - std::pow(lo_ / x, shape_)) / (1.0 - tail_at_hi_);
}

LognormalDist::LognormalDist(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  util::Check(sigma > 0.0, "LognormalDist: sigma > 0");
}

double LognormalDist::Sample(Rng& rng) const {
  return rng.Lognormal(mu_, sigma_);
}

double LognormalDist::Mean() const {
  return std::exp(mu_ + sigma_ * sigma_ / 2.0);
}

BoundedPareto PaperBandwidthDist() {
  return BoundedPareto(kBandwidthParetoShape, kBandwidthParetoLo,
                       kBandwidthParetoHi);
}

LognormalDist PaperLifetimeDist() {
  return LognormalDist(kLifetimeLogMu, kLifetimeLogSigma);
}

}  // namespace omcast::rnd
