// Fig. 5: CDF of the per-member disruption count in a network of the focus
// size (the paper's 8000-node instance), for the five algorithms, evaluated
// at the paper's 1,2,4,...,128 grid. Per-member samples are recorded per
// cell and pooled across repetitions.
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 5 -- CDF of per-member disruption count", env);

  runner::GridSpec spec;
  spec.figure = "fig05_disruption_cdf";
  spec.title = "CDF of per-member disruption count";
  spec.row_header = "size";
  spec.rows = {std::to_string(env.focus_size)};
  for (const exp::Algorithm a : exp::AllAlgorithms())
    spec.cols.push_back(exp::AlgorithmLabel(a));
  spec.reps = env.reps;
  spec.headline_metric = "disruptions";
  spec.run = [&env](const runner::CellContext& cell) {
    exp::ScenarioConfig config = env.BaseConfig();
    config.population = env.focus_size;
    config.seed = cell.seed;
    const exp::Algorithm a = exp::AllAlgorithms()[cell.col];
    return bench::TreeCellResult(exp::RunTreeScenario(env.Topo(), a, config),
                                 /*want_samples=*/true);
  };
  const runner::ResultsSink sink = bench::RunGridBench(env, spec);

  const std::vector<double> grid = {1, 2, 4, 8, 16, 32, 64, 128};
  std::vector<std::string> header = {"disruptions<="};
  header.insert(header.end(), spec.cols.begin(), spec.cols.end());
  util::Table table(std::move(header));

  std::vector<std::vector<double>> cdfs;
  for (std::size_t col = 0; col < spec.cols.size(); ++col)
    cdfs.push_back(
        util::CdfAt(sink.PooledSamples(0, col, "disruptions"), grid));
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::vector<double> row;
    for (const auto& cdf : cdfs) row.push_back(100.0 * cdf[i]);
    table.AddRow(util::FormatDouble(grid[i], 0), row, 1);
  }
  table.Print(std::cout, "cumulative % of members with <= X disruptions (" +
                             std::to_string(env.focus_size) + " members)");
  return 0;
}
