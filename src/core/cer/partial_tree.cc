#include "core/cer/partial_tree.h"

#include <algorithm>

#include "util/check.h"

namespace omcast::core {

int PartialTree::InternNode(overlay::NodeId id, int layer) {
  if (const auto it = index_.find(id); it != index_.end()) return it->second;
  const int idx = static_cast<int>(nodes_.size());
  Node n;
  n.id = id;
  n.layer = layer;
  nodes_.push_back(std::move(n));
  index_.emplace(id, idx);
  return idx;
}

PartialTree PartialTree::Build(const overlay::Tree& tree,
                               const std::vector<overlay::NodeId>& known) {
  PartialTree pt;
  for (overlay::NodeId id : known) {
    if (!tree.IsRooted(id)) continue;
    // Walk the ancestor chain (the record's content) up to the root,
    // splicing it into the view.
    overlay::NodeId cur = id;
    int child_idx = -1;
    while (cur != overlay::kNoNode) {
      const overlay::Member& m = tree.Get(cur);
      const bool seen = pt.index_.contains(cur);
      const int idx = pt.InternNode(cur, tree.Layer(cur));
      if (child_idx != -1 && pt.nodes_[static_cast<std::size_t>(child_idx)].parent == -1 &&
          !tree.Get(pt.nodes_[static_cast<std::size_t>(child_idx)].id).IsRoot()) {
        pt.nodes_[static_cast<std::size_t>(child_idx)].parent = idx;
        pt.nodes_[static_cast<std::size_t>(idx)].children.push_back(child_idx);
      }
      if (m.IsRoot()) pt.root_ = idx;
      if (seen) break;  // the rest of the chain is already spliced
      child_idx = idx;
      cur = tree.Parent(cur);
    }
  }
  return pt;
}

std::vector<std::vector<int>> PartialTree::Levels() const {
  std::vector<std::vector<int>> levels;
  if (root_ < 0) return levels;
  std::vector<int> frontier = {root_};
  while (!frontier.empty()) {
    levels.push_back(frontier);
    std::vector<int> next;
    for (int idx : frontier) {
      const Node& n = nodes_[static_cast<std::size_t>(idx)];
      next.insert(next.end(), n.children.begin(), n.children.end());
    }
    frontier = std::move(next);
  }
  return levels;
}

std::vector<int> PartialTree::Descendants(int idx) const {
  std::vector<int> out;
  std::vector<int> stack = nodes_[static_cast<std::size_t>(idx)].children;
  while (!stack.empty()) {
    const int cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    stack.insert(stack.end(), n.children.begin(), n.children.end());
  }
  return out;
}

int PartialTree::IndexOf(overlay::NodeId id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? -1 : it->second;
}

}  // namespace omcast::core
