file(REMOVE_RECURSE
  "libomcast_rand.a"
)
