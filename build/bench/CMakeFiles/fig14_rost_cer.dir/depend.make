# Empty dependencies file for fig14_rost_cer.
# This may be replaced when dependencies are built.
