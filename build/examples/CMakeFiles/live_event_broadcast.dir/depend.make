# Empty dependencies file for live_event_broadcast.
# This may be replaced when dependencies are built.
