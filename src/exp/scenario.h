// Reusable experiment scenarios mirroring paper Section 5:
// equilibrium-pre-populated session, Poisson arrivals at
// lambda = population / 1809 (Little's law), a warm-up phase for the tree
// structure to equilibrate under the protocol, then a measurement window.
//
// Three runners cover all figures:
//   * RunTreeScenario       -- structural reliability/quality metrics
//                              (Figs. 4, 5, 7, 8, 10, 11)
//   * RunMemberTraceScenario-- one tagged "typical member" time series
//                              (Figs. 6, 9)
//   * RunStreamScenario     -- starving-time-ratio with a StreamingLayer
//                              (Figs. 12, 13, 14)
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/rost/rost.h"
#include "net/topology.h"
#include "overlay/session.h"
#include "proto/clique/clique.h"
#include "stream/streaming.h"

namespace omcast::obs {
class Tracer;
class Registry;
class SimProfiler;
}  // namespace omcast::obs

namespace omcast::exp {

enum class Algorithm {
  kMinDepth,
  kLongestFirst,
  kRelaxedBo,
  kRelaxedTo,
  kRost,
  // The clustered-overlay competitor (proto/clique) -- not one of the
  // paper's five, so AllAlgorithms() excludes it and the bake-off harness
  // names it explicitly.
  kClique,
};

// The five algorithms in the paper's plotting order (kClique is the
// bake-off competitor, not a paper curve, and is deliberately absent).
std::vector<Algorithm> AllAlgorithms();
const char* AlgorithmLabel(Algorithm a);
std::unique_ptr<overlay::Protocol> MakeProtocol(
    Algorithm a, const core::RostParams& rost,
    const proto::CliqueParams& clique = {});

// Plain value type: runner cells copy one per cell and patch population /
// seed, so scenario code must never stash pointers to a shared config.
// The scenario runners below are thread-safe for concurrent calls *on
// distinct configs and distinct seeds* -- each call builds its own
// Simulator, Session, and RNG and only reads the (immutable) Topology.
struct ScenarioConfig {
  int population = 1000;          // steady-state size M
  double warmup_s = 1800.0;       // structure equilibration before measuring
  double measure_s = 3600.0;      // measurement window length
  std::uint64_t seed = 1;
  double snapshot_interval_s = 300.0;
  core::RostParams rost;          // used when algorithm == kRost
  proto::CliqueParams clique;     // used when algorithm == kClique
  overlay::SessionParams session;
  // Pending-event set implementation. Both kinds dispatch in identical
  // (time, seq) order, so results and replay digests are unaffected; the
  // binary heap exists as the A/B baseline for bench/scale_sweep.
  sim::QueueKind queue_kind = sim::QueueKind::kCalendar;

  // --- observability (obs/) -- all non-owning, null = off, and each must
  // outlive the run. The tracer receives the protocol event stream, the
  // registry receives end-of-run counter snapshots (protocol message costs,
  // Fig. 10), and the profiler brackets every simulator dispatch.
  obs::Tracer* tracer = nullptr;
  obs::Registry* registry = nullptr;
  obs::SimProfiler* profiler = nullptr;

  // Recovery-curve sampling (RunTreeScenario only): when > 0 and `registry`
  // is set, the measurement window is sampled every `timeseries_window_s`
  // seconds into "recovery.*" obs::TimeSeries gauges (unrooted members,
  // pending re-entries, wedged leases) in the registry -- the same family
  // the chaos harness records, so churn and chaos cells export uniformly.
  double timeseries_window_s = 0.0;
  // Stitch the trace stream into per-disruption incident lifecycles
  // (obs::IncidentLog -> TreeScenarioResult::incidents, plus registry
  // histograms when `registry` is set). Uses `tracer` when set; otherwise a
  // minimal run-local tracer feeds the analysis.
  bool incident_analysis = false;
};

struct TreeScenarioResult {
  double avg_disruptions = 0.0;
  double disruptions_ci95 = 0.0;
  double avg_reconnections = 0.0;
  double avg_delay_ms = 0.0;
  double avg_stretch = 0.0;
  double avg_depth = 0.0;
  double avg_population = 0.0;
  int qualifying_members = 0;
  std::vector<double> disruption_samples;
  // ROST only; -1 otherwise.
  long rost_switches = -1;
  long rost_lock_conflicts = -1;
  // Per-disruption lifecycle stats (obs::IncidentLog::FlatStats); empty
  // unless ScenarioConfig::incident_analysis.
  std::map<std::string, double> incidents;
};

TreeScenarioResult RunTreeScenario(const net::Topology& topology, Algorithm a,
                                   const ScenarioConfig& config);

struct StreamScenarioResult {
  double avg_starving_ratio = 0.0;  // 0..1
  double ci95 = 0.0;
  int members = 0;
  long outages = 0;
  double avg_recovery_rate = 0.0;  // aggregate repair rate assembled
};

StreamScenarioResult RunStreamScenario(const net::Topology& topology,
                                       Algorithm a,
                                       const ScenarioConfig& config,
                                       const stream::StreamParams& stream);

struct TracePoint {
  double t_min = 0.0;  // minutes since the tagged member joined
  double v = 0.0;
};

struct TraceResult {
  std::vector<TracePoint> cumulative_disruptions;
  std::vector<TracePoint> delay_ms;
};

// Injects a "typical member" (moderate bandwidth, long lifetime) once the
// network is in steady state and traces it for `trace_s` seconds
// (Figs. 6 and 9 trace 300 minutes).
TraceResult RunMemberTraceScenario(const net::Topology& topology, Algorithm a,
                                   const ScenarioConfig& config,
                                   double member_bandwidth,
                                   double member_lifetime_s, double trace_s);

}  // namespace omcast::exp
