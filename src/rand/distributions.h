// The workload distributions of paper Section 5:
//   * member outbound bandwidth ~ BoundedPareto(shape 1.2, lo 0.5, hi 100)
//     (units of the stream rate, so bandwidth < 1 means a free-rider),
//   * member lifetime ~ Lognormal(location 5.5, shape 2.0) seconds,
//     mean ~= 1809 s, a long-tailed distribution per Veloso et al.
#pragma once

#include "rand/rng.h"

namespace omcast::rnd {

// Pareto truncated to [lo, hi], sampled by inverse-CDF.
class BoundedPareto {
 public:
  BoundedPareto(double shape, double lo, double hi);

  double Sample(Rng& rng) const;

  // CDF P(X <= x); clamps outside [lo, hi]. Used by tests to verify e.g.
  // the ~55.5% free-rider fraction the paper quotes.
  double Cdf(double x) const;

  double shape() const { return shape_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double shape_ = 0.0;
  double lo_ = 0.0;
  double hi_ = 0.0;
  double tail_at_hi_ = 0.0;  // (lo/hi)^shape, the truncated tail mass
};

// Lognormal with the usual (mu, sigma) parameterization of the underlying
// normal. Mean = exp(mu + sigma^2 / 2).
class LognormalDist {
 public:
  LognormalDist(double mu, double sigma);

  double Sample(Rng& rng) const;
  double Mean() const;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_ = 0.0;
  double sigma_ = 0.0;
};

// Canonical paper parameters (Section 5).
inline constexpr double kBandwidthParetoShape = 1.2;
inline constexpr double kBandwidthParetoLo = 0.5;
inline constexpr double kBandwidthParetoHi = 100.0;
inline constexpr double kLifetimeLogMu = 5.5;
inline constexpr double kLifetimeLogSigma = 2.0;
// Mean lifetime exp(5.5 + 2.0^2/2) ~= 1808.04, quoted as 1809 s in the paper.
inline constexpr double kMeanLifetimeSeconds = 1809.0;

BoundedPareto PaperBandwidthDist();
LognormalDist PaperLifetimeDist();

}  // namespace omcast::rnd
