// Aggregated resilience counters for chaos runs.
//
// The chaos harness (exp/chaos.h) wires a FaultPlane through every control
// path -- heartbeats, ROST lock leases, gossip slices, ELN notifications --
// and each component keeps its own counters. The primary snapshot is an
// obs::Registry (CollectChaosRegistry), the unified metrics path that also
// feeds the runner's per-cell JSON export; the ChaosCounters struct is kept
// as a thin typed view over that registry (CountersFromRegistry) so
// existing call sites and tests keep their field-level assertions.
#pragma once

#include <string>

#include "core/rost/rost.h"
#include "obs/registry.h"
#include "overlay/gossip.h"
#include "overlay/heartbeat.h"
#include "sim/fault_plane.h"
#include "stream/packet_sim.h"

namespace omcast::metrics {

struct ChaosCounters {
  // sim::FaultPlane -- what the control plane actually did to messages.
  long messages_sent = 0;
  long messages_dropped = 0;
  long messages_duplicated = 0;
  long messages_delivered = 0;

  // overlay::HeartbeatService -- failure detection under loss.
  long heartbeats_sent = 0;
  long detections = 0;
  long false_suspicions = 0;
  double mean_detection_latency_s = 0.0;

  // core::RostProtocol lease path -- locking under loss. The identity
  // granted == released + expired + outstanding always holds; wedged
  // (held past expiry, i.e. a reaping bug) must be zero.
  long leases_granted = 0;
  long leases_released = 0;
  long leases_expired = 0;
  long leases_outstanding = 0;
  long wedged_leases = 0;
  long lock_timeouts = 0;
  long lock_retries = 0;
  long handshake_aborts = 0;
  // Joins that succeeded only by displacing a weaker rooted leaf (the
  // saturated-tree fallback after a correlated kill strands the overlay's
  // spare capacity in detached fragments).
  long preempt_joins = 0;

  // overlay::GossipService -- view staleness tolerance.
  long stale_view_rejections = 0;

  // stream::PacketLevelStream -- CER repair under server churn.
  long repairs_scheduled = 0;
  long eln_sent = 0;
  long stripe_failovers = 0;
  long short_group_fallbacks = 0;
};

// Snapshots the counters of whichever components the run used into the
// unified registry under "chaos.*" names; any pointer may be null (its
// section stays zero). `now` is needed to evaluate lease wedging.
obs::Registry CollectChaosRegistry(const sim::FaultPlane* fault_plane,
                                   const overlay::HeartbeatService* heartbeat,
                                   const core::RostProtocol* rost,
                                   const overlay::GossipService* gossip,
                                   const stream::PacketLevelStream* stream,
                                   sim::Time now);

// Typed view over a CollectChaosRegistry snapshot (or any registry using
// the same "chaos.*" names).
ChaosCounters CountersFromRegistry(const obs::Registry& registry);

// Compatibility wrapper: CollectChaosRegistry |> CountersFromRegistry.
ChaosCounters CollectChaosCounters(const sim::FaultPlane* fault_plane,
                                   const overlay::HeartbeatService* heartbeat,
                                   const core::RostProtocol* rost,
                                   const overlay::GossipService* gossip,
                                   const stream::PacketLevelStream* stream,
                                   sim::Time now);

// Multi-line human-readable dump (examples / debugging).
std::string FormatChaosCounters(const ChaosCounters& c);

}  // namespace omcast::metrics
