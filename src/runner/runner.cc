#include "runner/runner.h"

#include <chrono>  // omcast-lint: allow(wallclock)
#include <cstdio>

#include "runner/results.h"
#include "runner/thread_pool.h"
#include "util/check.h"
#include "util/mutex.h"

namespace omcast::runner {

namespace {

// Host wall clock for progress/ETA and the per-cell wall_ms manifest field.
// Never feeds a simulation decision or a digest: simulation time is
// sim::Simulator::now(), and DigestOutcomes skips wall_ms.
double WallMs() {
  using clock = std::chrono::steady_clock;  // omcast-lint: allow(wallclock)
  static const clock::time_point origin = clock::now();
  return std::chrono::duration<double, std::milli>(clock::now() - origin)
      .count();
}

}  // namespace

GridRunSummary RunGrid(const GridSpec& spec, const RunnerOptions& options) {
  util::Check(spec.run != nullptr, "RunGrid: spec.run must be set");
  util::Check(spec.reps >= 1, "RunGrid: reps >= 1");
  util::Check(!spec.rows.empty() && !spec.cols.empty(),
              "RunGrid: empty grid axis");

  GridRunSummary summary;
  summary.cells.resize(spec.cell_count());

  // Build every cell's identity up front, in grid order.
  std::size_t index = 0;
  for (std::size_t row = 0; row < spec.rows.size(); ++row) {
    for (std::size_t col = 0; col < spec.cols.size(); ++col) {
      for (int rep = 0; rep < spec.reps; ++rep, ++index) {
        CellContext& ctx = summary.cells[index].ctx;
        ctx.figure = spec.figure;
        ctx.row_label = spec.rows[row];
        ctx.col_label = spec.cols[col];
        ctx.row = row;
        ctx.col = col;
        ctx.rep = rep;
        ctx.seed = CellSeed(options.base_seed, spec.figure, ctx.row_label,
                            ctx.col_label, rep);
      }
    }
  }

  // Resume pass: satisfy cells from the previous results document.
  std::vector<std::size_t> todo;
  todo.reserve(summary.cells.size());
  for (std::size_t i = 0; i < summary.cells.size(); ++i) {
    CellOutcome& cell = summary.cells[i];
    if (options.resume != nullptr &&
        FindResumedCell(*options.resume, cell.ctx, &cell)) {
      cell.resumed = true;
      ++summary.resumed;
    } else {
      todo.push_back(i);
    }
  }

  const double t0 = WallMs();
  util::Mutex progress_mu;
  std::size_t completed = 0;

  ThreadPool pool(options.threads);
  summary.threads = pool.num_threads();
  const std::size_t total = todo.size();
  for (const std::size_t i : todo) {
    pool.Submit([&spec, &summary, &options, &progress_mu, &completed, total,
                 t0, i] {
      CellOutcome& cell = summary.cells[i];
      const double cell_t0 = WallMs();
      cell.result = spec.run(cell.ctx);
      cell.wall_ms = WallMs() - cell_t0;
      if (options.progress) {
        util::MutexLock lock(progress_mu);
        ++completed;
        const double elapsed_s = (WallMs() - t0) / 1000.0;
        const double eta_s = elapsed_s / static_cast<double>(completed) *
                             static_cast<double>(total - completed);
        std::fprintf(stderr,
                     "[%s] %zu/%zu cells (%s/%s rep %d) %.1fs elapsed, "
                     "eta %.0fs\n",
                     spec.figure.c_str(), completed, total,
                     cell.ctx.row_label.c_str(), cell.ctx.col_label.c_str(),
                     cell.ctx.rep, elapsed_s, eta_s);
      }
    });
  }
  pool.Wait();

  summary.executed = static_cast<int>(todo.size());
  summary.wall_ms = WallMs() - t0;
  return summary;
}

std::uint64_t DigestOutcomes(const std::vector<CellOutcome>& cells) {
  util::RollingHash h;
  for (const CellOutcome& cell : cells) {
    h.MixU64(cell.ctx.figure.size());
    h.MixBytes(cell.ctx.figure);
    h.MixU64(cell.ctx.row_label.size());
    h.MixBytes(cell.ctx.row_label);
    h.MixU64(cell.ctx.col_label.size());
    h.MixBytes(cell.ctx.col_label);
    h.MixI64(cell.ctx.rep);
    h.MixU64(cell.ctx.seed);
    for (const auto& [name, value] : cell.result.metrics) {
      h.MixBytes(name);
      h.MixDouble(value);
    }
    for (const auto& [name, values] : cell.result.samples) {
      h.MixBytes(name);
      h.MixU64(values.size());
      for (const double v : values) h.MixDouble(v);
    }
    for (const auto& [name, points] : cell.result.series) {
      h.MixBytes(name);
      h.MixU64(points.size());
      for (const auto& [t, v] : points) {
        h.MixDouble(t);
        h.MixDouble(v);
      }
    }
    for (const auto& [name, value] : cell.result.registry) {
      h.MixBytes(name);
      h.MixDouble(value);
    }
    for (const auto& [name, snap] : cell.result.timeseries) {
      h.MixBytes(name);
      h.MixI64(snap.kind);
      h.MixDouble(snap.window_s);
      h.MixU64(snap.points.size());
      for (const auto& [t, v] : snap.points) {
        h.MixDouble(t);
        h.MixDouble(v);
      }
    }
    for (const auto& [name, value] : cell.result.incidents) {
      h.MixBytes(name);
      h.MixDouble(value);
    }
  }
  return h.digest();
}

}  // namespace omcast::runner
