// Event-driven per-packet streaming simulator.
//
// The figure benches use StreamingLayer's per-outage accounting, which
// applies the CER rules to sequence ranges analytically. This module is the
// ground truth it is validated against: every packet is a simulator event
// that travels edge by edge down the overlay.
//
//   * the source emits packet n at t = n / packet_rate;
//   * a member receiving a packet forwards it to its *current* children,
//     one event per edge, delayed by the underlying network path;
//   * a failed member stops forwarding; its orphaned children re-attach
//     only after the session's rejoin_delay_s (set it to the paper's 15 s),
//     so the data-plane hole physically exists in the tree;
//   * each orphan runs the CER repair: stripe the hole across its recovery
//     group by (n mod 100), each stripe serving at its residual rate, and
//     repaired packets are forwarded downstream like normal traffic (the
//     ELN rule: descendants wait for upstream recovery);
//   * playback: packet n must arrive by emit(n) + buffer_s; every miss
//     costs 1/packet_rate seconds of stall;
//   * (optional) frame-dependency playback: packets form GOPs (reference +
//     dependents); a dependent frame that arrives on time without its
//     reference is a DECODE STALL, and each receiver's playback regime
//     (nominal / degraded / stalled) is tracked online with hysteresis
//     (PacketSimParams.frame_playback -- off by default, adds no RNG draws).
//
// Cost is O(members x packets), so use it for validation-scale overlays
// (hundreds of members, minutes of stream), not for the 14k-member sweeps.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/cer/eln.h"
#include "core/cer/group.h"
#include "core/cer/recovery.h"
#include "overlay/session.h"
#include "rand/rng.h"
#include "sim/fault_plane.h"
#include "util/stats.h"

namespace omcast::stream {

struct PacketSimParams {
  double packet_rate = 10.0;
  double buffer_s = 5.0;
  // Failure-detection time: recovery starts this long after the parent
  // died. The total outage (detection + rejoin) is the session's
  // rejoin_delay_s, which must be >= detect_s.
  double detect_s = 5.0;
  int recovery_group_size = 3;
  core::GroupSelection selection = core::GroupSelection::kMlc;
  core::RecoveryMode mode = core::RecoveryMode::kCooperative;
  double residual_lo_pkts = 0.0;
  double residual_hi_pkts = 9.0;

  // --- frame-dependency playback (degraded-regime model) -------------------
  // When on, packets form GOPs: seq % gop_size == 0 is a reference frame,
  // the rest of the GOP depends on it. A dependent frame that arrives by
  // its deadline but whose reference did not is a DECODE STALL -- distinct
  // from packet loss, and exactly what a rejoining member landing mid-GOP
  // suffers until the next reference. Each receiver's playback is judged in
  // regime_window_s windows and tracked through a nominal/degraded/stalled
  // regime machine with hysteresis. Enabling this adds NO RNG draws, so
  // fault schedules and protocol digests are unchanged when it is off.
  bool frame_playback = false;
  int gop_size = 10;
  // Startup grace: decode stalls whose deadline falls within this many
  // seconds of the member's first reception are absorbed (not counted, not
  // traced) -- a joiner is expected to stall until its first reference.
  double warmup_absorb_s = 2.0;
  // Judgment window length (also the tick period of the per-member chain).
  double regime_window_s = 1.0;
  // Hysteresis thresholds on the window's bad-frame fraction (losses plus
  // unabsorbed decode stalls). enter > exit keeps the regime from
  // flickering at a threshold.
  double degraded_enter = 0.25;
  double degraded_exit = 0.10;
  double stalled_enter = 0.75;
  double stalled_exit = 0.40;
};

// Aborts (util::Check) on nonsensical parameters: non-positive rates or
// buffer, negative detection time, empty recovery group, inverted residual
// range. Called by PacketLevelStream's constructor.
void ValidatePacketSimParams(const PacketSimParams& params);

class PacketLevelStream {
 public:
  // Installs hooks; construct before the measured phase.
  PacketLevelStream(overlay::Session& session, PacketSimParams params,
                    std::uint64_t seed);

  // Routes ELN control messages through a lossy plane (data packets keep
  // their reliable per-edge model; the chaos harness attacks the control
  // plane). The plane must outlive the run; nullptr restores reliability.
  void SetFaultPlane(sim::FaultPlane* fault_plane) {
    fault_plane_ = fault_plane;
  }

  // Begins emitting packets now, for `duration_s` of stream.
  void Start(double duration_s);

  // Computes starving ratios for members still alive (call after the run;
  // departures are finalized automatically).
  void FinalizeAliveMembers();

  // Starving-time ratio over finalized members that joined at/after t=0.
  const util::RunningStat& ratio_stat() const { return ratio_stat_; }

  long packets_emitted() const { return emitted_; }
  long deliveries() const { return deliveries_; }
  long repairs_scheduled() const { return repairs_; }
  long eln_notifications_sent() const { return eln_sent_; }
  // Times a recovery-group member died mid-repair and its remaining stripe
  // range was reassigned to a surviving member.
  long stripe_failovers() const { return stripe_failovers_; }
  // Repairs that started with fewer usable stripes than the configured
  // recovery_group_size (the group shrank; the stripes renormalize over the
  // survivors, possibly below full rate).
  long short_group_fallbacks() const { return short_group_fallbacks_; }

  // Distinct servers of repair stripes that still have work remaining, in
  // stripe-creation order (tests and the chaos harness use this to aim a
  // mid-repair kill).
  std::vector<overlay::NodeId> ActiveRepairServers() const;

  // The member's current ELN classification (Section 4.2): healthy,
  // upstream loss (wait for upstream repair) or parent failure (rejoin).
  // Members that have not received anything yet read as healthy.
  core::ElnTracker::Status ElnStatusOf(overlay::NodeId member) const;

  // --- frame-playback QoE (all zero unless params.frame_playback) ----------
  // Fraction of each finalized member's viewing time spent in a non-nominal
  // regime (degraded or stalled).
  const util::RunningStat& degraded_fraction_stat() const {
    return degraded_fraction_stat_;
  }
  // Latency of each completed degraded episode: time from leaving nominal
  // to returning to it (recovery-to-cadence).
  const util::RunningStat& recovery_latency_stat() const {
    return recovery_latency_stat_;
  }
  long decode_stalls() const { return decode_stalls_; }
  long regime_transitions() const { return regime_transitions_; }
  // Frames judged past their playback deadline that did not play (lost,
  // late, or decode-stalled): the numerator of the chaos harness's
  // late-frame rate time-series.
  long frames_late() const { return frames_late_; }
  // Members currently tracked in a non-nominal (degraded or stalled)
  // playback regime; the chaos harness samples it as a recovery-curve gauge.
  int degraded_receivers() const { return degraded_receivers_; }
  long dependency_resyncs() const { return dependency_resyncs_; }
  // Finalized-at-stream-end members still in the stalled regime: sessions
  // that never recovered. The reconnect-storm invariant pins this to zero.
  int permanently_stalled() const { return permanently_stalled_; }
  // Current regime of a tracked member (0 nominal / 1 degraded / 2
  // stalled); -1 when the member has no reception state.
  int PlaybackRegimeOf(overlay::NodeId member) const;

 private:
  // Online per-receiver playback state; judged window by window from a
  // self-perpetuating tick chain so regime transitions are traced at the
  // sim time they happen (historical timestamps would break the trace
  // validator's monotonicity invariant).
  struct Playback {
    int regime = 0;                  // 0 nominal, 1 degraded, 2 stalled
    double regime_since = 0.0;       // when the current regime was entered
    double degraded_since = -1.0;    // left nominal at; -1 when nominal
    double degraded_accum = 0.0;     // total non-nominal seconds so far
    bool synced = false;             // decoded an on-time reference yet
    bool last_ref_played = false;    // did the current GOP's reference play
    std::int64_t last_ref_gop = -1;  // GOP index of the last judged reference
    std::int64_t next_judge = 0;     // next sequence whose deadline to judge
    long desync_judged = 0;          // dependent frames judged while desynced
    long stalls_before_sync = 0;     // decode stalls absorbed before sync
    sim::EventId tick = sim::kInvalidEventId;
  };

  struct Reception {
    std::int64_t first_seq = 0;        // first packet this member expects
    std::vector<double> arrival;       // arrival[i]: seq first_seq+i; <0 none
    double started_at = 0.0;
    std::int64_t max_seen = -1;        // highest data sequence received
    core::ElnTracker tracker;          // loss classification (Section 4.2)
    Playback playback;                 // frame-dependency regime state
  };

  // One stripe of one repair: a recovery-group member serving the share of
  // the orphan's hole whose (seq mod 100) falls in [mod_lo, mod_hi). Each
  // stripe is a self-perpetuating event chain (ServeNext), serving one
  // packet at a time through its queue; killing the server mid-chain marks
  // the stripe dead and fails its remaining range over to a survivor.
  struct RepairStripe {
    overlay::NodeId server = overlay::kNoNode;
    overlay::NodeId orphan = overlay::kNoNode;
    long group_id = 0;          // repairs spawned together share an id
    double rate = 0.0;          // fraction of full stream rate
    double start = 0.0;         // when the server starts serving
    double next_free = 0.0;     // its serving queue
    double mod_lo = 0.0, mod_hi = 0.0;  // (seq mod 100) in [mod_lo, mod_hi)
    std::int64_t cursor = 0;    // next sequence to consider
    std::int64_t hole_end = 0;  // last sequence of the hole (inclusive)
    std::int64_t in_flight = -1;  // sequence being served; -1 when idle
    bool dead = false;          // server failed; range handed to a survivor
  };

  void Emit(std::int64_t seq);
  void Deliver(overlay::NodeId member, std::int64_t seq, double now);
  // An ELN for `seq` reaches `member` from its parent; classified and
  // propagated downstream.
  void DeliverEln(overlay::NodeId member, std::int64_t seq);
  // Sends freshly discovered hole notifications to the member's children.
  void NotifyChildren(overlay::NodeId member,
                      const std::vector<std::int64_t>& seqs);
  void OnDeparture(overlay::NodeId failed);
  // Advances stripe `index`'s chain: schedules the service of its next
  // in-deadline packet, or lets the chain end.
  void ServeNext(std::size_t index);
  void OnRepairServed(std::size_t index, std::int64_t seq);
  // The server of stripe `index` died with work remaining: reassign the
  // rest of its range to the surviving group stripe with the highest
  // residual rate (ties to the lowest index).
  void FailoverStripe(std::size_t index);
  void FinalizeMember(const overlay::Member& m, double end_time);
  Reception& ReceptionFor(overlay::NodeId member, double now);
  double ResidualFraction(overlay::NodeId id);
  // Judges every sequence whose playback deadline has passed since the
  // member's last window: on-time, lost, or decode-stalled (on time but
  // reference missed). Emits kDecodeStall / kDependencyResync and advances
  // the regime machine; reschedules itself one window later.
  void JudgeWindow(overlay::NodeId member);
  // Regime transition (with kPlaybackRegime emission) plus degraded-time
  // and recovery-latency accounting.
  void SetRegime(overlay::NodeId member, int regime);
  // Cancels the member's tick chain and folds its playback state into the
  // QoE aggregates (skipped for pre-populated / already-finalized members).
  void FinalizePlayback(const overlay::Member& m, Reception& rx,
                        double end_time);

  overlay::Session& session_;
  PacketSimParams params_;
  rnd::Rng rng_;
  // Point lookups keyed by member id; per-member finalization iterates the
  // session's alive list (a deterministic vector), never these tables.
  // omcast-lint: allow(unordered-iter)
  std::unordered_map<overlay::NodeId, Reception> rx_;
  // omcast-lint: allow(unordered-iter)
  std::unordered_set<overlay::NodeId> finalized_;
  std::vector<double> residual_fraction_;
  // Grows only (indices are captured by in-flight events); stripes whose
  // chains ended stay as inert records.
  std::vector<RepairStripe> repair_stripes_;
  util::RunningStat ratio_stat_;
  util::RunningStat degraded_fraction_stat_;
  util::RunningStat recovery_latency_stat_;
  sim::FaultPlane* fault_plane_ = nullptr;  // nullptr: reliable ELN delivery
  double stream_start_ = 0.0;
  double stream_end_ = 0.0;
  std::int64_t last_seq_ = 0;
  long emitted_ = 0;
  long deliveries_ = 0;
  long repairs_ = 0;
  long eln_sent_ = 0;
  long stripe_failovers_ = 0;
  long short_group_fallbacks_ = 0;
  long next_group_id_ = 0;
  long decode_stalls_ = 0;
  long regime_transitions_ = 0;
  long frames_late_ = 0;
  int degraded_receivers_ = 0;
  long dependency_resyncs_ = 0;
  int permanently_stalled_ = 0;
  bool started_ = false;
};

}  // namespace omcast::stream
