# Empty dependencies file for omcast_metrics.
# This may be replaced when dependencies are built.
