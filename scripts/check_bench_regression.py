#!/usr/bin/env python3
"""Diffs a fresh grid-bench results JSON against the committed BENCH_*
trajectory so CI catches silent regressions, not just crashes.

Three classes of check, strictest first:

  * gate metrics (--gate, repeatable; default the chaos health triad
    wedged_leases / reentries_pending / unrooted_members) must match the
    committed per-(row, col) aggregate mean EXACTLY -- these are small
    integers that the protocol guarantees, so any drift is a bug;

  * the headline metric's per-(row, col) aggregate mean must stay within
    --abs-tol OR --rel-tol of the committed value -- floating-point results
    diverge across libm versions, so exact comparison would be flaky across
    environments while a loose band still catches real QoE regressions;

  * every cell of the CURRENT run must carry a non-empty v3 "timeseries"
    block (each series with >= 1 point) and a non-empty "incidents" block --
    the flight recorder must not silently fall off the benches.

The grids must agree on figure, rows, cols, and reps; a renamed or dropped
row is a failure, not a skip.

Usage:
  check_bench_regression.py CURRENT.json COMMITTED.json \
      [--abs-tol 0.05] [--rel-tol 0.5] [--gate METRIC]...
"""

import argparse
import json
import pathlib
import sys

DEFAULT_GATES = ("wedged_leases", "reentries_pending", "unrooted_members")


def load(path):
    doc = json.loads(path.read_text())
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: top level is not an object")
    return doc


def aggregate_means(doc, metric):
    """(row, col) -> mean for one metric, from the aggregates array."""
    out = {}
    for agg in doc.get("aggregates", []):
        if isinstance(agg, dict) and agg.get("metric") == metric:
            out[(agg["row"], agg["col"])] = agg["mean"]
    return out


def check_axes(current, committed, errors):
    for field in ("figure", "rows", "cols", "reps"):
        if current.get(field) != committed.get(field):
            errors.append(
                f"grid axis mismatch: {field} is {current.get(field)!r}, "
                f"committed {committed.get(field)!r}"
            )


def check_gates(current, committed, gates, errors):
    for metric in gates:
        cur = aggregate_means(current, metric)
        ref = aggregate_means(committed, metric)
        if not ref:
            continue  # the committed grid never recorded this gate
        for key, ref_mean in sorted(ref.items()):
            if key not in cur:
                errors.append(f"gate {metric} {key}: missing from current run")
            elif cur[key] != ref_mean:
                errors.append(
                    f"gate {metric} {key}: {cur[key]} != committed {ref_mean}"
                )


def check_headline(current, committed, abs_tol, rel_tol, errors):
    metric = committed.get("headline_metric")
    if not metric:
        return
    cur = aggregate_means(current, metric)
    ref = aggregate_means(committed, metric)
    for key, ref_mean in sorted(ref.items()):
        if key not in cur:
            errors.append(f"headline {metric} {key}: missing from current run")
            continue
        diff = abs(cur[key] - ref_mean)
        if diff <= abs_tol or diff <= rel_tol * abs(ref_mean):
            continue
        errors.append(
            f"headline {metric} {key}: {cur[key]:.6g} drifted from committed "
            f"{ref_mean:.6g} (|diff| {diff:.6g} > abs {abs_tol:g} and > "
            f"{rel_tol:g} * |ref|)"
        )


def check_flight_recorder(current, errors):
    for i, cell in enumerate(current.get("cells", [])):
        if not isinstance(cell, dict):
            continue
        where = f"cells[{i}] ({cell.get('row')}/{cell.get('col')})"
        series = cell.get("timeseries")
        if not isinstance(series, dict) or not series:
            errors.append(f"{where}: no timeseries block")
        else:
            for name, entry in sorted(series.items()):
                if not entry.get("points"):
                    errors.append(f"{where}: timeseries '{name}' is empty")
        if not cell.get("incidents"):
            errors.append(f"{where}: no incidents block")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument("committed", type=pathlib.Path)
    parser.add_argument("--abs-tol", type=float, default=0.05)
    parser.add_argument("--rel-tol", type=float, default=0.5)
    parser.add_argument(
        "--gate",
        action="append",
        default=None,
        help=f"exact-match metric (repeatable; default {DEFAULT_GATES})",
    )
    args = parser.parse_args(argv)
    gates = tuple(args.gate) if args.gate else DEFAULT_GATES

    try:
        current = load(args.current)
        committed = load(args.committed)
    except (OSError, json.JSONDecodeError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1

    errors = []
    check_axes(current, committed, errors)
    if not errors:
        check_gates(current, committed, gates, errors)
        check_headline(current, committed, args.abs_tol, args.rel_tol, errors)
        check_flight_recorder(current, errors)

    for line in errors:
        print(f"REGRESSION {args.current}: {line}", file=sys.stderr)
    if not errors:
        print(
            f"{args.current}: matches {args.committed} "
            f"(gates {', '.join(gates)} exact; headline "
            f"'{committed.get('headline_metric')}' within tolerance; "
            f"flight recorder present in all {len(current.get('cells', []))} "
            "cells)"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
