// Fixture [seed-narrowing]: truncating a 64-bit seed/hash collapses
// distinct cells onto one RNG stream; keep every bit end to end.
#include <cstdint>

namespace fixture {

std::uint32_t TruncatedSeed(std::uint64_t seed) {
  return static_cast<std::uint32_t>(seed >> 32);  // expect(seed-narrowing)
}

unsigned MixHash(std::uint64_t hash) {
  const auto low = static_cast<unsigned>(hash);  // expect(seed-narrowing)
  return low;
}

// Negative: 64-bit-preserving derivation is clean.
std::uint64_t DerivedSeed(std::uint64_t seed, int cell) {
  return seed + 1000ull * static_cast<std::uint64_t>(cell + 1);
}

// Negative: a narrowing cast with no seed/hash context is another rule's
// problem (here: none).
int Clamp(long long v) {
  return static_cast<int>(v);
}

}  // namespace fixture
