// Unit tests for the experiment-orchestration engine (src/runner): the
// work-stealing thread pool's completion/shutdown/exception semantics, the
// hash-based per-cell seed derivation, serial-vs-parallel grid determinism
// on synthetic cells, resumable-manifest skip logic, CI aggregation math
// against util::RunningStat, and the shared-topology cache.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>

#include "net/topology.h"
#include "rand/rng.h"
#include "runner/results.h"
#include "runner/runner.h"
#include "runner/thread_pool.h"
#include "runner/topology_cache.h"
#include "util/stats.h"

namespace omcast {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryTask) {
  runner::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i)
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.Wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ZeroThreadsSelectsHardwareConcurrency) {
  runner::ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, IdleWorkersStealFromABlockedWorkersQueue) {
  runner::ThreadPool pool(2);
  std::atomic<int> count{0};
  std::promise<void> go_promise;
  std::shared_future<void> go = go_promise.get_future().share();
  std::promise<void> release_promise;
  std::shared_future<void> release = release_promise.get_future().share();

  // 50 gated quick tasks round-robin across both deques, then a blocker
  // lands at the BACK of queue 0. Tasks hold until `go`, so workers consume
  // at most one task each during submission; once `go` fires, worker 0's
  // LIFO pop reaches the blocker (newest in its deque) after at most one
  // quick task and parks on `release`. Queue 0's remaining quick tasks can
  // then only finish by being stolen, so count==50 certifies a steal.
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&count, go] {
      go.wait();
      count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.Submit([go, release] {
    go.wait();
    release.wait();
  });
  go_promise.set_value();
  while (count.load(std::memory_order_relaxed) < 50)
    std::this_thread::yield();
  EXPECT_GE(pool.steals(), 1) << "no task was ever stolen across deques";
  release_promise.set_value();
  pool.Wait();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, WaitRethrowsTheLowestIndexException) {
  runner::ThreadPool pool(4);
  for (int i = 0; i < 20; ++i) {
    pool.Submit([i] {
      if (i == 7 || i == 13) throw std::runtime_error("boom" + std::to_string(i));
    });
  }
  try {
    pool.Wait();
    FAIL() << "Wait() swallowed the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom7");
  }
  // The error set is cleared: a subsequent Wait() succeeds.
  pool.Wait();
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    runner::ThreadPool pool(2);
    for (int i = 0; i < 100; ++i)
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    // No Wait(): shutdown must still run everything before joining.
  }
  EXPECT_EQ(count.load(), 100);
}

// ---------------------------------------------------------------------------
// CellSeed
// ---------------------------------------------------------------------------

TEST(CellSeed, DependsOnEveryCoordinate) {
  const std::uint64_t base = runner::CellSeed(1, "fig", "2000", "ROST", 0);
  EXPECT_EQ(base, runner::CellSeed(1, "fig", "2000", "ROST", 0));
  EXPECT_NE(base, runner::CellSeed(2, "fig", "2000", "ROST", 0));
  EXPECT_NE(base, runner::CellSeed(1, "gif", "2000", "ROST", 0));
  EXPECT_NE(base, runner::CellSeed(1, "fig", "5000", "ROST", 0));
  EXPECT_NE(base, runner::CellSeed(1, "fig", "2000", "min-depth", 0));
  EXPECT_NE(base, runner::CellSeed(1, "fig", "2000", "ROST", 1));
}

TEST(CellSeed, LengthPrefixingPreventsLabelGluingCollisions) {
  EXPECT_NE(runner::CellSeed(1, "f", "ab", "c", 0),
            runner::CellSeed(1, "f", "a", "bc", 0));
  EXPECT_NE(runner::CellSeed(1, "fa", "b", "c", 0),
            runner::CellSeed(1, "f", "ab", "c", 0));
}

TEST(CellSeed, ConsecutiveRepsAreNotConsecutiveSeeds) {
  // The whole point over `seed + rep`: neighbouring cells must not sit on
  // trivially related random streams.
  const std::uint64_t s0 = runner::CellSeed(1, "fig", "2000", "ROST", 0);
  const std::uint64_t s1 = runner::CellSeed(1, "fig", "2000", "ROST", 1);
  EXPECT_NE(s1, s0 + 1);
}

// ---------------------------------------------------------------------------
// RunGrid
// ---------------------------------------------------------------------------

// A synthetic cell: burns a seeded RNG so results depend only on the seed.
runner::CellResult SyntheticCell(const runner::CellContext& ctx) {
  rnd::Rng rng(ctx.seed);
  runner::CellResult out;
  out.metrics["value"] = rng.Uniform(0.0, 1.0);
  out.metrics["count"] = static_cast<double>(rng.UniformInt(0, 1000));
  out.samples["draws"] = {rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)};
  out.series["walk"] = {{0.0, rng.Uniform(0.0, 1.0)},
                        {1.0, rng.Uniform(0.0, 1.0)}};
  return out;
}

runner::GridSpec SyntheticSpec(int reps = 3) {
  runner::GridSpec spec;
  spec.figure = "test_grid";
  spec.title = "synthetic";
  spec.row_header = "x";
  spec.rows = {"10", "20", "30"};
  spec.cols = {"alpha", "beta"};
  spec.reps = reps;
  spec.headline_metric = "value";
  spec.run = SyntheticCell;
  return spec;
}

TEST(RunGrid, OutcomesAreInGridOrderWithDerivedSeeds) {
  runner::RunnerOptions options;
  options.threads = 2;
  options.base_seed = 7;
  const runner::GridRunSummary summary =
      runner::RunGrid(SyntheticSpec(2), options);
  ASSERT_EQ(summary.cells.size(), 3u * 2u * 2u);
  EXPECT_EQ(summary.executed, 12);
  EXPECT_EQ(summary.resumed, 0);
  std::size_t index = 0;
  for (const char* row : {"10", "20", "30"}) {
    for (const char* col : {"alpha", "beta"}) {
      for (int rep = 0; rep < 2; ++rep, ++index) {
        const runner::CellContext& ctx = summary.cells[index].ctx;
        EXPECT_EQ(ctx.row_label, row);
        EXPECT_EQ(ctx.col_label, col);
        EXPECT_EQ(ctx.rep, rep);
        EXPECT_EQ(ctx.seed,
                  runner::CellSeed(7, "test_grid", row, col, rep));
      }
    }
  }
}

TEST(RunGrid, SerialAndParallelRunsAreBitIdentical) {
  runner::RunnerOptions serial;
  serial.threads = 1;
  runner::RunnerOptions parallel;
  parallel.threads = 4;
  const auto a = runner::RunGrid(SyntheticSpec(), serial);
  const auto b = runner::RunGrid(SyntheticSpec(), parallel);
  EXPECT_EQ(runner::DigestOutcomes(a.cells), runner::DigestOutcomes(b.cells));
}

TEST(RunGrid, CellExceptionPropagatesToTheCaller) {
  runner::GridSpec spec = SyntheticSpec(1);
  spec.run = [](const runner::CellContext& ctx) -> runner::CellResult {
    if (ctx.row_label == "20") throw std::runtime_error("cell failed");
    return runner::CellResult{};
  };
  runner::RunnerOptions options;
  options.threads = 2;
  EXPECT_THROW(runner::RunGrid(spec, options), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Resume
// ---------------------------------------------------------------------------

runner::RunInfo TestRunInfo() {
  runner::RunInfo info;
  info.scale = "test";
  info.git_sha = "deadbeef";
  info.base_seed = 1;
  return info;
}

TEST(Resume, MatchingCellsAreSkippedAndResultsBitIdentical) {
  const runner::GridSpec spec = SyntheticSpec();
  runner::RunnerOptions options;
  options.threads = 2;
  const auto first = runner::RunGrid(spec, options);
  const runner::ResultsSink sink(spec, TestRunInfo(), first);
  const runner::Json doc = sink.ToJson();

  runner::RunnerOptions resumed = options;
  resumed.resume = &doc;
  const auto second = runner::RunGrid(spec, resumed);
  EXPECT_EQ(second.executed, 0);
  EXPECT_EQ(second.resumed, static_cast<int>(spec.cell_count()));
  EXPECT_EQ(runner::DigestOutcomes(first.cells),
            runner::DigestOutcomes(second.cells));
}

TEST(Resume, SurvivesAJsonRoundTrip) {
  const runner::GridSpec spec = SyntheticSpec();
  runner::RunnerOptions options;
  options.threads = 2;
  const auto first = runner::RunGrid(spec, options);
  const runner::ResultsSink sink(spec, TestRunInfo(), first);
  std::string error;
  const runner::Json doc =
      runner::Json::Parse(sink.ToJson().Dump(/*indent=*/1), &error);
  ASSERT_TRUE(doc.is_object()) << error;

  runner::RunnerOptions resumed = options;
  resumed.resume = &doc;
  const auto second = runner::RunGrid(spec, resumed);
  EXPECT_EQ(second.executed, 0);
  EXPECT_EQ(runner::DigestOutcomes(first.cells),
            runner::DigestOutcomes(second.cells));
}

TEST(Resume, SeedMismatchForcesRerun) {
  const runner::GridSpec spec = SyntheticSpec();
  runner::RunnerOptions options;
  options.threads = 2;
  options.base_seed = 1;
  const auto first = runner::RunGrid(spec, options);
  const runner::ResultsSink sink(spec, TestRunInfo(), first);
  const runner::Json doc = sink.ToJson();

  // A different base seed derives different cell seeds: the stale cache
  // must not satisfy any cell.
  runner::RunnerOptions other = options;
  other.base_seed = 2;
  other.resume = &doc;
  const auto second = runner::RunGrid(spec, other);
  EXPECT_EQ(second.resumed, 0);
  EXPECT_EQ(second.executed, static_cast<int>(spec.cell_count()));
}

TEST(Resume, WrongFigureIsIgnored) {
  const runner::GridSpec spec = SyntheticSpec();
  runner::RunnerOptions options;
  options.threads = 1;
  const auto first = runner::RunGrid(spec, options);
  const runner::ResultsSink sink(spec, TestRunInfo(), first);
  const runner::Json doc = sink.ToJson();

  runner::GridSpec renamed = spec;
  renamed.figure = "other_figure";
  runner::RunnerOptions resumed = options;
  resumed.resume = &doc;
  const auto second = runner::RunGrid(renamed, resumed);
  EXPECT_EQ(second.resumed, 0);
}

// ---------------------------------------------------------------------------
// ResultsSink aggregation
// ---------------------------------------------------------------------------

TEST(ResultsSink, AggregationMatchesRunningStatOnKnownInputs) {
  runner::GridSpec spec = SyntheticSpec(4);
  // Deterministic, hand-checkable values: metric = f(row, col, rep).
  spec.run = [](const runner::CellContext& ctx) {
    runner::CellResult out;
    out.metrics["value"] = static_cast<double>(ctx.row) * 10.0 +
                           static_cast<double>(ctx.col) +
                           static_cast<double>(ctx.rep) * 0.25;
    return out;
  };
  runner::RunnerOptions options;
  options.threads = 3;
  const runner::ResultsSink sink(spec, TestRunInfo(),
                                 runner::RunGrid(spec, options));
  for (std::size_t row = 0; row < spec.rows.size(); ++row) {
    for (std::size_t col = 0; col < spec.cols.size(); ++col) {
      util::RunningStat expected;
      for (int rep = 0; rep < 4; ++rep)
        expected.Add(static_cast<double>(row) * 10.0 +
                     static_cast<double>(col) +
                     static_cast<double>(rep) * 0.25);
      const util::RunningStat got = sink.Stat(row, col, "value");
      EXPECT_EQ(got.count(), expected.count());
      EXPECT_DOUBLE_EQ(got.mean(), expected.mean());
      EXPECT_DOUBLE_EQ(got.stddev(), expected.stddev());
      EXPECT_DOUBLE_EQ(got.ci95_half_width(), expected.ci95_half_width());
    }
  }
  // The JSON aggregates carry the same numbers.
  const runner::Json doc = sink.ToJson();
  const runner::Json* aggregates = doc.Find("aggregates");
  ASSERT_NE(aggregates, nullptr);
  bool found = false;
  for (const runner::Json& agg : aggregates->AsArray()) {
    if (agg.Find("row")->AsString() == "20" &&
        agg.Find("col")->AsString() == "beta" &&
        agg.Find("metric")->AsString() == "value") {
      found = true;
      EXPECT_EQ(agg.Find("n")->AsUint(), 4u);
      EXPECT_DOUBLE_EQ(agg.Find("mean")->AsDouble(),
                       sink.Stat(1, 1, "value").mean());
      EXPECT_DOUBLE_EQ(agg.Find("ci95")->AsDouble(),
                       sink.Stat(1, 1, "value").ci95_half_width());
    }
  }
  EXPECT_TRUE(found);
}

TEST(ResultsSink, PooledSamplesConcatenateInRepOrder) {
  runner::GridSpec spec = SyntheticSpec(3);
  spec.run = [](const runner::CellContext& ctx) {
    runner::CellResult out;
    out.samples["s"] = {static_cast<double>(ctx.rep),
                        static_cast<double>(ctx.rep) + 0.5};
    return out;
  };
  runner::RunnerOptions options;
  options.threads = 2;
  const runner::ResultsSink sink(spec, TestRunInfo(),
                                 runner::RunGrid(spec, options));
  const std::vector<double> pooled = sink.PooledSamples(0, 0, "s");
  EXPECT_EQ(pooled, (std::vector<double>{0.0, 0.5, 1.0, 1.5, 2.0, 2.5}));
}

TEST(ResultsSink, MissingMetricShrinksN) {
  runner::GridSpec spec = SyntheticSpec(3);
  spec.run = [](const runner::CellContext& ctx) {
    runner::CellResult out;
    if (ctx.rep != 1) out.metrics["sometimes"] = 1.0;
    return out;
  };
  runner::RunnerOptions options;
  options.threads = 1;
  const runner::ResultsSink sink(spec, TestRunInfo(),
                                 runner::RunGrid(spec, options));
  EXPECT_EQ(sink.Stat(0, 0, "sometimes").count(), 2u);
  EXPECT_EQ(sink.Stat(0, 0, "absent").count(), 0u);
}

// ---------------------------------------------------------------------------
// Shared topology cache
// ---------------------------------------------------------------------------

TEST(TopologyCache, SameKeyReturnsTheSameInstance) {
  const net::TopologyParams params = net::TinyTopologyParams();
  const net::Topology& a = runner::SharedTopology(params, 42);
  const net::Topology& b = runner::SharedTopology(params, 42);
  EXPECT_EQ(&a, &b) << "cache rebuilt an identical topology";
}

TEST(TopologyCache, DifferentSeedOrParamsBuildDistinctInstances) {
  const net::TopologyParams params = net::TinyTopologyParams();
  const net::Topology& a = runner::SharedTopology(params, 42);
  const net::Topology& b = runner::SharedTopology(params, 43);
  EXPECT_NE(&a, &b);
  net::TopologyParams bigger = params;
  bigger.nodes_per_stub_domain += 1;
  const net::Topology& c = runner::SharedTopology(bigger, 42);
  EXPECT_NE(&a, &c);
  EXPECT_GT(c.num_stub_nodes(), a.num_stub_nodes());
}

}  // namespace
}  // namespace omcast
