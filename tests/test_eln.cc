#include "core/cer/eln.h"

#include <gtest/gtest.h>

namespace omcast::core {
namespace {

TEST(Eln, HealthyOnContiguousStream) {
  ElnTracker t;
  for (int i = 0; i < 20; ++i) t.OnData(i);
  EXPECT_EQ(t.status(), ElnTracker::Status::kHealthy);
  EXPECT_EQ(t.frontier(), 19);
}

TEST(Eln, OutOfOrderWithinThresholdStaysHealthy) {
  ElnTracker t(3);
  t.OnData(0);
  t.OnData(2);  // gap of 1 (seq 1 missing): 2 - 0 = 2 <= 3
  EXPECT_EQ(t.status(), ElnTracker::Status::kHealthy);
  t.OnData(1);
  EXPECT_EQ(t.frontier(), 2);
  EXPECT_EQ(t.status(), ElnTracker::Status::kHealthy);
}

TEST(Eln, UnaccountedGapBeyondThresholdIsParentFailure) {
  ElnTracker t(3);
  for (int i = 0; i <= 5; ++i) t.OnData(i);
  t.OnData(10);  // 6..9 unaccounted, gap 10-5=5 > 3
  EXPECT_EQ(t.status(), ElnTracker::Status::kParentFailure);
}

TEST(Eln, ElnCoveredGapIsUpstreamLossNotFailure) {
  ElnTracker t(3);
  for (int i = 0; i <= 5; ++i) t.OnData(i);
  for (int i = 6; i <= 9; ++i) t.OnEln(i);  // parent announces it lacks 6-9
  t.OnData(10);
  EXPECT_EQ(t.frontier(), 10);
  EXPECT_EQ(t.status(), ElnTracker::Status::kUpstreamLoss);
  EXPECT_EQ(t.outstanding_eln_holes(), 4u);
}

TEST(Eln, RepairArrivalsClearUpstreamLoss) {
  ElnTracker t(3);
  t.OnData(0);
  t.OnEln(1);
  t.OnData(2);
  EXPECT_EQ(t.status(), ElnTracker::Status::kUpstreamLoss);
  t.OnData(1);  // upstream recovery repaired the hole
  EXPECT_EQ(t.status(), ElnTracker::Status::kHealthy);
  EXPECT_EQ(t.outstanding_eln_holes(), 0u);
}

TEST(Eln, ForwardNotificationsPropagateOnce) {
  ElnTracker t(3);
  t.OnData(0);
  t.OnEln(1);
  t.OnEln(2);
  const auto fwd = t.TakeForwardNotifications();
  EXPECT_EQ(fwd, (std::vector<std::int64_t>{1, 2}));
  EXPECT_TRUE(t.TakeForwardNotifications().empty());  // drained
  t.OnEln(1);  // duplicate ELN is not re-forwarded
  EXPECT_TRUE(t.TakeForwardNotifications().empty());
}

TEST(Eln, DuplicateDataIsIdempotent) {
  ElnTracker t;
  t.OnData(0);
  t.OnData(0);
  t.OnData(1);
  t.OnData(0);
  EXPECT_EQ(t.frontier(), 1);
  EXPECT_EQ(t.status(), ElnTracker::Status::kHealthy);
}

TEST(Eln, MixedDataAndElnAdvanceFrontierTogether) {
  ElnTracker t(3);
  t.OnData(0);
  t.OnEln(1);
  t.OnData(2);
  t.OnEln(3);
  EXPECT_EQ(t.frontier(), 3);
  // Still upstream-loss until 1 and 3 are repaired.
  t.OnData(1);
  EXPECT_EQ(t.status(), ElnTracker::Status::kUpstreamLoss);
  t.OnData(3);
  EXPECT_EQ(t.status(), ElnTracker::Status::kHealthy);
}

TEST(Eln, ParentFailureDetectionMatchesPaperThreshold) {
  // The paper: "sequence gap > 3" between data+ELN triggers the rejoin.
  ElnTracker t(3);
  t.OnData(0);
  t.OnData(4);  // gap exactly 4-0 = 4 > 3? unaccounted 1,2,3; max-frontier=4
  EXPECT_EQ(t.status(), ElnTracker::Status::kParentFailure);
  ElnTracker u(3);
  u.OnData(0);
  u.OnData(3);  // max - frontier = 3, not > 3
  EXPECT_NE(u.status(), ElnTracker::Status::kParentFailure);
}

TEST(ElnDeath, NegativeSequenceRejected) {
  ElnTracker t;
  EXPECT_DEATH(t.OnData(-1), "non-negative");
}

}  // namespace
}  // namespace omcast::core
