#include "stream/streaming.h"

#include <algorithm>

#include "util/check.h"

namespace omcast::stream {

using overlay::Member;
using overlay::NodeId;
using overlay::Session;

StreamingLayer::StreamingLayer(Session& session, StreamParams params,
                               std::uint64_t seed)
    : session_(session), params_(params), rng_(seed) {
  util::Check(params_.recovery_group_size >= 1,
              "recovery group needs at least one member");
  session_.hooks().AddOnDeparture([this](NodeId failed) { OnDeparture(failed); });
  session_.hooks().AddOnMemberDeparted(
      [this](const Member& m) { OnMemberDeparted(m); });
}

void StreamingLayer::SetMeasurementWindow(double begin_s, double end_s) {
  util::Check(begin_s < end_s, "empty measurement window");
  window_begin_ = begin_s;
  window_end_ = end_s;
  window_set_ = true;
}

double StreamingLayer::ResidualFraction(NodeId id) {
  if (residual_fraction_.size() <= static_cast<std::size_t>(id))
    residual_fraction_.resize(static_cast<std::size_t>(id) + 1, -1.0);
  double& f = residual_fraction_[static_cast<std::size_t>(id)];
  if (f < 0.0)
    f = rng_.Uniform(params_.residual_lo_pkts, params_.residual_hi_pkts) /
        params_.packet_rate;
  return f;
}

void StreamingLayer::AddStarving(NodeId id, double stall_s) {
  if (starving_s_.size() <= static_cast<std::size_t>(id))
    starving_s_.resize(static_cast<std::size_t>(id) + 1, 0.0);
  starving_s_[static_cast<std::size_t>(id)] += stall_s;
}

void StreamingLayer::OnDeparture(NodeId failed) {
  overlay::Tree& tree = session_.tree();
  const sim::Time now = session_.simulator().now();
  // Each orphaned child runs the recovery protocol; its whole subtree
  // inherits the resulting stall (ELN suppresses duplicate recoveries).
  for (const NodeId orphan : tree.ChildrenOf(failed)) {
    std::vector<NodeId> group = core::SelectRecoveryGroup(
        session_, orphan, params_.recovery_group_size, params_.selection);

    core::OutageSpec spec;
    spec.detect_s = params_.detect_s;
    spec.rejoin_s = params_.rejoin_s;
    spec.buffer_s = params_.buffer_s;
    spec.packet_rate = params_.packet_rate;
    spec.mode = params_.mode;
    NodeId prev = orphan;
    for (NodeId g : group) {
      core::RecoverySource src;
      // A recovery node disrupted by the same failure has no data: NACK.
      src.usable = tree.Alive(g) && tree.InTree(g) &&
                   !tree.IsInSubtreeOf(g, failed) && tree.IsRooted(g);
      src.rate_fraction = src.usable ? ResidualFraction(g) : 0.0;
      src.hop_latency_s = session_.DelayMs(prev, g) / 1000.0;
      spec.chain.push_back(src);
      prev = g;
    }

    const core::OutageResult outage = core::SimulateOutage(spec);
    ++outages_;
    rate_stat_.Add(outage.aggregate_rate);
    outage_starving_stat_.Add(outage.starving_s);
    if (outage.packets_lost == 0) ++fully_recovered_;
    if (outage.starving_s <= 0.0) continue;

    const auto charge = [&](NodeId member) {
      if (!tree.Alive(member)) return;
      const Member& mm = tree.Get(member);
      // A member cannot starve past its own departure.
      const double remaining = mm.join_time + mm.lifetime - now;
      AddStarving(member, std::min(outage.starving_s, std::max(0.0, remaining)));
    };
    charge(orphan);
    tree.ForEachDescendant(orphan, charge);
  }
}

void StreamingLayer::OnMemberDeparted(const Member& m) {
  if (!window_set_) return;
  const sim::Time now = session_.simulator().now();
  if (now < window_begin_ || now > window_end_) return;
  if (m.join_time < 0.0) return;  // prepopulated: no full playback history
  const double view_time = m.lifetime - params_.buffer_s;
  if (view_time <= 0.0) return;  // departed before playback began
  double stall = 0.0;
  if (static_cast<std::size_t>(m.id) < starving_s_.size())
    stall = starving_s_[static_cast<std::size_t>(m.id)];
  const double ratio = std::min(1.0, stall / view_time);
  ratio_stat_.Add(ratio);
  ratio_samples_.push_back(ratio);
}

}  // namespace omcast::stream
