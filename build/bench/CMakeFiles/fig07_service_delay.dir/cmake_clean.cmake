file(REMOVE_RECURSE
  "CMakeFiles/fig07_service_delay.dir/fig07_service_delay.cc.o"
  "CMakeFiles/fig07_service_delay.dir/fig07_service_delay.cc.o.d"
  "fig07_service_delay"
  "fig07_service_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_service_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
