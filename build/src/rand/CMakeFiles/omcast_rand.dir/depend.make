# Empty dependencies file for omcast_rand.
# This may be replaced when dependencies are built.
