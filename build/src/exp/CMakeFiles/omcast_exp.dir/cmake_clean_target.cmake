file(REMOVE_RECURSE
  "libomcast_exp.a"
)
