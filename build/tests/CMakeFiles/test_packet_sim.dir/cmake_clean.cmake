file(REMOVE_RECURSE
  "CMakeFiles/test_packet_sim.dir/test_packet_sim.cc.o"
  "CMakeFiles/test_packet_sim.dir/test_packet_sim.cc.o.d"
  "test_packet_sim"
  "test_packet_sim.pdb"
  "test_packet_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
