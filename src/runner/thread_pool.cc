#include "runner/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace omcast::runner {

ThreadPool::ThreadPool(int num_threads) {
  std::size_t n = num_threads > 0
                      ? static_cast<std::size_t>(num_threads)
                      : static_cast<std::size_t>(
                            std::max(1u, std::thread::hardware_concurrency()));
  {
    // No worker exists yet, but the analysis (rightly) has no notion of
    // "before concurrency starts", so take the lock for the guarded writes.
    util::MutexLock lock(mu_);
    queues_.resize(n);
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { WorkerLoop(i); });
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  util::Check(task != nullptr, "ThreadPool::Submit: null task");
  {
    util::MutexLock lock(mu_);
    util::Check(!stop_, "ThreadPool::Submit after shutdown");
    queues_[next_queue_].push_back(Task{next_index_++, std::move(task)});
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++in_flight_;
  }
  work_cv_.NotifyOne();
}

bool ThreadPool::NextTask(std::size_t self, Task& out) {
  if (!queues_[self].empty()) {
    out = std::move(queues_[self].back());
    queues_[self].pop_back();
    return true;
  }
  // Steal from the deepest other deque: drains backlogs first and keeps the
  // steal count low when queues are short.
  std::size_t victim = queues_.size();
  std::size_t best_depth = 0;
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (i == self) continue;
    if (queues_[i].size() > best_depth) {
      best_depth = queues_[i].size();
      victim = i;
    }
  }
  if (victim == queues_.size()) return false;
  out = std::move(queues_[victim].front());
  queues_[victim].pop_front();
  ++steals_;
  return true;
}

void ThreadPool::WorkerLoop(std::size_t self) {
  // Manual Lock/Unlock instead of a scoped lock: the loop drops the mutex
  // around each task body. The analysis checks the calls stay balanced on
  // every path.
  mu_.Lock();
  while (true) {
    Task task;
    if (NextTask(self, task)) {
      mu_.Unlock();
      std::exception_ptr error;
      try {
        task.fn();
      } catch (...) {
        error = std::current_exception();
      }
      mu_.Lock();
      if (error) errors_.emplace_back(task.index, error);
      if (--in_flight_ == 0) done_cv_.NotifyAll();
      continue;
    }
    // The destructor drains every queued task before workers exit: tasks
    // are only abandoned if the process dies, never by shutdown ordering.
    if (stop_) break;
    work_cv_.Wait(mu_);
  }
  mu_.Unlock();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    util::MutexLock lock(mu_);
    while (in_flight_ != 0) done_cv_.Wait(mu_);
    if (errors_.empty()) return;
    auto first = std::min_element(
        errors_.begin(), errors_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    error = first->second;
    errors_.clear();
  }
  std::rethrow_exception(error);
}

long ThreadPool::steals() const {
  util::MutexLock lock(mu_);
  return steals_;
}

}  // namespace omcast::runner
