// Relaxed bandwidth-ordered (BO) and time-ordered (TO) algorithms
// (paper Section 5, algorithms (3) and (4)).
//
// Both assume a central administrator with global topology knowledge. On
// every join/rejoin the new member scans the tree from the high layers to
// the low ones; if it outranks an incumbent (higher bandwidth for BO, higher
// age for TO) it *replaces* that node: the incumbent is evicted and forced
// to rejoin, and the replacement adopts the incumbent's children up to its
// capacity (overflow children stay with the evicted node and rejoin with
// it -- "possibly together with some of its children"). If no incumbent can
// be replaced at a layer, a spare-capacity slot at the layer above is used.
// This yields ordering between parents and children but not across a layer,
// which is exactly the paper's "relaxed" weakening of the strict BO/TO
// trees whose recursive reshuffles would be prohibitively expensive.
//
// Evictions and adoptions are charged to the protocol-overhead metric
// (reconnections); failure rejoins are not.
#pragma once

#include "overlay/session.h"

namespace omcast::proto {

class RelaxedOrderedProtocol : public overlay::Protocol {
 public:
  bool TryAttach(overlay::Session& session, overlay::NodeId id) override;

 protected:
  // True if `joining` strictly outranks `incumbent` under this ordering
  // (bandwidth for BO, age for TO).
  virtual bool Outranks(const overlay::Member& joining,
                        const overlay::Member& incumbent) const = 0;

  // Strict weak order ranking members "strongest first"; used both to pick
  // the weakest incumbent of a layer to replace and to decide which of the
  // evicted node's children the replacement keeps.
  virtual bool RanksHigher(const overlay::Member& a,
                           const overlay::Member& b) const = 0;

 private:
  // Places `id` once: returns the evicted member (to be re-placed by the
  // caller), kNoNode if a spare slot was used, or the not-placed sentinel.
  overlay::NodeId PlaceOne(overlay::Session& session, overlay::NodeId id);
  void Replace(overlay::Session& session, overlay::NodeId incumbent,
               overlay::NodeId joining);

  // Single-pass scan state, reused across placements to stay allocation
  // free on the hot path (one global scan per join at 14k members).
  static constexpr int kCandidatesPerLayer = 8;
  struct LayerSummary {
    overlay::NodeId weakest[kCandidatesPerLayer];  // outranked, weakest first
    int weakest_count = 0;
    overlay::NodeId spare[kCandidatesPerLayer];  // reservoir of spare slots
    int spare_count = 0;
    long spare_seen = 0;
  };
  std::vector<LayerSummary> layer_summaries_;
  std::vector<overlay::NodeId> scan_stack_;
};

class RelaxedBandwidthOrderedProtocol final : public RelaxedOrderedProtocol {
 public:
  std::string name() const override { return "relaxed-bw-ordered"; }

 protected:
  bool Outranks(const overlay::Member& joining,
                const overlay::Member& incumbent) const override;
  bool RanksHigher(const overlay::Member& a,
                   const overlay::Member& b) const override;
};

class RelaxedTimeOrderedProtocol final : public RelaxedOrderedProtocol {
 public:
  std::string name() const override { return "relaxed-time-ordered"; }

 protected:
  bool Outranks(const overlay::Member& joining,
                const overlay::Member& incumbent) const override;
  bool RanksHigher(const overlay::Member& a,
                   const overlay::Member& b) const override;
};

}  // namespace omcast::proto
