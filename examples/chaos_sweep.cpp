// Resilience sweep: ROST + CER streaming under an increasingly hostile
// control plane.
//
// Each run routes every control message (heartbeats, lock leases, ELNs)
// through a seeded FaultPlane at the given loss rate, with duplication and
// jitter on top, and injects a correlated stub-domain kill plus a
// mid-repair server death during the stream. The table reports how the
// hardened protocol degrades: starving time, detection latency, false
// suspicions, lock timeouts, stripe failovers -- and the two invariants
// that must NOT degrade (wedged locks, permanently unrooted members).
//
//   ./examples/chaos_sweep [--members=300] [--seed=7] [--quick=true]
//                          [--trace-out=FILE]
//
// --quick shrinks the run for CI smoke tests (sanitizer builds run it).
// --trace-out=FILE records the first (loss = 0) run's protocol event
// stream and writes it as JSONL to FILE plus a Chrome/Perfetto trace to
// FILE.chrome.json (load the latter at https://ui.perfetto.dev).
// Exit code is nonzero if any run wedges a lock or strands an orphan, so
// the binary doubles as an end-to-end chaos check.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "exp/chaos.h"
#include "net/topology.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace omcast;

exp::ChaosConfig BaseConfig(int members, std::uint64_t seed, bool quick) {
  exp::ChaosConfig c;
  c.population = members;
  c.warmup_s = quick ? 120.0 : 600.0;
  c.stream_s = quick ? 30.0 : 120.0;
  c.drain_s = quick ? 45.0 : 120.0;
  c.seed = seed;
  c.fault.dup_prob = 0.01;
  c.fault.jitter_s = 0.05;
  // A root that can absorb the whole population hides every failure; cap it
  // so the tree has depth and failures orphan someone.
  c.session.root_bandwidth = 20.0;
  c.rost.switching_interval_s = 120.0;
  c.domain_kill_at_s = 5.0;
  c.domain_kill_index = 1;
  c.mid_repair_kill_at_s = 15.0;
  if (quick) c.packet.packet_rate = 5.0;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags;
  flags.Define("members", "300", "steady-state session size")
      .Define("seed", "7", "base RNG seed")
      .Define("quick", "false", "shrink runs for CI smoke testing")
      .Define("trace-out", "",
              "write the loss=0 run's protocol trace as JSONL to FILE "
              "(+ FILE.chrome.json for Perfetto)");
  if (!flags.Parse(argc, argv)) return 2;
  const std::string trace_out = flags.GetString("trace-out");
  const bool quick = flags.GetBool("quick");
  const int members = quick ? 80 : flags.GetInt("members");
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed"));

  rnd::Rng topo_rng(1);
  const net::Topology topology = net::Topology::Generate(
      quick ? net::TinyTopologyParams() : net::SmallTopologyParams(),
      topo_rng);

  util::Table table({"loss", "starving", "detect_s", "false_susp",
                     "lock_tmo", "failovers", "wedged", "unrooted"});
  bool healthy = true;
  for (const double loss : {0.0, 0.01, 0.05}) {
    exp::ChaosConfig c = BaseConfig(members, seed, quick);
    c.fault.loss_rate = loss;
    // Trace the clean run: 2^20 events comfortably covers a quick run, and
    // the ring drops oldest-first if a long run overflows it.
    obs::Tracer tracer(1u << 20);
    if (!trace_out.empty() && loss == 0.0) c.tracer = &tracer;
    const exp::ChaosResult r = exp::RunChaosScenario(topology, c);
    if (c.tracer != nullptr) {
      std::ofstream jsonl(trace_out);
      jsonl << tracer.ToJsonl();
      std::ofstream chrome(trace_out + ".chrome.json");
      chrome << tracer.ToChromeTrace();
      if (!jsonl || !chrome) {
        std::cerr << "FAIL: could not write trace to " << trace_out << "\n";
        return 2;
      }
      std::cerr << "wrote " << tracer.size() << " trace events ("
                << tracer.dropped() << " dropped) to " << trace_out << "\n";
    }
    table.AddRow({util::FormatDouble(loss, 2),
                  util::FormatDouble(r.avg_starving_ratio, 4),
                  util::FormatDouble(r.counters.mean_detection_latency_s, 2),
                  std::to_string(r.counters.false_suspicions),
                  std::to_string(r.counters.lock_timeouts),
                  std::to_string(r.counters.stripe_failovers),
                  std::to_string(r.counters.wedged_leases),
                  std::to_string(r.unrooted_members)});
    if (!r.zero_wedged_locks || r.unrooted_members > 0) healthy = false;
    if (loss == 0.05) {
      std::cout << "\nworst case (5% loss) counter detail:\n"
                << metrics::FormatChaosCounters(r.counters) << "\n";
    }
  }
  table.Print(std::cout, "ROST+CER under control-plane chaos (domain kill + "
                         "mid-repair server death)");
  if (!healthy) {
    std::cerr << "FAIL: a run wedged a lock or stranded an orphan\n";
    return 1;
  }
  return 0;
}
