// Minimum-loss-correlation (MLC) recovery-group selection -- Algorithm 1 of
// paper Section 4.1.
//
// Loss correlation w(v1, v2) counts the tree edges shared by the root paths
// of v1 and v2; the MLC group minimizes the pairwise sum. Algorithm 1
// approximates this on the member's partial tree view:
//   1. find the first level Li with |Li| < K <= |Li+1|;
//   2. take one random child of each vi in Li (round-robin) until K subtree
//      roots G0 are collected -- at most ceil(K/|Li|) roots share a parent,
//      so pairwise shared edges stay minimal;
//   3. pick one random descendant from each chosen subtree (load balancing
//      and isolation alternatives). A root with no known descendants stands
//      in for itself.
#pragma once

#include <vector>

#include "core/cer/partial_tree.h"
#include "rand/rng.h"

namespace omcast::core {

// Returns up to `k` member ids forming the MLC group; fewer when the
// partial view is too small. `exclude` (the requester) never appears.
std::vector<overlay::NodeId> FindMlcGroup(const PartialTree& view, int k,
                                          overlay::NodeId exclude,
                                          rnd::Rng& rng);

// Sum of pairwise loss correlations w(vi, vj) over a group, evaluated on
// the *real* tree (tests and the MLC-vs-random ablation).
long TotalLossCorrelation(const overlay::Tree& tree,
                          const std::vector<overlay::NodeId>& group);

}  // namespace omcast::core
