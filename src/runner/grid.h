// The experiment grid model: a figure is a 3-dimensional grid of
// independent cells (row x column x repetition), where rows are the x-axis
// points (network sizes, buffer seconds, scheme labels, ...), columns are
// the plotted curves (algorithms, group sizes, ...), and repetitions are
// independent seeded replicas averaged into mean / stddev / 95% CI.
//
// Determinism contract: a cell's seed is derived by hashing
// (base_seed, figure, row label, column label, rep) -- never `seed + i` --
// so the seed depends only on the cell's *identity*. Reordering the grid,
// changing the thread count, resuming a partial sweep, or running two
// figures in one process cannot shift any cell onto a different random
// stream, which is what makes serial and parallel runs bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/hash.h"

namespace omcast::runner {

// Everything a cell computes. Scalar metrics feed the aggregation
// (mean/stddev/CI over reps); samples are pooled across reps for CDFs
// (Fig. 5); series are (t, v) time curves for the member traces
// (Figs. 6, 9). std::map keeps iteration -- and therefore JSON output and
// digests -- deterministic.
struct CellResult {
  std::map<std::string, double> metrics;
  std::map<std::string, std::vector<double>> samples;
  std::map<std::string, std::vector<std::pair<double, double>>> series;
  // Flattened obs::Registry snapshot for the cell (counter/gauge/histogram
  // exports, e.g. "rost.switches"). Unlike `metrics`, these are raw
  // protocol tallies -- recorded per cell, not aggregated across reps.
  std::map<std::string, double> registry;

  // One flattened obs::TimeSeries: a windowed recovery curve on the
  // absolute sim-time grid. `kind` is obs::TimeSeries::Kind as an int (0
  // counter-rate, 1 gauge) -- kept numeric so grid.h stays obs-free;
  // points are (window start, value), dense over the covered range.
  struct SeriesSnapshot {
    int kind = 0;
    double window_s = 0.0;
    std::vector<std::pair<double, double>> points;
  };
  // Schema v3 "timeseries" block: per-cell recovery curves (e.g.
  // "chaos.unrooted_members"). Deterministic like everything else here.
  std::map<std::string, SeriesSnapshot> timeseries;
  // Schema v3 "incidents" block: per-disruption lifecycle stats
  // (obs::IncidentLog::FlatStats) -- counts plus per-phase latency
  // percentiles.
  std::map<std::string, double> incidents;
};

// Identity and derived seed of one cell, handed to the cell function.
struct CellContext {
  std::string figure;
  std::string row_label;
  std::string col_label;
  std::size_t row = 0;  // index into GridSpec::rows
  std::size_t col = 0;  // index into GridSpec::cols
  int rep = 0;
  std::uint64_t seed = 0;  // derived via CellSeed()
};

// One executed (or resumed) cell.
struct CellOutcome {
  CellContext ctx;
  CellResult result;
  double wall_ms = 0.0;      // host wall-clock; excluded from digests
  bool resumed = false;      // satisfied from a previous results file
};

// A declarative figure grid. The cell function must be thread-safe with
// respect to its captures: everything it shares (the topology, the spec)
// is read-only; everything it mutates (Simulator, Session, Rng) it must
// create locally from ctx.seed.
struct GridSpec {
  std::string figure;            // machine name, e.g. "fig04_disruptions"
  std::string title;             // human title for tables/logs
  std::string row_header;        // first table column, e.g. "size"
  std::vector<std::string> rows;
  std::vector<std::string> cols;
  int reps = 1;
  // Metric the bench trajectory tracks for this figure (bench_summary.json).
  std::string headline_metric;
  std::function<CellResult(const CellContext&)> run;

  std::size_t cell_count() const {
    return rows.size() * cols.size() * static_cast<std::size_t>(reps);
  }
};

// Hash-based per-cell seed derivation (the satellite replacing `seed + rep`):
// order-sensitive FNV-1a over the full cell identity. Labels are hashed as
// length-prefixed bytes so ("ab","c") and ("a","bc") cannot collide.
inline std::uint64_t CellSeed(std::uint64_t base_seed, std::string_view figure,
                              std::string_view row_label,
                              std::string_view col_label, int rep) {
  util::RollingHash h;
  h.MixU64(base_seed);
  h.MixU64(figure.size());
  h.MixBytes(figure);
  h.MixU64(row_label.size());
  h.MixBytes(row_label);
  h.MixU64(col_label.size());
  h.MixBytes(col_label);
  h.MixI64(rep);
  return h.digest();
}

}  // namespace omcast::runner
