// CliqueProtocol tests: two-tier structure formation, the recovery-locality
// invariant (a leaf death inside a clique moves backbone_messages() by
// ZERO -- the design's headline claim), delegate succession, bounded claim
// patience (an unroutable seat dissolves its cluster instead of hanging),
// the ROST-style preempt splice under capacity saturation, counter export,
// and the chaos health gates (flash crowd on a feasible tree leaves zero
// stranded orphans, zero pending re-entries, zero wedged leases).
#include "proto/clique/clique.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "exp/chaos.h"
#include "net/topology.h"
#include "obs/registry.h"
#include "overlay/session.h"
#include "sim/simulator.h"

namespace omcast {
namespace {

using overlay::kNoNode;
using overlay::kRootId;
using overlay::NodeId;
using overlay::Session;
using overlay::SessionParams;
using overlay::Tree;
using proto::CliqueParams;
using proto::CliqueProtocol;

class CliqueTest : public ::testing::Test {
 protected:
  CliqueTest() {
    rnd::Rng topo_rng(1);
    topology_ = std::make_unique<net::Topology>(
        net::Topology::Generate(net::TinyTopologyParams(), topo_rng));
  }

  // Session with a retained CliqueProtocol.
  std::unique_ptr<Session> Make(CliqueParams params = {},
                                std::uint64_t seed = 3) {
    auto protocol = std::make_unique<CliqueProtocol>(params);
    clique_ = protocol.get();
    return std::make_unique<Session>(sim_, *topology_, std::move(protocol),
                                     SessionParams{}, seed);
  }

  // 20 equal-bandwidth members: two clusters (max_cluster_size 12), no
  // stability challenges (equal outdegree never beats the margin), ample
  // in-cluster capacity so leaf recovery always succeeds locally.
  std::vector<NodeId> BuildTwoCliques(Session& s) {
    std::vector<NodeId> members;
    for (int i = 0; i < 20; ++i) members.push_back(s.InjectMember(3.0, 1e9));
    sim_.RunUntil(5.0);
    return members;
  }

  bool IsDelegate(NodeId id) const {
    const int cid = clique_->ClusterOf(id);
    return cid >= 0 && clique_->DelegateOf(cid) == id;
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topology_;
  CliqueProtocol* clique_ = nullptr;
};

TEST_F(CliqueTest, TwoTierStructureFormsUnderSteadyJoins) {
  auto s = Make();
  const std::vector<NodeId> members = BuildTwoCliques(*s);
  // 20 members under a 12-cap cluster size: at least two cliques.
  EXPECT_GE(clique_->active_clusters(), 2);
  EXPECT_GE(clique_->clusters_formed(), 2);
  const Tree& tree = s->tree();
  // Backbone tier: every root child is a delegate, never a leaf.
  for (NodeId c : tree.ChildrenOf(kRootId)) {
    EXPECT_TRUE(IsDelegate(c)) << "root child " << c << " is not a delegate";
  }
  for (NodeId m : members) {
    EXPECT_TRUE(tree.IsRooted(m));
    const int cid = clique_->ClusterOf(m);
    ASSERT_GE(cid, 0);
    // Cluster tier: a non-delegate hangs under a same-cluster parent, so
    // each clique is a contiguous subtree rooted at its delegate.
    if (!IsDelegate(m)) {
      EXPECT_EQ(clique_->ClusterOf(tree.Parent(m)), cid) << "member " << m;
    }
  }
  s->tree().CheckInvariants();
}

// The recovery-locality invariant the bake-off is built around: a leaf
// death inside a clique is repaired entirely by the clique -- the backbone
// message counter must not move.
TEST_F(CliqueTest, LeafFailureIsInvisibleToTheBackbone) {
  auto s = Make();
  BuildTwoCliques(*s);
  const Tree& tree = s->tree();
  // Kill a non-delegate that actually has children, so the death orphans a
  // real subtree and forces recovery work (not just a silent leaf removal).
  NodeId victim = kNoNode;
  for (NodeId m : s->alive_members()) {
    if (m == kRootId || IsDelegate(m)) continue;
    if (tree.ChildCount(m) > 0) {
      victim = m;
      break;
    }
  }
  ASSERT_NE(victim, kNoNode) << "no non-delegate interior member to kill";
  std::vector<NodeId> orphans;
  for (NodeId o : tree.ChildrenOf(victim)) orphans.push_back(o);
  ASSERT_FALSE(orphans.empty());
  const int cid = clique_->ClusterOf(victim);
  const long backbone_before = clique_->backbone_messages();
  const long local_before = clique_->local_recoveries();

  s->DepartNow(victim);
  sim_.RunUntil(sim_.now() + 10.0);

  EXPECT_EQ(clique_->backbone_messages(), backbone_before)
      << "a leaf failure leaked control traffic onto the backbone tier";
  EXPECT_GT(clique_->local_recoveries(), local_before);
  for (NodeId o : orphans) {
    EXPECT_TRUE(tree.IsRooted(o));
    EXPECT_EQ(clique_->ClusterOf(o), cid) << "orphan " << o << " changed clique";
  }
  for (NodeId m : s->alive_members()) EXPECT_TRUE(tree.IsRooted(m));
  s->tree().CheckInvariants();
}

TEST_F(CliqueTest, DelegateDeathPromotesSuccessorFromWithinTheClique) {
  auto s = Make();
  BuildTwoCliques(*s);
  const Tree& tree = s->tree();
  // Pick any delegate and snapshot its clique's membership.
  NodeId dead = kNoNode;
  for (NodeId c : tree.ChildrenOf(kRootId)) {
    dead = c;
    break;
  }
  ASSERT_NE(dead, kNoNode);
  ASSERT_TRUE(IsDelegate(dead));
  const int cid = clique_->ClusterOf(dead);
  std::vector<NodeId> clique_members;
  for (NodeId m : s->alive_members())
    if (m != dead && clique_->ClusterOf(m) == cid) clique_members.push_back(m);
  ASSERT_FALSE(clique_members.empty());
  const long promotions_before = clique_->delegates_promoted();
  const long reattaches_before = clique_->backbone_reattaches();

  s->DepartNow(dead);
  sim_.RunUntil(sim_.now() + 10.0);

  // The seat was refilled from inside the clique and carried it back to the
  // backbone; only the successor's claim touched the backbone tier.
  EXPECT_GT(clique_->delegates_promoted(), promotions_before);
  EXPECT_GT(clique_->backbone_reattaches(), reattaches_before);
  const NodeId successor = clique_->DelegateOf(cid);
  ASSERT_NE(successor, kNoNode);
  EXPECT_NE(successor, dead);
  EXPECT_TRUE(std::find(clique_members.begin(), clique_members.end(),
                        successor) != clique_members.end())
      << "the successor came from outside the clique";
  EXPECT_TRUE(tree.IsRooted(successor));
  for (NodeId m : s->alive_members()) EXPECT_TRUE(tree.IsRooted(m));
  s->tree().CheckInvariants();
}

// Bounded claim patience: when a promoted seat cannot root itself on the
// backbone within promotion_timeout_s, its cluster dissolves instead of
// dangling off an unroutable delegate forever.
TEST_F(CliqueTest, UnroutableSeatDissolvesItsClusterAfterTheTimeout) {
  CliqueParams p;
  p.max_cluster_size = 2;
  p.promotion_timeout_s = 5.0;
  p.election_period_s = 1e6;  // keep maintenance rounds out of the window
  auto s = Make(p);
  Tree& tree = s->tree();
  tree.SetCapacity(kRootId, 1);
  // Hand-grown saturated backbone: root(1) <- A(delegate, cap 3), with
  // delegates B and C claiming seats under A once their cliques cap out.
  const NodeId a = s->InjectMember(3.0, 1e9);
  sim_.RunUntil(1.0);
  const NodeId x = s->InjectMember(0.5, 1e9);
  sim_.RunUntil(2.0);
  const NodeId b = s->InjectMember(1.0, 1e9);
  sim_.RunUntil(3.0);
  s->InjectMember(0.5, 1e9);  // fills B's clique (and B's only slot)
  sim_.RunUntil(4.0);
  const NodeId c = s->InjectMember(1.0, 1e9);
  sim_.RunUntil(5.0);
  s->InjectMember(0.5, 1e9);  // fills C's clique (and C's only slot)
  sim_.RunUntil(6.0);
  ASSERT_EQ(tree.Parent(a), kRootId);
  ASSERT_TRUE(IsDelegate(b));
  ASSERT_TRUE(IsDelegate(c));
  ASSERT_EQ(clique_->active_clusters(), 3);
  const long dissolved_before = clique_->clusters_dissolved();

  // A's death orphans three delegates but frees exactly one backbone slot:
  // one claim lands, the other two seats stay off the backbone until their
  // patience runs out and their cliques disband.
  s->DepartNow(a);
  sim_.RunUntil(sim_.now() + 3.0 * p.promotion_timeout_s);

  EXPECT_GE(clique_->clusters_dissolved(), dissolved_before + 2);
  int rooted_seats = 0;
  for (NodeId seat : {x, b, c})
    if (tree.IsRooted(seat)) ++rooted_seats;
  EXPECT_EQ(rooted_seats, 1) << "exactly one claim can win the freed slot";
  s->tree().CheckInvariants();
}

// Capacity saturation: with every clique full and the backbone refusing new
// seats, a joiner that can host children splices into a strictly-weaker
// childless leaf's slot and adopts it (the ROST preempt-join move), instead
// of being stranded by a full tree.
TEST_F(CliqueTest, PreemptSpliceAdmitsStrongJoinerIntoSaturatedTree) {
  CliqueParams p;
  p.election_period_s = 1e6;
  auto s = Make(p);
  Tree& tree = s->tree();
  tree.SetCapacity(kRootId, 1);
  // root(1) <- A(cap 2) <- {B, C}: free-riders fill the only clique's
  // capacity, so the tree has zero spare slots anywhere.
  const NodeId a = s->InjectMember(2.0, 1e9);
  sim_.RunUntil(1.0);
  const NodeId b = s->InjectMember(0.5, 1e9);
  sim_.RunUntil(2.0);
  const NodeId c = s->InjectMember(0.5, 1e9);
  sim_.RunUntil(3.0);
  ASSERT_EQ(tree.Parent(b), a);
  ASSERT_EQ(tree.Parent(c), a);
  const long overflow_before = clique_->overflow_attaches();

  const NodeId strong = s->InjectMember(3.0, 1e9);
  sim_.RunUntil(4.0);

  // The joiner took a free-rider's slot under A and adopted it.
  EXPECT_EQ(tree.Parent(strong), a);
  EXPECT_TRUE(tree.IsRooted(strong));
  const NodeId displaced = tree.Parent(b) == strong ? b : c;
  EXPECT_EQ(tree.Parent(displaced), strong);
  EXPECT_EQ(tree.Get(displaced).reconnections, 1);
  EXPECT_GT(clique_->overflow_attaches(), overflow_before);
  EXPECT_EQ(clique_->ClusterOf(strong), clique_->ClusterOf(a));
  for (NodeId m : s->alive_members()) EXPECT_TRUE(tree.IsRooted(m));
  s->tree().CheckInvariants();
}

TEST_F(CliqueTest, ExportCountersPublishesTheCliqueNamespace) {
  auto s = Make();
  BuildTwoCliques(*s);
  obs::Registry reg;
  clique_->ExportCounters(reg);
  EXPECT_GE(reg.CounterValue("clique.clusters_formed"), 2.0);
  EXPECT_GT(reg.CounterValue("clique.local_messages"), 0.0);
  EXPECT_GT(reg.CounterValue("clique.backbone_messages"), 0.0);
  EXPECT_EQ(reg.CounterValue("clique.clusters_dissolved"), 0.0);
  // The gauge mirrors the accessor.
  const auto flat = reg.Flatten();
  const auto it = flat.find("clique.active_clusters");
  ASSERT_NE(it, flat.end());
  EXPECT_EQ(it->second, static_cast<double>(clique_->active_clusters()));
}

// The bake-off's chaos health gates, pinned as a test: a flash crowd on a
// capacity-feasible tree must leave no stranded orphans, no pending
// re-entries, and (trivially, the protocol holds no locks) no wedged
// leases.
TEST(CliqueChaos, FlashCrowdKeepsTheHealthGates) {
  rnd::Rng topo_rng(1);
  const net::Topology topology =
      net::Topology::Generate(net::TinyTopologyParams(), topo_rng);
  exp::ChaosConfig c;
  c.algorithm = exp::Algorithm::kClique;
  c.population = 60;
  c.warmup_s = 300.0;
  c.stream_s = 60.0;
  c.drain_s = 60.0;
  c.seed = 21;
  c.fault.loss_rate = 0.02;
  c.fault.dup_prob = 0.01;
  c.fault.jitter_s = 0.02;
  // Feasible but not star-shaped: the BoundedPareto bandwidth mix is mostly
  // capacity-0 free-riders, so the root must underwrite enough fan-out for
  // the post-flash rebuild (the bake-off grid uses the same floor).
  c.session.root_bandwidth = 16.0;
  c.flash_at_s = 10.0;
  c.flash_departures = 12;
  const exp::ChaosResult r = RunChaosScenario(topology, c);
  EXPECT_EQ(r.flash_members_killed, 12);
  EXPECT_EQ(r.unrooted_members, 0);
  EXPECT_EQ(r.reentries_pending, 0);
  EXPECT_TRUE(r.zero_wedged_locks);
  EXPECT_GT(r.final_population, 0);
  // The protocol-agnostic export path carried the clique counters into the
  // chaos registry snapshot.
  ASSERT_EQ(r.registry.count("clique.local_recoveries"), 1u);
  EXPECT_GT(r.registry.at("clique.clusters_formed"), 0.0);
  EXPECT_EQ(r.registry.count("rost.switches"), 0u);
}

}  // namespace
}  // namespace omcast
