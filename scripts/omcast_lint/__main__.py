"""`python -m omcast_lint` entry point (run from scripts/)."""

import sys

from .cli import main

sys.exit(main())
