// Fig. 8: average network stretch (overlay path delay / direct unicast
// delay) vs steady-state network size.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 8 -- avg network stretch", env);

  std::vector<std::string> header = {"size"};
  for (const exp::Algorithm a : exp::AllAlgorithms())
    header.push_back(exp::AlgorithmLabel(a));
  util::Table table(std::move(header));

  for (const int size : env.sizes) {
    std::vector<double> row;
    for (const exp::Algorithm a : exp::AllAlgorithms()) {
      exp::ScenarioConfig config = env.BaseConfig();
      config.population = size;
      const auto reps = bench::RunTreeReps(env, a, config);
      row.push_back(
          bench::MeanOf(reps, [](const auto& r) { return r.avg_stretch; }));
    }
    table.AddRow(std::to_string(size), row, 2);
  }
  table.Print(std::cout, "avg stretch (rows: steady-state size)");
  return 0;
}
