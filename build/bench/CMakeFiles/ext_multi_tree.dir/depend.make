# Empty dependencies file for ext_multi_tree.
# This may be replaced when dependencies are built.
