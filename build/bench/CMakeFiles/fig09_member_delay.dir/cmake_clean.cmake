file(REMOVE_RECURSE
  "CMakeFiles/fig09_member_delay.dir/fig09_member_delay.cc.o"
  "CMakeFiles/fig09_member_delay.dir/fig09_member_delay.cc.o.d"
  "fig09_member_delay"
  "fig09_member_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_member_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
