// Extension bench (the paper's future-work direction): redundancy vs
// recovery. Compares, under one interval-based stall metric:
//
//   * single tree, no recovery        (the raw 15 s outages)
//   * single tree + CER (group 3)     (the paper's scheme)
//   * 2 and 3 MDC description trees   (CoopNet-style redundancy, no repair)
//
// MDC stalls only when all descriptions are out at once, but every
// description outage degrades quality; CER keeps full quality and repairs
// the one tree. The table reports both stall and degraded-time ratios.
#include <iostream>
#include <string>

#include "bench_common.h"
#include "exp/scenario.h"
#include "sim/simulator.h"
#include "stream/multi_tree.h"

namespace {

struct Scheme {
  const char* label;
  int trees;
  bool cer;
};

constexpr Scheme kSchemes[] = {
    {"1 tree, no recovery", 1, false},
    {"1 tree + CER (paper)", 1, true},
    {"2 MDC trees", 2, false},
    {"3 MDC trees", 3, false},
};

// Maps --protocol to the algorithm whose protocol builds each description
// tree (through the protocol-agnostic exp::MakeProtocol seam).
omcast::exp::Algorithm ParseAlgorithm(const std::string& label) {
  using omcast::exp::Algorithm;
  for (Algorithm a : {Algorithm::kMinDepth, Algorithm::kLongestFirst,
                      Algorithm::kRelaxedBo, Algorithm::kRelaxedTo,
                      Algorithm::kRost, Algorithm::kClique})
    if (label == omcast::exp::AlgorithmLabel(a)) return a;
  std::cerr << "unknown --protocol '" << label
            << "' (try min-depth, longest-first, relaxed-BO, relaxed-TO, "
               "ROST, clique)\n";
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  flags.Define("grow", "1200", "build-up phase seconds (4x arrivals)");
  flags.Define("protocol", "min-depth",
               "overlay protocol per description tree (exp::Algorithm label)");
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Extension -- multiple description trees vs CER", env);

  const double grow_s = flags.GetDouble("grow");
  const exp::Algorithm algorithm = ParseAlgorithm(flags.GetString("protocol"));
  runner::GridSpec spec;
  spec.figure = "ext_multi_tree";
  spec.title = "multiple description trees vs CER";
  spec.row_header = "scheme";
  for (const Scheme& scheme : kSchemes) spec.rows.push_back(scheme.label);
  spec.cols = {"stream"};
  spec.reps = env.reps;
  spec.headline_metric = "stall_ratio";
  spec.run = [&env, grow_s, algorithm](const runner::CellContext& cell) {
    const Scheme& scheme = kSchemes[cell.row];
    sim::Simulator sim;
    stream::MultiTreeParams p;
    p.trees = scheme.trees;
    p.cer_recovery = scheme.cer;
    p.make_protocol = [algorithm] { return exp::MakeProtocol(algorithm, {}); };
    stream::MultiTreeStream streams(sim, env.Topo(), p, cell.seed);
    // Build the audience quickly, then settle into normal churn.
    const double rate = env.focus_size / rnd::kMeanLifetimeSeconds;
    streams.StartArrivals(4.0 * rate);
    sim.RunUntil(grow_s);
    streams.StopArrivals();
    streams.StartArrivals(rate);
    const double measure_begin = grow_s + 600.0;
    const double measure_end = measure_begin + env.measure_s;
    sim.RunUntil(measure_end);
    streams.Finalize(measure_begin, measure_end);
    runner::CellResult out;
    out.metrics["stall_ratio"] = streams.stall_ratio().mean();
    out.metrics["degraded_ratio"] = streams.degraded_ratio().mean();
    out.metrics["population"] = streams.average_population();
    return out;
  };
  const runner::ResultsSink sink = bench::RunGridBench(env, spec);

  bench::PrintMetricColumnsTable(
      spec, sink, /*col=*/0,
      {{"stall(%)", "stall_ratio", 3, 100.0},
       {"degraded(%)", "degraded_ratio", 3, 100.0},
       {"members", "population", 0}},
      "stall = all descriptions out; degraded = any out");
  std::cout << "\nMDC trades stalls for (frequent) quality degradation and "
               "splits every uplink\nacross descriptions; CER keeps full "
               "quality and needs no extra coding.\n";
  return 0;
}
