"""Command-line interface.

Exit codes (shared with the legacy lint_determinism.py shim):
  0 -- clean (or all findings baselined / selftest passed)
  1 -- findings not in the baseline, or selftest failures
  2 -- usage error (no inputs, unknown path, bad baseline file)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import baseline as baseline_mod
from . import sarif as sarif_mod
from .engine import lint_paths
from .registry import all_rule_descriptions, Finding
from .selftest import run_selftest


def _repo_root(start: Path) -> Path:
    """Nearest ancestor containing a .git directory; falls back to cwd so
    fingerprints and SARIF URIs are repo-relative when possible."""
    for parent in [start, *start.parents]:
        if (parent / ".git").exists():
            return parent
    return start


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="omcast-lint",
        description="Static determinism/concurrency/protocol lint for the "
                    "omcast simulator (see scripts/omcast_lint/).")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint")
    parser.add_argument("--selftest", metavar="DIR",
                        help="run the expect()-marker fixture selftest over "
                             "DIR instead of linting")
    parser.add_argument("--sarif", metavar="FILE",
                        help="also write findings as SARIF 2.1.0 to FILE")
    parser.add_argument("--sarif-selftest", action="store_true",
                        help="emit a SARIF document for a synthetic finding "
                             "and structurally validate it")
    parser.add_argument("--baseline", metavar="FILE",
                        help="suppress findings whose fingerprints appear in "
                             "this committed baseline JSON")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline FILE from the current "
                             "findings instead of failing")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    parser.add_argument("--no-stale-allow", action="store_true",
                        help="disable stale-suppression detection")
    return parser


def _run_sarif_selftest(root: Path) -> int:
    probe = Finding(root / "scripts" / "omcast_lint" / "cli.py", 1,
                    "wallclock", "synthetic finding for schema validation")
    doc = sarif_mod.render([probe], root)
    # Round-trip through JSON: the validator must accept what a consumer
    # would actually parse from disk.
    problems = sarif_mod.validate(json.loads(json.dumps(doc)))
    empty_problems = sarif_mod.validate(json.loads(
        json.dumps(sarif_mod.render([], root))))
    for p in problems + empty_problems:
        print(f"sarif-selftest: {p}", file=sys.stderr)
    if problems or empty_problems:
        return 1
    print("sarif-selftest: emitted documents are structurally valid "
          "SARIF 2.1.0")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    root = _repo_root(Path.cwd())

    if args.list_rules:
        for name, summary in all_rule_descriptions():
            print(f"{name:16s} {summary}")
        return 0

    if args.sarif_selftest:
        return _run_sarif_selftest(root)

    if args.selftest:
        failures = run_selftest(args.selftest)
        return 0 if failures == 0 else 1

    if not args.paths:
        print("error: no paths given (or use --selftest DIR / --list-rules)",
              file=sys.stderr)
        return 2

    try:
        findings, nfiles = lint_paths(args.paths,
                                      stale_check=not args.no_stale_allow)
    except FileNotFoundError as e:
        print(f"error: no such file or directory: {e}", file=sys.stderr)
        return 2

    findings.sort(key=lambda f: (f.path.as_posix(), f.line, f.rule))

    if args.sarif:
        sarif_mod.write(Path(args.sarif), findings, root)

    baseline_path = Path(args.baseline) if args.baseline else None
    if baseline_path and args.update_baseline:
        baseline_mod.write(baseline_path, findings, root)
        print(f"baseline: wrote {len(findings)} finding(s) to "
              f"{baseline_path}")
        return 0

    baselined: list[Finding] = []
    stale_entries: set[str] = set()
    if baseline_path:
        try:
            known = baseline_mod.load(baseline_path)
        except (ValueError, json.JSONDecodeError) as e:
            print(f"error: bad baseline file: {e}", file=sys.stderr)
            return 2
        findings, baselined, stale_entries = baseline_mod.split(
            findings, known, root)

    for f in findings:
        print(f)
    suffix = ""
    if baselined:
        suffix += f"; {len(baselined)} baselined finding(s) suppressed"
    if stale_entries:
        suffix += (f"; {len(stale_entries)} stale baseline entr"
                   f"{'y' if len(stale_entries) == 1 else 'ies'} "
                   f"(fixed findings -- remove from {baseline_path})")
        for fp in sorted(stale_entries):
            print(f"  stale baseline entry: {fp}", file=sys.stderr)
    print(f"omcast-lint: {len(findings)} new finding(s) across {nfiles} "
          f"file(s){suffix}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
