#include "core/cer/group.h"

#include <algorithm>

#include "core/cer/mlc.h"
#include "core/cer/partial_tree.h"
#include "util/check.h"

namespace omcast::core {

using overlay::NodeId;
using overlay::Session;

namespace {

// Deep-tier consistency audit of a selected recovery group: the repair
// protocol addresses stripes (n mod 100) to these members, so a duplicate,
// the requester itself, the source, or an unusable (dead / detached) member
// would corrupt the repair accounting downstream.
void AuditRecoveryGroup(Session& session, NodeId requester, int k,
                        const std::vector<NodeId>& group) {
  if constexpr (!omcast::util::kDcheckEnabled) {
    (void)session;
    (void)requester;
    (void)k;
    (void)group;
    return;
  }
  OMCAST_DCHECK(static_cast<int>(group.size()) <= k,
                "recovery group must not exceed the requested size");
  std::vector<NodeId> sorted = group;
  std::sort(sorted.begin(), sorted.end());
  OMCAST_DCHECK(std::adjacent_find(sorted.begin(), sorted.end()) ==
                    sorted.end(),
                "recovery group members must be distinct");
  for (NodeId id : group) {
    OMCAST_DCHECK(id != requester,
                  "a member must not recover from itself");
    OMCAST_DCHECK(id != overlay::kRootId,
                  "the source is never a repair peer");
    OMCAST_DCHECK(session.tree().Alive(id),
                  "recovery group members must be alive");
    OMCAST_DCHECK(session.tree().IsRooted(id),
                  "recovery group members must be attached to the tree");
  }
  // The request walk visits members in distance order (nearest first).
  for (std::size_t i = 1; i < group.size(); ++i)
    OMCAST_DCHECK(session.DelayMs(requester, group[i - 1]) <=
                      session.DelayMs(requester, group[i]),
                  "recovery group must be sorted by network distance");
}

}  // namespace

std::vector<NodeId> SelectRecoveryGroup(Session& session, NodeId requester,
                                        int k, GroupSelection selection) {
  std::vector<NodeId> known = session.SampleCandidates(
      session.params().candidate_sample_size, requester);
  std::erase(known, requester);
  std::erase(known, overlay::kRootId);  // the source streams, it is not a
                                        // residual-bandwidth repair peer

  std::vector<NodeId> group;
  if (selection == GroupSelection::kMlc) {
    const PartialTree view = PartialTree::Build(session.tree(), known);
    group = FindMlcGroup(view, k, requester, session.rng());
  } else {
    group = session.rng().SampleWithoutReplacement(
        std::move(known), static_cast<std::size_t>(k));
  }
  std::erase(group, overlay::kRootId);

  std::sort(group.begin(), group.end(), [&](NodeId a, NodeId b) {
    return session.DelayMs(requester, a) < session.DelayMs(requester, b);
  });
  AuditRecoveryGroup(session, requester, k, group);
  return group;
}

}  // namespace omcast::core
