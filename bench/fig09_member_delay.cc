// Fig. 9: service delay over time of the same "typical member" as Fig. 6.
// Under ROST (and relaxed TO) the member's delay should shrink as it climbs;
// under the others it fluctuates without converging.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  flags.Define("trace-minutes", "300", "how long to follow the member");
  flags.Define("member-bw", "2.0", "tagged member bandwidth");
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 9 -- service delay of a typical member (ms)", env);

  const double trace_s = flags.GetDouble("trace-minutes") * 60.0;
  const double member_bw = flags.GetDouble("member-bw");

  runner::GridSpec spec;
  spec.figure = "fig09_member_delay";
  spec.title = "service delay of a typical member (ms)";
  spec.row_header = "size";
  spec.rows = {std::to_string(env.focus_size)};
  for (const exp::Algorithm a : exp::AllAlgorithms())
    spec.cols.push_back(exp::AlgorithmLabel(a));
  spec.reps = env.reps;
  spec.headline_metric = "final_delay_ms";
  spec.run = [&env, trace_s, member_bw](const runner::CellContext& cell) {
    exp::ScenarioConfig config = env.BaseConfig();
    config.population = env.focus_size;
    config.seed = cell.seed;
    config.snapshot_interval_s = 300.0;  // delay sample cadence
    const exp::Algorithm a = exp::AllAlgorithms()[cell.col];
    const exp::TraceResult trace = exp::RunMemberTraceScenario(
        env.Topo(), a, config, member_bw, trace_s + 600.0, trace_s);
    runner::CellResult out;
    auto& series = out.series["delay_ms"];
    for (const exp::TracePoint& p : trace.delay_ms)
      series.emplace_back(p.t_min, p.v);
    out.metrics["final_delay_ms"] =
        series.empty() ? 0.0 : series.back().second;
    return out;
  };
  const runner::ResultsSink sink = bench::RunGridBench(env, spec);

  std::vector<std::string> header = {"minute"};
  header.insert(header.end(), spec.cols.begin(), spec.cols.end());
  util::Table table(std::move(header));

  for (double minute = 0.0; minute <= trace_s / 60.0 + 1e-9; minute += 30.0) {
    std::vector<double> row;
    for (std::size_t col = 0; col < spec.cols.size(); ++col) {
      double sum = 0.0;
      int counted = 0;
      for (int rep = 0; rep < spec.reps; ++rep) {
        const auto& result = sink.Cell(0, col, rep).result;
        const auto it = result.series.find("delay_ms");
        // Latest delay sample at or before this minute.
        double delay = 0.0;
        if (it != result.series.end())
          for (const auto& [t_min, v] : it->second)
            if (t_min <= minute + 1e-9) delay = v;
        if (delay > 0.0) {
          sum += delay;
          ++counted;
        }
      }
      row.push_back(counted > 0 ? sum / counted : 0.0);
    }
    table.AddRow(util::FormatDouble(minute, 0), row, 1);
  }
  table.Print(std::cout, "tagged member's service delay (ms) over time");
  return 0;
}
