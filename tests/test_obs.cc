// Unit tests for the observability subsystem (src/obs): the metrics
// registry (counters / gauges / fixed-bucket histograms, cross-checked
// against util::RunningStat), the bounded trace ring and its JSONL /
// Chrome-trace exports (round-tripped through the runner's own JSON
// parser), and the simulator profiler.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/profile.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "runner/json.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace omcast {
namespace {

using obs::EventKind;
using obs::Histogram;
using obs::Registry;
using obs::TraceEvent;
using obs::Tracer;

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, MeanMatchesRunningStat) {
  // The histogram tracks the exact sum and count alongside the buckets; its
  // sum/count mean must agree with RunningStat's Welford mean to round-off
  // (they are different summation orders of the same data), and min/max are
  // tracked exactly, so those must match bit for bit.
  Histogram h({0.1, 1.0, 10.0, 100.0});
  util::RunningStat stat;
  double v = 0.0317;
  for (int i = 0; i < 500; ++i) {
    v = v * 1.37 + 0.011;
    if (v > 250.0) v -= 249.0;
    h.Observe(v);
    stat.Add(v);
  }
  ASSERT_EQ(h.count(), static_cast<long>(stat.count()));
  EXPECT_NEAR(h.mean(), stat.mean(), 1e-9 * std::abs(stat.mean()));
  EXPECT_EQ(h.min(), stat.min());
  EXPECT_EQ(h.max(), stat.max());
}

TEST(Histogram, BucketAssignmentUsesInclusiveUpperEdges) {
  Histogram h({1.0, 2.0});
  h.Observe(1.0);  // lands in bucket 0: (-inf, 1]
  h.Observe(1.5);  // bucket 1: (1, 2]
  h.Observe(2.0);  // bucket 1
  h.Observe(3.0);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 1);
  EXPECT_EQ(h.bucket_counts()[1], 2);
  EXPECT_EQ(h.bucket_counts()[2], 1);
}

TEST(Histogram, QuantilesAreClampedAndOrdered) {
  Histogram h({1.0, 2.0, 4.0, 8.0, 16.0});
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i % 17) + 0.5);
  const double p10 = h.Quantile(0.10);
  const double p50 = h.Quantile(0.50);
  const double p99 = h.Quantile(0.99);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p99);
  EXPECT_GE(p10, h.min());
  EXPECT_LE(p99, h.max());
}

TEST(Histogram, SingleObservationQuantileIsExact) {
  Histogram h({1.0, 10.0});
  h.Observe(3.25);
  // Only one value exists; clamping to [min, max] pins every quantile to it.
  EXPECT_EQ(h.Quantile(0.0), 3.25);
  EXPECT_EQ(h.Quantile(0.5), 3.25);
  EXPECT_EQ(h.Quantile(1.0), 3.25);
}

TEST(Histogram, EmptyHistogramIsZeroEverywhere) {
  Histogram h({1.0});
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(Histogram, MergeEqualsCombinedObservations) {
  const std::vector<double> bounds = {0.5, 1.0, 5.0, 25.0};
  Histogram a(bounds), b(bounds), combined(bounds);
  for (int i = 0; i < 40; ++i) {
    const double v = 0.2 * static_cast<double>(i) + 0.05;
    (i % 2 == 0 ? a : b).Observe(v);
    combined.Observe(v);
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.bucket_counts(), combined.bucket_counts());
}

TEST(Histogram, MergeFromEmptyIsANoOp) {
  Histogram a({1.0}), empty({1.0});
  a.Observe(0.5);
  a.MergeFrom(empty);
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.min(), 0.5);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, CountersAccumulateAndDefaultToZero) {
  Registry reg;
  EXPECT_EQ(reg.CounterValue("absent"), 0.0);
  reg.Count("x");
  reg.Count("x", 2.5);
  EXPECT_EQ(reg.CounterValue("x"), 3.5);
}

TEST(Registry, GaugesAreLastWriteWins) {
  Registry reg;
  reg.SetGauge("g", 1.0);
  reg.SetGauge("g", -4.0);
  EXPECT_EQ(reg.gauges().at("g"), -4.0);
}

TEST(Registry, FirstHistogramRegistrationWins) {
  Registry reg;
  Histogram& h = reg.Hist("h", {1.0, 2.0});
  Histogram& again = reg.Hist("h", {99.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(Registry, FlattenExpandsHistogramsDeterministically) {
  Registry reg;
  reg.Count("a.count1", 7.0);
  reg.SetGauge("b.gauge", 0.25);
  reg.Observe("c.hist", {1.0, 10.0}, 2.0);
  reg.Observe("c.hist", {1.0, 10.0}, 6.0);
  const std::map<std::string, double> flat = reg.Flatten();
  EXPECT_EQ(flat.at("a.count1"), 7.0);
  EXPECT_EQ(flat.at("b.gauge"), 0.25);
  EXPECT_EQ(flat.at("c.hist.count"), 2.0);
  EXPECT_EQ(flat.at("c.hist.sum"), 8.0);
  EXPECT_EQ(flat.at("c.hist.min"), 2.0);
  EXPECT_EQ(flat.at("c.hist.max"), 6.0);
  EXPECT_TRUE(flat.contains("c.hist.p50"));
  EXPECT_TRUE(flat.contains("c.hist.p99"));
}

TEST(Registry, MergeAddsCountersOverwritesGaugesMergesHistograms) {
  Registry a, b;
  a.Count("c", 1.0);
  b.Count("c", 2.0);
  b.Count("only_b", 5.0);
  a.SetGauge("g", 1.0);
  b.SetGauge("g", 9.0);
  a.Observe("h", {1.0}, 0.5);
  b.Observe("h", {1.0}, 2.5);
  b.Observe("h2", {4.0}, 3.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.CounterValue("c"), 3.0);
  EXPECT_EQ(a.CounterValue("only_b"), 5.0);
  EXPECT_EQ(a.gauges().at("g"), 9.0);
  EXPECT_EQ(a.histograms().at("h").count(), 2);
  EXPECT_EQ(a.histograms().at("h2").count(), 1);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(Tracer, IdsAreMonotonicAndEventsOldestFirst) {
  Tracer tracer(16);
  for (int i = 0; i < 5; ++i)
    tracer.Emit(static_cast<double>(i), EventKind::kJoin, i, i - 1, i * 10);
  const std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, i);
    EXPECT_EQ(events[i].t, static_cast<double>(i));
    EXPECT_EQ(events[i].subject, static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(tracer.emitted(), 5u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, RingEvictsOldestAndCountsDrops) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i)
    tracer.Emit(static_cast<double>(i), EventKind::kLeave, i);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.emitted(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  // The newest four survive, oldest first.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(events[i].id, 6u + i);
}

TEST(Tracer, ClearKeepsLifetimeTallies) {
  Tracer tracer(4);
  tracer.Emit(1.0, EventKind::kJoin, 1);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.emitted(), 1u);  // ids keep running across Clear()
  tracer.Emit(2.0, EventKind::kJoin, 2);
  EXPECT_EQ(tracer.Events().front().id, 1u);
}

TEST(Tracer, JsonlRoundTripsThroughRunnerJson) {
  Tracer tracer(8);
  tracer.Emit(12.5, EventKind::kLockGrant, 17, 4, 2);
  tracer.Emit(13.0, EventKind::kSwitchCommit, 4, 17);
  std::istringstream lines(tracer.ToJsonl());
  std::string line;
  std::vector<runner::Json> parsed;
  while (std::getline(lines, line)) {
    std::string error;
    parsed.push_back(runner::Json::Parse(line, &error));
    ASSERT_TRUE(error.empty()) << "bad JSONL line: " << line << ": " << error;
  }
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].Find("t")->AsDouble(), 12.5);
  EXPECT_EQ(parsed[0].Find("id")->AsUint(), 0u);
  EXPECT_EQ(parsed[0].Find("kind")->AsString(), "lock_grant");
  EXPECT_EQ(parsed[0].Find("subject")->AsInt(), 17);
  EXPECT_EQ(parsed[0].Find("peer")->AsInt(), 4);
  EXPECT_EQ(parsed[0].Find("detail")->AsInt(), 2);
  EXPECT_EQ(parsed[1].Find("kind")->AsString(), "switch_commit");
  EXPECT_EQ(parsed[1].Find("peer")->AsInt(), 17);
}

TEST(Tracer, ChromeTraceIsValidJsonWithOneEntryPerEvent) {
  Tracer tracer(8);
  tracer.Emit(0.5, EventKind::kEln, 3, -1, 7);
  tracer.Emit(1.5, EventKind::kRepairStart, 9, 3, 1);
  std::string error;
  const runner::Json doc = runner::Json::Parse(tracer.ToChromeTrace(), &error);
  ASSERT_TRUE(error.empty()) << error;
  const runner::Json* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->size(), 2u);
  const runner::Json& first = events->AsArray()[0];
  EXPECT_EQ(first.Find("name")->AsString(), "eln");
  EXPECT_EQ(first.Find("ph")->AsString(), "i");
  // Sim seconds surface as trace microseconds.
  EXPECT_EQ(first.Find("ts")->AsDouble(), 0.5 * 1e6);
  EXPECT_EQ(first.Find("tid")->AsInt(), 3);
}

TEST(Tracer, DigestIsOrderAndContentSensitive) {
  Tracer a(8), b(8), c(8);
  a.Emit(1.0, EventKind::kJoin, 1, 0);
  a.Emit(2.0, EventKind::kLeave, 1, 0);
  b.Emit(1.0, EventKind::kJoin, 1, 0);
  b.Emit(2.0, EventKind::kLeave, 1, 0);
  c.Emit(2.0, EventKind::kLeave, 1, 0);
  c.Emit(1.0, EventKind::kJoin, 1, 0);
  EXPECT_EQ(a.Digest(), b.Digest());
  EXPECT_NE(a.Digest(), c.Digest());
}

TEST(Tracer, EveryKindHasAStableSnakeCaseName) {
  // The names are schema (scripts/trace_schema.json pins them); walk the
  // full enum and require lowercase snake_case, nonempty, and unique.
  std::vector<std::string> names;
  for (int k = static_cast<int>(EventKind::kJoin);
       k <= static_cast<int>(EventKind::kDecodeStall); ++k) {
    const std::string name = obs::EventKindName(static_cast<EventKind>(k));
    ASSERT_FALSE(name.empty()) << "kind " << k;
    for (const char ch : name)
      EXPECT_TRUE((ch >= 'a' && ch <= 'z') || ch == '_')
          << "kind " << k << " name '" << name << "'";
    names.push_back(name);
  }
  EXPECT_EQ(names.size(), 27u);
  std::vector<std::string> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end())
      << "duplicate event kind names";
}

// ---------------------------------------------------------------------------
// SimProfiler + simulator integration
// ---------------------------------------------------------------------------

TEST(SimProfiler, CountsDispatchesPerTag) {
  obs::SimProfiler profiler;
  sim::Simulator simulator;
  simulator.SetProfiler(&profiler);
  for (int i = 0; i < 3; ++i)
    simulator.ScheduleAt(static_cast<double>(i), [] {}, "test.a");
  simulator.ScheduleAt(5.0, [] {}, "test.b");
  simulator.ScheduleAt(6.0, [] {});  // untagged
  simulator.Run();
  EXPECT_EQ(profiler.events(), 5u);
  ASSERT_TRUE(profiler.per_tag().contains("test.a"));
  EXPECT_EQ(profiler.per_tag().at("test.a").count, 3u);
  EXPECT_EQ(profiler.per_tag().at("test.b").count, 1u);
  EXPECT_EQ(profiler.per_tag().at("untagged").count, 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(profiler.wall_us_hist().count()), 5u);
  EXPECT_EQ(static_cast<std::uint64_t>(profiler.queue_depth_hist().count()),
            5u);
  const std::string table = profiler.FormatTable();
  EXPECT_NE(table.find("test.a"), std::string::npos);
}

TEST(SimProfiler, LoopBracketsDriveEventsPerSec) {
  obs::SimProfiler profiler;
  EXPECT_EQ(profiler.events_per_sec(), 0.0);  // no loop yet
  sim::Simulator simulator;
  simulator.SetProfiler(&profiler);
  for (int i = 0; i < 100; ++i)
    simulator.ScheduleAt(static_cast<double>(i), [] {}, "test.loop");
  simulator.Run();
  EXPECT_EQ(profiler.loop_events(), 100u);
  EXPECT_GT(profiler.loop_us(), 0.0);
  EXPECT_GT(profiler.events_per_sec(), 0.0);
  // The loop bracket includes queue pops, so it can only be wider than the
  // sum of the per-callback brackets.
  double callback_us = 0.0;
  for (const auto& [tag, stats] : profiler.per_tag())
    callback_us += stats.total_us;
  EXPECT_GE(profiler.loop_us(), callback_us);
}

TEST(SimProfiler, SampleMemoryKeepsHighWaterMarks) {
  obs::SimProfiler profiler;
  profiler.SampleMemory(10, 64);
  profiler.SampleMemory(50, 128);
  profiler.SampleMemory(3, 16);  // below the marks: must not lower them
  EXPECT_EQ(profiler.pool_live_max(), 50u);
  EXPECT_EQ(profiler.pool_capacity_max(), 128u);
  // getrusage-backed peak RSS: any live process has resident pages.
  EXPECT_GT(profiler.peak_rss_bytes(), 0u);
}

TEST(SimProfiler, RunLoopSamplesPoolOccupancy) {
  obs::SimProfiler profiler;
  sim::Simulator simulator(sim::QueueKind::kCalendar);
  simulator.SetProfiler(&profiler);
  // A standing population of far-future timers keeps the pool occupied
  // through the end-of-loop sample.
  for (int i = 0; i < 500; ++i)
    simulator.ScheduleAt(1000.0 + i, [] {}, "test.standing");
  simulator.ScheduleAt(1.0, [] {}, "test.near");
  simulator.RunUntil(2.0);
  EXPECT_GE(profiler.pool_live_max(), 500u);
  EXPECT_GE(profiler.pool_capacity_max(), profiler.pool_live_max());
  EXPECT_GT(profiler.peak_rss_bytes(), 0u);
}

TEST(SimProfiler, AggregatorMergesCells) {
  obs::SimProfiler a, b;
  sim::Simulator sa, sb;
  sa.SetProfiler(&a);
  sb.SetProfiler(&b);
  sa.ScheduleAt(0.0, [] {}, "cell.work");
  sb.ScheduleAt(0.0, [] {}, "cell.work");
  sb.ScheduleAt(1.0, [] {}, "cell.other");
  sa.Run();
  sb.Run();
  obs::ProfileAggregator agg;
  agg.Merge(a);
  agg.Merge(b);
  EXPECT_EQ(agg.events(), 3u);
  const std::string table = agg.FormatTable();
  EXPECT_NE(table.find("cell.work"), std::string::npos);
  EXPECT_NE(table.find("cell.other"), std::string::npos);
}

}  // namespace
}  // namespace omcast
