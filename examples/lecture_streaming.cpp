// Distance-lecture streaming: the error-recovery data path up close.
//
// A small classroom overlay streams a 90-minute lecture. The example drives
// the CER machinery explicitly for one failure: it shows the partial tree a
// member reconstructs from gossip, the MLC recovery group Algorithm 1
// derives from it (with its total loss correlation vs a random pick), the
// striped repair chain with per-stripe rates, and the ELN classification a
// downstream member performs to decide between "wait for upstream repair"
// and "my parent is gone, rejoin".
//
//   ./examples/lecture_streaming [--students=300] [--seed=11]
#include <iostream>

#include "core/cer/eln.h"
#include "core/cer/group.h"
#include "core/cer/mlc.h"
#include "core/cer/partial_tree.h"
#include "core/cer/recovery.h"
#include "net/topology.h"
#include "proto/min_depth.h"
#include "rand/rng.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  flags.Define("students", "300", "class size")
      .Define("seed", "11", "random seed");
  if (!flags.Parse(argc, argv)) return 1;
  const int students = flags.GetInt("students");
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed"));

  rnd::Rng topo_rng(42);
  const net::Topology topology =
      net::Topology::Generate(net::SmallTopologyParams(), topo_rng);
  sim::Simulator sim;
  overlay::Session session(sim, topology,
                           std::make_unique<proto::MinDepthProtocol>(),
                           overlay::SessionParams{}, seed);
  session.Prepopulate(students);
  sim.RunUntil(300.0);
  std::cout << "lecture overlay: " << session.alive_count()
            << " students, tree depth " << session.tree().Depth() << "\n\n";

  // Pick a member with an upstream worth losing: some node whose parent is
  // an internal node below the root.
  overlay::NodeId victim = overlay::kNoNode;
  for (overlay::NodeId id : session.alive_members()) {
    if (session.tree().Layer(id) >= 3 && session.tree().IsRooted(id)) {
      victim = id;
      break;
    }
  }
  if (victim == overlay::kNoNode) victim = session.alive_members().front();

  // 1. Partial tree from the victim's gossip view.
  const auto known = session.SampleCandidates(100, victim);
  const core::PartialTree view = core::PartialTree::Build(session.tree(), known);
  std::cout << "partial tree from gossip: " << view.nodes().size()
            << " members spliced from " << known.size() << " records, "
            << view.Levels().size() << " levels\n";

  // 2. MLC group vs a random pick.
  const auto group =
      core::SelectRecoveryGroup(session, victim, 4, core::GroupSelection::kMlc);
  auto random_group = session.rng().SampleWithoutReplacement(
      session.alive_members(), group.size());
  std::cout << "MLC recovery group loss correlation: "
            << core::TotalLossCorrelation(session.tree(), group)
            << "  (random pick: "
            << core::TotalLossCorrelation(session.tree(), random_group)
            << ")\n\n";

  // 3. The striped repair chain for a parent failure.
  core::OutageSpec spec;
  rnd::Rng residuals(seed ^ 0xABC);
  util::Table chain({"recovery node", "distance(ms)", "residual(pkt/s)",
                     "stripe"});
  double covered = 0.0;
  for (const overlay::NodeId g : group) {
    core::RecoverySource src;
    src.usable = true;
    src.rate_fraction = residuals.Uniform(0.0, 9.0) / 10.0;
    src.hop_latency_s = session.DelayMs(victim, g) / 1000.0;
    const double from = std::min(covered, 1.0);
    covered += src.rate_fraction;
    const double to = std::min(covered, 1.0);
    chain.AddRow({std::to_string(g),
                  util::FormatDouble(session.DelayMs(victim, g), 1),
                  util::FormatDouble(src.rate_fraction * 10.0, 1),
                  "(n mod 100) in [" + util::FormatDouble(100.0 * from, 0) +
                      ", " + util::FormatDouble(100.0 * to, 0) + ")"});
    spec.chain.push_back(src);
    if (covered >= 1.0) break;
  }
  chain.Print(std::cout, "striped full-rate repair request chain");

  const core::OutageResult outage = core::SimulateOutage(spec);
  std::cout << "\noutage of " << outage.packets_total
            << " packets: " << outage.packets_recovered
            << " repaired in time, " << outage.packets_lost << " lost -> "
            << util::FormatDouble(outage.starving_s, 1)
            << "s playback stall (aggregate repair rate "
            << util::FormatDouble(outage.aggregate_rate, 2) << ")\n\n";

  // 4. ELN classification downstream.
  core::ElnTracker tracker;
  for (int seq = 0; seq < 5; ++seq) tracker.OnData(seq);
  for (int seq = 5; seq < 9; ++seq) tracker.OnEln(seq);  // parent: "lost too"
  std::cout << "downstream member sees data 0-4 then ELN 5-8: status = "
            << (tracker.status() == core::ElnTracker::Status::kUpstreamLoss
                    ? "upstream loss (wait for repair, do NOT rejoin)"
                    : "unexpected")
            << "\n";
  core::ElnTracker silent;
  silent.OnData(0);
  silent.OnData(9);  // 8-packet hole, no ELN: the parent went dark
  std::cout << "another member sees data 0 then 9 with no ELN:  status = "
            << (silent.status() == core::ElnTracker::Status::kParentFailure
                    ? "parent failure (launch rejoin)"
                    : "unexpected")
            << "\n";
  return 0;
}
