#include "metrics/collectors.h"

#include "util/check.h"

namespace omcast::metrics {

using overlay::Member;
using overlay::NodeId;
using overlay::Session;

MemberOutcomes::MemberOutcomes(Session& session) : session_(session) {
  session_.hooks().AddOnMemberDeparted([this](const Member& m) {
    const double now = session_.simulator().now();
    if (now < begin_ || now > end_) return;
    if (m.join_time < 0.0) return;  // pre-populated member
    disruptions_.Add(static_cast<double>(m.disruptions));
    reconnections_.Add(static_cast<double>(m.reconnections));
    disruption_samples_.push_back(static_cast<double>(m.disruptions));
  });
}

void MemberOutcomes::SetWindow(double begin_s, double end_s) {
  util::Check(begin_s < end_s, "empty measurement window");
  begin_ = begin_s;
  end_ = end_s;
}

void MemberOutcomes::HarvestAliveMembers() {
  for (overlay::NodeId id : session_.alive_members()) {
    const overlay::Member& m = session_.tree().Get(id);
    if (m.join_time < 0.0) continue;  // pre-populated member
    disruptions_.Add(static_cast<double>(m.disruptions));
    reconnections_.Add(static_cast<double>(m.reconnections));
    disruption_samples_.push_back(static_cast<double>(m.disruptions));
  }
}

TreeSnapshots::TreeSnapshots(Session& session, double interval_s)
    : session_(session), interval_s_(interval_s) {
  util::Check(interval_s > 0.0, "snapshot interval must be positive");
}

void TreeSnapshots::Start(double begin_s, double end_s) {
  util::Check(begin_s <= end_s, "snapshot window inverted");
  session_.simulator().ScheduleAt(begin_s, [this, end_s] { Snap(end_s); });
}

void TreeSnapshots::Snap(double end_s) {
  const overlay::Tree& tree = session_.tree();
  double max_layer = 0.0;
  int counted = 0;
  for (NodeId id : session_.alive_members()) {
    if (!tree.InTree(id) || !tree.IsRooted(id)) continue;
    delay_ms_.Add(session_.OverlayDelayMs(id));
    stretch_.Add(session_.Stretch(id));
    if (tree.Layer(id) > max_layer) max_layer = tree.Layer(id);
    ++counted;
  }
  depth_.Add(max_layer);
  population_.Add(static_cast<double>(counted));
  ++snaps_;
  const double next = session_.simulator().now() + interval_s_;
  if (next <= end_s)
    session_.simulator().ScheduleAt(next, [this, end_s] { Snap(end_s); });
}

MemberTrace::MemberTrace(Session& session, double sample_interval_s)
    : session_(session), sample_interval_s_(sample_interval_s) {
  util::Check(sample_interval_s > 0.0, "sample interval must be positive");
  session_.hooks().AddOnDisruption([this](NodeId affected, NodeId) {
    if (affected != tracked_) return;
    ++count_;
    disruptions_.push_back(
        {session_.simulator().now(), static_cast<double>(count_)});
  });
}

void MemberTrace::Track(NodeId id) {
  util::Check(tracked_ == overlay::kNoNode, "trace already bound");
  tracked_ = id;
  SampleDelay();
}

void MemberTrace::SampleDelay() {
  const overlay::Tree& tree = session_.tree();
  if (!tree.Alive(tracked_)) return;  // member departed; stop sampling
  if (tree.InTree(tracked_) && tree.IsRooted(tracked_))
    delays_.push_back(
        {session_.simulator().now(), session_.OverlayDelayMs(tracked_)});
  session_.simulator().ScheduleAfter(sample_interval_s_,
                                     [this] { SampleDelay(); });
}

}  // namespace omcast::metrics
