#!/usr/bin/env python3
"""Validate an omcast protocol trace (JSONL export of obs::Tracer).

Checks every line against scripts/trace_schema.json (hand-rolled draft-07
subset -- stdlib only, no jsonschema dependency) plus the stream-level
invariants the schema cannot express:

  * ids strictly increase by exactly 1 (the ring never reorders and an
    export never skips an event it retained);
  * timestamps are non-decreasing (sim time cannot go backwards);
  * timestamps are finite (NaN/Inf would mean a corrupted payload).

Usage:
    validate_trace.py TRACE.jsonl [TRACE2.jsonl ...]
    some_tool | validate_trace.py -

Exit status: 0 valid, 1 invalid, 2 usage/IO error.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).resolve().parent / "trace_schema.json"
MAX_REPORTED_ERRORS = 20


def load_schema() -> dict:
    with open(SCHEMA_PATH, encoding="utf-8") as f:
        return json.load(f)


def check_record(record: object, schema: dict) -> list[str]:
    """Validates one parsed JSONL record against the schema subset we use."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return ["line is not a JSON object"]
    props: dict = schema["properties"]
    for key in schema["required"]:
        if key not in record:
            errors.append(f"missing required field '{key}'")
    if not schema.get("additionalProperties", True):
        for key in record:
            if key not in props:
                errors.append(f"unknown field '{key}'")
    for key, value in record.items():
        spec = props.get(key)
        if spec is None:
            continue
        expected = spec["type"]
        if expected == "integer":
            ok = isinstance(value, int) and not isinstance(value, bool)
        elif expected == "number":
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        elif expected == "string":
            ok = isinstance(value, str)
        else:
            ok = True
        if not ok:
            errors.append(f"field '{key}': expected {expected}, "
                          f"got {type(value).__name__}")
            continue
        if "minimum" in spec and isinstance(value, (int, float)) \
                and value < spec["minimum"]:
            errors.append(f"field '{key}': {value} < minimum {spec['minimum']}")
        if "enum" in spec and value not in spec["enum"]:
            errors.append(f"field '{key}': '{value}' not in the schema enum")
    return errors


def validate_stream(lines, name: str, schema: dict) -> tuple[int, int]:
    """Returns (records, errors) for one JSONL stream."""
    records = 0
    errors = 0
    prev_id: int | None = None
    prev_t: float | None = None

    def report(lineno: int, message: str) -> None:
        nonlocal errors
        errors += 1
        if errors <= MAX_REPORTED_ERRORS:
            print(f"{name}:{lineno}: {message}")
        elif errors == MAX_REPORTED_ERRORS + 1:
            print(f"{name}: ... further errors suppressed")

    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        records += 1
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            report(lineno, f"not valid JSON: {e}")
            continue
        for message in check_record(record, schema):
            report(lineno, message)
        if not isinstance(record, dict):
            continue
        rid = record.get("id")
        t = record.get("t")
        if isinstance(rid, int) and not isinstance(rid, bool):
            if prev_id is not None and rid != prev_id + 1:
                report(lineno, f"id {rid} does not follow {prev_id} "
                               f"(ids must increase by exactly 1)")
            prev_id = rid
        if isinstance(t, (int, float)) and not isinstance(t, bool):
            if not math.isfinite(t):
                report(lineno, f"non-finite timestamp {t}")
            elif prev_t is not None and t < prev_t:
                report(lineno, f"time went backwards: {t} < {prev_t}")
            else:
                prev_t = float(t)
    return records, errors


def main(argv: list[str]) -> int:
    if not argv or "-h" in argv or "--help" in argv:
        print(__doc__)
        return 0 if argv else 2
    try:
        schema = load_schema()
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load {SCHEMA_PATH}: {e}", file=sys.stderr)
        return 2
    total_errors = 0
    for arg in argv:
        if arg == "-":
            records, errors = validate_stream(sys.stdin, "<stdin>", schema)
        else:
            try:
                with open(arg, encoding="utf-8") as f:
                    records, errors = validate_stream(f, arg, schema)
            except OSError as e:
                print(f"error: {e}", file=sys.stderr)
                return 2
        total_errors += errors
        if records == 0:
            # An empty trace usually means the tracer was never attached;
            # validating nothing must not read as success.
            print(f"{arg}: no trace records found", file=sys.stderr)
            total_errors += 1
        elif errors == 0:
            print(f"{arg}: OK ({records} events)")
    return 1 if total_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
