// Overlay member (tree node) model.
//
// Every member is an end host (a stub node of the underlying topology) with
// an outbound-bandwidth constraint. Bandwidth is expressed in units of the
// stream rate, so a member with bandwidth b can feed floor(b) children
// (its out-degree constraint); b < 1 is a free-rider. The multicast source
// is member 0 and never departs.
//
// The Member record holds the COLD per-node state: identity, bandwidth and
// BTP inputs, lifetime and the paper's per-member counters. The hot state
// the protocols touch on every event -- tree links (parent / child list),
// layer, liveness, in-tree flag and out-degree capacity -- lives in flat
// arrays inside overlay::Tree (SoA, indexed by the dense NodeId), where a
// churn scan walks contiguous memory instead of striding over ~100-byte
// records; access it through Tree::Parent/Layer/Alive/InTree/Capacity/
// SpareCapacity/ChildrenOf and mutate it through Tree operations.
#pragma once

#include "net/topology.h"
#include "sim/simulator.h"

namespace omcast::overlay {

using NodeId = int;
inline constexpr NodeId kNoNode = -1;
inline constexpr NodeId kRootId = 0;

struct Member {
  NodeId id = kNoNode;
  net::HostId host = 0;

  // Actual outbound bandwidth (units of stream rate). The derived out-degree
  // constraint floor(bandwidth) is hot state: Tree::Capacity().
  double bandwidth = 0.0;

  // What the member *claims*; differs from the actuals only for cheaters
  // (Section 3.4). Honest members report truthfully.
  double reported_bandwidth = 0.0;
  double reported_age_bonus = 0.0;  // seconds added to the claimed age

  sim::Time join_time = 0.0;  // may be negative for equilibrium pre-population
  sim::Time lifetime = 0.0;   // departs at join_time + lifetime

  // --- Metrics ------------------------------------------------------------
  // Streaming disruptions experienced (one per failed ancestor, Section 6).
  int disruptions = 0;
  // Parent changes imposed by the optimization mechanism (evictions, ROST
  // switches) -- the paper's protocol-overhead metric. Failure rejoins are
  // *not* counted here.
  int reconnections = 0;

  sim::Time Age(sim::Time now) const { return now - join_time; }
  // Bandwidth-time product (Section 3.2) from the actual values.
  double Btp(sim::Time now) const { return bandwidth * Age(now); }
  // BTP as the member would *claim* it (cheaters inflate this).
  double ClaimedBtp(sim::Time now) const {
    return reported_bandwidth * (Age(now) + reported_age_bonus);
  }
  bool IsRoot() const { return id == kRootId; }
};

}  // namespace omcast::overlay
