// Ad-hoc scenario driver: run any algorithm / topology / workload
// combination from the command line and get a one-line (or CSV) summary.
//
//   ./examples/scenario_cli --algorithm=rost --population=2000
//   ./examples/scenario_cli --algorithm=relaxed-bo --stream=1 --format=csv
//
// Useful for parameter exploration beyond the fixed figure benches.
#include <iostream>
#include <memory>

#include "exp/scenario.h"
#include "metrics/collectors.h"
#include "net/topology.h"
#include "overlay/gossip.h"
#include "sim/simulator.h"
#include "stream/streaming.h"
#include "util/flags.h"

namespace {

using namespace omcast;

exp::Algorithm ParseAlgorithm(const std::string& name) {
  if (name == "min-depth") return exp::Algorithm::kMinDepth;
  if (name == "longest-first") return exp::Algorithm::kLongestFirst;
  if (name == "relaxed-bo") return exp::Algorithm::kRelaxedBo;
  if (name == "relaxed-to") return exp::Algorithm::kRelaxedTo;
  if (name == "rost") return exp::Algorithm::kRost;
  std::cerr << "unknown algorithm '" << name
            << "' (min-depth|longest-first|relaxed-bo|relaxed-to|rost)\n";
  std::exit(1);
}

net::TopologyParams ParseTopology(const std::string& name) {
  if (name == "paper") return net::PaperTopologyParams();
  if (name == "small") return net::SmallTopologyParams();
  if (name == "tiny") return net::TinyTopologyParams();
  std::cerr << "unknown topology '" << name << "' (paper|small|tiny)\n";
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags;
  flags.Define("algorithm", "rost", "min-depth|longest-first|relaxed-bo|relaxed-to|rost")
      .Define("topology", "paper", "paper|small|tiny")
      .Define("population", "2000", "steady-state size M")
      .Define("warmup", "5400", "warm-up seconds")
      .Define("measure", "3600", "measurement seconds")
      .Define("seed", "1", "RNG seed")
      .Define("rost-interval", "360", "ROST switching interval (s)")
      .Define("rost-referees", "0", "verify BTP claims via referees")
      .Define("gossip", "0", "use the real gossip membership service")
      .Define("stream", "0", "attach the streaming layer (starving ratio)")
      .Define("group", "3", "recovery group size (with --stream)")
      .Define("selection", "mlc", "mlc|random (with --stream)")
      .Define("mode", "coop", "coop|single (with --stream)")
      .Define("buffer", "5", "playback buffer seconds (with --stream)")
      .Define("format", "table", "table|csv");
  if (!flags.Parse(argc, argv)) return 1;

  const exp::Algorithm algorithm = ParseAlgorithm(flags.GetString("algorithm"));
  rnd::Rng topo_rng(static_cast<std::uint64_t>(flags.GetInt("seed")) ^ 0x70706fULL);
  const net::Topology topology =
      net::Topology::Generate(ParseTopology(flags.GetString("topology")), topo_rng);

  core::RostParams rost;
  rost.switching_interval_s = flags.GetDouble("rost-interval");
  rost.use_referees = flags.GetBool("rost-referees");

  sim::Simulator sim;
  overlay::Session session(sim, topology, exp::MakeProtocol(algorithm, rost),
                           overlay::SessionParams{},
                           static_cast<std::uint64_t>(flags.GetInt("seed")));
  std::unique_ptr<overlay::GossipService> gossip;
  if (flags.GetBool("gossip")) {
    gossip = std::make_unique<overlay::GossipService>(
        session, overlay::GossipParams{}, 0x905517);
    session.SetMembershipOracle(gossip.get());
  }
  std::unique_ptr<stream::StreamingLayer> streaming;
  if (flags.GetBool("stream")) {
    stream::StreamParams sp;
    sp.recovery_group_size = flags.GetInt("group");
    sp.buffer_s = flags.GetDouble("buffer");
    sp.selection = flags.GetString("selection") == "random"
                       ? core::GroupSelection::kRandom
                       : core::GroupSelection::kMlc;
    sp.mode = flags.GetString("mode") == "single"
                  ? core::RecoveryMode::kSingleSource
                  : core::RecoveryMode::kCooperative;
    streaming = std::make_unique<stream::StreamingLayer>(session, sp, 0x57BEA);
  }

  metrics::MemberOutcomes outcomes(session);
  metrics::TreeSnapshots snapshots(session, 300.0);
  const double warmup = flags.GetDouble("warmup");
  const double end = warmup + flags.GetDouble("measure");
  outcomes.SetWindow(warmup, end);
  snapshots.Start(warmup, end);
  if (streaming) streaming->SetMeasurementWindow(warmup, end);

  const int population = flags.GetInt("population");
  session.Prepopulate(population);
  session.StartArrivals(population / rnd::kMeanLifetimeSeconds);
  sim.RunUntil(end);
  outcomes.HarvestAliveMembers();

  const double starving =
      streaming ? 100.0 * streaming->ratio_stat().mean() : 0.0;
  if (flags.GetString("format") == "csv") {
    std::cout << "algorithm,population,disruptions,reconnections,delay_ms,"
                 "stretch,depth,starving_pct\n"
              << flags.GetString("algorithm") << ',' << population << ','
              << outcomes.disruptions().mean() << ','
              << outcomes.reconnections().mean() << ','
              << snapshots.delay_ms().mean() << ','
              << snapshots.stretch().mean() << ','
              << snapshots.depth().mean() << ',' << starving << '\n';
  } else {
    std::cout << flags.GetString("algorithm") << " @ " << population
              << " members (" << flags.GetString("topology") << " topology)\n"
              << "  disruptions/node:  " << outcomes.disruptions().mean()
              << "\n  reconnects/node:   " << outcomes.reconnections().mean()
              << "\n  service delay:     " << snapshots.delay_ms().mean()
              << " ms\n  stretch:           " << snapshots.stretch().mean()
              << "\n  tree depth:        " << snapshots.depth().mean() << "\n";
    if (streaming)
      std::cout << "  starving ratio:    " << starving << " % (group "
                << flags.GetInt("group") << ", "
                << flags.GetString("selection") << ", "
                << flags.GetString("mode") << ")\n";
  }
  return 0;
}
