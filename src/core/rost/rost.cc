#include "core/rost/rost.h"

#include <algorithm>

#include "obs/registry.h"
#include "obs/trace.h"
#include "proto/selection.h"
#include "util/check.h"

namespace omcast::core {

using overlay::kNoNode;
using overlay::kRootId;
using overlay::Member;
using overlay::NodeId;
using overlay::Session;

RostProtocol::RostProtocol(RostParams params)
    : params_(params), referees_(params.referee) {
  util::Check(params_.switching_interval_s > 0.0,
              "switching interval must be positive");
  util::Check(params_.lock_retry_delay_s > 0.0,
              "lock retry delay must be positive");
  util::Check(params_.lock_hold_s > 0.0, "lock hold time must be positive");
  util::Check(params_.lock_request_timeout_s > 0.0,
              "lock request timeout must be positive");
  util::Check(params_.lock_lease_s > params_.lock_request_timeout_s,
              "a lease must outlive the grant-collection window");
  util::Check(params_.lock_retry_max_backoff >= 1,
              "lock retry backoff cap must be at least 1");
}

RostProtocol::NodeState& RostProtocol::StateFor(NodeId id) {
  if (state_.size() <= static_cast<std::size_t>(id))
    state_.resize(static_cast<std::size_t>(id) + 1);
  return state_[static_cast<std::size_t>(id)];
}

bool RostProtocol::TryAttach(Session& session, NodeId id) {
  // Joining is the minimum-depth rule: newcomers start low and earn their
  // way up via BTP (Section 3.3: moving nodes up gradually keeps short-lived
  // clients from climbing on arrival).
  const std::vector<NodeId> candidates =
      session.CollectJoinPool(session.params().candidate_sample_size, id);
  const NodeId parent = proto::PickMinDepthParent(session, candidates, id);
  if (parent != kNoNode) {
    session.tree().Attach(parent, id);
    return true;
  }
  return TryPreemptJoin(session, candidates, id);
}

bool RostProtocol::TryPreemptJoin(Session& session,
                                  const std::vector<NodeId>& candidates,
                                  NodeId id) {
  overlay::Tree& tree = session.tree();
  const Member& joiner = tree.Get(id);
  // The joiner must be able to host the displaced leaf on top of any
  // fragment children it brings along; otherwise the splice would detach
  // someone, and a free-rider displacing a free-rider would just ping-pong.
  if (tree.SpareCapacity(id) < 1) return false;
  NodeId weakest = kNoNode;
  for (NodeId c : candidates) {
    if (c == kRootId) continue;
    const Member& m = tree.Get(c);
    if (tree.ChildCount(c) != 0) continue;  // only leaves: nobody else moves
    if (m.reported_bandwidth >= joiner.reported_bandwidth) continue;
    if (weakest == kNoNode ||
        m.reported_bandwidth < tree.Get(weakest).reported_bandwidth ||
        (m.reported_bandwidth == tree.Get(weakest).reported_bandwidth &&
         c < weakest))
      weakest = c;
  }
  if (weakest == kNoNode) return false;
  // Splice: the joiner takes the leaf's slot, the leaf becomes its child.
  // Rooted fan-out grows by the joiner's spare capacity minus the slot the
  // leaf re-occupies, so repeated preemptions drain the orphan backlog a
  // correlated kill leaves behind instead of deadlocking on a full tree.
  const NodeId slot_parent = tree.Parent(weakest);
  tree.Detach(weakest);
  tree.Attach(slot_parent, id);
  tree.Attach(id, weakest);
  ++tree.Get(weakest).reconnections;
  ++preempt_joins_;
  OMCAST_DCHECK(tree.IsRooted(id) && tree.IsRooted(weakest),
                "preempt join must leave both members rooted");
  return true;
}

void RostProtocol::OnAttached(Session& session, NodeId id) {
  NodeState& st = StateFor(id);
  st.recovering = false;
  if (params_.use_referees && !referees_.IsEnrolled(id))
    referees_.Enroll(session, id);
  ScheduleCheck(session, id, params_.switching_interval_s);
}

void RostProtocol::OnDeparture(Session& session, NodeId id) {
  NodeState& st = StateFor(id);
  if (st.timer != sim::kInvalidEventId) {
    session.simulator().Cancel(st.timer);
    st.timer = sim::kInvalidEventId;
  }
  if (st.handshake != nullptr) {
    // A dead initiator sends no releases: its own lease and every granted
    // participant lease are left to their expiry events, so the accounting
    // identity granted == released + expired still closes.
    if (st.handshake->timeout != sim::kInvalidEventId)
      session.simulator().Cancel(st.handshake->timeout);
    st.handshake.reset();
  }
}

void RostProtocol::OnOrphaned(Session&, NodeId id) {
  // Mid failure-recovery: the member neither initiates switches nor lets
  // others lock it into one (Section 3.3 lock rule).
  StateFor(id).recovering = true;
}

void RostProtocol::ScheduleCheck(Session& session, NodeId id, double delay_s) {
  NodeState& st = StateFor(id);
  if (st.timer != sim::kInvalidEventId) session.simulator().Cancel(st.timer);
  st.timer = session.simulator().ScheduleAfter(
      delay_s, [this, &session, id] { CheckSwitch(session, id); },
      "rost.check");
}

double RostProtocol::EffectiveBtp(Session& session, NodeId id) {
  const sim::Time now = session.simulator().now();
  if (params_.use_referees && referees_.IsEnrolled(id))
    return referees_.VerifiedBandwidth(session, id) *
           referees_.VerifiedAge(session, id, now);
  return session.tree().Get(id).ClaimedBtp(now);
}

double RostProtocol::EffectiveBandwidth(Session& session, NodeId id) {
  if (params_.use_referees && referees_.IsEnrolled(id))
    return referees_.VerifiedBandwidth(session, id);
  return session.tree().Get(id).reported_bandwidth;
}

double RostProtocol::EffectiveAge(Session& session, NodeId id) {
  const sim::Time now = session.simulator().now();
  if (params_.use_referees && referees_.IsEnrolled(id))
    return referees_.VerifiedAge(session, id, now);
  const overlay::Member& m = session.tree().Get(id);
  return m.Age(now) + m.reported_age_bonus;
}

bool RostProtocol::TryLock(Session& session, const std::vector<NodeId>& set) {
  const sim::Time now = session.simulator().now();
  for (NodeId id : set) {
    const NodeState& st = StateFor(id);
    if (st.locked_until > now || st.recovering) return false;
  }
  for (NodeId id : set) StateFor(id).locked_until = now + params_.lock_hold_s;
  AuditLockSet(session, set);
  return true;
}

void RostProtocol::AuditLockSet(Session& session,
                                const std::vector<NodeId>& set) {
  if constexpr (!util::kDcheckEnabled) {
    (void)session;
    (void)set;
    return;
  }
  const sim::Time now = session.simulator().now();
  for (NodeId id : set) {
    const NodeState& st = StateFor(id);
    OMCAST_DCHECK(st.locked_until > now,
                  "acquired lock set member must hold its lock");
    OMCAST_DCHECK(!st.recovering,
                  "lock must never be granted over a recovering member");
  }
}

void RostProtocol::CheckSwitchNow(Session& session, NodeId id) {
  CheckSwitch(session, id);
}

// --- lease-path handshake ---------------------------------------------------

void RostProtocol::StartHandshake(Session& session, NodeId id, NodeId parent,
                                  std::vector<NodeId> lock_set) {
  NodeState& st = StateFor(id);
  auto hs = std::make_unique<Handshake>();
  hs->serial = ++st.handshake_serial;
  hs->parent = parent;
  for (NodeId n : lock_set)
    if (n != id) hs->participants.push_back(n);
  hs->granted.assign(hs->participants.size(), 0);
  hs->lease_serial.assign(hs->participants.size(), 0);
  // The initiator leases itself locally; messages cover everyone else.
  hs->self_lease_serial = GrantLease(session, id, id);
  const std::uint64_t serial = hs->serial;
  hs->timeout = session.simulator().ScheduleAfter(
      params_.lock_request_timeout_s,
      [this, &session, id, serial] { OnLockTimeout(session, id, serial); },
      "rost.lock_timeout");
  StateFor(id).handshake = std::move(hs);
  for (NodeId p : StateFor(id).handshake->participants) {
    const double hop = session.DelayMs(id, p) / 1000.0;
    fault_plane_->Deliver(id, p, hop, [this, &session, p, id, serial] {
      OnLockRequest(session, p, id, serial);
    });
  }
}

void RostProtocol::OnLockRequest(Session& session, NodeId participant,
                                 NodeId holder, std::uint64_t hs_serial) {
  // A dead participant is simply silent; the initiator's timeout covers it.
  if (!session.tree().Alive(participant)) return;
  const sim::Time now = session.simulator().now();
  if (obs::Tracer* tr = session.tracer(); tr != nullptr)
    tr->Emit(now, obs::EventKind::kLockRequest, participant, holder,
             static_cast<std::int64_t>(hs_serial));
  const double hop = session.DelayMs(participant, holder) / 1000.0;
  NodeState& ps = StateFor(participant);
  if (ps.lease_held && ps.lease_holder == holder) {
    // Duplicated request: re-send the grant idempotently (same serial, so
    // the initiator's dedup and the eventual release still line up).
    const std::uint64_t lease = ps.lease_serial;
    fault_plane_->Deliver(
        participant, holder, hop,
        [this, &session, holder, participant, hs_serial, lease] {
          OnLockGrant(session, holder, participant, hs_serial, lease);
        });
    return;
  }
  if (ps.locked_until > now || ps.recovering) {
    fault_plane_->Deliver(participant, holder, hop,
                          [this, &session, holder, hs_serial] {
                            OnLockDeny(session, holder, hs_serial);
                          });
    return;
  }
  const std::uint64_t lease = GrantLease(session, participant, holder);
  fault_plane_->Deliver(
      participant, holder, hop,
      [this, &session, holder, participant, hs_serial, lease] {
        OnLockGrant(session, holder, participant, hs_serial, lease);
      });
}

void RostProtocol::OnLockGrant(Session& session, NodeId holder,
                               NodeId participant, std::uint64_t hs_serial,
                               std::uint64_t lease_serial) {
  NodeState& st = StateFor(holder);
  Handshake* hs = st.handshake.get();
  if (hs == nullptr || hs->serial != hs_serial) {
    // Late grant for an abandoned attempt: free the participant early
    // rather than letting its lease run out (a dead holder stays silent,
    // leaving the lease to expire).
    if (session.tree().Alive(holder))
      SendRelease(session, holder, participant, lease_serial);
    return;
  }
  for (std::size_t i = 0; i < hs->participants.size(); ++i) {
    if (hs->participants[i] != participant) continue;
    if (hs->granted[i]) return;  // duplicated grant message
    hs->granted[i] = 1;
    hs->lease_serial[i] = lease_serial;
    ++hs->grants;
    break;
  }
  if (hs->grants == static_cast<int>(hs->participants.size()))
    CompleteHandshake(session, holder);
}

void RostProtocol::OnLockDeny(Session& session, NodeId holder,
                              std::uint64_t hs_serial) {
  NodeState& st = StateFor(holder);
  if (st.handshake == nullptr || st.handshake->serial != hs_serial) return;
  ++lock_conflicts_;
  if (obs::Tracer* tr = session.tracer(); tr != nullptr)
    tr->Emit(session.simulator().now(), obs::EventKind::kLockDeny, holder,
             kNoNode, static_cast<std::int64_t>(hs_serial));
  FailHandshake(session, holder);
}

void RostProtocol::OnLockTimeout(Session& session, NodeId holder,
                                 std::uint64_t hs_serial) {
  NodeState& st = StateFor(holder);
  if (st.handshake == nullptr || st.handshake->serial != hs_serial) return;
  st.handshake->timeout = sim::kInvalidEventId;  // this event just fired
  ++lock_timeouts_;
  if (obs::Tracer* tr = session.tracer(); tr != nullptr)
    tr->Emit(session.simulator().now(), obs::EventKind::kLockTimeout, holder,
             kNoNode, static_cast<std::int64_t>(hs_serial));
  FailHandshake(session, holder);
}

void RostProtocol::CompleteHandshake(Session& session, NodeId holder) {
  const Handshake& hs = *StateFor(holder).handshake;
  obs::Tracer* const tracer = session.tracer();
  // kSwitchAbort reasons: 1 = neighbourhood drifted while grants were in
  // flight, 2 = the switch condition no longer holds, 3 = infeasible.
  const auto trace_abort = [&](std::int64_t reason) {
    if (tracer != nullptr)
      tracer->Emit(session.simulator().now(), obs::EventKind::kSwitchAbort,
                   holder, hs.parent, reason);
  };
  // Re-validate before swapping: the tree may have drifted while grants
  // were in flight (a neighbour died, a newcomer attached under the parent,
  // the member was re-parented). The leases only cover the neighbourhood
  // captured at initiation; any drift means the swap would rearrange edges
  // nobody locked, so abort and release.
  const overlay::Tree& tree = session.tree();
  bool valid = tree.Alive(holder) && tree.Parent(holder) == hs.parent &&
               tree.IsRooted(holder);
  if (valid) {
    std::vector<NodeId> current = BuildLockSet(session, holder, hs.parent);
    std::vector<NodeId> locked = hs.participants;
    locked.push_back(holder);
    std::sort(current.begin(), current.end());
    std::sort(locked.begin(), locked.end());
    valid = current == locked;
  }
  if (!valid) {
    ++handshake_aborts_;
    trace_abort(1);
    TearDownHandshake(session, holder);
    ScheduleCheck(session, holder, params_.switching_interval_s);
    return;
  }
  if (!SwitchConditionHolds(session, holder, hs.parent)) {
    // The BTPs moved on while the handshake ran; nothing to do after all.
    trace_abort(2);
    TearDownHandshake(session, holder);
    StateFor(holder).failed_attempts = 0;
    ScheduleCheck(session, holder, params_.switching_interval_s);
    return;
  }
  if (!SwitchFeasible(session, holder, hs.parent)) {
    ++infeasible_;
    trace_abort(3);
    TearDownHandshake(session, holder);
    ScheduleCheck(session, holder, params_.switching_interval_s);
    return;
  }
  const NodeId parent = hs.parent;
  PerformSwitch(session, holder, parent);
  // Emitted before the teardown releases the leases, so the commit always
  // falls inside the holder's own lease window (the causality test's
  // invariant).
  if (tracer != nullptr)
    tracer->Emit(session.simulator().now(), obs::EventKind::kSwitchCommit,
                 holder, parent);
  TearDownHandshake(session, holder);
  StateFor(holder).failed_attempts = 0;
  ScheduleCheck(session, holder, params_.switching_interval_s);
}

void RostProtocol::FailHandshake(Session& session, NodeId holder) {
  TearDownHandshake(session, holder);
  RetryAfterFailure(session, holder);
}

void RostProtocol::TearDownHandshake(Session& session, NodeId holder) {
  NodeState& st = StateFor(holder);
  util::Check(st.handshake != nullptr, "no handshake to tear down");
  const Handshake hs = std::move(*st.handshake);
  st.handshake.reset();
  if (hs.timeout != sim::kInvalidEventId)
    session.simulator().Cancel(hs.timeout);
  ReleaseLease(session, holder, holder, hs.self_lease_serial);
  for (std::size_t i = 0; i < hs.participants.size(); ++i)
    if (hs.granted[i])
      SendRelease(session, holder, hs.participants[i], hs.lease_serial[i]);
}

std::uint64_t RostProtocol::GrantLease(Session& session, NodeId node,
                                       NodeId holder) {
  NodeState& st = StateFor(node);
  const sim::Time now = session.simulator().now();
  st.locked_until = now + params_.lock_lease_s;
  st.lease_held = true;
  st.lease_holder = holder;
  const std::uint64_t serial = ++st.lease_serial;
  ++leases_granted_;
  if (obs::Tracer* tr = session.tracer(); tr != nullptr)
    tr->Emit(now, obs::EventKind::kLockGrant, node, holder,
             static_cast<std::int64_t>(serial));
  // Expiry is unconditional bookkeeping, deliberately independent of the
  // node's liveness: a participant that dies holding a lease is reaped
  // here, which is what makes a wedged lock impossible.
  session.simulator().ScheduleAt(
      st.locked_until,
      [this, &session, node, serial] {
        NodeState& s = StateFor(node);
        if (s.lease_held && s.lease_serial == serial) {
          s.lease_held = false;
          const NodeId was_holder = s.lease_holder;
          s.lease_holder = kNoNode;
          ++leases_expired_;
          if (obs::Tracer* tr = session.tracer(); tr != nullptr)
            tr->Emit(session.simulator().now(), obs::EventKind::kLockExpire,
                     node, was_holder, static_cast<std::int64_t>(serial));
        }
      },
      "rost.lease_expiry");
  return serial;
}

void RostProtocol::ReleaseLease(Session& session, NodeId node, NodeId holder,
                                std::uint64_t lease_serial) {
  NodeState& st = StateFor(node);
  // The serial disambiguates: a delayed release from an old attempt must
  // not free a lease the same holder re-acquired since.
  if (!st.lease_held || st.lease_holder != holder ||
      st.lease_serial != lease_serial)
    return;
  st.lease_held = false;
  st.lease_holder = kNoNode;
  st.locked_until = session.simulator().now();
  ++leases_released_;
  if (obs::Tracer* tr = session.tracer(); tr != nullptr)
    tr->Emit(session.simulator().now(), obs::EventKind::kLockRelease, node,
             holder, static_cast<std::int64_t>(lease_serial));
}

void RostProtocol::SendRelease(Session& session, NodeId holder,
                               NodeId participant, std::uint64_t lease_serial) {
  const double hop = session.DelayMs(holder, participant) / 1000.0;
  fault_plane_->Deliver(holder, participant, hop,
                        [this, &session, participant, holder, lease_serial] {
                          ReleaseLease(session, participant, holder,
                                       lease_serial);
                        });
}

long RostProtocol::WedgedLeases(sim::Time now) const {
  long wedged = 0;
  for (const NodeState& st : state_)
    if (st.lease_held && st.locked_until < now) ++wedged;
  return wedged;
}

void RostProtocol::ExportCounters(obs::Registry& reg) const {
  reg.Count("rost.switches", static_cast<double>(switches_));
  reg.Count("rost.lock_conflicts", static_cast<double>(lock_conflicts_));
  reg.Count("rost.lock_retries", static_cast<double>(lock_retries_));
  reg.Count("rost.lock_timeouts", static_cast<double>(lock_timeouts_));
  reg.Count("rost.handshake_aborts", static_cast<double>(handshake_aborts_));
  reg.Count("rost.infeasible_switches", static_cast<double>(infeasible_));
  reg.Count("rost.preempt_joins", static_cast<double>(preempt_joins_));
}

void RostProtocol::CheckSwitch(Session& session, NodeId id) {
  overlay::Tree& tree = session.tree();
  if (!tree.Alive(id)) return;
  StateFor(id).timer = sim::kInvalidEventId;
  if (StateFor(id).handshake != nullptr) return;  // attempt already in flight

  // While detached (rejoining) or inside an orphaned fragment, just keep
  // the periodic check alive.
  if (tree.Parent(id) == kNoNode || !tree.IsRooted(id)) {
    ScheduleCheck(session, id, params_.switching_interval_s);
    return;
  }
  const NodeId parent = tree.Parent(id);
  if (parent == kRootId) {
    // The source has infinite BTP; nothing to compare against.
    ScheduleCheck(session, id, params_.switching_interval_s);
    return;
  }

  if (!SwitchConditionHolds(session, id, parent)) {
    StateFor(id).failed_attempts = 0;
    ScheduleCheck(session, id, params_.switching_interval_s);
    return;
  }

  obs::Tracer* const tracer = session.tracer();
  if (tracer != nullptr)
    tracer->Emit(session.simulator().now(), obs::EventKind::kSwitchAttempt, id,
                 parent);

  std::vector<NodeId> lock_set = BuildLockSet(session, id, parent);

  if (fault_plane_ != nullptr) {
    // Lease path: the lock set is assembled by messages that can be lost;
    // only the self-lock is local.
    const sim::Time now = session.simulator().now();
    NodeState& st = StateFor(id);
    if (st.locked_until > now || st.recovering) {
      ++lock_conflicts_;
      RetryAfterFailure(session, id);
      return;
    }
    StartHandshake(session, id, parent, std::move(lock_set));
    return;
  }

  if (!TryLock(session, lock_set)) {
    ++lock_conflicts_;
    if (tracer != nullptr)
      tracer->Emit(session.simulator().now(), obs::EventKind::kLockDeny, id,
                   parent);
    ScheduleCheck(session, id, params_.lock_retry_delay_s);
    return;
  }
  if (tracer != nullptr) {
    // Oracle locks carry no lease serial; detail 0 marks them apart from
    // lease-path grants (whose serials start at 1).
    const sim::Time now = session.simulator().now();
    for (NodeId n : lock_set)
      tracer->Emit(now, obs::EventKind::kLockGrant, n, id);
  }

  if (!SwitchFeasible(session, id, parent)) {
    ++infeasible_;
    if (tracer != nullptr)
      tracer->Emit(session.simulator().now(), obs::EventKind::kSwitchAbort, id,
                   parent, 3);
    ScheduleCheck(session, id, params_.switching_interval_s);
    return;
  }

  PerformSwitch(session, id, parent);
  if (tracer != nullptr)
    tracer->Emit(session.simulator().now(), obs::EventKind::kSwitchCommit, id,
                 parent);
  ScheduleCheck(session, id, params_.switching_interval_s);
}

std::vector<NodeId> RostProtocol::BuildLockSet(Session& session, NodeId id,
                                               NodeId parent) const {
  // Lock set: self, parent, grandparent, own children, siblings.
  const overlay::Tree& tree = session.tree();
  std::vector<NodeId> lock_set = {id, parent, tree.Parent(parent)};
  for (NodeId c : tree.ChildrenOf(id)) lock_set.push_back(c);
  for (NodeId s : tree.ChildrenOf(parent))
    if (s != id) lock_set.push_back(s);
  return lock_set;
}

void RostProtocol::RetryAfterFailure(Session& session, NodeId id) {
  NodeState& st = StateFor(id);
  ++st.failed_attempts;
  ++lock_retries_;
  const int shift = std::min(st.failed_attempts - 1, 20);
  const double mult = std::min(static_cast<double>(1L << shift),
                               static_cast<double>(params_.lock_retry_max_backoff));
  ScheduleCheck(session, id, params_.lock_retry_delay_s * mult);
}

bool RostProtocol::SwitchConditionHolds(Session& session, NodeId id,
                                        NodeId parent) {
  switch (params_.criterion) {
    case SwitchCriterion::kBtp:
      // The paper's rule: BTP strictly larger AND bandwidth no smaller
      // (the bandwidth guard avoids switches the parent would undo by
      // out-earning the child later, Section 3.3).
      return EffectiveBtp(session, id) > EffectiveBtp(session, parent) &&
             EffectiveBandwidth(session, id) >=
                 EffectiveBandwidth(session, parent);
    case SwitchCriterion::kBandwidthOnly:
      return EffectiveBandwidth(session, id) >
             EffectiveBandwidth(session, parent);
    case SwitchCriterion::kAgeOnly:
      return EffectiveAge(session, id) > EffectiveAge(session, parent);
  }
  return false;
}

bool RostProtocol::SwitchFeasible(Session& session, NodeId id,
                                  NodeId parent) const {
  // Structural feasibility against *actual* capacities: the switch
  // handshake itself reveals an out-degree shortage (e.g. a bandwidth
  // cheater) and the swap aborts.
  const overlay::Tree& tree = session.tree();
  const int siblings = tree.ChildCount(parent) - 1;
  const int former = tree.ChildCount(id);
  const int overflow = std::max(0, former - tree.Capacity(parent));
  return tree.Capacity(id) >= 1 + siblings + overflow;
}

void RostProtocol::OnPrepopulated(Session& session, NodeId id) {
  // Replay the member's historical switching: one opportunity per elapsed
  // switching interval of its age, each climbing at most one level.
  overlay::Tree& tree = session.tree();
  const double age = tree.Get(id).Age(session.simulator().now());
  long opportunities =
      static_cast<long>(age / params_.switching_interval_s);
  opportunities = std::min(opportunities, 256L);
  while (opportunities-- > 0) {
    const NodeId parent = tree.Parent(id);
    if (parent == kNoNode || parent == kRootId) break;
    if (!SwitchConditionHolds(session, id, parent)) break;
    if (!SwitchFeasible(session, id, parent)) break;
    PerformSwitch(session, id, parent);
  }
}

void RostProtocol::PerformSwitch(Session& session, NodeId child,
                                 NodeId parent) {
  overlay::Tree& tree = session.tree();
  const NodeId grand = tree.Parent(parent);
  util::Check(grand != kNoNode, "switch requires a grandparent");

  std::vector<NodeId> siblings;
  for (NodeId s : tree.ChildrenOf(parent))
    if (s != child) siblings.push_back(s);
  std::vector<NodeId> former = tree.Children(child);
  // Members whose edges the swap rearranges; AuditSwitch checks none are
  // lost or duplicated once the neighbourhood is reassembled.
  const std::size_t neighbourhood_size = 2 + siblings.size() + former.size();

  // Disassemble the neighbourhood.
  for (NodeId s : siblings) tree.Detach(s);
  for (NodeId k : former) tree.Detach(k);
  tree.Detach(child);
  tree.Detach(parent);

  // Promote the child into the parent's position.
  tree.Attach(grand, child);
  tree.Attach(child, parent);
  for (NodeId s : siblings) {
    tree.Attach(child, s);
    ++tree.Get(s).reconnections;
  }

  // The demoted parent adopts the child's former children up to capacity;
  // the largest-BTP overflow stays with the promoted node (Fig. 2's f).
  const sim::Time now = session.simulator().now();
  std::sort(former.begin(), former.end(), [&](NodeId a, NodeId b) {
    return tree.Get(a).Btp(now) > tree.Get(b).Btp(now);
  });
  const int overflow =
      std::max(0, static_cast<int>(former.size()) - tree.Capacity(parent));
  for (std::size_t i = 0; i < former.size(); ++i) {
    if (static_cast<int>(i) < overflow) {
      // Stays with its old parent (the promoted node): no reconnection.
      tree.Attach(child, former[i]);
    } else {
      tree.Attach(parent, former[i]);
      ++tree.Get(former[i]).reconnections;
    }
  }
  ++tree.Get(child).reconnections;
  ++tree.Get(parent).reconnections;
  ++switches_;
  AuditSwitch(session, child, parent, grand, neighbourhood_size);
}

void RostProtocol::AuditSwitch(Session& session, NodeId child, NodeId parent,
                               NodeId grand,
                               std::size_t neighbourhood_size) const {
  if constexpr (!util::kDcheckEnabled) {
    (void)session;
    (void)child;
    (void)parent;
    (void)grand;
    (void)neighbourhood_size;
    return;
  }
  const overlay::Tree& tree = session.tree();

  // Positions after the swap (Fig. 2): child under the grandparent, parent
  // under the child, layers shifted accordingly.
  OMCAST_DCHECK(tree.Parent(child) == grand,
                "switch: promoted child must sit under the grandparent");
  OMCAST_DCHECK(tree.Parent(parent) == child,
                "switch: demoted parent must sit under the promoted child");
  OMCAST_DCHECK(tree.Layer(child) + 1 == tree.Layer(parent),
                "switch: demoted parent must be one layer below");

  // Conservation: the reassembled neighbourhood (promoted node, its new
  // children, the demoted parent's adopted children) is exactly the set of
  // members the swap disassembled -- nobody dropped, nobody double-attached.
  OMCAST_DCHECK(1 + static_cast<std::size_t>(tree.ChildCount(child)) +
                        static_cast<std::size_t>(tree.ChildCount(parent)) ==
                    neighbourhood_size,
                "switch: neighbourhood member count must be conserved");
  OMCAST_DCHECK(tree.ChildCount(parent) <= tree.Capacity(parent),
                "switch: demoted parent must respect its capacity");

  // Every rearranged member is rooted again: the swap must never strand a
  // fragment (orphans would silently stop receiving the stream).
  OMCAST_DCHECK(tree.IsRooted(child),
                "switch: promoted child must be rooted");
  for (NodeId c : tree.ChildrenOf(child))
    OMCAST_DCHECK(tree.IsRooted(c), "switch: promoted node's children rooted");
  for (NodeId c : tree.ChildrenOf(parent))
    OMCAST_DCHECK(tree.IsRooted(c), "switch: demoted node's children rooted");

  // Full structural audit (O(n)): capacity, layer, parent/child symmetry and
  // acyclicity over the whole tree.
  tree.CheckInvariants();
}

}  // namespace omcast::core
