#include "overlay/session.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"
#include "util/log.h"

namespace omcast::overlay {

void Protocol::OnAttached(Session&, NodeId) {}
void Protocol::OnDeparture(Session&, NodeId) {}
void Protocol::OnOrphaned(Session&, NodeId) {}
void Protocol::OnPrepopulated(Session&, NodeId) {}
void Protocol::SetFaultPlane(sim::FaultPlane*) {}
void Protocol::ExportCounters(obs::Registry&) const {}
long Protocol::WedgedLeases(sim::Time) const { return 0; }

void SessionHooks::AddOnDeparture(std::function<void(NodeId)> fn) {
  on_departure_.push_back(std::move(fn));
}
void SessionHooks::AddOnDisruption(std::function<void(NodeId, NodeId)> fn) {
  on_disruption_.push_back(std::move(fn));
}
void SessionHooks::AddOnAttached(std::function<void(NodeId, NodeId)> fn) {
  on_attached_.push_back(std::move(fn));
}
void SessionHooks::AddOnMemberDeparted(std::function<void(const Member&)> fn) {
  on_member_departed_.push_back(std::move(fn));
}
void SessionHooks::FireDeparture(NodeId departed) const {
  for (const auto& fn : on_departure_) fn(departed);
}
void SessionHooks::FireDisruption(NodeId affected, NodeId failed) const {
  for (const auto& fn : on_disruption_) fn(affected, failed);
}
void SessionHooks::FireAttached(NodeId id, NodeId parent) const {
  for (const auto& fn : on_attached_) fn(id, parent);
}
void SessionHooks::FireMemberDeparted(const Member& member) const {
  for (const auto& fn : on_member_departed_) fn(member);
}

namespace {

// Root host is drawn first so the tree root is a random stub node, as in the
// paper ("the server's location is fixed at a randomly chosen stub node").
net::HostId DrawRootHost(const net::Topology& topology, std::uint64_t seed) {
  rnd::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  return static_cast<net::HostId>(
      rng.UniformIndex(static_cast<std::size_t>(topology.num_stub_nodes())));
}

}  // namespace

void ValidateSessionParams(const SessionParams& params) {
  util::Check(params.stream_rate > 0.0, "stream rate must be positive");
  util::Check(params.root_bandwidth >= params.stream_rate,
              "the source must be able to feed at least one child");
  util::Check(params.candidate_sample_size >= 1,
              "joining needs at least one discovery candidate");
  util::Check(params.join_retry_delay_s > 0.0,
              "join retry delay must be positive (zero would busy-loop "
              "failed joins at one instant)");
  util::Check(params.join_retry_max_backoff >= 1,
              "join retry backoff cap must be at least 1x the base delay");
  util::Check(params.rejoin_delay_s >= 0.0,
              "rejoin delay must be non-negative");
  util::Check(params.fragment_dissolve_after_attempts >= 1,
              "fragment dissolution needs at least one failed attempt");
  util::Check(params.prepopulate_age_horizon_s >= 0.0,
              "pre-population age horizon must be non-negative");
  util::Check(params.reentry_max_attempts >= 1,
              "re-entry needs at least one join attempt");
  util::Check(params.reentry_backoff_cap >= 1,
              "re-entry backoff cap must be at least 1x the base delay");
}

Session::Session(sim::Simulator& simulator, const net::Topology& topology,
                 std::unique_ptr<Protocol> protocol, SessionParams params,
                 std::uint64_t seed)
    : sim_(simulator),
      topology_(topology),
      tree_(DrawRootHost(topology, seed), params.root_bandwidth),
      protocol_(std::move(protocol)),
      params_(params),
      rng_(seed) {
  util::Check(protocol_ != nullptr, "session requires a protocol");
  ValidateSessionParams(params_);
  // All hosts except the root's start free, in random order.
  const net::HostId root_host = tree_.Get(kRootId).host;
  free_hosts_.reserve(static_cast<std::size_t>(topology_.num_stub_nodes()) - 1);
  for (int h = 0; h < topology_.num_stub_nodes(); ++h)
    if (h != root_host) free_hosts_.push_back(h);
  rng_.Shuffle(free_hosts_);
  alive_index_.assign(1, -1);  // root slot
  departure_event_.assign(1, sim::kInvalidEventId);
  join_attempts_.assign(1, 0);
  ever_attached_.assign(1, 1);  // the root is always attached
  reentry_predecessor_.assign(1, kNoNode);
}

net::HostId Session::AllocateHost() {
  util::Check(!free_hosts_.empty(), "no free stub host");
  const net::HostId h = free_hosts_.back();
  free_hosts_.pop_back();
  return h;
}

void Session::ReleaseHost(net::HostId host) {
  // Re-insert at a random position to keep future draws uniform.
  free_hosts_.push_back(host);
  const std::size_t j = rng_.UniformIndex(free_hosts_.size());
  std::swap(free_hosts_[j], free_hosts_.back());
}

NodeId Session::CreateMemberRecord(double bandwidth, double lifetime_s,
                                   sim::Time join_time) {
  const net::HostId host = AllocateHost();
  const NodeId id = tree_.CreateMember(host, bandwidth, join_time, lifetime_s);
  alive_index_.resize(tree_.size(), -1);
  departure_event_.resize(tree_.size(), sim::kInvalidEventId);
  join_attempts_.resize(tree_.size(), 0);
  ever_attached_.resize(tree_.size(), 0);
  reentry_predecessor_.resize(tree_.size(), kNoNode);
  alive_index_[static_cast<std::size_t>(id)] = static_cast<int>(alive_.size());
  alive_.push_back(id);
  ++total_created_;
  return id;
}

void Session::ScheduleDeparture(NodeId id) {
  const Member& m = tree_.Get(id);
  const sim::Time when = m.join_time + m.lifetime;
  util::Check(when >= sim_.now(), "departure must be in the future");
  departure_event_[static_cast<std::size_t>(id)] = sim_.ScheduleAt(
      when, [this, id] { HandleDeparture(id); }, "session.departure");
}

void Session::Prepopulate(int count) {
  util::Check(sim_.now() == 0.0, "prepopulate only at time 0");
  util::Check(count < topology_.num_stub_nodes(),
              "population exceeds host count");
  const double mu = params_.lifetime_dist.mu();
  const double sigma = params_.lifetime_dist.sigma();
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Stationary renewal state: lifetime is length-biased, which for a
    // lognormal(mu, sigma) is lognormal(mu + sigma^2, sigma); the age is a
    // uniform fraction of it. Ages beyond the broadcast's history horizon
    // are rejected (no member can predate the stream).
    double biased_lifetime = 0.0;
    double age = 0.0;
    for (int attempt = 0; attempt < 256; ++attempt) {
      biased_lifetime = rng_.Lognormal(mu + sigma * sigma, sigma);
      age = rng_.Uniform(0.0, 1.0) * biased_lifetime;
      if (params_.prepopulate_age_horizon_s <= 0.0 ||
          age <= params_.prepopulate_age_horizon_s)
        break;
      age = params_.prepopulate_age_horizon_s;  // clamp if rejection fails
    }
    const double bandwidth = params_.bandwidth_dist.Sample(rng_);
    ids.push_back(CreateMemberRecord(bandwidth, biased_lifetime, -age));
  }
  // Join oldest-first: this replays the historical join order of a system
  // that has been running since before t=0, so age-sensitive protocols see
  // exactly the sequence they would have seen live (joining in random order
  // instead triggers an eviction storm in the time-ordered algorithms,
  // which never happens in a real deployment).
  //
  // The replay can stall: cumulative spare capacity is a random walk with
  // positive drift but heavy-tailed steps (55.5% free-riders), and a cold
  // replay hits zero with non-trivial probability even though the *real*
  // system demonstrably never did (it reached this population). When a join
  // finds no headroom, the strongest waiting member is attached first --
  // the minimal perturbation of history that keeps the replay viable.
  for (NodeId id : ids) ScheduleDeparture(id);
  std::sort(ids.begin(), ids.end(), [this](NodeId a, NodeId b) {
    return tree_.Get(a).join_time < tree_.Get(b).join_time;
  });
  std::vector<NodeId> by_capacity = ids;
  std::sort(by_capacity.begin(), by_capacity.end(), [this](NodeId a, NodeId b) {
    return tree_.Capacity(a) > tree_.Capacity(b);
  });
  std::size_t strongest = 0;
  // Rooted spare capacity is tracked in closed form: protocol reshuffles
  // (evictions, switches) move slots around but never change the total.
  long spare = tree_.Capacity(kRootId);
  const auto attach_now = [this, &spare](NodeId id) {
    if (tree_.Parent(id) != kNoNode) return true;  // already injected
    if (!protocol_->TryAttach(*this, id)) return false;
    spare += tree_.Capacity(id) - 1;
    join_attempts_[static_cast<std::size_t>(id)] = 0;
    protocol_->OnAttached(*this, id);
    protocol_->OnPrepopulated(*this, id);
    TraceAttached(id);
    hooks_.FireAttached(id, tree_.Parent(id));
    return true;
  };
  const auto inject_strongest = [&](NodeId skip) {
    while (strongest < by_capacity.size() &&
           tree_.Parent(by_capacity[strongest]) != kNoNode)
      ++strongest;
    if (strongest >= by_capacity.size() || by_capacity[strongest] == skip)
      return false;
    return attach_now(by_capacity[strongest]);
  };
  int stragglers = 0;
  for (NodeId id : ids) {
    if (tree_.Parent(id) != kNoNode) continue;  // already injected
    // Keep the replay out of capacity ruin: attaching `id` must leave at
    // least one spare slot, so pull capacity providers forward as needed.
    const long need = std::max<long>(1, 2 - tree_.Capacity(id));
    while (spare < need && inject_strongest(id)) {
    }
    if (spare < 1 || !attach_now(id)) {
      ++stragglers;
      TryJoin(id);
    }
  }
  util::LogInfo("prepopulated " + std::to_string(count) + " members (" +
                std::to_string(stragglers) + " awaiting capacity)");
}

void Session::StartArrivals(double rate_per_s) {
  util::Check(rate_per_s > 0.0, "arrival rate must be positive");
  arrival_rate_ = rate_per_s;
  arrivals_on_ = true;
  ScheduleNextArrival();
}

void Session::StopArrivals() { arrivals_on_ = false; }

void Session::ScheduleNextArrival() {
  if (!arrivals_on_) return;
  const double gap = rng_.ExponentialMean(1.0 / arrival_rate_);
  sim_.ScheduleAfter(gap, [this] { Arrive(); }, "session.arrival");
}

void Session::Arrive() {
  if (!arrivals_on_) return;
  ScheduleNextArrival();
  if (free_hosts_.empty()) {
    ++dropped_arrivals_;
    return;
  }
  const double bandwidth = params_.bandwidth_dist.Sample(rng_);
  const double lifetime = params_.lifetime_dist.Sample(rng_);
  const NodeId id = CreateMemberRecord(bandwidth, lifetime, sim_.now());
  ScheduleDeparture(id);
  TryJoin(id);
}

NodeId Session::InjectMember(double bandwidth, double lifetime_s) {
  util::Check(!free_hosts_.empty(), "no free stub host for injection");
  const NodeId id = CreateMemberRecord(bandwidth, lifetime_s, sim_.now());
  ScheduleDeparture(id);
  TryJoin(id);
  return id;
}

void Session::TryJoin(NodeId id) {
  if (!tree_.Alive(id)) return;
  util::Check(tree_.Parent(id) == kNoNode, "member already attached");
  if (protocol_->TryAttach(*this, id)) {
    util::Check(tree_.Parent(id) != kNoNode, "TryAttach true but not attached");
    join_attempts_[static_cast<std::size_t>(id)] = 0;
    protocol_->OnAttached(*this, id);
    TraceAttached(id);
    hooks_.FireAttached(id, tree_.Parent(id));
    return;
  }
  ++failed_join_attempts_;
  int& attempts = join_attempts_[static_cast<std::size_t>(id)];
  ++attempts;

  // A persistently stuck fragment dissolves: its children (whose own
  // failure detection has fired by now) rejoin on their own, freeing their
  // subtree capacity for the overlay.
  if (attempts == params_.fragment_dissolve_after_attempts &&
      tree_.ChildCount(id) != 0) {
    const std::vector<NodeId> children = tree_.Children(id);
    for (NodeId c : children) {
      tree_.Detach(c);
      if (tracer_ != nullptr)
        tracer_->Emit(sim_.now(), obs::EventKind::kOrphaned, c, id,
                      /*detail=*/2);
      protocol_->OnOrphaned(*this, c);
      TryJoin(c);
    }
  }

  const int backoff =
      std::min(1 << std::min(attempts - 1, 10), params_.join_retry_max_backoff);
  // Guarded: with an external failure detector a second join path
  // (RejoinOrphan) can attach the member while this retry is in flight.
  sim_.ScheduleAfter(
      params_.join_retry_delay_s * backoff,
      [this, id] {
        if (tree_.Alive(id) && tree_.Parent(id) == kNoNode) TryJoin(id);
      },
      "session.join_retry");
}

void Session::TraceAttached(NodeId id) {
  char& ever = ever_attached_[static_cast<std::size_t>(id)];
  if (tracer_ != nullptr) {
    tracer_->Emit(sim_.now(),
                  ever ? obs::EventKind::kRejoin : obs::EventKind::kJoin, id,
                  tree_.Parent(id));
  }
  ever = 1;
}

void Session::ForceRejoin(NodeId id) {
  util::Check(tree_.Alive(id) && tree_.Parent(id) == kNoNode,
              "ForceRejoin requires a detached, alive member");
  ++tree_.Get(id).reconnections;
  if (tracer_ != nullptr)
    tracer_->Emit(sim_.now(), obs::EventKind::kOrphaned, id, kNoNode,
                  /*detail=*/1);
  protocol_->OnOrphaned(*this, id);
  // Defer to an event so eviction cascades unwind instead of recursing.
  sim_.ScheduleAfter(
      0.0,
      [this, id] {
        if (tree_.Alive(id) && tree_.Parent(id) == kNoNode) TryJoin(id);
      },
      "session.rejoin");
}

void Session::ChargeDisruption(NodeId member) {
  if (!tree_.Alive(member)) return;
  ++tree_.Get(member).disruptions;
  hooks_.FireDisruption(member, member);
  tree_.ForEachDescendant(member, [this, member](NodeId desc) {
    if (!tree_.Alive(desc)) return;
    ++tree_.Get(desc).disruptions;
    hooks_.FireDisruption(desc, member);
  });
}

void Session::RemoveFromAlive(NodeId id) {
  const int idx = alive_index_[static_cast<std::size_t>(id)];
  util::Check(idx >= 0, "member not in alive set");
  const NodeId last = alive_.back();
  alive_[static_cast<std::size_t>(idx)] = last;
  alive_index_[static_cast<std::size_t>(last)] = idx;
  alive_.pop_back();
  alive_index_[static_cast<std::size_t>(id)] = -1;
}

void Session::DepartNow(NodeId id) {
  util::Check(id != kRootId, "the source never departs");
  const std::size_t slot = static_cast<std::size_t>(id);
  if (departure_event_[slot] == sim::kInvalidEventId ||
      !sim_.Cancel(departure_event_[slot])) {
    // Departure already ran (or is the currently-running event).
    if (!tree_.Alive(id)) return;
  }
  HandleDeparture(id);
}

void Session::HandleDeparture(NodeId id) {
  if (!tree_.Alive(id)) return;
  Member& m = tree_.Get(id);
  if (tracer_ != nullptr)
    tracer_->Emit(sim_.now(), obs::EventKind::kLeave, id, tree_.Parent(id));
  hooks_.FireDeparture(id);

  // Abrupt departure: every descendant suffers one streaming disruption
  // (Section 6, "Comparison of Tree Reliability").
  tree_.ForEachDescendant(id, [this, id](NodeId desc) {
    if (!tree_.Alive(desc)) return;
    ++tree_.Get(desc).disruptions;
    hooks_.FireDisruption(desc, id);
  });

  const std::vector<NodeId> orphans = tree_.RemoveFromTree(id);
  tree_.MarkDead(id);
  RemoveFromAlive(id);
  ReleaseHost(m.host);
  protocol_->OnDeparture(*this, id);
  hooks_.FireMemberDeparted(m);

  // Children (with their subtrees intact) rejoin through the protocol.
  // Rejoins after a failure are not protocol overhead. Under external
  // failure detection the orphan does not yet *know* its parent died: the
  // detector (heartbeat misses) calls RejoinOrphan() once it notices.
  for (NodeId c : orphans) {
    if (tracer_ != nullptr)
      tracer_->Emit(sim_.now(), obs::EventKind::kOrphaned, c, id,
                    /*detail=*/0);
    protocol_->OnOrphaned(*this, c);
    if (params_.external_failure_detection) continue;
    if (params_.rejoin_delay_s > 0.0) {
      sim_.ScheduleAfter(
          params_.rejoin_delay_s,
          [this, c] {
            if (tree_.Alive(c) && tree_.Parent(c) == kNoNode) TryJoin(c);
          },
          "session.rejoin");
    } else {
      TryJoin(c);
    }
  }
}

void Session::RejoinOrphan(NodeId id) {
  util::Check(params_.external_failure_detection,
              "RejoinOrphan is the external failure detector's entry point");
  if (tree_.Alive(id) && tree_.Parent(id) == kNoNode) TryJoin(id);
}

void Session::ScheduleReentry(NodeId departed, double downtime_s,
                              double lifetime_s) {
  util::Check(departed != kRootId, "the source never re-enters");
  util::Check(downtime_s >= 0.0, "downtime must be non-negative");
  util::Check(lifetime_s > 0.0, "re-entry lifetime must be positive");
  ++reentries_scheduled_;
  sim_.ScheduleAfter(
      downtime_s,
      [this, departed, lifetime_s] { BeginReentry(departed, lifetime_s); },
      "session.reentry");
}

void Session::BeginReentry(NodeId predecessor, double lifetime_s) {
  if (free_hosts_.empty()) {
    // At host capacity the returning viewer finds no slot and gives up
    // without ever materializing (detail 0 = no attempt was possible).
    ++reentries_abandoned_;
    if (tracer_ != nullptr)
      tracer_->Emit(sim_.now(), obs::EventKind::kReconnectAbandoned, kNoNode,
                    predecessor, 0);
    return;
  }
  // Same household, new session: the successor inherits the predecessor's
  // bandwidth (its record persists after death) but nothing else.
  const double bandwidth = tree_.Get(predecessor).bandwidth;
  const NodeId id = CreateMemberRecord(bandwidth, lifetime_s, sim_.now());
  reentry_predecessor_[static_cast<std::size_t>(id)] = predecessor;
  ScheduleDeparture(id);
  if (tracer_ != nullptr)
    tracer_->Emit(sim_.now(), obs::EventKind::kReconnectStart, id, predecessor);
  ReentryAttempt(id, predecessor);
}

void Session::ReentryAttempt(NodeId id, NodeId predecessor) {
  // The member can expire (lifetime) while detached mid-retry; a scheduled
  // retry after that must be a no-op.
  if (!tree_.Alive(id) || tree_.Parent(id) != kNoNode) return;
  const int attempt = join_attempts_[static_cast<std::size_t>(id)] + 1;
  if (protocol_->TryAttach(*this, id)) {
    util::Check(tree_.Parent(id) != kNoNode, "TryAttach true but not attached");
    join_attempts_[static_cast<std::size_t>(id)] = 0;
    ++reentries_attached_;
    protocol_->OnAttached(*this, id);
    TraceAttached(id);
    if (tracer_ != nullptr)
      tracer_->Emit(sim_.now(), obs::EventKind::kReconnectAttached, id,
                    predecessor, attempt);
    hooks_.FireAttached(id, tree_.Parent(id));
    return;
  }
  ++failed_join_attempts_;
  join_attempts_[static_cast<std::size_t>(id)] = attempt;
  if (attempt >= params_.reentry_max_attempts) {
    // A returning viewer that the overlay keeps refusing leaves for good --
    // the bounded analog of TryJoin's unbounded persistence.
    ++reentries_abandoned_;
    if (tracer_ != nullptr)
      tracer_->Emit(sim_.now(), obs::EventKind::kReconnectAbandoned, id,
                    predecessor, attempt);
    DepartNow(id);
    return;
  }
  const int backoff =
      std::min(1 << std::min(attempt - 1, 10), params_.reentry_backoff_cap);
  sim_.ScheduleAfter(
      params_.join_retry_delay_s * backoff,
      [this, id, predecessor] { ReentryAttempt(id, predecessor); },
      "session.reentry_retry");
}

NodeId Session::ReentryPredecessor(NodeId id) const {
  return reentry_predecessor_[static_cast<std::size_t>(id)];
}

std::vector<NodeId> Session::SampleCandidates(int k, NodeId exclude) {
  // Gossip spreads knowledge of members that are *in* the overlay, so keep
  // drawing until k tree members are found (bounded so a heavily fragmented
  // overlay cannot loop forever).
  const std::size_t want = static_cast<std::size_t>(k) * 6 + 16;
  std::vector<NodeId> sample =
      oracle_ != nullptr
          ? oracle_->KnownMembers(*this, exclude, static_cast<int>(k) * 6 + 16)
      : params_.seed_baseline_sampling
          ? rng_.SampleWithoutReplacement(alive_, want)
          : rng_.SampleWithoutReplacementFrom(alive_, want);
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(k) + 1);
  // The source is known to every member via the bootstrap mechanism.
  out.push_back(kRootId);
  for (NodeId id : sample) {
    if (static_cast<int>(out.size()) > k) break;
    if (!tree_.InTree(id)) continue;
    if (exclude != kNoNode && tree_.IsInSubtreeOf(id, exclude)) continue;
    if (!tree_.IsRooted(id)) continue;
    out.push_back(id);
  }
  return out;
}

std::vector<NodeId> Session::CollectJoinPool(int k, NodeId exclude) {
  std::vector<NodeId> pool = SampleCandidates(k, exclude);
  // Epoch-stamped dedup: allocating and zeroing a fresh O(members) bitmap
  // here made every join O(N) at 10^6 members; bumping the epoch retires
  // all stale stamps in O(1). The seed-baseline mode keeps the O(members)
  // bitmap so the scale_sweep baseline column pays the seed's real cost;
  // both paths dedup identically, so results cannot differ.
  if (params_.seed_baseline_sampling) {
    seen_epoch_ = 0;
    seen_stamp_.assign(tree_.size(), 0);
  } else {
    seen_stamp_.resize(tree_.size(), 0);
  }
  const int epoch = ++seen_epoch_;
  for (NodeId id : pool) seen_stamp_[static_cast<std::size_t>(id)] = epoch;
  // Breadth-first prefix from the root (cannot reach detached fragments,
  // so `exclude`'s subtree is naturally skipped).
  std::vector<NodeId> frontier = {kRootId};
  int examined = 0;
  std::size_t head = 0;
  while (head < frontier.size() && examined < k) {
    const NodeId cur = frontier[head++];
    ++examined;
    if (seen_stamp_[static_cast<std::size_t>(cur)] != epoch) {
      seen_stamp_[static_cast<std::size_t>(cur)] = epoch;
      pool.push_back(cur);
    }
    for (NodeId c : tree_.ChildrenOf(cur)) frontier.push_back(c);
  }
  return pool;
}

double Session::DelayMs(NodeId a, NodeId b) const {
  return topology_.Delay(tree_.Get(a).host, tree_.Get(b).host);
}

double Session::OverlayDelayMs(NodeId id) const {
  util::Check(tree_.IsRooted(id), "overlay delay needs a rooted member");
  double total = 0.0;
  NodeId cur = id;
  while (cur != kRootId) {
    const NodeId p = tree_.Parent(cur);
    total += DelayMs(p, cur);
    cur = p;
  }
  return total;
}

double Session::UnicastDelayMs(NodeId id) const { return DelayMs(kRootId, id); }

double Session::Stretch(NodeId id) const {
  const double direct = UnicastDelayMs(id);
  if (direct <= 0.0) return 1.0;  // co-located with the source
  return OverlayDelayMs(id) / direct;
}

}  // namespace omcast::overlay
