file(REMOVE_RECURSE
  "CMakeFiles/test_referee.dir/test_referee.cc.o"
  "CMakeFiles/test_referee.dir/test_referee.cc.o.d"
  "test_referee"
  "test_referee.pdb"
  "test_referee[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_referee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
