// Unit tests for the shared parent-selection helpers and the relaxed
// protocols' internal guarantees (headroom guard, eviction-chain
// termination, layer scanning).
#include "proto/selection.h"

#include <gtest/gtest.h>

#include <memory>

#include "net/topology.h"
#include "overlay/session.h"
#include "proto/min_depth.h"
#include "proto/relaxed_ordered.h"
#include "sim/simulator.h"

namespace omcast::proto {
namespace {

using overlay::kNoNode;
using overlay::kRootId;
using overlay::NodeId;
using overlay::Session;
using overlay::SessionParams;
using overlay::Tree;

class SelectionTest : public ::testing::Test {
 protected:
  SelectionTest() {
    rnd::Rng topo_rng(1);
    topology_ = std::make_unique<net::Topology>(
        net::Topology::Generate(net::TinyTopologyParams(), topo_rng));
    session_ = std::make_unique<Session>(
        sim_, *topology_, std::make_unique<MinDepthProtocol>(),
        SessionParams{}, 3);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topology_;
  std::unique_ptr<Session> session_;
};

TEST_F(SelectionTest, PickMinDepthPrefersShallowerLayer) {
  Tree& tree = session_->tree();
  const NodeId a = session_->InjectMember(3.0, 1e9);
  const NodeId b = session_->InjectMember(3.0, 1e9);
  const NodeId j = session_->InjectMember(0.5, 1e9);
  sim_.RunUntil(1.0);
  for (NodeId id : {a, b, j})
    if (tree.Parent(id) != kNoNode) tree.Detach(id);
  tree.Attach(kRootId, a);
  tree.Attach(a, b);
  EXPECT_EQ(PickMinDepthParent(*session_, {b, a}, j), a);
}

TEST_F(SelectionTest, PickMinDepthSkipsFullParents) {
  Tree& tree = session_->tree();
  const NodeId a = session_->InjectMember(1.0, 1e9);  // capacity 1
  const NodeId b = session_->InjectMember(3.0, 1e9);
  const NodeId c = session_->InjectMember(0.5, 1e9);
  const NodeId j = session_->InjectMember(0.5, 1e9);
  sim_.RunUntil(1.0);
  for (NodeId id : {a, b, c, j})
    if (tree.Parent(id) != kNoNode) tree.Detach(id);
  tree.Attach(kRootId, a);
  tree.Attach(kRootId, b);
  tree.Attach(a, c);  // a is now full
  EXPECT_EQ(PickMinDepthParent(*session_, {a, b}, j), b);
  EXPECT_EQ(PickMinDepthParent(*session_, {a, c}, j), kNoNode);
}

TEST_F(SelectionTest, PickOldestIgnoresLayer) {
  Tree& tree = session_->tree();
  const NodeId shallow = session_->InjectMember(3.0, 1e9);
  const NodeId deep = session_->InjectMember(3.0, 1e9);
  const NodeId j = session_->InjectMember(0.5, 1e9);
  sim_.RunUntil(1.0);
  for (NodeId id : {shallow, deep, j})
    if (tree.Parent(id) != kNoNode) tree.Detach(id);
  tree.Attach(kRootId, shallow);
  tree.Attach(shallow, deep);
  tree.Get(deep).join_time = -500.0;  // deep is much older
  EXPECT_EQ(PickOldestParent(*session_, {shallow, deep}, j), deep);
}

TEST_F(SelectionTest, LayersByBfsGroupsByDepth) {
  Tree& tree = session_->tree();
  const NodeId a = session_->InjectMember(3.0, 1e9);
  const NodeId b = session_->InjectMember(2.0, 1e9);
  const NodeId c = session_->InjectMember(0.5, 1e9);
  sim_.RunUntil(1.0);
  for (NodeId id : {a, b, c})
    if (tree.Parent(id) != kNoNode) tree.Detach(id);
  tree.Attach(kRootId, a);
  tree.Attach(a, b);
  tree.Attach(b, c);
  const auto layers = LayersByBfs(tree);
  ASSERT_EQ(layers.size(), 4u);
  EXPECT_EQ(layers[0], std::vector<NodeId>{kRootId});
  EXPECT_EQ(layers[1], std::vector<NodeId>{a});
  EXPECT_EQ(layers[2], std::vector<NodeId>{b});
  EXPECT_EQ(layers[3], std::vector<NodeId>{c});
}

TEST_F(SelectionTest, LayersByBfsSkipsDetachedFragments) {
  Tree& tree = session_->tree();
  const NodeId a = session_->InjectMember(3.0, 1e9);
  const NodeId b = session_->InjectMember(2.0, 1e9);
  sim_.RunUntil(1.0);
  for (NodeId id : {a, b})
    if (tree.Parent(id) != kNoNode) tree.Detach(id);
  tree.Attach(kRootId, a);
  tree.Attach(a, b);
  tree.Detach(a);
  const auto layers = LayersByBfs(tree);
  EXPECT_EQ(layers.size(), 1u);  // only the root remains reachable
}

// The headroom guard: an eviction that would remove the overlay's only
// spare capacity (a young supernode's) is deferred; the joiner lands in a
// spare slot instead.
TEST_F(SelectionTest, EvictionDeferredWhenItWouldDrainHeadroom) {
  sim::Simulator sim;
  SessionParams sp;
  sp.root_bandwidth = 1.0;  // root holds exactly one child
  Session s(sim, *topology_, std::make_unique<RelaxedTimeOrderedProtocol>(),
            sp, 9);
  Tree& tree = s.tree();
  // Young supernode holds the top slot and all the headroom.
  const NodeId super = s.InjectMember(10.0, 1e9);
  sim.RunUntil(1.0);
  ASSERT_EQ(tree.Parent(super), kRootId);
  // An old free-rider joins: it outranks the young supernode by age, but
  // evicting it would leave spare = 0 (the free-rider brings none).
  const NodeId elder = s.InjectMember(0.5, 1e9);
  sim.RunUntil(2.0);
  tree.Detach(elder);
  tree.Get(elder).join_time = -1e6;
  s.ForceRejoin(elder);
  sim.RunUntil(3.0);
  EXPECT_EQ(tree.Parent(super), kRootId);  // not evicted
  EXPECT_EQ(tree.Parent(elder), super);    // placed in a spare slot
  tree.CheckInvariants();
}

// Eviction chains terminate and leave a consistent tree even when every
// placement triggers another eviction (strictly decreasing ranks).
TEST_F(SelectionTest, EvictionChainsTerminate) {
  sim::Simulator sim;
  SessionParams sp;
  sp.root_bandwidth = 2.0;
  Session s(sim, *topology_, std::make_unique<RelaxedBandwidthOrderedProtocol>(),
            sp, 11);
  // A ladder of bandwidths joining weakest-first maximizes chain length.
  for (double bw : {1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.6, 3.0, 4.0})
    s.InjectMember(bw, 1e9);
  sim.RunUntil(20.0);
  int rooted = 0;
  for (NodeId id : s.alive_members())
    if (s.tree().IsRooted(id)) ++rooted;
  EXPECT_EQ(rooted, s.alive_count());
  s.tree().CheckInvariants();
  // Bandwidth ordering holds along every parent-child edge.
  for (NodeId id : s.alive_members()) {
    const NodeId parent = s.tree().Parent(id);
    if (parent == kNoNode || parent == kRootId) continue;
    EXPECT_GE(s.tree().Get(parent).bandwidth + 1e-9,
              s.tree().Get(id).bandwidth);
  }
}

}  // namespace
}  // namespace omcast::proto
