#include "overlay/heartbeat.h"

#include "obs/trace.h"
#include "util/check.h"

namespace omcast::overlay {

HeartbeatService::HeartbeatService(Session& session, HeartbeatParams params,
                                   std::uint64_t seed,
                                   sim::FaultPlane* fault_plane)
    : session_(session),
      params_(params),
      rng_(seed),
      fault_plane_(fault_plane) {
  util::Check(params_.period_s > 0.0, "heartbeat period must be positive");
  util::Check(params_.miss_threshold >= 1,
              "suspicion needs at least one missed heartbeat");
  session_.hooks().AddOnAttached([this](NodeId id, NodeId) {
    StartSender(id);
    parent_died_at_[static_cast<std::size_t>(id)] = -1.0;
    ArmMonitor(id);
  });
  session_.hooks().AddOnDeparture([this](NodeId departed) {
    // Stamp the actual death time on each soon-to-be orphan for the
    // detection-latency metric (fires before the tree is modified).
    const sim::Time now = session_.simulator().now();
    for (NodeId c : session_.tree().ChildrenOf(departed)) {
      EnsureState(c);
      parent_died_at_[static_cast<std::size_t>(c)] = now;
    }
  });
  session_.hooks().AddOnMemberDeparted(
      [this](const Member& m) { StopAll(m.id); });
  // The source never joins, so no OnAttached fires for it; it heartbeats
  // its children from the start.
  StartSender(kRootId);
}

void HeartbeatService::EnsureState(NodeId id) {
  const auto need = static_cast<std::size_t>(id) + 1;
  if (sender_.size() >= need) return;
  sender_.resize(need, sim::kInvalidEventId);
  monitor_.resize(need, sim::kInvalidEventId);
  parent_died_at_.resize(need, -1.0);
}

void HeartbeatService::StartSender(NodeId id) {
  EnsureState(id);
  sim::EventId& sender = sender_[static_cast<std::size_t>(id)];
  if (sender != sim::kInvalidEventId) return;  // already beating
  // Random phase: deployments do not fire their timers in lockstep.
  sender = session_.simulator().ScheduleAfter(
      rng_.Uniform(0.0, params_.period_s), [this, id] { SendBeats(id); },
      "heartbeat.send");
}

void HeartbeatService::SendBeats(NodeId id) {
  sender_[static_cast<std::size_t>(id)] = sim::kInvalidEventId;
  const Tree& tree = session_.tree();
  if (!tree.Alive(id)) return;
  for (NodeId c : tree.ChildrenOf(id)) {
    ++sent_;
    const double hop = session_.DelayMs(id, c) / 1000.0;
    if (fault_plane_ != nullptr) {
      fault_plane_->Deliver(id, c, hop,
                            [this, c, id] { OnHeartbeat(c, id); });
    } else {
      session_.simulator().ScheduleAfter(
          hop, [this, c, id] { OnHeartbeat(c, id); }, "heartbeat.deliver");
    }
  }
  sender_[static_cast<std::size_t>(id)] = session_.simulator().ScheduleAfter(
      params_.period_s, [this, id] { SendBeats(id); }, "heartbeat.send");
}

void HeartbeatService::OnHeartbeat(NodeId child, NodeId from) {
  const Tree& tree = session_.tree();
  if (!tree.Alive(child)) return;
  // A beat from anyone but the *current* parent is stale news (the sender
  // was demoted, or the child was re-parented while the beat was in
  // flight); it must not keep a dead parent's ghost alive.
  if (tree.Parent(child) != from) return;
  EnsureState(child);
  parent_died_at_[static_cast<std::size_t>(child)] = -1.0;
  ArmMonitor(child);
}

void HeartbeatService::ArmMonitor(NodeId child) {
  if (child == kRootId) return;  // the source has no parent to monitor
  EnsureState(child);
  sim::EventId& monitor = monitor_[static_cast<std::size_t>(child)];
  if (monitor != sim::kInvalidEventId)
    session_.simulator().Cancel(monitor);
  monitor = session_.simulator().ScheduleAfter(
      SuspicionTimeout(), [this, child] { Suspect(child); },
      "heartbeat.monitor");
}

void HeartbeatService::Suspect(NodeId child) {
  monitor_[static_cast<std::size_t>(child)] = sim::kInvalidEventId;
  const Tree& tree = session_.tree();
  if (!tree.Alive(child)) return;
  const NodeId parent = tree.Parent(child);
  obs::Tracer* tracer = session_.tracer();
  if (tracer != nullptr) {
    const sim::Time now = session_.simulator().now();
    tracer->Emit(now, obs::EventKind::kHeartbeatMiss, child, parent);
    tracer->Emit(now,
                 parent == kNoNode ? obs::EventKind::kSuspicion
                                   : obs::EventKind::kFalseSuspicion,
                 child, parent);
  }

  if (parent == kNoNode) {
    // The parent really did die (the session orphaned this member when it
    // happened); the silence is how the member finds out.
    ++detections_;
    sim::Time& died_at = parent_died_at_[static_cast<std::size_t>(child)];
    if (died_at >= 0.0)
      latency_.Add(session_.simulator().now() - died_at);
    died_at = -1.0;
    session_.RejoinOrphan(child);
    return;
  }

  // The parent is attached and alive -- every heartbeat of the window was
  // lost. The child cannot tell this apart from a real death: it detaches
  // and rejoins (a disruption-free reconnection, charged as overhead).
  ++false_suspicions_;
  session_.tree().Detach(child);
  session_.ForceRejoin(child);
}

void HeartbeatService::StopAll(NodeId id) {
  EnsureState(id);
  const auto i = static_cast<std::size_t>(id);
  if (sender_[i] != sim::kInvalidEventId) {
    session_.simulator().Cancel(sender_[i]);
    sender_[i] = sim::kInvalidEventId;
  }
  if (monitor_[i] != sim::kInvalidEventId) {
    session_.simulator().Cancel(monitor_[i]);
    monitor_[i] = sim::kInvalidEventId;
  }
  parent_died_at_[i] = -1.0;
}

}  // namespace omcast::overlay
