#include "proto/min_depth.h"

#include "proto/selection.h"

namespace omcast::proto {

bool MinDepthProtocol::TryAttach(overlay::Session& session,
                                 overlay::NodeId id) {
  const std::vector<overlay::NodeId> candidates =
      session.CollectJoinPool(session.params().candidate_sample_size, id);
  const overlay::NodeId parent = PickMinDepthParent(session, candidates, id);
  if (parent == overlay::kNoNode) return false;
  session.tree().Attach(parent, id);
  return true;
}

}  // namespace omcast::proto
