#include "net/topology.h"

#include <gtest/gtest.h>

#include <cmath>

#include "rand/rng.h"

namespace omcast::net {
namespace {

TEST(Topology, PaperInstanceHas15600Nodes) {
  const TopologyParams p = PaperTopologyParams();
  EXPECT_EQ(p.transit_domains * p.transit_nodes_per_domain, 240);
  EXPECT_EQ(240 * p.stub_domains_per_transit_node * p.nodes_per_stub_domain,
            15360);
}

TEST(Topology, GeneratesRequestedSizes) {
  rnd::Rng rng(1);
  const Topology t = Topology::Generate(TinyTopologyParams(), rng);
  EXPECT_EQ(t.num_transit_nodes(), 6);
  EXPECT_EQ(t.num_stub_domains(), 12);
  EXPECT_EQ(t.num_stub_nodes(), 96);
  EXPECT_EQ(t.FlatNodeCount(), 102);
}

TEST(Topology, DelayIsSymmetricAndZeroOnSelf) {
  rnd::Rng rng(2);
  const Topology t = Topology::Generate(TinyTopologyParams(), rng);
  rnd::Rng pick(3);
  for (int i = 0; i < 200; ++i) {
    const HostId a = static_cast<HostId>(pick.UniformIndex(
        static_cast<std::size_t>(t.num_stub_nodes())));
    const HostId b = static_cast<HostId>(pick.UniformIndex(
        static_cast<std::size_t>(t.num_stub_nodes())));
    EXPECT_DOUBLE_EQ(t.Delay(a, b), t.Delay(b, a));
    EXPECT_GT(t.Delay(a, b) + (a == b ? 1.0 : 0.0), 0.0);
  }
  EXPECT_DOUBLE_EQ(t.Delay(0, 0), 0.0);
}

TEST(Topology, IntraDomainDelaysUseStubRange) {
  rnd::Rng rng(4);
  const TopologyParams p = TinyTopologyParams();
  const Topology t = Topology::Generate(p, rng);
  // Hosts 0..7 share stub domain 0; their shortest path uses only stub-stub
  // links of [2,4] ms each, over at most n-1 hops.
  for (HostId a = 0; a < 8; ++a)
    for (HostId b = a + 1; b < 8; ++b) {
      const double d = t.Delay(a, b);
      EXPECT_GE(d, p.ss_delay_lo);
      EXPECT_LE(d, p.ss_delay_hi * (p.nodes_per_stub_domain - 1));
      EXPECT_EQ(t.DomainOf(a), t.DomainOf(b));
    }
}

TEST(Topology, CrossDomainDelayIncludesGatewayAndCore) {
  rnd::Rng rng(5);
  const TopologyParams p = TinyTopologyParams();
  const Topology t = Topology::Generate(p, rng);
  // Hosts in different stub domains traverse two gateway links at minimum.
  const HostId a = 0;
  const HostId b = t.num_stub_nodes() - 1;
  ASSERT_NE(t.DomainOf(a), t.DomainOf(b));
  EXPECT_GE(t.Delay(a, b), 2 * p.ts_delay_lo);
}

TEST(Topology, DomainAndTransitIndexing) {
  rnd::Rng rng(6);
  const TopologyParams p = TinyTopologyParams();
  const Topology t = Topology::Generate(p, rng);
  EXPECT_EQ(t.DomainOf(0), 0);
  EXPECT_EQ(t.DomainOf(p.nodes_per_stub_domain), 1);
  EXPECT_EQ(t.TransitOfDomain(0), 0);
  EXPECT_EQ(t.TransitOfDomain(p.stub_domains_per_transit_node), 1);
}

TEST(Topology, DeterministicGivenSeed) {
  rnd::Rng r1(42), r2(42);
  const Topology a = Topology::Generate(TinyTopologyParams(), r1);
  const Topology b = Topology::Generate(TinyTopologyParams(), r2);
  for (HostId i = 0; i < a.num_stub_nodes(); i += 7)
    for (HostId j = 0; j < a.num_stub_nodes(); j += 11)
      EXPECT_DOUBLE_EQ(a.Delay(i, j), b.Delay(i, j));
}

TEST(Topology, FlatGraphIsConnected) {
  rnd::Rng rng(7);
  const Topology t = Topology::Generate(TinyTopologyParams(), rng);
  const auto dist = Dijkstra(t.FlatNodeCount(), t.FlatEdges(), 0);
  for (int i = 0; i < t.FlatNodeCount(); ++i)
    EXPECT_TRUE(std::isfinite(dist[static_cast<std::size_t>(i)]))
        << "node " << i << " unreachable";
}

// With single-host stub domains every stub is a pure leaf, so hierarchical
// routing must match true shortest paths exactly.
TEST(Topology, HierarchicalEqualsDijkstraWhenStubsAreLeaves) {
  TopologyParams p;
  p.transit_domains = 3;
  p.transit_nodes_per_domain = 4;
  p.stub_domains_per_transit_node = 2;
  p.nodes_per_stub_domain = 1;
  rnd::Rng rng(8);
  const Topology t = Topology::Generate(p, rng);
  for (HostId a = 0; a < t.num_stub_nodes(); ++a) {
    const auto dist = Dijkstra(t.FlatNodeCount(), t.FlatEdges(), a);
    for (HostId b = 0; b < t.num_stub_nodes(); ++b)
      EXPECT_NEAR(t.Delay(a, b), dist[static_cast<std::size_t>(b)], 1e-9);
  }
}

// With multi-host stub domains, hierarchical routing never reports less
// than the true shortest path (it restricts the path shape).
TEST(Topology, HierarchicalNeverBeatsDijkstra) {
  rnd::Rng rng(9);
  const Topology t = Topology::Generate(TinyTopologyParams(), rng);
  for (HostId a = 0; a < t.num_stub_nodes(); a += 5) {
    const auto dist = Dijkstra(t.FlatNodeCount(), t.FlatEdges(), a);
    for (HostId b = 0; b < t.num_stub_nodes(); ++b)
      EXPECT_GE(t.Delay(a, b) + 1e-9, dist[static_cast<std::size_t>(b)]);
  }
}

TEST(Topology, PaperScaleGeneratesQuickly) {
  rnd::Rng rng(10);
  const Topology t = Topology::Generate(PaperTopologyParams(), rng);
  EXPECT_EQ(t.num_stub_nodes(), 15360);
  EXPECT_EQ(t.num_transit_nodes(), 240);
  // Spot-check a few delays for sanity.
  EXPECT_GT(t.Delay(0, 15359), 0.0);
  EXPECT_LT(t.Delay(0, 15359), 1000.0);
}

// --- Landmark delay model (DelayModel::kLandmark) accuracy gate. ---------

// The per-pair budget the approximation must honor: either within 25%
// relative error or within 8 ms absolute. Empirically the model sits far
// inside this (mean relative error < 1%, max absolute < 3 ms): only
// same-domain pairs are approximate at all, and their ALT bounds confine
// the error to a couple of stub-stub hops.
constexpr double kRelBudget = 0.25;
constexpr double kAbsBudgetMs = 8.0;

Topology LandmarkTwin(const TopologyParams& p, std::uint64_t seed) {
  TopologyParams lp = p;
  lp.delay_model = DelayModel::kLandmark;
  rnd::Rng rng(seed);
  return Topology::Generate(lp, rng);
}

TEST(TopologyLandmark, CrossDomainDelaysAreExact) {
  const TopologyParams p = TinyTopologyParams();
  rnd::Rng rng(21);
  const Topology exact = Topology::Generate(p, rng);
  const Topology approx = LandmarkTwin(p, 21);
  // Landmark selection consumes no rng, so the generated graphs are
  // bit-identical; cross-domain routing shares every leg with the
  // hierarchical oracle and must match to the last bit.
  int checked = 0;
  for (HostId a = 0; a < exact.num_stub_nodes(); a += 3)
    for (HostId b = 0; b < exact.num_stub_nodes(); b += 5) {
      if (exact.DomainOf(a) == exact.DomainOf(b)) continue;
      EXPECT_DOUBLE_EQ(approx.Delay(a, b), exact.Delay(a, b));
      ++checked;
    }
  EXPECT_GT(checked, 100);
}

TEST(TopologyLandmark, WithinAccuracyGateVsHierarchical) {
  for (const std::uint64_t seed : {11ull, 42ull, 97ull}) {
    const TopologyParams p = TinyTopologyParams();
    rnd::Rng rng(seed);
    const Topology exact = Topology::Generate(p, rng);
    const Topology approx = LandmarkTwin(p, seed);
    rnd::Rng pick(seed + 1);
    const DelayAccuracy acc = CompareDelayOracles(approx, exact, 5000,
                                                  kRelBudget, kAbsBudgetMs,
                                                  pick);
    EXPECT_EQ(acc.gate_violations, 0) << "seed " << seed;
    EXPECT_LT(acc.mean_rel_err, 0.05) << "seed " << seed;
    EXPECT_EQ(acc.pairs, 5000);
  }
}

TEST(TopologyLandmark, WithinAccuracyGateAtSmallScale) {
  const TopologyParams p = SmallTopologyParams();
  rnd::Rng rng(5);
  const Topology exact = Topology::Generate(p, rng);
  const Topology approx = LandmarkTwin(p, 5);
  rnd::Rng pick(6);
  const DelayAccuracy acc =
      CompareDelayOracles(approx, exact, 20000, kRelBudget, kAbsBudgetMs,
                          pick);
  EXPECT_EQ(acc.gate_violations, 0);
  EXPECT_LT(acc.mean_rel_err, 0.02);
  // The landmark tables must actually be leaner than the APSP they replace.
  EXPECT_LT(approx.DelayTableBytes() * 2, exact.DelayTableBytes());
}

TEST(TopologyLandmark, SymmetricZeroSelfAndFinite) {
  const Topology t = LandmarkTwin(TinyTopologyParams(), 33);
  rnd::Rng pick(34);
  for (int i = 0; i < 500; ++i) {
    const HostId a = static_cast<HostId>(
        pick.UniformIndex(static_cast<std::size_t>(t.num_stub_nodes())));
    const HostId b = static_cast<HostId>(
        pick.UniformIndex(static_cast<std::size_t>(t.num_stub_nodes())));
    const double d = t.Delay(a, b);
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_DOUBLE_EQ(d, t.Delay(b, a));
    if (a == b) {
      EXPECT_DOUBLE_EQ(d, 0.0);
    }
  }
  EXPECT_DOUBLE_EQ(t.Delay(3, 3), 0.0);
}

// Against ground truth (flat-graph Dijkstra): the landmark oracle inherits
// the hierarchical routing restriction plus its own same-domain slack, so
// gate it with the same budget against the unrestricted shortest path.
TEST(TopologyLandmark, WithinBudgetOfFlatDijkstra) {
  const TopologyParams p = TinyTopologyParams();
  rnd::Rng rng(13);
  const Topology exact = Topology::Generate(p, rng);
  const Topology approx = LandmarkTwin(p, 13);
  for (HostId a = 0; a < exact.num_stub_nodes(); a += 7) {
    const auto dist = Dijkstra(exact.FlatNodeCount(), exact.FlatEdges(), a);
    for (HostId b = 0; b < exact.num_stub_nodes(); ++b) {
      const double truth = dist[static_cast<std::size_t>(b)];
      const double est = approx.Delay(a, b);
      const double abs_err = std::abs(est - truth);
      const bool ok = truth == 0.0 || abs_err / truth <= kRelBudget ||
                      abs_err <= kAbsBudgetMs;
      EXPECT_TRUE(ok) << "pair (" << a << ", " << b << "): est " << est
                      << " vs dijkstra " << truth;
    }
  }
}

TEST(TopologyLandmark, CompareOraclesIsZeroOnIdenticalTopologies) {
  rnd::Rng rng(3);
  const Topology t = Topology::Generate(TinyTopologyParams(), rng);
  rnd::Rng pick(4);
  const DelayAccuracy acc =
      CompareDelayOracles(t, t, 1000, kRelBudget, kAbsBudgetMs, pick);
  EXPECT_EQ(acc.gate_violations, 0);
  EXPECT_DOUBLE_EQ(acc.max_abs_err_ms, 0.0);
  EXPECT_DOUBLE_EQ(acc.mean_rel_err, 0.0);
}

TEST(TopologyLandmark, ScaleParamsShape) {
  const TopologyParams p = ScaleTopologyParams(100000);
  EXPECT_EQ(p.delay_model, DelayModel::kLandmark);
  EXPECT_FALSE(p.keep_flat_edges);
  EXPECT_GE(p.transit_domains * p.transit_nodes_per_domain *
                p.stub_domains_per_transit_node * p.nodes_per_stub_domain,
            100000);
  // A topology generated without the flat list reports no edges but still
  // answers delay queries.
  rnd::Rng rng(1);
  const Topology t = Topology::Generate(ScaleTopologyParams(500), rng);
  EXPECT_TRUE(t.FlatEdges().empty());
  EXPECT_GT(t.Delay(0, t.num_stub_nodes() - 1), 0.0);
}

struct SeedCase {
  std::uint64_t seed;
};

class TopologyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

// Property sweep: every seed yields a topology whose delay oracle is
// finite, symmetric, and respects the minimum link delay.
TEST_P(TopologyPropertyTest, DelayOracleWellFormed) {
  rnd::Rng rng(GetParam());
  const Topology t = Topology::Generate(TinyTopologyParams(), rng);
  rnd::Rng pick(GetParam() + 1);
  for (int i = 0; i < 100; ++i) {
    const HostId a = static_cast<HostId>(pick.UniformIndex(
        static_cast<std::size_t>(t.num_stub_nodes())));
    const HostId b = static_cast<HostId>(pick.UniformIndex(
        static_cast<std::size_t>(t.num_stub_nodes())));
    const double d = t.Delay(a, b);
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_DOUBLE_EQ(d, t.Delay(b, a));
    if (a != b) {
      EXPECT_GE(d, TinyTopologyParams().ss_delay_lo);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace omcast::net
