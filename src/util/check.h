// Lightweight runtime checks with source location, used across the library
// for invariant enforcement (tree shape, protocol state machines, ...).
//
// Two tiers:
//
//  * util::Check / util::Fail are *always on*: the simulator is the product,
//    and a silently corrupt multicast tree would invalidate every experiment
//    built on top of it. Use them for cheap preconditions on public entry
//    points.
//
//  * OMCAST_DCHECK is the *deep* tier: O(n) structural audits, hot-path
//    assertions, and anything too expensive for the 14k-member sweeps. It is
//    compiled in when OMCAST_ENABLE_DCHECK is defined (Debug and sanitizer
//    builds -- see the OMCAST_DCHECK cache option in the top-level
//    CMakeLists.txt) and compiled out of Release hot paths; the condition is
//    never evaluated when disabled, so it may be arbitrarily expensive.
//    Whole audit blocks can be gated with `if constexpr (kDcheckEnabled)`.
#pragma once

#include <source_location>
#include <string_view>

namespace omcast::util {

// Aborts with a diagnostic if `cond` is false. `what` should state the
// violated invariant, e.g. "child layer == parent layer + 1".
void Check(bool cond, std::string_view what,
           std::source_location loc = std::source_location::current());

// Aborts unconditionally; for unreachable branches.
[[noreturn]] void Fail(std::string_view what,
                       std::source_location loc = std::source_location::current());

#if defined(OMCAST_ENABLE_DCHECK)
inline constexpr bool kDcheckEnabled = true;
#define OMCAST_DCHECK(cond, what) \
  ::omcast::util::Check(static_cast<bool>(cond), (what))
#else
inline constexpr bool kDcheckEnabled = false;
// The `if (false)` arm keeps the condition type-checked in every build while
// guaranteeing it is not evaluated (no side effects, no cost) in Release.
#define OMCAST_DCHECK(cond, what)                                  \
  do {                                                             \
    if (false) ::omcast::util::Check(static_cast<bool>(cond), (what)); \
  } while (false)
#endif

}  // namespace omcast::util
