// FaultPlane unit tests: loss/duplication/jitter statistics, per-link
// overrides, counter accounting, and bit-reproducibility of the fault
// schedule under a fixed seed.
#include "sim/fault_plane.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace omcast::sim {
namespace {

TEST(FaultPlane, ZeroRatesDeliverEverythingExactlyOnce) {
  Simulator sim;
  FaultPlane plane(sim, {}, 1);
  int delivered = 0;
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(plane.Deliver(1, 2, 0.01, [&] { ++delivered; }));
  sim.Run();
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(plane.messages_sent(), 100);
  EXPECT_EQ(plane.messages_dropped(), 0);
  EXPECT_EQ(plane.messages_duplicated(), 0);
  EXPECT_EQ(plane.messages_delivered(), 100);
}

TEST(FaultPlane, LossRateDropsTheExpectedFraction) {
  Simulator sim;
  FaultPlaneParams params;
  params.loss_rate = 0.3;
  FaultPlane plane(sim, params, 2);
  int delivered = 0;
  for (int i = 0; i < 2000; ++i) plane.Deliver(1, 2, 0.01, [&] { ++delivered; });
  sim.Run();
  EXPECT_EQ(plane.messages_dropped() + plane.messages_delivered(), 2000);
  // 600 expected drops; 5 sigma ~ 100.
  EXPECT_NEAR(static_cast<double>(plane.messages_dropped()), 600.0, 110.0);
  EXPECT_EQ(delivered, plane.messages_delivered());
}

TEST(FaultPlane, CertainDuplicationDeliversEveryMessageTwice) {
  Simulator sim;
  FaultPlaneParams params;
  params.dup_prob = 1.0;
  FaultPlane plane(sim, params, 3);
  int delivered = 0;
  for (int i = 0; i < 50; ++i) plane.Deliver(1, 2, 0.01, [&] { ++delivered; });
  sim.Run();
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(plane.messages_duplicated(), 50);
  EXPECT_EQ(plane.messages_delivered(), 100);
}

TEST(FaultPlane, JitterReordersMessagesOnOneLink) {
  Simulator sim;
  FaultPlaneParams params;
  params.jitter_s = 1.0;  // huge against the 10 ms send spacing
  FaultPlane plane(sim, params, 4);
  std::vector<int> arrival_order;
  for (int i = 0; i < 20; ++i) {
    sim.ScheduleAt(0.01 * i, [&plane, &arrival_order, i] {
      plane.Deliver(1, 2, 0.001, [&arrival_order, i] {
        arrival_order.push_back(i);
      });
    });
  }
  sim.Run();
  ASSERT_EQ(arrival_order.size(), 20u);
  EXPECT_FALSE(std::is_sorted(arrival_order.begin(), arrival_order.end()))
      << "with 1 s of jitter over 10 ms spacing, some overtake must happen";
}

TEST(FaultPlane, PerLinkOverrideSeversOnlyThatLink) {
  Simulator sim;
  FaultPlane plane(sim, {}, 5);
  plane.SetLinkLossRate(1, 2, 1.0);
  int on_dead_link = 0;
  int on_live_link = 0;
  for (int i = 0; i < 20; ++i) {
    plane.Deliver(1, 2, 0.01, [&] { ++on_dead_link; });
    plane.Deliver(2, 1, 0.01, [&] { ++on_live_link; });  // reverse direction
    plane.Deliver(1, 3, 0.01, [&] { ++on_live_link; });
  }
  sim.Run();
  EXPECT_EQ(on_dead_link, 0);
  EXPECT_EQ(on_live_link, 40);
  plane.ClearLinkOverrides();
  plane.Deliver(1, 2, 0.01, [&] { ++on_dead_link; });
  sim.Run();
  EXPECT_EQ(on_dead_link, 1);
}

TEST(FaultPlane, FaultScheduleIsSeedReproducible) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    FaultPlaneParams params;
    params.loss_rate = 0.25;
    params.dup_prob = 0.1;
    params.jitter_s = 0.05;
    FaultPlane plane(sim, params, seed);
    std::vector<std::pair<double, int>> trace;
    for (int i = 0; i < 300; ++i) {
      sim.ScheduleAt(0.01 * i, [&plane, &trace, i, &sim] {
        plane.Deliver(i % 7, i % 5, 0.002, [&trace, i, &sim] {
          trace.push_back({sim.now(), i});
        });
      });
    }
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(FaultPlaneDeathTest, RejectsInvalidProbabilities) {
  Simulator sim;
  FaultPlaneParams bad;
  bad.loss_rate = 1.5;
  EXPECT_DEATH(FaultPlane(sim, bad, 1), "CHECK failed");
  FaultPlaneParams neg;
  neg.jitter_s = -0.1;
  EXPECT_DEATH(FaultPlane(sim, neg, 1), "CHECK failed");
}

}  // namespace
}  // namespace omcast::sim
