// Fixture [stale-allow]: an allow() annotation that suppresses nothing on
// its own or the following line -- or that names a rule that does not
// exist -- is itself a finding, so dead suppressions cannot accumulate.
#include <cstdlib>

namespace fixture {

int Clean() {
  return 7;  // omcast-lint: allow(rand)  // expect(stale-allow)
}

// omcast-lint: allow(no-such-rule)  // expect(stale-allow)
int AlsoClean() { return 8; }

// Negative: a load-bearing suppression is not stale.
int LegacyEntropy() {
  return rand();  // omcast-lint: allow(rand)
}

// Negative: annotation-on-the-line-above placement is load-bearing too.
int MoreEntropy() {
  // omcast-lint: allow(rand)
  return rand();
}

}  // namespace fixture
