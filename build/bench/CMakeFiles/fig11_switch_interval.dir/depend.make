# Empty dependencies file for fig11_switch_interval.
# This may be replaced when dependencies are built.
