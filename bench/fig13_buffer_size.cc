// Fig. 13: average starving time ratio vs playback buffer size (5-30 s) for
// recovery group sizes 1-3 at the focus network size. A single recovery
// node needs a very deep buffer (~27 s) to reach the quality two nodes
// deliver with only 5 s.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 13 -- avg starving time ratio vs buffer size", env);

  const std::vector<double> buffers = {5.0, 10.0, 15.0, 20.0, 25.0, 30.0};
  runner::GridSpec spec;
  spec.figure = "fig13_buffer_size";
  spec.title = "avg starving time ratio vs playback buffer size";
  spec.row_header = "buffer(s)";
  for (const double buffer : buffers)
    spec.rows.push_back(util::FormatDouble(buffer, 0));
  spec.cols = {"group=1", "group=2", "group=3"};
  spec.reps = env.reps;
  spec.headline_metric = "starving_ratio";
  spec.run = [&env, buffers](const runner::CellContext& cell) {
    stream::StreamParams sp;
    sp.recovery_group_size = static_cast<int>(cell.col) + 1;
    sp.buffer_s = buffers[cell.row];
    exp::ScenarioConfig config = env.BaseConfig();
    config.population = env.focus_size;
    config.seed = cell.seed;
    return bench::StreamCellResult(exp::RunStreamScenario(
        env.Topo(), exp::Algorithm::kMinDepth, config, sp));
  };
  const runner::ResultsSink sink = bench::RunGridBench(env, spec);

  bench::PrintMetricTable(spec, sink, "starving_ratio", 3,
                          "avg starving time ratio (%), " +
                              std::to_string(env.focus_size) +
                              " members, min-depth tree + CER",
                          /*scale=*/100.0);
  return 0;
}
