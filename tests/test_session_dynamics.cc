// Tests for the session's churn-survival machinery: the join discovery
// pool, fragment dissolution, eviction disruption accounting, bounded
// pre-population ages, and ROST's pre-population switch fast-forward.
#include <gtest/gtest.h>

#include <memory>

#include "core/rost/rost.h"
#include "net/topology.h"
#include "overlay/session.h"
#include "proto/min_depth.h"
#include "sim/simulator.h"

namespace omcast::overlay {
namespace {

class SessionDynamicsTest : public ::testing::Test {
 protected:
  SessionDynamicsTest() {
    rnd::Rng topo_rng(1);
    topology_ = std::make_unique<net::Topology>(
        net::Topology::Generate(net::TinyTopologyParams(), topo_rng));
  }

  std::unique_ptr<Session> Make(SessionParams params = {},
                                std::uint64_t seed = 7) {
    return std::make_unique<Session>(sim_, *topology_,
                                     std::make_unique<proto::MinDepthProtocol>(),
                                     params, seed);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topology_;
};

TEST_F(SessionDynamicsTest, JoinPoolContainsBfsPrefixFromRoot) {
  auto s = Make();
  // Build a deep chain the random sample could easily miss.
  Tree& tree = s->tree();
  tree.SetCapacity(kRootId, 1);
  NodeId prev = kRootId;
  std::vector<NodeId> chain;
  for (int i = 0; i < 10; ++i) {
    const NodeId id = tree.CreateMember(i + 1, 1.2, 0.0, 1e9);
    tree.Attach(prev, id);
    chain.push_back(id);
    prev = id;
  }
  const auto pool = s->CollectJoinPool(100, kNoNode);
  // Every chain member is reachable via the BFS prefix.
  for (NodeId id : chain)
    EXPECT_NE(std::find(pool.begin(), pool.end(), id), pool.end());
  EXPECT_EQ(pool.front(), kRootId);
}

TEST_F(SessionDynamicsTest, JoinPoolHasNoDuplicates) {
  auto s = Make();
  s->Prepopulate(60);
  sim_.RunUntil(1.0);
  const auto pool = s->CollectJoinPool(100, kNoNode);
  std::set<NodeId> distinct(pool.begin(), pool.end());
  EXPECT_EQ(distinct.size(), pool.size());
}

TEST_F(SessionDynamicsTest, PrepopulateRespectsAgeHorizon) {
  SessionParams params;
  params.prepopulate_age_horizon_s = 5000.0;
  auto s = Make(params);
  s->Prepopulate(80);
  for (NodeId id : s->alive_members()) {
    const Member& m = s->tree().Get(id);
    EXPECT_LE(m.Age(0.0), 5000.0 + 1e-9);
    EXPECT_GT(m.Age(0.0), 0.0);
    // Residual lifetime is positive (departures lie in the future).
    EXPECT_GT(m.join_time + m.lifetime, 0.0);
  }
}

TEST_F(SessionDynamicsTest, PrepopulateUnboundedAgesWhenHorizonZero) {
  SessionParams params;
  params.prepopulate_age_horizon_s = 0.0;
  auto s = Make(params, /*seed=*/3);
  s->Prepopulate(80);
  // With the heavy-tailed stationary distribution some members should be
  // very old (far beyond any realistic bounded horizon).
  double max_age = 0.0;
  for (NodeId id : s->alive_members())
    max_age = std::max(max_age, s->tree().Get(id).Age(0.0));
  EXPECT_GT(max_age, 50000.0);
}

TEST_F(SessionDynamicsTest, PrepopulateBootstrapsEvenWithWeakRoot) {
  // A 2-slot root forces the capacity-injection path: the replay must still
  // attach everyone at t=0 (strongest waiting members get pulled forward).
  SessionParams params;
  params.root_bandwidth = 2.0;
  auto s = Make(params, /*seed=*/5);
  s->Prepopulate(70);
  sim_.RunUntil(30.0);
  int rooted = 0;
  for (NodeId id : s->alive_members())
    if (s->tree().IsRooted(id)) ++rooted;
  EXPECT_GE(rooted, s->alive_count() * 9 / 10);
  s->tree().CheckInvariants();
}

TEST_F(SessionDynamicsTest, StuckFragmentDissolves) {
  auto s = Make();
  Tree& tree = s->tree();
  // A fragment root that can never re-attach (zero capacity anywhere).
  tree.SetCapacity(kRootId, 1);
  const NodeId blocker = s->InjectMember(1.0, 1e9);
  const NodeId kid1 = s->InjectMember(0.5, 1e9);
  sim_.RunUntil(1.0);
  ASSERT_EQ(tree.Parent(blocker), kRootId);
  ASSERT_EQ(tree.Parent(kid1), blocker);
  tree.Detach(blocker);  // fragment {blocker, kid1}, root slot now free...
  tree.SetCapacity(kRootId, 0);  // ...and gone again
  s->ForceRejoin(blocker);
  // After fragment_dissolve_after_attempts failures, kid1 is released and
  // retries on its own.
  sim_.RunUntil(40.0);
  EXPECT_EQ(tree.Children(blocker).size(), 0u);
  EXPECT_EQ(tree.Parent(kid1), kNoNode);  // both waiting, independently
  // Capacity reappears: both re-attach.
  tree.SetCapacity(kRootId, 2);
  sim_.RunUntil(80.0);
  EXPECT_TRUE(tree.IsRooted(blocker));
  EXPECT_TRUE(tree.IsRooted(kid1));
}

TEST_F(SessionDynamicsTest, ChargeDisruptionHitsSubtree) {
  auto s = Make();
  Tree& tree = s->tree();
  const NodeId a = s->InjectMember(2.0, 1e9);
  const NodeId b = s->InjectMember(0.5, 1e9);
  sim_.RunUntil(1.0);
  if (tree.Parent(b) != a) {
    tree.Detach(b);
    tree.Attach(a, b);
  }
  int hook_calls = 0;
  s->hooks().AddOnDisruption([&](NodeId, NodeId) { ++hook_calls; });
  s->ChargeDisruption(a);
  EXPECT_EQ(tree.Get(a).disruptions, 1);
  EXPECT_EQ(tree.Get(b).disruptions, 1);
  EXPECT_EQ(hook_calls, 2);
}

TEST_F(SessionDynamicsTest, RostPrepopulationFastForwardsSwitches) {
  // Freshly pre-populated ROST trees should already be BTP-ordered along
  // parent-child edges (up to capacity feasibility), i.e. the fast-forward
  // replayed the member's historical switching.
  sim::Simulator sim;
  core::RostParams params;
  auto protocol = std::make_unique<core::RostProtocol>(params);
  core::RostProtocol* rost = protocol.get();
  SessionParams sp;
  sp.root_bandwidth = 5.0;  // force depth so parent-child pairs exist
  Session session(sim, *topology_, std::move(protocol), sp, 11);
  session.Prepopulate(80);
  // Without running any warmup, no timer-driven switch has fired yet; any
  // ordering must come from OnPrepopulated.
  int violations = 0;
  int checked = 0;
  for (NodeId id : session.alive_members()) {
    const Member& m = session.tree().Get(id);
    const NodeId parent = session.tree().Parent(id);
    if (parent == kNoNode || parent == kRootId) continue;
    ++checked;
    const Member& p = session.tree().Get(parent);
    const bool would_switch =
        m.Btp(0.0) > p.Btp(0.0) && m.bandwidth >= p.bandwidth;
    if (would_switch && rost != nullptr) ++violations;
  }
  ASSERT_GT(checked, 10);
  // Residual violations can remain (lock-free replay still requires
  // structural feasibility), but the overwhelming majority must be settled.
  EXPECT_LT(violations, checked / 5);
}

TEST_F(SessionDynamicsTest, RejoinDelayKeepsOrphanDetached) {
  SessionParams params;
  params.rejoin_delay_s = 15.0;
  auto s = Make(params);
  Tree& tree = s->tree();
  const NodeId hub = s->InjectMember(5.0, 1e9);
  const NodeId child = s->InjectMember(0.5, 1e9);
  sim_.RunUntil(1.0);
  if (tree.Parent(child) != hub) {
    tree.Detach(child);
    tree.Attach(hub, child);
  }
  s->DepartNow(hub);
  // The orphan is physically detached for the detection + rejoin window.
  sim_.RunUntil(10.0);
  EXPECT_EQ(tree.Parent(child), kNoNode);
  sim_.RunUntil(14.0);
  EXPECT_EQ(tree.Parent(child), kNoNode);
  sim_.RunUntil(20.0);
  EXPECT_TRUE(tree.IsRooted(child));
}

TEST_F(SessionDynamicsTest, RejoinDelaySkipsMembersThatDieMeanwhile) {
  SessionParams params;
  params.rejoin_delay_s = 15.0;
  auto s = Make(params);
  Tree& tree = s->tree();
  const NodeId hub = s->InjectMember(5.0, 1e9);
  const NodeId child = s->InjectMember(0.5, 10.0);  // dies during the window
  sim_.RunUntil(1.0);
  if (tree.Parent(child) != hub) {
    tree.Detach(child);
    tree.Attach(hub, child);
  }
  s->DepartNow(hub);
  sim_.RunUntil(30.0);  // child died at ~11, before its rejoin at ~16
  EXPECT_FALSE(tree.Alive(child));
  tree.CheckInvariants();
}

}  // namespace
}  // namespace omcast::overlay
