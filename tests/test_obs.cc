// Unit tests for the observability subsystem (src/obs): the metrics
// registry (counters / gauges / fixed-bucket histograms, cross-checked
// against util::RunningStat), the bounded trace ring and its JSONL /
// Chrome-trace exports (round-tripped through the runner's own JSON
// parser), and the simulator profiler.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/profile.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "runner/json.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace omcast {
namespace {

using obs::EventKind;
using obs::Histogram;
using obs::Registry;
using obs::TimeSeries;
using obs::TraceEvent;
using obs::Tracer;

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, MeanMatchesRunningStat) {
  // The histogram tracks the exact sum and count alongside the buckets; its
  // sum/count mean must agree with RunningStat's Welford mean to round-off
  // (they are different summation orders of the same data), and min/max are
  // tracked exactly, so those must match bit for bit.
  Histogram h({0.1, 1.0, 10.0, 100.0});
  util::RunningStat stat;
  double v = 0.0317;
  for (int i = 0; i < 500; ++i) {
    v = v * 1.37 + 0.011;
    if (v > 250.0) v -= 249.0;
    h.Observe(v);
    stat.Add(v);
  }
  ASSERT_EQ(h.count(), static_cast<long>(stat.count()));
  EXPECT_NEAR(h.mean(), stat.mean(), 1e-9 * std::abs(stat.mean()));
  EXPECT_EQ(h.min(), stat.min());
  EXPECT_EQ(h.max(), stat.max());
}

TEST(Histogram, BucketAssignmentUsesInclusiveUpperEdges) {
  Histogram h({1.0, 2.0});
  h.Observe(1.0);  // lands in bucket 0: (-inf, 1]
  h.Observe(1.5);  // bucket 1: (1, 2]
  h.Observe(2.0);  // bucket 1
  h.Observe(3.0);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 1);
  EXPECT_EQ(h.bucket_counts()[1], 2);
  EXPECT_EQ(h.bucket_counts()[2], 1);
}

TEST(Histogram, QuantilesAreClampedAndOrdered) {
  Histogram h({1.0, 2.0, 4.0, 8.0, 16.0});
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i % 17) + 0.5);
  const double p10 = h.Quantile(0.10);
  const double p50 = h.Quantile(0.50);
  const double p99 = h.Quantile(0.99);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p99);
  EXPECT_GE(p10, h.min());
  EXPECT_LE(p99, h.max());
}

TEST(Histogram, SingleObservationQuantileIsExact) {
  Histogram h({1.0, 10.0});
  h.Observe(3.25);
  // Only one value exists; clamping to [min, max] pins every quantile to it.
  EXPECT_EQ(h.Quantile(0.0), 3.25);
  EXPECT_EQ(h.Quantile(0.5), 3.25);
  EXPECT_EQ(h.Quantile(1.0), 3.25);
}

TEST(Histogram, EmptyHistogramIsZeroEverywhere) {
  Histogram h({1.0});
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(Histogram, MergeEqualsCombinedObservations) {
  const std::vector<double> bounds = {0.5, 1.0, 5.0, 25.0};
  Histogram a(bounds), b(bounds), combined(bounds);
  for (int i = 0; i < 40; ++i) {
    const double v = 0.2 * static_cast<double>(i) + 0.05;
    (i % 2 == 0 ? a : b).Observe(v);
    combined.Observe(v);
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.bucket_counts(), combined.bucket_counts());
}

TEST(Histogram, MergeFromEmptyIsANoOp) {
  Histogram a({1.0}), empty({1.0});
  a.Observe(0.5);
  a.MergeFrom(empty);
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.min(), 0.5);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, CountersAccumulateAndDefaultToZero) {
  Registry reg;
  EXPECT_EQ(reg.CounterValue("absent"), 0.0);
  reg.Count("x");
  reg.Count("x", 2.5);
  EXPECT_EQ(reg.CounterValue("x"), 3.5);
}

TEST(Registry, GaugesAreLastWriteWins) {
  Registry reg;
  reg.SetGauge("g", 1.0);
  reg.SetGauge("g", -4.0);
  EXPECT_EQ(reg.gauges().at("g"), -4.0);
}

TEST(Registry, FirstHistogramRegistrationWins) {
  Registry reg;
  Histogram& h = reg.Hist("h", {1.0, 2.0});
  Histogram& again = reg.Hist("h", {99.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(Registry, FlattenExpandsHistogramsDeterministically) {
  Registry reg;
  reg.Count("a.count1", 7.0);
  reg.SetGauge("b.gauge", 0.25);
  reg.Observe("c.hist", {1.0, 10.0}, 2.0);
  reg.Observe("c.hist", {1.0, 10.0}, 6.0);
  const std::map<std::string, double> flat = reg.Flatten();
  EXPECT_EQ(flat.at("a.count1"), 7.0);
  EXPECT_EQ(flat.at("b.gauge"), 0.25);
  EXPECT_EQ(flat.at("c.hist.count"), 2.0);
  EXPECT_EQ(flat.at("c.hist.sum"), 8.0);
  EXPECT_EQ(flat.at("c.hist.min"), 2.0);
  EXPECT_EQ(flat.at("c.hist.max"), 6.0);
  EXPECT_TRUE(flat.contains("c.hist.p50"));
  EXPECT_TRUE(flat.contains("c.hist.p99"));
}

TEST(Registry, MergeAddsCountersOverwritesGaugesMergesHistograms) {
  Registry a, b;
  a.Count("c", 1.0);
  b.Count("c", 2.0);
  b.Count("only_b", 5.0);
  a.SetGauge("g", 1.0);
  b.SetGauge("g", 9.0);
  a.Observe("h", {1.0}, 0.5);
  b.Observe("h", {1.0}, 2.5);
  b.Observe("h2", {4.0}, 3.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.CounterValue("c"), 3.0);
  EXPECT_EQ(a.CounterValue("only_b"), 5.0);
  EXPECT_EQ(a.gauges().at("g"), 9.0);
  EXPECT_EQ(a.histograms().at("h").count(), 2);
  EXPECT_EQ(a.histograms().at("h2").count(), 1);
}

// ---------------------------------------------------------------------------
// TimeSeries (the recovery-curve substrate of results schema v3)
// ---------------------------------------------------------------------------

TEST(TimeSeriesTest, CounterRateSumsPerWindowAndZeroFillsGaps) {
  TimeSeries ts(TimeSeries::Kind::kCounterRate, 5.0);
  EXPECT_TRUE(ts.empty());
  ts.AddDelta(1.0, 2.0);
  ts.AddDelta(4.9, 3.0);   // same window [0, 5)
  ts.AddDelta(17.0, 1.0);  // window [15, 20); [5,10) and [10,15) untouched
  const std::vector<TimeSeries::Point> points = ts.Points();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].t, 0.0);
  EXPECT_EQ(points[0].value, 5.0);
  EXPECT_EQ(points[1].t, 5.0);
  EXPECT_EQ(points[1].value, 0.0);  // untouched counter window flattens to 0
  EXPECT_EQ(points[2].value, 0.0);
  EXPECT_EQ(points[3].t, 15.0);
  EXPECT_EQ(points[3].value, 1.0);
}

TEST(TimeSeriesTest, GaugeLastSampleWinsAndCarriesForward) {
  TimeSeries ts(TimeSeries::Kind::kGauge, 2.0);
  ts.Sample(0.5, 10.0);
  ts.Sample(1.5, 12.0);  // same window: last wins
  ts.Sample(7.0, 3.0);   // window [6, 8); [2,4) and [4,6) untouched
  const std::vector<TimeSeries::Point> points = ts.Points();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].value, 12.0);
  // A gauge holds its last observed level until re-sampled.
  EXPECT_EQ(points[1].value, 12.0);
  EXPECT_EQ(points[2].value, 12.0);
  EXPECT_EQ(points[3].t, 6.0);
  EXPECT_EQ(points[3].value, 3.0);
}

TEST(TimeSeriesTest, WindowGridIsAbsoluteNotRelativeToFirstSample) {
  // Two series over the same scenario must bucket identically no matter when
  // each started sampling: the grid is floor(t / window_s), not
  // sample-relative.
  TimeSeries late(TimeSeries::Kind::kGauge, 10.0);
  late.Sample(27.0, 1.0);
  const std::vector<TimeSeries::Point> points = late.Points();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].t, 20.0);  // window start, not 27.0
}

TEST(TimeSeriesTest, RecordsBeforeTheFirstWindowPrependDensely) {
  TimeSeries ts(TimeSeries::Kind::kCounterRate, 1.0);
  ts.AddDelta(5.5, 1.0);
  ts.AddDelta(2.5, 4.0);  // earlier than the first touched window
  const std::vector<TimeSeries::Point> points = ts.Points();
  ASSERT_EQ(points.size(), 4u);  // windows 2, 3, 4, 5
  EXPECT_EQ(points[0].t, 2.0);
  EXPECT_EQ(points[0].value, 4.0);
  EXPECT_EQ(points[1].value, 0.0);
  EXPECT_EQ(points[3].value, 1.0);
}

TEST(TimeSeriesTest, ZeroDeltaStillMarksCoverage) {
  // A sampler that ticks every window with AddDelta(t, 0) must extend the
  // curve's range even when nothing happened, so quiet tails are explicit
  // zeros rather than missing data.
  TimeSeries ts(TimeSeries::Kind::kCounterRate, 1.0);
  ts.AddDelta(0.5, 7.0);
  ts.AddDelta(3.5, 0.0);
  const std::vector<TimeSeries::Point> points = ts.Points();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[3].t, 3.0);
  EXPECT_EQ(points[3].value, 0.0);
}

TEST(TimeSeriesTest, MergeAddsCounterWindowsAndOverlaysGaugeWindows) {
  TimeSeries a(TimeSeries::Kind::kCounterRate, 1.0);
  TimeSeries b(TimeSeries::Kind::kCounterRate, 1.0);
  a.AddDelta(0.5, 1.0);
  b.AddDelta(0.5, 2.0);
  b.AddDelta(2.5, 5.0);
  a.MergeFrom(b);
  const std::vector<TimeSeries::Point> merged = a.Points();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].value, 3.0);  // overlapping counter windows add
  EXPECT_EQ(merged[2].value, 5.0);  // b-only window adopted

  TimeSeries ga(TimeSeries::Kind::kGauge, 1.0);
  TimeSeries gb(TimeSeries::Kind::kGauge, 1.0);
  ga.Sample(0.5, 10.0);
  ga.Sample(1.5, 11.0);
  gb.Sample(1.5, 99.0);  // covered in gb: takes precedence on merge
  ga.MergeFrom(gb);
  const std::vector<TimeSeries::Point> gauge = ga.Points();
  ASSERT_EQ(gauge.size(), 2u);
  EXPECT_EQ(gauge[0].value, 10.0);  // gb never covered window 0: kept
  EXPECT_EQ(gauge[1].value, 99.0);
}

TEST(TimeSeriesTest, RegistrySeriesFirstRegistrationWinsAndMerges) {
  Registry a, b;
  TimeSeries& s = a.Series("recovery.x", TimeSeries::Kind::kGauge, 5.0);
  TimeSeries& again =
      a.Series("recovery.x", TimeSeries::Kind::kCounterRate, 99.0);
  EXPECT_EQ(&s, &again);  // first registration wins, as with Hist
  EXPECT_EQ(again.kind(), TimeSeries::Kind::kGauge);
  EXPECT_EQ(again.window_s(), 5.0);

  s.Sample(2.0, 4.0);
  b.Series("recovery.x", TimeSeries::Kind::kGauge, 5.0).Sample(7.0, 9.0);
  b.Series("recovery.only_b", TimeSeries::Kind::kCounterRate, 1.0)
      .AddDelta(0.0, 1.0);
  a.MergeFrom(b);
  ASSERT_EQ(a.series().size(), 2u);
  EXPECT_EQ(a.series().at("recovery.x").Points().size(), 2u);
  EXPECT_EQ(a.series().at("recovery.only_b").Points().size(), 1u);
  // Series are exported through the per-cell timeseries block, never the
  // flat registry snapshot.
  EXPECT_TRUE(a.Flatten().empty());
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(Tracer, IdsAreMonotonicAndEventsOldestFirst) {
  Tracer tracer(16);
  for (int i = 0; i < 5; ++i)
    tracer.Emit(static_cast<double>(i), EventKind::kJoin, i, i - 1, i * 10);
  const std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, i);
    EXPECT_EQ(events[i].t, static_cast<double>(i));
    EXPECT_EQ(events[i].subject, static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(tracer.emitted(), 5u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, RingEvictsOldestAndCountsDrops) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i)
    tracer.Emit(static_cast<double>(i), EventKind::kLeave, i);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.emitted(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  // The newest four survive, oldest first.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(events[i].id, 6u + i);
}

TEST(Tracer, ClearKeepsLifetimeTallies) {
  Tracer tracer(4);
  tracer.Emit(1.0, EventKind::kJoin, 1);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.emitted(), 1u);  // ids keep running across Clear()
  tracer.Emit(2.0, EventKind::kJoin, 2);
  EXPECT_EQ(tracer.Events().front().id, 1u);
}

TEST(Tracer, JsonlRoundTripsThroughRunnerJson) {
  Tracer tracer(8);
  tracer.Emit(12.5, EventKind::kLockGrant, 17, 4, 2);
  tracer.Emit(13.0, EventKind::kSwitchCommit, 4, 17);
  std::istringstream lines(tracer.ToJsonl());
  std::string line;
  std::vector<runner::Json> parsed;
  while (std::getline(lines, line)) {
    std::string error;
    parsed.push_back(runner::Json::Parse(line, &error));
    ASSERT_TRUE(error.empty()) << "bad JSONL line: " << line << ": " << error;
  }
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].Find("t")->AsDouble(), 12.5);
  EXPECT_EQ(parsed[0].Find("id")->AsUint(), 0u);
  EXPECT_EQ(parsed[0].Find("kind")->AsString(), "lock_grant");
  EXPECT_EQ(parsed[0].Find("subject")->AsInt(), 17);
  EXPECT_EQ(parsed[0].Find("peer")->AsInt(), 4);
  EXPECT_EQ(parsed[0].Find("detail")->AsInt(), 2);
  EXPECT_EQ(parsed[1].Find("kind")->AsString(), "switch_commit");
  EXPECT_EQ(parsed[1].Find("peer")->AsInt(), 17);
}

TEST(Tracer, ChromeTraceIsValidJsonWithOneEntryPerEvent) {
  Tracer tracer(8);
  tracer.Emit(0.5, EventKind::kEln, 3, -1, 7);
  tracer.Emit(1.5, EventKind::kRepairStart, 9, 3, 1);
  std::string error;
  const runner::Json doc = runner::Json::Parse(tracer.ToChromeTrace(), &error);
  ASSERT_TRUE(error.empty()) << error;
  const runner::Json* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->size(), 2u);
  const runner::Json& first = events->AsArray()[0];
  EXPECT_EQ(first.Find("name")->AsString(), "eln");
  EXPECT_EQ(first.Find("ph")->AsString(), "i");
  // Sim seconds surface as trace microseconds.
  EXPECT_EQ(first.Find("ts")->AsDouble(), 0.5 * 1e6);
  EXPECT_EQ(first.Find("tid")->AsInt(), 3);
}

TEST(Tracer, DigestIsOrderAndContentSensitive) {
  Tracer a(8), b(8), c(8);
  a.Emit(1.0, EventKind::kJoin, 1, 0);
  a.Emit(2.0, EventKind::kLeave, 1, 0);
  b.Emit(1.0, EventKind::kJoin, 1, 0);
  b.Emit(2.0, EventKind::kLeave, 1, 0);
  c.Emit(2.0, EventKind::kLeave, 1, 0);
  c.Emit(1.0, EventKind::kJoin, 1, 0);
  EXPECT_EQ(a.Digest(), b.Digest());
  EXPECT_NE(a.Digest(), c.Digest());
}

TEST(Tracer, EveryKindHasAStableSnakeCaseName) {
  // The names are schema (scripts/trace_schema.json pins them); walk the
  // full enum and require lowercase snake_case, nonempty, and unique.
  std::vector<std::string> names;
  for (int k = static_cast<int>(EventKind::kJoin);
       k <= static_cast<int>(EventKind::kOrphaned); ++k) {
    const std::string name = obs::EventKindName(static_cast<EventKind>(k));
    ASSERT_FALSE(name.empty()) << "kind " << k;
    for (const char ch : name)
      EXPECT_TRUE((ch >= 'a' && ch <= 'z') || ch == '_')
          << "kind " << k << " name '" << name << "'";
    names.push_back(name);
  }
  EXPECT_EQ(names.size(), 34u);
  std::vector<std::string> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end())
      << "duplicate event kind names";
}

// ---------------------------------------------------------------------------
// TraceSink / JsonlStreamSink (the streaming export path)
// ---------------------------------------------------------------------------

struct CollectingSink : obs::TraceSink {
  std::vector<TraceEvent> seen;
  void OnEvent(const TraceEvent& ev) override { seen.push_back(ev); }
};

TEST(TraceSink, SeesEveryEmissionBeforeRingEviction) {
  Tracer tracer(2);
  CollectingSink sink;
  tracer.AddSink(&sink);
  for (int i = 0; i < 5; ++i)
    tracer.Emit(static_cast<double>(i), EventKind::kJoin, i, i - 1);
  // The ring kept only the newest two and evicted three...
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
  // ...but the sink observed all five, in emission order with final ids.
  ASSERT_EQ(sink.seen.size(), 5u);
  for (std::size_t i = 0; i < sink.seen.size(); ++i) {
    EXPECT_EQ(sink.seen[i].id, i);
    EXPECT_EQ(sink.seen[i].subject, static_cast<std::int64_t>(i));
  }
}

TEST(TraceSink, RemoveSinkStopsDelivery) {
  Tracer tracer(8);
  CollectingSink a, b;
  tracer.AddSink(&a);
  tracer.AddSink(&b);
  tracer.Emit(1.0, EventKind::kJoin, 1);
  tracer.RemoveSink(&a);
  tracer.Emit(2.0, EventKind::kLeave, 1);
  EXPECT_EQ(a.seen.size(), 1u);
  ASSERT_EQ(b.seen.size(), 2u);
  EXPECT_EQ(b.seen[1].kind, EventKind::kLeave);
}

TEST(JsonlStreamSink, StreamsBytesIdenticalToTheRingSnapshot) {
  // With a ring large enough to retain everything, the streaming export and
  // the snapshot export must agree byte for byte -- same AppendEventJsonl
  // under both, which is what makes --trace-stream artifacts diffable
  // against in-memory exports.
  Tracer tracer(64);
  std::ostringstream stream;
  obs::JsonlStreamSink sink(stream);
  tracer.AddSink(&sink);
  tracer.Emit(12.5, EventKind::kLockGrant, 17, 4, 2);
  tracer.Emit(13.0, EventKind::kOrphaned, 9, 17, 1);
  tracer.Emit(14.25, EventKind::kRejoin, 9, 3);
  EXPECT_EQ(stream.str(), tracer.ToJsonl());
  EXPECT_EQ(sink.events_written(), 3u);
}

TEST(JsonlStreamSink, OutlivesTheRingsEvictionHorizon) {
  Tracer tracer(2);
  std::ostringstream stream;
  obs::JsonlStreamSink sink(stream);
  tracer.AddSink(&sink);
  for (int i = 0; i < 6; ++i)
    tracer.Emit(static_cast<double>(i), EventKind::kGossipRound, i, -1, i);
  EXPECT_EQ(sink.events_written(), 6u);
  // Every line parses, and the stream kept ids the ring has already lost.
  std::istringstream lines(stream.str());
  std::string line;
  std::uint64_t expected_id = 0;
  while (std::getline(lines, line)) {
    std::string error;
    const runner::Json parsed = runner::Json::Parse(line, &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_EQ(parsed.Find("id")->AsUint(), expected_id++);
  }
  EXPECT_EQ(expected_id, 6u);
}

// ---------------------------------------------------------------------------
// SimProfiler + simulator integration
// ---------------------------------------------------------------------------

TEST(SimProfiler, CountsDispatchesPerTag) {
  obs::SimProfiler profiler;
  sim::Simulator simulator;
  simulator.SetProfiler(&profiler);
  for (int i = 0; i < 3; ++i)
    simulator.ScheduleAt(static_cast<double>(i), [] {}, "test.a");
  simulator.ScheduleAt(5.0, [] {}, "test.b");
  simulator.ScheduleAt(6.0, [] {});  // untagged
  simulator.Run();
  EXPECT_EQ(profiler.events(), 5u);
  ASSERT_TRUE(profiler.per_tag().contains("test.a"));
  EXPECT_EQ(profiler.per_tag().at("test.a").count, 3u);
  EXPECT_EQ(profiler.per_tag().at("test.b").count, 1u);
  EXPECT_EQ(profiler.per_tag().at("untagged").count, 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(profiler.wall_us_hist().count()), 5u);
  EXPECT_EQ(static_cast<std::uint64_t>(profiler.queue_depth_hist().count()),
            5u);
  const std::string table = profiler.FormatTable();
  EXPECT_NE(table.find("test.a"), std::string::npos);
}

TEST(SimProfiler, LoopBracketsDriveEventsPerSec) {
  obs::SimProfiler profiler;
  EXPECT_EQ(profiler.events_per_sec(), 0.0);  // no loop yet
  sim::Simulator simulator;
  simulator.SetProfiler(&profiler);
  for (int i = 0; i < 100; ++i)
    simulator.ScheduleAt(static_cast<double>(i), [] {}, "test.loop");
  simulator.Run();
  EXPECT_EQ(profiler.loop_events(), 100u);
  EXPECT_GT(profiler.loop_us(), 0.0);
  EXPECT_GT(profiler.events_per_sec(), 0.0);
  // The loop bracket includes queue pops, so it can only be wider than the
  // sum of the per-callback brackets.
  double callback_us = 0.0;
  for (const auto& [tag, stats] : profiler.per_tag())
    callback_us += stats.total_us;
  EXPECT_GE(profiler.loop_us(), callback_us);
}

TEST(SimProfiler, SampleMemoryKeepsHighWaterMarks) {
  obs::SimProfiler profiler;
  profiler.SampleMemory(10, 64);
  profiler.SampleMemory(50, 128);
  profiler.SampleMemory(3, 16);  // below the marks: must not lower them
  EXPECT_EQ(profiler.pool_live_max(), 50u);
  EXPECT_EQ(profiler.pool_capacity_max(), 128u);
  // getrusage-backed peak RSS: any live process has resident pages.
  EXPECT_GT(profiler.peak_rss_bytes(), 0u);
}

TEST(SimProfiler, RssDeltaIsBaselinedAtConstruction) {
  // The per-cell attribution story: peak_rss_bytes() is process-wide (it
  // includes every cell that ran before this one), while rss_delta_bytes()
  // subtracts the baseline captured at construction -- so a profiler built
  // late in a process reports only growth during its own run, never the
  // predecessors' footprint.
  obs::SimProfiler profiler;
  profiler.SampleMemory(0, 0);
  EXPECT_GT(profiler.baseline_rss_bytes(), 0u);
  // getrusage's high-water mark is monotone, so a sampled peak can never
  // fall below the construction-time baseline.
  EXPECT_GE(profiler.peak_rss_bytes(), profiler.baseline_rss_bytes());
  EXPECT_EQ(profiler.rss_delta_bytes(),
            profiler.peak_rss_bytes() - profiler.baseline_rss_bytes());
  EXPECT_LE(profiler.rss_delta_bytes(), profiler.peak_rss_bytes());

  obs::ProfileAggregator agg;
  agg.Merge(profiler);
  EXPECT_EQ(agg.rss_delta_max_bytes(), profiler.rss_delta_bytes());
}

TEST(SimProfiler, RunLoopSamplesPoolOccupancy) {
  obs::SimProfiler profiler;
  sim::Simulator simulator(sim::QueueKind::kCalendar);
  simulator.SetProfiler(&profiler);
  // A standing population of far-future timers keeps the pool occupied
  // through the end-of-loop sample.
  for (int i = 0; i < 500; ++i)
    simulator.ScheduleAt(1000.0 + i, [] {}, "test.standing");
  simulator.ScheduleAt(1.0, [] {}, "test.near");
  simulator.RunUntil(2.0);
  EXPECT_GE(profiler.pool_live_max(), 500u);
  EXPECT_GE(profiler.pool_capacity_max(), profiler.pool_live_max());
  EXPECT_GT(profiler.peak_rss_bytes(), 0u);
}

TEST(SimProfiler, AggregatorMergesCells) {
  obs::SimProfiler a, b;
  sim::Simulator sa, sb;
  sa.SetProfiler(&a);
  sb.SetProfiler(&b);
  sa.ScheduleAt(0.0, [] {}, "cell.work");
  sb.ScheduleAt(0.0, [] {}, "cell.work");
  sb.ScheduleAt(1.0, [] {}, "cell.other");
  sa.Run();
  sb.Run();
  obs::ProfileAggregator agg;
  agg.Merge(a);
  agg.Merge(b);
  EXPECT_EQ(agg.events(), 3u);
  const std::string table = agg.FormatTable();
  EXPECT_NE(table.find("cell.work"), std::string::npos);
  EXPECT_NE(table.find("cell.other"), std::string::npos);
}

}  // namespace
}  // namespace omcast
