# Empty compiler generated dependencies file for test_eln.
# This may be replaced when dependencies are built.
