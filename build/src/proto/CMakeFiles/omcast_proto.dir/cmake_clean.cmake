file(REMOVE_RECURSE
  "CMakeFiles/omcast_proto.dir/longest_first.cc.o"
  "CMakeFiles/omcast_proto.dir/longest_first.cc.o.d"
  "CMakeFiles/omcast_proto.dir/min_depth.cc.o"
  "CMakeFiles/omcast_proto.dir/min_depth.cc.o.d"
  "CMakeFiles/omcast_proto.dir/relaxed_ordered.cc.o"
  "CMakeFiles/omcast_proto.dir/relaxed_ordered.cc.o.d"
  "CMakeFiles/omcast_proto.dir/selection.cc.o"
  "CMakeFiles/omcast_proto.dir/selection.cc.o.d"
  "libomcast_proto.a"
  "libomcast_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omcast_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
