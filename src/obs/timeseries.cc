#include "obs/timeseries.h"

#include <cmath>

#include "util/check.h"

namespace omcast::obs {

TimeSeries::TimeSeries(Kind kind, double window_s)
    : kind_(kind), window_s_(window_s) {
  util::Check(window_s_ > 0.0, "time series window width must be positive");
}

long TimeSeries::WindowIndex(double t) const {
  return static_cast<long>(std::floor(t / window_s_));
}

std::size_t TimeSeries::Touch(long idx) {
  if (values_.empty()) {
    first_window_ = idx;
    values_.push_back(0.0);
    covered_.push_back(0);
    return 0;
  }
  if (idx < first_window_) {
    const auto grow = static_cast<std::size_t>(first_window_ - idx);
    values_.insert(values_.begin(), grow, 0.0);
    covered_.insert(covered_.begin(), grow, 0);
    first_window_ = idx;
    return 0;
  }
  const auto slot = static_cast<std::size_t>(idx - first_window_);
  if (slot >= values_.size()) {
    values_.resize(slot + 1, 0.0);
    covered_.resize(slot + 1, 0);
  }
  return slot;
}

void TimeSeries::AddDelta(double t, double delta) {
  util::Check(kind_ == Kind::kCounterRate,
              "AddDelta is the counter-rate recording call");
  const std::size_t slot = Touch(WindowIndex(t));
  values_[slot] += delta;
  covered_[slot] = 1;
}

void TimeSeries::Sample(double t, double value) {
  util::Check(kind_ == Kind::kGauge, "Sample is the gauge recording call");
  const std::size_t slot = Touch(WindowIndex(t));
  values_[slot] = value;
  covered_[slot] = 1;
}

std::vector<TimeSeries::Point> TimeSeries::Points() const {
  std::vector<Point> out;
  out.reserve(values_.size());
  double carry = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    Point p;
    p.t = static_cast<double>(first_window_ + static_cast<long>(i)) *
          window_s_;
    if (kind_ == Kind::kGauge)
      p.value = covered_[i] ? values_[i] : carry;
    else
      p.value = values_[i];  // uncovered slots hold the 0 they were grown with
    carry = p.value;
    out.push_back(p);
  }
  return out;
}

void TimeSeries::MergeFrom(const TimeSeries& other) {
  util::Check(kind_ == other.kind_,
              "time series merge requires matching flavors");
  util::Check(window_s_ == other.window_s_,
              "time series merge requires matching window widths");
  for (std::size_t i = 0; i < other.values_.size(); ++i) {
    if (!other.covered_[i]) continue;
    const std::size_t slot =
        Touch(other.first_window_ + static_cast<long>(i));
    if (kind_ == Kind::kCounterRate)
      values_[slot] += other.values_[i];
    else
      values_[slot] = other.values_[i];
    covered_[slot] = 1;
  }
}

}  // namespace omcast::obs
