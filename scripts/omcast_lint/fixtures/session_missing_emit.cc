// Fixture [rost-event-emit, Session table]: the reconnect/re-entry state
// machine's transitions pair with the kReconnect* taxonomy family. A
// ReentryAttempt body that emits the attached outcome but not the abandoned
// one must be flagged at the definition line.
//
// TaxonomyRegistry() references every kReconnect* kind so the whole-file
// taxonomy cross-reference (resolved against the real src/obs/trace.h by
// walking up from this file) stays satisfied.
namespace fixture {

enum class EventKind : int {
  kReconnectStart,
  kReconnectAttached,
  kReconnectAbandoned,
  kOrphaned,
};

struct Tracer {
  void Emit(EventKind kind, int subject, int peer, int detail);
};

class Session {
 public:
  void BeginReentry(int node, int predecessor);
  void ReentryAttempt(int node, int predecessor);
  void HandleDeparture(int node);

 private:
  Tracer* tracer_ = nullptr;
};

// Negative: a compliant transition emits its paired kind.
void Session::BeginReentry(int node, int predecessor) {
  tracer_->Emit(EventKind::kReconnectStart, node, predecessor, 0);
}

// Negative: orphan creation marks each orphan (the incident analyzer opens
// a disruption lifecycle on this emission).
void Session::HandleDeparture(int node) {
  tracer_->Emit(EventKind::kOrphaned, node + 1, node, 0);
}

void Session::ReentryAttempt(int node, int predecessor) {  // expect(rost-event-emit)
  tracer_->Emit(EventKind::kReconnectAttached, node, predecessor, 1);
  // BUG (deliberate): the retries-exhausted branch never emits
  // kReconnectAbandoned, so an abandoned rejoin is invisible in the trace.
}

// Keeps the file-level taxonomy cross-reference satisfied (every family
// kind has an emit site somewhere in this file).
inline void TaxonomyRegistry(Tracer* tracer) {
  tracer->Emit(EventKind::kReconnectStart, 0, 0, 0);
  tracer->Emit(EventKind::kReconnectAttached, 0, 0, 0);
  tracer->Emit(EventKind::kReconnectAbandoned, 0, 0, 0);
  tracer->Emit(EventKind::kOrphaned, 0, 0, 0);
}

}  // namespace fixture
