// The Reliability-Oriented Switching Tree (ROST) algorithm -- the paper's
// primary proactive contribution (Section 3).
//
// Members join like the minimum-depth algorithm (sample ~100 members, pick
// the highest spare-capacity parent, ties by network delay), which places
// newcomers at the leaves. Every switching interval a member compares its
// bandwidth-time product (BTP = outbound bandwidth x age) with its parent's;
// if its BTP is larger *and* its bandwidth is no less than the parent's, the
// two swap positions:
//
//   * the child takes the parent's place under the grandparent,
//   * the old parent and the child's former siblings become children of the
//     promoted node,
//   * the demoted parent adopts the promoted node's former children up to
//     its capacity; the largest-BTP overflow children simply stay with the
//     promoted node (Fig. 2's node f).
//
// The swap first locks the child, parent, grandparent, children and
// siblings; if any is mid-switch or mid-failure-recovery the attempt is
// retried after lock_retry_delay_s (the paper's "say, 15 seconds").
//
// Locking has two implementations:
//
//   * the oracle path (no FaultPlane installed): the lock set is acquired
//     and the swap performed atomically in one event, exactly the paper's
//     idealized description;
//   * the lease path (SetFaultPlane): the handshake is real messages --
//     request -> grant/deny -> release -- each of which can be lost,
//     duplicated, reordered or delayed. A grant is a *lease* that
//     self-expires after lock_lease_s, so a lost release or a lock holder
//     that dies mid-handshake can never wedge its participants; an
//     initiator that cannot assemble all grants within
//     lock_request_timeout_s releases what it got and retries with bounded
//     exponential backoff. Because the tree can change while messages are
//     in flight, a completed handshake re-validates the whole neighbourhood
//     before swapping and aborts (releasing every lease) on any mismatch.
//
// With referees enabled (Section 3.4), switching decisions use
// referee-attested bandwidth/age rather than the member's own claims, which
// neutralizes cheating (see RefereeService).
//
// Thread-compatibility: all lock-lease bookkeeping (NodeState, Handshake,
// the lease counters) is *simulated* protocol state driven by one
// sim::Simulator event loop, so a RostProtocol is confined to the runner
// cell that owns its Session -- host-side locking would be wrong, not just
// unnecessary. Nothing in this class may grow process-shared mutable state;
// anything shared across cell threads belongs behind util::Mutex with
// OMCAST_GUARDED_BY annotations (see util/thread_annotations.h), and the
// omcast-lint rost-event-emit rule separately pins every one of these
// transition functions to its obs::EventKind trace emission.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/rost/referee.h"
#include "overlay/session.h"
#include "sim/fault_plane.h"

namespace omcast::core {

// What drives the periodic switch decision. The paper's ROST uses the BTP
// (bandwidth x age) with a bandwidth guard; the other two isolate each
// factor for the ablation bench (a pure-bandwidth switcher approximates the
// BO idea, a pure-age switcher the TO idea, both restricted to ROST's
// child-parent swap mechanics).
enum class SwitchCriterion { kBtp, kBandwidthOnly, kAgeOnly };

struct RostParams {
  // Paper Section 5: default switching interval 360 s (Fig. 11 sweeps
  // 480-1800 s).
  double switching_interval_s = 360.0;
  SwitchCriterion criterion = SwitchCriterion::kBtp;
  // Wait before re-checking when the lock set could not be acquired.
  double lock_retry_delay_s = 15.0;
  // How long a switch holds its locks (the handshake + state update time).
  double lock_hold_s = 2.0;
  // --- lease path (active only when a FaultPlane is installed) ------------
  // Lifetime of a granted lock lease. Must exceed lock_request_timeout_s so
  // a grant that reaches the initiator just before its deadline still
  // covers the swap itself.
  double lock_lease_s = 10.0;
  // How long the initiator waits to assemble the full grant set before
  // releasing what it got and retrying.
  double lock_request_timeout_s = 2.0;
  // Failed lock attempts retry after lock_retry_delay_s * 2^(attempts-1),
  // capped at this multiplier.
  int lock_retry_max_backoff = 8;
  // Use referee-attested values for switching decisions.
  bool use_referees = false;
  RefereeParams referee;
};

class RostProtocol final : public overlay::Protocol {
 public:
  explicit RostProtocol(RostParams params = {});

  std::string name() const override { return "rost"; }
  // Min-depth join; when the rooted tree has no open slot, a joiner with
  // spare capacity displaces the weakest rooted leaf and adopts it (see
  // TryPreemptJoin), so a correlated failure that strands the overlay's
  // fan-out capacity inside detached fragments cannot deadlock rejoins.
  bool TryAttach(overlay::Session& session, overlay::NodeId id) override;
  void OnAttached(overlay::Session& session, overlay::NodeId id) override;
  void OnDeparture(overlay::Session& session, overlay::NodeId id) override;
  void OnOrphaned(overlay::Session& session, overlay::NodeId id) override;
  // Fast-forwards the BTP switches the member would have performed during
  // its pre-t0 life (one opportunity per elapsed switching interval), so
  // equilibrium pre-population yields ROST's own steady-state tree.
  void OnPrepopulated(overlay::Session& session, overlay::NodeId id) override;

  const RostParams& params() const { return params_; }

  // Routes the lock handshake over real (lossy) messages and switches the
  // locking discipline from the atomic oracle to leases. The plane must
  // outlive the run. Pass nullptr to restore the oracle path.
  void SetFaultPlane(sim::FaultPlane* fault_plane) override {
    fault_plane_ = fault_plane;
  }

  // "rost.*" message-cost counters (the Fig. 10 protocol overhead export).
  void ExportCounters(obs::Registry& reg) const override;

  // The BTP/bandwidth the switching logic believes for `id`: the member's
  // claim, or the referee-attested value when referees are enabled.
  double EffectiveBtp(overlay::Session& session, overlay::NodeId id);
  double EffectiveBandwidth(overlay::Session& session, overlay::NodeId id);
  double EffectiveAge(overlay::Session& session, overlay::NodeId id);

  // Statistics for tests and the protocol-cost experiments.
  long switches_performed() const { return switches_; }
  long lock_conflicts() const { return lock_conflicts_; }
  long infeasible_switches() const { return infeasible_; }
  // Joins that only succeeded by displacing a weaker leaf (saturated tree).
  long preempt_joins() const { return preempt_joins_; }
  RefereeService& referees() { return referees_; }

  // --- lease-path statistics (all zero on the oracle path) ----------------
  long leases_granted() const { return leases_granted_; }
  long leases_released() const { return leases_released_; }
  long leases_expired() const { return leases_expired_; }
  long lock_timeouts() const { return lock_timeouts_; }
  long lock_retries() const { return lock_retries_; }
  // Handshakes that assembled every grant but found the neighbourhood
  // changed underneath them and aborted instead of swapping.
  long handshake_aborts() const { return handshake_aborts_; }
  // Leases currently held (granted - released - expired). After a drain of
  // at least lock_lease_s with no new switch attempts this must be zero --
  // the "no wedged locks" acceptance check.
  long leases_outstanding() const {
    return leases_granted_ - leases_released_ - leases_expired_;
  }
  // A wedged lease is one still marked held after its expiry time, i.e. the
  // expiry event failed to reap it. Always zero unless the protocol is
  // buggy; chaos runs assert on it.
  long WedgedLeases(sim::Time now) const override;

  // Immediately evaluates `id`'s switching condition (tests drive this
  // directly; production path uses the periodic timer).
  void CheckSwitchNow(overlay::Session& session, overlay::NodeId id);

 private:
  // In-flight lease handshake, owned by the initiator. Participants are the
  // lock set minus the initiator itself (which leases locally).
  struct Handshake {
    std::uint64_t serial = 0;          // matches NodeState::handshake_serial
    overlay::NodeId parent = overlay::kNoNode;  // parent at initiation time
    std::vector<overlay::NodeId> participants;
    std::vector<char> granted;              // parallel to participants
    std::vector<std::uint64_t> lease_serial;  // participant lease serials
    int grants = 0;
    std::uint64_t self_lease_serial = 0;
    sim::EventId timeout = sim::kInvalidEventId;
  };

  struct NodeState {
    sim::EventId timer = sim::kInvalidEventId;
    sim::Time locked_until = 0.0;
    bool recovering = false;  // orphaned, mid failure-recovery
    // --- lease path ---------------------------------------------------------
    bool lease_held = false;
    overlay::NodeId lease_holder = overlay::kNoNode;
    std::uint64_t lease_serial = 0;  // bumps per grant; tags release/expiry
    std::uint64_t handshake_serial = 0;  // bumps per handshake (initiator)
    int failed_attempts = 0;             // consecutive failures, for backoff
    std::unique_ptr<Handshake> handshake;
  };

  NodeState& StateFor(overlay::NodeId id);
  // Saturation fallback for TryAttach: no rooted member has a spare slot
  // (all spare capacity is stranded in detached fragments -- the capacity
  // deadlock a correlated kill of a high-fanout node creates). A joiner
  // with at least one spare slot of its own takes the tree position of the
  // weakest strictly-poorer rooted leaf among `candidates` and immediately
  // adopts it, so nobody detaches and rooted capacity strictly grows.
  bool TryPreemptJoin(overlay::Session& session,
                      const std::vector<overlay::NodeId>& candidates,
                      overlay::NodeId id);
  // The paper's switching predicate for `id` against its current parent.
  bool SwitchConditionHolds(overlay::Session& session, overlay::NodeId id,
                            overlay::NodeId parent);
  // Structural feasibility of the swap against actual capacities.
  bool SwitchFeasible(overlay::Session& session, overlay::NodeId id,
                      overlay::NodeId parent) const;
  void ScheduleCheck(overlay::Session& session, overlay::NodeId id,
                     double delay_s);
  void CheckSwitch(overlay::Session& session, overlay::NodeId id);
  bool TryLock(overlay::Session& session, const std::vector<overlay::NodeId>& set);
  // --- lease-path handshake (FaultPlane installed) -------------------------
  // Computes {id, parent, grandparent, children, siblings}.
  std::vector<overlay::NodeId> BuildLockSet(overlay::Session& session,
                                            overlay::NodeId id,
                                            overlay::NodeId parent) const;
  void StartHandshake(overlay::Session& session, overlay::NodeId id,
                      overlay::NodeId parent,
                      std::vector<overlay::NodeId> lock_set);
  void OnLockRequest(overlay::Session& session, overlay::NodeId participant,
                     overlay::NodeId holder, std::uint64_t hs_serial);
  void OnLockGrant(overlay::Session& session, overlay::NodeId holder,
                   overlay::NodeId participant, std::uint64_t hs_serial,
                   std::uint64_t lease_serial);
  void OnLockDeny(overlay::Session& session, overlay::NodeId holder,
                  std::uint64_t hs_serial);
  void OnLockTimeout(overlay::Session& session, overlay::NodeId holder,
                     std::uint64_t hs_serial);
  void CompleteHandshake(overlay::Session& session, overlay::NodeId holder);
  // Failed attempt: release everything granted, back off, retry.
  void FailHandshake(overlay::Session& session, overlay::NodeId holder);
  // Schedules the next attempt with bounded exponential backoff.
  void RetryAfterFailure(overlay::Session& session, overlay::NodeId id);
  // Grants `node`'s lease to `holder`, schedules its expiry; returns the
  // lease serial the eventual release must carry.
  std::uint64_t GrantLease(overlay::Session& session, overlay::NodeId node,
                           overlay::NodeId holder);
  // Local-side release (the participant processing a release message).
  void ReleaseLease(overlay::Session& session, overlay::NodeId node,
                    overlay::NodeId holder, std::uint64_t lease_serial);
  // Sends a release message holder -> participant over the FaultPlane.
  void SendRelease(overlay::Session& session, overlay::NodeId holder,
                   overlay::NodeId participant, std::uint64_t lease_serial);
  // Releases every lease the handshake acquired (self + granted
  // participants) and tears the handshake down.
  void TearDownHandshake(overlay::Session& session, overlay::NodeId holder);
  void PerformSwitch(overlay::Session& session, overlay::NodeId child,
                     overlay::NodeId parent);
  // Deep-tier (OMCAST_DCHECK) full-tree audit of a completed child-parent
  // swap: promoted/demoted positions, conservation of the neighbourhood,
  // and Tree::CheckInvariants() over the whole tree. No-op in Release.
  void AuditSwitch(overlay::Session& session, overlay::NodeId child,
                   overlay::NodeId parent, overlay::NodeId grand,
                   std::size_t neighbourhood_size) const;
  // Deep-tier audit that every member of an acquired lock set is actually
  // held (locked_until in the future) and lockable (not recovering).
  void AuditLockSet(overlay::Session& session,
                    const std::vector<overlay::NodeId>& set);

  RostParams params_;
  std::vector<NodeState> state_;
  RefereeService referees_;
  sim::FaultPlane* fault_plane_ = nullptr;  // nullptr: oracle lock path
  long switches_ = 0;
  long preempt_joins_ = 0;
  long lock_conflicts_ = 0;
  long infeasible_ = 0;
  long leases_granted_ = 0;
  long leases_released_ = 0;
  long leases_expired_ = 0;
  long lock_timeouts_ = 0;
  long lock_retries_ = 0;
  long handshake_aborts_ = 0;
};

}  // namespace omcast::core
