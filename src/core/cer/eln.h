// Explicit Loss Notification (ELN) -- paper Section 4.2.
//
// A member that detects a packet loss sends its children a notification
// carrying only the missed sequence number, so downstream members can tell
// "my parent is also missing this packet" (rely on upstream recovery; do
// not rejoin) apart from "my parent went silent" (parent failure or link
// breakage; launch the rejoin process). A member infers parent failure when
// the gap between the highest sequence accounted for (by data *or* ELN) and
// the contiguous frontier exceeds a threshold (the paper's "sequence
// gap > 3").
//
// The tracker is a per-member state machine over sequence numbers; the
// streaming layer and the unit tests drive it with explicit event streams.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

namespace omcast::core {

class ElnTracker {
 public:
  enum class Status {
    kHealthy,        // contiguous stream, nothing outstanding
    kUpstreamLoss,   // holes exist but every hole is ELN-covered
    kParentFailure,  // unaccounted gap exceeded the threshold
  };

  explicit ElnTracker(int gap_threshold = 3);

  // A data packet with sequence `seq` arrived from the parent (also used
  // for repaired packets arriving from recovery nodes).
  void OnData(std::int64_t seq);

  // An ELN for `seq` arrived: the parent announced it is missing `seq` too.
  void OnEln(std::int64_t seq);

  Status status() const;

  // Sequences this member should itself ELN-forward to its children:
  // everything it has had to account for via ELN since the last call.
  std::vector<std::int64_t> TakeForwardNotifications();

  // Highest sequence s such that all of [0, s] are accounted for (data or
  // ELN); -1 initially.
  std::int64_t frontier() const { return frontier_; }

  // Holes at or below the frontier that are ELN-covered and still unrepaired.
  std::size_t outstanding_eln_holes() const { return eln_covered_.size(); }

 private:
  void Account(std::int64_t seq, bool via_eln);

  int gap_threshold_ = 0;
  std::int64_t frontier_ = -1;   // all seqs <= frontier_ accounted
  std::int64_t max_seen_ = -1;   // highest seq accounted (any kind)
  std::set<std::int64_t> pending_;      // accounted, above the frontier
  std::set<std::int64_t> eln_covered_;  // accounted via ELN, not yet repaired
  std::vector<std::int64_t> to_forward_;
};

}  // namespace omcast::core
