// Ablation (beyond the paper): the harness normally models membership
// discovery as uniform sampling from the live population ("each node will
// know about a medium-sized subset of other nodes", Section 4.1). This
// bench validates that abstraction by re-running the ROST and min-depth
// scenarios over the *real* gossip protocol (bounded views, push-pull
// exchanges, stale entries) and comparing the headline metrics.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "metrics/collectors.h"
#include "overlay/gossip.h"
#include "sim/simulator.h"

namespace {

using namespace omcast;

runner::CellResult RunOne(const net::Topology& topology,
                          exp::Algorithm algorithm, bool use_gossip,
                          const exp::ScenarioConfig& config) {
  sim::Simulator sim;
  overlay::Session session(sim, topology,
                           exp::MakeProtocol(algorithm, config.rost),
                           config.session, config.seed);
  std::unique_ptr<overlay::GossipService> gossip;
  if (use_gossip) {
    gossip = std::make_unique<overlay::GossipService>(
        session, overlay::GossipParams{}, config.seed ^ 0x90551B);
    session.SetMembershipOracle(gossip.get());
  }
  metrics::MemberOutcomes outcomes(session);
  metrics::TreeSnapshots snapshots(session, config.snapshot_interval_s);
  const double t_end = config.warmup_s + config.measure_s;
  outcomes.SetWindow(config.warmup_s, t_end);
  snapshots.Start(config.warmup_s, t_end);
  session.Prepopulate(config.population);
  session.StartArrivals(config.population / rnd::kMeanLifetimeSeconds);
  sim.RunUntil(t_end);
  outcomes.HarvestAliveMembers();
  runner::CellResult out;
  out.metrics["disruptions"] = outcomes.disruptions().mean();
  out.metrics["delay_ms"] = snapshots.delay_ms().mean();
  out.metrics["reconnections"] = outcomes.reconnections().mean();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Ablation -- uniform sampling vs real gossip views", env);

  const exp::Algorithm algorithms[] = {exp::Algorithm::kMinDepth,
                                       exp::Algorithm::kRost};
  runner::GridSpec spec;
  spec.figure = "ablation_gossip";
  spec.title = "membership-discovery ablation";
  spec.row_header = "algorithm";
  for (const exp::Algorithm a : algorithms)
    spec.rows.push_back(exp::AlgorithmLabel(a));
  spec.cols = {"uniform", "gossip views"};
  spec.reps = env.reps;
  spec.headline_metric = "disruptions";
  spec.run = [&env, &algorithms](const runner::CellContext& cell) {
    exp::ScenarioConfig config = env.BaseConfig();
    config.population = env.focus_size;
    config.seed = cell.seed;
    return RunOne(env.Topo(), algorithms[cell.row],
                  /*use_gossip=*/cell.col == 1, config);
  };
  const runner::ResultsSink sink = bench::RunGridBench(env, spec);

  util::Table table({"algorithm", "discovery", "disruptions/node", "delay(ms)",
                     "reconnects/node"});
  for (std::size_t row = 0; row < spec.rows.size(); ++row) {
    for (std::size_t col = 0; col < spec.cols.size(); ++col) {
      table.AddRow(
          {spec.rows[row], spec.cols[col],
           util::FormatDouble(sink.Stat(row, col, "disruptions").mean(), 3),
           util::FormatDouble(sink.Stat(row, col, "delay_ms").mean(), 1),
           util::FormatDouble(sink.Stat(row, col, "reconnections").mean(),
                              3)});
    }
  }
  table.Print(std::cout,
              "membership-discovery ablation (" +
                  std::to_string(env.focus_size) + " members)");
  std::cout << "\nIf the rows match within noise, the uniform-sampling "
               "abstraction used by the\nfigure benches is sound.\n";
  return 0;
}
