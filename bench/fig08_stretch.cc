// Fig. 8: average network stretch (overlay path delay / direct unicast
// delay) vs steady-state network size.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 8 -- avg network stretch", env);

  const runner::GridSpec spec = bench::TreeSizeSweepSpec(
      env, "fig08_stretch", "avg network stretch", "stretch");
  const runner::ResultsSink sink = bench::RunGridBench(env, spec);
  bench::PrintMetricTable(spec, sink, "stretch", 2,
                          "avg stretch (rows: steady-state size)");
  bench::MaybePrintProfile(env);
  return 0;
}
