#include "metrics/chaos_counters.h"

#include <sstream>

namespace omcast::metrics {

ChaosCounters CollectChaosCounters(const sim::FaultPlane* fault_plane,
                                   const overlay::HeartbeatService* heartbeat,
                                   const core::RostProtocol* rost,
                                   const overlay::GossipService* gossip,
                                   const stream::PacketLevelStream* stream,
                                   sim::Time now) {
  ChaosCounters c;
  if (fault_plane != nullptr) {
    c.messages_sent = fault_plane->messages_sent();
    c.messages_dropped = fault_plane->messages_dropped();
    c.messages_duplicated = fault_plane->messages_duplicated();
    c.messages_delivered = fault_plane->messages_delivered();
  }
  if (heartbeat != nullptr) {
    c.heartbeats_sent = heartbeat->heartbeats_sent();
    c.detections = heartbeat->detections();
    c.false_suspicions = heartbeat->false_suspicions();
    c.mean_detection_latency_s = heartbeat->detection_latency().count() > 0
                                     ? heartbeat->detection_latency().mean()
                                     : 0.0;
  }
  if (rost != nullptr) {
    c.leases_granted = rost->leases_granted();
    c.leases_released = rost->leases_released();
    c.leases_expired = rost->leases_expired();
    c.leases_outstanding = rost->leases_outstanding();
    c.wedged_leases = rost->WedgedLeases(now);
    c.lock_timeouts = rost->lock_timeouts();
    c.lock_retries = rost->lock_retries();
    c.handshake_aborts = rost->handshake_aborts();
    c.preempt_joins = rost->preempt_joins();
  }
  if (gossip != nullptr) c.stale_view_rejections = gossip->stale_rejections();
  if (stream != nullptr) {
    c.repairs_scheduled = stream->repairs_scheduled();
    c.eln_sent = stream->eln_notifications_sent();
    c.stripe_failovers = stream->stripe_failovers();
    c.short_group_fallbacks = stream->short_group_fallbacks();
  }
  return c;
}

std::string FormatChaosCounters(const ChaosCounters& c) {
  std::ostringstream os;
  os << "control plane: sent " << c.messages_sent << ", dropped "
     << c.messages_dropped << ", duplicated " << c.messages_duplicated
     << ", delivered " << c.messages_delivered << "\n"
     << "heartbeats:    sent " << c.heartbeats_sent << ", detections "
     << c.detections << ", false suspicions " << c.false_suspicions
     << ", mean latency " << c.mean_detection_latency_s << " s\n"
     << "lock leases:   granted " << c.leases_granted << ", released "
     << c.leases_released << ", expired " << c.leases_expired
     << ", outstanding " << c.leases_outstanding << ", wedged "
     << c.wedged_leases << "\n"
     << "lock control:  timeouts " << c.lock_timeouts << ", retries "
     << c.lock_retries << ", aborts " << c.handshake_aborts << "\n"
     << "join:          preempt joins " << c.preempt_joins << "\n"
     << "gossip:        stale rejections " << c.stale_view_rejections << "\n"
     << "repair:        scheduled " << c.repairs_scheduled << ", ELN sent "
     << c.eln_sent << ", stripe failovers " << c.stripe_failovers
     << ", short groups " << c.short_group_fallbacks << "\n";
  return os.str();
}

}  // namespace omcast::metrics
