file(REMOVE_RECURSE
  "CMakeFiles/fig05_disruption_cdf.dir/fig05_disruption_cdf.cc.o"
  "CMakeFiles/fig05_disruption_cdf.dir/fig05_disruption_cdf.cc.o.d"
  "fig05_disruption_cdf"
  "fig05_disruption_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_disruption_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
