file(REMOVE_RECURSE
  "libomcast_metrics.a"
)
