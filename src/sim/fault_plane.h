// Lossy control-plane model for chaos experiments.
//
// The protocol layers (gossip, ROST locking, ELN, heartbeats) exchange
// control messages that the plain simulator delivers instantly and
// reliably. A FaultPlane sits between a sender and the simulator and
// subjects every control message to seeded, per-link faults:
//
//   * loss        -- the message is silently dropped (probability
//                    loss_rate, overridable per directed link);
//   * duplication -- a second copy is delivered with fresh jitter
//                    (probability dup_prob);
//   * reordering  -- every delivery is delayed by an extra U[0, jitter_s)
//                    on top of the base network delay, so two messages on
//                    the same link can overtake each other.
//
// All randomness comes from one seeded RNG, so a fault schedule is
// bit-reproducible: the same seed produces the same drops, duplicates and
// delays in the same order (the chaos regression tests replay schedules and
// assert identical traces). A default-constructed FaultPlane with zero
// rates still draws from the RNG per message, so enabling faults never
// changes *which* RNG draws protocols themselves make.
//
// Endpoints are identified by the caller's node ids; the plane itself is
// protocol-agnostic. Injectable *failure* patterns (correlated stub-domain
// kills, flash departures, mid-repair deaths) live in exp/chaos.h -- they
// need session and topology context the message plane deliberately lacks.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "rand/rng.h"
#include "sim/simulator.h"

namespace omcast::sim {

struct FaultPlaneParams {
  // Probability a control message is dropped (applies per delivery attempt;
  // a duplicate rolls its own loss).
  double loss_rate = 0.0;
  // Probability a surviving message is delivered twice.
  double dup_prob = 0.0;
  // Extra delivery delay drawn uniformly from [0, jitter_s); with a
  // positive value, messages on one link can arrive out of order.
  double jitter_s = 0.0;
};

class FaultPlane {
 public:
  FaultPlane(Simulator& simulator, FaultPlaneParams params,
             std::uint64_t seed);
  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  // Submits one control message from node `from` to node `to` whose
  // fault-free delivery would take `base_delay_s`. Returns true when at
  // least one copy was scheduled, false when the message was lost. The
  // callback runs once per delivered copy; receivers must tolerate
  // duplicates and reordering.
  bool Deliver(int from, int to, double base_delay_s, Simulator::Callback cb);

  // Overrides the loss rate of the directed link from->to (e.g. to sever
  // one link entirely while the rest of the plane stays healthy).
  void SetLinkLossRate(int from, int to, double rate);
  void ClearLinkOverrides() { link_loss_.clear(); }

  const FaultPlaneParams& params() const { return params_; }

  // --- fault accounting ----------------------------------------------------
  long messages_sent() const { return sent_; }
  long messages_dropped() const { return dropped_; }
  long messages_duplicated() const { return duplicated_; }
  long messages_delivered() const { return delivered_; }

 private:
  static std::uint64_t LinkKey(int from, int to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
            << 32) |
           static_cast<std::uint32_t>(to);
  }
  double LossRateFor(int from, int to) const;
  void ScheduleCopy(double base_delay_s, const Simulator::Callback& cb);

  Simulator& sim_;
  FaultPlaneParams params_;
  rnd::Rng rng_;
  // Point lookups only (never iterated), so the bucket order cannot leak
  // into fault decisions.
  // omcast-lint: allow(unordered-iter)
  std::unordered_map<std::uint64_t, double> link_loss_;
  long sent_ = 0;
  long dropped_ = 0;
  long duplicated_ = 0;
  long delivered_ = 0;
};

}  // namespace omcast::sim
