# Empty compiler generated dependencies file for lecture_streaming.
# This may be replaced when dependencies are built.
