// Partial-tree reconstruction (paper Section 4.1, Fig. 3).
//
// During the multicast, members periodically exchange neighbour information,
// so each member knows a medium-sized subset (~100) of other members. Each
// known member's record carries the addresses, layer numbers and out-degrees
// of all its *ancestors*, so the knowing member can splice the records into
// a partial view of the real multicast tree: exactly the union of the known
// members' root paths. Algorithm 1 (MLC group selection) runs on this view.
#pragma once

#include <unordered_map>
#include <vector>

#include "overlay/tree.h"

namespace omcast::core {

class PartialTree {
 public:
  struct Node {
    overlay::NodeId id = overlay::kNoNode;
    int parent = -1;  // local index; -1 for the root
    int layer = 0;
    std::vector<int> children;  // local indices
  };

  // Builds the partial view from `known` members of `tree` (each must be
  // rooted; unrooted entries are skipped -- a gossip record pointing into a
  // detached fragment is stale).
  static PartialTree Build(const overlay::Tree& tree,
                           const std::vector<overlay::NodeId>& known);

  const std::vector<Node>& nodes() const { return nodes_; }
  int root_index() const { return root_; }
  bool empty() const { return nodes_.empty(); }

  // Local indices grouped by layer; levels[0] == {root}.
  std::vector<std::vector<int>> Levels() const;

  // All strict descendants of local node `idx`.
  std::vector<int> Descendants(int idx) const;

  // Local index of a member, or -1.
  int IndexOf(overlay::NodeId id) const;

 private:
  int InternNode(overlay::NodeId id, int layer);

  std::vector<Node> nodes_;
  // Point lookups only (IndexOf/InternNode); traversals (Levels,
  // Descendants) walk nodes_ in deterministic insertion order instead.
  // omcast-lint: allow(unordered-iter)
  std::unordered_map<overlay::NodeId, int> index_;
  int root_ = -1;
};

}  // namespace omcast::core
