// Shared scaffolding for the figure-reproduction benches.
//
// Every bench accepts:
//   --scale=small|paper   both use the paper's 15,600-host GT-ITM topology;
//                         small (default) sweeps steady-state sizes
//                         {2000, 3500, 5000} so the whole suite runs in
//                         minutes, paper sweeps the exact Section 5 sizes
//                         {2000, 5000, 8000, 11000, 14000} (tens of
//                         minutes, dominated by the centralized relaxed
//                         BO/TO baselines' global scans).
//   --seed=N              base RNG seed.
//   --warmup=S --measure=S  override the phase lengths (seconds).
//
// Output is the figure's series as an aligned text table, one row per
// x-axis point, one column per curve -- the same rows the paper plots.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "exp/scenario.h"
#include "net/topology.h"
#include "rand/rng.h"
#include "util/flags.h"
#include "util/table.h"

namespace omcast::bench {

struct BenchEnv {
  bool paper_scale;
  std::uint64_t seed;
  int reps;  // independent repetitions averaged per data point
  double warmup_s;
  double measure_s;
  // The five steady-state sizes of Figs. 4, 7, 8, 10, 12 (scaled at small).
  std::vector<int> sizes;
  // The single-size experiments (Figs. 5, 11, 13: the paper's "8000").
  int focus_size;
  net::Topology topology;

  exp::ScenarioConfig BaseConfig() const {
    exp::ScenarioConfig c;
    c.warmup_s = warmup_s;
    c.measure_s = measure_s;
    c.seed = seed;
    // At small scale the source capacity and the gossip-view size shrink
    // with the population, keeping their ratios to the network size near
    // the paper's values -- otherwise a 100-slot root swallows half of a
    // 500-member overlay and every algorithm looks identical. The root
    // keeps >= 40 slots because tree growth is a branching process with
    // ~0.9 per-lineage extinction probability (55.5% free-riders): the
    // source must seed enough independent lineages to survive.
    return c;
  }
};

// Registers the common flags on `flags`.
inline void DefineCommonFlags(util::FlagSet& flags) {
  flags.Define("scale", "small", "small | paper (Section 5 sizes)")
      .Define("seed", "1", "base RNG seed")
      .Define("reps", "3", "independent repetitions averaged per point")
      .Define("warmup", "-1", "warm-up seconds (-1: scale default)")
      .Define("measure", "-1", "measurement seconds (-1: scale default)");
}

// Builds the environment (including the topology) from parsed flags.
inline BenchEnv MakeEnv(const util::FlagSet& flags) {
  const bool paper = flags.GetString("scale") == "paper";
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed"));
  rnd::Rng topo_rng(seed ^ 0x70706fULL);
  BenchEnv env{
      paper,
      seed,
      flags.GetInt("reps"),
      /*warmup_s=*/paper ? 7200.0 : 5400.0,
      /*measure_s=*/3600.0,
      paper ? std::vector<int>{2000, 5000, 8000, 11000, 14000}
            : std::vector<int>{2000, 3500, 5000},
      paper ? 8000 : 2000,
      net::Topology::Generate(net::PaperTopologyParams(), topo_rng)};
  if (flags.GetDouble("warmup") >= 0.0) env.warmup_s = flags.GetDouble("warmup");
  if (flags.GetDouble("measure") >= 0.0)
    env.measure_s = flags.GetDouble("measure");
  return env;
}

inline void PrintHeader(const std::string& figure, const BenchEnv& env) {
  std::cout << "=== " << figure << " ===\n"
            << "scale: " << (env.paper_scale ? "paper" : "small")
            << "  topology: " << env.topology.num_stub_nodes()
            << " hosts  warmup: " << env.warmup_s
            << "s  measure: " << env.measure_s << "s  seed: " << env.seed
            << "  reps: " << env.reps << "\n\n";
}

// Runs a tree scenario `env.reps` times (seeds env.seed, env.seed+1, ...)
// and returns per-rep results for averaging.
inline std::vector<exp::TreeScenarioResult> RunTreeReps(
    const BenchEnv& env, exp::Algorithm algorithm, exp::ScenarioConfig config) {
  std::vector<exp::TreeScenarioResult> out;
  for (int rep = 0; rep < env.reps; ++rep) {
    config.seed = env.seed + static_cast<std::uint64_t>(rep);
    out.push_back(RunTreeScenario(env.topology, algorithm, config));
  }
  return out;
}

// Mean of a field over repetition results.
template <typename T, typename F>
double MeanOf(const std::vector<T>& reps, F field) {
  double sum = 0.0;
  for (const T& r : reps) sum += field(r);
  return reps.empty() ? 0.0 : sum / static_cast<double>(reps.size());
}

}  // namespace omcast::bench
