file(REMOVE_RECURSE
  "CMakeFiles/lecture_streaming.dir/lecture_streaming.cpp.o"
  "CMakeFiles/lecture_streaming.dir/lecture_streaming.cpp.o.d"
  "lecture_streaming"
  "lecture_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lecture_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
