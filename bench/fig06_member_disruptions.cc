// Fig. 6: accumulated streaming disruptions over time of one "typical
// member" (moderate bandwidth, long lifetime) that joins once the network
// is in steady state. Under ROST the curve's slope should flatten as the
// member ages and climbs; under the others it should not.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  flags.Define("trace-minutes", "300", "how long to follow the member");
  flags.Define("member-bw", "2.0", "tagged member bandwidth");
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 6 -- cumulative disruptions of a typical member",
                     env);

  const double trace_s = flags.GetDouble("trace-minutes") * 60.0;
  const double member_bw = flags.GetDouble("member-bw");
  std::vector<std::string> header = {"minute"};
  for (const exp::Algorithm a : exp::AllAlgorithms())
    header.push_back(exp::AlgorithmLabel(a));
  util::Table table(std::move(header));

  // One tagged member per run (as in the paper); averaged across reps to
  // take the edge off the single-member anecdote.
  std::vector<std::vector<exp::TraceResult>> traces;
  for (const exp::Algorithm a : exp::AllAlgorithms()) {
    std::vector<exp::TraceResult> reps;
    for (int rep = 0; rep < env.reps; ++rep) {
      exp::ScenarioConfig config = env.BaseConfig();
      config.population = env.focus_size;
      config.seed = env.seed + static_cast<std::uint64_t>(rep);
      reps.push_back(RunMemberTraceScenario(env.topology, a, config, member_bw,
                                            trace_s + 600.0, trace_s));
    }
    traces.push_back(std::move(reps));
  }
  // Sample each cumulative-count series on a 30-minute grid.
  for (double minute = 0.0; minute <= trace_s / 60.0 + 1e-9; minute += 30.0) {
    std::vector<double> row;
    for (const auto& reps : traces) {
      double sum = 0.0;
      for (const auto& trace : reps) {
        double count = 0.0;
        for (const auto& p : trace.cumulative_disruptions)
          if (p.t_min <= minute) count = p.v;
        sum += count;
      }
      row.push_back(sum / static_cast<double>(reps.size()));
    }
    table.AddRow(util::FormatDouble(minute, 0), row, 1);
  }
  table.Print(std::cout,
              "cumulative disruptions since the tagged member joined");
  std::cout << "\n(ROST's slope should flatten as the member ages and climbs "
               "the tree.)\n";
  return 0;
}
