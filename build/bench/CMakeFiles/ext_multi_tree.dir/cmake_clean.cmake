file(REMOVE_RECURSE
  "CMakeFiles/ext_multi_tree.dir/ext_multi_tree.cc.o"
  "CMakeFiles/ext_multi_tree.dir/ext_multi_tree.cc.o.d"
  "ext_multi_tree"
  "ext_multi_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multi_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
