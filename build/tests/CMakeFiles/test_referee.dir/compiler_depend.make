# Empty compiler generated dependencies file for test_referee.
# This may be replaced when dependencies are built.
