// The Reliability-Oriented Switching Tree (ROST) algorithm -- the paper's
// primary proactive contribution (Section 3).
//
// Members join like the minimum-depth algorithm (sample ~100 members, pick
// the highest spare-capacity parent, ties by network delay), which places
// newcomers at the leaves. Every switching interval a member compares its
// bandwidth-time product (BTP = outbound bandwidth x age) with its parent's;
// if its BTP is larger *and* its bandwidth is no less than the parent's, the
// two swap positions:
//
//   * the child takes the parent's place under the grandparent,
//   * the old parent and the child's former siblings become children of the
//     promoted node,
//   * the demoted parent adopts the promoted node's former children up to
//     its capacity; the largest-BTP overflow children simply stay with the
//     promoted node (Fig. 2's node f).
//
// The swap first locks the child, parent, grandparent, children and
// siblings; if any is mid-switch or mid-failure-recovery the attempt is
// retried after lock_retry_delay_s (the paper's "say, 15 seconds").
//
// With referees enabled (Section 3.4), switching decisions use
// referee-attested bandwidth/age rather than the member's own claims, which
// neutralizes cheating (see RefereeService).
#pragma once

#include <vector>

#include "core/rost/referee.h"
#include "overlay/session.h"

namespace omcast::core {

// What drives the periodic switch decision. The paper's ROST uses the BTP
// (bandwidth x age) with a bandwidth guard; the other two isolate each
// factor for the ablation bench (a pure-bandwidth switcher approximates the
// BO idea, a pure-age switcher the TO idea, both restricted to ROST's
// child-parent swap mechanics).
enum class SwitchCriterion { kBtp, kBandwidthOnly, kAgeOnly };

struct RostParams {
  // Paper Section 5: default switching interval 360 s (Fig. 11 sweeps
  // 480-1800 s).
  double switching_interval_s = 360.0;
  SwitchCriterion criterion = SwitchCriterion::kBtp;
  // Wait before re-checking when the lock set could not be acquired.
  double lock_retry_delay_s = 15.0;
  // How long a switch holds its locks (the handshake + state update time).
  double lock_hold_s = 2.0;
  // Use referee-attested values for switching decisions.
  bool use_referees = false;
  RefereeParams referee;
};

class RostProtocol final : public overlay::Protocol {
 public:
  explicit RostProtocol(RostParams params = {});

  std::string name() const override { return "rost"; }
  bool TryAttach(overlay::Session& session, overlay::NodeId id) override;
  void OnAttached(overlay::Session& session, overlay::NodeId id) override;
  void OnDeparture(overlay::Session& session, overlay::NodeId id) override;
  void OnOrphaned(overlay::Session& session, overlay::NodeId id) override;
  // Fast-forwards the BTP switches the member would have performed during
  // its pre-t0 life (one opportunity per elapsed switching interval), so
  // equilibrium pre-population yields ROST's own steady-state tree.
  void OnPrepopulated(overlay::Session& session, overlay::NodeId id) override;

  const RostParams& params() const { return params_; }

  // The BTP/bandwidth the switching logic believes for `id`: the member's
  // claim, or the referee-attested value when referees are enabled.
  double EffectiveBtp(overlay::Session& session, overlay::NodeId id);
  double EffectiveBandwidth(overlay::Session& session, overlay::NodeId id);
  double EffectiveAge(overlay::Session& session, overlay::NodeId id);

  // Statistics for tests and the protocol-cost experiments.
  long switches_performed() const { return switches_; }
  long lock_conflicts() const { return lock_conflicts_; }
  long infeasible_switches() const { return infeasible_; }
  RefereeService& referees() { return referees_; }

  // Immediately evaluates `id`'s switching condition (tests drive this
  // directly; production path uses the periodic timer).
  void CheckSwitchNow(overlay::Session& session, overlay::NodeId id);

 private:
  struct NodeState {
    sim::EventId timer = sim::kInvalidEventId;
    sim::Time locked_until = 0.0;
    bool recovering = false;  // orphaned, mid failure-recovery
  };

  NodeState& StateFor(overlay::NodeId id);
  // The paper's switching predicate for `id` against its current parent.
  bool SwitchConditionHolds(overlay::Session& session, overlay::NodeId id,
                            overlay::NodeId parent);
  // Structural feasibility of the swap against actual capacities.
  bool SwitchFeasible(overlay::Session& session, overlay::NodeId id,
                      overlay::NodeId parent) const;
  void ScheduleCheck(overlay::Session& session, overlay::NodeId id,
                     double delay_s);
  void CheckSwitch(overlay::Session& session, overlay::NodeId id);
  bool TryLock(overlay::Session& session, const std::vector<overlay::NodeId>& set);
  void PerformSwitch(overlay::Session& session, overlay::NodeId child,
                     overlay::NodeId parent);
  // Deep-tier (OMCAST_DCHECK) full-tree audit of a completed child-parent
  // swap: promoted/demoted positions, conservation of the neighbourhood,
  // and Tree::CheckInvariants() over the whole tree. No-op in Release.
  void AuditSwitch(overlay::Session& session, overlay::NodeId child,
                   overlay::NodeId parent, overlay::NodeId grand,
                   std::size_t neighbourhood_size) const;
  // Deep-tier audit that every member of an acquired lock set is actually
  // held (locked_until in the future) and lockable (not recovering).
  void AuditLockSet(overlay::Session& session,
                    const std::vector<overlay::NodeId>& set);

  RostParams params_;
  std::vector<NodeState> state_;
  RefereeService referees_;
  long switches_ = 0;
  long lock_conflicts_ = 0;
  long infeasible_ = 0;
};

}  // namespace omcast::core
