file(REMOVE_RECURSE
  "CMakeFiles/omcast_util.dir/check.cc.o"
  "CMakeFiles/omcast_util.dir/check.cc.o.d"
  "CMakeFiles/omcast_util.dir/flags.cc.o"
  "CMakeFiles/omcast_util.dir/flags.cc.o.d"
  "CMakeFiles/omcast_util.dir/log.cc.o"
  "CMakeFiles/omcast_util.dir/log.cc.o.d"
  "CMakeFiles/omcast_util.dir/stats.cc.o"
  "CMakeFiles/omcast_util.dir/stats.cc.o.d"
  "CMakeFiles/omcast_util.dir/table.cc.o"
  "CMakeFiles/omcast_util.dir/table.cc.o.d"
  "libomcast_util.a"
  "libomcast_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omcast_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
