#include "sim/fault_plane.h"

#include <utility>

#include "util/check.h"

namespace omcast::sim {

FaultPlane::FaultPlane(Simulator& simulator, FaultPlaneParams params,
                       std::uint64_t seed)
    : sim_(simulator), params_(params), rng_(seed) {
  util::Check(params_.loss_rate >= 0.0 && params_.loss_rate <= 1.0,
              "loss rate must be a probability");
  util::Check(params_.dup_prob >= 0.0 && params_.dup_prob <= 1.0,
              "duplication probability must be a probability");
  util::Check(params_.jitter_s >= 0.0, "jitter must be non-negative");
}

double FaultPlane::LossRateFor(int from, int to) const {
  const auto it = link_loss_.find(LinkKey(from, to));
  return it == link_loss_.end() ? params_.loss_rate : it->second;
}

void FaultPlane::SetLinkLossRate(int from, int to, double rate) {
  util::Check(rate >= 0.0 && rate <= 1.0,
              "per-link loss rate must be a probability");
  link_loss_[LinkKey(from, to)] = rate;
}

void FaultPlane::ScheduleCopy(double base_delay_s,
                              const Simulator::Callback& cb) {
  const double extra = rng_.Uniform(0.0, params_.jitter_s);
  ++delivered_;
  sim_.ScheduleAfter(base_delay_s + extra, Simulator::Callback(cb),
                     "net.deliver");
}

bool FaultPlane::Deliver(int from, int to, double base_delay_s,
                         Simulator::Callback cb) {
  util::Check(base_delay_s >= 0.0, "base delay must be non-negative");
  ++sent_;
  const double loss = LossRateFor(from, to);
  // One Bernoulli per fault class per message, drawn unconditionally so a
  // message's fate depends only on its position in the seeded stream, never
  // on the fate of earlier messages.
  const bool lost = rng_.Bernoulli(loss);
  const bool duped = rng_.Bernoulli(params_.dup_prob);
  if (lost) {
    ++dropped_;
    return false;
  }
  ScheduleCopy(base_delay_s, cb);
  if (duped) {
    ++duplicated_;
    ScheduleCopy(base_delay_s, cb);
  }
  return true;
}

}  // namespace omcast::sim
