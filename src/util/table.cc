#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.h"

namespace omcast::util {

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  Check(!header_.empty(), "table must have at least one column");
}

void Table::AddRow(std::vector<std::string> cells) {
  Check(cells.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(cells));
}

void Table::AddRow(std::string label, const std::vector<double>& values,
                   int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(std::move(label));
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

void Table::Print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  if (!title.empty()) os << title << "\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << "\n";
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

}  // namespace omcast::util
