// Fig. 12: average starving time ratio vs network size for recovery group
// sizes 1-4 (minimum-depth tree, CER recovery with MLC-selected groups,
// 10 pkt/s stream, 5 s playback buffer, 5 s detection + 10 s rejoin).
// Increasing the group from 1 to 3 should cut the ratio by about an order
// of magnitude.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 12 -- avg starving time ratio vs group size", env);

  runner::GridSpec spec;
  spec.figure = "fig12_group_size";
  spec.title = "avg starving time ratio vs recovery group size";
  spec.row_header = "size";
  for (const int size : env.sizes) spec.rows.push_back(std::to_string(size));
  spec.cols = {"group=1", "group=2", "group=3", "group=4"};
  spec.reps = env.reps;
  spec.headline_metric = "starving_ratio";
  spec.run = [&env](const runner::CellContext& cell) {
    stream::StreamParams sp;
    sp.recovery_group_size = static_cast<int>(cell.col) + 1;
    exp::ScenarioConfig config = env.BaseConfig();
    config.population = env.sizes[cell.row];
    config.seed = cell.seed;
    return bench::StreamCellResult(exp::RunStreamScenario(
        env.Topo(), exp::Algorithm::kMinDepth, config, sp));
  };
  const runner::ResultsSink sink = bench::RunGridBench(env, spec);

  bench::PrintMetricTable(spec, sink, "starving_ratio", 3,
                          "avg starving time ratio (%), min-depth tree + CER",
                          /*scale=*/100.0);
  return 0;
}
