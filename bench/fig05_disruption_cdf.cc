// Fig. 5: CDF of the per-member disruption count in a network of the focus
// size (the paper's 8000-node instance), for the five algorithms, evaluated
// at the paper's 1,2,4,...,128 grid.
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 5 -- CDF of per-member disruption count", env);

  const std::vector<double> grid = {1, 2, 4, 8, 16, 32, 64, 128};
  std::vector<std::string> header = {"disruptions<="};
  for (const exp::Algorithm a : exp::AllAlgorithms())
    header.push_back(exp::AlgorithmLabel(a));
  util::Table table(std::move(header));

  std::vector<std::vector<double>> cdfs;
  for (const exp::Algorithm a : exp::AllAlgorithms()) {
    exp::ScenarioConfig config = env.BaseConfig();
    config.population = env.focus_size;
    std::vector<double> samples;
    for (const auto& rep : bench::RunTreeReps(env, a, config))
      samples.insert(samples.end(), rep.disruption_samples.begin(),
                     rep.disruption_samples.end());
    cdfs.push_back(util::CdfAt(std::move(samples), grid));
  }
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::vector<double> row;
    for (const auto& cdf : cdfs) row.push_back(100.0 * cdf[i]);
    table.AddRow(util::FormatDouble(grid[i], 0), row, 1);
  }
  table.Print(std::cout, "cumulative % of members with <= X disruptions (" +
                             std::to_string(env.focus_size) + " members)");
  return 0;
}
