// Order-sensitive rolling hash (FNV-1a over 64-bit words) for fingerprinting
// event traces and tree shapes. Two simulation runs are bit-reproducible iff
// their trace digests match, which is what the seed-replay determinism test
// asserts (tests/test_determinism_replay.cc).
//
// Not a cryptographic hash; collisions are astronomically unlikely for the
// trace lengths involved but the digest must never feed protocol decisions.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

namespace omcast::util {

class RollingHash {
 public:
  void MixU64(std::uint64_t v) {
    // FNV-1a, one byte at a time so word boundaries don't cancel out.
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffu;
      h_ *= kPrime;
    }
  }

  void MixI64(std::int64_t v) { MixU64(static_cast<std::uint64_t>(v)); }

  // Hashes the exact bit pattern: -0.0 and 0.0 digest differently, which is
  // intentional -- a replay that flips the sign of a zero is not bit-equal.
  void MixDouble(double v) { MixU64(std::bit_cast<std::uint64_t>(v)); }

  void MixBytes(std::string_view bytes) {
    for (unsigned char c : bytes) {
      h_ ^= c;
      h_ *= kPrime;
    }
  }

  std::uint64_t digest() const { return h_; }

 private:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t h_ = kOffsetBasis;
};

}  // namespace omcast::util
