# Empty dependencies file for test_rost.
# This may be replaced when dependencies are built.
