// Clang Thread Safety Analysis annotations (omcast spelling).
//
// These macros expand to clang's capability attributes when the compiler
// supports them and to nothing otherwise (gcc builds are unaffected), so
// the lock discipline of the concurrency layer -- runner::ThreadPool, the
// shared topology cache, obs::ProfileAggregator -- is checked *statically*
// by the `clang` preset / clang-thread-safety CI job with
// -Wthread-safety -Werror, instead of only dynamically on the paths the
// TSan job happens to execute.
//
// Conventions (see DESIGN.md "Static analysis"):
//   * every mutex is a util::Mutex (src/util/mutex.h), never a raw
//     std::mutex -- the omcast-lint raw-mutex rule enforces this;
//   * every field written under a mutex carries OMCAST_GUARDED_BY(mu_);
//   * private helpers called with the lock held carry OMCAST_REQUIRES(mu_)
//     instead of re-locking;
//   * public entry points that must not be called with the lock held carry
//     OMCAST_EXCLUDES(mu_).
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define OMCAST_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define OMCAST_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Type annotations -----------------------------------------------------------

// Marks a type as a lockable capability ("mutex" names the capability kind
// in diagnostics).
#define OMCAST_CAPABILITY(name) OMCAST_THREAD_ANNOTATION(capability(name))

// Marks an RAII type whose constructor acquires and destructor releases a
// capability (util::MutexLock).
#define OMCAST_SCOPED_CAPABILITY OMCAST_THREAD_ANNOTATION(scoped_lockable)

// Data annotations -----------------------------------------------------------

// The field may only be read or written while holding `mu`.
#define OMCAST_GUARDED_BY(mu) OMCAST_THREAD_ANNOTATION(guarded_by(mu))

// The pointed-to data (not the pointer itself) is guarded by `mu`.
#define OMCAST_PT_GUARDED_BY(mu) OMCAST_THREAD_ANNOTATION(pt_guarded_by(mu))

// Function annotations -------------------------------------------------------

// The caller must hold every listed capability (exclusively).
#define OMCAST_REQUIRES(...) \
  OMCAST_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// The caller must NOT hold the listed capabilities (deadlock guard for
// public entry points of a class whose methods lock internally).
#define OMCAST_EXCLUDES(...) \
  OMCAST_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// The function acquires the capability and holds it on return.
#define OMCAST_ACQUIRE(...) \
  OMCAST_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

// The function releases a held capability.
#define OMCAST_RELEASE(...) \
  OMCAST_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// The function acquires the capability iff it returns `result`.
#define OMCAST_TRY_ACQUIRE(result, ...) \
  OMCAST_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

// The function returns a reference to a capability-guarded field without
// holding the lock (accessors used for ctor/dtor-only state).
#define OMCAST_RETURN_CAPABILITY(mu) \
  OMCAST_THREAD_ANNOTATION(lock_returned(mu))

// Escape hatch: disables the analysis for one function. Every use needs a
// comment explaining why the discipline cannot be expressed.
#define OMCAST_NO_THREAD_SAFETY_ANALYSIS \
  OMCAST_THREAD_ANNOTATION(no_thread_safety_analysis)
