#include "stream/packet_sim.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "util/check.h"

namespace omcast::stream {

using overlay::kRootId;
using overlay::Member;
using overlay::NodeId;
using overlay::Session;

void ValidatePacketSimParams(const PacketSimParams& params) {
  util::Check(params.packet_rate > 0.0, "packet rate must be positive");
  util::Check(params.buffer_s > 0.0, "playback buffer must be positive");
  util::Check(params.detect_s >= 0.0, "detection time cannot be negative");
  util::Check(params.recovery_group_size >= 1,
              "recovery group needs at least one member");
  util::Check(params.residual_lo_pkts >= 0.0,
              "residual bandwidth cannot be negative");
  util::Check(params.residual_hi_pkts >= params.residual_lo_pkts,
              "residual bandwidth range must be ordered");
  util::Check(params.gop_size >= 2,
              "a GOP needs a reference and at least one dependent frame");
  util::Check(params.warmup_absorb_s >= 0.0,
              "warmup absorb window cannot be negative");
  util::Check(params.regime_window_s > 0.0,
              "regime judgment window must be positive");
  util::Check(params.degraded_exit >= 0.0 &&
                  params.degraded_exit < params.degraded_enter,
              "degraded hysteresis needs 0 <= exit < enter");
  util::Check(params.degraded_enter <= params.stalled_enter &&
                  params.stalled_enter <= 1.0,
              "stalled threshold must dominate the degraded one");
  util::Check(params.stalled_exit >= params.degraded_exit &&
                  params.stalled_exit < params.stalled_enter,
              "stalled hysteresis needs degraded_exit <= exit < enter");
}

PacketLevelStream::PacketLevelStream(Session& session, PacketSimParams params,
                                     std::uint64_t seed)
    : session_(session), params_(params), rng_(seed) {
  ValidatePacketSimParams(params_);
  util::Check(session_.params().rejoin_delay_s >= params_.detect_s,
              "rejoin_delay_s must cover the detection time");
  session_.hooks().AddOnDeparture([this](NodeId failed) { OnDeparture(failed); });
  session_.hooks().AddOnMemberDeparted([this](const Member& m) {
    FinalizeMember(m, session_.simulator().now());
  });
}

double PacketLevelStream::ResidualFraction(NodeId id) {
  if (residual_fraction_.size() <= static_cast<std::size_t>(id))
    residual_fraction_.resize(static_cast<std::size_t>(id) + 1, -1.0);
  double& f = residual_fraction_[static_cast<std::size_t>(id)];
  if (f < 0.0)
    f = rng_.Uniform(params_.residual_lo_pkts, params_.residual_hi_pkts) /
        params_.packet_rate;
  return f;
}

void PacketLevelStream::Start(double duration_s) {
  util::Check(!started_, "packet stream already started");
  started_ = true;
  const double now = session_.simulator().now();
  stream_start_ = now;
  stream_end_ = now + duration_s;
  last_seq_ = static_cast<std::int64_t>(duration_s * params_.packet_rate) - 1;
  session_.simulator().ScheduleAt(now, [this] { Emit(0); }, "stream.emit");
}

void PacketLevelStream::Emit(std::int64_t seq) {
  ++emitted_;
  // The source holds the packet; push it to the root's current children.
  for (NodeId c : session_.tree().ChildrenOf(kRootId)) {
    const double hop = session_.DelayMs(kRootId, c) / 1000.0;
    session_.simulator().ScheduleAfter(
        hop, [this, c, seq] { Deliver(c, seq, session_.simulator().now()); },
        "stream.deliver");
  }
  if (seq < last_seq_)
    session_.simulator().ScheduleAfter(
        1.0 / params_.packet_rate, [this, seq] { Emit(seq + 1); },
        "stream.emit");
}

PacketLevelStream::Reception& PacketLevelStream::ReceptionFor(NodeId member,
                                                              double now) {
  auto it = rx_.find(member);
  if (it == rx_.end()) {
    Reception r;
    const Member& m = session_.tree().Get(member);
    const double start = std::max(stream_start_, m.join_time);
    r.first_seq = static_cast<std::int64_t>(
        std::ceil((start - stream_start_) * params_.packet_rate - 1e-9));
    r.started_at = now;
    if (params_.frame_playback) {
      r.playback.next_judge = r.first_seq;
      r.playback.regime_since = now;
      r.playback.tick = session_.simulator().ScheduleAfter(
          params_.regime_window_s, [this, member] { JudgeWindow(member); },
          "stream.playback");
    }
    it = rx_.emplace(member, std::move(r)).first;
  }
  return it->second;
}

void PacketLevelStream::SetRegime(NodeId member, int regime) {
  Playback& pb = rx_.find(member)->second.playback;
  const double now = session_.simulator().now();
  if (pb.regime >= 1) pb.degraded_accum += now - pb.regime_since;
  if (pb.regime == 0 && regime >= 1) {
    pb.degraded_since = now;
    ++degraded_receivers_;
  }
  if (pb.regime >= 1 && regime == 0) --degraded_receivers_;
  if (regime == 0 && pb.degraded_since >= 0.0) {
    recovery_latency_stat_.Add(now - pb.degraded_since);
    pb.degraded_since = -1.0;
  }
  pb.regime = regime;
  pb.regime_since = now;
  ++regime_transitions_;
  if (obs::Tracer* tr = session_.tracer(); tr != nullptr)
    tr->Emit(now, obs::EventKind::kPlaybackRegime, member, overlay::kNoNode,
             regime);
}

void PacketLevelStream::JudgeWindow(NodeId member) {
  const auto it = rx_.find(member);
  if (it == rx_.end()) return;
  Reception& rx = it->second;
  Playback& pb = rx.playback;
  pb.tick = sim::kInvalidEventId;
  const double now = session_.simulator().now();
  const std::int64_t gop = params_.gop_size;
  long judged = 0;
  long bad = 0;
  long stalls = 0;
  while (pb.next_judge <= last_seq_) {
    const std::int64_t seq = pb.next_judge;
    const double deadline = stream_start_ +
                            static_cast<double>(seq) / params_.packet_rate +
                            params_.buffer_s;
    if (deadline > now) break;  // still playable; judge next window
    ++pb.next_judge;
    double arrival = -1.0;
    if (seq >= rx.first_seq) {
      const auto idx = static_cast<std::size_t>(seq - rx.first_seq);
      if (idx < rx.arrival.size()) arrival = rx.arrival[idx];
    }
    const bool on_time = arrival >= 0.0 && arrival <= deadline;
    bool played = on_time;
    if (seq % gop == 0) {  // reference frame: independent
      pb.last_ref_gop = seq / gop;
      pb.last_ref_played = on_time;
      if (on_time && !pb.synced) {
        pb.synced = true;
        // A member that started mid-GOP (or lost its first references) has
        // been decoding nothing until now: this reference resynchronizes
        // its dependency state.
        if (pb.desync_judged > 0) {
          ++dependency_resyncs_;
          if (obs::Tracer* tr = session_.tracer(); tr != nullptr)
            tr->Emit(now, obs::EventKind::kDependencyResync, member,
                     overlay::kNoNode, pb.stalls_before_sync);
        }
      }
    } else {  // dependent frame: needs its GOP's reference played
      const bool ref_ok = seq / gop == pb.last_ref_gop && pb.last_ref_played;
      played = on_time && ref_ok;
      if (!pb.synced) ++pb.desync_judged;
      if (on_time && !ref_ok) {
        // Decode stall: the bytes are here, the reference is not.
        if (!pb.synced) ++pb.stalls_before_sync;
        if (deadline <= rx.started_at + params_.warmup_absorb_s)
          continue;  // startup grace: absorbed, not judged
        ++stalls;
        ++decode_stalls_;
      }
    }
    ++judged;
    if (!played) {
      ++bad;
      ++frames_late_;
    }
  }
  if (stalls > 0) {
    if (obs::Tracer* tr = session_.tracer(); tr != nullptr)
      tr->Emit(now, obs::EventKind::kDecodeStall, member, overlay::kNoNode,
               stalls);
  }
  if (judged > 0) {
    const double frac = static_cast<double>(bad) / static_cast<double>(judged);
    int target = pb.regime;
    if (pb.regime == 2) {
      target = frac >= params_.stalled_exit ? 2
               : frac > params_.degraded_exit ? 1
                                              : 0;
    } else if (pb.regime == 1) {
      target = frac >= params_.stalled_enter ? 2
               : frac > params_.degraded_exit ? 1
                                              : 0;
    } else {
      target = frac >= params_.stalled_enter    ? 2
               : frac >= params_.degraded_enter ? 1
                                                : 0;
    }
    if (target != pb.regime) SetRegime(member, target);
  }
  // The chain ends once every sequence has been judged (the last deadline
  // is stream_end_ + buffer_s); otherwise tick again one window later.
  if (pb.next_judge <= last_seq_)
    pb.tick = session_.simulator().ScheduleAfter(
        params_.regime_window_s, [this, member] { JudgeWindow(member); },
        "stream.playback");
}

void PacketLevelStream::FinalizePlayback(const Member& m, Reception& rx,
                                         double end_time) {
  Playback& pb = rx.playback;
  if (pb.tick != sim::kInvalidEventId) {
    session_.simulator().Cancel(pb.tick);
    pb.tick = sim::kInvalidEventId;
  }
  // The member leaves the tracked set here (FinalizeMember erases its
  // reception entry), so a non-nominal straggler must release its slot in
  // the degraded-receiver gauge.
  if (pb.regime >= 1) --degraded_receivers_;
  if (m.join_time < 0.0 || finalized_.contains(m.id)) return;
  double accum = pb.degraded_accum;
  if (pb.regime >= 1) accum += std::max(0.0, end_time - pb.regime_since);
  const double elapsed = end_time - rx.started_at;
  if (elapsed > 0.0)
    degraded_fraction_stat_.Add(std::min(1.0, accum / elapsed));
  // Stalled at stream end (not a mid-run departure): the session never
  // recovered its cadence.
  if (pb.regime == 2 && end_time >= stream_end_) ++permanently_stalled_;
}

int PacketLevelStream::PlaybackRegimeOf(NodeId member) const {
  const auto it = rx_.find(member);
  return it == rx_.end() ? -1 : it->second.playback.regime;
}

void PacketLevelStream::Deliver(NodeId member, std::int64_t seq, double now) {
  if (!session_.tree().Alive(member)) return;
  Reception& rx = ReceptionFor(member, now);
  if (seq >= rx.first_seq) {
    const auto idx = static_cast<std::size_t>(seq - rx.first_seq);
    if (rx.arrival.size() <= idx) rx.arrival.resize(idx + 1, -1.0);
    if (rx.arrival[idx] >= 0.0) return;  // duplicate
    rx.arrival[idx] = now;
  }
  ++deliveries_;
  // ELN origination: a jump past the next expected sequence means the
  // member itself detected losses; it notifies its children so they wait
  // for upstream repair instead of rejoining (Section 4.2).
  if (seq >= rx.first_seq) {
    rx.tracker.OnData(seq - rx.first_seq);
    if (rx.max_seen >= rx.first_seq - 1 && seq > rx.max_seen + 1) {
      std::vector<std::int64_t> holes;
      for (std::int64_t h = std::max(rx.max_seen + 1, rx.first_seq); h < seq; ++h) {
        const auto idx = static_cast<std::size_t>(h - rx.first_seq);
        if (idx >= rx.arrival.size() || rx.arrival[idx] < 0.0) holes.push_back(h);
      }
      NotifyChildren(member, holes);
    }
    rx.max_seen = std::max(rx.max_seen, seq);
  }
  // Forward to current children, one hop each.
  for (NodeId c : session_.tree().ChildrenOf(member)) {
    const double hop = session_.DelayMs(member, c) / 1000.0;
    session_.simulator().ScheduleAfter(
        hop, [this, c, seq] { Deliver(c, seq, session_.simulator().now()); },
        "stream.deliver");
  }
}

void PacketLevelStream::NotifyChildren(NodeId member,
                                       const std::vector<std::int64_t>& seqs) {
  if (seqs.empty()) return;
  const overlay::Tree& tree = session_.tree();
  if (obs::Tracer* tr = session_.tracer();
      tr != nullptr && tree.ChildCount(member) != 0)
    tr->Emit(session_.simulator().now(), obs::EventKind::kEln, member,
             overlay::kNoNode, static_cast<std::int64_t>(seqs.size()));
  for (NodeId c : tree.ChildrenOf(member)) {
    const double hop = session_.DelayMs(member, c) / 1000.0;
    for (std::int64_t seq : seqs) {
      ++eln_sent_;
      // ELNs are control messages: under chaos they can be lost, in which
      // case the child misclassifies the outage (and may rejoin for an
      // upstream loss it should have waited out) -- exactly the failure
      // mode the paper's Section 4.2 mechanism is sensitive to.
      if (fault_plane_ != nullptr) {
        fault_plane_->Deliver(member, c, hop,
                              [this, c, seq] { DeliverEln(c, seq); });
      } else {
        session_.simulator().ScheduleAfter(
            hop, [this, c, seq] { DeliverEln(c, seq); }, "stream.eln");
      }
    }
  }
}

void PacketLevelStream::DeliverEln(NodeId member, std::int64_t seq) {
  if (!session_.tree().Alive(member)) return;
  Reception& rx = ReceptionFor(member, session_.simulator().now());
  if (seq < rx.first_seq) return;
  rx.tracker.OnEln(seq - rx.first_seq);
  // Propagate only the notifications this member had not seen before.
  std::vector<std::int64_t> fresh;
  for (const std::int64_t rel : rx.tracker.TakeForwardNotifications())
    fresh.push_back(rel + rx.first_seq);
  NotifyChildren(member, fresh);
}

std::vector<NodeId> PacketLevelStream::ActiveRepairServers() const {
  std::vector<NodeId> servers;
  for (const RepairStripe& s : repair_stripes_) {
    if (s.dead || (s.in_flight < 0 && s.cursor > s.hole_end)) continue;
    if (std::find(servers.begin(), servers.end(), s.server) == servers.end())
      servers.push_back(s.server);
  }
  return servers;
}

core::ElnTracker::Status PacketLevelStream::ElnStatusOf(NodeId member) const {
  const auto it = rx_.find(member);
  if (it == rx_.end()) return core::ElnTracker::Status::kHealthy;
  return it->second.tracker.status();
}

void PacketLevelStream::OnDeparture(NodeId failed) {
  if (!started_) return;
  overlay::Tree& tree = session_.tree();
  const double now = session_.simulator().now();
  const double rejoin_at = now + session_.params().rejoin_delay_s;

  // Mid-repair failover: stripes the failed member was serving hand their
  // remaining ranges to a surviving group member; stripes repairing the
  // failed member's own hole simply end.
  for (std::size_t i = 0; i < repair_stripes_.size(); ++i) {
    RepairStripe& s = repair_stripes_[i];
    if (s.dead) continue;
    if (s.orphan == failed) {
      s.dead = true;
      continue;
    }
    if (s.server != failed) continue;
    s.dead = true;
    if (s.in_flight >= 0 || s.cursor <= s.hole_end) FailoverStripe(i);
  }

  for (const NodeId orphan : tree.ChildrenOf(failed)) {
    // The hole this orphan must repair: packets emitted while it is
    // detached.
    const auto hole_begin = static_cast<std::int64_t>(std::ceil(
        (now - stream_start_) * params_.packet_rate - 1e-9));
    const auto hole_end =
        std::min(last_seq_, static_cast<std::int64_t>(
                                (rejoin_at - stream_start_) * params_.packet_rate));
    if (hole_begin > hole_end) continue;

    std::vector<NodeId> group = core::SelectRecoveryGroup(
        session_, orphan, params_.recovery_group_size, params_.selection);

    // Build the usable stripe set exactly as the repair protocol does.
    std::vector<RepairStripe> built;
    double latency = 0.0;
    double covered = 0.0;
    NodeId prev = orphan;
    const long gid = ++next_group_id_;
    for (NodeId g : group) {
      latency += session_.DelayMs(prev, g) / 1000.0;
      prev = g;
      const bool usable = tree.Alive(g) && tree.InTree(g) &&
                          !tree.IsInSubtreeOf(g, failed) && tree.IsRooted(g);
      if (!usable) continue;
      const double rate = ResidualFraction(g);
      if (rate <= 0.0) continue;
      RepairStripe s;
      s.server = g;
      s.orphan = orphan;
      s.group_id = gid;
      s.rate = rate;
      s.start = now + params_.detect_s + latency;
      s.next_free = s.start;
      s.mod_lo = 100.0 * std::min(covered, 1.0);
      covered += rate;
      s.mod_hi = 100.0 * std::min(covered, 1.0);
      s.cursor = hole_begin;
      s.hole_end = hole_end;
      built.push_back(s);
      if (params_.mode == core::RecoveryMode::kSingleSource) break;
      if (covered >= 1.0) break;
    }
    if (built.empty()) continue;
    if (obs::Tracer* tr = session_.tracer(); tr != nullptr)
      tr->Emit(now, obs::EventKind::kCerGroupFormed, orphan, failed, gid);
    if (params_.mode == core::RecoveryMode::kSingleSource) {
      built.front().mod_lo = 0.0;
      built.front().mod_hi = 100.0;
    } else if (covered < 1.0) {
      // Chain exhausted below full rate: the last stripe takes the rest of
      // the sequence space at its own (insufficient) rate.
      built.back().mod_hi = 100.0;
    }
    if (params_.mode == core::RecoveryMode::kCooperative &&
        static_cast<int>(built.size()) < params_.recovery_group_size)
      ++short_group_fallbacks_;

    // Start each stripe's serving chain. A stripe serves its share of the
    // hole in sequence order at its residual rate, one packet at a time;
    // packets that cannot make their playback deadline are not sent
    // ("meaningless"). The chain, not a pre-scheduled batch, is what lets a
    // server death mid-repair hand the remaining range to a survivor.
    for (const RepairStripe& s : built) {
      if (obs::Tracer* tr = session_.tracer(); tr != nullptr)
        tr->Emit(now, obs::EventKind::kRepairStart, s.server, s.orphan,
                 s.group_id);
      repair_stripes_.push_back(s);
      ServeNext(repair_stripes_.size() - 1);
    }
  }
}

void PacketLevelStream::ServeNext(std::size_t index) {
  RepairStripe& s = repair_stripes_[index];
  if (s.dead) return;
  s.in_flight = -1;
  while (s.cursor <= s.hole_end) {
    const std::int64_t seq = s.cursor++;
    const double mod = static_cast<double>(seq % 100);
    if (mod < s.mod_lo || mod >= s.mod_hi) continue;  // another stripe's share
    const double emit_time =
        stream_start_ + static_cast<double>(seq) / params_.packet_rate;
    const double deadline = emit_time + params_.buffer_s;
    const double begin =
        std::max(s.next_free, std::max(emit_time, s.start));
    const double done = begin + 1.0 / (s.rate * params_.packet_rate);
    if (done > deadline) continue;  // expired; skip without serving
    s.next_free = done;
    s.in_flight = seq;
    ++repairs_;
    session_.simulator().ScheduleAt(
        done, [this, index, seq] { OnRepairServed(index, seq); },
        "stream.repair");
    return;
  }
  // Fell through: the stripe's share of the hole is exhausted (served or
  // expired); the chain ends here.
  if (obs::Tracer* tr = session_.tracer(); tr != nullptr)
    tr->Emit(session_.simulator().now(), obs::EventKind::kRepairFinish,
             s.server, s.orphan, s.group_id);
}

void PacketLevelStream::OnRepairServed(std::size_t index, std::int64_t seq) {
  {
    RepairStripe& s = repair_stripes_[index];
    if (s.dead) return;  // the server died before finishing this packet
    s.in_flight = -1;
    Deliver(s.orphan, seq, session_.simulator().now());
  }  // Deliver may grow repair_stripes_; the reference must not outlive it.
  ServeNext(index);
}

void PacketLevelStream::FailoverStripe(std::size_t index) {
  // Pick the survivor: the live stripe of the same repair with the highest
  // residual rate, ties to the lowest index. Copy the dead stripe first --
  // the push_back below may reallocate the vector.
  const RepairStripe dead = repair_stripes_[index];
  std::size_t best = repair_stripes_.size();
  for (std::size_t i = 0; i < repair_stripes_.size(); ++i) {
    if (i == index) continue;
    const RepairStripe& c = repair_stripes_[i];
    if (c.group_id != dead.group_id || c.dead) continue;
    // Never the dead stripe's own server: OnDeparture's failover sweep runs
    // while the departing member is still marked alive, and a server that
    // earlier took over a sibling stripe serves two stripes of one group.
    // Inheriting the range back onto the dying server would mint a fresh
    // server==failed stripe for the sweep to kill -- and the takeover it
    // minted in turn -- growing repair_stripes_ without bound.
    if (c.server == dead.server) continue;
    if (!session_.tree().Alive(c.server)) continue;
    if (best == repair_stripes_.size() || c.rate > repair_stripes_[best].rate)
      best = i;
  }
  if (best == repair_stripes_.size()) return;  // no survivor: range is lost

  RepairStripe takeover;
  takeover.server = repair_stripes_[best].server;
  takeover.orphan = dead.orphan;
  takeover.group_id = dead.group_id;
  takeover.rate = repair_stripes_[best].rate;
  // The survivor learns of the server's death the way the orphan learned of
  // its parent's: detect_s later. Its takeover queue is independent of its
  // own stripe's queue (the residual-rate model is per offered stripe).
  takeover.start = session_.simulator().now() + params_.detect_s;
  takeover.next_free = takeover.start;
  takeover.mod_lo = dead.mod_lo;
  takeover.mod_hi = dead.mod_hi;
  // Resume from the packet the dead server was mid-serving, if any.
  takeover.cursor = dead.in_flight >= 0 ? dead.in_flight : dead.cursor;
  takeover.hole_end = dead.hole_end;
  ++stripe_failovers_;
  if (obs::Tracer* tr = session_.tracer(); tr != nullptr)
    tr->Emit(session_.simulator().now(), obs::EventKind::kRepairFailover,
             takeover.server, dead.server, takeover.group_id);
  repair_stripes_.push_back(takeover);
  ServeNext(repair_stripes_.size() - 1);
}

void PacketLevelStream::FinalizeMember(const Member& m, double end_time) {
  const auto it = rx_.find(m.id);
  if (it != rx_.end() && params_.frame_playback)
    FinalizePlayback(m, it->second, end_time);
  if (m.join_time < 0.0 || finalized_.contains(m.id)) {
    if (it != rx_.end()) rx_.erase(it);
    return;  // pre-populated member, or already accounted
  }
  finalized_.insert(m.id);
  // Expected packets: from the member's first sequence to the last emitted
  // before it left (or the stream ended). Packets whose playback deadline
  // has not passed yet are not judged (they may still arrive in time).
  const double horizon = std::min(end_time, stream_end_);
  const auto first = static_cast<std::int64_t>(std::ceil(
      (std::max(m.join_time, stream_start_) - stream_start_) *
          params_.packet_rate -
      1e-9));
  const auto deadline_cap = static_cast<std::int64_t>(
      (end_time - params_.buffer_s - stream_start_) * params_.packet_rate);
  const auto last = std::min(
      {last_seq_,
       static_cast<std::int64_t>((horizon - stream_start_) * params_.packet_rate) -
           1,
       deadline_cap});
  if (last < first) {
    if (it != rx_.end()) rx_.erase(it);
    return;
  }
  std::int64_t missed = 0;
  for (std::int64_t seq = first; seq <= last; ++seq) {
    const double deadline = stream_start_ +
                            static_cast<double>(seq) / params_.packet_rate +
                            params_.buffer_s;
    double arrival = -1.0;
    if (it != rx_.end() && seq >= it->second.first_seq) {
      const auto idx = static_cast<std::size_t>(seq - it->second.first_seq);
      if (idx < it->second.arrival.size()) arrival = it->second.arrival[idx];
    }
    if (arrival < 0.0 || arrival > deadline) ++missed;
  }
  const double view_time =
      static_cast<double>(last - first + 1) / params_.packet_rate;
  ratio_stat_.Add(static_cast<double>(missed) / params_.packet_rate / view_time);
  if (it != rx_.end()) rx_.erase(it);
}

void PacketLevelStream::FinalizeAliveMembers() {
  const double now = session_.simulator().now();
  for (NodeId id : session_.alive_members())
    FinalizeMember(session_.tree().Get(id), now);
}

}  // namespace omcast::stream
