// ROST/CER vs clustered-overlay (clique) bake-off.
//
// One grid, two protocol columns, shared randomness: every (row, rep) pair
// derives ONE seed that both protocol columns reuse, and every cell runs
// over the same cached topology -- so each row is a paired comparison on an
// identical world (same member bandwidths, lifetimes, arrival times, and
// injected failures), not two independent experiments.
//
// Rows split into two families:
//
//   * steady-churn rows (churn_n*) -- RunTreeScenario under equilibrium
//     churn at two sizes; the metrics are the paper's figure set in one
//     cell: disruptions (Fig. 4), service delay (Fig. 7), stretch (Fig. 8),
//     and the protocol's control-message cost (Fig. 10: ROST's lock/switch
//     traffic vs the clique's backbone + intra-cluster announcements);
//
//   * chaos rows -- RunChaosScenario with the full hardened stack
//     (heartbeats + fault plane + packet-level stream with frame-dependency
//     playback) under the injected-failure family: correlated stub-domain
//     kill, flash crowd of simultaneous departures, ISP-level episodic loss
//     over one domain's links, and a reconnect storm through the bounded
//     re-entry path. Metrics are QoE (starving ratio, degraded-time
//     fraction, decode stalls) plus the post-drain health gates.
//
// The health gate (every chaos cell, both protocols): zero wedged leases,
// zero pending re-entries, zero members left unrooted after the settle
// window. The run exits nonzero when any cell violates them, so the CI
// smoke job catches protocol-hardening regressions without parsing tables.
//
// Clique-only cells additionally publish `clique_disruptions` /
// `clique_starving_ratio`, giving scripts/validate_results.py
// --require-metric a clique-side aggregate to pin (a run that silently
// dropped the competitor column fails validation).
//
//   ./bench/bakeoff [--population=150] [--out=results] [--reps=2]
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/chaos.h"
#include "exp/scenario.h"
#include "net/topology.h"
#include "obs/registry.h"
#include "runner/results.h"
#include "runner/runner.h"
#include "runner/topology_cache.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace omcast;

constexpr std::size_t kChurnRows = 2;  // churn rows precede the chaos rows

struct GridOptions {
  int population = 150;       // chaos-row steady-state size
  int tree_population = 200;  // first churn row; the second doubles it
  double tree_warmup_s = 900.0;
  double tree_measure_s = 1800.0;
  double warmup_s = 300.0;  // chaos rows
  double stream_s = 90.0;
  double drain_s = 90.0;
  std::uint64_t seed = 1;
  double timeseries_window_s = 5.0;  // recovery-curve sampling (0 = off)
  std::string trace_dir;             // per-cell streaming trace JSONL
};

exp::Algorithm ColAlgorithm(std::size_t col) {
  return col == 0 ? exp::Algorithm::kRost : exp::Algorithm::kClique;
}

// The Fig. 10 cost comparison: each protocol's control messages, read back
// from its ExportCounters registry snapshot. ROST's cost is its lock/switch
// handshake traffic; the clique's is backbone claims plus intra-cluster
// announcement fan-out.
double ControlOverhead(const obs::Registry& reg, exp::Algorithm a) {
  if (a == exp::Algorithm::kRost)
    return reg.CounterValue("rost.switches") +
           reg.CounterValue("rost.lock_conflicts") +
           reg.CounterValue("rost.lock_retries") +
           reg.CounterValue("rost.lock_timeouts") +
           reg.CounterValue("rost.handshake_aborts") +
           reg.CounterValue("rost.preempt_joins");
  return reg.CounterValue("clique.backbone_messages") +
         reg.CounterValue("clique.local_messages");
}

runner::CellResult RunChurnCell(const GridOptions& opt,
                                const net::Topology& topo,
                                const runner::CellContext& cell,
                                std::uint64_t shared_seed) {
  const exp::Algorithm a = ColAlgorithm(cell.col);
  exp::ScenarioConfig c;
  c.population = cell.row == 0 ? opt.tree_population : 2 * opt.tree_population;
  c.warmup_s = opt.tree_warmup_s;
  c.measure_s = opt.tree_measure_s;
  c.seed = shared_seed;
  obs::Registry reg;
  c.registry = &reg;
  c.timeseries_window_s = opt.timeseries_window_s;
  c.incident_analysis = true;
  bench::CellTraceStream trace(opt.trace_dir, cell);
  c.tracer = trace.tracer();
  const exp::TreeScenarioResult r = exp::RunTreeScenario(topo, a, c);

  runner::CellResult out;
  out.metrics["disruptions"] = r.avg_disruptions;
  out.metrics["disruptions_ci95"] = r.disruptions_ci95;
  out.metrics["reconnections"] = r.avg_reconnections;
  out.metrics["delay_ms"] = r.avg_delay_ms;
  out.metrics["stretch"] = r.avg_stretch;
  out.metrics["depth"] = r.avg_depth;
  out.metrics["population"] = r.avg_population;
  out.metrics["control_overhead"] = ControlOverhead(reg, a);
  if (a == exp::Algorithm::kClique)
    out.metrics["clique_disruptions"] = r.avg_disruptions;
  out.registry = reg.Flatten();
  out.incidents = r.incidents;
  bench::ExportTimeSeries(reg, &out);
  return out;
}

runner::CellResult RunChaosCell(const GridOptions& opt,
                                const net::Topology& topo,
                                const runner::CellContext& cell,
                                std::uint64_t shared_seed) {
  const exp::Algorithm a = ColAlgorithm(cell.col);
  exp::ChaosConfig c;
  c.population = opt.population;
  c.warmup_s = opt.warmup_s;
  c.stream_s = opt.stream_s;
  c.drain_s = opt.drain_s;
  c.seed = shared_seed;
  c.algorithm = a;
  c.fault.loss_rate = 0.02;
  c.fault.dup_prob = 0.01;
  c.fault.jitter_s = 0.02;
  // Real depth at this population (a star would make every row trivial) but
  // with enough slack that a flash crowd's capacity loss stays feasible:
  // killing a fifth of the membership also removes its fan-out, and with a
  // tighter root the stragglers left over are capacity-0 members no
  // protocol could place (the health gate would measure the workload, not
  // the protocol).
  c.session.root_bandwidth = 16.0;
  c.rost.switching_interval_s = 120.0;
  c.packet.frame_playback = true;
  switch (cell.row - kChurnRows) {
    case 0:  // domain_kill: every member in stub domain 1 dies at once
      c.domain_kill_at_s = 10.0;
      c.domain_kill_index = 1;
      break;
    case 1:  // flash_crowd: a fifth of the membership departs at one instant
      c.flash_at_s = 10.0;
      c.flash_departures = opt.population / 5;
      break;
    case 2:  // isp_episode: heavy on/off loss over stub domain 1's links
      c.episodic_at_s = 10.0;
      c.episodic_domain_index = 1;
      c.episodic.loss_rate = 0.9;
      c.episodic.mean_on_s = 4.0;
      c.episodic.mean_off_s = 12.0;
      // The incident ends with the stream: the drain and the settle window
      // then measure recovery from it. Left running, the on/off process
      // keeps the domain semi-partitioned and the health gate would flag
      // members no protocol could reach.
      c.episodic_end_s = opt.stream_s;
      break;
    case 3:  // reconnect_storm: 15% depart and re-enter under load
      c.reconnect_storm_at_s = 10.0;
      c.reconnect_storm_fraction = 0.15;
      c.reconnect_downtime_mean_s = 5.0;
      break;
  }

  obs::Registry reg;
  c.registry = &reg;
  c.timeseries_window_s = opt.timeseries_window_s;
  c.incident_analysis = true;
  bench::CellTraceStream trace(opt.trace_dir, cell);
  c.tracer = trace.tracer();
  const exp::ChaosResult r = exp::RunChaosScenario(topo, c);

  runner::CellResult out;
  out.metrics["starving_ratio"] = r.avg_starving_ratio;
  out.metrics["degraded_time_fraction"] = r.degraded_time_fraction;
  out.metrics["mean_recovery_to_cadence_s"] = r.mean_recovery_to_cadence_s;
  out.metrics["decode_stalls"] = static_cast<double>(r.decode_stalls);
  out.metrics["control_overhead"] = ControlOverhead(reg, a);
  out.metrics["wedged_leases"] = r.zero_wedged_locks ? 0.0 : 1.0;
  out.metrics["reentries_pending"] = static_cast<double>(r.reentries_pending);
  out.metrics["unrooted_members"] = static_cast<double>(r.unrooted_members);
  out.metrics["capacity_starved"] = static_cast<double>(r.capacity_starved);
  out.metrics["final_population"] = static_cast<double>(r.final_population);
  if (a == exp::Algorithm::kClique) {
    out.metrics["clique_starving_ratio"] = r.avg_starving_ratio;
    out.metrics["clique_local_recoveries"] =
        reg.CounterValue("clique.local_recoveries");
    out.metrics["clique_backbone_reattaches"] =
        reg.CounterValue("clique.backbone_reattaches");
  }
  out.registry = reg.Flatten();
  out.incidents = r.incidents;
  bench::ExportTimeSeries(reg, &out);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  flags.Define("population", "150", "chaos-row steady-state member count")
      .Define("tree-population", "200", "first churn row size (2nd doubles)")
      .Define("tree-warmup", "900", "churn-row equilibration seconds")
      .Define("tree-measure", "1800", "churn-row measurement seconds")
      .Define("warmup", "300", "chaos-row equilibration seconds")
      .Define("stream", "90", "packet-level stream seconds per chaos cell")
      .Define("drain", "90", "post-stream drain seconds")
      .Define("reps", "2", "independent repetitions per cell")
      .Define("seed", "1", "base RNG seed")
      .Define("threads", "1", "worker threads (cells are independent)")
      .Define("out", "", "directory for bakeoff.json (empty: none)")
      .Define("resume", "false", "reuse matching cells from --out JSON")
      .Define("progress", "true", "per-cell progress lines on stderr")
      .Define("log-level", "warn", "debug | info | warn | error")
      .Define("timeseries", "5", "recovery-curve sampling window s (0 = off)")
      .Define("trace-stream", "",
              "directory for per-cell streaming trace JSONL (empty: off)");
  if (!flags.Parse(argc, argv)) return 1;
  bench::ApplyLogLevelFlag(flags.GetString("log-level"));

  GridOptions opt;
  opt.population = flags.GetInt("population");
  opt.tree_population = flags.GetInt("tree-population");
  opt.tree_warmup_s = flags.GetDouble("tree-warmup");
  opt.tree_measure_s = flags.GetDouble("tree-measure");
  opt.warmup_s = flags.GetDouble("warmup");
  opt.stream_s = flags.GetDouble("stream");
  opt.drain_s = flags.GetDouble("drain");
  opt.seed = static_cast<std::uint64_t>(flags.GetInt("seed"));
  opt.timeseries_window_s = flags.GetDouble("timeseries");
  opt.trace_dir = flags.GetString("trace-stream");

  std::cout << "=== bakeoff -- ROST/CER vs clustered overlay (clique) ===\n"
            << "chaos population: " << opt.population
            << "  churn sizes: " << opt.tree_population << "/"
            << 2 * opt.tree_population << "  seed: " << opt.seed << "\n\n";

  const net::Topology& topo = runner::SharedTopology(
      net::SmallTopologyParams(), opt.seed ^ 0xde62adULL);

  runner::GridSpec spec;
  spec.figure = "bakeoff";
  spec.title = "ROST/CER vs clustered overlay, shared seeds";
  spec.row_header = "scenario";
  spec.rows = {"churn_n" + std::to_string(opt.tree_population),
               "churn_n" + std::to_string(2 * opt.tree_population),
               "domain_kill", "flash_crowd", "isp_episode", "reconnect_storm"};
  spec.cols = {exp::AlgorithmLabel(exp::Algorithm::kRost),
               exp::AlgorithmLabel(exp::Algorithm::kClique)};
  spec.reps = flags.GetInt("reps");
  spec.headline_metric = "disruptions";
  spec.run = [&opt, &topo, &spec](const runner::CellContext& cell) {
    // Paired comparison: both protocol columns of a (row, rep) run on one
    // seed (the column label is pinned out of the derivation), so they see
    // identical arrivals, lifetimes, and failure schedules.
    const std::uint64_t shared_seed = runner::CellSeed(
        opt.seed, spec.figure, cell.row_label, "shared", cell.rep);
    return cell.row < kChurnRows ? RunChurnCell(opt, topo, cell, shared_seed)
                                 : RunChaosCell(opt, topo, cell, shared_seed);
  };

  runner::RunnerOptions options;
  options.threads = flags.GetInt("threads");
  options.base_seed = opt.seed;
  options.progress = flags.GetBool("progress");
  const std::string out_dir = flags.GetString("out");
  const std::filesystem::path out_path =
      out_dir.empty() ? std::filesystem::path{}
                      : std::filesystem::path(out_dir) / (spec.figure + ".json");
  runner::Json resume_doc;
  if (flags.GetBool("resume") && !out_dir.empty()) {
    std::ifstream in(out_path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      std::string error;
      resume_doc = runner::Json::Parse(buf.str(), &error);
      if (resume_doc.is_object()) options.resume = &resume_doc;
    }
  }

  runner::GridRunSummary summary = runner::RunGrid(spec, options);
  runner::RunInfo info;
  info.scale = "bakeoff";
  info.git_sha = bench::GitSha();
  info.base_seed = opt.seed;
  info.warmup_s = opt.tree_warmup_s;
  info.measure_s = opt.tree_measure_s;
  const runner::ResultsSink sink(spec, info, std::move(summary));

  bench::PrintMetricTable(spec, sink, "disruptions", 3,
                          "disruptions per member (churn rows; Fig. 4)");
  bench::PrintMetricTable(spec, sink, "delay_ms", 1,
                          "service delay ms (churn rows; Fig. 7)");
  bench::PrintMetricTable(
      spec, sink, "stretch", 3,
      "delay stretch vs unicast optimum = 1.0 (churn rows; Fig. 8)");
  bench::PrintMetricTable(
      spec, sink, "control_overhead", 0,
      "control messages: ROST lock/switch traffic vs clique announcements");
  bench::PrintMetricTable(spec, sink, "starving_ratio", 4,
                          "starving-time ratio (chaos rows)");
  bench::PrintMetricTable(spec, sink, "degraded_time_fraction", 4,
                          "degraded-session time fraction (chaos rows)");
  bench::PrintMetricTable(spec, sink, "wedged_leases", 0,
                          "wedged leases (must be 0)");
  bench::PrintMetricTable(spec, sink, "reentries_pending", 0,
                          "re-entries unresolved after settle (must be 0)");
  bench::PrintMetricTable(spec, sink, "unrooted_members", 0,
                          "members still unrooted after settle (must be 0)");
  bench::PrintMetricTable(
      spec, sink, "capacity_starved", 1,
      "unplaceable members, tree full at audit (workload, not gated)");
  bench::PrintRecoveryCurveTable(
      spec, sink, "recovery.unrooted_members",
      "recovery curve: peak unrooted members / time back to zero");
  bench::PrintIncidentBreakdownTable(
      spec, sink, "disruption incidents: opened/reattached/recovered");
  bench::PrintIncidentPhaseTable(spec, sink, "reattach",
                                 "incident reattach latency p50/p99 (s)");

  // Health gate over the chaos rows, both protocols: a wedged lease, a
  // stranded orphan, or an unresolved re-entry fails the whole run.
  bool healthy = true;
  for (std::size_t row = kChurnRows; row < spec.rows.size(); ++row)
    for (std::size_t col = 0; col < spec.cols.size(); ++col) {
      if (sink.Stat(row, col, "wedged_leases").mean() != 0.0 ||
          sink.Stat(row, col, "reentries_pending").mean() != 0.0 ||
          sink.Stat(row, col, "unrooted_members").mean() != 0.0) {
        std::cerr << "[bakeoff] unhealthy cell: " << spec.rows[row] << " / "
                  << spec.cols[col] << "\n";
        healthy = false;
      }
    }
  if (!healthy) {
    std::cerr << "[bakeoff] HEALTH GATE FAILED: wedged leases, stranded "
                 "orphans, or unresolved re-entries\n";
    return 1;
  }

  if (!out_dir.empty()) {
    std::filesystem::create_directories(out_dir);
    if (!sink.WriteJson(out_path.string())) {
      std::cerr << "[bakeoff] FAILED to write " << out_path << "\n";
      return 1;
    }
    std::cerr << "[bakeoff] wrote " << out_path << "\n";
  }
  return 0;
}
