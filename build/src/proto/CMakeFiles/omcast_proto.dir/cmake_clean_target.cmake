file(REMOVE_RECURSE
  "libomcast_proto.a"
)
