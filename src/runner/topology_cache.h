// Process-wide cache of generated topologies, keyed by (params, seed).
//
// The paper-scale GT-ITM instance (15,600 hosts, per-domain APSP plus a
// 240^2 transit core) is expensive enough that rebuilding it per grid --
// or worse, per cell -- dominates short sweeps. Every bench process builds
// it exactly once here and every runner cell shares the same immutable
// instance read-only; net::Topology's accessors are all const and its
// state is frozen after Generate(), so concurrent cell threads need no
// locking (the TSan grid job guards this invariant).
//
// Returned references live until process exit; the cache never evicts.
#pragma once

#include <cstdint>

#include "net/topology.h"

namespace omcast::runner {

// Returns the topology generated from `params` with an Rng seeded `seed`,
// building and memoizing it on first use. Thread-safe.
const net::Topology& SharedTopology(const net::TopologyParams& params,
                                    std::uint64_t seed);

// Number of distinct (params, seed) instances built so far (for tests).
int SharedTopologyCount();

}  // namespace omcast::runner
