#include "core/rost/referee.h"

#include "util/check.h"

namespace omcast::core {

using overlay::NodeId;
using overlay::Session;

RefereeService::RefereeService(RefereeParams params) : params_(params) {
  util::Check(params_.age_referees > 1, "r_age must exceed 1 (Section 3.4)");
  util::Check(params_.bw_referees > 1, "r_bw must exceed 1 (Section 3.4)");
}

RefereeService::Record& RefereeService::RecordFor(NodeId node) {
  if (records_.size() <= static_cast<std::size_t>(node))
    records_.resize(static_cast<std::size_t>(node) + 1);
  return records_[static_cast<std::size_t>(node)];
}

bool RefereeService::IsEnrolled(NodeId node) const {
  return static_cast<std::size_t>(node) < records_.size() &&
         records_[static_cast<std::size_t>(node)].enrolled;
}

std::vector<NodeId> RefereeService::PickReferees(Session& session,
                                                 NodeId exclude, int count) {
  // Referees are chosen among current members uniformly; the enrolled node
  // itself never serves as its own referee.
  std::vector<NodeId> out;
  const std::vector<NodeId> pool = session.rng().SampleWithoutReplacementFrom(
      session.alive_members(), static_cast<std::size_t>(count) + 1);
  for (NodeId id : pool) {
    if (id == exclude) continue;
    out.push_back(id);
    if (static_cast<int>(out.size()) == count) break;
  }
  return out;  // may be short in tiny overlays; Repair tops it up later
}

void RefereeService::Enroll(Session& session, NodeId node) {
  Record& rec = RecordFor(node);
  util::Check(!rec.enrolled, "member already enrolled");
  const overlay::Member& m = session.tree().Get(node);
  rec.enrolled = true;
  rec.age_referees = PickReferees(session, node, params_.age_referees);
  rec.bw_referees = PickReferees(session, node, params_.bw_referees);
  // Parent observed the join; measurer set gauges the real outgoing
  // bandwidth. Both are ground truth, not the member's claims.
  rec.attested_join_time = m.join_time;
  rec.attested_bandwidth = m.bandwidth;
}

bool RefereeService::Repair(Session& session, std::vector<NodeId>& referees,
                            int target_count) {
  bool any_alive = false;
  std::vector<NodeId> kept;
  for (NodeId r : referees)
    if (session.tree().Alive(r)) {
      kept.push_back(r);
      any_alive = true;
    }
  if (static_cast<int>(kept.size()) < target_count) {
    for (NodeId fresh : PickReferees(session, overlay::kNoNode,
                                     target_count - static_cast<int>(kept.size()))) {
      kept.push_back(fresh);
      ++replacements_;
    }
  }
  referees = std::move(kept);
  return any_alive;
}

double RefereeService::VerifiedAge(Session& session, NodeId node,
                                   sim::Time now) {
  Record& rec = RecordFor(node);
  util::Check(rec.enrolled, "verification requires enrollment");
  if (!Repair(session, rec.age_referees, params_.age_referees)) {
    // All witnesses lost: the attested age restarts from the re-enrollment
    // instant (the member cannot prove its earlier history).
    rec.attested_join_time = now;
    ++resets_;
  }
  return now - rec.attested_join_time;
}

double RefereeService::VerifiedBandwidth(Session& session, NodeId node) {
  Record& rec = RecordFor(node);
  util::Check(rec.enrolled, "verification requires enrollment");
  if (!Repair(session, rec.bw_referees, params_.bw_referees)) {
    // All witnesses lost: re-measure (an honest value again).
    rec.attested_bandwidth = session.tree().Get(node).bandwidth;
    ++resets_;
  }
  return rec.attested_bandwidth;
}

}  // namespace omcast::core
