# Empty compiler generated dependencies file for fig09_member_delay.
# This may be replaced when dependencies are built.
