file(REMOVE_RECURSE
  "libomcast_overlay.a"
)
