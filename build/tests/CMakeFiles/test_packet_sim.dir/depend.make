# Empty dependencies file for test_packet_sim.
# This may be replaced when dependencies are built.
