// Fixture: a wall-clock value fed into a trace emission must be flagged.
// Trace payloads are part of the replay-determinism contract (equal seeds
// export byte-identical JSONL), so only virtual sim time and stable ids may
// enter an Emit call; host timing belongs in obs::SimProfiler.
#include <chrono>  // expect(wallclock)
#include <cstdint>

namespace fixture {

enum class EventKind : int { kJoin = 0 };

struct Tracer {
  void Emit(double t, EventKind kind, std::int64_t subject,
            std::int64_t peer = -1, std::int64_t detail = 0);
};

double WallMs();
double SimNow();

void BadWallMsPayload(Tracer* tracer) {
  tracer->Emit(WallMs(), EventKind::kJoin, 1);  // expect(trace-wallclock)
}

void BadChronoPayload(Tracer& tracer) {
  tracer.Emit(std::chrono::steady_clock::now().time_since_epoch().count(),  // expect(trace-wallclock) // expect(wallclock)
              EventKind::kJoin, 2);
}

void BadWrappedArgument(Tracer* tracer) {
  // The token sits on a continuation line of the call; the Emit line is
  // the one flagged (plus the generic wallclock rule on the token line).
  tracer->Emit(0.0, EventKind::kJoin, 3, -1,  // expect(trace-wallclock)
               std::chrono::system_clock::now().time_since_epoch().count());  // expect(wallclock)
}

// Sim-time payloads are the contract; never flagged.
void GoodSimTimePayload(Tracer* tracer) {
  tracer->Emit(SimNow(), EventKind::kJoin, 4);
}

// The escape hatch silences an audited site.
void AllowedAnnotated(Tracer* tracer) {
  tracer->Emit(WallMs(), EventKind::kJoin, 5);  // omcast-lint: allow(trace-wallclock)
}

// A method merely named Emit with no timing token is not a violation
// (stream::PacketLevelStream::Emit emits packets, not trace events).
struct PacketStream {
  void Emit(std::int64_t seq);
  void Tick(std::int64_t seq) { this->Emit(seq + 1); }
};

}  // namespace fixture
