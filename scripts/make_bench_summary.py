#!/usr/bin/env python3
"""Distills a results directory of per-figure JSON files into one
bench_summary.json: per figure, the wall-clock cost and the headline metric
(mean over the last grid row's curves, the natural "biggest size" point).
The summary is what a human (or a regression diff) eyeballs after a sweep
without opening fifteen files.

Usage: make_bench_summary.py RESULTS_DIR [-o OUT.json]
"""

import argparse
import json
import pathlib
import sys

EXPECTED_KIND = "omcast-figure-results"


def summarize_figure(doc):
    """One summary record from a parsed results document."""
    rows = doc.get("rows", [])
    cols = doc.get("cols", [])
    metric = doc.get("headline_metric", "")
    last_row = rows[-1] if rows else None

    # Mean of the headline metric at the last row, one entry per curve --
    # plus the whole per-row trajectory, so a summary diff shows the full
    # perf curve (bench/scale_sweep commits this as BENCH_scale_sweep.json).
    headline = {}
    trajectory = {row: {} for row in rows}
    for agg in doc.get("aggregates", []):
        if agg.get("metric") != metric or agg.get("col") not in cols:
            continue
        if agg.get("row") == last_row:
            headline[agg["col"]] = agg.get("mean")
        if agg.get("row") in trajectory:
            trajectory[agg["row"]][agg["col"]] = agg.get("mean")

    cells = doc.get("cells", [])
    return {
        "figure": doc.get("figure", "?"),
        "title": doc.get("title", ""),
        "scale": doc.get("scale", ""),
        "git_sha": doc.get("git_sha", ""),
        "base_seed": doc.get("base_seed"),
        "grid": {
            "rows": len(rows),
            "cols": len(cols),
            "reps": doc.get("reps"),
            "cells": len(cells),
        },
        "executed": doc.get("executed"),
        "resumed": doc.get("resumed"),
        "wall_ms": doc.get("wall_ms_total"),
        "max_cell_wall_ms": max(
            (c.get("wall_ms", 0.0) for c in cells), default=0.0
        ),
        "headline_metric": metric,
        "headline_row": last_row,
        "headline": headline,
        "headline_trajectory": trajectory,
    }


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results_dir", type=pathlib.Path)
    parser.add_argument("-o", "--output", type=pathlib.Path, default=None)
    args = parser.parse_args(argv)

    if not args.results_dir.is_dir():
        print(f"error: {args.results_dir} is not a directory", file=sys.stderr)
        return 1

    figures = []
    skipped = []
    for path in sorted(args.results_dir.glob("*.json")):
        if path.name == "bench_summary.json":
            continue
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            skipped.append(f"{path.name}: {err}")
            continue
        if doc.get("kind") != EXPECTED_KIND:
            skipped.append(f"{path.name}: not a figure-results file")
            continue
        figures.append(summarize_figure(doc))

    summary = {
        "schema_version": 1,
        "kind": "omcast-bench-summary",
        "figures": figures,
        "total_wall_ms": sum(f["wall_ms"] or 0.0 for f in figures),
        "skipped": skipped,
    }
    text = json.dumps(summary, indent=1)
    if args.output:
        args.output.write_text(text + "\n")
        print(
            f"wrote {args.output} ({len(figures)} figures, "
            f"{summary['total_wall_ms'] / 1000.0:.1f}s total)",
            file=sys.stderr,
        )
    else:
        print(text)
    if skipped:
        for line in skipped:
            print(f"skipped {line}", file=sys.stderr)
    return 0 if figures or not skipped else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
