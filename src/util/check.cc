#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace omcast::util {

void Check(bool cond, std::string_view what, std::source_location loc) {
  if (!cond) Fail(what, loc);
}

void Fail(std::string_view what, std::source_location loc) {
  std::fprintf(stderr, "CHECK failed at %s:%u (%s): %.*s\n", loc.file_name(),
               static_cast<unsigned>(loc.line()), loc.function_name(),
               static_cast<int>(what.size()), what.data());
  std::abort();
}

}  // namespace omcast::util
