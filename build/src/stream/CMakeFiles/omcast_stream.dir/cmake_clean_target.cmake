file(REMOVE_RECURSE
  "libomcast_stream.a"
)
