// Causality invariants over the protocol trace: runs one chaos scenario
// (lossy control plane, heartbeat detection, ROST lock-lease handshakes,
// CER stripe repair, correlated + mid-repair kills) with a Tracer attached,
// then replays the event stream and checks the orderings the protocol
// promises:
//
//   * a node's lock leases never overlap -- a second grant cannot open
//     while an earlier lease is still outstanding, and lease serials are
//     strictly increasing per node;
//   * every committed switch falls inside the holder's own lease window,
//     so no two commits can race on the same ROST lock;
//   * every stripe repair_start traces back to a cer_group_formed with the
//     same group id, which itself traces back to the failed parent's leave.
//
// The tracer is sized so nothing is evicted (dropped() must stay 0);
// otherwise the checks would silently run on a suffix of the history.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "exp/chaos.h"
#include "net/topology.h"
#include "obs/trace.h"

namespace omcast {
namespace {

using obs::EventKind;
using obs::TraceEvent;
using obs::Tracer;

struct TraceFixture {
  Tracer tracer{1u << 20};
  exp::ChaosResult result;
  std::vector<TraceEvent> events;
};

// One shared scenario run for every test in this file (the checks are all
// read-only over the same history).
const TraceFixture& Fixture() {
  static TraceFixture* fixture = [] {
    auto* f = new TraceFixture;
    rnd::Rng topo_rng(1);
    const net::Topology topology =
        net::Topology::Generate(net::TinyTopologyParams(), topo_rng);
    exp::ChaosConfig c;
    c.population = 80;
    c.warmup_s = 120.0;
    c.stream_s = 30.0;
    c.drain_s = 45.0;
    c.seed = 7;
    c.fault.loss_rate = 0.01;
    c.fault.dup_prob = 0.01;
    c.fault.jitter_s = 0.05;
    c.session.root_bandwidth = 20.0;  // force depth so failures orphan someone
    c.rost.switching_interval_s = 60.0;
    c.domain_kill_at_s = 5.0;
    c.domain_kill_index = 1;
    c.mid_repair_kill_at_s = 15.0;
    c.packet.packet_rate = 5.0;
    c.tracer = &f->tracer;
    f->result = exp::RunChaosScenario(topology, c);
    f->events = f->tracer.Events();
    return f;
  }();
  return *fixture;
}

TEST(TraceCausality, NothingWasEvictedFromTheRing) {
  const TraceFixture& f = Fixture();
  ASSERT_GT(f.events.size(), 0u) << "scenario produced no trace events";
  EXPECT_EQ(f.tracer.dropped(), 0u)
      << "ring overflowed; the causality checks below would only see a "
         "suffix of the history";
}

TEST(TraceCausality, TraceIsTimeOrdered) {
  const TraceFixture& f = Fixture();
  for (std::size_t i = 1; i < f.events.size(); ++i) {
    ASSERT_GE(f.events[i].t, f.events[i - 1].t)
        << "event id " << f.events[i].id << " went back in time";
    ASSERT_EQ(f.events[i].id, f.events[i - 1].id + 1);
  }
}

// Per-node lease bookkeeping replayed from the trace.
struct LeaseLedger {
  bool open = false;
  std::int64_t serial = 0;   // serial of the open lease
  std::int64_t last_serial = 0;
  double opened_at = 0.0;
};

TEST(TraceCausality, LeasesOnOneNodeNeverOverlap) {
  const TraceFixture& f = Fixture();
  std::map<std::int64_t, LeaseLedger> ledgers;  // subject node -> state
  long grants = 0;
  for (const TraceEvent& e : f.events) {
    LeaseLedger& led = ledgers[e.subject];
    switch (e.kind) {
      case EventKind::kLockGrant:
        ++grants;
        ASSERT_FALSE(led.open)
            << "node " << e.subject << " granted lease serial " << e.detail
            << " at t=" << e.t << " while serial " << led.serial
            << " (opened t=" << led.opened_at << ") was still outstanding";
        ASSERT_GT(e.detail, led.last_serial)
            << "node " << e.subject << " reused lease serial " << e.detail;
        led.open = true;
        led.serial = e.detail;
        led.last_serial = e.detail;
        led.opened_at = e.t;
        break;
      case EventKind::kLockRelease:
      case EventKind::kLockExpire:
        // Releases are delivered over the lossy plane; a stale one for an
        // already-superseded serial never reaches the trace (the serial
        // guard drops it), so a close must match the open lease exactly.
        ASSERT_TRUE(led.open)
            << "node " << e.subject << " closed serial " << e.detail
            << " at t=" << e.t << " with no lease open";
        ASSERT_EQ(e.detail, led.serial);
        led.open = false;
        break;
      default:
        break;
    }
  }
  EXPECT_GT(grants, 0) << "scenario never exercised the lease path";
}

TEST(TraceCausality, EveryCommitFallsInsideTheHoldersOwnLease) {
  // The holder self-leases when the handshake starts and the commit is
  // emitted before teardown releases it, so at commit time the holder's
  // open self-lease must exist. Two commits racing on one lock would make
  // one of them fall outside its window.
  const TraceFixture& f = Fixture();
  struct OpenLease {
    bool open = false;
    std::int64_t holder = -1;
  };
  std::map<std::int64_t, OpenLease> open;  // subject node -> open lease
  long commits = 0;
  for (const TraceEvent& e : f.events) {
    switch (e.kind) {
      case EventKind::kLockGrant:
        open[e.subject] = {true, e.peer};
        break;
      case EventKind::kLockRelease:
      case EventKind::kLockExpire:
        open[e.subject].open = false;
        break;
      case EventKind::kSwitchCommit: {
        ++commits;
        const auto it = open.find(e.subject);
        ASSERT_TRUE(it != open.end() && it->second.open &&
                    it->second.holder == e.subject)
            << "switch_commit by node " << e.subject << " at t=" << e.t
            << " outside its own lease window";
        break;
      }
      default:
        break;
    }
  }
  EXPECT_GT(commits, 0) << "scenario never committed a switch; the "
                           "invariant was checked vacuously";
}

TEST(TraceCausality, EveryRepairTracesBackToAGroupAndALeave) {
  const TraceFixture& f = Fixture();
  std::map<std::int64_t, std::uint64_t> last_leave;     // node -> event id
  std::map<std::int64_t, std::uint64_t> group_formed;   // group id -> event id
  std::map<std::int64_t, std::int64_t> group_failed;    // group id -> parent
  long repairs = 0;
  for (const TraceEvent& e : f.events) {
    switch (e.kind) {
      case EventKind::kLeave:
        last_leave[e.subject] = e.id;
        break;
      case EventKind::kCerGroupFormed: {
        group_formed[e.detail] = e.id;
        group_failed[e.detail] = e.peer;
        // The failed parent must already have departed.
        const auto leave = last_leave.find(e.peer);
        ASSERT_TRUE(leave != last_leave.end() && leave->second < e.id)
            << "group " << e.detail << " formed for parent " << e.peer
            << " with no prior leave";
        break;
      }
      case EventKind::kRepairStart: {
        ++repairs;
        const auto formed = group_formed.find(e.detail);
        ASSERT_TRUE(formed != group_formed.end() && formed->second < e.id)
            << "repair_start for unknown group " << e.detail;
        break;
      }
      case EventKind::kRepairFailover: {
        // A takeover belongs to an already-formed group too.
        ASSERT_TRUE(group_formed.contains(e.detail))
            << "failover for unknown group " << e.detail;
        break;
      }
      default:
        break;
    }
  }
  EXPECT_GT(repairs, 0) << "scenario never started a CER repair; the "
                           "invariant was checked vacuously";
}

TEST(TraceCausality, ScenarioStayedHealthy) {
  // The chaos harness's own invariants must hold with tracing attached
  // (instrumentation cannot perturb the run).
  const TraceFixture& f = Fixture();
  EXPECT_TRUE(f.result.zero_wedged_locks);
  EXPECT_EQ(f.result.unrooted_members, 0);
}

}  // namespace
}  // namespace omcast
