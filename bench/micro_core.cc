// Microbenchmarks (google-benchmark) for the building blocks on the hot
// paths of the simulation: the event queue, the topology delay oracle,
// partial-tree construction + MLC selection, the per-outage recovery model,
// and a full small churn scenario.
#include <benchmark/benchmark.h>

#include "core/cer/mlc.h"
#include "core/cer/partial_tree.h"
#include "core/cer/recovery.h"
#include "exp/scenario.h"
#include "net/topology.h"
#include "rand/rng.h"
#include "sim/simulator.h"

namespace {

using namespace omcast;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    long count = 0;
    for (int i = 0; i < n; ++i)
      sim.ScheduleAt(static_cast<double>(i % 97), [&count] { ++count; });
    sim.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void BM_TopologyGenerate(benchmark::State& state) {
  for (auto _ : state) {
    rnd::Rng rng(1);
    const net::Topology t =
        net::Topology::Generate(net::PaperTopologyParams(), rng);
    benchmark::DoNotOptimize(t.num_stub_nodes());
  }
}
BENCHMARK(BM_TopologyGenerate)->Unit(benchmark::kMillisecond);

void BM_DelayOracle(benchmark::State& state) {
  rnd::Rng rng(1);
  const net::Topology t =
      net::Topology::Generate(net::PaperTopologyParams(), rng);
  rnd::Rng pick(2);
  for (auto _ : state) {
    const auto a = static_cast<net::HostId>(
        pick.UniformIndex(static_cast<std::size_t>(t.num_stub_nodes())));
    const auto b = static_cast<net::HostId>(
        pick.UniformIndex(static_cast<std::size_t>(t.num_stub_nodes())));
    benchmark::DoNotOptimize(t.Delay(a, b));
  }
}
BENCHMARK(BM_DelayOracle);

void BM_MlcSelection(benchmark::State& state) {
  // A realistic partial view: ~100 known members of a churned overlay.
  sim::Simulator sim;
  rnd::Rng topo_rng(1);
  const net::Topology topo =
      net::Topology::Generate(net::SmallTopologyParams(), topo_rng);
  overlay::Session session(sim, topo,
                           exp::MakeProtocol(exp::Algorithm::kMinDepth,
                                             core::RostParams{}),
                           overlay::SessionParams{}, 3);
  session.Prepopulate(800);
  sim.RunUntil(600.0);
  rnd::Rng rng(7);
  for (auto _ : state) {
    const auto known = session.SampleCandidates(100, overlay::kNoNode);
    const core::PartialTree view = core::PartialTree::Build(session.tree(), known);
    benchmark::DoNotOptimize(
        core::FindMlcGroup(view, 3, overlay::kNoNode, rng));
  }
}
BENCHMARK(BM_MlcSelection);

void BM_SimulateOutage(benchmark::State& state) {
  core::OutageSpec spec;
  spec.chain = {{true, 0.3, 0.01}, {true, 0.4, 0.01}, {true, 0.2, 0.01}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SimulateOutage(spec));
  }
}
BENCHMARK(BM_SimulateOutage);

void BM_ChurnScenario(benchmark::State& state) {
  rnd::Rng topo_rng(1);
  const net::Topology topo =
      net::Topology::Generate(net::SmallTopologyParams(), topo_rng);
  for (auto _ : state) {
    exp::ScenarioConfig config;
    config.population = 500;
    config.warmup_s = 600.0;
    config.measure_s = 600.0;
    config.seed = 5;
    benchmark::DoNotOptimize(
        RunTreeScenario(topo, exp::Algorithm::kRost, config));
  }
}
BENCHMARK(BM_ChurnScenario)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
