#include "core/cer/recovery.h"

#include <gtest/gtest.h>

namespace omcast::core {
namespace {

// Paper defaults: 5 s detect + 10 s rejoin = 150 hole packets at 10 pkt/s,
// 5 s (50 packet) playback buffer.
OutageSpec PaperSpec() {
  OutageSpec s;
  s.detect_s = 5.0;
  s.rejoin_s = 10.0;
  s.buffer_s = 5.0;
  s.packet_rate = 10.0;
  s.mode = RecoveryMode::kCooperative;
  return s;
}

RecoverySource Usable(double rate, double latency = 0.0) {
  return {true, rate, latency};
}
RecoverySource Dead(double latency = 0.0) { return {false, 0.0, latency}; }

TEST(Recovery, NoSourcesLosesEverything) {
  OutageSpec s = PaperSpec();
  const OutageResult r = SimulateOutage(s);
  EXPECT_EQ(r.packets_total, 150);
  EXPECT_EQ(r.packets_lost, 150);
  EXPECT_DOUBLE_EQ(r.starving_s, 15.0);
  EXPECT_DOUBLE_EQ(r.aggregate_rate, 0.0);
}

TEST(Recovery, AllDeadSourcesLoseEverything) {
  OutageSpec s = PaperSpec();
  s.chain = {Dead(0.01), Dead(0.01), Dead(0.01)};
  const OutageResult r = SimulateOutage(s);
  EXPECT_EQ(r.packets_lost, 150);
}

TEST(Recovery, FullRateRecoversAlmostEverything) {
  OutageSpec s = PaperSpec();
  s.chain = {Usable(0.6, 0.01), Usable(0.6, 0.01)};
  const OutageResult r = SimulateOutage(s);
  EXPECT_DOUBLE_EQ(r.aggregate_rate, 1.0);  // capped at the stream rate
  // Packets generated in the first ~(buffer - detect) may expire; with
  // detect == buffer == 5 s the server starts exactly at the first
  // deadline, so only a handful of early packets are lost.
  EXPECT_GT(r.packets_recovered, 140);
  EXPECT_LT(r.starving_s, 1.0);
}

TEST(Recovery, SingleSourceUsesOnlyFirstUsable) {
  OutageSpec s = PaperSpec();
  s.mode = RecoveryMode::kSingleSource;
  s.chain = {Dead(0.01), Usable(0.4, 0.01), Usable(0.5, 0.01)};
  const OutageResult r = SimulateOutage(s);
  EXPECT_DOUBLE_EQ(r.aggregate_rate, 0.4);
}

TEST(Recovery, CooperativeAggregatesUntilFullRate) {
  OutageSpec s = PaperSpec();
  s.chain = {Usable(0.3), Usable(0.3), Usable(0.3), Usable(0.3)};
  const OutageResult r = SimulateOutage(s);
  // 0.3+0.3+0.3 = 0.9 < 1, fourth brings it to >= 1 -> capped.
  EXPECT_DOUBLE_EQ(r.aggregate_rate, 1.0);
}

TEST(Recovery, CooperativeStopsExaminingOnceCovered) {
  OutageSpec s = PaperSpec();
  // Sum reaches 1.0 after two sources; the third's latency must not matter.
  s.chain = {Usable(0.5, 0.001), Usable(0.5, 0.001), Usable(0.9, 999.0)};
  const OutageResult r = SimulateOutage(s);
  EXPECT_DOUBLE_EQ(r.aggregate_rate, 1.0);
  EXPECT_LT(r.service_start_s, 6.0);
}

TEST(Recovery, MoreSourcesStrictlyHelp) {
  OutageSpec s1 = PaperSpec();
  s1.chain = {Usable(0.45, 0.01)};
  OutageSpec s2 = PaperSpec();
  s2.chain = {Usable(0.45, 0.01), Usable(0.45, 0.01)};
  OutageSpec s3 = PaperSpec();
  s3.chain = {Usable(0.45, 0.01), Usable(0.45, 0.01), Usable(0.45, 0.01)};
  const double l1 = SimulateOutage(s1).starving_s;
  const double l2 = SimulateOutage(s2).starving_s;
  const double l3 = SimulateOutage(s3).starving_s;
  EXPECT_GT(l1, l2);
  EXPECT_GE(l2, l3);
}

TEST(Recovery, LargerBufferReducesStarving) {
  double prev = 1e9;
  for (double buffer : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
    OutageSpec s = PaperSpec();
    s.buffer_s = buffer;
    s.chain = {Usable(0.5, 0.01)};
    const double starving = SimulateOutage(s).starving_s;
    EXPECT_LE(starving, prev) << "buffer " << buffer;
    prev = starving;
  }
  // With a 30 s buffer a 0.5-rate source recovers the 15 s hole fully:
  // the last hole packet (generated at 15 s, deadline 45 s) is served by
  // 5 + 150 * 0.2 = 35 s.
  OutageSpec s = PaperSpec();
  s.buffer_s = 30.0;
  s.chain = {Usable(0.5, 0.01)};
  EXPECT_EQ(SimulateOutage(s).packets_lost, 0);
}

TEST(Recovery, HandComputedHalfRateCase) {
  // r = 0.5 -> service time 0.2 s/packet, start at 5 s. Packet n (generated
  // 0.1n, deadline 0.1n + 5): service completes at 5 + 0.2(k+1) where k
  // counts served packets. Early packets miss once 5 + 0.2(k+1) > 0.1n + 5
  // ... first packets are served in order; packet n is served at
  // 5 + 0.2(n+1) if all before it were served; it makes its deadline iff
  // 0.2(n+1) <= 0.1n + 5 -> 0.1n <= 4.8 -> n <= 48. But skipped packets
  // free service time: once packets start expiring, the server works at
  // the generation frontier. After n=48, serving alternates: the model
  // must recover exactly the packets whose deadlines allow.
  OutageSpec s = PaperSpec();
  s.chain = {Usable(0.5)};
  const OutageResult r = SimulateOutage(s);
  EXPECT_EQ(r.packets_total, 150);
  // First 49 packets (0..48) all make it; afterwards the server can keep
  // up with half the packets at best.
  EXPECT_GE(r.packets_recovered, 49);
  EXPECT_LT(r.packets_recovered, 150);
  EXPECT_NEAR(r.starving_s, static_cast<double>(r.packets_lost) / 10.0, 1e-12);
}

TEST(Recovery, ChainLatencyDelaysServiceStart) {
  OutageSpec fast = PaperSpec();
  fast.chain = {Usable(0.5, 0.001)};
  OutageSpec slow = PaperSpec();
  slow.chain = {Dead(2.0), Usable(0.5, 2.0)};  // NACK hop adds latency
  const OutageResult rf = SimulateOutage(fast);
  const OutageResult rs = SimulateOutage(slow);
  EXPECT_LT(rf.service_start_s, rs.service_start_s);
  EXPECT_NEAR(rs.service_start_s, 5.0 + 4.0, 1e-12);
  EXPECT_LE(rf.packets_lost, rs.packets_lost);
}

TEST(Recovery, ZeroHoleDegenerate) {
  OutageSpec s = PaperSpec();
  s.detect_s = 0.0;
  s.rejoin_s = 0.0;
  const OutageResult r = SimulateOutage(s);
  EXPECT_EQ(r.packets_total, 0);
  EXPECT_DOUBLE_EQ(r.starving_s, 0.0);
}

// Property sweep: starving time is monotone non-increasing in aggregate
// rate, for several buffer sizes.
class RecoveryRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(RecoveryRateSweep, StarvingMonotoneInRate) {
  const double buffer = GetParam();
  double prev = 1e9;
  for (double rate : {0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 0.9}) {
    OutageSpec s = PaperSpec();
    s.buffer_s = buffer;
    s.chain = {Usable(rate, 0.01)};
    const double starving = SimulateOutage(s).starving_s;
    EXPECT_LE(starving, prev + 1e-9)
        << "rate " << rate << " buffer " << buffer;
    prev = starving;
  }
}

INSTANTIATE_TEST_SUITE_P(Buffers, RecoveryRateSweep,
                         ::testing::Values(5.0, 10.0, 15.0, 20.0, 27.0, 30.0));

}  // namespace
}  // namespace omcast::core
