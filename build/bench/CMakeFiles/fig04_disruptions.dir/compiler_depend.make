# Empty compiler generated dependencies file for fig04_disruptions.
# This may be replaced when dependencies are built.
