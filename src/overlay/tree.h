// Multicast tree structure operations over a member store.
//
// The Tree owns the member records (so ids remain valid for metrics after a
// member departs) and maintains the parent/children/layer relations with
// invariant checking: capacity is never exceeded, layers are always
// parent.layer + 1, and attach never creates a cycle.
//
// Storage is struct-of-arrays: the hot per-node fields (parent link, child
// list, layer, liveness, in-tree flag, capacity) are flat vectors indexed by
// the dense NodeId, sized for 10^6 members -- the cold Member records sit in
// a parallel vector behind Get(). The child list is an intrusive doubly
// linked list (first/last child + prev/next sibling per node): appends go to
// the tail and unlinks splice neighbors, which reproduces EXACTLY the
// iteration order of the std::vector push_back/erase(find) representation it
// replaced -- replay digests depend on that order, and the determinism tests
// in tests/test_determinism_replay.cc pin it.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "overlay/member.h"
#include "util/check.h"

namespace omcast::overlay {

class Tree {
 public:
  // Creates the store with the root (source) member occupying id 0.
  Tree(net::HostId root_host, double root_bandwidth);

  // Adds a member record (not yet in the tree); returns its id.
  NodeId CreateMember(net::HostId host, double bandwidth, sim::Time join_time,
                      sim::Time lifetime);

  // Cold per-member record (identity, bandwidth, BTP inputs, counters).
  Member& Get(NodeId id) {
    CheckId(id);
    return members_[static_cast<std::size_t>(id)];
  }
  const Member& Get(NodeId id) const {
    CheckId(id);
    return members_[static_cast<std::size_t>(id)];
  }
  std::size_t size() const { return members_.size(); }

  // --- hot per-node state (flat arrays) -----------------------------------

  NodeId Parent(NodeId id) const {
    CheckId(id);
    return parent_[static_cast<std::size_t>(id)];
  }
  int Layer(NodeId id) const {
    CheckId(id);
    return layer_[static_cast<std::size_t>(id)];
  }
  bool Alive(NodeId id) const {
    CheckId(id);
    return alive_[static_cast<std::size_t>(id)] != 0;
  }
  // False while the member is (re)joining; an orphaned fragment root keeps
  // its children but has Parent() == kNoNode.
  bool InTree(NodeId id) const {
    CheckId(id);
    return in_tree_[static_cast<std::size_t>(id)] != 0;
  }
  // Out-degree constraint, floor(bandwidth) at creation.
  int Capacity(NodeId id) const {
    CheckId(id);
    return capacity_[static_cast<std::size_t>(id)];
  }
  int ChildCount(NodeId id) const {
    CheckId(id);
    return child_count_[static_cast<std::size_t>(id)];
  }
  int SpareCapacity(NodeId id) const { return Capacity(id) - ChildCount(id); }
  NodeId FirstChild(NodeId id) const {
    CheckId(id);
    return first_child_[static_cast<std::size_t>(id)];
  }
  NodeId NextSibling(NodeId id) const {
    CheckId(id);
    return next_sibling_[static_cast<std::size_t>(id)];
  }

  // Lightweight forward range over `id`'s children in attach order; a
  // drop-in for iterating the old child vector. The range walks the LIVE
  // sibling links: do not Attach/Detach/RemoveFromTree under it -- take
  // Children() (a snapshot) when the loop body mutates the tree.
  class ChildRange {
   public:
    class iterator {
     public:
      iterator(NodeId cur, const std::vector<NodeId>* next)
          : cur_(cur), next_(next) {}
      NodeId operator*() const { return cur_; }
      iterator& operator++() {
        cur_ = (*next_)[static_cast<std::size_t>(cur_)];
        return *this;
      }
      friend bool operator!=(const iterator& a, const iterator& b) {
        return a.cur_ != b.cur_;
      }
      friend bool operator==(const iterator& a, const iterator& b) {
        return a.cur_ == b.cur_;
      }

     private:
      NodeId cur_ = kNoNode;
      const std::vector<NodeId>* next_ = nullptr;
    };
    iterator begin() const { return iterator(first_, next_); }
    iterator end() const { return iterator(kNoNode, next_); }

   private:
    friend class Tree;
    ChildRange(NodeId first, const std::vector<NodeId>* next)
        : first_(first), next_(next) {}
    NodeId first_ = kNoNode;
    const std::vector<NodeId>* next_ = nullptr;
  };
  ChildRange ChildrenOf(NodeId id) const {
    return ChildRange(FirstChild(id), &next_sibling_);
  }

  // Snapshot of `id`'s children in attach order (safe to hold across tree
  // mutations, to sort, to index).
  std::vector<NodeId> Children(NodeId id) const;

  // --- mutations ----------------------------------------------------------

  // Attaches `child` (possibly the root of an orphaned fragment) under
  // `parent`. Requires spare capacity and that `parent` is rooted and not
  // inside `child`'s fragment. Recomputes layers of the whole fragment.
  void Attach(NodeId parent, NodeId child);

  // Detaches `child` from its parent (keeping its own children): it becomes
  // an orphaned fragment root. No-op layers (fixed on re-attach).
  void Detach(NodeId child);

  // Removes a departing member entirely: detaches it from its parent and
  // orphans each of its children (returned in `orphans`). The member record
  // stays (dead) for metrics.
  std::vector<NodeId> RemoveFromTree(NodeId id);

  // Marks a member dead (the session's departure bookkeeping; structural
  // detachment is RemoveFromTree's job).
  void MarkDead(NodeId id) {
    CheckId(id);
    alive_[static_cast<std::size_t>(id)] = 0;
  }

  // Overrides the out-degree constraint (tests shape small trees with it).
  void SetCapacity(NodeId id, int capacity) {
    CheckId(id);
    capacity_[static_cast<std::size_t>(id)] = capacity;
  }

  // --- queries ------------------------------------------------------------

  // True if walking the parent chain from `id` reaches the root.
  bool IsRooted(NodeId id) const;

  // True if `maybe_ancestor` lies on the parent chain of `id` (inclusive of
  // id itself when equal).
  bool IsInSubtreeOf(NodeId id, NodeId maybe_ancestor) const;

  // Applies `fn` to every member of the subtree rooted at `id`, excluding
  // `id` itself.
  void ForEachDescendant(NodeId id, const std::function<void(NodeId)>& fn) const;

  std::size_t CountDescendants(NodeId id) const;

  // Number of tree edges shared by the root paths of a and b -- the loss
  // correlation function w(a, b) of Section 4.1. Both must be rooted.
  int SharedPathEdges(NodeId a, NodeId b) const;

  // Maximum layer among rooted, alive members.
  int Depth() const;

  // Aborts if any structural invariant is violated (O(n); tests and
  // debug-path use).
  void CheckInvariants() const;

 private:
  // Bounds check on the hottest accessors in the simulation (parent-chain
  // walks hit these ~200 times per dispatched event at 10^5 members):
  // deep-tier only, per the check.h policy on hot-path assertions.
  void CheckId(NodeId id) const {
    OMCAST_DCHECK(id >= 0 && static_cast<std::size_t>(id) < members_.size(),
                "node id out of range");
  }
  // Intrusive child-list primitives. Append goes to the tail (== the old
  // vector push_back); unlink splices neighbors (== erase(find)); both keep
  // the attach order of the remaining children intact.
  void AppendChild(NodeId parent, NodeId child);
  void UnlinkChild(NodeId parent, NodeId child);
  void RecomputeLayers(NodeId fragment_root);
  std::vector<NodeId> PathToRoot(NodeId id) const;  // id first, root last

  std::vector<Member> members_;
  // SoA hot state, all indexed by NodeId.
  std::vector<NodeId> parent_;
  std::vector<NodeId> first_child_;
  std::vector<NodeId> last_child_;
  std::vector<NodeId> prev_sibling_;
  std::vector<NodeId> next_sibling_;
  std::vector<std::int32_t> child_count_;
  std::vector<std::int32_t> layer_;
  std::vector<std::int32_t> capacity_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint8_t> in_tree_;
};

}  // namespace omcast::overlay
