#include <gtest/gtest.h>

#include <memory>

#include "exp/scenario.h"
#include "net/topology.h"
#include "overlay/session.h"
#include "proto/longest_first.h"
#include "proto/min_depth.h"
#include "proto/relaxed_ordered.h"
#include "proto/selection.h"
#include "sim/simulator.h"

namespace omcast {
namespace {

using overlay::kNoNode;
using overlay::kRootId;
using overlay::NodeId;
using overlay::Session;
using overlay::SessionParams;
using overlay::Tree;

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest() {
    rnd::Rng topo_rng(1);
    topology_ = std::make_unique<net::Topology>(
        net::Topology::Generate(net::TinyTopologyParams(), topo_rng));
  }

  std::unique_ptr<Session> Make(std::unique_ptr<overlay::Protocol> p,
                                std::uint64_t seed = 3) {
    return std::make_unique<Session>(sim_, *topology_, std::move(p),
                                     SessionParams{}, seed);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topology_;
};

TEST_F(ProtocolTest, MinDepthPrefersHighestLayer) {
  auto s = Make(std::make_unique<proto::MinDepthProtocol>());
  // Fill the tree: first member lands under the root.
  const NodeId a = s->InjectMember(3.0, 1e9);
  sim_.RunUntil(1.0);
  EXPECT_EQ(s->tree().Parent(a), kRootId);
  // Root has 100 slots; the next hundred join at layer 1 before anyone
  // lands at layer 2.
  for (int i = 0; i < 50; ++i) s->InjectMember(0.5, 1e9);
  sim_.RunUntil(2.0);
  for (NodeId id : s->alive_members())
    EXPECT_EQ(s->tree().Layer(id), 1);
}

TEST_F(ProtocolTest, MinDepthBreaksTiesByDelay) {
  auto s = Make(std::make_unique<proto::MinDepthProtocol>());
  const NodeId a = s->InjectMember(2.0, 1e9);
  const NodeId b = s->InjectMember(2.0, 1e9);
  sim_.RunUntil(1.0);
  // Saturate the root so the next join must go to layer 2.
  Tree& tree = s->tree();
  tree.SetCapacity(kRootId, 2);
  const NodeId c = s->InjectMember(0.5, 1e9);
  sim_.RunUntil(2.0);
  const NodeId parent = tree.Parent(c);
  ASSERT_TRUE(parent == a || parent == b);
  const NodeId other = parent == a ? b : a;
  EXPECT_LE(s->DelayMs(c, parent), s->DelayMs(c, other));
}

TEST_F(ProtocolTest, LongestFirstPicksOldest) {
  auto s = Make(std::make_unique<proto::LongestFirstProtocol>());
  // The root is the oldest member, so early members chain under it first;
  // saturate the root to force a real choice.
  s->tree().SetCapacity(kRootId, 1);
  const NodeId a = s->InjectMember(5.0, 1e9);  // oldest non-root
  sim_.RunUntil(10.0);
  const NodeId b = s->InjectMember(5.0, 1e9);
  sim_.RunUntil(20.0);
  const NodeId c = s->InjectMember(0.5, 1e9);
  sim_.RunUntil(21.0);
  EXPECT_EQ(s->tree().Parent(a), kRootId);
  EXPECT_EQ(s->tree().Parent(b), a);  // a older than b
  EXPECT_EQ(s->tree().Parent(c), a);  // a oldest with spare capacity
}

TEST_F(ProtocolTest, RelaxedBoEvictsWeakerNode) {
  auto s = Make(std::make_unique<proto::RelaxedBandwidthOrderedProtocol>());
  Tree& tree = s->tree();
  tree.SetCapacity(kRootId, 1);  // force depth
  const NodeId weak = s->InjectMember(1.0, 1e9);
  sim_.RunUntil(1.0);
  ASSERT_EQ(tree.Parent(weak), kRootId);
  const NodeId strong = s->InjectMember(4.0, 1e9);
  sim_.RunUntil(2.0);
  // The strong newcomer replaces the weak layer-1 incumbent.
  EXPECT_EQ(tree.Parent(strong), kRootId);
  EXPECT_EQ(tree.Layer(strong), 1);
  // The evicted node rejoined below and was charged a reconnection.
  EXPECT_TRUE(tree.IsRooted(weak));
  EXPECT_EQ(tree.Layer(weak), 2);
  EXPECT_EQ(tree.Get(weak).reconnections, 1);
  tree.CheckInvariants();
}

TEST_F(ProtocolTest, RelaxedBoReplacementAdoptsChildren) {
  auto s = Make(std::make_unique<proto::RelaxedBandwidthOrderedProtocol>());
  Tree& tree = s->tree();
  tree.SetCapacity(kRootId, 1);
  // weak keeps one spare slot so the overlay retains placement headroom
  // (the administrator defers evictions when no slot exists anywhere).
  const NodeId weak = s->InjectMember(3.0, 1e9);
  sim_.RunUntil(1.0);
  const NodeId child1 = s->InjectMember(0.5, 1e9);
  const NodeId child2 = s->InjectMember(0.5, 1e9);
  sim_.RunUntil(2.0);
  ASSERT_EQ(tree.Parent(child1), weak);
  ASSERT_EQ(tree.Parent(child2), weak);
  const NodeId strong = s->InjectMember(10.0, 1e9);
  sim_.RunUntil(3.0);
  // Children moved under the replacement (bandwidth-ordered guarantees
  // capacity) and were charged reconnections. The evicted node's own rejoin
  // may cascade (it outranks its former free-rider children), so only the
  // lower bound on reconnections is fixed.
  EXPECT_GE(tree.Get(child1).reconnections + tree.Get(child2).reconnections, 2);
  EXPECT_GE(tree.Get(weak).reconnections, 1);
  EXPECT_EQ(tree.Layer(strong), 1);
  EXPECT_TRUE(tree.IsRooted(weak));
  EXPECT_TRUE(tree.IsRooted(child1));
  EXPECT_TRUE(tree.IsRooted(child2));
  // Bandwidth ordering holds along every parent-child edge that changed.
  for (NodeId id : {weak, child1, child2})
    EXPECT_GE(tree.Get(tree.Parent(id)).bandwidth, tree.Get(id).bandwidth);
  tree.CheckInvariants();
}

TEST_F(ProtocolTest, RelaxedToFreshJoinEvictsNobody) {
  auto s = Make(std::make_unique<proto::RelaxedTimeOrderedProtocol>());
  Tree& tree = s->tree();
  tree.SetCapacity(kRootId, 1);
  const NodeId elder = s->InjectMember(3.0, 1e9);
  sim_.RunUntil(100.0);
  const NodeId young = s->InjectMember(3.0, 1e9);
  sim_.RunUntil(101.0);
  // Fresh member (age 0) cannot outrank anyone: it stacks below.
  EXPECT_EQ(tree.Parent(elder), kRootId);
  EXPECT_EQ(tree.Parent(young), elder);
  EXPECT_EQ(tree.Get(elder).reconnections, 0);
}

TEST_F(ProtocolTest, RelaxedToRejoinerEvictsYounger) {
  auto s = Make(std::make_unique<proto::RelaxedTimeOrderedProtocol>());
  Tree& tree = s->tree();
  tree.SetCapacity(kRootId, 1);
  const NodeId elder = s->InjectMember(3.0, 1e9);
  sim_.RunUntil(50.0);
  const NodeId young = s->InjectMember(3.0, 1e9);
  sim_.RunUntil(60.0);
  ASSERT_EQ(tree.Parent(young), elder);
  // Make the elder's position collapse: detach and force a rejoin. The
  // elder (age 60) outranks the younger (age 10)... but the younger is at
  // layer 2 while layer 1 is now free, so check eviction from a crowded
  // layer instead: detach elder and let it rejoin.
  tree.Detach(elder);
  // `young` is orphaned inside elder's fragment? No: young is elder's child,
  // so it floats with the fragment. Move it out first to keep this test
  // focused on eviction.
  tree.Detach(young);
  tree.Attach(kRootId, young);
  s->ForceRejoin(elder);
  sim_.RunUntil(61.0);
  // The elder outranks the younger layer-1 incumbent and takes its place.
  EXPECT_EQ(tree.Parent(elder), kRootId);
  EXPECT_EQ(tree.Layer(elder), 1);
  EXPECT_TRUE(tree.IsRooted(young));
  EXPECT_GE(tree.Get(young).reconnections, 1);
  tree.CheckInvariants();
}

TEST_F(ProtocolTest, RelaxedToOverflowChildrenAreReparented) {
  auto s = Make(std::make_unique<proto::RelaxedTimeOrderedProtocol>());
  Tree& tree = s->tree();
  tree.SetCapacity(kRootId, 2);
  // Hand-assemble: root <- {incumbent, elder}; incumbent <- {k1, k2, k3}.
  const NodeId incumbent = s->InjectMember(3.0, 1e9);
  const NodeId elder = s->InjectMember(1.0, 1e9);
  const NodeId k1 = s->InjectMember(1.0, 1e9);
  const NodeId k2 = s->InjectMember(1.0, 1e9);
  const NodeId k3 = s->InjectMember(1.0, 1e9);
  sim_.RunUntil(1.0);
  for (NodeId id : {incumbent, elder, k1, k2, k3})
    if (tree.Parent(id) != kNoNode) tree.Detach(id);
  tree.Attach(kRootId, incumbent);
  tree.Attach(kRootId, elder);
  for (NodeId k : {k1, k2, k3}) tree.Attach(incumbent, k);
  // Ages: elder oldest, then k1 > k2 > k3 > incumbent.
  tree.Get(elder).join_time = -100.0;
  tree.Get(k1).join_time = -50.0;
  tree.Get(k2).join_time = -40.0;
  tree.Get(k3).join_time = -30.0;
  tree.Get(incumbent).join_time = 1.0;
  // Shrink the root and make the elder rejoin: it evicts the younger
  // incumbent but can only adopt one (the oldest) of its three children.
  tree.Detach(elder);
  tree.SetCapacity(kRootId, 1);
  s->ForceRejoin(elder);
  sim_.RunUntil(2.0);
  EXPECT_EQ(tree.Parent(elder), kRootId);
  ASSERT_EQ(tree.Children(elder).size(), 1u);
  EXPECT_EQ(tree.Children(elder).front(), k1);  // oldest child adopted
  // The overflow children were re-parented by the administrator (graceful:
  // reconnection but no disruption); the evicted incumbent rejoined alone
  // and took the one streaming disruption of the eviction.
  EXPECT_TRUE(tree.IsRooted(incumbent));
  EXPECT_TRUE(tree.IsRooted(k2));
  EXPECT_TRUE(tree.IsRooted(k3));
  EXPECT_GE(tree.Get(k2).reconnections, 1);
  EXPECT_GE(tree.Get(k3).reconnections, 1);
  EXPECT_EQ(tree.Get(k2).disruptions, 0);
  // The incumbent is disrupted by its eviction (possibly more than once:
  // the re-parented kids are older and may displace it again as they
  // cascade through the placement machinery).
  EXPECT_GE(tree.Get(incumbent).disruptions, 1);
  EXPECT_GE(tree.Get(incumbent).reconnections, 1);
  tree.CheckInvariants();
}

TEST_F(ProtocolTest, MinDepthAndLongestFirstImposeNoOverhead) {
  for (auto alg : {exp::Algorithm::kMinDepth, exp::Algorithm::kLongestFirst}) {
    sim::Simulator sim;
    Session s(sim, *topology_, exp::MakeProtocol(alg, core::RostParams{}),
              SessionParams{}, 9);
    s.Prepopulate(60);
    s.StartArrivals(60.0 / rnd::kMeanLifetimeSeconds);
    sim.RunUntil(2000.0);
    for (NodeId id : s.alive_members())
      EXPECT_EQ(s.tree().Get(id).reconnections, 0) << exp::AlgorithmLabel(alg);
  }
}

// Property sweep: every protocol keeps the tree structurally sound under
// heavy churn, across seeds.
class ProtocolChurnTest
    : public ::testing::TestWithParam<std::tuple<exp::Algorithm, int>> {};

TEST_P(ProtocolChurnTest, InvariantsHoldUnderChurn) {
  const auto [alg, seed] = GetParam();
  rnd::Rng topo_rng(11);
  const net::Topology topology =
      net::Topology::Generate(net::TinyTopologyParams(), topo_rng);
  sim::Simulator sim;
  Session s(sim, topology, exp::MakeProtocol(alg, core::RostParams{}),
            SessionParams{}, static_cast<std::uint64_t>(seed));
  s.Prepopulate(60);
  s.StartArrivals(60.0 / rnd::kMeanLifetimeSeconds);
  for (int step = 1; step <= 8; ++step) {
    sim.RunUntil(step * 250.0);
    s.tree().CheckInvariants();
  }
  // Population stays near the target (Little's law).
  EXPECT_GT(s.alive_count(), 20);
  EXPECT_LT(s.alive_count(), 130);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAndSeeds, ProtocolChurnTest,
    ::testing::Combine(::testing::Values(exp::Algorithm::kMinDepth,
                                         exp::Algorithm::kLongestFirst,
                                         exp::Algorithm::kRelaxedBo,
                                         exp::Algorithm::kRelaxedTo,
                                         exp::Algorithm::kRost),
                       ::testing::Values(1, 2, 3)),
    [](const auto& param_info) {
      std::string name = exp::AlgorithmLabel(std::get<0>(param_info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name + "_s" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace omcast
