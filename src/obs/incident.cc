#include "obs/incident.h"

#include <algorithm>
#include <cmath>

namespace omcast::obs {

namespace {

// Second-scale phase latencies: instant oracle rejoins up to multi-minute
// stalls behind a wedged fragment.
std::vector<double> PhaseBounds() {
  return {0.05, 0.1, 0.25, 0.5, 1, 2, 5, 10, 30, 60, 120, 300};
}

// Exact nearest-rank percentile of an unsorted latency list.
double Percentile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const auto n = static_cast<double>(v.size());
  const auto rank = static_cast<std::size_t>(std::ceil(q * n));
  return v[std::min(v.size() - 1, rank > 0 ? rank - 1 : 0)];
}

void AddPhaseStats(std::map<std::string, double>& out, const std::string& name,
                   const std::vector<double>& v) {
  if (v.empty()) return;
  double sum = 0.0;
  double max = v.front();
  for (const double x : v) {
    sum += x;
    max = std::max(max, x);
  }
  out[name + ".count"] = static_cast<double>(v.size());
  out[name + ".mean_s"] = sum / static_cast<double>(v.size());
  out[name + ".p50_s"] = Percentile(v, 0.5);
  out[name + ".p99_s"] = Percentile(v, 0.99);
  out[name + ".max_s"] = max;
}

}  // namespace

int IncidentLog::RegimeOf(std::int64_t subject) const {
  const auto it = regime_.find(subject);
  return it != regime_.end() ? it->second : 0;
}

void IncidentLog::OpenIncident(std::int64_t subject, Cause cause, double t) {
  if (open_.contains(subject)) CloseIncident(subject, Close::kSuperseded, t);
  Incident inc;
  inc.subject = subject;
  inc.cause = cause;
  inc.t_open = t;
  open_.emplace(subject, inc);
  ++opened_;
  ++cause_counts_[static_cast<int>(cause)];
}

void IncidentLog::CloseIncident(std::int64_t subject, Close close, double t) {
  const auto it = open_.find(subject);
  if (it == open_.end()) return;
  Incident inc = it->second;
  open_.erase(it);
  inc.close = close;
  inc.t_close = t;
  if (close == Close::kRecovered) total_s_.push_back(t - inc.t_open);
  ++close_counts_[static_cast<int>(close)];
  closed_.push_back(inc);
}

void IncidentLog::Reattached(std::int64_t subject, double t) {
  const auto it = open_.find(subject);
  if (it == open_.end()) return;  // ordinary (re)join, no incident open
  Incident& inc = it->second;
  if (inc.t_reattach >= 0.0) return;  // already reattached, awaiting cadence
  inc.t_reattach = t;
  ++reattached_;
  reattach_s_.push_back(t - inc.t_open);
  // A member whose playback never left nominal cadence (or has no playback
  // model at all) is fully recovered the moment it reattaches; one that is
  // degraded/stalled stays open until kPlaybackRegime says nominal again.
  if (RegimeOf(subject) <= 0) CloseIncident(subject, Close::kRecovered, t);
}

void IncidentLog::OnEvent(const TraceEvent& ev) {
  switch (ev.kind) {
    case EventKind::kOrphaned: {
      const Cause cause = ev.detail == 1   ? Cause::kEviction
                          : ev.detail == 2 ? Cause::kDissolve
                                           : Cause::kParentDeath;
      OpenIncident(ev.subject, cause, ev.t);
      break;
    }
    case EventKind::kReconnectStart:
      OpenIncident(ev.subject, Cause::kReconnect, ev.t);
      break;
    case EventKind::kHeartbeatMiss: {
      const auto it = open_.find(ev.subject);
      if (it != open_.end() && it->second.t_suspect < 0.0) {
        it->second.t_suspect = ev.t;
        suspect_s_.push_back(ev.t - it->second.t_open);
      }
      break;
    }
    case EventKind::kSuspicion: {
      const auto it = open_.find(ev.subject);
      if (it != open_.end() && it->second.t_detect < 0.0) {
        it->second.t_detect = ev.t;
        detect_s_.push_back(ev.t - it->second.t_open);
      }
      break;
    }
    case EventKind::kJoin:
    case EventKind::kRejoin:
    case EventKind::kCliqueLocalRecovery:
    case EventKind::kCliqueBackboneReattach:
      Reattached(ev.subject, ev.t);
      break;
    case EventKind::kReconnectAttached:
      if (!open_.contains(ev.subject))
        ++orphan_events_;  // terminal edge with no kReconnectStart seen
      Reattached(ev.subject, ev.t);
      break;
    case EventKind::kReconnectAbandoned:
      if (open_.contains(ev.subject))
        CloseIncident(ev.subject, Close::kAbandoned, ev.t);
      else
        ++orphan_events_;  // includes the no-host abandon (subject -1)
      break;
    case EventKind::kLeave:
      left_at_[ev.subject] = ev.t;
      CloseIncident(ev.subject, Close::kDeparted, ev.t);
      break;
    case EventKind::kPlaybackRegime: {
      regime_[ev.subject] = static_cast<int>(ev.detail);
      if (ev.detail == 0) {
        const auto it = open_.find(ev.subject);
        if (it != open_.end() && it->second.t_reattach >= 0.0) {
          recover_s_.push_back(ev.t - it->second.t_reattach);
          CloseIncident(ev.subject, Close::kRecovered, ev.t);
        }
      }
      break;
    }
    case EventKind::kSwitchAttempt:
      // A fresh attempt supersedes an unfinished handshake by the same
      // initiator (its commit/abort never made the trace).
      open_switches_[ev.subject] = OpenSwitch{ev.t, -1.0};
      ++switch_attempts_;
      break;
    case EventKind::kLockGrant: {
      // subject leased itself to peer: peer is the initiating switcher.
      const auto it = open_switches_.find(ev.peer);
      if (it != open_switches_.end() && it->second.t_lock < 0.0) {
        it->second.t_lock = ev.t;
        switch_lock_s_.push_back(ev.t - it->second.t_attempt);
      }
      break;
    }
    case EventKind::kSwitchCommit: {
      const auto it = open_switches_.find(ev.subject);
      if (it != open_switches_.end()) {
        switch_commit_s_.push_back(ev.t - it->second.t_attempt);
        open_switches_.erase(it);
        ++switch_commits_;
      }
      break;
    }
    case EventKind::kSwitchAbort: {
      const auto it = open_switches_.find(ev.subject);
      if (it != open_switches_.end()) {
        open_switches_.erase(it);
        ++switch_aborts_;
      }
      break;
    }
    case EventKind::kCliqueDelegatePromoted: {
      ++promotions_;
      const auto it = left_at_.find(ev.peer);
      if (it != left_at_.end()) promotion_s_.push_back(ev.t - it->second);
      break;
    }
    default:
      break;  // the remaining kinds carry no incident lifecycle edge
  }
}

void IncidentLog::Finalize(double t) {
  // std::map iteration: stragglers close in subject order, deterministically.
  while (!open_.empty())
    CloseIncident(open_.begin()->first, Close::kOpenAtEnd, t);
  open_switches_.clear();
}

std::map<std::string, double> IncidentLog::FlatStats() const {
  std::map<std::string, double> out;
  out["incident.count"] = static_cast<double>(opened_);
  out["incident.cause.parent_death"] = static_cast<double>(cause_counts_[0]);
  out["incident.cause.eviction"] = static_cast<double>(cause_counts_[1]);
  out["incident.cause.dissolve"] = static_cast<double>(cause_counts_[2]);
  out["incident.cause.reconnect"] = static_cast<double>(cause_counts_[3]);
  out["incident.reattached"] = static_cast<double>(reattached_);
  out["incident.recovered"] = static_cast<double>(close_counts_[0]);
  out["incident.abandoned"] = static_cast<double>(close_counts_[1]);
  out["incident.departed"] = static_cast<double>(close_counts_[2]);
  out["incident.superseded"] = static_cast<double>(close_counts_[3]);
  out["incident.open_at_end"] = static_cast<double>(close_counts_[4]);
  out["incident.orphan_events"] = static_cast<double>(orphan_events_);
  out["incident.switch.attempts"] = static_cast<double>(switch_attempts_);
  out["incident.switch.commits"] = static_cast<double>(switch_commits_);
  out["incident.switch.aborts"] = static_cast<double>(switch_aborts_);
  out["incident.promotions"] = static_cast<double>(promotions_);
  AddPhaseStats(out, "incident.phase.suspect", suspect_s_);
  AddPhaseStats(out, "incident.phase.detect", detect_s_);
  AddPhaseStats(out, "incident.phase.reattach", reattach_s_);
  AddPhaseStats(out, "incident.phase.recover", recover_s_);
  AddPhaseStats(out, "incident.phase.total", total_s_);
  AddPhaseStats(out, "incident.phase.switch_lock", switch_lock_s_);
  AddPhaseStats(out, "incident.phase.switch_commit", switch_commit_s_);
  AddPhaseStats(out, "incident.phase.promotion", promotion_s_);
  return out;
}

void IncidentLog::ExportTo(Registry& reg) const {
  reg.Count("incident.count", static_cast<double>(opened_));
  reg.Count("incident.reattached", static_cast<double>(reattached_));
  reg.Count("incident.recovered", static_cast<double>(close_counts_[0]));
  reg.Count("incident.abandoned", static_cast<double>(close_counts_[1]));
  reg.Count("incident.departed", static_cast<double>(close_counts_[2]));
  reg.Count("incident.superseded", static_cast<double>(close_counts_[3]));
  reg.Count("incident.open_at_end", static_cast<double>(close_counts_[4]));
  reg.Count("incident.orphan_events", static_cast<double>(orphan_events_));
  const struct {
    const char* name;
    const std::vector<double>& values;
  } phases[] = {
      {"incident.phase.suspect_s", suspect_s_},
      {"incident.phase.detect_s", detect_s_},
      {"incident.phase.reattach_s", reattach_s_},
      {"incident.phase.recover_s", recover_s_},
      {"incident.phase.total_s", total_s_},
      {"incident.phase.switch_lock_s", switch_lock_s_},
      {"incident.phase.switch_commit_s", switch_commit_s_},
      {"incident.phase.promotion_s", promotion_s_},
  };
  for (const auto& phase : phases)
    for (const double v : phase.values)
      reg.Observe(phase.name, PhaseBounds(), v);
}

}  // namespace omcast::obs
