file(REMOVE_RECURSE
  "CMakeFiles/test_session_dynamics.dir/test_session_dynamics.cc.o"
  "CMakeFiles/test_session_dynamics.dir/test_session_dynamics.cc.o.d"
  "test_session_dynamics"
  "test_session_dynamics.pdb"
  "test_session_dynamics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_session_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
