// Gossip-based membership service.
//
// The paper assumes that "during the multicast process, nodes periodically
// exchange neighbor information with each other, so each node will know
// about a medium-sized (e.g., 100) subset of other nodes" (Section 4.1).
// The experiment harness models this abstractly with uniform sampling; this
// module implements the real protocol so that assumption can be validated
// (see bench/ablation_gossip and the gossip tests):
//
//   * every member keeps a bounded partial view (default 100 entries) of
//     (member id, last-heard time) records;
//   * a fresh member bootstraps its view from the source and its parent;
//   * every period each member picks a random partner from its view and
//     performs a push-pull exchange of a random slice of entries; contacting
//     a dead partner removes it from the view;
//   * entries not refreshed within a TTL are pruned, so departed members
//     wash out of the views over a few periods.
//
// GossipService implements MembershipOracle, so a Session can run all
// join/recovery discovery over these views instead of uniform sampling.
#pragma once

#include <unordered_map>
#include <vector>

#include "overlay/session.h"
#include "rand/rng.h"
#include "sim/fault_plane.h"

namespace omcast::overlay {

struct GossipParams {
  int view_size = 100;       // max entries per member
  double period_s = 30.0;    // exchange period
  int exchange_size = 50;    // entries shipped per push-pull
  double entry_ttl_s = 300.0;  // prune entries older than this
};

class GossipService final : public MembershipOracle {
 public:
  // Installs hooks on `session`; construct before driving the session and
  // call session.SetMembershipOracle(&service) to route discovery here.
  GossipService(Session& session, GossipParams params, std::uint64_t seed);

  std::vector<NodeId> KnownMembers(Session& session, NodeId requester,
                                   int k) override;

  // Routes exchange slices over real (lossy, delayed) messages: a lost
  // request drops the whole push-pull, a lost reply drops the pull half,
  // and delayed slices can arrive stale (rejected by Merge's TTL filter,
  // counted in stale_rejections). The plane must outlive the run; nullptr
  // restores the synchronous exchange.
  void SetFaultPlane(sim::FaultPlane* fault_plane) {
    fault_plane_ = fault_plane;
  }

  // --- introspection (tests / ablation) -----------------------------------
  std::size_t ViewSize(NodeId member) const;
  // Fraction of the member's view entries that are currently alive.
  double LiveFraction(NodeId member) const;
  long exchanges_performed() const { return exchanges_; }
  long dead_contacts() const { return dead_contacts_; }
  // Incoming records already past the TTL when they arrived (only possible
  // when a FaultPlane delays slices in flight); rejecting them keeps stale
  // views from circulating as an epidemic.
  long stale_rejections() const { return stale_rejections_; }
  // Ages (now - heard_at) of the member's view entries, for tests.
  std::vector<double> EntryAges(NodeId member, double now) const;
  // Number of gossip ticks the member has executed (tests/debug).
  long TickCount(NodeId member) const;

 private:
  struct Entry {
    NodeId id = kNoNode;
    double heard_at = 0.0;
  };
  struct View {
    std::vector<Entry> entries;
    bool active = false;
    long ticks = 0;
    sim::EventId timer = sim::kInvalidEventId;
  };

  View& ViewFor(NodeId member);
  void Activate(NodeId member);
  void Deactivate(NodeId member);
  void Tick(NodeId member);
  // Merges `incoming` into `member`'s view: freshest record per id wins,
  // oldest entries are dropped beyond view_size, self-records are ignored.
  void Merge(NodeId member, const std::vector<Entry>& incoming);
  std::vector<Entry> SampleSlice(NodeId member);
  void Prune(View& view, double now);

  Session& session_;
  GossipParams params_;
  rnd::Rng rng_;
  // Keyed map (not a vector): Tick/Merge hold references across calls that
  // may create other members' views, so reference stability is required.
  // Never iterated -- all access is point lookup by member id, so the
  // nondeterministic bucket order cannot leak into gossip decisions.
  // omcast-lint: allow(unordered-iter)
  std::unordered_map<NodeId, View> views_;
  sim::FaultPlane* fault_plane_ = nullptr;  // nullptr: synchronous exchange
  long exchanges_ = 0;
  long dead_contacts_ = 0;
  long stale_rejections_ = 0;
};

}  // namespace omcast::overlay
