// Fixture [uninit-member]: scalar data members without initializers read
// indeterminate values (UB, and a classic nondeterminism source).
#include <cstdint>

namespace fixture {

struct CellStats {
  int delivered;                 // expect(uninit-member)
  double ratio;                  // expect(uninit-member)
  std::uint64_t seed;            // expect(uninit-member)
  int attempts = 0;              // negative: initialized
  double loss{0.0};              // negative: brace-initialized
  int Sum() const {
    int acc = delivered;         // negative: local scope, not a member decl
    return acc + attempts;
  }
};

// Negative: locals in free functions are out of scope for this rule.
inline int Scratch() {
  int acc;
  acc = 3;
  return acc;
}

}  // namespace fixture
