// Fig. 10: protocol overhead -- average number of reconnections the
// optimization mechanism imposes on a member during its lifetime, vs
// network size. Minimum-depth and longest-first impose none by
// construction; ROST should stay far below one; the centralized relaxed
// BO/TO pay the most.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 10 -- protocol overhead (reconnections per node)",
                     env);

  const runner::GridSpec spec = bench::TreeSizeSweepSpec(
      env, "fig10_protocol_cost",
      "protocol overhead (reconnections per node)", "reconnections");
  const runner::ResultsSink sink = bench::RunGridBench(env, spec);
  bench::PrintMetricTable(
      spec, sink, "reconnections", 3,
      "avg optimization-induced reconnections per member lifetime");
  bench::MaybePrintProfile(env);
  return 0;
}
