// A multicast session ties together the simulation engine, the underlying
// network topology, the multicast tree, a tree-construction protocol, and
// the churn workload of paper Section 5:
//
//   * Poisson arrivals with rate lambda = M / 1809 (Little's law),
//   * lifetimes ~ Lognormal(5.5, 2.0), abrupt (unannounced) departures,
//   * bandwidths ~ BoundedPareto(1.2, 0.5, 100),
//   * every departure disrupts all descendants; orphaned children rejoin
//     through the protocol under test.
//
// Steady state is reached by *equilibrium pre-population*: the session can
// start with M members whose (age, residual lifetime) pairs are drawn from
// the stationary renewal distribution (length-biased lifetime L~, age U*L~),
// so population and age mix are immediately stationary instead of needing
// ~100k simulated seconds for the heavy-tailed lifetime mix to converge.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/topology.h"
#include "overlay/tree.h"
#include "rand/distributions.h"
#include "rand/rng.h"
#include "sim/simulator.h"

namespace omcast::obs {
class Registry;
class Tracer;
}  // namespace omcast::obs

namespace omcast::sim {
class FaultPlane;
}  // namespace omcast::sim

namespace omcast::overlay {

class Session;

// How members discover other members. The default oracle models a
// well-mixed gossip substrate by sampling uniformly from the live
// population; GossipService (overlay/gossip.h) implements the real thing
// with bounded per-member views and periodic push-pull exchanges. Returned
// ids may be stale (dead / detached); the Session filters them.
class MembershipOracle {
 public:
  virtual ~MembershipOracle() = default;
  virtual std::vector<NodeId> KnownMembers(Session& session, NodeId requester,
                                           int k) = 0;
};

// Tree-construction protocol under test (min-depth, longest-first, relaxed
// BO/TO, ROST). Implementations attach members, possibly restructure the
// tree (evictions, switches), and may keep per-node state via the hooks.
class Protocol {
 public:
  virtual ~Protocol() = default;
  virtual std::string name() const = 0;

  // Attempts to place `id` (a fresh member or an orphaned fragment root)
  // into the tree; returns true when attached. On false the session retries
  // after params().join_retry_delay_s.
  virtual bool TryAttach(Session& session, NodeId id) = 0;

  // Called after `id` was successfully attached (fresh join, rejoin, or
  // eviction-triggered rejoin).
  virtual void OnAttached(Session& session, NodeId id);

  // Called when `id` departs (cleanup of per-node protocol state).
  virtual void OnDeparture(Session& session, NodeId id);

  // Called when `id` becomes an orphaned fragment root (its parent failed
  // or it was evicted) and is about to re-enter the join path.
  virtual void OnOrphaned(Session& session, NodeId id);

  // Called once per member during equilibrium pre-population, after it
  // attached. Protocols with periodic restructuring replay here the
  // operations the member would already have performed during its pre-t0
  // life (e.g. ROST fast-forwards its BTP switches), so the t=0 tree is the
  // protocol's own steady-state shape rather than a freshly-joined one.
  virtual void OnPrepopulated(Session& session, NodeId id);

  // --- chaos/observability seams (protocol-agnostic driver contract) -------
  // The scenario and chaos runners talk to every protocol through these
  // three hooks instead of downcasting, so a new protocol plugs into the
  // harness by overriding what applies and ignoring the rest.

  // Routes the protocol's own control traffic over real (lossy) messages.
  // The plane must outlive the run; nullptr restores the oracle path.
  // Default: ignored (the protocol has no separately-modeled control plane).
  virtual void SetFaultPlane(sim::FaultPlane* fault_plane);

  // End-of-run protocol counter snapshot (the per-protocol message costs
  // behind Fig. 10), namespaced by the protocol ("rost.*", "clique.*").
  // Default: exports nothing.
  virtual void ExportCounters(obs::Registry& reg) const;

  // Locks/leases still marked held past their expiry at time `now` -- the
  // chaos harness's "no wedged locks" health gate. Protocols without a
  // locking discipline are trivially healthy (default 0).
  virtual long WedgedLeases(sim::Time now) const;
};

struct SessionParams {
  double stream_rate = 1.0;
  double root_bandwidth = 100.0;
  // How many members a (re)joining node discovers via gossip (Section 3.3
  // uses "say, 100").
  int candidate_sample_size = 100;
  double join_retry_delay_s = 1.0;
  // Failed joins back off exponentially up to this factor of the base delay.
  int join_retry_max_backoff = 8;
  // Time between a parent failure and the orphan's first join attempt
  // (failure detection + parent re-finding). The structural experiments use
  // 0 (instant rejoin, as in the paper's tree-level study); the
  // packet-level simulator sets the paper's 15 s so the data-plane hole is
  // physically present in the tree.
  double rejoin_delay_s = 0.0;
  // After this many consecutive failed rejoin attempts, a fragment root
  // releases its children: their own failure detection has long fired (no
  // data is flowing), so in a real deployment they rejoin independently
  // rather than wait on a stuck ancestor. This keeps a stuck fragment from
  // holding its whole subtree's bandwidth hostage.
  int fragment_dissolve_after_attempts = 3;
  // How long the broadcast has been running before t=0. Pre-populated ages
  // are drawn from the stationary renewal distribution *truncated* at this
  // horizon: a live-streaming session is hours old, not infinitely old, and
  // with the heavy-tailed lifetime distribution an untruncated stationary
  // state is dominated by members aged 10^5..10^6 s, which collapses any
  // bandwidth-time trade-off into pure time ordering. Six hours matches the
  // horizon of the paper's own experiments (Figs. 6/9 span 300+ minutes of
  // steady state). Set to 0 for the unbounded stationary state.
  double prepopulate_age_horizon_s = 21600.0;
  // When true, the session does not schedule orphan rejoins itself: an
  // external failure detector (overlay/heartbeat.h) observes the silence,
  // declares the parent dead, and calls RejoinOrphan(). Replaces the fixed
  // rejoin_delay_s oracle with real detection latency under message loss.
  bool external_failure_detection = false;
  // Re-entry (ScheduleReentry) retries a returning member's join at most
  // this many times before abandoning it: unlike a fresh join, a returning
  // viewer gives up and leaves for good when the overlay repeatedly refuses
  // it. Retries back off exponentially (base join_retry_delay_s) up to
  // reentry_backoff_cap times the base delay.
  int reentry_max_attempts = 6;
  int reentry_backoff_cap = 16;
  // Route join-candidate collection through the seed's cost model: the
  // by-value sampling overload that copies the whole alive-member vector
  // per join (O(population)), and a freshly zeroed O(members) dedup bitmap
  // per join pool. Both paths produce bit-identical results -- the sampling
  // overloads draw the same variate sequence and the dedup semantics are
  // unchanged -- only the hot-path cost differs. The bench/scale_sweep
  // baseline column sets this so the committed trajectory measures the seed
  // cost model, not just the queue/oracle swap.
  bool seed_baseline_sampling = false;
  rnd::BoundedPareto bandwidth_dist = rnd::PaperBandwidthDist();
  rnd::LognormalDist lifetime_dist = rnd::PaperLifetimeDist();
};

// Aborts unless the parameter combination is self-consistent (positive
// rates, a root that can feed at least one child, sane retry/backoff
// bounds). Called by the Session constructor; exposed for tests.
void ValidateSessionParams(const SessionParams& params);

// Observation points for metrics collectors and the streaming layer.
// Multiple observers may register for each event; they fire in
// registration order.
class SessionHooks {
 public:
  // An alive member departed (fired before the tree is modified, so
  // observers can still inspect the failed node's subtree).
  void AddOnDeparture(std::function<void(NodeId departed)> fn);
  // `affected` suffers a streaming disruption because ancestor `failed`
  // departed abruptly.
  void AddOnDisruption(std::function<void(NodeId affected, NodeId failed)> fn);
  // `id` (re)attached to the tree under `parent`.
  void AddOnAttached(std::function<void(NodeId id, NodeId parent)> fn);
  // Departed member's final record (metrics accumulation point).
  void AddOnMemberDeparted(std::function<void(const Member&)> fn);

  void FireDeparture(NodeId departed) const;
  void FireDisruption(NodeId affected, NodeId failed) const;
  void FireAttached(NodeId id, NodeId parent) const;
  void FireMemberDeparted(const Member& member) const;

 private:
  std::vector<std::function<void(NodeId)>> on_departure_;
  std::vector<std::function<void(NodeId, NodeId)>> on_disruption_;
  std::vector<std::function<void(NodeId, NodeId)>> on_attached_;
  std::vector<std::function<void(const Member&)>> on_member_departed_;
};

class Session {
 public:
  Session(sim::Simulator& simulator, const net::Topology& topology,
          std::unique_ptr<Protocol> protocol, SessionParams params,
          std::uint64_t seed);
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // --- workload driving ----------------------------------------------------

  // Instantly creates `count` members with stationary (age, residual
  // lifetime) pairs and joins them in random order. Call at time 0.
  void Prepopulate(int count);

  // Starts Poisson arrivals at `rate_per_s`; runs until StopArrivals().
  void StartArrivals(double rate_per_s);
  void StopArrivals();

  // Creates and joins one member with explicit properties (used to plant
  // the "typical member" of Figs 6 and 9 and for tests). Lifetime counts
  // from now.
  NodeId InjectMember(double bandwidth, double lifetime_s);

  // --- accessors -----------------------------------------------------------
  sim::Simulator& simulator() { return sim_; }
  const net::Topology& topology() const { return topology_; }
  Tree& tree() { return tree_; }
  const Tree& tree() const { return tree_; }
  rnd::Rng& rng() { return rng_; }
  const SessionParams& params() const { return params_; }
  Protocol& protocol() { return *protocol_; }
  SessionHooks& hooks() { return hooks_; }

  int alive_count() const { return static_cast<int>(alive_.size()); }
  // Alive members (excluding the root), unspecified order.
  const std::vector<NodeId>& alive_members() const { return alive_; }

  // Up to `k` alive members that are attached through to the root and are
  // outside the fragment of `exclude` (pass kNoNode for fresh joins),
  // discovered through the membership oracle (uniform sampling by default).
  std::vector<NodeId> SampleCandidates(int k, NodeId exclude);

  // Replaces the default (uniform) membership discovery; non-owning, the
  // oracle must outlive the session's run. Pass nullptr to restore the
  // default.
  void SetMembershipOracle(MembershipOracle* oracle) { oracle_ = oracle; }

  // Attaches a protocol trace bus (obs/trace.h); non-owning, must outlive
  // the run. The session emits membership events and every protocol
  // component (ROST, heartbeat, gossip, the packet stream) emits through
  // this same pointer, so one SetTracer call instruments the whole stack.
  // Null (the default) keeps every emission site at a single branch.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() { return tracer_; }

  // Discovery pool for joining: the union of a gossip sample (deep slots)
  // and the first `k` members in BFS order from the root (the "search from
  // the tree root downward" of the minimum-depth algorithm -- reachable in
  // practice because every member's gossip record carries its full ancestor
  // chain). Members of `exclude`'s fragment never appear.
  std::vector<NodeId> CollectJoinPool(int k, NodeId exclude);

  // --- delay oracle --------------------------------------------------------
  double DelayMs(NodeId a, NodeId b) const;
  // Sum of per-hop delays along the overlay path root -> id (ms).
  double OverlayDelayMs(NodeId id) const;
  // Direct unicast delay root -> id (ms).
  double UnicastDelayMs(NodeId id) const;
  // OverlayDelayMs / UnicastDelayMs (the paper's stretch).
  double Stretch(NodeId id) const;

  // --- operations for protocols -------------------------------------------

  // Re-enqueues an evicted member for joining and charges it one
  // reconnection (protocol-overhead accounting). The caller must already
  // have detached it (it is a fragment root).
  void ForceRejoin(NodeId id);

  // Charges one streaming disruption to `member` and every member of its
  // current subtree. Eviction-based protocols call this for the evicted
  // node: unlike ROST's locked parent-child swap (whose participants stay
  // fed through the grandparent during the handshake), an evicted member
  // loses its upstream feed until its rejoin completes, and the children it
  // keeps lose theirs with it.
  void ChargeDisruption(NodeId member);

  // Total members that ever existed (including departed; excludes root).
  int total_members_created() const { return total_created_; }
  // Arrivals dropped because every stub host was occupied.
  int dropped_arrivals() const { return dropped_arrivals_; }
  // Join attempts that found no available parent (retried later).
  long failed_join_attempts() const { return failed_join_attempts_; }

  // Forces `id` to depart now (tests / adversarial scenarios).
  void DepartNow(NodeId id);

  // Re-enters the join path for an orphaned fragment root whose parent
  // failure an external detector has just observed (requires
  // params().external_failure_detection; no-op if the member died or
  // already reattached in the meantime).
  void RejoinOrphan(NodeId id);

  // --- reconnect / re-entry ------------------------------------------------
  // Models a departed-then-returning viewer: after `downtime_s`, a successor
  // member re-enters with `departed`'s bandwidth (the same household, a new
  // session) and lifetime `lifetime_s`, joining through the BOUNDED-retry
  // re-entry path -- at most params().reentry_max_attempts tries with
  // exponential backoff, then the member abandons and departs. The trace bus
  // sees kReconnectStart at re-entry, then kReconnectAttached or
  // kReconnectAbandoned (detail = attempts used). `departed` may still be
  // alive at call time (e.g. scheduling a return around a planned kill); the
  // successor is created only when the downtime elapses.
  void ScheduleReentry(NodeId departed, double downtime_s, double lifetime_s);

  // Predecessor of a re-entered member; kNoNode for ordinary members.
  NodeId ReentryPredecessor(NodeId id) const;

  long reentries_scheduled() const { return reentries_scheduled_; }
  long reentries_attached() const { return reentries_attached_; }
  long reentries_abandoned() const { return reentries_abandoned_; }
  // Re-entries still in downtime or mid-retry. Zero after a run settles:
  // every scheduled re-entry must resolve to attached or abandoned.
  long reentries_pending() const {
    return reentries_scheduled_ - reentries_attached_ - reentries_abandoned_;
  }

 private:
  void ScheduleNextArrival();
  void Arrive();
  NodeId CreateMemberRecord(double bandwidth, double lifetime_s,
                            sim::Time join_time);
  void ScheduleDeparture(NodeId id);
  void HandleDeparture(NodeId id);
  void TryJoin(NodeId id);
  // Creates the successor member once a re-entry's downtime has elapsed and
  // starts its bounded-retry join.
  void BeginReentry(NodeId predecessor, double lifetime_s);
  // One bounded-retry join attempt of a re-entered member; terminal states
  // are attached (kReconnectAttached) and abandoned (kReconnectAbandoned).
  void ReentryAttempt(NodeId id, NodeId predecessor);
  // Emits kJoin (first attach) or kRejoin on the trace bus and marks the
  // member as ever-attached. Call right after a successful attach.
  void TraceAttached(NodeId id);
  net::HostId AllocateHost();
  void ReleaseHost(net::HostId host);
  void RemoveFromAlive(NodeId id);

  sim::Simulator& sim_;
  const net::Topology& topology_;
  Tree tree_;
  std::unique_ptr<Protocol> protocol_;
  SessionParams params_;
  rnd::Rng rng_;
  SessionHooks hooks_;
  MembershipOracle* oracle_ = nullptr;  // nullptr: uniform sampling
  obs::Tracer* tracer_ = nullptr;       // nullptr: tracing off

  std::vector<NodeId> alive_;           // alive members, root excluded
  std::vector<int> alive_index_;        // NodeId -> index in alive_ (-1 if not)
  std::vector<net::HostId> free_hosts_; // stack of unoccupied stub hosts
  std::vector<sim::EventId> departure_event_;  // NodeId -> departure timer
  std::vector<int> join_attempts_;  // consecutive failed attempts per member
  // NodeId -> has this member ever been attached (distinguishes the kJoin
  // trace event from kRejoin; Member.reconnections only counts evictions).
  std::vector<char> ever_attached_;
  // NodeId -> predecessor for re-entered members (kNoNode otherwise).
  std::vector<NodeId> reentry_predecessor_;
  // Epoch-stamped dedup scratch for CollectJoinPool: a slot counts as "seen"
  // when its stamp equals the current epoch, so marking the whole set clean
  // is a counter bump, not an O(members) clear per join.
  std::vector<int> seen_stamp_;
  int seen_epoch_ = 0;

  bool arrivals_on_ = false;
  double arrival_rate_ = 0.0;
  int total_created_ = 0;
  int dropped_arrivals_ = 0;
  long failed_join_attempts_ = 0;
  long reentries_scheduled_ = 0;
  long reentries_attached_ = 0;
  long reentries_abandoned_ = 0;
};

}  // namespace omcast::overlay
