// Fig. 12: average starving time ratio vs network size for recovery group
// sizes 1-4 (minimum-depth tree, CER recovery with MLC-selected groups,
// 10 pkt/s stream, 5 s playback buffer, 5 s detection + 10 s rejoin).
// Increasing the group from 1 to 3 should cut the ratio by about an order
// of magnitude.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 12 -- avg starving time ratio vs group size", env);

  util::Table table({"size", "group=1", "group=2", "group=3", "group=4"});
  for (const int size : env.sizes) {
    std::vector<double> row;
    for (int group = 1; group <= 4; ++group) {
      stream::StreamParams sp;
      sp.recovery_group_size = group;
      double sum = 0.0;
      for (int rep = 0; rep < env.reps; ++rep) {
        exp::ScenarioConfig config = env.BaseConfig();
        config.population = size;
        config.seed = env.seed + static_cast<std::uint64_t>(rep);
        sum += RunStreamScenario(env.topology, exp::Algorithm::kMinDepth,
                                 config, sp)
                   .avg_starving_ratio;
      }
      row.push_back(100.0 * sum / env.reps);
    }
    table.AddRow(std::to_string(size), row);
  }
  table.Print(std::cout, "avg starving time ratio (%), min-depth tree + CER");
  return 0;
}
