// Fixture: unordered containers and iteration over them must be flagged.
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Registry {
  std::unordered_map<int, double> weights;  // expect(unordered-iter)
};

double SumHashOrder() {
  std::unordered_set<int> ids = {1, 2, 3};  // expect(unordered-iter)
  double sum = 0.0;
  for (int id : ids) sum += id;  // expect(unordered-iter)
  return sum;
}

// Annotated declaration: point lookups only, never iterated.
// omcast-lint: allow(unordered-iter)
std::unordered_map<int, int> g_lookup;

// Deterministic containers are fine.
std::vector<int> g_order = {1, 2, 3};
double SumVector() {
  double sum = 0.0;
  for (int v : g_order) sum += v;
  return sum;
}
