#include "sim/calendar_queue.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/check.h"

namespace omcast::sim {

namespace {

constexpr std::size_t kMinBuckets = 16;
// Bucket-count ceiling: 2M vector headers are ~50MB, enough days for tens of
// millions of pending events at occupancy ~8 before the cap binds.
constexpr std::size_t kMaxBuckets = std::size_t{1} << 21;
constexpr std::size_t kMinMapCells = 32;
constexpr std::size_t kWidthSampleCap = 1024;

std::size_t NextPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// splitmix64 finalizer: event ids are sequential, so the map needs a real
// mixer to avoid clustering every probe sequence.
std::uint64_t HashId(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

CalendarQueue::CalendarQueue() {
  buckets_.resize(kMinBuckets);
  bucket_mask_ = kMinBuckets - 1;
  map_.resize(kMinMapCells);
  map_mask_ = kMinMapCells - 1;
}

std::int32_t CalendarQueue::AllocSlot() {
  if (free_head_ >= 0) {
    const std::int32_t slot = free_head_;
    free_head_ = slab_[static_cast<std::size_t>(slot)].next;
    return slot;
  }
  util::Check(slab_.size() < static_cast<std::size_t>(
                                 std::numeric_limits<std::int32_t>::max()),
              "event pool exhausted");
  slab_.emplace_back();
  return static_cast<std::int32_t>(slab_.size() - 1);
}

void CalendarQueue::FreeSlot(std::int32_t slot) {
  Event& ev = slab_[static_cast<std::size_t>(slot)];
  ev.cb = nullptr;  // release the closure's captures now, not at slab reuse
  ev.tag = nullptr;
  ev.prev = -1;
  ev.next = free_head_;  // `next` doubles as the free-list link
  free_head_ = slot;
}

std::size_t CalendarQueue::BucketIndex(Time t) const {
  return static_cast<std::size_t>(static_cast<std::uint64_t>(t * inv_width_)) &
         bucket_mask_;
}

void CalendarQueue::BucketInsert(std::size_t bucket, Time time,
                                 std::int32_t slot) {
  std::vector<Entry>& b = buckets_[bucket];
  Event& ev = slab_[static_cast<std::size_t>(slot)];
  ev.prev = -1;
  ev.next = -1;
  ++inserts_;
  // Descending by time, one Entry per distinct time: pop_back is the bucket
  // minimum. lower_bound lands on the first Entry at or below `time`.
  auto pos = std::lower_bound(
      b.begin(), b.end(), time,
      [](const Entry& e, Time t) { return e.time > t; });
  if (pos != b.end() && pos->time == time) {
    // Equal-time chain append: seq increases with insertion order, so the
    // chain stays FIFO (= seq order) with no comparison and no memmove.
    ev.prev = pos->tail;
    slab_[static_cast<std::size_t>(pos->tail)].next = slot;
    pos->tail = slot;
    return;
  }
  shift_steps_ += static_cast<std::uint64_t>(b.end() - pos);
  b.insert(pos, Entry{time, slot, slot});
}

void CalendarQueue::Insert(Time time, std::uint64_t seq, std::uint64_t id,
                           const char* tag, Callback cb) {
  OMCAST_DCHECK(MapFind(id, /*erase=*/false) < 0,
                "event id is already pending");
  const std::int32_t slot = AllocSlot();
  Event& ev = slab_[static_cast<std::size_t>(slot)];
  ev.cb = std::move(cb);
  ev.time = time;
  ev.seq = seq;
  ev.id = id;
  ev.tag = tag;
  MapInsert(id, slot);
  const std::uint64_t day = static_cast<std::uint64_t>(time * inv_width_);
  BucketInsert(static_cast<std::size_t>(day) & bucket_mask_, time, slot);
  // Keep the dispatch scan at or before the earliest event: RunUntil may
  // have walked the scan ahead of the clock through empty days, and the
  // next schedule can land behind it.
  if (live_ == 0 || day < cur_day_) cur_day_ = day;
  ++live_;
  MaybeResizeAfterInsert();
}

bool CalendarQueue::Erase(std::uint64_t id) {
  const std::int32_t slot = MapFind(id, /*erase=*/true);
  if (slot < 0) return false;
  Event& ev = slab_[static_cast<std::size_t>(slot)];
  if (ev.prev >= 0 && ev.next >= 0) {
    // Mid-chain: unlink without touching the bucket at all.
    slab_[static_cast<std::size_t>(ev.prev)].next = ev.next;
    slab_[static_cast<std::size_t>(ev.next)].prev = ev.prev;
  } else {
    std::vector<Entry>& b = buckets_[BucketIndex(ev.time)];
    auto pos = std::lower_bound(
        b.begin(), b.end(), ev.time,
        [](const Entry& e, Time t) { return e.time > t; });
    OMCAST_DCHECK(pos != b.end() && pos->time == ev.time,
                  "pending event missing from its bucket");
    if (ev.prev < 0 && ev.next < 0) {
      b.erase(pos);
    } else if (ev.prev < 0) {  // chain head
      pos->head = ev.next;
      slab_[static_cast<std::size_t>(ev.next)].prev = -1;
    } else {  // chain tail
      pos->tail = ev.prev;
      slab_[static_cast<std::size_t>(ev.prev)].next = -1;
    }
  }
  FreeSlot(slot);
  --live_;
  MaybeResizeAfterErase();
  return true;
}

bool CalendarQueue::Contains(std::uint64_t id) const {
  return const_cast<CalendarQueue*>(this)->MapFind(id, /*erase=*/false) >= 0;
}

std::size_t CalendarQueue::FindMinBucket() {
  OMCAST_DCHECK(live_ > 0, "FindMinBucket on an empty queue");
  // A calendar whose width stopped matching the live distribution walks many
  // empty days per pop; re-estimate before the walk, not during it.
  if (scan_steps_ > 32 * pops_ + 4096) Rebuild();
  const std::size_t nbuckets = bucket_mask_ + 1;
  for (std::size_t steps = 0; steps <= nbuckets; ++steps) {
    const std::vector<Entry>& b = buckets_[static_cast<std::size_t>(cur_day_) &
                                           bucket_mask_];
    if (!b.empty()) {
      const std::uint64_t key =
          static_cast<std::uint64_t>(b.back().time * inv_width_);
      if (key <= cur_day_) return static_cast<std::size_t>(cur_day_) &
                                  bucket_mask_;
    }
    ++cur_day_;
    ++scan_steps_;
  }
  // Fruitless full year: the pending set is entirely beyond the current
  // year. Jump straight to the earliest event's day.
  Time best_time = 0.0;
  std::uint64_t best_seq = 0;
  std::size_t best_bucket = nbuckets;
  for (std::size_t i = 0; i < nbuckets; ++i) {
    if (buckets_[i].empty()) continue;
    const Entry& e = buckets_[i].back();
    // The chain head is the entry's (and therefore the bucket's) seq
    // minimum at that time.
    const std::uint64_t seq = slab_[static_cast<std::size_t>(e.head)].seq;
    if (best_bucket == nbuckets || e.time < best_time ||
        (e.time == best_time && seq < best_seq)) {
      best_time = e.time;
      best_seq = seq;
      best_bucket = i;
    }
  }
  util::Check(best_bucket < nbuckets, "live events but no occupied bucket");
  cur_day_ = static_cast<std::uint64_t>(best_time * inv_width_);
  return best_bucket;
}

Time CalendarQueue::PeekTime() {
  util::Check(live_ > 0, "PeekTime on an empty queue");
  return buckets_[FindMinBucket()].back().time;
}

void CalendarQueue::PopMin(Time* time, std::uint64_t* seq, std::uint64_t* id,
                           const char** tag, Callback* cb) {
  util::Check(live_ > 0, "PopMin on an empty queue");
  std::vector<Entry>& b = buckets_[FindMinBucket()];
  Entry& min_entry = b.back();
  const std::int32_t slot = min_entry.head;
  Event& ev = slab_[static_cast<std::size_t>(slot)];
  if (ev.next >= 0) {
    min_entry.head = ev.next;
    slab_[static_cast<std::size_t>(ev.next)].prev = -1;
  } else {
    b.pop_back();
  }
  *time = ev.time;
  *seq = ev.seq;
  *id = ev.id;
  *tag = ev.tag;
  *cb = std::move(ev.cb);
  const std::int32_t mapped = MapFind(ev.id, /*erase=*/true);
  OMCAST_DCHECK(mapped == slot, "id map out of sync with the event slab");
  static_cast<void>(mapped);
  FreeSlot(slot);
  --live_;
  ++pops_;
  MaybeResizeAfterErase();
}

CalendarQueue::PoolStats CalendarQueue::pool_stats() const {
  PoolStats stats;
  stats.live = live_;
  stats.slab_capacity = slab_.size();
  stats.bucket_count = bucket_mask_ + 1;
  stats.bucket_width_s = width_;
  stats.rebuilds = rebuilds_;
  return stats;
}

double CalendarQueue::EstimateWidth() const {
  if (live_ < 2) return 1.0;
  // The width must match the event spacing where dispatch actually walks:
  // the head of the pending set. A uniform sample over ALL pending times
  // lets a heavy tail -- departure timers hours out coexisting with
  // second-scale heartbeats -- dominate the gap statistics and produce a
  // width orders of magnitude too wide for the dense head, which then
  // funnels every near-term event into a few huge buckets. So: select the
  // kWidthSampleCap earliest *distinct* pending times (duplicates add no
  // positive gap; one Entry each) and take the median positive gap among
  // those (Brown 1988 likewise averages the gaps of the first events).
  // Collecting every Entry is O(entries), which the rebuild that called us
  // already pays to redistribute them.
  std::vector<Time> times;
  times.reserve(live_);
  for (const std::vector<Entry>& b : buckets_)
    for (const Entry& e : b) times.push_back(e.time);
  if (times.size() < 2) return width_;  // one instant; any width works
  const std::size_t head = std::min(times.size(), kWidthSampleCap);
  auto head_end = times.begin() + static_cast<std::ptrdiff_t>(head);
  std::nth_element(times.begin(), head_end - 1, times.end());
  std::sort(times.begin(), head_end);
  std::vector<double> gaps;
  gaps.reserve(head);
  for (std::size_t i = 1; i < head; ++i)
    if (times[i] > times[i - 1]) gaps.push_back(times[i] - times[i - 1]);
  if (gaps.empty()) return width_;  // distinct times cannot collide
  auto mid = gaps.begin() + static_cast<std::ptrdiff_t>(gaps.size() / 2);
  std::nth_element(gaps.begin(), mid, gaps.end());
  return std::clamp(3.0 * (*mid), 1e-9, 1e9);
}

void CalendarQueue::Rebuild() {
  ++rebuilds_;
  scan_steps_ = 0;
  pops_ = 0;
  shift_steps_ = 0;
  inserts_ = 0;
  const double new_width = EstimateWidth();
  const std::size_t new_count =
      std::clamp(NextPow2(live_), kMinBuckets, kMaxBuckets);
  std::vector<std::vector<Entry>> old = std::move(buckets_);
  buckets_.assign(new_count, {});
  bucket_mask_ = new_count - 1;
  width_ = new_width;
  inv_width_ = 1.0 / new_width;
  Time min_time = std::numeric_limits<Time>::infinity();
  // Entries move wholesale, chains untouched: BucketIndex is a pure
  // function of the time, so one time value lives in exactly one Entry
  // before AND after redistribution.
  for (std::vector<Entry>& b : old) {
    for (const Entry& e : b) {
      buckets_[BucketIndex(e.time)].push_back(e);
      min_time = std::min(min_time, e.time);
    }
    b.clear();
    b.shrink_to_fit();
  }
  for (std::vector<Entry>& b : buckets_) {
    if (b.size() < 2) continue;
    std::sort(b.begin(), b.end(), [](const Entry& a, const Entry& c) {
      return a.time > c.time;  // times are distinct across Entries
    });
  }
  cur_day_ = live_ == 0 ? 0
                        : static_cast<std::uint64_t>(min_time * inv_width_);
}

void CalendarQueue::MaybeResizeAfterInsert() {
  if (live_ > 2 * (bucket_mask_ + 1) && bucket_mask_ + 1 < kMaxBuckets) {
    Rebuild();
    return;
  }
  // Sorted inserts are memmoving whole buckets: the width is too wide for
  // the dense part of the distribution (see shift_steps_ in the header).
  if (shift_steps_ > 16 * inserts_ + 4096) Rebuild();
}

void CalendarQueue::MaybeResizeAfterErase() {
  if (live_ < (bucket_mask_ + 1) / 4 && bucket_mask_ + 1 > kMinBuckets)
    Rebuild();
}

void CalendarQueue::MapInsert(std::uint64_t id, std::int32_t slot) {
  if ((map_used_ + 1) * 2 > map_.size()) MapGrow();
  std::size_t pos = static_cast<std::size_t>(HashId(id)) & map_mask_;
  while (map_[pos].id != 0) pos = (pos + 1) & map_mask_;
  map_[pos] = MapCell{id, slot};
  ++map_used_;
}

std::int32_t CalendarQueue::MapFind(std::uint64_t id, bool erase) {
  std::size_t pos = static_cast<std::size_t>(HashId(id)) & map_mask_;
  while (map_[pos].id != 0) {
    if (map_[pos].id == id) {
      const std::int32_t slot = map_[pos].slot;
      if (erase) {
        // Backward-shift deletion: pull every displaced successor in the
        // probe chain back over the hole so lookups never need tombstones.
        std::size_t hole = pos;
        std::size_t next = (hole + 1) & map_mask_;
        while (map_[next].id != 0) {
          const std::size_t home =
              static_cast<std::size_t>(HashId(map_[next].id)) & map_mask_;
          if (((next - home) & map_mask_) >= ((next - hole) & map_mask_)) {
            map_[hole] = map_[next];
            hole = next;
          }
          next = (next + 1) & map_mask_;
        }
        map_[hole] = MapCell{};
        --map_used_;
      }
      return slot;
    }
    pos = (pos + 1) & map_mask_;
  }
  return -1;
}

void CalendarQueue::MapGrow() {
  std::vector<MapCell> old = std::move(map_);
  const std::size_t new_size = std::max(kMinMapCells, old.size() * 2);
  map_.assign(new_size, MapCell{});
  map_mask_ = new_size - 1;
  for (const MapCell& cell : old) {
    if (cell.id == 0) continue;
    std::size_t pos = static_cast<std::size_t>(HashId(cell.id)) & map_mask_;
    while (map_[pos].id != 0) pos = (pos + 1) & map_mask_;
    map_[pos] = cell;
  }
}

}  // namespace omcast::sim
