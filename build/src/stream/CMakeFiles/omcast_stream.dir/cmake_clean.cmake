file(REMOVE_RECURSE
  "CMakeFiles/omcast_stream.dir/multi_tree.cc.o"
  "CMakeFiles/omcast_stream.dir/multi_tree.cc.o.d"
  "CMakeFiles/omcast_stream.dir/packet_sim.cc.o"
  "CMakeFiles/omcast_stream.dir/packet_sim.cc.o.d"
  "CMakeFiles/omcast_stream.dir/streaming.cc.o"
  "CMakeFiles/omcast_stream.dir/streaming.cc.o.d"
  "libomcast_stream.a"
  "libomcast_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omcast_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
