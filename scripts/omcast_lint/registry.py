"""Rule registry: rules register themselves by decorator at import time.

A rule is a function `check(sf: SourceFile) -> list[tuple[int, str]]`
returning (0-based line index, message) pairs; the engine applies the
allow() escape hatch and converts to 1-based Findings. Keep rules pure:
no I/O besides reading sibling sources (the rost-event-emit taxonomy
cross-reference), no global state.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from .source import SourceFile


@dataclass(frozen=True)
class Finding:
    path: Path
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class Rule:
    name: str
    summary: str  # one line; --list-rules and the SARIF rules table
    check: Callable[[SourceFile], list[tuple[int, str]]]


RULES: dict[str, Rule] = {}

# Engine-level pseudo-rule: an allow() annotation that suppresses nothing
# (or names a rule that does not exist). Registered so SARIF/--list-rules
# describe it, but it has no check function -- the engine computes it from
# the suppression bookkeeping.
STALE_ALLOW = "stale-allow"


def rule(name: str, summary: str):
    def decorator(fn: Callable[[SourceFile], list[tuple[int, str]]]):
        if name in RULES:
            raise ValueError(f"duplicate rule name: {name}")
        RULES[name] = Rule(name, summary, fn)
        return fn
    return decorator


def all_rule_descriptions() -> list[tuple[str, str]]:
    """(name, summary) for every rule incl. the stale-allow pseudo-rule."""
    out = [(r.name, r.summary) for r in RULES.values()]
    out.append((STALE_ALLOW,
                "omcast-lint: allow() annotation that no longer suppresses "
                "any finding (stale or misspelled suppression)"))
    return sorted(out)
