// Ablation (beyond the paper): what does the bandwidth-TIME product buy
// over its parts? Runs ROST's switching machinery with three criteria:
//   * btp        -- the paper's rule (BTP + bandwidth guard),
//   * bandwidth  -- switch whenever the child has strictly more bandwidth
//                   (a distributed approximation of BO),
//   * age        -- switch whenever the child is strictly older (a
//                   distributed approximation of TO / longest-first).
// BTP should combine the bandwidth criterion's shallow tree with the age
// criterion's stable ancestors.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Ablation -- ROST switching criterion", env);

  struct Row {
    const char* label;
    core::SwitchCriterion criterion;
  };
  const Row rows[] = {
      {"btp (paper)", core::SwitchCriterion::kBtp},
      {"bandwidth-only", core::SwitchCriterion::kBandwidthOnly},
      {"age-only", core::SwitchCriterion::kAgeOnly},
  };

  util::Table table({"criterion", "disruptions/node", "delay(ms)", "stretch",
                     "reconnects/node"});
  for (const Row& row : rows) {
    exp::ScenarioConfig config = env.BaseConfig();
    config.population = env.focus_size;
    config.rost.criterion = row.criterion;
    const auto reps = bench::RunTreeReps(env, exp::Algorithm::kRost, config);
    table.AddRow(
        row.label,
        {bench::MeanOf(reps, [](const auto& r) { return r.avg_disruptions; }),
         bench::MeanOf(reps, [](const auto& r) { return r.avg_delay_ms; }),
         bench::MeanOf(reps, [](const auto& r) { return r.avg_stretch; }),
         bench::MeanOf(reps,
                       [](const auto& r) { return r.avg_reconnections; })});
  }
  table.Print(std::cout, "switching-criterion ablation (" +
                             std::to_string(env.focus_size) + " members)");
  return 0;
}
