// Packet-sequence-level streaming model (paper Section 6, Figs. 12-14).
//
// The source streams at packet_rate (10 pkt/s); every member plays back
// buffer_s behind delivery. When a non-leaf member fails abruptly, each of
// its (now orphaned) children spends detect_s noticing and rejoin_s
// re-finding a parent; during that hole it pulls repairs from its recovery
// group (CER with MLC selection and striped cooperative bandwidth, or the
// single-source baseline). Descendants deeper in the failed subtree learn
// via ELN that the loss is upstream: they do not rejoin and do not issue
// duplicate repairs -- they receive whatever their orphaned ancestor
// recovers, so they inherit its starving time (propagation is milliseconds
// against multi-second stalls).
//
// Each member's starving time ratio is (total playback stall) / (total view
// time since playback began); the figures report the average over members.
//
// Modelling notes (documented substitutions):
//   * only failure-induced losses are modelled, as in the paper;
//   * a recovery node's residual bandwidth (uniform 0-9 pkt/s) is not
//     contended across concurrent outages;
//   * an outage's stall is capped by the member's remaining lifetime.
#pragma once

#include <vector>

#include "core/cer/group.h"
#include "core/cer/recovery.h"
#include "overlay/session.h"
#include "rand/rng.h"
#include "util/stats.h"

namespace omcast::stream {

struct StreamParams {
  double packet_rate = 10.0;  // packets per second
  double buffer_s = 5.0;      // playback buffer (50 packets by default)
  double detect_s = 5.0;      // parent-failure detection time
  double rejoin_s = 10.0;     // parent re-finding time
  int recovery_group_size = 3;
  core::GroupSelection selection = core::GroupSelection::kMlc;
  core::RecoveryMode mode = core::RecoveryMode::kCooperative;
  // Residual (helping) bandwidth per member, packets per second.
  double residual_lo_pkts = 0.0;
  double residual_hi_pkts = 9.0;
};

class StreamingLayer {
 public:
  // Installs hooks on `session`; must be constructed before the run starts
  // and outlive it.
  StreamingLayer(overlay::Session& session, StreamParams params,
                 std::uint64_t seed);

  // Members qualify for the starving-ratio average when they joined at/after
  // `begin` - 0 and departed within [begin, end].
  void SetMeasurementWindow(double begin_s, double end_s);

  // Average starving time ratio (0..1) over qualifying members.
  const util::RunningStat& ratio_stat() const { return ratio_stat_; }
  const std::vector<double>& ratio_samples() const { return ratio_samples_; }

  long outages_simulated() const { return outages_; }
  long repairs_fully_recovered() const { return fully_recovered_; }
  const util::RunningStat& aggregate_rate_stat() const { return rate_stat_; }
  // Per-outage playback stall of the orphan (before lifetime capping).
  const util::RunningStat& outage_starving_stat() const {
    return outage_starving_stat_;
  }

 private:
  void OnDeparture(overlay::NodeId failed);
  void OnMemberDeparted(const overlay::Member& m);
  double ResidualFraction(overlay::NodeId id);
  void AddStarving(overlay::NodeId id, double stall_s);

  overlay::Session& session_;
  StreamParams params_;
  rnd::Rng rng_;
  std::vector<double> residual_fraction_;  // per node; -1 == not drawn yet
  std::vector<double> starving_s_;         // per node accumulated stall
  util::RunningStat ratio_stat_;
  util::RunningStat rate_stat_;
  util::RunningStat outage_starving_stat_;
  std::vector<double> ratio_samples_;
  double window_begin_ = 0.0;
  double window_end_ = 0.0;
  bool window_set_ = false;
  long outages_ = 0;
  long fully_recovered_ = 0;
};

}  // namespace omcast::stream
