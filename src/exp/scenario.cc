#include "exp/scenario.h"

#include <functional>
#include <optional>

#include "metrics/collectors.h"
#include "obs/incident.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "proto/longest_first.h"
#include "proto/min_depth.h"
#include "proto/relaxed_ordered.h"
#include "rand/distributions.h"
#include "sim/simulator.h"
#include "util/check.h"

namespace omcast::exp {

std::vector<Algorithm> AllAlgorithms() {
  return {Algorithm::kMinDepth, Algorithm::kRelaxedBo, Algorithm::kLongestFirst,
          Algorithm::kRelaxedTo, Algorithm::kRost};
}

const char* AlgorithmLabel(Algorithm a) {
  switch (a) {
    case Algorithm::kMinDepth: return "min-depth";
    case Algorithm::kLongestFirst: return "longest-first";
    case Algorithm::kRelaxedBo: return "relaxed-BO";
    case Algorithm::kRelaxedTo: return "relaxed-TO";
    case Algorithm::kRost: return "ROST";
    case Algorithm::kClique: return "clique";
  }
  return "?";
}

std::unique_ptr<overlay::Protocol> MakeProtocol(
    Algorithm a, const core::RostParams& rost,
    const proto::CliqueParams& clique) {
  switch (a) {
    case Algorithm::kMinDepth:
      return std::make_unique<proto::MinDepthProtocol>();
    case Algorithm::kLongestFirst:
      return std::make_unique<proto::LongestFirstProtocol>();
    case Algorithm::kRelaxedBo:
      return std::make_unique<proto::RelaxedBandwidthOrderedProtocol>();
    case Algorithm::kRelaxedTo:
      return std::make_unique<proto::RelaxedTimeOrderedProtocol>();
    case Algorithm::kRost:
      return std::make_unique<core::RostProtocol>(rost);
    case Algorithm::kClique:
      return std::make_unique<proto::CliqueProtocol>(clique);
  }
  util::Fail("unknown algorithm");
}

namespace {

double ArrivalRate(int population) {
  return static_cast<double>(population) / rnd::kMeanLifetimeSeconds;
}

void AttachObservability(sim::Simulator& simulator, overlay::Session& session,
                         const ScenarioConfig& config) {
  session.SetTracer(config.tracer);
  simulator.SetProfiler(config.profiler);
}

// End-of-run session-level counters shared by every scenario runner.
void ExportSessionCounters(obs::Registry& reg, overlay::Session& session) {
  reg.Count("session.total_members",
            static_cast<double>(session.total_members_created()));
  reg.Count("session.failed_join_attempts",
            static_cast<double>(session.failed_join_attempts()));
  reg.Count("session.dropped_arrivals",
            static_cast<double>(session.dropped_arrivals()));
  reg.SetGauge("session.final_population",
               static_cast<double>(session.alive_count()));
}

}  // namespace

TreeScenarioResult RunTreeScenario(const net::Topology& topology, Algorithm a,
                                   const ScenarioConfig& config) {
  sim::Simulator simulator(config.queue_kind);
  std::unique_ptr<overlay::Protocol> protocol =
      MakeProtocol(a, config.rost, config.clique);
  auto* rost = a == Algorithm::kRost
                   ? static_cast<core::RostProtocol*>(protocol.get())
                   : nullptr;
  overlay::Session session(simulator, topology, std::move(protocol),
                           config.session, config.seed);
  // As in the chaos harness: incident analysis rides the live trace stream,
  // and a run-local single-slot tracer feeds the sink when the caller did
  // not attach one of its own.
  obs::Tracer* tracer = config.tracer;
  std::optional<obs::Tracer> local_tracer;
  if (config.incident_analysis && tracer == nullptr) {
    local_tracer.emplace(/*capacity=*/1);
    tracer = &*local_tracer;
  }
  session.SetTracer(tracer);
  simulator.SetProfiler(config.profiler);
  obs::IncidentLog incident_log;
  if (config.incident_analysis) tracer->AddSink(&incident_log);
  metrics::MemberOutcomes outcomes(session);
  metrics::TreeSnapshots snapshots(session, config.snapshot_interval_s);

  const double t_measure = config.warmup_s;
  const double t_end = config.warmup_s + config.measure_s;
  outcomes.SetWindow(t_measure, t_end);
  snapshots.Start(t_measure, t_end);

  // Recovery-curve sampler over the measurement window (same names and
  // window grid as the chaos harness, minus the stream-only gauges).
  std::function<void()> sample_tick;
  if (config.timeseries_window_s > 0.0 && config.registry != nullptr) {
    const double w = config.timeseries_window_s;
    obs::TimeSeries& unrooted = config.registry->Series(
        "recovery.unrooted_members", obs::TimeSeries::Kind::kGauge, w);
    obs::TimeSeries& pending = config.registry->Series(
        "recovery.reentries_pending", obs::TimeSeries::Kind::kGauge, w);
    obs::TimeSeries& wedged = config.registry->Series(
        "recovery.wedged_leases", obs::TimeSeries::Kind::kGauge, w);
    sample_tick = [&, w, t_end] {
      const double now = simulator.now();
      const double wt = now - w;  // start of the window that just ended
      long unrooted_n = 0;
      for (overlay::NodeId id : session.alive_members())
        if (!session.tree().IsRooted(id)) ++unrooted_n;
      unrooted.Sample(wt, static_cast<double>(unrooted_n));
      pending.Sample(wt, static_cast<double>(session.reentries_pending()));
      wedged.Sample(
          wt, static_cast<double>(session.protocol().WedgedLeases(now)));
      if (now + w <= t_end + 1e-9)
        simulator.ScheduleAfter(w, sample_tick, "scenario.timeseries");
    };
    simulator.ScheduleAt(t_measure + w, sample_tick, "scenario.timeseries");
  }

  session.Prepopulate(config.population);
  session.StartArrivals(ArrivalRate(config.population));
  simulator.RunUntil(t_end);
  outcomes.HarvestAliveMembers();

  TreeScenarioResult r;
  r.avg_disruptions = outcomes.disruptions().mean();
  r.disruptions_ci95 = outcomes.disruptions().ci95_half_width();
  r.avg_reconnections = outcomes.reconnections().mean();
  r.avg_delay_ms = snapshots.delay_ms().mean();
  r.avg_stretch = snapshots.stretch().mean();
  r.avg_depth = snapshots.depth().mean();
  r.avg_population = snapshots.population().mean();
  r.qualifying_members = outcomes.qualifying_members();
  r.disruption_samples = outcomes.disruption_samples();
  if (rost != nullptr) {
    r.rost_switches = rost->switches_performed();
    r.rost_lock_conflicts = rost->lock_conflicts();
  }
  if (config.incident_analysis) {
    incident_log.Finalize(simulator.now());
    r.incidents = incident_log.FlatStats();
    if (config.registry != nullptr) incident_log.ExportTo(*config.registry);
    tracer->RemoveSink(&incident_log);
  }
  if (config.registry != nullptr) {
    ExportSessionCounters(*config.registry, session);
    session.protocol().ExportCounters(*config.registry);
    // Ring-eviction visibility, caller-attached tracers only (the run-local
    // incident feed intentionally retains nothing).
    if (config.tracer != nullptr)
      config.registry->Count("obs.trace.evicted",
                             static_cast<double>(config.tracer->dropped()));
  }
  return r;
}

StreamScenarioResult RunStreamScenario(const net::Topology& topology,
                                       Algorithm a,
                                       const ScenarioConfig& config,
                                       const stream::StreamParams& stream) {
  sim::Simulator simulator(config.queue_kind);
  overlay::Session session(simulator, topology,
                           MakeProtocol(a, config.rost, config.clique),
                           config.session, config.seed);
  AttachObservability(simulator, session, config);
  stream::StreamingLayer streaming(session, stream, config.seed ^ 0x5151);

  const double t_measure = config.warmup_s;
  const double t_end = config.warmup_s + config.measure_s;
  streaming.SetMeasurementWindow(t_measure, t_end);

  session.Prepopulate(config.population);
  session.StartArrivals(ArrivalRate(config.population));
  simulator.RunUntil(t_end);

  StreamScenarioResult r;
  r.avg_starving_ratio = streaming.ratio_stat().mean();
  r.ci95 = streaming.ratio_stat().ci95_half_width();
  r.members = static_cast<int>(streaming.ratio_stat().count());
  r.outages = streaming.outages_simulated();
  r.avg_recovery_rate = streaming.aggregate_rate_stat().mean();
  if (config.registry != nullptr) {
    ExportSessionCounters(*config.registry, session);
    config.registry->Count("stream.outages", static_cast<double>(r.outages));
  }
  return r;
}

TraceResult RunMemberTraceScenario(const net::Topology& topology, Algorithm a,
                                   const ScenarioConfig& config,
                                   double member_bandwidth,
                                   double member_lifetime_s, double trace_s) {
  sim::Simulator simulator(config.queue_kind);
  overlay::Session session(simulator, topology,
                           MakeProtocol(a, config.rost, config.clique),
                           config.session, config.seed);
  AttachObservability(simulator, session, config);
  metrics::MemberTrace trace(session, config.snapshot_interval_s);

  session.Prepopulate(config.population);
  session.StartArrivals(ArrivalRate(config.population));
  simulator.RunUntil(config.warmup_s);

  const overlay::NodeId tagged =
      session.InjectMember(member_bandwidth, member_lifetime_s);
  const double t0 = simulator.now();
  trace.Track(tagged);
  simulator.RunUntil(t0 + trace_s);

  TraceResult out;
  for (const auto& p : trace.disruption_series())
    out.cumulative_disruptions.push_back({(p.t - t0) / 60.0, p.v});
  for (const auto& p : trace.delay_series())
    out.delay_ms.push_back({(p.t - t0) / 60.0, p.v});
  return out;
}

}  // namespace omcast::exp
