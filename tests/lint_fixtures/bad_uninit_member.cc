// Fixture: scalar members without initializers must be flagged; locals in
// member functions and initialized members must not.
#include <cstdint>
#include <vector>

struct Packet {
  double send_time;     // expect(uninit-member)
  std::int64_t seq;     // expect(uninit-member)
  int hops = 0;
  bool delivered = false;
  std::vector<int> path;  // non-scalar: default-constructs safely
};

class Collector {
 public:
  explicit Collector(double interval) : interval_s_(interval) { (void)interval_s_; }

  void Tick() {
    int local_count;  // locals are out of scope for this rule
    local_count = 0;
    (void)local_count;
  }

 private:
  double interval_s_;  // expect(uninit-member)
  long samples_ = 0;
};

struct Annotated {
  // Set by Reset() before any read; audited 2026-08.
  // omcast-lint: allow(uninit-member)
  double scratch;
};
