// Chaos-harness tests: the ROST lease handshake under a lossy control
// plane, CER stripe failover when a recovery server dies mid-repair,
// recovery-group shrink fallback, and full RunChaosScenario runs (seeded
// reproducibility, plus the 500-member acceptance run: 5% loss + a
// correlated stub-domain kill must leave zero wedged locks and every
// surviving member rooted).
#include "exp/chaos.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/rost/rost.h"
#include "net/topology.h"
#include "proto/min_depth.h"
#include "sim/fault_plane.h"
#include "sim/simulator.h"

namespace omcast::exp {
namespace {

using core::RostParams;
using core::RostProtocol;
using overlay::kNoNode;
using overlay::kRootId;
using overlay::NodeId;
using overlay::Session;
using overlay::SessionParams;
using overlay::Tree;

// ---------------------------------------------------------------------------
// Lease-path locking unit tests: a hand-built root <- parent <- child chain
// where the child's BTP overtakes the parent's, driven over a FaultPlane.
// ---------------------------------------------------------------------------

class LeasePathTest : public ::testing::Test {
 protected:
  LeasePathTest() {
    rnd::Rng topo_rng(1);
    topology_ = std::make_unique<net::Topology>(
        net::Topology::Generate(net::TinyTopologyParams(), topo_rng));
  }

  // Session with a retained RostProtocol routed through plane_.
  std::unique_ptr<Session> Make(RostParams params = {},
                                std::uint64_t seed = 3) {
    auto protocol = std::make_unique<RostProtocol>(params);
    rost_ = protocol.get();
    auto s = std::make_unique<Session>(sim_, *topology_, std::move(protocol),
                                       SessionParams{}, seed);
    plane_ = std::make_unique<sim::FaultPlane>(sim_, sim::FaultPlaneParams{},
                                               seed + 100);
    rost_->SetFaultPlane(plane_.get());
    return s;
  }

  // root(capacity 1) <- parent(bw 1) <- child(bw 4): the child's BTP grows
  // 4x faster, so the first periodic check wants the swap.
  void BuildChain(Session& s) {
    s.tree().SetCapacity(kRootId, 1);
    parent_ = s.InjectMember(1.0, 1e9);
    sim_.RunUntil(1.0);
    child_ = s.InjectMember(4.0, 1e9);
    sim_.RunUntil(2.0);
    ASSERT_EQ(s.tree().Parent(child_), parent_);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topology_;
  std::unique_ptr<sim::FaultPlane> plane_;
  RostProtocol* rost_ = nullptr;
  NodeId parent_ = kNoNode;
  NodeId child_ = kNoNode;
};

TEST_F(LeasePathTest, HandshakeOverCleanPlaneCompletesTheSwitch) {
  RostParams p;
  p.switching_interval_s = 100.0;
  auto s = Make(p);
  BuildChain(*s);
  sim_.RunUntil(150.0);
  // Same outcome as the oracle path's ChildWithHigherBtpAndBandwidth test,
  // but reached through request -> grant -> swap -> release messages.
  EXPECT_EQ(s->tree().Parent(child_), kRootId);
  EXPECT_EQ(s->tree().Parent(parent_), child_);
  EXPECT_EQ(rost_->switches_performed(), 1);
  // Lock set {child, parent, grandparent=root}: one self lease + two
  // participant leases, all released on teardown.
  EXPECT_GE(rost_->leases_granted(), 3);
  EXPECT_EQ(rost_->lock_timeouts(), 0);
  EXPECT_EQ(rost_->leases_outstanding(), 0);
  EXPECT_EQ(rost_->WedgedLeases(sim_.now()), 0);
  s->tree().CheckInvariants();
}

TEST_F(LeasePathTest, LostRequestsTimeOutBackOffAndEventuallySucceed) {
  RostParams p;
  p.switching_interval_s = 100.0;
  p.lock_request_timeout_s = 2.0;
  p.lock_retry_delay_s = 15.0;
  auto s = Make(p);
  BuildChain(*s);
  // Sever child -> parent: the lock request to the parent never arrives,
  // so no attempt can assemble its grant set.
  plane_->SetLinkLossRate(child_, parent_, 1.0);
  sim_.RunUntil(160.0);
  EXPECT_EQ(s->tree().Parent(child_), parent_);  // still stuck below
  EXPECT_EQ(rost_->switches_performed(), 0);
  EXPECT_GE(rost_->lock_timeouts(), 1);
  EXPECT_GE(rost_->lock_retries(), 1);
  // Timed-out attempts must not leak leases: everything granted so far
  // (self + the grandparent's grants) was released or has expired.
  EXPECT_EQ(rost_->WedgedLeases(sim_.now()), 0);

  // Heal the link: the next backoff retry completes the switch.
  plane_->ClearLinkOverrides();
  sim_.RunUntil(400.0);
  EXPECT_EQ(s->tree().Parent(child_), kRootId);
  EXPECT_EQ(rost_->switches_performed(), 1);
  EXPECT_EQ(rost_->leases_outstanding(), 0);
  EXPECT_EQ(rost_->WedgedLeases(sim_.now()), 0);
  s->tree().CheckInvariants();
}

TEST_F(LeasePathTest, DeadInitiatorsLeasesExpireInsteadOfWedging) {
  RostParams p;
  p.switching_interval_s = 1e8;  // manual triggering only
  p.lock_lease_s = 10.0;
  auto s = Make(p);
  BuildChain(*s);
  sim_.RunUntil(50.0);
  // Start the handshake, then kill the initiator before any grant returns:
  // the participants' leases are granted to a corpse that will never send
  // releases. Without expiry this wedges parent and root forever.
  rost_->CheckSwitchNow(*s, child_);
  s->DepartNow(child_);
  EXPECT_GE(rost_->leases_granted(), 1);  // at least the self lease
  sim_.RunUntil(sim_.now() + p.lock_lease_s + 1.0);
  EXPECT_EQ(rost_->switches_performed(), 0);
  EXPECT_EQ(rost_->leases_outstanding(), 0);  // all reaped by expiry
  EXPECT_GE(rost_->leases_expired(), 1);
  EXPECT_EQ(rost_->WedgedLeases(sim_.now()), 0);
}

// ---------------------------------------------------------------------------
// Saturated-tree preempt joins: when no rooted member has a spare slot, a
// contributor displaces the weakest rooted leaf and adopts it. This is the
// fallback that keeps a correlated kill of a high-fanout node -- which
// strands the overlay's spare capacity inside detached fragments -- from
// deadlocking every rejoin against a full tree.
// ---------------------------------------------------------------------------

TEST_F(LeasePathTest, SaturatedTreePreemptJoinDisplacesWeakestLeaf) {
  auto s = Make();
  s->tree().SetCapacity(kRootId, 1);
  const NodeId freerider = s->InjectMember(0.0, 1e9);
  sim_.RunUntil(1.0);
  ASSERT_EQ(s->tree().Parent(freerider), kRootId);  // tree now full
  const NodeId contributor = s->InjectMember(3.0, 1e9);
  sim_.RunUntil(2.0);
  // The contributor took the free-rider's slot and rehoused it: nobody is
  // detached and rooted fan-out grew by the contributor's spare capacity.
  EXPECT_EQ(s->tree().Parent(contributor), kRootId);
  EXPECT_EQ(s->tree().Parent(freerider), contributor);
  EXPECT_TRUE(s->tree().IsRooted(freerider));
  EXPECT_EQ(rost_->preempt_joins(), 1);
  s->tree().CheckInvariants();
}

TEST_F(LeasePathTest, JoinerWithoutSpareCapacityCannotPreempt) {
  auto s = Make();
  s->tree().SetCapacity(kRootId, 1);
  const NodeId first = s->InjectMember(0.0, 1e9);
  sim_.RunUntil(1.0);
  ASSERT_EQ(s->tree().Parent(first), kRootId);
  // A free-rider cannot host the leaf it would displace (and displacing an
  // equal would just ping-pong), so it stays in the retry loop instead.
  const NodeId second = s->InjectMember(0.0, 1e9);
  sim_.RunUntil(2.0);
  EXPECT_EQ(s->tree().Parent(second), kNoNode);
  EXPECT_EQ(rost_->preempt_joins(), 0);
}

// ---------------------------------------------------------------------------
// CER stripe failover and group-shrink fallback (packet-level stream).
// ---------------------------------------------------------------------------

class RepairChaosTest : public ::testing::Test {
 protected:
  RepairChaosTest() {
    rnd::Rng topo_rng(1);
    topology_ = std::make_unique<net::Topology>(
        net::Topology::Generate(net::TinyTopologyParams(), topo_rng));
  }

  void MakeSession(std::uint64_t seed = 5) {
    SessionParams sp;
    sp.rejoin_delay_s = 15.0;
    session_ = std::make_unique<Session>(
        sim_, *topology_, std::make_unique<proto::MinDepthProtocol>(), sp,
        seed);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topology_;
  std::unique_ptr<Session> session_;
};

TEST_F(RepairChaosTest, ServerDeathMidRepairFailsOverToSurvivingStripe) {
  MakeSession();
  stream::PacketSimParams p;
  p.recovery_group_size = 4;
  p.residual_lo_pkts = 2.0;  // every stripe serves at a real rate
  stream::PacketLevelStream packets(*session_, p, 11);
  for (int i = 0; i < 25; ++i) session_->InjectMember(1.0, 1e9);
  const NodeId hub = session_->InjectMember(5.0, 1e9);
  const NodeId victim = session_->InjectMember(0.5, 1e9);
  sim_.RunUntil(1.0);
  Tree& tree = session_->tree();
  if (tree.Parent(victim) != hub) {
    tree.Detach(victim);
    tree.Attach(hub, victim);
  }
  packets.Start(150.0);
  sim_.RunUntil(20.0);
  session_->DepartNow(hub);  // victim's 15 s hole; stripes start at +5 s
  sim_.RunUntil(26.0);       // stripes have been serving for ~1 s
  const std::vector<NodeId> servers = packets.ActiveRepairServers();
  ASSERT_FALSE(servers.empty());
  NodeId dead_server = kNoNode;
  for (NodeId server : servers) {
    if (server == kRootId || !tree.Alive(server)) continue;
    dead_server = server;
    break;
  }
  ASSERT_NE(dead_server, kNoNode);
  session_->DepartNow(dead_server);
  sim_.RunUntil(300.0);
  packets.FinalizeAliveMembers();
  // The dead server's remaining range moved to a surviving group member and
  // kept serving; the victim's hole still shrinks well below no-recovery.
  EXPECT_GE(packets.stripe_failovers(), 1);
  EXPECT_GT(packets.repairs_scheduled(), 0);
  EXPECT_LT(packets.ratio_stat().max(), 0.15);
}

TEST_F(RepairChaosTest, ShrunkenRecoveryGroupFallsBackToFewerStripes) {
  MakeSession();
  stream::PacketSimParams p;
  p.recovery_group_size = 6;  // more stripes than live candidates
  p.residual_lo_pkts = 2.0;
  stream::PacketLevelStream packets(*session_, p, 7);
  const NodeId hub = session_->InjectMember(5.0, 1e9);
  const NodeId victim = session_->InjectMember(0.5, 1e9);
  session_->InjectMember(1.0, 1e9);
  session_->InjectMember(1.0, 1e9);
  sim_.RunUntil(1.0);
  Tree& tree = session_->tree();
  if (tree.Parent(victim) != hub) {
    tree.Detach(victim);
    tree.Attach(hub, victim);
  }
  packets.Start(100.0);
  sim_.RunUntil(20.0);
  session_->DepartNow(hub);  // only ~3 possible servers for 6 stripes
  sim_.RunUntil(200.0);
  packets.FinalizeAliveMembers();
  EXPECT_GE(packets.short_group_fallbacks(), 1);
  EXPECT_GT(packets.repairs_scheduled(), 0);
}

// ---------------------------------------------------------------------------
// Full chaos scenarios.
// ---------------------------------------------------------------------------

// Cheap tiny-topology config exercising every injection at once.
ChaosConfig TinyChaosConfig(std::uint64_t seed) {
  ChaosConfig c;
  c.population = 60;
  c.warmup_s = 300.0;
  c.stream_s = 60.0;
  c.drain_s = 60.0;
  c.seed = seed;
  c.fault.loss_rate = 0.02;
  c.fault.dup_prob = 0.01;
  c.fault.jitter_s = 0.02;
  // A 60-member session under the default 100-child root would be a star
  // (no orphans, no switches); cap the root so the tree has real depth.
  c.session.root_bandwidth = 5.0;
  c.rost.switching_interval_s = 60.0;
  c.flash_at_s = 10.0;
  c.flash_departures = 5;
  c.mid_repair_kill_at_s = 20.0;
  return c;
}

bool SameResult(const ChaosResult& a, const ChaosResult& b) {
  const metrics::ChaosCounters& x = a.counters;
  const metrics::ChaosCounters& y = b.counters;
  return x.messages_sent == y.messages_sent &&
         x.messages_dropped == y.messages_dropped &&
         x.messages_duplicated == y.messages_duplicated &&
         x.messages_delivered == y.messages_delivered &&
         x.heartbeats_sent == y.heartbeats_sent &&
         x.detections == y.detections &&
         x.false_suspicions == y.false_suspicions &&
         x.mean_detection_latency_s == y.mean_detection_latency_s &&
         x.leases_granted == y.leases_granted &&
         x.leases_released == y.leases_released &&
         x.leases_expired == y.leases_expired &&
         x.lock_timeouts == y.lock_timeouts &&
         x.lock_retries == y.lock_retries &&
         x.handshake_aborts == y.handshake_aborts &&
         x.repairs_scheduled == y.repairs_scheduled &&
         x.eln_sent == y.eln_sent &&
         x.stripe_failovers == y.stripe_failovers &&
         x.short_group_fallbacks == y.short_group_fallbacks &&
         a.avg_starving_ratio == b.avg_starving_ratio &&
         a.members == b.members &&
         a.flash_members_killed == b.flash_members_killed &&
         a.domain_members_killed == b.domain_members_killed &&
         a.mid_repair_kill_fired == b.mid_repair_kill_fired &&
         a.unrooted_members == b.unrooted_members &&
         a.final_population == b.final_population;
}

TEST(ChaosScenario, TinyRunSurvivesFlashAndMidRepairKills) {
  rnd::Rng topo_rng(1);
  const net::Topology topology =
      net::Topology::Generate(net::TinyTopologyParams(), topo_rng);
  const ChaosResult r = RunChaosScenario(topology, TinyChaosConfig(21));
  EXPECT_TRUE(r.zero_wedged_locks);
  EXPECT_EQ(r.counters.wedged_leases, 0);
  EXPECT_EQ(r.flash_members_killed, 5);
  EXPECT_GT(r.counters.heartbeats_sent, 0);
  EXPECT_GT(r.counters.messages_dropped, 0);
  EXPECT_GT(r.counters.repairs_scheduled, 0);
  EXPECT_GT(r.final_population, 0);
  // Lease accounting identity: every grant is released, expired or still
  // legitimately held.
  EXPECT_EQ(r.counters.leases_granted,
            r.counters.leases_released + r.counters.leases_expired +
                r.counters.leases_outstanding);
}

TEST(ChaosScenario, SameSeedReplaysBitIdentically) {
  rnd::Rng topo_rng(1);
  const net::Topology topology =
      net::Topology::Generate(net::TinyTopologyParams(), topo_rng);
  const ChaosResult a = RunChaosScenario(topology, TinyChaosConfig(33));
  const ChaosResult b = RunChaosScenario(topology, TinyChaosConfig(33));
  EXPECT_TRUE(SameResult(a, b))
      << "two chaos runs with the same seed diverged: the fault schedule "
         "or an injection is not deterministic";
  const ChaosResult c = RunChaosScenario(topology, TinyChaosConfig(34));
  EXPECT_FALSE(SameResult(a, c)) << "the comparison is vacuous";
}

// The PR's acceptance scenario: 500 members on the paper-scale topology,
// 5% control-plane loss with duplication and jitter, plus a correlated
// stub-domain kill early in the stream. The hardened protocol must finish
// with no wedged locks and every surviving member attached to the root.
TEST(ChaosScenario, FiveHundredMembersSurviveLossAndDomainKill) {
  rnd::Rng topo_rng(1);
  const net::Topology topology =
      net::Topology::Generate(net::SmallTopologyParams(), topo_rng);
  ChaosConfig c;
  c.population = 500;
  c.warmup_s = 400.0;
  c.stream_s = 60.0;
  c.drain_s = 120.0;
  c.seed = 9;
  c.fault.loss_rate = 0.05;
  c.fault.dup_prob = 0.01;
  c.fault.jitter_s = 0.05;
  c.session.root_bandwidth = 20.0;  // force a deep tree at this scale
  c.rost.switching_interval_s = 120.0;
  c.domain_kill_at_s = 5.0;
  c.domain_kill_index = 1;
  const ChaosResult r = RunChaosScenario(topology, c);
  EXPECT_TRUE(r.zero_wedged_locks);
  EXPECT_EQ(r.counters.wedged_leases, 0);
  EXPECT_EQ(r.unrooted_members, 0) << "orphans failed to reattach";
  EXPECT_GT(r.domain_members_killed, 0);
  EXPECT_GT(r.counters.messages_dropped, 0);
  EXPECT_GT(r.counters.detections, 0);
  EXPECT_GT(r.counters.leases_granted, 0);
  EXPECT_EQ(r.counters.leases_granted,
            r.counters.leases_released + r.counters.leases_expired +
                r.counters.leases_outstanding);
  EXPECT_GT(r.final_population, 0);
}

// Regression: this exact bake-off cell (flash_crowd / clique, shared seed
// for rep 0) once hung forever. The flash kills a member that had earlier
// taken over a sibling repair stripe -- so it served two stripes of one
// group -- and OnDeparture's failover sweep, running while the departing
// member is still marked alive, handed each dead stripe back to the dying
// server, minting server==failed stripes faster than it retired them.
// FailoverStripe must never select the dead stripe's own server.
TEST(ChaosScenario, FlashCrowdSurvivesMidTakeoverServerDeath) {
  rnd::Rng topo_rng(1 ^ 0xde62adULL);
  const net::Topology topology =
      net::Topology::Generate(net::SmallTopologyParams(), topo_rng);
  ChaosConfig c;
  c.algorithm = Algorithm::kClique;
  c.population = 150;
  c.warmup_s = 300.0;
  c.stream_s = 90.0;
  c.drain_s = 90.0;
  c.seed = 12887781531040884567ULL;  // CellSeed(1, "bakeoff", "flash_crowd",
                                     // "shared", 0)
  c.fault.loss_rate = 0.02;
  c.fault.dup_prob = 0.01;
  c.fault.jitter_s = 0.02;
  c.session.root_bandwidth = 16.0;
  c.rost.switching_interval_s = 120.0;
  c.packet.frame_playback = true;
  c.flash_at_s = 10.0;
  c.flash_departures = 30;
  const ChaosResult r = RunChaosScenario(topology, c);
  EXPECT_GT(r.counters.stripe_failovers, 0)
      << "the mid-takeover failover no longer fires; the regression is "
         "vacuous";
  EXPECT_TRUE(r.zero_wedged_locks);
  EXPECT_EQ(r.unrooted_members, 0) << "orphans failed to reattach";
  EXPECT_EQ(r.reentries_pending, 0);
  EXPECT_GT(r.final_population, 0);
}

}  // namespace
}  // namespace omcast::exp
