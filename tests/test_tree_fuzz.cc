// Randomized differential test: drive Tree with random attach/detach/remove
// sequences and check every query against a naive reference model (plain
// parent array + brute-force walks).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "overlay/tree.h"
#include "rand/rng.h"

namespace omcast::overlay {
namespace {

// Naive reference: parent pointers only; everything recomputed on demand.
class ReferenceModel {
 public:
  void Add(NodeId id) { parent_[id] = kNoNode; }

  void Attach(NodeId parent, NodeId child) { parent_[child] = parent; }
  void Detach(NodeId child) { parent_[child] = kNoNode; }
  void Remove(NodeId id) {
    for (auto& [node, p] : parent_)
      if (p == id) p = kNoNode;
    parent_.erase(id);
  }

  bool IsRooted(NodeId id) const {
    NodeId cur = id;
    std::set<NodeId> seen;
    while (cur != kNoNode && cur != kRootId) {
      if (!seen.insert(cur).second) return false;  // cycle (must not happen)
      const auto it = parent_.find(cur);
      cur = it == parent_.end() ? kNoNode : it->second;
    }
    return cur == kRootId;
  }

  std::set<NodeId> Descendants(NodeId id) const {
    std::set<NodeId> out;
    bool grew = true;
    while (grew) {
      grew = false;
      for (const auto& [node, p] : parent_) {
        if (out.contains(node) || node == id) continue;
        if (p == id || out.contains(p)) {
          out.insert(node);
          grew = true;
        }
      }
    }
    return out;
  }

  int Layer(NodeId id) const {
    int depth = 0;
    NodeId cur = id;
    while (cur != kRootId) {
      cur = parent_.at(cur);
      ++depth;
    }
    return depth;
  }

  int SharedPathEdges(NodeId a, NodeId b) const {
    auto path = [&](NodeId n) {
      std::vector<NodeId> p;
      for (NodeId cur = n; cur != kNoNode; cur = [&] {
             const auto it = parent_.find(cur);
             return it == parent_.end() ? kNoNode : it->second;
           }())
        p.push_back(cur);
      return p;
    };
    auto pa = path(a);
    auto pb = path(b);
    int shared = -1;
    auto ia = pa.rbegin();
    auto ib = pb.rbegin();
    while (ia != pa.rend() && ib != pb.rend() && *ia == *ib) {
      ++shared;
      ++ia;
      ++ib;
    }
    return shared;
  }

  const std::map<NodeId, NodeId>& parents() const { return parent_; }

 private:
  std::map<NodeId, NodeId> parent_;  // kNoNode == detached
};

class TreeFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeFuzzTest, MatchesReferenceModel) {
  rnd::Rng rng(GetParam());
  Tree tree(0, 4.0);  // root capacity 4 to force real depth
  ReferenceModel ref;
  std::vector<NodeId> alive = {kRootId};

  const int kOps = 600;
  for (int op = 0; op < kOps; ++op) {
    const int dice = rng.UniformInt(0, 99);
    if (dice < 35 || alive.size() < 3) {
      // Create + try to attach under a random rooted member with capacity.
      const NodeId id = tree.CreateMember(
          100 + op, rng.Uniform(0.0, 5.0), 0.0, 1e9);
      ref.Add(id);
      alive.push_back(id);
      for (int attempt = 0; attempt < 8; ++attempt) {
        const NodeId p = alive[rng.UniformIndex(alive.size())];
        if (p == id || !tree.Alive(p)) continue;
        if (tree.SpareCapacity(p) <= 0) continue;
        if (!tree.IsRooted(p)) continue;
        if (tree.IsInSubtreeOf(p, id)) continue;
        tree.Attach(p, id);
        ref.Attach(p, id);
        break;
      }
    } else if (dice < 60) {
      // Detach a random attached non-root member (fragment root).
      const NodeId id = alive[rng.UniformIndex(alive.size())];
      if (id != kRootId && tree.Parent(id) != kNoNode) {
        tree.Detach(id);
        ref.Detach(id);
      }
    } else if (dice < 85) {
      // Re-attach a random detached member somewhere legal.
      const NodeId id = alive[rng.UniformIndex(alive.size())];
      if (id != kRootId && tree.Parent(id) == kNoNode) {
        for (int attempt = 0; attempt < 8; ++attempt) {
          const NodeId p = alive[rng.UniformIndex(alive.size())];
          if (p == id || tree.SpareCapacity(p) <= 0) continue;
          if (!tree.IsRooted(p)) continue;
          if (tree.IsInSubtreeOf(p, id)) continue;
          tree.Attach(p, id);
          ref.Attach(p, id);
          break;
        }
      }
    } else {
      // Remove (depart) a random non-root member.
      const NodeId id = alive[rng.UniformIndex(alive.size())];
      if (id != kRootId && tree.Alive(id)) {
        tree.RemoveFromTree(id);
        tree.MarkDead(id);
        ref.Remove(id);
        std::erase(alive, id);
      }
    }

    // Cross-check the full state every few operations.
    if (op % 20 != 19) continue;
    tree.CheckInvariants();
    for (const auto& [node, parent] : ref.parents()) {
      EXPECT_EQ(tree.Parent(node), parent) << "node " << node;
      EXPECT_EQ(tree.IsRooted(node), ref.IsRooted(node)) << "node " << node;
      if (ref.IsRooted(node)) {
        EXPECT_EQ(tree.Layer(node), ref.Layer(node)) << "node " << node;
      }
      const auto expected = ref.Descendants(node);
      std::set<NodeId> actual;
      tree.ForEachDescendant(node, [&](NodeId d) { actual.insert(d); });
      EXPECT_EQ(actual, expected) << "node " << node;
    }
    // Shared-path edges on a few random rooted pairs.
    std::vector<NodeId> rooted;
    for (const auto& [node, parent] : ref.parents())
      if (ref.IsRooted(node)) rooted.push_back(node);
    rooted.push_back(kRootId);
    for (int pair = 0; pair < 5 && rooted.size() >= 2; ++pair) {
      const NodeId a = rooted[rng.UniformIndex(rooted.size())];
      const NodeId b = rooted[rng.UniformIndex(rooted.size())];
      EXPECT_EQ(tree.SharedPathEdges(a, b), ref.SharedPathEdges(a, b))
          << a << " vs " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace omcast::overlay
