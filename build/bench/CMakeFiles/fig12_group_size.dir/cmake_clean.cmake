file(REMOVE_RECURSE
  "CMakeFiles/fig12_group_size.dir/fig12_group_size.cc.o"
  "CMakeFiles/fig12_group_size.dir/fig12_group_size.cc.o.d"
  "fig12_group_size"
  "fig12_group_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_group_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
