# Empty dependencies file for adversarial_churn.
# This may be replaced when dependencies are built.
