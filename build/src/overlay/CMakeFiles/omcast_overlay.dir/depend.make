# Empty dependencies file for omcast_overlay.
# This may be replaced when dependencies are built.
