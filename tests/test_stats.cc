#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace omcast::util {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_half_width(), 0.0);
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squares = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeMatchesCombinedStream) {
  RunningStat all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(static_cast<double>(i)) * 10.0;
    all.Add(x);
    (i % 3 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);  // empty rhs: unchanged
  EXPECT_EQ(a.count(), 2u);
  b.Merge(a);  // empty lhs: adopts rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStat, Ci95ShrinksWithSamples) {
  RunningStat small, large;
  for (int i = 0; i < 10; ++i) small.Add(i % 2 == 0 ? 1.0 : 3.0);
  for (int i = 0; i < 1000; ++i) large.Add(i % 2 == 0 ? 1.0 : 3.0);
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
  EXPECT_GT(large.ci95_half_width(), 0.0);
}

TEST(EmpiricalCdf, CollapsesDuplicates) {
  const auto cdf = EmpiricalCdf({1.0, 1.0, 2.0, 3.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.5);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(EmpiricalCdf, EmptyInput) { EXPECT_TRUE(EmpiricalCdf({}).empty()); }

TEST(CdfAt, EvaluatesAtGrid) {
  const auto f = CdfAt({1, 2, 4, 8, 16}, {0.5, 1.0, 4.0, 100.0});
  ASSERT_EQ(f.size(), 4u);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[1], 0.2);
  EXPECT_DOUBLE_EQ(f[2], 0.6);
  EXPECT_DOUBLE_EQ(f[3], 1.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 50), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(Mean, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

}  // namespace
}  // namespace omcast::util
