file(REMOVE_RECURSE
  "CMakeFiles/test_tree_fuzz.dir/test_tree_fuzz.cc.o"
  "CMakeFiles/test_tree_fuzz.dir/test_tree_fuzz.cc.o.d"
  "test_tree_fuzz"
  "test_tree_fuzz.pdb"
  "test_tree_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
