file(REMOVE_RECURSE
  "CMakeFiles/test_packet_eln.dir/test_packet_eln.cc.o"
  "CMakeFiles/test_packet_eln.dir/test_packet_eln.cc.o.d"
  "test_packet_eln"
  "test_packet_eln.pdb"
  "test_packet_eln[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packet_eln.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
