// FaultPlane unit tests: loss/duplication/jitter statistics, per-link
// overrides, episodic (ISP-level correlated) loss phases, counter
// accounting, and bit-reproducibility of the fault schedule under a fixed
// seed.
#include "sim/fault_plane.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace omcast::sim {
namespace {

TEST(FaultPlane, ZeroRatesDeliverEverythingExactlyOnce) {
  Simulator sim;
  FaultPlane plane(sim, {}, 1);
  int delivered = 0;
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(plane.Deliver(1, 2, 0.01, [&] { ++delivered; }));
  sim.Run();
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(plane.messages_sent(), 100);
  EXPECT_EQ(plane.messages_dropped(), 0);
  EXPECT_EQ(plane.messages_duplicated(), 0);
  EXPECT_EQ(plane.messages_delivered(), 100);
}

TEST(FaultPlane, LossRateDropsTheExpectedFraction) {
  Simulator sim;
  FaultPlaneParams params;
  params.loss_rate = 0.3;
  FaultPlane plane(sim, params, 2);
  int delivered = 0;
  for (int i = 0; i < 2000; ++i) plane.Deliver(1, 2, 0.01, [&] { ++delivered; });
  sim.Run();
  EXPECT_EQ(plane.messages_dropped() + plane.messages_delivered(), 2000);
  // 600 expected drops; 5 sigma ~ 100.
  EXPECT_NEAR(static_cast<double>(plane.messages_dropped()), 600.0, 110.0);
  EXPECT_EQ(delivered, plane.messages_delivered());
}

TEST(FaultPlane, CertainDuplicationDeliversEveryMessageTwice) {
  Simulator sim;
  FaultPlaneParams params;
  params.dup_prob = 1.0;
  FaultPlane plane(sim, params, 3);
  int delivered = 0;
  for (int i = 0; i < 50; ++i) plane.Deliver(1, 2, 0.01, [&] { ++delivered; });
  sim.Run();
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(plane.messages_duplicated(), 50);
  EXPECT_EQ(plane.messages_delivered(), 100);
}

TEST(FaultPlane, JitterReordersMessagesOnOneLink) {
  Simulator sim;
  FaultPlaneParams params;
  params.jitter_s = 1.0;  // huge against the 10 ms send spacing
  FaultPlane plane(sim, params, 4);
  std::vector<int> arrival_order;
  for (int i = 0; i < 20; ++i) {
    sim.ScheduleAt(0.01 * i, [&plane, &arrival_order, i] {
      plane.Deliver(1, 2, 0.001, [&arrival_order, i] {
        arrival_order.push_back(i);
      });
    });
  }
  sim.Run();
  ASSERT_EQ(arrival_order.size(), 20u);
  EXPECT_FALSE(std::is_sorted(arrival_order.begin(), arrival_order.end()))
      << "with 1 s of jitter over 10 ms spacing, some overtake must happen";
}

TEST(FaultPlane, PerLinkOverrideSeversOnlyThatLink) {
  Simulator sim;
  FaultPlane plane(sim, {}, 5);
  plane.SetLinkLossRate(1, 2, 1.0);
  int on_dead_link = 0;
  int on_live_link = 0;
  for (int i = 0; i < 20; ++i) {
    plane.Deliver(1, 2, 0.01, [&] { ++on_dead_link; });
    plane.Deliver(2, 1, 0.01, [&] { ++on_live_link; });  // reverse direction
    plane.Deliver(1, 3, 0.01, [&] { ++on_live_link; });
  }
  sim.Run();
  EXPECT_EQ(on_dead_link, 0);
  EXPECT_EQ(on_live_link, 40);
  plane.ClearLinkOverrides();
  plane.Deliver(1, 2, 0.01, [&] { ++on_dead_link; });
  sim.Run();
  EXPECT_EQ(on_dead_link, 1);
}

TEST(FaultPlane, FaultScheduleIsSeedReproducible) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    FaultPlaneParams params;
    params.loss_rate = 0.25;
    params.dup_prob = 0.1;
    params.jitter_s = 0.05;
    FaultPlane plane(sim, params, seed);
    std::vector<std::pair<double, int>> trace;
    for (int i = 0; i < 300; ++i) {
      sim.ScheduleAt(0.01 * i, [&plane, &trace, i, &sim] {
        plane.Deliver(i % 7, i % 5, 0.002, [&trace, i, &sim] {
          trace.push_back({sim.now(), i});
        });
      });
    }
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(FaultPlane, EpisodicLossBlanketsGroupWhileEpisodeIsOn) {
  Simulator sim;
  FaultPlane plane(sim, {}, 6);
  plane.SetNodeGroup(2, 7);
  plane.SetNodeGroup(3, 7);
  EpisodicLossParams episode;
  episode.loss_rate = 1.0;
  episode.mean_on_s = 10.0;  // far beyond the test horizon
  episode.mean_off_s = 10.0;
  episode.duration = EpisodicLossParams::Duration::kFixed;
  int in_group = 0;
  int outside = 0;
  sim.ScheduleAt(1.0, [&] {
    plane.StartEpisodicLoss(7, episode);
    EXPECT_TRUE(plane.EpisodeActive(7));
    for (int i = 0; i < 20; ++i) {
      plane.Deliver(1, 2, 0.01, [&] { ++in_group; });   // to a group node
      plane.Deliver(3, 1, 0.01, [&] { ++in_group; });   // from a group node
      plane.Deliver(1, 4, 0.01, [&] { ++outside; });    // group-free link
    }
  });
  // Bounded run: the episodic on/off process self-perpetuates, so Run()
  // would never drain the queue.
  sim.RunUntil(5.0);
  EXPECT_EQ(in_group, 0) << "episode at loss 1.0 must drop both directions";
  EXPECT_EQ(outside, 20);
  EXPECT_EQ(plane.episodes_started(), 1);
}

TEST(FaultPlane, EpisodicLossAlternatesOnAndOffPhases) {
  Simulator sim;
  FaultPlane plane(sim, {}, 7);
  plane.SetNodeGroup(2, 1);
  EpisodicLossParams episode;
  episode.loss_rate = 1.0;
  episode.mean_on_s = 1.0;
  episode.mean_off_s = 1.0;
  episode.duration = EpisodicLossParams::Duration::kFixed;
  plane.StartEpisodicLoss(1, episode);
  // Probe the link once per 0.25 s across [0, 4): ON in [0,1) and [2,3),
  // OFF in [1,2) and [3,4) -- fixed durations make the phases exact.
  int delivered_in_on = 0;
  int delivered_in_off = 0;
  for (int i = 0; i < 16; ++i) {
    const double t = 0.25 * i + 0.01;  // keep clear of the phase edges
    const bool on_phase = (i / 4) % 2 == 0;
    sim.ScheduleAt(t, [&plane, &delivered_in_on, &delivered_in_off,
                       on_phase] {
      plane.Deliver(1, 2, 0.001, [&delivered_in_on, &delivered_in_off,
                                  on_phase] {
        ++(on_phase ? delivered_in_on : delivered_in_off);
      });
    });
  }
  sim.RunUntil(3.9);  // short of the t=4 toggle, which starts episode 3
  EXPECT_EQ(delivered_in_on, 0);
  EXPECT_EQ(delivered_in_off, 8);
  EXPECT_EQ(plane.episodes_started(), 2);  // [0,1) and [2,3)
}

TEST(FaultPlane, StopEpisodicLossCancelsPendingToggles) {
  Simulator sim;
  FaultPlane plane(sim, {}, 8);
  plane.SetNodeGroup(2, 1);
  EpisodicLossParams episode;
  episode.mean_on_s = 1.0;
  episode.mean_off_s = 1.0;
  episode.duration = EpisodicLossParams::Duration::kFixed;
  plane.StartEpisodicLoss(1, episode);
  sim.ScheduleAt(0.5, [&] {
    plane.StopEpisodicLoss(1);
    EXPECT_FALSE(plane.EpisodeActive(1));
  });
  int delivered = 0;
  sim.ScheduleAt(2.5, [&] {  // would be mid-second-episode if not stopped
    plane.Deliver(1, 2, 0.001, [&] { ++delivered; });
  });
  sim.RunUntil(10.0);
  EXPECT_EQ(delivered, 1);
  EXPECT_FALSE(plane.EpisodeActive(1));
  EXPECT_EQ(plane.episodes_started(), 1) << "no resurrection after stop";
}

TEST(FaultPlane, EpisodicProcessDoesNotPerturbMessageFates) {
  // The fate of each message (lost / duplicated / jitter) must be identical
  // whether or not an episodic process is running on an UNRELATED group:
  // episode durations draw from a separate stream.
  auto run = [](bool with_episodes) {
    Simulator sim;
    FaultPlaneParams params;
    params.loss_rate = 0.25;
    params.dup_prob = 0.1;
    params.jitter_s = 0.05;
    FaultPlane plane(sim, params, 42);
    if (with_episodes) {
      plane.SetNodeGroup(999, 5);  // group disjoint from probed links
      plane.StartEpisodicLoss(5, {});
    }
    std::vector<std::pair<double, int>> trace;
    for (int i = 0; i < 300; ++i) {
      sim.ScheduleAt(0.01 * i, [&plane, &trace, i, &sim] {
        plane.Deliver(i % 7, i % 5, 0.002, [&trace, i, &sim] {
          trace.push_back({sim.now(), i});
        });
      });
    }
    sim.RunUntil(600.0);
    return trace;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(FaultPlaneDeathTest, RejectsInvalidEpisodicParams) {
  Simulator sim;
  FaultPlane plane(sim, {}, 9);
  EpisodicLossParams bad_rate;
  bad_rate.loss_rate = 1.5;
  EXPECT_DEATH(plane.StartEpisodicLoss(1, bad_rate), "CHECK failed");
  EpisodicLossParams bad_duration;
  bad_duration.mean_on_s = 0.0;
  EXPECT_DEATH(plane.StartEpisodicLoss(1, bad_duration), "CHECK failed");
}

TEST(FaultPlaneDeathTest, RejectsInvalidProbabilities) {
  Simulator sim;
  FaultPlaneParams bad;
  bad.loss_rate = 1.5;
  EXPECT_DEATH(FaultPlane(sim, bad, 1), "CHECK failed");
  FaultPlaneParams neg;
  neg.jitter_s = -0.1;
  EXPECT_DEATH(FaultPlane(sim, neg, 1), "CHECK failed");
}

}  // namespace
}  // namespace omcast::sim
