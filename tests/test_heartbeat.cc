// HeartbeatService tests: genuine detection (parent really died) with
// bounded latency, no false suspicions on a clean plane, and false
// suspicion + disruption-free recovery when a link is fully severed.
#include "overlay/heartbeat.h"

#include <gtest/gtest.h>

#include <memory>

#include "net/topology.h"
#include "proto/min_depth.h"
#include "sim/fault_plane.h"
#include "sim/simulator.h"

namespace omcast::overlay {
namespace {

class HeartbeatTest : public ::testing::Test {
 protected:
  HeartbeatTest() {
    rnd::Rng topo_rng(1);
    topology_ = std::make_unique<net::Topology>(
        net::Topology::Generate(net::TinyTopologyParams(), topo_rng));
  }

  void MakeSession(std::uint64_t seed = 5) {
    SessionParams sp;
    sp.external_failure_detection = true;
    session_ = std::make_unique<Session>(
        sim_, *topology_, std::make_unique<proto::MinDepthProtocol>(), sp,
        seed);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topology_;
  std::unique_ptr<Session> session_;
};

TEST_F(HeartbeatTest, DetectsRealParentDeathAndRejoinsTheOrphan) {
  MakeSession();
  HeartbeatParams hp;  // period 1 s, 3 misses -> 4 s suspicion timeout
  HeartbeatService hb(*session_, hp, 7);

  Tree& tree = session_->tree();
  tree.SetCapacity(kRootId, 1);
  const NodeId parent = session_->InjectMember(2.0, 1e9);
  sim_.RunUntil(1.0);
  const NodeId child = session_->InjectMember(1.0, 1e9);
  sim_.RunUntil(2.0);
  ASSERT_EQ(tree.Parent(child), parent);

  session_->DepartNow(parent);
  // The session must NOT have rejoined the orphan on its own...
  EXPECT_EQ(tree.Parent(child), kNoNode);
  // ...but the detector notices the silence within its timeout (+1 beat of
  // phase, + hops) and re-enters the join path.
  sim_.RunUntil(sim_.now() + hb.SuspicionTimeout() + hp.period_s + 1.0);
  EXPECT_EQ(hb.detections(), 1);
  EXPECT_EQ(hb.false_suspicions(), 0);
  EXPECT_NE(tree.Parent(child), kNoNode);
  EXPECT_TRUE(tree.IsRooted(child));

  // Latency metric: the silence clock starts at the last beat *before* the
  // death, so latency spans [timeout - period, timeout + period] (+ hops).
  ASSERT_EQ(hb.detection_latency().count(), 1);
  EXPECT_GE(hb.detection_latency().mean(),
            hb.SuspicionTimeout() - hp.period_s - 0.5);
  EXPECT_LE(hb.detection_latency().mean(),
            hb.SuspicionTimeout() + hp.period_s + 0.5);
}

TEST_F(HeartbeatTest, QuietCleanPlaneProducesNoSuspicions) {
  MakeSession();
  HeartbeatService hb(*session_, {}, 7);
  session_->Prepopulate(30);
  sim_.RunUntil(60.0);
  EXPECT_GT(hb.heartbeats_sent(), 0);
  EXPECT_EQ(hb.false_suspicions(), 0);
}

TEST_F(HeartbeatTest, SeveredLinkCausesFalseSuspicionAndReconnection) {
  MakeSession();
  sim::FaultPlane plane(sim_, {}, 11);
  HeartbeatParams hp;
  HeartbeatService hb(*session_, hp, 7, &plane);

  Tree& tree = session_->tree();
  tree.SetCapacity(kRootId, 1);
  const NodeId parent = session_->InjectMember(2.0, 1e9);
  sim_.RunUntil(1.0);
  const NodeId child = session_->InjectMember(1.0, 1e9);
  sim_.RunUntil(2.0);
  ASSERT_EQ(tree.Parent(child), parent);
  const int reconnections_before = tree.Get(child).reconnections;

  // Sever parent -> child: every heartbeat is lost, though the parent is
  // alive and forwarding. The child cannot tell this from a death.
  plane.SetLinkLossRate(parent, child, 1.0);
  sim_.RunUntil(sim_.now() + hb.SuspicionTimeout() + hp.period_s + 2.0);
  EXPECT_GE(hb.false_suspicions(), 1);
  EXPECT_EQ(hb.detections(), 0);
  // The child re-entered the join path (charged as protocol overhead, not a
  // disruption) and is attached again.
  EXPECT_GT(tree.Get(child).reconnections, reconnections_before);
  EXPECT_TRUE(tree.Alive(child));
}

}  // namespace
}  // namespace omcast::overlay
