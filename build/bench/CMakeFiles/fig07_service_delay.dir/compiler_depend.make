# Empty compiler generated dependencies file for fig07_service_delay.
# This may be replaced when dependencies are built.
