// Fixture [pointer-sort]: ordering by raw pointer value varies run to run
// under ASLR; key by a stable id instead.
#include <cstdint>
#include <map>
#include <set>

namespace fixture {

struct Node {
  int id = 0;
};

std::set<Node*> active;  // expect(pointer-sort)

std::uintptr_t Key(const Node* n) {
  return reinterpret_cast<std::uintptr_t>(n);  // expect(pointer-sort)
}

// Negative: keying by the stable id is clean.
std::map<int, Node*> by_id;

}  // namespace fixture
