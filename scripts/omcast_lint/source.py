"""Source model shared by every rule: comment/string stripping, a
lightweight C++ tokenizer, and brace-matched block/function extraction.

All line indices in this module are 0-based; findings convert to 1-based
only at the reporting boundary.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

CXX_SUFFIXES = {".cc", ".cpp", ".cxx", ".h", ".hpp", ".hh"}

ALLOW_RE = re.compile(r"omcast-lint:\s*allow\(([a-z\-,\s]+)\)")


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals so rule regexes never match
    inside them, preserving line numbers (newlines survive)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^(\s]*)\(', text[i:])
                if m:
                    state = "raw"
                    raw_delim = ")" + m.group(1) + '"'
                    out.append(" " * len(m.group(0)))
                    i += len(m.group(0))
                    continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "number" | "punct"
    text: str
    line: int  # 0-based

    def __repr__(self) -> str:  # compact for debugging
        return f"{self.kind}:{self.text}@{self.line + 1}"


_TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*"            # identifiers / keywords
    r"|\d[\w.+\-]*"            # numeric literals (incl. 1e-3, 0xff)
    r"|::|->|<<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\||\+\+|--|\+=|-=|\*=|/=|\.\.\."
    r"|[{}()\[\];,<>=*&:.#~!+\-/|?%^]"
)

_KIND_IDENT = re.compile(r"[A-Za-z_]")
_KIND_NUMBER = re.compile(r"\d")


def tokenize(code_lines: list[str]) -> list[Token]:
    """Tokenizes blanked source (run strip_comments_and_strings first)."""
    tokens: list[Token] = []
    for i, line in enumerate(code_lines):
        for m in _TOKEN_RE.finditer(line):
            text = m.group(0)
            if _KIND_IDENT.match(text):
                kind = "ident"
            elif _KIND_NUMBER.match(text):
                kind = "number"
            else:
                kind = "punct"
            tokens.append(Token(kind, text, i))
    return tokens


# ---------------------------------------------------------------------------
# SourceFile: the unit every rule operates on
# ---------------------------------------------------------------------------

@dataclass
class SourceFile:
    path: Path
    raw_lines: list[str]
    code_lines: list[str]   # comments/strings blanked; same line count
    _tokens: list[Token] | None = field(default=None, repr=False)

    @classmethod
    def from_text(cls, path: Path, text: str) -> "SourceFile":
        return cls(path=path,
                   raw_lines=text.splitlines(),
                   code_lines=strip_comments_and_strings(text).splitlines())

    @classmethod
    def load(cls, path: Path) -> "SourceFile | None":
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError as e:
            print(f"warning: cannot read {path}: {e}", file=sys.stderr)
            return None
        return cls.from_text(path, text)

    @property
    def tokens(self) -> list[Token]:
        """Token stream, computed lazily and shared by all rules."""
        if self._tokens is None:
            self._tokens = tokenize(self.code_lines)
        return self._tokens

    def allow_annotations(self) -> list[tuple[int, list[str]]]:
        """(line_idx, [rule names]) for every allow() annotation, raw text
        (annotations live in comments, which the code view blanks)."""
        out = []
        for i, line in enumerate(self.raw_lines):
            m = ALLOW_RE.search(line)
            if m:
                out.append((i, [r.strip() for r in m.group(1).split(",")
                                if r.strip()]))
        return out

    def allowed_rules(self, idx: int) -> set[str]:
        """Rules allowed at line `idx` (annotation on the line or the one
        above)."""
        allowed: set[str] = set()
        for j in (idx, idx - 1):
            if 0 <= j < len(self.raw_lines):
                m = ALLOW_RE.search(self.raw_lines[j])
                if m:
                    allowed.update(r.strip() for r in m.group(1).split(","))
        return allowed


# ---------------------------------------------------------------------------
# Brace-matched extraction (token-stream based)
# ---------------------------------------------------------------------------

def block_end_line(tokens: list[Token], open_index: int) -> int | None:
    """Given the index of a '{' token, returns the 0-based line of its
    matching '}', or None if unbalanced."""
    depth = 0
    for k in range(open_index, len(tokens)):
        t = tokens[k]
        if t.text == "{":
            depth += 1
        elif t.text == "}":
            depth -= 1
            if depth == 0:
                return t.line
    return None


@dataclass(frozen=True)
class MethodDef:
    name: str
    start: int  # 0-based line of the qualified name
    body_start: int  # 0-based line of the opening '{'
    end: int    # 0-based line of the closing '}'


def find_method_definitions(sf: SourceFile, class_name: str) -> list[MethodDef]:
    """Out-of-line member-function definitions `class_name::Name(...) {...}`.

    Walks the token stream: a `class_name :: Name (` sequence followed (at
    paren depth zero) by `{` is a definition; a `;` first means it was only
    a declaration or a qualified call inside an expression.
    """
    toks = sf.tokens
    defs: list[MethodDef] = []
    k = 0
    while k + 3 < len(toks):
        if (toks[k].kind == "ident" and toks[k].text == class_name
                and toks[k + 1].text == "::" and toks[k + 2].kind == "ident"
                and toks[k + 3].text == "("):
            name = toks[k + 2].text
            start = toks[k].line
            # Scan past the parameter list, then to the body's '{'.
            depth = 0
            j = k + 3
            body = None
            while j < len(toks):
                t = toks[j]
                if t.text == "(":
                    depth += 1
                elif t.text == ")":
                    depth -= 1
                elif depth == 0:
                    if t.text == "{":
                        body = j
                        break
                    if t.text in (";", "=", ","):
                        break  # declaration / pointer-to-member / call
                j += 1
            if body is not None:
                end = block_end_line(toks, body)
                if end is not None:
                    defs.append(MethodDef(name, start, toks[body].line, end))
                    k = j
        k += 1
    return defs


def range_for_block(sf: SourceFile, for_line: int) -> tuple[int, int]:
    """(first, last) 0-based line range of a range-for's body, inclusive of
    the `for` line. Brace-matched when the statement opens a block; a
    braceless single statement extends through the next line."""
    toks = sf.tokens
    # First '{' token at or after for_line, before any ';' that would end a
    # braceless body.
    for k, t in enumerate(toks):
        if t.line < for_line:
            continue
        if t.line > for_line + 1:
            break
        if t.text == "{":
            end = block_end_line(toks, k)
            if end is not None:
                return (for_line, end)
            break
    return (for_line, min(for_line + 1, len(sf.code_lines) - 1))
