// Fixture [trace-wallclock]: a wall-clock value inside a trace emission
// breaks byte-identical replay of the JSONL export.
namespace fixture {

double WallMs();

struct Tracer {
  void Emit(int kind, int subject, double when);
};

void BadEmit(Tracer* tracer) {
  tracer->Emit(0, 7, WallMs());  // expect(trace-wallclock)
}

void BadEmitWrapped(Tracer* tracer) {
  tracer->Emit(  // expect(trace-wallclock)
      0, 7,
      WallMs());
}

// Negative: sim time and stable ids only.
void GoodEmit(Tracer* tracer, double sim_now) {
  tracer->Emit(0, 7, sim_now);
}

}  // namespace fixture
