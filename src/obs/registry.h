// Unified metrics registry: counters, gauges and fixed-bucket histograms.
//
// One Registry instance belongs to one simulation run (a runner grid cell, a
// chaos scenario); it is the single export path for protocol counters --
// the chaos resilience counters (metrics/chaos_counters.h is now a thin shim
// over it) and the per-protocol message-cost tallies behind Fig. 10 -- and
// its Flatten()ed snapshot lands in the runner's versioned JSON results
// (schema version 2, per-cell "registry" object).
//
// Everything is deterministic: std::map storage, fixed bucket bounds chosen
// by the instrumentation site, and quantiles interpolated from the bucket
// counts (cross-checked against util::RunningStat by tests/test_obs.cc).
//
// Thread-compatibility contract (checked statically, not with a lock): a
// Registry is deliberately unsynchronized because it is *cell-confined* --
// each runner grid cell builds its own instance on its own worker thread
// and only the Flatten()ed value crosses threads, via the cell's
// pre-assigned result slot. Cross-thread aggregation goes through
// MergeFrom on a registry the caller owns (after ThreadPool::Wait), never
// through sharing one live Registry between threads. Adding a mutex here
// would buy nothing and put a lock acquisition on every protocol counter
// bump; the omcast-lint raw-mutex rule plus the clang -Wthread-safety
// preset keep the synchronized world (util::Mutex users) and this
// single-owner world honestly separated.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/timeseries.h"

namespace omcast::obs {

// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
// first bounds.size() buckets; one overflow bucket catches the rest.
// Exact count/sum/min/max are tracked alongside, so the mean is the exact
// sum / count (it matches util::RunningStat's Welford mean to floating-point
// round-off) while quantiles are bucket-interpolated estimates.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  long count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  const std::vector<double>& bounds() const { return bounds_; }
  // bucket_counts()[i] counts observations in (bounds[i-1], bounds[i]];
  // the final entry is the overflow bucket.
  const std::vector<long>& bucket_counts() const { return counts_; }

  // Bucket-interpolated quantile estimate for q in [0, 1]: linear within the
  // bucket holding rank q * count, clamped to [min, max] so the estimate can
  // never leave the observed range. Returns 0 on an empty histogram.
  double Quantile(double q) const;

  // Folds another histogram's observations in; the bucket bounds must match.
  void MergeFrom(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<long> counts_;  // bounds_.size() + 1 (overflow last)
  long count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class Registry {
 public:
  // Monotonic counter; creates at 0 on first touch.
  void Count(const std::string& name, double delta = 1.0);
  // Last-write-wins gauge.
  void SetGauge(const std::string& name, double value);
  // Returns the named histogram, creating it with `bounds` on first use
  // (later calls ignore `bounds`; the first registration wins).
  Histogram& Hist(const std::string& name, std::vector<double> bounds);
  void Observe(const std::string& name, std::vector<double> bounds, double v) {
    Hist(name, std::move(bounds)).Observe(v);
  }
  // Returns the named time series, creating it with (kind, window_s) on
  // first use (later calls ignore both; the first registration wins, as
  // with Hist). Series are the recovery-curve export path: they are NOT
  // part of Flatten() -- the runner writes them into the per-cell
  // `timeseries` block instead (results schema v3).
  TimeSeries& Series(const std::string& name, TimeSeries::Kind kind,
                     double window_s);

  const std::map<std::string, double>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, TimeSeries>& series() const { return series_; }

  double CounterValue(const std::string& name) const;

  // One flat deterministic name -> value map for per-cell export and
  // digests: counters and gauges verbatim; each histogram expanded to
  // name.count / .sum / .min / .max / .p50 / .p99.
  std::map<std::string, double> Flatten() const;

  // Folds another registry in: counters add, gauges last-write-wins,
  // histograms merge (matching names must have matching bounds), and time
  // series merge (matching names must have matching kind and window).
  void MergeFrom(const Registry& other);

 private:
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, TimeSeries> series_;
};

}  // namespace omcast::obs
