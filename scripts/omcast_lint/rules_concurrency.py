"""Concurrency rule: raw standard-library locking primitives are banned
outside the capability-annotated wrapper (src/util/mutex.h).

clang's -Wthread-safety cannot see through std::mutex / std::lock_guard /
std::unique_lock (they carry no capability attributes), so any code using
them silently opts out of the static lock-discipline analysis the clang
preset enforces. util::Mutex / util::MutexLock / util::CondVar are the
annotated equivalents; this rule keeps the analyzable world closed.
"""

from __future__ import annotations

import re

from .registry import rule
from .source import SourceFile

RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b|"
    r"std::condition_variable(?:_any)?\b|"
    r"std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b|"
    r"\bpthread_mutex\w*")

# The one legal home of the raw primitives: the wrapper itself.
WRAPPER_SUFFIX = "util/mutex.h"


@rule("raw-mutex",
      "raw std::mutex/condition_variable/lock_guard outside util/mutex.h: "
      "invisible to clang -Wthread-safety; use util::Mutex + MutexLock")
def find_raw_mutex(sf: SourceFile):
    if sf.path.as_posix().endswith(WRAPPER_SUFFIX):
        return []
    hits = []
    for i, line in enumerate(sf.code_lines):
        if RAW_MUTEX_RE.search(line):
            hits.append((i, "raw standard-library mutex/lock outside the "
                            "annotated wrapper: use util::Mutex, "
                            "util::MutexLock and util::CondVar "
                            "(src/util/mutex.h) with OMCAST_GUARDED_BY "
                            "annotations so clang -Wthread-safety checks "
                            "the lock discipline"))
    return hits
