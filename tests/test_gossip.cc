#include "overlay/gossip.h"

#include <gtest/gtest.h>

#include <memory>

#include "net/topology.h"
#include "proto/min_depth.h"
#include "sim/simulator.h"

namespace omcast::overlay {
namespace {

class GossipTest : public ::testing::Test {
 protected:
  GossipTest() {
    rnd::Rng topo_rng(1);
    topology_ = std::make_unique<net::Topology>(
        net::Topology::Generate(net::TinyTopologyParams(), topo_rng));
    session_ = std::make_unique<Session>(
        sim_, *topology_, std::make_unique<proto::MinDepthProtocol>(),
        SessionParams{}, 7);
    gossip_ = std::make_unique<GossipService>(*session_, GossipParams{}, 7);
    session_->SetMembershipOracle(gossip_.get());
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topology_;
  std::unique_ptr<Session> session_;
  std::unique_ptr<GossipService> gossip_;
};

TEST_F(GossipTest, BootstrapSeedsViewOnJoin) {
  const NodeId a = session_->InjectMember(3.0, 1e9);
  sim_.RunUntil(0.5);
  const NodeId b = session_->InjectMember(1.0, 1e9);
  sim_.RunUntil(1.0);
  // b contacted members while joining: its view starts non-empty.
  EXPECT_GE(gossip_->ViewSize(b), 1u);
  // a joined an empty overlay; its first re-bootstrap tick fills the view.
  sim_.RunUntil(1.0 + 2 * GossipParams{}.period_s);
  EXPECT_GE(gossip_->ViewSize(a), 1u);
}

TEST_F(GossipTest, ViewsGrowThroughExchanges) {
  session_->Prepopulate(60);
  sim_.RunUntil(1.0);
  double initial = 0.0;
  for (NodeId id : session_->alive_members())
    initial += static_cast<double>(gossip_->ViewSize(id));
  sim_.RunUntil(300.0);  // ~10 gossip periods
  double later = 0.0;
  for (NodeId id : session_->alive_members())
    later += static_cast<double>(gossip_->ViewSize(id));
  EXPECT_GT(later, initial);
  // Views converge toward the 100-entry cap (60-member overlay: everyone
  // eventually knows almost everyone).
  EXPECT_GT(later / session_->alive_count(), 50.0);
  EXPECT_GT(gossip_->exchanges_performed(), 100);
}

TEST_F(GossipTest, ViewsStayBounded) {
  GossipParams p;
  p.view_size = 20;
  auto gossip = std::make_unique<GossipService>(*session_, p, 9);
  session_->SetMembershipOracle(gossip.get());
  session_->Prepopulate(80);
  sim_.RunUntil(400.0);
  for (NodeId id : session_->alive_members())
    EXPECT_LE(gossip->ViewSize(id), 20u);
}

TEST_F(GossipTest, DeadMembersWashOutOfViews) {
  session_->Prepopulate(70);
  sim_.RunUntil(400.0);
  // Kill a third of the population abruptly.
  std::vector<NodeId> victims;
  const auto alive = session_->alive_members();
  for (std::size_t i = 0; i < alive.size(); i += 3) victims.push_back(alive[i]);
  for (NodeId v : victims) session_->DepartNow(v);
  // After several TTL-lengths of exchanges, the victims must have washed
  // out of (almost) all views.
  sim_.RunUntil(400.0 + 3 * GossipParams{}.entry_ttl_s);
  const std::set<NodeId> victim_set(victims.begin(), victims.end());
  long victim_entries = 0;
  long total_entries = 0;
  for (NodeId id : session_->alive_members()) {
    for (NodeId k : gossip_->KnownMembers(*session_, id, 1000)) {
      ++total_entries;
      if (victim_set.contains(k)) ++victim_entries;
    }
  }
  ASSERT_GT(total_entries, 100);
  EXPECT_LT(static_cast<double>(victim_entries),
            0.02 * static_cast<double>(total_entries));
}

TEST_F(GossipTest, KnownMembersServesJoinsFromViews) {
  session_->Prepopulate(60);
  sim_.RunUntil(200.0);
  // Churned joins keep working when discovery runs over gossip views.
  session_->StartArrivals(60.0 / rnd::kMeanLifetimeSeconds);
  sim_.RunUntil(1500.0);
  int rooted = 0;
  for (NodeId id : session_->alive_members())
    if (session_->tree().IsRooted(id)) ++rooted;
  EXPECT_GE(rooted, session_->alive_count() * 8 / 10);
  session_->tree().CheckInvariants();
}

TEST_F(GossipTest, DepartedMemberStopsGossiping) {
  for (int i = 0; i < 10; ++i) session_->InjectMember(1.0, 1e9);
  const NodeId a = session_->InjectMember(2.0, 50.0);
  sim_.RunUntil(1.0);
  EXPECT_GE(gossip_->ViewSize(a), 1u);
  sim_.RunUntil(100.0);  // a departed at t=50
  EXPECT_EQ(gossip_->ViewSize(a), 0u);  // view torn down
}

TEST_F(GossipTest, ViewsExcludeSelfAndRoot) {
  session_->Prepopulate(50);
  sim_.RunUntil(300.0);
  for (NodeId id : session_->alive_members()) {
    const auto known = gossip_->KnownMembers(*session_, id, 100);
    for (NodeId k : known) {
      EXPECT_NE(k, id);
      EXPECT_NE(k, kRootId);
    }
  }
}

}  // namespace
}  // namespace omcast::overlay
