#!/bin/bash
# Regenerates every figure at the fast default scale through the parallel
# experiment runner. Each bench writes:
#   results/small/<name>.txt    -- the aligned text tables (stdout)
#   results/small/<name>.json   -- versioned per-cell results + run manifest
# and the sweep finishes by distilling results/small/bench_summary.json
# (per-figure wall-clock + headline metric) for regression eyeballing.
#
# Environment knobs:
#   THREADS=N   worker threads per bench (default: all cores)
#   RESUME=1    reuse per-cell results from a previous partial sweep
set -u
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
OUT=results/small
THREADS=${THREADS:-0}
RESUME=${RESUME:-0}
mkdir -p "$OUT"

# Stamped into every results manifest so a JSON file is traceable to a tree.
OMCAST_GIT_SHA=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
export OMCAST_GIT_SHA

common=(--threads="$THREADS" --out="$OUT")
if [ "$RESUME" = "1" ]; then common+=(--resume=true); fi

status=0
for b in "$BUILD"/bench/fig* "$BUILD"/bench/ablation* "$BUILD"/bench/ext_multi_tree; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  case "$name" in micro_core) continue ;; esac
  echo "=== $name ==="
  # Tables go to the .txt; progress/ETA lines stay on stderr (the console).
  if ! "$b" "${common[@]}" > "$OUT/$name.txt"; then
    echo "FAILED: $name" >&2
    status=1
  fi
done

python3 scripts/make_bench_summary.py "$OUT" -o "$OUT/bench_summary.json" \
  || status=1

if [ "$status" -eq 0 ]; then echo ALL-SMALL-BENCHES-DONE; fi
exit "$status"
