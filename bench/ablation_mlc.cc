// Ablation (beyond the paper): isolates the two CER ingredients on the same
// min-depth tree -- the recovery-group *selection* (MLC Algorithm 1 vs
// uniform random) and the repair *aggregation* (cooperative striping vs
// single source). The paper only reports the two corner combinations.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  flags.Define("group", "3", "recovery group size");
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Ablation -- CER ingredients (selection x aggregation)",
                     env);

  const int group = flags.GetInt("group");
  util::Table table(
      {"selection", "aggregation", "starving(%)", "avg repair rate"});
  for (const auto selection :
       {core::GroupSelection::kMlc, core::GroupSelection::kRandom}) {
    for (const auto mode : {core::RecoveryMode::kCooperative,
                            core::RecoveryMode::kSingleSource}) {
      double ratio = 0.0;
      double rate = 0.0;
      for (int rep = 0; rep < env.reps; ++rep) {
        stream::StreamParams sp;
        sp.recovery_group_size = group;
        sp.selection = selection;
        sp.mode = mode;
        exp::ScenarioConfig config = env.BaseConfig();
        config.population = env.focus_size;
        config.seed = env.seed + static_cast<std::uint64_t>(rep);
        const auto r = RunStreamScenario(env.topology,
                                         exp::Algorithm::kMinDepth, config, sp);
        ratio += 100.0 * r.avg_starving_ratio;
        rate += r.avg_recovery_rate;
      }
      table.AddRow(
          {selection == core::GroupSelection::kMlc ? "MLC" : "random",
           mode == core::RecoveryMode::kCooperative ? "cooperative" : "single",
           util::FormatDouble(ratio / env.reps, 3),
           util::FormatDouble(rate / env.reps, 3)});
    }
  }
  table.Print(std::cout, "CER ablation, group size " + std::to_string(group) +
                             ", " + std::to_string(env.focus_size) +
                             " members, min-depth tree");
  return 0;
}
