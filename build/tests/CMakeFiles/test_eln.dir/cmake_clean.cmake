file(REMOVE_RECURSE
  "CMakeFiles/test_eln.dir/test_eln.cc.o"
  "CMakeFiles/test_eln.dir/test_eln.cc.o.d"
  "test_eln"
  "test_eln.pdb"
  "test_eln[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eln.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
