// Tests for the CER building blocks: partial-tree reconstruction, MLC group
// selection (Algorithm 1), and loss-correlation accounting.
#include <gtest/gtest.h>

#include "core/cer/mlc.h"
#include "core/cer/partial_tree.h"
#include "overlay/tree.h"
#include "rand/rng.h"

namespace omcast::core {
namespace {

using overlay::kRootId;
using overlay::NodeId;
using overlay::Tree;

// Builds a complete k-ary tree of `depth` layers below the root; returns
// all created ids layer by layer.
std::vector<std::vector<NodeId>> BuildKaryTree(Tree& tree, int arity,
                                               int depth) {
  std::vector<std::vector<NodeId>> layers = {{kRootId}};
  int host = 1;
  for (int d = 1; d <= depth; ++d) {
    std::vector<NodeId> level;
    for (NodeId parent : layers.back()) {
      for (int i = 0; i < arity; ++i) {
        const NodeId c = tree.CreateMember(host++, static_cast<double>(arity),
                                           0.0, 1e9);
        tree.Attach(parent, c);
        level.push_back(c);
      }
    }
    layers.push_back(std::move(level));
  }
  return layers;
}

TEST(PartialTree, BuildFromSampleSplicesAncestors) {
  Tree tree(0, 100.0);
  const auto layers = BuildKaryTree(tree, 2, 3);  // 2+4+8 nodes
  // Know only two leaves from different layer-1 subtrees.
  const NodeId leaf_a = layers[3][0];
  const NodeId leaf_b = layers[3][7];
  const PartialTree view = PartialTree::Build(tree, {leaf_a, leaf_b});
  // Root + 2 chains of 3 = 7 nodes.
  EXPECT_EQ(view.nodes().size(), 7u);
  ASSERT_GE(view.root_index(), 0);
  const auto levels = view.Levels();
  ASSERT_EQ(levels.size(), 4u);
  EXPECT_EQ(levels[0].size(), 1u);
  EXPECT_EQ(levels[1].size(), 2u);
  EXPECT_NE(view.IndexOf(leaf_a), -1);
  EXPECT_NE(view.IndexOf(leaf_b), -1);
}

TEST(PartialTree, SharedAncestorsAppearOnce) {
  Tree tree(0, 100.0);
  const auto layers = BuildKaryTree(tree, 2, 3);
  // Two leaves under the same layer-1 subtree share two ancestors.
  const PartialTree view =
      PartialTree::Build(tree, {layers[3][0], layers[3][1]});
  // root, l1, l2, two leaves = 5 (l2 shared: leaves 0,1 share parent).
  EXPECT_EQ(view.nodes().size(), 5u);
}

TEST(PartialTree, SkipsUnrootedEntries) {
  Tree tree(0, 100.0);
  const auto layers = BuildKaryTree(tree, 2, 2);
  tree.Detach(layers[1][0]);  // whole left subtree floats
  const PartialTree view =
      PartialTree::Build(tree, {layers[2][0], layers[2][3]});
  // Only the right chain got in: root + 2 nodes.
  EXPECT_EQ(view.nodes().size(), 3u);
  tree.Attach(kRootId, layers[1][0]);
}

TEST(PartialTree, DescendantsAreTransitive) {
  Tree tree(0, 100.0);
  const auto layers = BuildKaryTree(tree, 2, 3);
  std::vector<NodeId> all_leaves = layers[3];
  const PartialTree view = PartialTree::Build(tree, all_leaves);
  const int l1 = view.IndexOf(layers[1][0]);
  ASSERT_NE(l1, -1);
  // Left layer-1 subtree contains 2 mid nodes + 4 leaves.
  EXPECT_EQ(view.Descendants(l1).size(), 6u);
}

TEST(Mlc, PicksRootsFromDistinctSubtrees) {
  Tree tree(0, 100.0);
  const auto layers = BuildKaryTree(tree, 3, 3);  // widths 3, 9, 27
  rnd::Rng rng(7);
  // All 27 leaves known. K = 5: Li should be level 1 (|3| < 5 <= |9|).
  const PartialTree view = PartialTree::Build(tree, layers[3]);
  const auto group = FindMlcGroup(view, 5, overlay::kNoNode, rng);
  ASSERT_EQ(group.size(), 5u);
  // Pairwise correlation: group members come from >= 5 distinct level-2
  // subtrees spread over 3 level-1 subtrees, so no pair shares more than
  // the first two edges, and at most ceil(5/3) pairs share even that.
  for (std::size_t i = 0; i < group.size(); ++i)
    for (std::size_t j = i + 1; j < group.size(); ++j)
      EXPECT_LE(tree.SharedPathEdges(group[i], group[j]), 2);
}

TEST(Mlc, GroupMembersAreDistinct) {
  Tree tree(0, 100.0);
  const auto layers = BuildKaryTree(tree, 3, 3);
  rnd::Rng rng(11);
  const PartialTree view = PartialTree::Build(tree, layers[3]);
  for (int k = 1; k <= 8; ++k) {
    const auto group = FindMlcGroup(view, k, overlay::kNoNode, rng);
    std::set<NodeId> distinct(group.begin(), group.end());
    EXPECT_EQ(distinct.size(), group.size()) << "k=" << k;
  }
}

TEST(Mlc, ExcludesRequester) {
  Tree tree(0, 100.0);
  const auto layers = BuildKaryTree(tree, 2, 2);
  rnd::Rng rng(3);
  const NodeId me = layers[2][0];
  const PartialTree view = PartialTree::Build(tree, layers[2]);
  for (int trial = 0; trial < 50; ++trial) {
    const auto group = FindMlcGroup(view, 3, me, rng);
    for (NodeId g : group) EXPECT_NE(g, me);
  }
}

TEST(Mlc, HandlesGroupLargerThanTree) {
  Tree tree(0, 100.0);
  const auto layers = BuildKaryTree(tree, 2, 1);  // just 2 children
  rnd::Rng rng(5);
  const PartialTree view = PartialTree::Build(tree, layers[1]);
  const auto group = FindMlcGroup(view, 10, overlay::kNoNode, rng);
  EXPECT_LE(group.size(), 2u);
  EXPECT_GE(group.size(), 1u);
}

TEST(Mlc, EmptyViewYieldsEmptyGroup) {
  Tree tree(0, 100.0);
  rnd::Rng rng(5);
  const PartialTree view = PartialTree::Build(tree, {});
  EXPECT_TRUE(FindMlcGroup(view, 3, overlay::kNoNode, rng).empty());
}

TEST(Mlc, BeatsRandomSelectionOnLossCorrelation) {
  // The headline property: on a deep skewed tree, Algorithm 1 yields far
  // lower total pairwise loss correlation than uniform-random picks.
  Tree tree(0, 100.0);
  rnd::Rng build_rng(17);
  std::vector<NodeId> all;
  int host = 1;
  // A skewed tree: long chains under few top-level subtrees.
  for (int chain = 0; chain < 4; ++chain) {
    NodeId cur = kRootId;
    for (int depth = 0; depth < 25; ++depth) {
      const NodeId c = tree.CreateMember(host++, 3.0, 0.0, 1e9);
      tree.Attach(cur, c);
      all.push_back(c);
      cur = c;
    }
  }
  rnd::Rng rng(23);
  const PartialTree view = PartialTree::Build(tree, all);
  long mlc_total = 0, random_total = 0;
  const int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    mlc_total +=
        TotalLossCorrelation(tree, FindMlcGroup(view, 4, overlay::kNoNode, rng));
    random_total += TotalLossCorrelation(
        tree, rng.SampleWithoutReplacement(all, 4));
  }
  EXPECT_LT(mlc_total, random_total / 2);
}

TEST(LossCorrelation, MatchesHandComputedValues) {
  Tree tree(0, 100.0);
  const auto layers = BuildKaryTree(tree, 2, 2);
  // Leaves 0 and 1 share their parent chain (1 edge beyond root... exactly:
  // root->p edge). w(leaf0, leaf1) = 1; across subtrees = 0.
  EXPECT_EQ(TotalLossCorrelation(
                tree, {layers[2][0], layers[2][1]}),
            1);
  EXPECT_EQ(TotalLossCorrelation(
                tree, {layers[2][0], layers[2][3]}),
            0);
  // Triple: {leaf0, leaf1, leaf3}: pairs (0,1)=1, (0,3)=0, (1,3)=0.
  EXPECT_EQ(TotalLossCorrelation(
                tree, {layers[2][0], layers[2][1], layers[2][3]}),
            1);
}

}  // namespace
}  // namespace omcast::core

#include <memory>

#include "core/cer/group.h"
#include "net/topology.h"
#include "proto/min_depth.h"
#include "sim/simulator.h"

namespace omcast::core {
namespace {

TEST(RecoveryGroup, OrderedByNetworkDistanceAndExcludesRequester) {
  rnd::Rng topo_rng(1);
  const net::Topology topology =
      net::Topology::Generate(net::SmallTopologyParams(), topo_rng);
  sim::Simulator sim;
  overlay::Session session(sim, topology,
                           std::make_unique<proto::MinDepthProtocol>(),
                           overlay::SessionParams{}, 21);
  session.Prepopulate(300);
  sim.RunUntil(10.0);
  const overlay::NodeId requester = session.alive_members().front();
  for (const auto selection : {GroupSelection::kMlc, GroupSelection::kRandom}) {
    const auto group = SelectRecoveryGroup(session, requester, 5, selection);
    ASSERT_GE(group.size(), 2u);
    double prev = -1.0;
    for (const overlay::NodeId g : group) {
      EXPECT_NE(g, requester);
      EXPECT_NE(g, overlay::kRootId);
      const double d = session.DelayMs(requester, g);
      EXPECT_GE(d, prev);  // nearest-first: the repair chain order
      prev = d;
    }
  }
}

TEST(RecoveryGroup, MembersAreRootedAndAlive) {
  rnd::Rng topo_rng(1);
  const net::Topology topology =
      net::Topology::Generate(net::SmallTopologyParams(), topo_rng);
  sim::Simulator sim;
  overlay::Session session(sim, topology,
                           std::make_unique<proto::MinDepthProtocol>(),
                           overlay::SessionParams{}, 23);
  session.Prepopulate(200);
  session.StartArrivals(200.0 / rnd::kMeanLifetimeSeconds);
  sim.RunUntil(2000.0);
  const overlay::NodeId requester = session.alive_members().front();
  const auto group =
      SelectRecoveryGroup(session, requester, 4, GroupSelection::kMlc);
  for (const overlay::NodeId g : group) {
    EXPECT_TRUE(session.tree().Alive(g));
    EXPECT_TRUE(session.tree().IsRooted(g));
  }
}

}  // namespace
}  // namespace omcast::core
