// Fig. 7: average end-to-end service delay (ms along the overlay paths) vs
// steady-state network size. ROST should be the best of the three
// distributed algorithms and within ~10-25% of the centralized relaxed-BO.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 7 -- avg end-to-end service delay (ms)", env);

  const runner::GridSpec spec = bench::TreeSizeSweepSpec(
      env, "fig07_service_delay", "avg end-to-end service delay (ms)",
      "delay_ms");
  const runner::ResultsSink sink = bench::RunGridBench(env, spec);
  bench::PrintMetricTable(spec, sink, "delay_ms", 1,
                          "avg service delay in ms (rows: steady-state size)");
  bench::MaybePrintProfile(env);
  return 0;
}
