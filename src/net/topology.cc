#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/check.h"

namespace omcast::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Floyd-Warshall over a dense matrix (row-major n*n), in place.
void FloydWarshall(int n, std::vector<double>& dist) {
  for (int k = 0; k < n; ++k)
    for (int i = 0; i < n; ++i) {
      const double dik = dist[static_cast<std::size_t>(i) * n + k];
      if (dik == kInf) continue;
      for (int j = 0; j < n; ++j) {
        const double via = dik + dist[static_cast<std::size_t>(k) * n + j];
        double& d = dist[static_cast<std::size_t>(i) * n + j];
        if (via < d) d = via;
      }
    }
}

// Builds a connected random graph on `n` local nodes: a randomized ring
// guarantees connectivity, then each non-ring pair gets a chord with
// probability `chord_prob`. Returns local (a, b, delay) edges.
struct LocalEdge {
  int a = 0;
  int b = 0;
  double delay = 0.0;
};

std::vector<LocalEdge> ConnectedRandomGraph(int n, double chord_prob,
                                            double delay_lo, double delay_hi,
                                            rnd::Rng& rng) {
  std::vector<LocalEdge> edges;
  if (n <= 1) return edges;
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);
  for (int i = 0; i < n; ++i) {
    edges.push_back({order[i], order[(i + 1) % n],
                     rng.Uniform(delay_lo, delay_hi)});
    if (n == 2) break;  // a 2-ring would duplicate the single edge
  }
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(chord_prob))
        edges.push_back({i, j, rng.Uniform(delay_lo, delay_hi)});
    }
  return edges;
}

std::vector<double> ApspFromLocalEdges(int n,
                                       const std::vector<LocalEdge>& edges) {
  std::vector<double> dist(static_cast<std::size_t>(n) * n, kInf);
  for (int i = 0; i < n; ++i) dist[static_cast<std::size_t>(i) * n + i] = 0.0;
  for (const auto& e : edges) {
    double& ab = dist[static_cast<std::size_t>(e.a) * n + e.b];
    double& ba = dist[static_cast<std::size_t>(e.b) * n + e.a];
    if (e.delay < ab) ab = e.delay;
    if (e.delay < ba) ba = e.delay;
  }
  FloydWarshall(n, dist);
  return dist;
}

// Single-source shortest paths over local edges; O(E log V), no n^2 table.
std::vector<double> DistancesFrom(int n, const std::vector<LocalEdge>& edges,
                                  int source) {
  std::vector<std::vector<std::pair<int, double>>> adj(
      static_cast<std::size_t>(n));
  for (const auto& e : edges) {
    adj[static_cast<std::size_t>(e.a)].push_back({e.b, e.delay});
    adj[static_cast<std::size_t>(e.b)].push_back({e.a, e.delay});
  }
  std::vector<double> dist(static_cast<std::size_t>(n), kInf);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<std::size_t>(source)] = 0.0;
  pq.push({0.0, source});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const auto& [v, w] : adj[static_cast<std::size_t>(u)]) {
      if (d + w < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = d + w;
        pq.push({dist[static_cast<std::size_t>(v)], v});
      }
    }
  }
  return dist;
}

}  // namespace

TopologyParams PaperTopologyParams() { return TopologyParams{}; }

TopologyParams TinyTopologyParams() {
  TopologyParams p;
  p.transit_domains = 2;
  p.transit_nodes_per_domain = 3;
  p.stub_domains_per_transit_node = 2;
  p.nodes_per_stub_domain = 8;
  return p;
}

TopologyParams SmallTopologyParams() {
  TopologyParams p;
  p.transit_domains = 6;
  p.transit_nodes_per_domain = 8;
  p.stub_domains_per_transit_node = 3;
  p.nodes_per_stub_domain = 16;  // 48 transit + 2304 stub hosts
  return p;
}

TopologyParams ScaleTopologyParams(int stub_hosts) {
  util::Check(stub_hosts >= 1, "need >= 1 stub host");
  TopologyParams p;
  p.transit_domains = 10;
  p.transit_nodes_per_domain = 10;  // 100 transit nodes
  p.nodes_per_stub_domain = 50;
  const int domains = (stub_hosts + p.nodes_per_stub_domain - 1) /
                      p.nodes_per_stub_domain;
  p.stub_domains_per_transit_node = std::max(1, (domains + 99) / 100);
  p.delay_model = DelayModel::kLandmark;
  p.keep_flat_edges = false;
  return p;
}

Topology Topology::Generate(const TopologyParams& params, rnd::Rng& rng) {
  util::Check(params.transit_domains >= 1, "need >= 1 transit domain");
  util::Check(params.transit_nodes_per_domain >= 1, "need >= 1 transit node");
  util::Check(params.stub_domains_per_transit_node >= 1,
              "need >= 1 stub domain per transit node");
  util::Check(params.nodes_per_stub_domain >= 1, "need >= 1 node per stub");

  Topology t;
  t.params_ = params;
  t.num_transit_nodes_ =
      params.transit_domains * params.transit_nodes_per_domain;
  t.num_stub_domains_ =
      t.num_transit_nodes_ * params.stub_domains_per_transit_node;
  t.num_stub_nodes_ = t.num_stub_domains_ * params.nodes_per_stub_domain;

  const int T = t.num_transit_nodes_;
  const int tn = params.transit_nodes_per_domain;

  // --- Transit core: intra-domain connected graphs + inter-domain links.
  std::vector<LocalEdge> core_edges;  // over global transit indices
  for (int d = 0; d < params.transit_domains; ++d) {
    const int base = d * tn;
    for (const auto& e : ConnectedRandomGraph(
             tn, params.intra_transit_edge_prob, params.tt_delay_lo,
             params.tt_delay_hi, rng)) {
      core_edges.push_back({base + e.a, base + e.b, e.delay});
    }
  }
  // Domain-level connectivity: randomized ring over domains plus chords;
  // each domain-level edge lands on random transit nodes of the two domains.
  if (params.transit_domains > 1) {
    std::vector<int> order(params.transit_domains);
    for (int i = 0; i < params.transit_domains; ++i) order[i] = i;
    rng.Shuffle(order);
    auto add_interdomain = [&](int da, int db) {
      const int a = da * tn + rng.UniformInt(0, tn - 1);
      const int b = db * tn + rng.UniformInt(0, tn - 1);
      core_edges.push_back(
          {a, b, rng.Uniform(params.tt_delay_lo, params.tt_delay_hi)});
    };
    for (int i = 0; i < params.transit_domains; ++i) {
      add_interdomain(order[i], order[(i + 1) % params.transit_domains]);
      if (params.transit_domains == 2) break;
    }
    for (int i = 0; i < params.transit_domains; ++i)
      for (int j = i + 1; j < params.transit_domains; ++j)
        if (rng.Bernoulli(params.inter_transit_edge_prob))
          add_interdomain(i, j);
  }
  // The core APSP is constant in host count (T^2 doubles); both delay
  // models keep it exact.
  const bool landmark = params.delay_model == DelayModel::kLandmark;
  t.transit_dist_ = ApspFromLocalEdges(T, core_edges);

  // Flat-edge numbering: stub host h -> h, transit node x -> stub_nodes + x.
  if (params.keep_flat_edges) {
    for (const auto& e : core_edges)
      t.flat_edges_.push_back(
          {t.num_stub_nodes_ + e.a, t.num_stub_nodes_ + e.b, e.delay});
  }

  // --- Stub domains. Each domain is generated, measured, and dropped in
  // one pass so the transient edge lists never accumulate at 10^6 hosts.
  // The rng draw order (graph, gateway index, gateway edge) is identical in
  // both delay models: the graphs are bit-identical given the same seed.
  const int ns = params.nodes_per_stub_domain;
  const int k = std::min(std::max(params.intra_landmarks, 1), ns);
  t.intra_stride_ = k;
  t.gateway_index_.resize(static_cast<std::size_t>(t.num_stub_domains_));
  t.gateway_edge_delay_.resize(static_cast<std::size_t>(t.num_stub_domains_));
  if (landmark)
    t.host_landmark_dist_.resize(static_cast<std::size_t>(t.num_stub_nodes_) *
                                 static_cast<std::size_t>(k));
  else
    t.intra_dist_.resize(static_cast<std::size_t>(t.num_stub_domains_));
  for (int d = 0; d < t.num_stub_domains_; ++d) {
    const auto ud = static_cast<std::size_t>(d);
    const std::vector<LocalEdge> edges =
        ConnectedRandomGraph(ns, params.intra_stub_edge_prob,
                             params.ss_delay_lo, params.ss_delay_hi, rng);
    t.gateway_index_[ud] = rng.UniformInt(0, ns - 1);
    t.gateway_edge_delay_[ud] =
        rng.Uniform(params.ts_delay_lo, params.ts_delay_hi);
    if (landmark) {
      // Greedy farthest-point intra-domain landmarks, seeded at the gateway
      // so column 0 doubles as the exact host->gateway leg.
      std::vector<double> nearest(static_cast<std::size_t>(ns), kInf);
      int next = t.gateway_index_[ud];
      const std::size_t base =
          ud * static_cast<std::size_t>(ns) * static_cast<std::size_t>(k);
      for (int j = 0; j < k; ++j) {
        const std::vector<double> row = DistancesFrom(ns, edges, next);
        for (int i = 0; i < ns; ++i) {
          const auto ui = static_cast<std::size_t>(i);
          t.host_landmark_dist_[base +
                                ui * static_cast<std::size_t>(k) +
                                static_cast<std::size_t>(j)] = row[ui];
          nearest[ui] = std::min(nearest[ui], row[ui]);
        }
        next = 0;
        for (int i = 1; i < ns; ++i)
          if (nearest[static_cast<std::size_t>(i)] >
              nearest[static_cast<std::size_t>(next)])
            next = i;
      }
    } else {
      t.intra_dist_[ud] = ApspFromLocalEdges(ns, edges);
    }
    if (params.keep_flat_edges) {
      const int base = d * ns;
      for (const auto& e : edges)
        t.flat_edges_.push_back({base + e.a, base + e.b, e.delay});
      t.flat_edges_.push_back({base + t.gateway_index_[ud],
                               t.num_stub_nodes_ + t.TransitOfDomain(d),
                               t.gateway_edge_delay_[ud]});
    }
  }
  return t;
}

int Topology::DomainOf(HostId h) const {
  util::Check(h >= 0 && h < num_stub_nodes_, "host id out of range");
  return h / params_.nodes_per_stub_domain;
}

int Topology::IndexInDomain(HostId h) const {
  return h % params_.nodes_per_stub_domain;
}

int Topology::TransitOfDomain(int domain) const {
  util::Check(domain >= 0 && domain < num_stub_domains_,
              "stub domain out of range");
  return domain / params_.stub_domains_per_transit_node;
}

double Topology::Delay(HostId a, HostId b) const {
  if (a == b) return 0.0;
  const int da = DomainOf(a);
  const int db = DomainOf(b);
  if (params_.delay_model == DelayModel::kLandmark) {
    const auto k = static_cast<std::size_t>(intra_stride_);
    const std::size_t ra = static_cast<std::size_t>(a) * k;
    const std::size_t rb = static_cast<std::size_t>(b) * k;
    // Same-domain: ALT midpoint over the domain's landmark columns.
    if (da == db) {
      double upper = kInf;
      double lower = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        const double la = host_landmark_dist_[ra + j];
        const double lb = host_landmark_dist_[rb + j];
        upper = std::min(upper, la + lb);
        lower = std::max(lower, std::abs(la - lb));
      }
      return 0.5 * (upper + lower);
    }
    // Cross-domain: exact host->gateway legs (landmark column 0) plus the
    // exact core APSP between the two attachment transit nodes -- identical
    // to the hierarchical oracle.
    const int lta = TransitOfDomain(da);
    const int ltb = TransitOfDomain(db);
    return host_landmark_dist_[ra] +
           gateway_edge_delay_[static_cast<std::size_t>(da)] +
           transit_dist_[static_cast<std::size_t>(lta) * num_transit_nodes_ +
                         ltb] +
           gateway_edge_delay_[static_cast<std::size_t>(db)] +
           host_landmark_dist_[rb];
  }
  const int n = params_.nodes_per_stub_domain;
  const int ia = IndexInDomain(a);
  const int ib = IndexInDomain(b);
  if (da == db) return intra_dist_[da][static_cast<std::size_t>(ia) * n + ib];
  const int ta = TransitOfDomain(da);
  const int tb = TransitOfDomain(db);
  const double to_gw_a =
      intra_dist_[da][static_cast<std::size_t>(ia) * n + gateway_index_[da]];
  const double to_gw_b =
      intra_dist_[db][static_cast<std::size_t>(ib) * n + gateway_index_[db]];
  const double core =
      transit_dist_[static_cast<std::size_t>(ta) * num_transit_nodes_ + tb];
  return to_gw_a + gateway_edge_delay_[da] + core + gateway_edge_delay_[db] +
         to_gw_b;
}

std::vector<FlatEdge> Topology::FlatEdges() const { return flat_edges_; }

std::size_t Topology::DelayTableBytes() const {
  std::size_t bytes = (transit_dist_.size() + host_landmark_dist_.size() +
                       gateway_edge_delay_.size()) *
                      sizeof(double);
  for (const auto& m : intra_dist_) bytes += m.size() * sizeof(double);
  return bytes;
}

DelayAccuracy CompareDelayOracles(const Topology& approx,
                                  const Topology& exact, int pairs,
                                  double rel_budget, double abs_budget_ms,
                                  rnd::Rng& rng) {
  util::Check(approx.num_stub_nodes() == exact.num_stub_nodes(),
              "oracle comparison needs topologies of the same size");
  const int hosts = exact.num_stub_nodes();
  DelayAccuracy acc;
  double rel_sum = 0.0;
  for (int i = 0; i < pairs; ++i) {
    const HostId a = rng.UniformInt(0, hosts - 1);
    const HostId b = rng.UniformInt(0, hosts - 1);
    const double truth = exact.Delay(a, b);
    const double est = approx.Delay(a, b);
    const double abs_err = std::abs(est - truth);
    const double rel_err = truth > 0.0 ? abs_err / truth : 0.0;
    rel_sum += rel_err;
    acc.max_rel_err = std::max(acc.max_rel_err, rel_err);
    acc.max_abs_err_ms = std::max(acc.max_abs_err_ms, abs_err);
    if (rel_err > rel_budget && abs_err > abs_budget_ms) ++acc.gate_violations;
    ++acc.pairs;
  }
  acc.mean_rel_err = acc.pairs > 0 ? rel_sum / acc.pairs : 0.0;
  return acc;
}

std::vector<double> Dijkstra(int node_count, const std::vector<FlatEdge>& edges,
                             int source) {
  util::Check(source >= 0 && source < node_count, "source out of range");
  std::vector<std::vector<std::pair<int, double>>> adj(node_count);
  for (const auto& e : edges) {
    adj[e.a].push_back({e.b, e.delay_ms});
    adj[e.b].push_back({e.a, e.delay_ms});
  }
  std::vector<double> dist(node_count, kInf);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[source] = 0.0;
  pq.push({0.0, source});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (const auto& [v, w] : adj[u]) {
      if (d + w < dist[v]) {
        dist[v] = d + w;
        pq.push({dist[v], v});
      }
    }
  }
  return dist;
}

}  // namespace omcast::net
