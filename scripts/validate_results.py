#!/usr/bin/env python3
"""Validates a runner results JSON (the --out file every grid bench
writes) against the schema src/runner/results.cc emits: the pinned kind
and schema_version, consistent grid axes, one well-formed record per
cell, and aggregates that reference real rows/cols/metrics. CI's
scale-smoke job runs this over a fresh bench/scale_sweep export so a
schema drift fails the push that caused it, not the next resume.

Usage: validate_results.py RESULTS.json [--require-metric NAME]
"""

import argparse
import json
import pathlib
import sys

EXPECTED_KIND = "omcast-figure-results"
# v2 added the per-cell "registry" snapshot; v3 added the optional
# "timeseries" (recovery curves) and "incidents" (per-disruption lifecycle
# stats) blocks. Both versions validate; v3-only blocks are shape-checked
# when present.
ACCEPTED_SCHEMA_VERSIONS = (2, 3)

TIMESERIES_KINDS = (0, 1)  # 0 = counter-rate, 1 = gauge

REQUIRED_TOP_LEVEL = {
    "schema_version": (int,),
    "kind": (str,),
    "figure": (str,),
    "rows": (list,),
    "cols": (list,),
    "reps": (int,),
    "headline_metric": (str,),
    "cells": (list,),
    "aggregates": (list,),
}

REQUIRED_CELL = {
    "row": (str,),
    "col": (str,),
    "rep": (int,),
    "seed": (int,),
    "wall_ms": (int, float),
    "metrics": (dict,),
}

REQUIRED_AGGREGATE = {
    "row": (str,),
    "col": (str,),
    "metric": (str,),
    "n": (int,),
    "mean": (int, float),
}


def check_fields(obj, required, where, errors):
    for name, types in required.items():
        if name not in obj:
            errors.append(f"{where}: missing field '{name}'")
        elif not isinstance(obj[name], types):
            errors.append(
                f"{where}: field '{name}' has type "
                f"{type(obj[name]).__name__}, expected "
                f"{'/'.join(t.__name__ for t in types)}"
            )


def check_timeseries(block, where, errors):
    """v3 recovery curves: {name: {kind, window_s, points: [[t, v], ...]}}
    with window-aligned, strictly increasing timestamps."""
    if not isinstance(block, dict):
        errors.append(f"{where}: 'timeseries' is not an object")
        return
    for name, entry in block.items():
        w = f"{where}: timeseries '{name}'"
        if not isinstance(entry, dict):
            errors.append(f"{w}: not an object")
            continue
        kind = entry.get("kind")
        window = entry.get("window_s")
        points = entry.get("points")
        if kind not in TIMESERIES_KINDS:
            errors.append(f"{w}: kind {kind!r} not in {TIMESERIES_KINDS}")
        if not isinstance(window, (int, float)) or window <= 0:
            errors.append(f"{w}: window_s {window!r} is not a positive number")
            continue
        if not isinstance(points, list):
            errors.append(f"{w}: points is not an array")
            continue
        prev_t = None
        for j, point in enumerate(points):
            if (
                not isinstance(point, list)
                or len(point) != 2
                or not all(isinstance(x, (int, float)) for x in point)
            ):
                errors.append(f"{w}: points[{j}] is not a [t, v] number pair")
                break
            t = point[0]
            if prev_t is not None and t <= prev_t:
                errors.append(
                    f"{w}: points[{j}] t={t} does not increase past {prev_t}"
                )
                break
            prev_t = t


def check_incidents(block, where, errors):
    """v3 per-disruption lifecycle stats: flat {name: number} with
    non-negative counts and phase latencies."""
    if not isinstance(block, dict):
        errors.append(f"{where}: 'incidents' is not an object")
        return
    for name, value in block.items():
        if not isinstance(value, (int, float)):
            errors.append(f"{where}: incident stat '{name}' is not a number")
        elif value < 0:
            # Counts and phase latencies (suspect/detect/reattach/recover
            # seconds) are non-negative by construction; a negative value
            # means the stitcher mis-ordered a lifecycle.
            errors.append(f"{where}: incident stat '{name}' is negative")


def validate(doc, require_metric):
    errors = []
    check_fields(doc, REQUIRED_TOP_LEVEL, "document", errors)
    if errors:
        return errors

    if doc["kind"] != EXPECTED_KIND:
        errors.append(f"kind is '{doc['kind']}', expected '{EXPECTED_KIND}'")
    if doc["schema_version"] not in ACCEPTED_SCHEMA_VERSIONS:
        errors.append(
            f"schema_version is {doc['schema_version']}, expected one of "
            f"{ACCEPTED_SCHEMA_VERSIONS}"
        )

    rows, cols, reps = set(doc["rows"]), set(doc["cols"]), doc["reps"]
    if not rows or not cols or reps < 1:
        errors.append("grid axes are empty")
        return errors

    expected_cells = len(doc["rows"]) * len(doc["cols"]) * reps
    if len(doc["cells"]) != expected_cells:
        errors.append(
            f"cells: {len(doc['cells'])} records for a "
            f"{len(doc['rows'])}x{len(doc['cols'])}x{reps} grid "
            f"(expected {expected_cells})"
        )

    seen = set()
    for i, cell in enumerate(doc["cells"]):
        where = f"cells[{i}]"
        if not isinstance(cell, dict):
            errors.append(f"{where}: not an object")
            continue
        check_fields(cell, REQUIRED_CELL, where, errors)
        if not REQUIRED_CELL.keys() <= cell.keys():
            continue
        if cell["row"] not in rows:
            errors.append(f"{where}: unknown row '{cell['row']}'")
        if cell["col"] not in cols:
            errors.append(f"{where}: unknown col '{cell['col']}'")
        key = (cell["row"], cell["col"], cell["rep"])
        if key in seen:
            errors.append(f"{where}: duplicate cell {key}")
        seen.add(key)
        for name, value in cell["metrics"].items():
            if not isinstance(value, (int, float)):
                errors.append(f"{where}: metric '{name}' is not a number")
        if "timeseries" in cell:
            check_timeseries(cell["timeseries"], where, errors)
        if "incidents" in cell:
            check_incidents(cell["incidents"], where, errors)

    metric_names = set()
    for i, agg in enumerate(doc["aggregates"]):
        where = f"aggregates[{i}]"
        if not isinstance(agg, dict):
            errors.append(f"{where}: not an object")
            continue
        check_fields(agg, REQUIRED_AGGREGATE, where, errors)
        if not REQUIRED_AGGREGATE.keys() <= agg.keys():
            continue
        if agg["row"] not in rows:
            errors.append(f"{where}: unknown row '{agg['row']}'")
        if agg["col"] not in cols:
            errors.append(f"{where}: unknown col '{agg['col']}'")
        metric_names.add(agg["metric"])

    if doc["headline_metric"] and doc["headline_metric"] not in metric_names:
        errors.append(
            f"headline_metric '{doc['headline_metric']}' never appears in "
            "aggregates"
        )
    if require_metric and require_metric not in metric_names:
        errors.append(
            f"required metric '{require_metric}' never appears in aggregates"
        )
    return errors


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", type=pathlib.Path)
    parser.add_argument(
        "--require-metric",
        default=None,
        help="additionally require this metric in the aggregates",
    )
    args = parser.parse_args(argv)

    try:
        doc = json.loads(args.results.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: {args.results}: {err}", file=sys.stderr)
        return 1
    if not isinstance(doc, dict):
        print(f"error: {args.results}: top level is not an object",
              file=sys.stderr)
        return 1

    errors = validate(doc, args.require_metric)
    for line in errors:
        print(f"INVALID {args.results}: {line}", file=sys.stderr)
    if not errors:
        print(
            f"{args.results}: valid {doc['kind']} v{doc['schema_version']} "
            f"({doc['figure']}, {len(doc['cells'])} cells)"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
