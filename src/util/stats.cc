#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace omcast::util {

void RunningStat::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::ci95_half_width() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> samples) {
  std::vector<CdfPoint> cdf;
  if (samples.empty()) return cdf;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Collapse runs of equal values into a single point with the final
    // (highest) cumulative fraction.
    if (i + 1 < samples.size() && samples[i + 1] == samples[i]) continue;
    cdf.push_back({samples[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

std::vector<double> CdfAt(std::vector<double> samples,
                          const std::vector<double>& at) {
  std::vector<double> out(at.size(), 0.0);
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < at.size(); ++i) {
    const auto it = std::upper_bound(samples.begin(), samples.end(), at[i]);
    out[i] = static_cast<double>(it - samples.begin()) / n;
  }
  return out;
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  Check(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double Mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

}  // namespace omcast::util
