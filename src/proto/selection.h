// Shared parent-selection helpers used by the distributed protocols
// (minimum-depth, longest-first, ROST's join path).
#pragma once

#include <vector>

#include "overlay/session.h"

namespace omcast::proto {

// Among `candidates` with spare capacity, picks the one highest in the tree
// (smallest layer); ties broken by smallest network delay to `joining`
// (paper Section 2.1 / 3.3). Returns kNoNode if none has spare capacity.
overlay::NodeId PickMinDepthParent(overlay::Session& session,
                                   const std::vector<overlay::NodeId>& candidates,
                                   overlay::NodeId joining);

// Among `candidates` with spare capacity, picks the oldest (longest-lived);
// ties broken by smallest network delay (paper Section 2.1, longest-first).
overlay::NodeId PickOldestParent(overlay::Session& session,
                                 const std::vector<overlay::NodeId>& candidates,
                                 overlay::NodeId joining);

// Rooted members of the current tree grouped by layer (layers[0] == {root}).
// Centralized scan used by the relaxed bandwidth/time-ordered algorithms,
// which the paper grants a central administrator with global knowledge.
std::vector<std::vector<overlay::NodeId>> LayersByBfs(const overlay::Tree& tree);

}  // namespace omcast::proto
