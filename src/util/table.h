// Plain-text table printer used by the figure-reproduction benches to emit
// the paper's series as aligned rows (one column per algorithm / parameter).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace omcast::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Adds one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  // Convenience: first cell verbatim, remaining values formatted with
  // `precision` decimal digits.
  void AddRow(std::string label, const std::vector<double>& values,
              int precision = 3);

  // Renders with space-padded columns; `title` (if non-empty) is printed
  // above the table.
  void Print(std::ostream& os, const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed `precision` decimals.
std::string FormatDouble(double v, int precision);

}  // namespace omcast::util
