// Integration tests: the experiment runners end-to-end, including the
// paper's qualitative relations at a reduced scale with fixed seeds.
#include "exp/scenario.h"

#include <gtest/gtest.h>

#include "net/topology.h"

namespace omcast::exp {
namespace {

const net::Topology& PaperTopology() {
  static const net::Topology topology = [] {
    rnd::Rng rng(1 ^ 0x70706fULL);
    return net::Topology::Generate(net::PaperTopologyParams(), rng);
  }();
  return topology;
}

ScenarioConfig QuickConfig(int population, std::uint64_t seed) {
  ScenarioConfig c;
  c.population = population;
  c.warmup_s = 3600.0;
  c.measure_s = 2400.0;
  c.seed = seed;
  return c;
}

TEST(Scenario, DeterministicForFixedSeed) {
  const auto a =
      RunTreeScenario(PaperTopology(), Algorithm::kRost, QuickConfig(800, 5));
  const auto b =
      RunTreeScenario(PaperTopology(), Algorithm::kRost, QuickConfig(800, 5));
  EXPECT_EQ(a.avg_disruptions, b.avg_disruptions);
  EXPECT_EQ(a.avg_delay_ms, b.avg_delay_ms);
  EXPECT_EQ(a.qualifying_members, b.qualifying_members);
  EXPECT_EQ(a.rost_switches, b.rost_switches);
}

TEST(Scenario, SeedsActuallyDiffer) {
  const auto a =
      RunTreeScenario(PaperTopology(), Algorithm::kMinDepth, QuickConfig(800, 5));
  const auto b =
      RunTreeScenario(PaperTopology(), Algorithm::kMinDepth, QuickConfig(800, 6));
  EXPECT_NE(a.avg_delay_ms, b.avg_delay_ms);
}

TEST(Scenario, BaselinesImposeNoOverheadRostLittle) {
  const auto min_depth = RunTreeScenario(PaperTopology(), Algorithm::kMinDepth,
                                         QuickConfig(800, 7));
  const auto longest = RunTreeScenario(PaperTopology(), Algorithm::kLongestFirst,
                                       QuickConfig(800, 7));
  const auto rost =
      RunTreeScenario(PaperTopology(), Algorithm::kRost, QuickConfig(800, 7));
  EXPECT_EQ(min_depth.avg_reconnections, 0.0);
  EXPECT_EQ(longest.avg_reconnections, 0.0);
  EXPECT_GT(rost.rost_switches, 0);
  // "far less than one reconnection for a single node during its lifetime"
  EXPECT_LT(rost.avg_reconnections, 1.0);
}

TEST(Scenario, RostBeatsMinDepthOnReliabilityAndDelay) {
  // The paper's headline relations, at a reduced scale, averaged over a few
  // seeds for stability.
  double rost_disr = 0.0, md_disr = 0.0, rost_delay = 0.0, md_delay = 0.0;
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const auto rost =
        RunTreeScenario(PaperTopology(), Algorithm::kRost, QuickConfig(1500, seed));
    const auto md = RunTreeScenario(PaperTopology(), Algorithm::kMinDepth,
                                    QuickConfig(1500, seed));
    rost_disr += rost.avg_disruptions;
    md_disr += md.avg_disruptions;
    rost_delay += rost.avg_delay_ms;
    md_delay += md.avg_delay_ms;
  }
  EXPECT_LT(rost_disr, md_disr);
  EXPECT_LT(rost_delay, md_delay);
}

TEST(Scenario, PopulationTracksTarget) {
  const auto r = RunTreeScenario(PaperTopology(), Algorithm::kMinDepth,
                                 QuickConfig(1000, 9));
  EXPECT_GT(r.avg_population, 700.0);
  EXPECT_LT(r.avg_population, 1300.0);
  EXPECT_GT(r.qualifying_members, 500);
}

TEST(Scenario, StreamScenarioGroupSizeHelps) {
  stream::StreamParams one;
  one.recovery_group_size = 1;
  stream::StreamParams three;
  three.recovery_group_size = 3;
  double r1 = 0.0, r3 = 0.0;
  for (std::uint64_t seed : {21u, 22u}) {
    r1 += RunStreamScenario(PaperTopology(), Algorithm::kMinDepth,
                            QuickConfig(1200, seed), one)
              .avg_starving_ratio;
    r3 += RunStreamScenario(PaperTopology(), Algorithm::kMinDepth,
                            QuickConfig(1200, seed), three)
              .avg_starving_ratio;
  }
  EXPECT_GT(r1, 0.0);
  EXPECT_LT(r3, r1);
}

TEST(Scenario, RostCerBeatsBaselineCombination) {
  stream::StreamParams cer;
  cer.recovery_group_size = 3;
  cer.selection = core::GroupSelection::kMlc;
  cer.mode = core::RecoveryMode::kCooperative;
  stream::StreamParams baseline;
  baseline.recovery_group_size = 3;
  baseline.selection = core::GroupSelection::kRandom;
  baseline.mode = core::RecoveryMode::kSingleSource;
  double combined = 0.0, base = 0.0;
  for (std::uint64_t seed : {31u, 32u}) {
    combined += RunStreamScenario(PaperTopology(), Algorithm::kRost,
                                  QuickConfig(1200, seed), cer)
                    .avg_starving_ratio;
    base += RunStreamScenario(PaperTopology(), Algorithm::kMinDepth,
                              QuickConfig(1200, seed), baseline)
                .avg_starving_ratio;
  }
  EXPECT_LT(combined, base / 2.0);
}

TEST(Scenario, MemberTraceProducesMonotoneCumulativeSeries) {
  const auto trace = RunMemberTraceScenario(
      PaperTopology(), Algorithm::kMinDepth, QuickConfig(800, 15),
      /*member_bandwidth=*/2.0, /*member_lifetime_s=*/7200.0,
      /*trace_s=*/5400.0);
  double prev = 0.0;
  for (const auto& p : trace.cumulative_disruptions) {
    EXPECT_GE(p.v, prev);
    EXPECT_GE(p.t_min, 0.0);
    prev = p.v;
  }
  ASSERT_FALSE(trace.delay_ms.empty());
  for (const auto& p : trace.delay_ms) {
    EXPECT_GT(p.v, 0.0);
    EXPECT_LT(p.v, 10000.0);
  }
}

TEST(Scenario, AlgorithmLabelsAreDistinct) {
  std::set<std::string> labels;
  for (Algorithm a : AllAlgorithms()) labels.insert(AlgorithmLabel(a));
  EXPECT_EQ(labels.size(), 5u);
}

TEST(Scenario, MakeProtocolHonorsRostParams) {
  core::RostParams params;
  params.switching_interval_s = 42.0;
  auto protocol = MakeProtocol(Algorithm::kRost, params);
  auto* rost = dynamic_cast<core::RostProtocol*>(protocol.get());
  ASSERT_NE(rost, nullptr);
  EXPECT_EQ(rost->params().switching_interval_s, 42.0);
}

}  // namespace
}  // namespace omcast::exp
